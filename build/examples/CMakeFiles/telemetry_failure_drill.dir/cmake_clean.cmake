file(REMOVE_RECURSE
  "CMakeFiles/telemetry_failure_drill.dir/telemetry_failure_drill.cpp.o"
  "CMakeFiles/telemetry_failure_drill.dir/telemetry_failure_drill.cpp.o.d"
  "telemetry_failure_drill"
  "telemetry_failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
