# Empty compiler generated dependencies file for telemetry_failure_drill.
# This may be replaced when dependencies are built.
