# Empty compiler generated dependencies file for ecommerce_sessions.
# This may be replaced when dependencies are built.
