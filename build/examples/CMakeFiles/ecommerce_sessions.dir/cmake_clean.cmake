file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_sessions.dir/ecommerce_sessions.cpp.o"
  "CMakeFiles/ecommerce_sessions.dir/ecommerce_sessions.cpp.o.d"
  "ecommerce_sessions"
  "ecommerce_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
