file(REMOVE_RECURSE
  "CMakeFiles/lhrs_core.dir/lhrs_file.cc.o"
  "CMakeFiles/lhrs_core.dir/lhrs_file.cc.o.d"
  "CMakeFiles/lhrs_core.dir/messages.cc.o"
  "CMakeFiles/lhrs_core.dir/messages.cc.o.d"
  "CMakeFiles/lhrs_core.dir/parity_bucket.cc.o"
  "CMakeFiles/lhrs_core.dir/parity_bucket.cc.o.d"
  "CMakeFiles/lhrs_core.dir/recovery.cc.o"
  "CMakeFiles/lhrs_core.dir/recovery.cc.o.d"
  "CMakeFiles/lhrs_core.dir/rs_coordinator.cc.o"
  "CMakeFiles/lhrs_core.dir/rs_coordinator.cc.o.d"
  "CMakeFiles/lhrs_core.dir/rs_data_bucket.cc.o"
  "CMakeFiles/lhrs_core.dir/rs_data_bucket.cc.o.d"
  "liblhrs_core.a"
  "liblhrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
