
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhrs/lhrs_file.cc" "src/lhrs/CMakeFiles/lhrs_core.dir/lhrs_file.cc.o" "gcc" "src/lhrs/CMakeFiles/lhrs_core.dir/lhrs_file.cc.o.d"
  "/root/repo/src/lhrs/messages.cc" "src/lhrs/CMakeFiles/lhrs_core.dir/messages.cc.o" "gcc" "src/lhrs/CMakeFiles/lhrs_core.dir/messages.cc.o.d"
  "/root/repo/src/lhrs/parity_bucket.cc" "src/lhrs/CMakeFiles/lhrs_core.dir/parity_bucket.cc.o" "gcc" "src/lhrs/CMakeFiles/lhrs_core.dir/parity_bucket.cc.o.d"
  "/root/repo/src/lhrs/recovery.cc" "src/lhrs/CMakeFiles/lhrs_core.dir/recovery.cc.o" "gcc" "src/lhrs/CMakeFiles/lhrs_core.dir/recovery.cc.o.d"
  "/root/repo/src/lhrs/rs_coordinator.cc" "src/lhrs/CMakeFiles/lhrs_core.dir/rs_coordinator.cc.o" "gcc" "src/lhrs/CMakeFiles/lhrs_core.dir/rs_coordinator.cc.o.d"
  "/root/repo/src/lhrs/rs_data_bucket.cc" "src/lhrs/CMakeFiles/lhrs_core.dir/rs_data_bucket.cc.o" "gcc" "src/lhrs/CMakeFiles/lhrs_core.dir/rs_data_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhstar/CMakeFiles/lhrs_lhstar.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/lhrs_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lhrs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lhrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
