# Empty dependencies file for lhrs_core.
# This may be replaced when dependencies are built.
