file(REMOVE_RECURSE
  "liblhrs_core.a"
)
