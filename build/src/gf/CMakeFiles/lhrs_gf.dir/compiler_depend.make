# Empty compiler generated dependencies file for lhrs_gf.
# This may be replaced when dependencies are built.
