file(REMOVE_RECURSE
  "liblhrs_gf.a"
)
