file(REMOVE_RECURSE
  "CMakeFiles/lhrs_gf.dir/gf256.cc.o"
  "CMakeFiles/lhrs_gf.dir/gf256.cc.o.d"
  "CMakeFiles/lhrs_gf.dir/gf65536.cc.o"
  "CMakeFiles/lhrs_gf.dir/gf65536.cc.o.d"
  "liblhrs_gf.a"
  "liblhrs_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
