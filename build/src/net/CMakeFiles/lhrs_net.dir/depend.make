# Empty dependencies file for lhrs_net.
# This may be replaced when dependencies are built.
