
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/lhrs_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/lhrs_net.dir/message.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/lhrs_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/lhrs_net.dir/network.cc.o.d"
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/lhrs_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/lhrs_net.dir/node.cc.o.d"
  "/root/repo/src/net/stats.cc" "src/net/CMakeFiles/lhrs_net.dir/stats.cc.o" "gcc" "src/net/CMakeFiles/lhrs_net.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lhrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
