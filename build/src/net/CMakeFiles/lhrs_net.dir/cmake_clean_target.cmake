file(REMOVE_RECURSE
  "liblhrs_net.a"
)
