file(REMOVE_RECURSE
  "CMakeFiles/lhrs_net.dir/message.cc.o"
  "CMakeFiles/lhrs_net.dir/message.cc.o.d"
  "CMakeFiles/lhrs_net.dir/network.cc.o"
  "CMakeFiles/lhrs_net.dir/network.cc.o.d"
  "CMakeFiles/lhrs_net.dir/node.cc.o"
  "CMakeFiles/lhrs_net.dir/node.cc.o.d"
  "CMakeFiles/lhrs_net.dir/stats.cc.o"
  "CMakeFiles/lhrs_net.dir/stats.cc.o.d"
  "liblhrs_net.a"
  "liblhrs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
