file(REMOVE_RECURSE
  "liblhrs_common.a"
)
