file(REMOVE_RECURSE
  "CMakeFiles/lhrs_common.dir/bytes.cc.o"
  "CMakeFiles/lhrs_common.dir/bytes.cc.o.d"
  "CMakeFiles/lhrs_common.dir/logging.cc.o"
  "CMakeFiles/lhrs_common.dir/logging.cc.o.d"
  "CMakeFiles/lhrs_common.dir/status.cc.o"
  "CMakeFiles/lhrs_common.dir/status.cc.o.d"
  "liblhrs_common.a"
  "liblhrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
