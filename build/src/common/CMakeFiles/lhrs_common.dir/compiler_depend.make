# Empty compiler generated dependencies file for lhrs_common.
# This may be replaced when dependencies are built.
