file(REMOVE_RECURSE
  "CMakeFiles/lhrs_analysis.dir/availability_model.cc.o"
  "CMakeFiles/lhrs_analysis.dir/availability_model.cc.o.d"
  "CMakeFiles/lhrs_analysis.dir/workload.cc.o"
  "CMakeFiles/lhrs_analysis.dir/workload.cc.o.d"
  "liblhrs_analysis.a"
  "liblhrs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
