file(REMOVE_RECURSE
  "liblhrs_analysis.a"
)
