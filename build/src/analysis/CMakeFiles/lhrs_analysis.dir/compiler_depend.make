# Empty compiler generated dependencies file for lhrs_analysis.
# This may be replaced when dependencies are built.
