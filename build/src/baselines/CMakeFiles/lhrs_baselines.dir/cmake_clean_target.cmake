file(REMOVE_RECURSE
  "liblhrs_baselines.a"
)
