# Empty compiler generated dependencies file for lhrs_baselines.
# This may be replaced when dependencies are built.
