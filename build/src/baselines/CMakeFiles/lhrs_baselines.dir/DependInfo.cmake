
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/lhg/lhg_coordinator.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_coordinator.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_coordinator.cc.o.d"
  "/root/repo/src/baselines/lhg/lhg_data_bucket.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_data_bucket.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_data_bucket.cc.o.d"
  "/root/repo/src/baselines/lhg/lhg_file.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_file.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_file.cc.o.d"
  "/root/repo/src/baselines/lhg/lhg_messages.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_messages.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_messages.cc.o.d"
  "/root/repo/src/baselines/lhg/lhg_parity_bucket.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_parity_bucket.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhg/lhg_parity_bucket.cc.o.d"
  "/root/repo/src/baselines/lhm/lhm_file.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhm/lhm_file.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhm/lhm_file.cc.o.d"
  "/root/repo/src/baselines/lhs/lhs_file.cc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhs/lhs_file.cc.o" "gcc" "src/baselines/CMakeFiles/lhrs_baselines.dir/lhs/lhs_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lhstar/CMakeFiles/lhrs_lhstar.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lhrs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lhrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
