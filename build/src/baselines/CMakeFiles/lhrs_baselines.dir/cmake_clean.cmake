file(REMOVE_RECURSE
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_coordinator.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_coordinator.cc.o.d"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_data_bucket.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_data_bucket.cc.o.d"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_file.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_file.cc.o.d"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_messages.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_messages.cc.o.d"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_parity_bucket.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhg/lhg_parity_bucket.cc.o.d"
  "CMakeFiles/lhrs_baselines.dir/lhm/lhm_file.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhm/lhm_file.cc.o.d"
  "CMakeFiles/lhrs_baselines.dir/lhs/lhs_file.cc.o"
  "CMakeFiles/lhrs_baselines.dir/lhs/lhs_file.cc.o.d"
  "liblhrs_baselines.a"
  "liblhrs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
