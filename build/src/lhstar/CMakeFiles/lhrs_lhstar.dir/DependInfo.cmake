
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lhstar/client.cc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/client.cc.o" "gcc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/client.cc.o.d"
  "/root/repo/src/lhstar/coordinator.cc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/coordinator.cc.o" "gcc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/coordinator.cc.o.d"
  "/root/repo/src/lhstar/data_bucket.cc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/data_bucket.cc.o" "gcc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/data_bucket.cc.o.d"
  "/root/repo/src/lhstar/lhstar_file.cc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/lhstar_file.cc.o" "gcc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/lhstar_file.cc.o.d"
  "/root/repo/src/lhstar/messages.cc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/messages.cc.o" "gcc" "src/lhstar/CMakeFiles/lhrs_lhstar.dir/messages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lhrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lhrs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
