file(REMOVE_RECURSE
  "liblhrs_lhstar.a"
)
