# Empty compiler generated dependencies file for lhrs_lhstar.
# This may be replaced when dependencies are built.
