file(REMOVE_RECURSE
  "CMakeFiles/lhrs_lhstar.dir/client.cc.o"
  "CMakeFiles/lhrs_lhstar.dir/client.cc.o.d"
  "CMakeFiles/lhrs_lhstar.dir/coordinator.cc.o"
  "CMakeFiles/lhrs_lhstar.dir/coordinator.cc.o.d"
  "CMakeFiles/lhrs_lhstar.dir/data_bucket.cc.o"
  "CMakeFiles/lhrs_lhstar.dir/data_bucket.cc.o.d"
  "CMakeFiles/lhrs_lhstar.dir/lhstar_file.cc.o"
  "CMakeFiles/lhrs_lhstar.dir/lhstar_file.cc.o.d"
  "CMakeFiles/lhrs_lhstar.dir/messages.cc.o"
  "CMakeFiles/lhrs_lhstar.dir/messages.cc.o.d"
  "liblhrs_lhstar.a"
  "liblhrs_lhstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_lhstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
