file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_gf_rs.dir/bench_t3_gf_rs.cc.o"
  "CMakeFiles/bench_t3_gf_rs.dir/bench_t3_gf_rs.cc.o.d"
  "bench_t3_gf_rs"
  "bench_t3_gf_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_gf_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
