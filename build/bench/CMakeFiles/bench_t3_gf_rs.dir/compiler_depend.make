# Empty compiler generated dependencies file for bench_t3_gf_rs.
# This may be replaced when dependencies are built.
