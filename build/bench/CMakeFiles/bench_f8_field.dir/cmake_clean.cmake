file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_field.dir/bench_f8_field.cc.o"
  "CMakeFiles/bench_f8_field.dir/bench_f8_field.cc.o.d"
  "bench_f8_field"
  "bench_f8_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
