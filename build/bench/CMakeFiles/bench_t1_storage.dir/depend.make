# Empty dependencies file for bench_t1_storage.
# This may be replaced when dependencies are built.
