file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_recovery.dir/bench_f2_recovery.cc.o"
  "CMakeFiles/bench_f2_recovery.dir/bench_f2_recovery.cc.o.d"
  "bench_f2_recovery"
  "bench_f2_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
