# Empty dependencies file for bench_f2_recovery.
# This may be replaced when dependencies are built.
