file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_availability.dir/bench_f3_availability.cc.o"
  "CMakeFiles/bench_f3_availability.dir/bench_f3_availability.cc.o.d"
  "bench_f3_availability"
  "bench_f3_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
