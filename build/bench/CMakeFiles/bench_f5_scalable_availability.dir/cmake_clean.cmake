file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_scalable_availability.dir/bench_f5_scalable_availability.cc.o"
  "CMakeFiles/bench_f5_scalable_availability.dir/bench_f5_scalable_availability.cc.o.d"
  "bench_f5_scalable_availability"
  "bench_f5_scalable_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_scalable_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
