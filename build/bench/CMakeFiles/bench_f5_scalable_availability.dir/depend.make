# Empty dependencies file for bench_f5_scalable_availability.
# This may be replaced when dependencies are built.
