# Empty dependencies file for bench_f4_degraded.
# This may be replaced when dependencies are built.
