file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_ablations.dir/bench_f7_ablations.cc.o"
  "CMakeFiles/bench_f7_ablations.dir/bench_f7_ablations.cc.o.d"
  "bench_f7_ablations"
  "bench_f7_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
