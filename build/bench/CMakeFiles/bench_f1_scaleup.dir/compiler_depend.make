# Empty compiler generated dependencies file for bench_f1_scaleup.
# This may be replaced when dependencies are built.
