file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_scaleup.dir/bench_f1_scaleup.cc.o"
  "CMakeFiles/bench_f1_scaleup.dir/bench_f1_scaleup.cc.o.d"
  "bench_f1_scaleup"
  "bench_f1_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
