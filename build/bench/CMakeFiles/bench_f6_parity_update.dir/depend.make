# Empty dependencies file for bench_f6_parity_update.
# This may be replaced when dependencies are built.
