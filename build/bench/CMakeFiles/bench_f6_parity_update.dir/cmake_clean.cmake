file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_parity_update.dir/bench_f6_parity_update.cc.o"
  "CMakeFiles/bench_f6_parity_update.dir/bench_f6_parity_update.cc.o.d"
  "bench_f6_parity_update"
  "bench_f6_parity_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_parity_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
