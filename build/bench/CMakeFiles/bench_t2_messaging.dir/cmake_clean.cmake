file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_messaging.dir/bench_t2_messaging.cc.o"
  "CMakeFiles/bench_t2_messaging.dir/bench_t2_messaging.cc.o.d"
  "bench_t2_messaging"
  "bench_t2_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
