# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/rs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/lh_math_test[1]_include.cmake")
include("/root/repo/build/tests/lhstar_test[1]_include.cmake")
include("/root/repo/build/tests/lhrs_basic_test[1]_include.cmake")
include("/root/repo/build/tests/lhrs_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/lhg_test[1]_include.cmake")
include("/root/repo/build/tests/lhm_lhs_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/lhg1_test[1]_include.cmake")
include("/root/repo/build/tests/lhrs_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/lhg_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/scrub_test[1]_include.cmake")
include("/root/repo/build/tests/coordinator_restart_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/lhm_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/reconstruction_test[1]_include.cmake")
