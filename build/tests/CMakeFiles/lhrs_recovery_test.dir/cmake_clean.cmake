file(REMOVE_RECURSE
  "CMakeFiles/lhrs_recovery_test.dir/lhrs_recovery_test.cc.o"
  "CMakeFiles/lhrs_recovery_test.dir/lhrs_recovery_test.cc.o.d"
  "lhrs_recovery_test"
  "lhrs_recovery_test.pdb"
  "lhrs_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
