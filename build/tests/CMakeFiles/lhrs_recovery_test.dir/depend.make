# Empty dependencies file for lhrs_recovery_test.
# This may be replaced when dependencies are built.
