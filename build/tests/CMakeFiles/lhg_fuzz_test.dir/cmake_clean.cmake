file(REMOVE_RECURSE
  "CMakeFiles/lhg_fuzz_test.dir/lhg_fuzz_test.cc.o"
  "CMakeFiles/lhg_fuzz_test.dir/lhg_fuzz_test.cc.o.d"
  "lhg_fuzz_test"
  "lhg_fuzz_test.pdb"
  "lhg_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhg_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
