# Empty dependencies file for lhg_fuzz_test.
# This may be replaced when dependencies are built.
