# Empty dependencies file for coordinator_restart_test.
# This may be replaced when dependencies are built.
