file(REMOVE_RECURSE
  "CMakeFiles/coordinator_restart_test.dir/coordinator_restart_test.cc.o"
  "CMakeFiles/coordinator_restart_test.dir/coordinator_restart_test.cc.o.d"
  "coordinator_restart_test"
  "coordinator_restart_test.pdb"
  "coordinator_restart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinator_restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
