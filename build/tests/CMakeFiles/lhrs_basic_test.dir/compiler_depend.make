# Empty compiler generated dependencies file for lhrs_basic_test.
# This may be replaced when dependencies are built.
