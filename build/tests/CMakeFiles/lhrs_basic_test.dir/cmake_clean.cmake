file(REMOVE_RECURSE
  "CMakeFiles/lhrs_basic_test.dir/lhrs_basic_test.cc.o"
  "CMakeFiles/lhrs_basic_test.dir/lhrs_basic_test.cc.o.d"
  "lhrs_basic_test"
  "lhrs_basic_test.pdb"
  "lhrs_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
