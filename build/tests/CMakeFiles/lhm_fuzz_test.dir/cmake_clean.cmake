file(REMOVE_RECURSE
  "CMakeFiles/lhm_fuzz_test.dir/lhm_fuzz_test.cc.o"
  "CMakeFiles/lhm_fuzz_test.dir/lhm_fuzz_test.cc.o.d"
  "lhm_fuzz_test"
  "lhm_fuzz_test.pdb"
  "lhm_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
