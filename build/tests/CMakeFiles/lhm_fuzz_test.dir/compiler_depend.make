# Empty compiler generated dependencies file for lhm_fuzz_test.
# This may be replaced when dependencies are built.
