file(REMOVE_RECURSE
  "CMakeFiles/lhg1_test.dir/lhg1_test.cc.o"
  "CMakeFiles/lhg1_test.dir/lhg1_test.cc.o.d"
  "lhg1_test"
  "lhg1_test.pdb"
  "lhg1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhg1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
