# Empty dependencies file for lhg1_test.
# This may be replaced when dependencies are built.
