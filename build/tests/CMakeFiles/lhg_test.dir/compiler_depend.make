# Empty compiler generated dependencies file for lhg_test.
# This may be replaced when dependencies are built.
