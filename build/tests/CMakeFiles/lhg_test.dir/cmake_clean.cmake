file(REMOVE_RECURSE
  "CMakeFiles/lhg_test.dir/lhg_test.cc.o"
  "CMakeFiles/lhg_test.dir/lhg_test.cc.o.d"
  "lhg_test"
  "lhg_test.pdb"
  "lhg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
