file(REMOVE_RECURSE
  "CMakeFiles/lhrs_fuzz_test.dir/lhrs_fuzz_test.cc.o"
  "CMakeFiles/lhrs_fuzz_test.dir/lhrs_fuzz_test.cc.o.d"
  "lhrs_fuzz_test"
  "lhrs_fuzz_test.pdb"
  "lhrs_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhrs_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
