# Empty dependencies file for lhrs_fuzz_test.
# This may be replaced when dependencies are built.
