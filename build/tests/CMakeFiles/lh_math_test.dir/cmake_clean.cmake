file(REMOVE_RECURSE
  "CMakeFiles/lh_math_test.dir/lh_math_test.cc.o"
  "CMakeFiles/lh_math_test.dir/lh_math_test.cc.o.d"
  "lh_math_test"
  "lh_math_test.pdb"
  "lh_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lh_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
