# Empty dependencies file for lh_math_test.
# This may be replaced when dependencies are built.
