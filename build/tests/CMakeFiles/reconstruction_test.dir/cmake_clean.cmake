file(REMOVE_RECURSE
  "CMakeFiles/reconstruction_test.dir/reconstruction_test.cc.o"
  "CMakeFiles/reconstruction_test.dir/reconstruction_test.cc.o.d"
  "reconstruction_test"
  "reconstruction_test.pdb"
  "reconstruction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
