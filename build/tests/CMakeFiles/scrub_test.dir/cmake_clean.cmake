file(REMOVE_RECURSE
  "CMakeFiles/scrub_test.dir/scrub_test.cc.o"
  "CMakeFiles/scrub_test.dir/scrub_test.cc.o.d"
  "scrub_test"
  "scrub_test.pdb"
  "scrub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
