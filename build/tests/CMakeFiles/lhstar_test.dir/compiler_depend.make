# Empty compiler generated dependencies file for lhstar_test.
# This may be replaced when dependencies are built.
