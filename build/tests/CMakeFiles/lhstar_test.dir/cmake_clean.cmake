file(REMOVE_RECURSE
  "CMakeFiles/lhstar_test.dir/lhstar_test.cc.o"
  "CMakeFiles/lhstar_test.dir/lhstar_test.cc.o.d"
  "lhstar_test"
  "lhstar_test.pdb"
  "lhstar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
