file(REMOVE_RECURSE
  "CMakeFiles/lhm_lhs_test.dir/lhm_lhs_test.cc.o"
  "CMakeFiles/lhm_lhs_test.dir/lhm_lhs_test.cc.o.d"
  "lhm_lhs_test"
  "lhm_lhs_test.pdb"
  "lhm_lhs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhm_lhs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
