# Empty dependencies file for lhm_lhs_test.
# This may be replaced when dependencies are built.
