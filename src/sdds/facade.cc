#include "sdds/facade.h"

#include <utility>

namespace lhrs::sdds {

Result<OpOutcome> SddsFile::RunSync(size_t session, OpType op, Key key,
                                    Bytes value) {
  const OpToken token = Submit(session, op, key, std::move(value));
  network().RunUntilIdle();
  if (!Poll(token)) {
    return Status::Internal("operation did not complete");
  }
  return Take(token);
}

Status SddsFile::Insert(Key key, Bytes value) {
  LHRS_ASSIGN_OR_RETURN(
      OpOutcome out, RunSync(0, OpType::kInsert, key, std::move(value)));
  return out.status;
}

Result<Bytes> SddsFile::Search(Key key) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out, RunSync(0, OpType::kSearch, key, {}));
  if (!out.status.ok()) return out.status;
  return out.value.ToBytes();
}

Status SddsFile::Update(Key key, Bytes value) {
  LHRS_ASSIGN_OR_RETURN(
      OpOutcome out, RunSync(0, OpType::kUpdate, key, std::move(value)));
  return out.status;
}

Status SddsFile::Delete(Key key) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out, RunSync(0, OpType::kDelete, key, {}));
  return out.status;
}

Result<std::vector<WireRecord>> SddsFile::Scan(ScanPredicate /*predicate*/,
                                               bool /*deterministic*/) {
  return Status::InvalidArgument("scan not supported by this scheme");
}

}  // namespace lhrs::sdds
