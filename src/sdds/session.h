#ifndef LHRS_SDDS_SESSION_H_
#define LHRS_SDDS_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "sdds/facade.h"

namespace lhrs::sdds {

/// One operation as a plain value, so drivers can generate work without
/// touching scheme internals.
struct SddsOp {
  OpType op = OpType::kSearch;
  Key key = 0;
  Bytes value;  ///< Insert/update payload.
};

/// Bounded-window multiplexer over an SddsFile's sessions.
///
/// Owns the file's completion listener while alive. Each session may have
/// at most `window` operations in flight; Submit() CHECK-fails beyond that
/// (drivers gate on HasCapacity). Every completion is reported through the
/// handler with the operation's latency in simulated time — stamped from
/// Submit() to the completion callback on the client reply path, so
/// background work (splits, parity traffic, other sessions' ops) never
/// pollutes the measurement.
class SessionPool {
 public:
  using CompletionHandler =
      std::function<void(size_t session, const SddsOp& op,
                         const OpOutcome& outcome, SimTime latency_us)>;

  /// Grows the file to at least `sessions` sessions and installs the
  /// completion listener.
  SessionPool(SddsFile& file, size_t sessions, size_t window);
  ~SessionPool();
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  size_t sessions() const { return sessions_; }
  size_t window() const { return window_; }

  bool HasCapacity(size_t session) const {
    return inflight_per_session_[session] < window_;
  }
  size_t inflight(size_t session) const {
    return inflight_per_session_[session];
  }
  size_t inflight_total() const { return open_.size(); }

  /// Submits `op` on `session` (which must have capacity).
  OpToken Submit(size_t session, SddsOp op);

  /// Handler invoked on every completion, inside event processing. It may
  /// Submit() again (completion-driven refill) as long as capacity allows.
  void SetCompletionHandler(CompletionHandler handler) {
    handler_ = std::move(handler);
  }

 private:
  struct Inflight {
    size_t session = 0;
    SimTime submitted_us = 0;
    SddsOp op;
  };

  void OnComplete(OpToken token);

  SddsFile& file_;
  size_t sessions_;
  size_t window_;
  std::vector<size_t> inflight_per_session_;
  std::map<OpToken, Inflight> open_;
  CompletionHandler handler_;
};

/// Open-loop driver configuration.
struct RunnerOptions {
  size_t sessions = 1;  ///< Concurrent client sessions (N).
  size_t window = 1;    ///< Outstanding ops per session (W).
  uint64_t max_ops = 0; ///< Stop submitting after this many (0 = source-bounded).
};

/// What one PipelinedRunner::Run produced.
struct RunnerReport {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t ok = 0;
  uint64_t not_found = 0; ///< kNotFound outcomes (racing deletes, misses).
  uint64_t failures = 0;  ///< Any other non-OK outcome.
  uint64_t stalled = 0;   ///< In flight when the network went idle for good.
  SimTime start_us = 0;   ///< Simulated time when the run began.
  SimTime end_us = 0;     ///< Simulated time when the run finished.
  /// Per-op latency in completion order — exact values, not bucketed.
  std::vector<SimTime> latencies_us;

  SimTime elapsed_us() const { return end_us - start_us; }

  /// Aggregate throughput in operations per simulated second.
  double OpsPerSimSecond() const;

  /// Exact nearest-rank percentile of the per-op latencies (p in [0,100]).
  SimTime LatencyPercentileUs(double p) const;
  double MeanLatencyUs() const;
};

/// Drives an SddsFile open-loop: N sessions, each refilled from `source`
/// up to W outstanding ops, completions triggering the next submit from
/// inside event processing. Everything runs in simulated time on the
/// deterministic event loop, so a run is exactly reproducible.
///
/// Degenerate case: with sessions == 1 and window == 1 the runner drains
/// the network to idle between consecutive ops — literally the closed-loop
/// execution model every scheme used before this layer existed, so W=1
/// numbers are directly comparable to (and message-identical with) the
/// synchronous API.
class PipelinedRunner {
 public:
  /// Returns the next op for `session`, or nullopt when that session's
  /// work is exhausted. Called inside event processing in completion
  /// order — deterministic, but interleaved across sessions.
  using OpSource = std::function<std::optional<SddsOp>(size_t session)>;
  using OnComplete = std::function<void(size_t session, const SddsOp& op,
                                        const OpOutcome& outcome)>;

  PipelinedRunner(SddsFile& file, RunnerOptions options)
      : file_(file), options_(options) {}

  /// Runs until every session's source is exhausted (or max_ops reached)
  /// and all in-flight ops completed.
  RunnerReport Run(const OpSource& source, const OnComplete& on_complete = {});

 private:
  SddsFile& file_;
  RunnerOptions options_;
};

}  // namespace lhrs::sdds

#endif  // LHRS_SDDS_SESSION_H_
