#ifndef LHRS_SDDS_FACADE_H_
#define LHRS_SDDS_FACADE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "lhstar/client.h"
#include "lhstar/messages.h"
#include "net/network.h"

namespace lhrs {

/// Aggregate storage statistics of a simulated file (any scheme).
struct StorageStats {
  size_t record_count = 0;
  size_t data_bytes = 0;        ///< Primary record payloads incl. keys.
  size_t parity_bytes = 0;      ///< Availability overhead (0 for plain LH*).
  size_t data_buckets = 0;
  size_t parity_buckets = 0;
  double load_factor = 0.0;     ///< records / (buckets * capacity).

  /// parity_bytes / data_bytes — the paper's storage-overhead metric.
  double ParityOverhead() const {
    return data_bytes == 0 ? 0.0
                           : static_cast<double>(parity_bytes) / data_bytes;
  }
};

namespace sdds {

/// Handle of one logical operation submitted through SddsFile::Submit.
/// Tokens are per-file and never reused; 0 is never a valid token.
using OpToken = uint64_t;

/// Scheme-agnostic facade over one simulated SDDS file. Implemented by all
/// five schemes (LH*, LH*RS, LH*g, LH*m, LH*s), so drivers — workload
/// generators, benches, examples — are written once.
///
/// Two execution models share this interface:
///
///  - Synchronous (closed-loop): Insert/Search/Update/Delete submit one
///    operation on session 0 and run the simulation to idle — the seed's
///    original semantics, byte-identical message traces included.
///  - Asynchronous (open-loop): Submit() starts an operation and returns a
///    token without touching the event loop. The driver steps the network
///    (Network::Step / RunUntil) and learns about completions by Poll()ing
///    or through the completion listener, which fires inside event
///    processing the moment the logical operation finishes. Many sessions
///    each keep several operations in flight — the SDDS scalability claim
///    this repo exists to measure.
///
/// A *session* is the unit of client-side concurrency: one autonomous
/// client image (for composite schemes: one client per component file).
/// Operations within a session share that image and its address cache.
class SddsFile {
 public:
  SddsFile() = default;
  virtual ~SddsFile() = default;
  SddsFile(const SddsFile&) = delete;
  SddsFile& operator=(const SddsFile&) = delete;

  // --- Synchronous operations (session 0, drain to idle) ------------------
  Status Insert(Key key, Bytes value);
  Result<Bytes> Search(Key key);
  Status Update(Key key, Bytes value);
  Status Delete(Key key);

  /// Parallel scan. Schemes without a scan protocol (LH*m, LH*s) return
  /// kInvalidArgument.
  virtual Result<std::vector<WireRecord>> Scan(ScanPredicate predicate = {},
                                               bool deterministic = true);

  // --- Sessions ------------------------------------------------------------
  /// Adds another session; returns its index. Session 0 always exists.
  virtual size_t AddSession() = 0;
  virtual size_t session_count() const = 0;

  // --- Asynchronous operations ---------------------------------------------
  /// Starts `op` on `session` and returns its token. Sends the first
  /// message(s) immediately; completion needs the event loop to run.
  /// `value` applies to insert/update.
  virtual OpToken Submit(size_t session, OpType op, Key key, Bytes value) = 0;

  /// True once the operation completed (result not yet taken).
  virtual bool Poll(OpToken token) const = 0;

  /// Returns and removes the outcome of a completed operation; kInternal
  /// if the token is unknown or the operation is still in flight.
  virtual Result<OpOutcome> Take(OpToken token) = 0;

  /// The simulated network this file runs on (drivers step it directly).
  virtual Network& network() = 0;

  virtual StorageStats GetStorageStats() const = 0;

  /// Identifier of the availability code this file runs with — "none" for
  /// schemes without parity; LH*RS reports its parity::CodeSpec spelling
  /// ("rs", "lrc2", "rs+prog", ...). Drivers label reports with it without
  /// knowing the scheme.
  virtual std::string code_name() const { return "none"; }

  /// Installs (or with nullptr removes) the completion listener: called
  /// with the token as the last action of every logical-op completion,
  /// inside event processing. The listener may Submit() new operations
  /// and may Take() the completed one. One listener per file (the session
  /// layer owns it while attached).
  void SetCompletionListener(std::function<void(OpToken)> listener) {
    listener_ = std::move(listener);
  }

 protected:
  /// Shared closed-loop orchestration all five schemes used to duplicate:
  /// submit on `session`, drain the simulation, collect the outcome.
  Result<OpOutcome> RunSync(size_t session, OpType op, Key key, Bytes value);

  OpToken NextToken() { return next_token_++; }

  /// Implementations call this once per completed logical op, after all
  /// their own bookkeeping for the token is in place (Take must succeed
  /// from inside the listener).
  void NotifyComplete(OpToken token) {
    if (listener_) listener_(token);
  }

 private:
  std::function<void(OpToken)> listener_;
  OpToken next_token_ = 1;
};

/// NodeId-indexed registry of typed node pointers. Facades register each
/// node of a given role at creation time and later recover the typed
/// pointer with a plain array lookup — replacing the per-call dynamic_cast
/// of Network::node_as on hot paths. Find() returns nullptr for ids that
/// were never registered (nodes of another role).
template <typename T>
class NodeIndex {
 public:
  void Register(NodeId id, T* node) {
    LHRS_CHECK(id >= 0);
    if (static_cast<size_t>(id) >= index_.size()) {
      index_.resize(static_cast<size_t>(id) + 1, nullptr);
    }
    index_[static_cast<size_t>(id)] = node;
  }

  T* Find(NodeId id) const {
    if (id < 0 || static_cast<size_t>(id) >= index_.size()) return nullptr;
    return index_[static_cast<size_t>(id)];
  }

  /// Find() that CHECK-fails on a miss (callers that know the role).
  T* At(NodeId id) const {
    T* node = Find(id);
    LHRS_CHECK(node != nullptr) << "node " << id << " has unexpected role";
    return node;
  }

 private:
  std::vector<T*> index_;
};

}  // namespace sdds
}  // namespace lhrs

#endif  // LHRS_SDDS_FACADE_H_
