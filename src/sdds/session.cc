#include "sdds/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace lhrs::sdds {

SessionPool::SessionPool(SddsFile& file, size_t sessions, size_t window)
    : file_(file), sessions_(sessions), window_(window) {
  LHRS_CHECK(sessions_ > 0);
  LHRS_CHECK(window_ > 0);
  while (file_.session_count() < sessions_) file_.AddSession();
  inflight_per_session_.assign(sessions_, 0);
  file_.SetCompletionListener([this](OpToken token) { OnComplete(token); });
}

SessionPool::~SessionPool() { file_.SetCompletionListener(nullptr); }

OpToken SessionPool::Submit(size_t session, SddsOp op) {
  LHRS_CHECK_LT(session, sessions_);
  LHRS_CHECK(HasCapacity(session)) << "session window exceeded";
  Inflight entry;
  entry.session = session;
  entry.submitted_us = file_.network().now();
  entry.op = std::move(op);
  // Submit sends messages but cannot complete the op before the event
  // loop runs again, so registering the token afterwards is safe.
  const OpToken token =
      file_.Submit(session, entry.op.op, entry.op.key, Bytes(entry.op.value));
  ++inflight_per_session_[session];
  open_.emplace(token, std::move(entry));
  return token;
}

void SessionPool::OnComplete(OpToken token) {
  auto it = open_.find(token);
  if (it == open_.end()) return;  // A sync call outside the pool.
  Inflight entry = std::move(it->second);
  open_.erase(it);
  --inflight_per_session_[entry.session];
  Result<OpOutcome> outcome = file_.Take(token);
  LHRS_CHECK(outcome.ok()) << "listener fired for unfinished op";
  const SimTime latency = file_.network().now() - entry.submitted_us;
  // Last: the handler may Submit() into the freed window slot.
  if (handler_) handler_(entry.session, entry.op, *outcome, latency);
}

double RunnerReport::OpsPerSimSecond() const {
  if (completed == 0 || end_us <= start_us) return 0.0;
  return static_cast<double>(completed) * 1e6 /
         static_cast<double>(end_us - start_us);
}

SimTime RunnerReport::LatencyPercentileUs(double p) const {
  if (latencies_us.empty()) return 0;
  std::vector<SimTime> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

double RunnerReport::MeanLatencyUs() const {
  if (latencies_us.empty()) return 0.0;
  double sum = 0.0;
  for (SimTime l : latencies_us) sum += static_cast<double>(l);
  return sum / static_cast<double>(latencies_us.size());
}

RunnerReport PipelinedRunner::Run(const OpSource& source,
                                  const OnComplete& on_complete) {
  LHRS_CHECK(source != nullptr);
  Network& net = file_.network();
  RunnerReport report;
  report.start_us = net.now();

  SessionPool pool(file_, options_.sessions, options_.window);
  std::vector<bool> exhausted(options_.sessions, false);
  // The closed-loop degenerate case (see header): drain between ops so a
  // 1x1 run is message-identical with the synchronous API.
  const bool drain_between_ops =
      options_.sessions == 1 && options_.window == 1;

  auto refill_session = [&](size_t session) {
    while (!exhausted[session] && pool.HasCapacity(session) &&
           (options_.max_ops == 0 || report.submitted < options_.max_ops)) {
      std::optional<SddsOp> op = source(session);
      if (!op.has_value()) {
        exhausted[session] = true;
        break;
      }
      pool.Submit(session, std::move(*op));
      ++report.submitted;
    }
  };
  auto refill_all = [&] {
    for (size_t s = 0; s < options_.sessions; ++s) refill_session(s);
  };

  pool.SetCompletionHandler([&](size_t session, const SddsOp& op,
                                const OpOutcome& outcome, SimTime latency) {
    ++report.completed;
    report.latencies_us.push_back(latency);
    if (outcome.status.ok()) {
      ++report.ok;
    } else if (outcome.status.IsNotFound()) {
      ++report.not_found;
    } else {
      ++report.failures;
    }
    if (on_complete) on_complete(session, op, outcome);
    if (!drain_between_ops) refill_session(session);
  });

  if (drain_between_ops) {
    for (;;) {
      refill_all();
      if (pool.inflight_total() == 0) break;  // Source dry.
      net.RunUntilIdle();
      if (pool.inflight_total() > 0) break;  // Op never completed.
    }
  } else {
    refill_all();
    while (pool.inflight_total() > 0) {
      if (!net.Step()) break;  // Idle with ops stuck in flight.
    }
  }
  report.stalled = pool.inflight_total();
  report.end_us = net.now();
  return report;
}

}  // namespace lhrs::sdds
