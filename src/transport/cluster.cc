#include "transport/cluster.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "lhrs/parity_bucket.h"
#include "lhrs/rs_coordinator.h"
#include "lhrs/rs_data_bucket.h"
#include "lhstar/messages.h"
#include "telemetry/run_report.h"
#include "transport/wire.h"

namespace lhrs::transport {

namespace {

/// Placeholder for a node resident in another process. Receives nothing:
/// the RemoteRouter intercepts sends to it, and incoming frames for a
/// not-yet-activated local id are stashed before injection.
class StubNode : public Node {
 public:
  void HandleMessage(const Message& msg) override {
    LHRS_LOG(Warning) << "stub node " << id() << " received message kind "
                      << msg.body->kind() << " (dropped)";
  }
  const char* role() const override { return "stub"; }
};

uint64_t NowUs() { return SocketTransport::MonotonicMicros(); }

/// A peer process dying mid-write must surface as an error return, not a
/// SIGPIPE kill — every member calls this before touching sockets.
void IgnoreSigpipe() { signal(SIGPIPE, SIG_IGN); }

struct MemberContexts {
  std::shared_ptr<SystemContext> ctx;
  std::shared_ptr<LhrsContext> lhrs;
};

/// Every process builds the same context replica: file config, coordinator
/// id 0, and the initial-bucket allocation. Later allocation changes
/// arrive as kAllocUpdate snapshots.
MemberContexts MakeContexts(const ClusterLayout& layout) {
  MemberContexts out;
  out.ctx = std::make_shared<SystemContext>();
  out.ctx->config = layout.file;
  // Real wire latency widens the window between a bucket's first overflow
  // report and the split that relieves it; without damping every insert in
  // that window queues another split.
  out.ctx->config.dedup_overflow_reports = true;
  out.ctx->coordinator = 0;
  for (uint32_t b = 0; b < layout.file.initial_buckets; ++b) {
    out.ctx->allocation.Set(b, static_cast<NodeId>(1 + b));
  }
  out.lhrs = std::make_shared<LhrsContext>();
  out.lhrs->base = out.ctx;
  out.lhrs->m = layout.group_size;
  out.lhrs->coders = std::make_shared<CoderCache>(layout.group_size,
                                                  layout.field, layout.code);
  out.lhrs->policy.base_k = layout.base_k;
  out.lhrs->auto_recover = true;
  return out;
}

/// Adopts the coordinator's authoritative erasure-code choice from a
/// Welcome frame (a member must not guess the scheme from its own flags —
/// mixed codes would corrupt every parity column it hosts).
void ApplyWelcomeCode(const CtrlMsg& welcome, ClusterLayout* layout) {
  layout->field = static_cast<FieldChoice>(welcome.field_choice);
  if (auto spec = parity::CodeSpec::Parse(welcome.code); spec.ok()) {
    layout->code = *spec;
  } else {
    LHRS_LOG(Warning) << "unparseable code spec in Welcome: '" << welcome.code
                      << "', keeping local default";
  }
}

/// Pumps until the transport is quiescent and nothing got delivered for
/// `quiet_iters` consecutive iterations, or `budget_ms` elapses.
/// `service` is invoked each iteration (control-plane upkeep); returning
/// false aborts the wait.
void PumpUntilQuiet(ClusterRuntime& runtime, uint64_t budget_ms,
                    int quiet_iters,
                    const std::function<bool()>& service = {}) {
  const uint64_t deadline = NowUs() + budget_ms * 1000;
  int calm = 0;
  while (NowUs() < deadline && calm < quiet_iters) {
    const size_t activity = runtime.Pump(2);
    if (service && !service()) return;
    if (activity == 0 && runtime.TransportQuiescent()) {
      ++calm;
    } else {
      calm = 0;
    }
  }
}

/// Members may start before the coordinator's listener is bound (forked
/// children, in-process test threads); retry briefly before declaring the
/// coordinator missing.
Status ConnectControl(uint16_t port, ControlConn* out, uint64_t deadline) {
  for (;;) {
    Status status = ControlConn::Connect(port, out);
    if (status.ok() || NowUs() + 100'000 > deadline) return status;
    usleep(100'000);
  }
}

/// Installs the deterministic lossy shim requested by the member options:
/// the full-stack duplicate/drop resilience test (client retry +
/// DuplicateFilter above, ack + bounded retransmit below).
void InstallLossShim(ClusterRuntime& runtime,
                     const ClusterMemberOptions& options) {
  if (options.loss_drop_every == 0 && options.loss_dup_every == 0) return;
  runtime.transport().SetLossShim(
      [n = uint64_t{0}, drop = options.loss_drop_every,
       dup = options.loss_dup_every](bool is_ack, uint64_t) mutable {
        LossAction action;
        if (is_ack) return action;
        ++n;
        if (drop != 0 && n % drop == 0) action.drop = true;
        if (dup != 0 && n % dup == 0) action.duplicates = 1;
        return action;
      });
}

uint64_t Percentile(std::vector<uint64_t>& sorted_latencies, int p) {
  if (sorted_latencies.empty()) return 0;
  const size_t idx = std::min(
      sorted_latencies.size() - 1,
      static_cast<size_t>(static_cast<double>(sorted_latencies.size()) * p /
                          100.0));
  return sorted_latencies[idx];
}

/// Writes the member's telemetry RunReport. The report must be complete
/// valid JSON even when the member is shutting down on SIGTERM — the
/// graceful-shutdown test parses it back.
bool WriteMemberReport(ClusterRuntime& runtime,
                       const ClusterMemberOptions& options,
                       const std::string& role, int rank, bool ok) {
  if (options.report_path.empty()) return true;
  telemetry::RunReport report("cluster_" + role);
  report.AddParam("role", role);
  report.AddParam("rank", static_cast<int64_t>(rank));
  report.AddParam("transport", runtime.transport().name());
  report.AddParam("clean_shutdown", ok ? "true" : "false");
  const SocketTransportStats& ts = runtime.transport().stats();
  report.AddMetric("transport.udp_datagrams_sent", ts.udp_datagrams_sent);
  report.AddMetric("transport.udp_bytes_sent", ts.udp_bytes_sent);
  report.AddMetric("transport.udp_datagrams_received",
                   ts.udp_datagrams_received);
  report.AddMetric("transport.retransmits", ts.retransmits);
  report.AddMetric("transport.send_failures", ts.send_failures);
  report.AddMetric("transport.dup_suppressed", ts.dup_suppressed);
  report.AddMetric("transport.tcp_frames_sent", ts.tcp_frames_sent);
  report.AddMetric("transport.tcp_bytes_sent", ts.tcp_bytes_sent);
  report.AddMetric("transport.tcp_frames_received", ts.tcp_frames_received);
  report.AddMetric("transport.decode_failures", ts.decode_failures);
  report.AddMetric("sim.messages", runtime.network().stats().total_messages());
  if (telemetry::Telemetry* t = runtime.network().telemetry()) {
    report.AddRegistry(t->metrics());
  }
  return report.WriteFile(options.report_path);
}

/// The drain half of a graceful shutdown: in-flight operations finish
/// (bounded), the transport empties its retransmit queues, and only then
/// does the caller write its report and exit.
void DrainRuntime(ClusterRuntime& runtime, uint64_t budget_ms) {
  PumpUntilQuiet(runtime, budget_ms, /*quiet_iters=*/25);
}

/// Answers a coordinator kQuiesce barrier: pump until this process's
/// transport has nothing in flight (bounded), then ack with our rank.
void QuiesceAndAck(ClusterRuntime& runtime, ControlConn& ctrl, int rank) {
  PumpUntilQuiet(runtime, /*budget_ms=*/2000, /*quiet_iters=*/10);
  CtrlMsg ack;
  ack.type = CtrlType::kQuiesced;
  ack.rank = static_cast<uint32_t>(rank);
  ctrl.SendMsg(ack);
}

void LogVerbose(const ClusterMemberOptions& options, const std::string& who,
                const std::string& what) {
  if (!options.verbose) return;
  std::fprintf(stderr, "[%s] %s\n", who.c_str(), what.c_str());
}

}  // namespace

// ---------------------------------------------------------------------------
// ClusterLayout

int ClusterLayout::RankOf(NodeId id) const {
  if (id < 0) return -1;
  if (id == 0) return 0;
  uint32_t u = static_cast<uint32_t>(id) - 1;
  if (u < file.initial_buckets) return ServerRankOfBucket(u);
  u -= file.initial_buckets;
  if (u < server_ranks * spares_per_server) {
    return 1 + static_cast<int>(u / spares_per_server);
  }
  u -= server_ranks * spares_per_server;
  if (u < client_ranks * sessions_per_client) {
    return 1 + static_cast<int>(server_ranks) +
           static_cast<int>(u / sessions_per_client);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// ClusterRuntime

ClusterRuntime::ClusterRuntime(const ClusterLayout& layout, int my_rank,
                               NetworkConfig net_config)
    : layout_(layout), my_rank_(my_rank), network_(net_config) {
  RegisterAllWireCodecs();
  transport_.set_my_rank(my_rank);
  transport_.SetNodeRank([this](NodeId id) { return layout_.RankOf(id); });
  transport_.SetDeliverFn(
      [this](NodeId from, NodeId to, std::unique_ptr<MessageBody> body) {
        if (layout_.RankOf(to) != my_rank_) return false;  // Misrouted.
        if (!network_.available(to)) return false;  // Crashed: never ack.
        if (!resident_.contains(to)) {
          // Activation race: the data plane outran the control plane.
          // Accept (and ack) now, inject once the node exists.
          stash_[to].push_back(Stashed{from, std::move(body)});
          return true;
        }
        network_.Inject(from, to, std::move(body));
        return true;
      });
  transport_.SetFailFn(
      [this](NodeId from, NodeId to, std::unique_ptr<MessageBody> body) {
        // Retransmits exhausted: the peer process is dead or the node is
        // crashed over there. Mirror the coordinator's liveness oracle
        // locally and surface the simulator's RPC-timeout signal.
        if (to >= 0 && static_cast<size_t>(to) < network_.node_count() &&
            network_.available(to)) {
          network_.SetAvailable(to, false);
        }
        if (body != nullptr) {
          network_.NotifyDeliveryFailure(from, to, std::move(body));
        }
      });
  network_.SetRemoteRouter(this);
  // Real sockets lose and duplicate: keep the protocol hardening from the
  // chaos PR (client retries, server-side duplicate filters) armed.
  network_.SetLossyTransport(true);
}

ClusterRuntime::~ClusterRuntime() { network_.SetRemoteRouter(nullptr); }

Status ClusterRuntime::OpenTransport() { return transport_.Open(); }

void ClusterRuntime::SetEndpoints(const std::vector<Endpoint>& endpoints) {
  for (size_t rank = 0; rank < endpoints.size(); ++rank) {
    if (static_cast<int>(rank) == my_rank_) continue;
    transport_.SetPeer(static_cast<int>(rank), endpoints[rank]);
  }
}

void ClusterRuntime::BuildStubs() {
  for (size_t i = network_.node_count(); i < layout_.total_nodes(); ++i) {
    network_.AddNode(std::make_unique<StubNode>());
  }
}

void ClusterRuntime::MakeResident(NodeId id, std::unique_ptr<Node> node) {
  LHRS_CHECK(layout_.RankOf(id) == my_rank_)
      << "node " << id << " is not resident on rank " << my_rank_;
  network_.ReplaceNode(id, std::move(node));
  resident_.insert(id);
  auto it = stash_.find(id);
  if (it != stash_.end()) {
    for (Stashed& s : it->second) {
      network_.Inject(s.from, id, std::move(s.body));
    }
    stash_.erase(it);
  }
}

size_t ClusterRuntime::Pump(int timeout_ms) {
  const uint64_t events_before = network_.processed_events();
  const size_t delivered = transport_.Pump(timeout_ms);
  const uint64_t wall = NowUs();
  if (epoch_us_ == 0) epoch_us_ = wall;
  network_.RunUntil(static_cast<SimTime>(wall - epoch_us_));
  return delivered +
         static_cast<size_t>(network_.processed_events() - events_before);
}

void ClusterRuntime::RouteRemote(NodeId from, NodeId to,
                                 std::unique_ptr<MessageBody> body) {
  // The local liveness view gates the wire: once a destination is known
  // dead here (crash broadcast or exhausted retransmits), further sends
  // bounce immediately — same signal the simulator's timeout model gives,
  // without burning a full retransmit cycle per message.
  if (to >= 0 && static_cast<size_t>(to) < network_.node_count() &&
      !network_.available(to)) {
    network_.NotifyDeliveryFailure(from, to, std::move(body));
    return;
  }
  transport_.Send(from, to, std::move(body));
}

// ---------------------------------------------------------------------------
// ClusterServer

ClusterServer::ClusterServer(ClusterMemberOptions options, int rank)
    : options_(std::move(options)), rank_(rank) {}

int ClusterServer::Run() {
  const std::string who = "server" + std::to_string(rank_);
  const uint64_t deadline = NowUs() + options_.deadline_ms * 1000;
  IgnoreSigpipe();
  RegisterLhStarMessageNames();
  RegisterLhrsMessageNames();

  ClusterRuntime runtime(options_.layout, rank_, options_.net);
  if (!runtime.OpenTransport().ok()) return 2;
  InstallLossShim(runtime, options_);
  ControlConn ctrl;
  if (!ConnectControl(options_.control_port, &ctrl, deadline).ok()) return 2;

  CtrlMsg hello;
  hello.type = CtrlType::kHello;
  hello.rank = static_cast<uint32_t>(rank_);
  hello.endpoint = runtime.local();
  ctrl.SendMsg(hello);

  // Wait for the Welcome carrying every rank's data-plane endpoints and
  // the authoritative erasure-code choice.
  std::vector<Endpoint> endpoints;
  while (NowUs() < deadline) {
    if (std::optional<CtrlMsg> m = ctrl.Poll();
        m.has_value() && m->type == CtrlType::kWelcome) {
      endpoints = m->endpoints;
      ApplyWelcomeCode(*m, &options_.layout);
      break;
    }
    if (ctrl.closed()) return 3;
    usleep(1000);
  }
  if (endpoints.empty()) return 3;

  runtime.SetEndpoints(endpoints);
  runtime.BuildStubs();
  MemberContexts m = MakeContexts(options_.layout);
  telemetry::Telemetry* telemetry = runtime.network().EnableTelemetry();
  runtime.transport().AttachTelemetry(telemetry);

  // The initial buckets striped onto this rank exist from the start,
  // pre-initialized — exactly as in the single-process facade.
  for (uint32_t b = 0; b < options_.layout.file.initial_buckets; ++b) {
    if (options_.layout.ServerRankOfBucket(b) != rank_) continue;
    runtime.MakeResident(
        static_cast<NodeId>(1 + b),
        std::make_unique<RsDataBucketNode>(m.lhrs, b, /*level=*/0,
                                           /*pre_initialized=*/true));
  }

  CtrlMsg ready;
  ready.type = CtrlType::kReady;
  ctrl.SendMsg(ready);
  LogVerbose(options_, who, "ready");

  bool stop = false;
  int exit_code = 0;
  while (!stop) {
    if (NowUs() > deadline) {
      exit_code = 4;
      break;
    }
    runtime.Pump(2);
    ctrl.Flush();
    while (std::optional<CtrlMsg> msg = ctrl.Poll()) {
      switch (msg->type) {
        case CtrlType::kActivateNode: {
          std::unique_ptr<Node> node;
          if (msg->is_parity) {
            node = std::make_unique<ParityBucketNode>(
                m.lhrs, msg->bucket, msg->level, msg->k,
                msg->pre_initialized);
          } else {
            node = std::make_unique<RsDataBucketNode>(
                m.lhrs, msg->bucket, msg->level, msg->pre_initialized);
          }
          runtime.MakeResident(msg->node, std::move(node));
          LogVerbose(options_, who,
                     "activated node " + std::to_string(msg->node));
          break;
        }
        case CtrlType::kAllocUpdate:
          m.ctx->allocation.Restore(msg->entries, msg->version);
          break;
        case CtrlType::kSetAvailable:
          runtime.network().SetAvailable(msg->node, msg->up);
          break;
        case CtrlType::kQuiesce:
          QuiesceAndAck(runtime, ctrl, rank_);
          break;
        case CtrlType::kStop:
          stop = true;
          break;
        default:
          break;
      }
    }
    if (ctrl.closed()) stop = true;  // Coordinator gone: drain and exit.
    if (stop_requested_.load()) stop = true;
  }

  LogVerbose(options_, who, "draining");
  DrainRuntime(runtime, /*budget_ms=*/500);
  const bool wrote =
      WriteMemberReport(runtime, options_, "server", rank_, exit_code == 0);
  CtrlMsg bye;
  bye.type = CtrlType::kGoodbye;
  ctrl.SendMsg(bye);
  ctrl.Flush();
  return wrote ? exit_code : 5;
}

// ---------------------------------------------------------------------------
// ClusterClient

namespace {

/// One scripted client operation plus its expected outcome.
struct ScriptOp {
  OpType op = OpType::kInsert;
  Key key = 0;
  uint32_t version = 1;        ///< Which deterministic payload to write.
  uint32_t expect_version = 0; ///< Search: payload to expect (0 = none).
  bool expect_missing = false; ///< Search: key must be gone.
};

/// Deterministic payload for (key, version): reproducible on any process,
/// so verification needs no shared state.
Bytes ValueFor(Key key, uint32_t version) {
  Rng rng(0x6c75737465725250ULL ^ (key * 0x9E3779B97F4A7C15ULL) ^ version);
  return rng.RandomBytes(24 + static_cast<size_t>(key % 17));
}

bool OutcomeMatches(const ScriptOp& op, const OpOutcome& out) {
  switch (op.op) {
    case OpType::kInsert:
      // A transport-level duplicate of an acked insert surfaces as
      // kAlreadyExists; the retry policy maps it back, but accept it
      // defensively too.
      return out.status.ok() || out.status.IsAlreadyExists();
    case OpType::kUpdate:
      return out.status.ok();
    case OpType::kDelete:
      return out.status.ok() || out.status.IsNotFound();
    case OpType::kSearch: {
      if (op.expect_missing) return out.status.IsNotFound();
      if (!out.status.ok()) return false;
      const Bytes expected = ValueFor(op.key, op.expect_version);
      if (out.value.size() != expected.size()) return false;
      return std::equal(expected.begin(), expected.end(),
                        out.value.data());
    }
  }
  return false;
}

/// The phase-1 script for one session: inserts (sized to overflow buckets
/// and force splits), a full search sweep, updates of every even key and
/// deletes of every fifth — four passes with a barrier between them so
/// same-key operations never race inside the open-loop window.
std::vector<std::vector<ScriptOp>> MixedScript(Key base, uint32_t keys) {
  std::vector<std::vector<ScriptOp>> passes(4);
  for (uint32_t i = 0; i < keys; ++i) {
    const Key key = base + i;
    passes[0].push_back({OpType::kInsert, key, 1, 0, false});
    passes[1].push_back({OpType::kSearch, key, 0, 1, false});
    if (i % 2 == 0) {
      passes[2].push_back({OpType::kUpdate, key, 2, 0, false});
    }
    if (i % 5 == 0) {
      passes[3].push_back({OpType::kDelete, key, 0, 0, false});
    }
  }
  return passes;
}

/// The phase-2 script: verify every key phase 1 left live (and that the
/// deleted ones stay gone) — including the records that lived on the
/// crashed-and-recovered bucket.
std::vector<std::vector<ScriptOp>> VerifyScript(Key base, uint32_t keys) {
  std::vector<std::vector<ScriptOp>> passes(1);
  for (uint32_t i = 0; i < keys; ++i) {
    const Key key = base + i;
    ScriptOp op{OpType::kSearch, key, 0, 0, false};
    if (i % 5 == 0) {
      op.expect_missing = true;
    } else {
      op.expect_version = i % 2 == 0 ? 2 : 1;
    }
    passes[0].push_back(op);
  }
  return passes;
}

/// Runs scripted passes across this process's sessions, open-loop with a
/// bounded per-session window. `service` keeps the control plane alive
/// mid-phase (allocation updates, crash notices); returning false aborts.
PhaseResult RunPasses(ClusterRuntime& runtime,
                      std::vector<ClientNode*>& sessions,
                      const std::vector<std::vector<ScriptOp>>& passes,
                      size_t window, uint64_t deadline,
                      const std::function<bool()>& service) {
  PhaseResult result;
  std::vector<uint64_t> latencies;
  const uint64_t phase_start = NowUs();
  for (const std::vector<ScriptOp>& pass : passes) {
    // Deal the pass round-robin across sessions.
    struct SessionState {
      std::vector<const ScriptOp*> ops;
      size_t next = 0;
      struct Inflight {
        const ScriptOp* op;
        uint64_t start_us;
      };
      std::map<uint64_t, Inflight> inflight;
    };
    std::vector<SessionState> state(sessions.size());
    for (size_t i = 0; i < pass.size(); ++i) {
      state[i % sessions.size()].ops.push_back(&pass[i]);
    }
    bool done = false;
    while (!done) {
      if (NowUs() > deadline) {
        result.ok = false;
        result.failures += pass.size();
        return result;
      }
      done = true;
      for (size_t s = 0; s < sessions.size(); ++s) {
        SessionState& ss = state[s];
        while (ss.inflight.size() < window && ss.next < ss.ops.size()) {
          const ScriptOp* op = ss.ops[ss.next++];
          BufferView value;
          if (op->op == OpType::kInsert || op->op == OpType::kUpdate) {
            value = BufferView(ValueFor(op->key, op->version));
          }
          const uint64_t op_id =
              sessions[s]->StartOp(op->op, op->key, std::move(value));
          ss.inflight.emplace(op_id,
                              SessionState::Inflight{op, NowUs()});
        }
        if (ss.next < ss.ops.size() || !ss.inflight.empty()) done = false;
      }
      runtime.Pump(1);
      if (service && !service()) {
        result.ok = false;
        return result;
      }
      for (size_t s = 0; s < sessions.size(); ++s) {
        SessionState& ss = state[s];
        for (auto it = ss.inflight.begin(); it != ss.inflight.end();) {
          if (!sessions[s]->IsDone(it->first)) {
            ++it;
            continue;
          }
          Result<OpOutcome> outcome = sessions[s]->TakeResult(it->first);
          ++result.ops;
          latencies.push_back(NowUs() - it->second.start_us);
          if (!outcome.ok() ||
              !OutcomeMatches(*it->second.op, outcome.value())) {
            ++result.failures;
          }
          it = ss.inflight.erase(it);
        }
      }
    }
  }
  result.elapsed_us = NowUs() - phase_start;
  std::sort(latencies.begin(), latencies.end());
  result.p50_us = Percentile(latencies, 50);
  result.p95_us = Percentile(latencies, 95);
  result.p99_us = Percentile(latencies, 99);
  result.ok = result.ok && result.failures == 0;
  return result;
}

}  // namespace

ClusterClient::ClusterClient(ClusterMemberOptions options, int rank,
                             uint32_t keys_per_session)
    : options_(std::move(options)),
      rank_(rank),
      keys_per_session_(keys_per_session) {}

int ClusterClient::Run() {
  const std::string who = "client" + std::to_string(rank_);
  const uint64_t deadline = NowUs() + options_.deadline_ms * 1000;
  IgnoreSigpipe();
  RegisterLhStarMessageNames();
  RegisterLhrsMessageNames();

  ClusterLayout layout = options_.layout;  // Code choice patched by Welcome.
  const int client_index = rank_ - 1 - static_cast<int>(layout.server_ranks);
  LHRS_CHECK(client_index >= 0 &&
             client_index < static_cast<int>(layout.client_ranks));

  ClusterRuntime runtime(layout, rank_, options_.net);
  if (!runtime.OpenTransport().ok()) return 2;
  InstallLossShim(runtime, options_);
  ControlConn ctrl;
  if (!ConnectControl(options_.control_port, &ctrl, deadline).ok()) return 2;

  CtrlMsg hello;
  hello.type = CtrlType::kHello;
  hello.rank = static_cast<uint32_t>(rank_);
  hello.endpoint = runtime.local();
  ctrl.SendMsg(hello);

  std::vector<Endpoint> endpoints;
  while (NowUs() < deadline) {
    if (std::optional<CtrlMsg> m = ctrl.Poll();
        m.has_value() && m->type == CtrlType::kWelcome) {
      endpoints = m->endpoints;
      ApplyWelcomeCode(*m, &layout);
      break;
    }
    if (ctrl.closed()) return 3;
    usleep(1000);
  }
  if (endpoints.empty()) return 3;

  runtime.SetEndpoints(endpoints);
  runtime.BuildStubs();
  MemberContexts m = MakeContexts(layout);
  telemetry::Telemetry* telemetry = runtime.network().EnableTelemetry();
  runtime.transport().AttachTelemetry(telemetry);

  // Resident client sessions, each with the at-least-once retry layer on:
  // a real transport loses and duplicates, and the bounded-resend /
  // coordinator-escalation machinery is what absorbs it.
  std::vector<ClientNode*> sessions;
  for (uint32_t s = 0; s < layout.sessions_per_client; ++s) {
    auto client = std::make_unique<ClientNode>(m.ctx);
    ClientNode* ptr = client.get();
    ClientRetryPolicy policy;
    policy.enabled = true;
    policy.request_timeout_us = 50'000;  // Wall-clock now; loopback is fast.
    policy.max_backoff_us = 100'000;
    policy.seed = 42 + static_cast<uint64_t>(rank_) * 100 + s;
    runtime.MakeResident(
        layout.first_client_id(static_cast<uint32_t>(client_index)) +
            static_cast<NodeId>(s),
        std::move(client));
    ptr->SetRetryPolicy(policy);
    sessions.push_back(ptr);
  }

  CtrlMsg ready;
  ready.type = CtrlType::kReady;
  ctrl.SendMsg(ready);
  LogVerbose(options_, who, "ready");

  const Key key_base =
      (static_cast<Key>(client_index) + 1) * 1'000'000ULL;
  const uint32_t total_keys =
      keys_per_session_ * layout.sessions_per_client;

  bool stop = false;
  int exit_code = 0;
  // Mid-phase control upkeep; Stop or a dead coordinator aborts the phase.
  const auto service = [&]() {
    ctrl.Flush();
    while (std::optional<CtrlMsg> msg = ctrl.Poll()) {
      switch (msg->type) {
        case CtrlType::kAllocUpdate:
          m.ctx->allocation.Restore(msg->entries, msg->version);
          break;
        case CtrlType::kSetAvailable:
          runtime.network().SetAvailable(msg->node, msg->up);
          break;
        case CtrlType::kStop:
          stop = true;
          break;
        default:
          break;
      }
    }
    if (ctrl.closed()) stop = true;
    if (stop_requested_.load()) stop = true;
    return !stop;
  };

  while (!stop) {
    if (NowUs() > deadline) {
      exit_code = 4;
      break;
    }
    runtime.Pump(2);
    ctrl.Flush();
    std::optional<uint32_t> run_phase;
    while (std::optional<CtrlMsg> msg = ctrl.Poll()) {
      if (msg->type == CtrlType::kRunPhase) {
        run_phase = msg->phase;
      } else if (msg->type == CtrlType::kAllocUpdate) {
        m.ctx->allocation.Restore(msg->entries, msg->version);
      } else if (msg->type == CtrlType::kSetAvailable) {
        runtime.network().SetAvailable(msg->node, msg->up);
      } else if (msg->type == CtrlType::kQuiesce) {
        QuiesceAndAck(runtime, ctrl, rank_);
      } else if (msg->type == CtrlType::kStop) {
        stop = true;
      }
    }
    if (ctrl.closed() || stop_requested_.load()) stop = true;
    if (stop || !run_phase.has_value()) continue;

    LogVerbose(options_, who, "phase " + std::to_string(*run_phase));
    const auto passes = *run_phase == 1
                            ? MixedScript(key_base, total_keys)
                            : VerifyScript(key_base, total_keys);
    PhaseResult result = RunPasses(runtime, sessions, passes,
                                   /*window=*/4, deadline, service);
    CtrlMsg done;
    done.type = CtrlType::kPhaseDone;
    done.phase = *run_phase;
    done.ok = result.ok;
    done.ops = result.ops;
    done.failures = result.failures;
    done.elapsed_us = result.elapsed_us;
    done.p50_us = result.p50_us;
    done.p95_us = result.p95_us;
    done.p99_us = result.p99_us;
    ctrl.SendMsg(done);
    LogVerbose(options_, who,
               "phase " + std::to_string(*run_phase) + " done: " +
                   std::to_string(result.ops) + " ops, " +
                   std::to_string(result.failures) + " failures");
  }

  LogVerbose(options_, who, "draining");
  DrainRuntime(runtime, /*budget_ms=*/500);
  const bool wrote =
      WriteMemberReport(runtime, options_, "client", rank_, exit_code == 0);
  CtrlMsg bye;
  bye.type = CtrlType::kGoodbye;
  ctrl.SendMsg(bye);
  ctrl.Flush();
  return wrote ? exit_code : 5;
}

// ---------------------------------------------------------------------------
// ClusterCoordinator

ClusterCoordinator::ClusterCoordinator(Options options)
    : options_(std::move(options)) {}

int ClusterCoordinator::Run() {
  const std::string who = "coord";
  const uint64_t deadline = NowUs() + options_.deadline_ms * 1000;
  IgnoreSigpipe();
  RegisterLhStarMessageNames();
  RegisterLhrsMessageNames();

  const ClusterLayout& layout = options_.layout;
  ControlListener listener;
  if (!listener.Open(options_.control_port).ok()) return 2;
  options_.control_port = listener.port();

  ClusterRuntime runtime(layout, /*my_rank=*/0, options_.net);
  if (!runtime.OpenTransport().ok()) return 2;
  InstallLossShim(runtime, options_);

  // Accept and identify every member.
  std::map<int, ControlConn> members;       // rank -> control connection.
  std::map<int, Endpoint> member_endpoints; // rank -> data-plane address.
  std::vector<ControlConn> unidentified;
  const size_t expected = layout.total_ranks() - 1;
  while (members.size() < expected) {
    if (NowUs() > deadline) return 3;
    if (std::optional<ControlConn> conn = listener.Accept()) {
      unidentified.push_back(std::move(*conn));
    }
    for (auto it = unidentified.begin(); it != unidentified.end();) {
      std::optional<CtrlMsg> msg = it->Poll();
      if (msg.has_value() && msg->type == CtrlType::kHello) {
        const int rank = static_cast<int>(msg->rank);
        member_endpoints[rank] = msg->endpoint;
        members.emplace(rank, std::move(*it));
        it = unidentified.erase(it);
      } else if (it->closed()) {
        it = unidentified.erase(it);
      } else {
        ++it;
      }
    }
    usleep(1000);
  }
  LogVerbose(options_, who, "all members connected");

  // Welcome everyone with the full endpoint table.
  std::vector<Endpoint> endpoints(layout.total_ranks());
  endpoints[0] = runtime.local();
  for (const auto& [rank, ep] : member_endpoints) {
    endpoints[static_cast<size_t>(rank)] = ep;
  }
  CtrlMsg welcome;
  welcome.type = CtrlType::kWelcome;
  welcome.endpoints = endpoints;
  welcome.field_choice = static_cast<uint32_t>(layout.field);
  welcome.code = layout.code.Name();
  for (auto& [rank, conn] : members) conn.SendMsg(welcome);

  runtime.SetEndpoints(endpoints);
  runtime.BuildStubs();
  MemberContexts m = MakeContexts(layout);
  telemetry::Telemetry* telemetry = runtime.network().EnableTelemetry();
  runtime.transport().AttachTelemetry(telemetry);

  // Spare-slot allocator: round-robin across the server ranks' pools.
  std::vector<uint32_t> spare_used(layout.server_ranks, 0);
  uint32_t next_server = 0;
  const auto pop_spare = [&]() -> std::pair<NodeId, int> {
    for (uint32_t tries = 0; tries < layout.server_ranks; ++tries) {
      const uint32_t s = next_server;
      next_server = (next_server + 1) % layout.server_ranks;
      if (spare_used[s] < layout.spares_per_server) {
        const NodeId id =
            layout.first_spare(s) + static_cast<NodeId>(spare_used[s]++);
        return {id, 1 + static_cast<int>(s)};
      }
    }
    LHRS_LOG(Fatal) << "cluster spare pool exhausted";
    return {kInvalidNode, -1};
  };

  auto coordinator = std::make_unique<RsCoordinatorNode>(m.lhrs);
  RsCoordinatorNode* rs = coordinator.get();
  rs->SetBucketFactory([&](BucketNo bucket, Level level) {
    const auto [id, rank] = pop_spare();
    CtrlMsg activate;
    activate.type = CtrlType::kActivateNode;
    activate.node = id;
    activate.is_parity = false;
    activate.pre_initialized = false;
    activate.bucket = bucket;
    activate.level = level;
    members.at(rank).SendMsg(activate);
    return id;
  });
  rs->SetParityFactory(
      [&](uint32_t group, uint32_t parity_index, uint32_t k, bool spare) {
        const auto [id, rank] = pop_spare();
        CtrlMsg activate;
        activate.type = CtrlType::kActivateNode;
        activate.node = id;
        activate.is_parity = true;
        activate.pre_initialized = !spare;
        activate.bucket = group;
        activate.level = parity_index;
        activate.k = k;
        members.at(rank).SendMsg(activate);
        return id;
      });
  runtime.MakeResident(0, std::move(coordinator));

  // Wait for every member's Ready before any data-plane traffic.
  std::set<int> ready;
  while (ready.size() < expected) {
    if (NowUs() > deadline) return 3;
    for (auto& [rank, conn] : members) {
      while (std::optional<CtrlMsg> msg = conn.Poll()) {
        if (msg->type == CtrlType::kReady) ready.insert(rank);
      }
    }
    usleep(1000);
  }
  LogVerbose(options_, who, "all members ready");

  // Initial parity groups: allocates parity buckets from the spare pools
  // (ActivateNode to their owners) and pushes group configs on the wire.
  rs->InitializeGroups();

  // Control upkeep run every pump: forward allocation changes the moment
  // the coordinator's authoritative table moves (splits, recoveries), and
  // collect phase reports.
  uint64_t last_alloc_version = 0;
  const auto broadcast_alloc = [&]() {
    CtrlMsg update;
    update.type = CtrlType::kAllocUpdate;
    update.version = m.ctx->allocation.version();
    update.entries = m.ctx->allocation.entries();
    for (auto& [rank, conn] : members) conn.SendMsg(update);
    last_alloc_version = update.version;
  };
  std::set<int> quiesced;
  const auto service = [&]() {
    if (m.ctx->allocation.version() != last_alloc_version) {
      broadcast_alloc();
    }
    for (auto& [rank, conn] : members) {
      conn.Flush();
      while (std::optional<CtrlMsg> msg = conn.Poll()) {
        if (msg->type == CtrlType::kQuiesced) {
          quiesced.insert(rank);
        } else if (msg->type == CtrlType::kPhaseDone) {
          PhaseResult r;
          r.ok = msg->ok;
          r.ops = msg->ops;
          r.failures = msg->failures;
          r.elapsed_us = msg->elapsed_us;
          r.p50_us = msg->p50_us;
          r.p95_us = msg->p95_us;
          r.p99_us = msg->p99_us;
          results_[{msg->phase, rank}] = r;
        } else if (msg->type == CtrlType::kGoodbye) {
          goodbyes_.insert(rank);
        }
      }
    }
    return !stop_requested_.load();
  };
  broadcast_alloc();

  // Data-plane barrier: every member drains its transport (all in-flight
  // datagrams delivered or abandoned), then acks. Phase completion only
  // proves the clients' replies arrived — parity deltas trail behind on
  // their own datagrams, and a crash injected while one is still in
  // flight orphans the update (the recovered column then misses it). The
  // simulator injects crashes at protocol quiescence; this is the
  // cluster-mode equivalent.
  const auto quiesce_members = [&]() {
    quiesced.clear();
    CtrlMsg q;
    q.type = CtrlType::kQuiesce;
    for (auto& [rank, conn] : members) conn.SendMsg(q);
    while (NowUs() < deadline && !stop_requested_.load()) {
      runtime.Pump(2);
      if (!service()) return false;
      if (quiesced.size() == members.size() &&
          runtime.TransportQuiescent()) {
        return true;
      }
    }
    return false;
  };

  // Let the group configuration settle before opening the workload.
  PumpUntilQuiet(runtime, /*budget_ms=*/2000, /*quiet_iters=*/25, service);

  const auto client_ranks = [&]() {
    std::vector<int> ranks;
    for (uint32_t c = 0; c < layout.client_ranks; ++c) {
      ranks.push_back(1 + static_cast<int>(layout.server_ranks) +
                      static_cast<int>(c));
    }
    return ranks;
  }();
  const auto run_phase = [&](uint32_t phase) {
    CtrlMsg msg;
    msg.type = CtrlType::kRunPhase;
    msg.phase = phase;
    for (int rank : client_ranks) members.at(rank).SendMsg(msg);
    while (NowUs() < deadline && !stop_requested_.load()) {
      runtime.Pump(2);
      if (!service()) break;
      bool all = true;
      for (int rank : client_ranks) {
        if (!results_.contains({phase, rank})) all = false;
      }
      if (all) return true;
    }
    return false;
  };

  bool ok = true;

  // Phase 1: the mixed workload — inserts sized to overflow buckets, so
  // at least one split runs over the real transport mid-phase.
  LogVerbose(options_, who, "phase 1");
  const BucketNo buckets_before = rs->state().bucket_count();
  if (!run_phase(1)) ok = false;
  const bool split_happened = rs->state().bucket_count() > buckets_before;
  if (!split_happened) {
    std::fprintf(stderr, "[coord] FAIL: no split during phase 1\n");
    ok = false;
  }

  // The crash drill: kill the server slot of one data bucket everywhere,
  // then run the coordinator's k-availability recovery over the wire.
  bool recovered = false;
  if (ok && options_.crash_bucket >= 0 && !quiesce_members()) {
    std::fprintf(stderr, "[coord] FAIL: pre-crash quiesce barrier\n");
    ok = false;
  }
  if (ok && options_.crash_bucket >= 0) {
    const BucketNo victim_bucket =
        static_cast<BucketNo>(options_.crash_bucket);
    const NodeId victim = m.ctx->allocation.Lookup(victim_bucket);
    LogVerbose(options_, who,
               "crashing bucket " + std::to_string(victim_bucket) +
                   " (node " + std::to_string(victim) + ")");
    CtrlMsg crash;
    crash.type = CtrlType::kSetAvailable;
    crash.node = victim;
    crash.up = false;
    for (auto& [rank, conn] : members) conn.SendMsg(crash);
    runtime.network().SetAvailable(victim, false);

    const uint64_t recoveries_before = rs->recoveries_completed();
    rs->NotifyUnavailable(victim);
    while (NowUs() < deadline && !stop_requested_.load()) {
      runtime.Pump(2);
      if (!service()) break;
      if (rs->recoveries_completed() > recoveries_before) {
        recovered = true;
        break;
      }
    }
    if (!recovered) {
      std::fprintf(stderr, "[coord] FAIL: recovery did not complete\n");
      ok = false;
    }
    // Post-recovery barrier: the spare's install and the refreshed group
    // configs must land everywhere before verification reads begin.
    if (ok && !quiesce_members()) {
      std::fprintf(stderr, "[coord] FAIL: post-recovery quiesce barrier\n");
      ok = false;
    }
  }

  // Phase 2: every surviving key must read back, including the recovered
  // bucket's records.
  if (ok) {
    LogVerbose(options_, who, "phase 2");
    if (!run_phase(2)) ok = false;
  }
  for (const auto& [key, result] : results_) {
    if (!result.ok || result.failures != 0) ok = false;
  }

  // Stop everyone, wait for the goodbyes (members drain + write reports).
  CtrlMsg stop;
  stop.type = CtrlType::kStop;
  for (auto& [rank, conn] : members) conn.SendMsg(stop);
  const uint64_t bye_deadline = std::min(deadline, NowUs() + 5'000'000);
  while (goodbyes_.size() < expected && NowUs() < bye_deadline) {
    runtime.Pump(2);
    service();
  }

  DrainRuntime(runtime, /*budget_ms=*/300);
  if (!options_.report_path.empty()) {
    telemetry::RunReport report("cluster_coordinator");
    report.AddParam("transport", runtime.transport().name());
    report.AddParam("server_ranks", static_cast<int64_t>(layout.server_ranks));
    report.AddParam("client_ranks", static_cast<int64_t>(layout.client_ranks));
    report.AddParam("group_size", static_cast<int64_t>(layout.group_size));
    report.AddParam("base_k", static_cast<int64_t>(layout.base_k));
    report.AddParam("code", layout.code.Name());
    report.AddMetric("buckets_final",
                     static_cast<uint64_t>(rs->state().bucket_count()));
    report.AddMetric("split_happened", split_happened ? uint64_t{1} : 0);
    report.AddMetric("recoveries_completed", rs->recoveries_completed());
    report.AddMetric("columns_recovered", rs->columns_recovered());
    report.AddMetric("degraded_reads_served", rs->degraded_reads_served());
    for (const auto& [key, result] : results_) {
      const std::string prefix = "phase" + std::to_string(key.first) +
                                 ".rank" + std::to_string(key.second) + ".";
      report.AddMetric(prefix + "ops", result.ops);
      report.AddMetric(prefix + "failures", result.failures);
      report.AddMetric(prefix + "elapsed_us", result.elapsed_us);
      report.AddMetric(prefix + "p99_us", result.p99_us);
    }
    if (telemetry != nullptr) report.AddRegistry(telemetry->metrics());
    report.AddParam("clean_shutdown", ok ? "true" : "false");
    if (!report.WriteFile(options_.report_path)) ok = false;
  }
  LogVerbose(options_, who, ok ? "success" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace lhrs::transport
