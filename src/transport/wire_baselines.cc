// Wire codecs of the three baseline schemes: LH*g (range [300, 400)),
// LH*m ([400, 500)) and LH*s ([500, 600)). The composite LH*m / LH*s
// facades remain simulator-only deployments, but their messages get full
// codecs so the wire format covers every registered kind and the composite
// schemes could be distributed later without protocol changes.

#include <memory>
#include <utility>

#include "baselines/lhg/lhg_messages.h"
#include "baselines/lhm/lhm_file.h"
#include "baselines/lhs/lhs_file.h"
#include "transport/wire.h"
#include "transport/wire_internal.h"

namespace lhrs::transport {
namespace {

#define RD(expr)                 \
  do {                           \
    if (!(expr)) return nullptr; \
  } while (0)

// --- LH*g -------------------------------------------------------------------

// SerializedParityRecord: 12 + payload.
void PutSerializedParityRecord(const lhg::SerializedParityRecord& rec,
                               WireWriter& w) {
  w.U64(rec.gkey);
  w.View(rec.data);
}

bool GetSerializedParityRecord(WireReader& r,
                               lhg::SerializedParityRecord* rec) {
  return r.U64(&rec->gkey) && r.View(&rec->data);
}

constexpr size_t kSerializedParityRecordMinSize = 12;

// TaggedRecord: 20 + payload.
void PutTaggedRecord(const lhg::TaggedRecord& rec, WireWriter& w) {
  w.U64(rec.gkey);
  w.U64(rec.key);
  w.View(rec.value);
}

bool GetTaggedRecord(WireReader& r, lhg::TaggedRecord* rec) {
  return r.U64(&rec->gkey) && r.U64(&rec->key) && r.View(&rec->value);
}

constexpr size_t kTaggedRecordMinSize = 20;

bool SerParityUpdate(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::ParityUpdateMsg>(body);
  w.U64(m.gkey);
  w.U8(static_cast<uint8_t>(m.op));
  w.Pad(3);
  w.U64(m.member);
  w.U32(m.new_length);
  w.I32(m.reply_to);
  w.U32(m.intended_bucket);
  w.I32(m.hops);
  w.View(m.delta);
  return true;
}

std::unique_ptr<MessageBody> DeParityUpdate(WireReader& r) {
  auto m = std::make_unique<lhg::ParityUpdateMsg>();
  RD(r.U64(&m->gkey));
  uint8_t op;
  RD(r.U8(&op) && op <= 2);
  m->op = static_cast<lhg::ParityUpdateMsg::Op>(op);
  RD(r.Skip(3));
  RD(r.U64(&m->member));
  RD(r.U32(&m->new_length));
  RD(r.I32(&m->reply_to));
  RD(r.U32(&m->intended_bucket));
  int32_t hops;
  RD(r.I32(&hops));
  m->hops = hops;
  RD(r.View(&m->delta));
  return m;
}

bool SerParityIam(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::ParityIamMsg>(body);
  w.U32(m.bucket);
  w.U32(m.level);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeParityIam(WireReader& r) {
  auto m = std::make_unique<lhg::ParityIamMsg>();
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  RD(r.Skip(4));
  return m;
}

bool SerCollectForData(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::CollectForDataMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.U32(m.file_level);
  w.U32(m.group_size);
  w.U32(m.initial_buckets);
  return true;
}

std::unique_ptr<MessageBody> DeCollectForData(WireReader& r) {
  auto m = std::make_unique<lhg::CollectForDataMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->file_level));
  RD(r.U32(&m->group_size));
  RD(r.U32(&m->initial_buckets));
  return m;
}

bool SerCollectForDataReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::CollectForDataReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.from_bucket);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const lhg::SerializedParityRecord& rec : m.records) {
    PutSerializedParityRecord(rec, w);
  }
  return true;
}

std::unique_ptr<MessageBody> DeCollectForDataReply(WireReader& r) {
  auto m = std::make_unique<lhg::CollectForDataReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->from_bucket));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kSerializedParityRecordMinSize));
  m->records.resize(count);
  for (lhg::SerializedParityRecord& rec : m->records) {
    RD(GetSerializedParityRecord(r, &rec));
  }
  return m;
}

bool SerCollectForParity(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::CollectForParityMsg>(body);
  w.U64(m.task_id);
  w.U32(m.parity_bucket);
  w.U32(m.also_bucket);
  w.U32(m.i2);
  w.U32(m.n2);
  w.U32(m.f2_initial_buckets);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeCollectForParity(WireReader& r) {
  auto m = std::make_unique<lhg::CollectForParityMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->parity_bucket));
  RD(r.U32(&m->also_bucket));
  RD(r.U32(&m->i2));
  RD(r.U32(&m->n2));
  RD(r.U32(&m->f2_initial_buckets));
  RD(r.Skip(4));
  return m;
}

bool SerCollectForParityReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::CollectForParityReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.from_bucket);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const lhg::TaggedRecord& rec : m.records) PutTaggedRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeCollectForParityReply(WireReader& r) {
  auto m = std::make_unique<lhg::CollectForParityReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->from_bucket));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kTaggedRecordMinSize));
  m->records.resize(count);
  for (lhg::TaggedRecord& rec : m->records) RD(GetTaggedRecord(r, &rec));
  return m;
}

bool SerInstallParity(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::InstallParityMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const lhg::SerializedParityRecord& rec : m.records) {
    PutSerializedParityRecord(rec, w);
  }
  return true;
}

std::unique_ptr<MessageBody> DeInstallParity(WireReader& r) {
  auto m = std::make_unique<lhg::InstallParityMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kSerializedParityRecordMinSize));
  m->records.resize(count);
  for (lhg::SerializedParityRecord& rec : m->records) {
    RD(GetSerializedParityRecord(r, &rec));
  }
  return m;
}

bool SerInstallData(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::InstallDataMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(m.counter);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const lhg::TaggedRecord& rec : m.records) PutTaggedRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeInstallData(WireReader& r) {
  auto m = std::make_unique<lhg::InstallDataMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  RD(r.U32(&m->counter));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kTaggedRecordMinSize));
  m->records.resize(count);
  for (lhg::TaggedRecord& rec : m->records) RD(GetTaggedRecord(r, &rec));
  return m;
}

bool SerInstallAck(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<lhg::InstallAckMsg>(body).task_id);
  return true;
}

std::unique_ptr<MessageBody> DeInstallAck(WireReader& r) {
  auto m = std::make_unique<lhg::InstallAckMsg>();
  RD(r.U64(&m->task_id));
  return m;
}

bool SerFindParity(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::FindParityMsg>(body);
  w.U64(m.task_id);
  w.U64(m.key);
  return true;
}

std::unique_ptr<MessageBody> DeFindParity(WireReader& r) {
  auto m = std::make_unique<lhg::FindParityMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U64(&m->key));
  return m;
}

bool SerFindParityReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhg::FindParityReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.from_bucket);
  w.Bool(m.found);
  w.Pad(3);
  w.U64(m.gkey);
  w.View(m.record);
  return true;
}

std::unique_ptr<MessageBody> DeFindParityReply(WireReader& r) {
  auto m = std::make_unique<lhg::FindParityReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->from_bucket));
  RD(r.Bool(&m->found));
  RD(r.Skip(3));
  RD(r.U64(&m->gkey));
  RD(r.View(&m->record));
  return m;
}

// --- LH*m -------------------------------------------------------------------

bool SerMirrorRead(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhm::MirrorReadMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeMirrorRead(WireReader& r) {
  auto m = std::make_unique<lhm::MirrorReadMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.Skip(4));
  return m;
}

bool SerMirrorReadReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhm::MirrorReadReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeMirrorReadReply(WireReader& r) {
  auto m = std::make_unique<lhm::MirrorReadReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->level));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerMirrorInstall(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhm::MirrorInstallMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeMirrorInstall(WireReader& r) {
  auto m = std::make_unique<lhm::MirrorInstallMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerMirrorAck(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<lhm::MirrorAckMsg>(body).task_id);
  return true;
}

std::unique_ptr<MessageBody> DeMirrorAck(WireReader& r) {
  auto m = std::make_unique<lhm::MirrorAckMsg>();
  RD(r.U64(&m->task_id));
  return m;
}

// --- LH*s -------------------------------------------------------------------

bool SerStripeRead(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhs::StripeReadMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeStripeRead(WireReader& r) {
  auto m = std::make_unique<lhs::StripeReadMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.Skip(4));
  return m;
}

bool SerStripeReadReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhs::StripeReadReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.file_index);
  w.U32(m.level);
  w.Bool(m.failed);
  w.Pad(3);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeStripeReadReply(WireReader& r) {
  auto m = std::make_unique<lhs::StripeReadReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->file_index));
  RD(r.U32(&m->level));
  RD(r.Bool(&m->failed));
  RD(r.Skip(3));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerStripeInstall(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<lhs::StripeInstallMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeStripeInstall(WireReader& r) {
  auto m = std::make_unique<lhs::StripeInstallMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerStripeAck(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<lhs::StripeAckMsg>(body).task_id);
  return true;
}

std::unique_ptr<MessageBody> DeStripeAck(WireReader& r) {
  auto m = std::make_unique<lhs::StripeAckMsg>();
  RD(r.U64(&m->task_id));
  return m;
}

#undef RD

}  // namespace

void RegisterBaselinesWire() {
  static const bool once = [] {
    RegisterWireCodec(lhg::LhgMsg::kParityUpdate,
                      {"ParityUpdate", SerParityUpdate, DeParityUpdate});
    RegisterWireCodec(lhg::LhgMsg::kParityIam,
                      {"ParityIam", SerParityIam, DeParityIam});
    RegisterWireCodec(
        lhg::LhgMsg::kCollectForData,
        {"CollectForData", SerCollectForData, DeCollectForData});
    RegisterWireCodec(lhg::LhgMsg::kCollectForDataReply,
                      {"CollectForDataReply", SerCollectForDataReply,
                       DeCollectForDataReply});
    RegisterWireCodec(
        lhg::LhgMsg::kCollectForParity,
        {"CollectForParity", SerCollectForParity, DeCollectForParity});
    RegisterWireCodec(lhg::LhgMsg::kCollectForParityReply,
                      {"CollectForParityReply", SerCollectForParityReply,
                       DeCollectForParityReply});
    RegisterWireCodec(lhg::LhgMsg::kInstallParity,
                      {"InstallParity", SerInstallParity, DeInstallParity});
    RegisterWireCodec(lhg::LhgMsg::kInstallData,
                      {"InstallData", SerInstallData, DeInstallData});
    RegisterWireCodec(lhg::LhgMsg::kInstallAck,
                      {"InstallAck", SerInstallAck, DeInstallAck});
    RegisterWireCodec(lhg::LhgMsg::kFindParity,
                      {"FindParity", SerFindParity, DeFindParity});
    RegisterWireCodec(
        lhg::LhgMsg::kFindParityReply,
        {"FindParityReply", SerFindParityReply, DeFindParityReply});

    RegisterWireCodec(lhm::LhmMsg::kMirrorRead,
                      {"MirrorRead", SerMirrorRead, DeMirrorRead});
    RegisterWireCodec(
        lhm::LhmMsg::kMirrorReadReply,
        {"MirrorReadReply", SerMirrorReadReply, DeMirrorReadReply});
    RegisterWireCodec(lhm::LhmMsg::kMirrorInstall,
                      {"MirrorInstall", SerMirrorInstall, DeMirrorInstall});
    RegisterWireCodec(lhm::LhmMsg::kMirrorAck,
                      {"MirrorAck", SerMirrorAck, DeMirrorAck});

    RegisterWireCodec(lhs::LhsMsg::kStripeRead,
                      {"StripeRead", SerStripeRead, DeStripeRead});
    RegisterWireCodec(
        lhs::LhsMsg::kStripeReadReply,
        {"StripeReadReply", SerStripeReadReply, DeStripeReadReply});
    RegisterWireCodec(lhs::LhsMsg::kStripeInstall,
                      {"StripeInstall", SerStripeInstall, DeStripeInstall});
    RegisterWireCodec(lhs::LhsMsg::kStripeAck,
                      {"StripeAck", SerStripeAck, DeStripeAck});
    return true;
  }();
  (void)once;
}

}  // namespace lhrs::transport
