#ifndef LHRS_TRANSPORT_WIRE_INTERNAL_H_
#define LHRS_TRANSPORT_WIRE_INTERNAL_H_

#include <memory>

#include "lhstar/messages.h"
#include "transport/wire.h"

// Shared helpers of the per-layer codec translation units. Every decoder
// follows the same discipline: bounds-checked reads, enum range checks,
// vector counts validated against the bytes actually remaining (a
// corrupted count must not trigger a giant allocation), and nullptr on the
// first inconsistency.

namespace lhrs::transport {

template <typename T>
const T& BodyAs(const MessageBody& body) {
  return static_cast<const T&>(body);
}

/// True when `count` elements of at least `min_elem_size` bytes each could
/// still follow in `r` — the pre-allocation sanity check for vectors.
inline bool PlausibleCount(const WireReader& r, uint32_t count,
                           size_t min_elem_size) {
  return min_elem_size == 0 || count <= r.remaining() / min_elem_size;
}

/// WireRecord: key + tag + length-prefixed payload (20 + n bytes).
inline void PutWireRecord(const WireRecord& rec, WireWriter& w) {
  w.U64(rec.key);
  w.U64(rec.tag);
  w.View(rec.value);
}

inline bool GetWireRecord(WireReader& r, WireRecord* rec) {
  return r.U64(&rec->key) && r.U64(&rec->tag) && r.View(&rec->value);
}

constexpr size_t kWireRecordMinSize = 20;

}  // namespace lhrs::transport

#endif  // LHRS_TRANSPORT_WIRE_INTERNAL_H_
