#ifndef LHRS_TRANSPORT_CLUSTER_H_
#define LHRS_TRANSPORT_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "lhrs/shared.h"
#include "lhstar/client.h"
#include "lhstar/system.h"
#include "net/network.h"
#include "transport/cluster_proto.h"
#include "transport/socket_transport.h"

namespace lhrs {
class RsCoordinatorNode;
}  // namespace lhrs

namespace lhrs::transport {

/// Static node-id layout of a multi-process LH*RS cluster.
///
/// Every process builds the *same* global id space in the same order, so a
/// NodeId means the same node everywhere without any naming service:
///
///   id 0                      the LH*/LH*RS coordinator (rank 0)
///   ids 1 .. N                the N initial data buckets, striped
///                             round-robin across the server ranks
///   per server rank           a contiguous pool of spare slots, consumed
///                             by splits, parity allocation and recovery
///   per client rank           a contiguous run of client-session ids
///
/// Ranks: 0 = coordinator process, 1..server_ranks = servers, then
/// client_ranks client processes.
struct ClusterLayout {
  uint32_t server_ranks = 3;
  uint32_t client_ranks = 2;
  uint32_t spares_per_server = 12;
  uint32_t sessions_per_client = 1;

  FileConfig file;
  uint32_t group_size = 4;  ///< LH*RS m.
  uint32_t base_k = 1;      ///< Parity buckets per group.
  FieldChoice field = FieldChoice::kGf256;  ///< Parity symbol width.
  /// Parity scheme ("rs", "lrc2", "rs+prog", ...). The coordinator's
  /// choice is authoritative: it rides in the Welcome frame, so every
  /// member encodes and decodes with the same code.
  parity::CodeSpec code;

  uint32_t total_ranks() const { return 1 + server_ranks + client_ranks; }

  NodeId first_spare(uint32_t server) const {
    return static_cast<NodeId>(1 + file.initial_buckets +
                               server * spares_per_server);
  }
  NodeId first_client_id(uint32_t client) const {
    return static_cast<NodeId>(1 + file.initial_buckets +
                               server_ranks * spares_per_server +
                               client * sessions_per_client);
  }
  size_t total_nodes() const {
    return 1 + file.initial_buckets + server_ranks * spares_per_server +
           client_ranks * sessions_per_client;
  }

  /// The process rank hosting `id` (-1 for out-of-range ids).
  int RankOf(NodeId id) const;

  /// The server rank hosting initial bucket `b`.
  int ServerRankOfBucket(uint32_t b) const {
    return 1 + static_cast<int>(b % server_ranks);
  }
};

/// The per-process composition root of cluster mode: one local Network
/// whose node table spans the global id space (stub nodes for ids resident
/// elsewhere), one SocketTransport, and the RemoteRouter glue between
/// them.
///
/// Wall-clock pumping: each Pump() first services the sockets, then runs
/// the local simulator up to the elapsed wall-clock microseconds — so
/// simulated-time machinery (client retry timers, bounded resend backoff)
/// runs unchanged on real time.
class ClusterRuntime : public RemoteRouter {
 public:
  ClusterRuntime(const ClusterLayout& layout, int my_rank,
                 NetworkConfig net_config = {});
  ~ClusterRuntime() override;

  /// Binds the transport sockets (call before exchanging endpoints).
  Status OpenTransport();

  const Endpoint& local() const { return transport_.local(); }

  /// Installs every rank's data-plane endpoint (from Welcome).
  void SetEndpoints(const std::vector<Endpoint>& endpoints);

  /// Populates the network with one stub per global id. Resident ids are
  /// then upgraded with MakeResident.
  void BuildStubs();

  /// Swaps the stub at `id` for the real node and replays any messages
  /// that arrived for it while it was still pending activation.
  void MakeResident(NodeId id, std::unique_ptr<Node> node);

  bool resident(NodeId id) const { return resident_.contains(id); }

  /// Services the sockets (<= timeout_ms wait) and advances the local
  /// simulator to wall-clock now. Returns messages delivered locally.
  size_t Pump(int timeout_ms);

  /// True when the transport has nothing in flight.
  bool TransportQuiescent() const { return transport_.Quiescent(); }

  Network& network() { return network_; }
  SocketTransport& transport() { return transport_; }
  const ClusterLayout& layout() const { return layout_; }
  int my_rank() const { return my_rank_; }

  // RemoteRouter:
  /// Non-resident ids are "remote" even on this rank: a send racing ahead
  /// of a spare's activation takes the transport's loopback path, which
  /// stashes it until MakeResident replays it into the real node.
  bool IsRemote(NodeId to) const override {
    return layout_.RankOf(to) != my_rank_ || !resident_.contains(to);
  }
  void RouteRemote(NodeId from, NodeId to,
                   std::unique_ptr<MessageBody> body) override;

 private:
  struct Stashed {
    NodeId from;
    std::unique_ptr<MessageBody> body;
  };

  ClusterLayout layout_;
  int my_rank_;
  Network network_;
  SocketTransport transport_;
  std::set<NodeId> resident_;
  std::map<NodeId, std::vector<Stashed>> stash_;
  uint64_t epoch_us_ = 0;  ///< Wall-clock origin of simulated time.
};

/// Aggregated result of one workload phase on one client process.
struct PhaseResult {
  bool ok = true;
  uint64_t ops = 0;
  uint64_t failures = 0;
  uint64_t elapsed_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
};

/// Options shared by every cluster member.
struct ClusterMemberOptions {
  ClusterLayout layout;
  uint16_t control_port = 0;
  NetworkConfig net;
  std::string report_path;  ///< RunReport destination ("" = skip).
  /// Wall-clock safety net: a member that has not finished its lifecycle
  /// within this bound aborts with a non-zero exit code.
  uint64_t deadline_ms = 60'000;
  bool verbose = false;
  /// Deterministic data-plane loss injection (tests): drop every Nth
  /// outgoing UDP data datagram / duplicate every Mth (0 = off). Acks and
  /// the TCP paths are untouched.
  uint32_t loss_drop_every = 0;
  uint32_t loss_dup_every = 0;
};

/// A worker (server) process: hosts data and parity buckets of the global
/// id space, activates spares on coordinator command, and drains cleanly
/// on Stop or RequestStop() (the SIGTERM hook).
class ClusterServer {
 public:
  ClusterServer(ClusterMemberOptions options, int rank);

  /// Runs the full lifecycle; returns a process exit code.
  int Run();

  /// Signal-safe shutdown request: the run loop drains in-flight work,
  /// writes the telemetry report, and exits as if Stop had arrived.
  void RequestStop() { stop_requested_.store(true); }

 private:
  ClusterMemberOptions options_;
  int rank_;
  std::atomic<bool> stop_requested_{false};
};

/// A client process: hosts `sessions_per_client` autonomous ClientNodes
/// and runs scripted workload phases on coordinator command.
///
/// Phase 1 — mixed workload over this client's key range: inserts (enough
/// to force splits), searches, updates and deletes, submitted open-loop
/// with a bounded window per session.
/// Phase 2 — verification: re-reads every key that phase 1 left live and
/// checks the payload bytes.
class ClusterClient {
 public:
  ClusterClient(ClusterMemberOptions options, int rank,
                uint32_t keys_per_session = 120);

  int Run();
  void RequestStop() { stop_requested_.store(true); }

 private:
  ClusterMemberOptions options_;
  int rank_;
  uint32_t keys_per_session_;
  std::atomic<bool> stop_requested_{false};
};

/// The coordinator process (rank 0): owns the control plane, hosts the
/// RsCoordinatorNode, and drives the drill — workload phase, a scripted
/// bucket crash plus recovery, then a verification phase.
class ClusterCoordinator {
 public:
  struct Options : ClusterMemberOptions {
    /// Crash drill: bucket whose server is killed between the phases
    /// (disabled when negative).
    int crash_bucket = 1;
  };

  explicit ClusterCoordinator(Options options);

  int Run();
  void RequestStop() { stop_requested_.store(true); }

  /// Phase results by (phase, client rank), filled during Run.
  const std::map<std::pair<uint32_t, int>, PhaseResult>& results() const {
    return results_;
  }

 private:
  Options options_;
  std::atomic<bool> stop_requested_{false};
  std::map<std::pair<uint32_t, int>, PhaseResult> results_;
  std::set<int> goodbyes_;  ///< Ranks that completed their drain.
};

}  // namespace lhrs::transport

#endif  // LHRS_TRANSPORT_CLUSTER_H_
