#ifndef LHRS_TRANSPORT_TRANSPORT_H_
#define LHRS_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <memory>

#include "net/message.h"
#include "net/network.h"

namespace lhrs::transport {

/// Delivery backend of one node-to-node message stream.
///
/// Two implementations exist:
///  - `SimTransport` — the discrete-event simulator unchanged: messages go
///    through `Network::Send`, time is simulated, replays are
///    byte-identical from a seed (the chaos oracle).
///  - `SocketTransport` — real loopback/LAN sockets: UDP for
///    request/reply/parity-delta traffic, TCP for recovery bulk transfer,
///    wall-clock time, genuine loss and duplication absorbed by the
///    protocol hardening from the chaos PR.
///
/// The interface is intentionally small: protocol code never talks to a
/// Transport directly (it talks to its Network); transports sit *under*
/// networks — SimTransport is the identity, SocketTransport is driven by
/// the ClusterRuntime's RemoteRouter hook.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues one message for delivery. Ownership of the body transfers.
  virtual void Send(NodeId from, NodeId to,
                    std::unique_ptr<MessageBody> body) = 0;

  /// Makes progress: polls sockets / steps the simulator. Returns the
  /// number of messages delivered to local nodes during the call.
  virtual size_t Pump(int timeout_ms) = 0;

  /// True when nothing is in flight (no pending acks, empty queues).
  virtual bool Quiescent() const = 0;

  virtual const char* name() const = 0;
};

/// The simulator as a Transport: Send enqueues on the wrapped Network,
/// Pump steps it. Used by transport-agnostic drivers (bench_f9's
/// `--transport=sim` path) and as the conformance baseline in the
/// transport tests.
class SimTransport : public Transport {
 public:
  explicit SimTransport(Network* network) : network_(network) {}

  void Send(NodeId from, NodeId to,
            std::unique_ptr<MessageBody> body) override {
    network_->Send(from, to, std::move(body));
  }

  size_t Pump(int /*timeout_ms*/) override {
    size_t steps = 0;
    while (network_->Step()) ++steps;
    return steps;
  }

  bool Quiescent() const override { return true; }

  const char* name() const override { return "sim"; }

 private:
  Network* network_;
};

}  // namespace lhrs::transport

#endif  // LHRS_TRANSPORT_TRANSPORT_H_
