#ifndef LHRS_TRANSPORT_WIRE_H_
#define LHRS_TRANSPORT_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "net/message.h"

namespace lhrs::transport {

/// Serializer for one message body: a gather list of byte runs.
///
/// Primitive appends (little-endian fixed width) accumulate into owned
/// byte runs; `View` splices a `BufferView` in by reference, so a record
/// payload travels from the bucket store to `sendmsg` without ever being
/// copied (the view keeps its buffer alive while the writer exists). The
/// flattened form is only materialized for TCP framing and retransmit
/// buffers.
///
/// Invariant enforced by the wire tests: for every registered message
/// kind, `size()` after serialization equals the body's declared
/// `ByteSize()` — the simulator's latency model and `MessageStats` count
/// exactly the bytes a real socket would carry.
class WireWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Explicit layout padding (zeros), so fixed-size messages serialize to
  /// exactly their declared ByteSize.
  void Pad(size_t n);
  /// u32 length prefix + bytes.
  void Str(const std::string& s);
  /// u32 length prefix + bytes.
  void BytesField(const Bytes& b);
  /// u32 length prefix + spliced payload bytes (zero-copy).
  void View(const BufferView& v);

  size_t size() const { return size_; }

  /// One gather-list entry; pointers are valid while the writer (and the
  /// views it references) are alive.
  struct Chunk {
    const uint8_t* data;
    size_t size;
  };
  std::vector<Chunk> Chunks() const;

  /// Materializes the full serialization (one copy).
  Bytes Flatten() const;

 private:
  void Raw(const void* data, size_t n);

  struct Piece {
    Bytes owned;      ///< Used when `view` is empty.
    BufferView view;  ///< Spliced payload (owned stays empty).
    bool is_view = false;
  };
  std::vector<Piece> pieces_;
  size_t size_ = 0;
};

/// Bounds-checked cursor over a received frame. Every accessor returns
/// false (and poisons the reader) instead of reading out of bounds, so a
/// decoder walks truncated or corrupted input safely — the fuzz loop in
/// wire_test.cc feeds it garbage under ASan/UBSan. `View` returns
/// zero-copy sub-views of the receive buffer.
class WireReader {
 public:
  explicit WireReader(BufferView data) : data_(std::move(data)) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I32(int32_t* v);
  bool Bool(bool* v);
  bool Skip(size_t n);
  bool Str(std::string* s);
  bool BytesField(Bytes* b);
  bool View(BufferView* v);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Take(size_t n, const uint8_t** out);

  BufferView data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Codec of one message kind. `serialize` returns false when the concrete
/// body cannot travel (a scan predicate carrying a native `custom`
/// function); `deserialize` returns null on malformed input — it must
/// never crash or over-read.
struct WireCodec {
  const char* name = "";
  bool (*serialize)(const MessageBody& body, WireWriter& w) = nullptr;
  std::unique_ptr<MessageBody> (*deserialize)(WireReader& r) = nullptr;
};

/// Registers the codec for `kind`; CHECK-fails on duplicates.
void RegisterWireCodec(int kind, WireCodec codec);

/// The codec for `kind`, or nullptr when none is registered.
const WireCodec* FindWireCodec(int kind);

/// All registered kinds, ascending (the round-trip tests iterate this).
std::vector<int> RegisteredWireKinds();

/// Per-layer registration hooks (each idempotent).
void RegisterLhStarWire();
void RegisterLhrsWire();
void RegisterBaselinesWire();

/// Registers every layer's codecs (idempotent); call once at startup.
void RegisterAllWireCodecs();

/// Serializes `body` into `w`; false when the kind is unregistered or the
/// body is unserializable.
bool SerializeBody(const MessageBody& body, WireWriter& w);

/// Decodes one body of `kind` from `payload`. Null on unknown kind,
/// malformed input, or trailing bytes (every frame must parse exactly).
std::unique_ptr<MessageBody> DeserializeBody(int kind, BufferView payload);

}  // namespace lhrs::transport

#endif  // LHRS_TRANSPORT_WIRE_H_
