#include "transport/wire.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/logging.h"

namespace lhrs::transport {

// --- WireWriter ------------------------------------------------------------

void WireWriter::Raw(const void* data, size_t n) {
  if (n == 0) return;
  if (pieces_.empty() || pieces_.back().is_view) {
    pieces_.emplace_back();
  }
  Bytes& run = pieces_.back().owned;
  const size_t old = run.size();
  run.resize(old + n);
  std::memcpy(run.data() + old, data, n);
  size_ += n;
}

void WireWriter::U16(uint16_t v) {
  uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
  Raw(b, sizeof(b));
}

void WireWriter::U32(uint32_t v) {
  uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  Raw(b, sizeof(b));
}

void WireWriter::U64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  Raw(b, sizeof(b));
}

void WireWriter::Pad(size_t n) {
  static constexpr uint8_t kZeros[16] = {};
  while (n > 0) {
    const size_t step = std::min(n, sizeof(kZeros));
    Raw(kZeros, step);
    n -= step;
  }
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

void WireWriter::BytesField(const Bytes& b) {
  U32(static_cast<uint32_t>(b.size()));
  Raw(b.data(), b.size());
}

void WireWriter::View(const BufferView& v) {
  U32(static_cast<uint32_t>(v.size()));
  if (v.empty()) return;
  Piece piece;
  piece.view = v;
  piece.is_view = true;
  pieces_.push_back(std::move(piece));
  size_ += v.size();
}

std::vector<WireWriter::Chunk> WireWriter::Chunks() const {
  std::vector<Chunk> chunks;
  chunks.reserve(pieces_.size());
  for (const Piece& p : pieces_) {
    if (p.is_view) {
      chunks.push_back(Chunk{p.view.data(), p.view.size()});
    } else if (!p.owned.empty()) {
      chunks.push_back(Chunk{p.owned.data(), p.owned.size()});
    }
  }
  return chunks;
}

Bytes WireWriter::Flatten() const {
  Bytes out;
  out.reserve(size_);
  for (const Chunk& c : Chunks()) {
    out.insert(out.end(), c.data, c.data + c.size);
  }
  return out;
}

// --- WireReader ------------------------------------------------------------

bool WireReader::Take(size_t n, const uint8_t** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) {
  const uint8_t* p;
  if (!Take(1, &p)) return false;
  *v = p[0];
  return true;
}

bool WireReader::U16(uint16_t* v) {
  const uint8_t* p;
  if (!Take(2, &p)) return false;
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return true;
}

bool WireReader::U32(uint32_t* v) {
  const uint8_t* p;
  if (!Take(4, &p)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return true;
}

bool WireReader::U64(uint64_t* v) {
  const uint8_t* p;
  if (!Take(8, &p)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return true;
}

bool WireReader::I32(int32_t* v) {
  uint32_t u;
  if (!U32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool WireReader::Bool(bool* v) {
  uint8_t u;
  if (!U8(&u)) return false;
  if (u > 1) {  // Reject non-canonical booleans (corrupted frames).
    ok_ = false;
    return false;
  }
  *v = u != 0;
  return true;
}

bool WireReader::Skip(size_t n) {
  const uint8_t* p;
  return Take(n, &p);
}

bool WireReader::Str(std::string* s) {
  uint32_t n;
  if (!U32(&n)) return false;
  const uint8_t* p;
  if (!Take(n, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), n);
  return true;
}

bool WireReader::BytesField(Bytes* b) {
  uint32_t n;
  if (!U32(&n)) return false;
  const uint8_t* p;
  if (!Take(n, &p)) return false;
  b->assign(p, p + n);
  return true;
}

bool WireReader::View(BufferView* v) {
  uint32_t n;
  if (!U32(&n)) return false;
  if (data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  // Zero-copy: the decoded body shares the receive buffer.
  *v = data_.Slice(pos_, n);
  pos_ += n;
  return true;
}

// --- Registry --------------------------------------------------------------

namespace {

std::map<int, WireCodec>& Registry() {
  static auto* registry = new std::map<int, WireCodec>();
  return *registry;
}

}  // namespace

void RegisterWireCodec(int kind, WireCodec codec) {
  LHRS_CHECK(codec.serialize != nullptr && codec.deserialize != nullptr);
  const bool inserted = Registry().emplace(kind, codec).second;
  LHRS_CHECK(inserted) << "duplicate wire codec for kind " << kind;
}

const WireCodec* FindWireCodec(int kind) {
  auto it = Registry().find(kind);
  return it == Registry().end() ? nullptr : &it->second;
}

std::vector<int> RegisteredWireKinds() {
  std::vector<int> kinds;
  kinds.reserve(Registry().size());
  for (const auto& [kind, codec] : Registry()) kinds.push_back(kind);
  return kinds;
}

void RegisterAllWireCodecs() {
  static const bool once = [] {
    RegisterLhStarWire();
    RegisterLhrsWire();
    RegisterBaselinesWire();
    return true;
  }();
  (void)once;
}

bool SerializeBody(const MessageBody& body, WireWriter& w) {
  const WireCodec* codec = FindWireCodec(body.kind());
  if (codec == nullptr) return false;
  return codec->serialize(body, w);
}

std::unique_ptr<MessageBody> DeserializeBody(int kind, BufferView payload) {
  const WireCodec* codec = FindWireCodec(kind);
  if (codec == nullptr) return nullptr;
  WireReader reader(std::move(payload));
  std::unique_ptr<MessageBody> body = codec->deserialize(reader);
  if (body == nullptr || !reader.AtEnd()) return nullptr;
  return body;
}

}  // namespace lhrs::transport
