#include "transport/cluster_proto.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "transport/wire.h"

namespace lhrs::transport {

namespace {

constexpr uint32_t kCtrlMagic = 0x4C43544C;  // "LCTL"

void PutEndpoint(WireWriter& w, const Endpoint& ep) {
  w.U32(ep.ip);
  w.U16(ep.udp_port);
  w.U16(ep.tcp_port);
}

bool GetEndpoint(WireReader& r, Endpoint* ep) {
  return r.U32(&ep->ip) && r.U16(&ep->udp_port) && r.U16(&ep->tcp_port);
}

void SetNonBlockingFd(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  LHRS_CHECK(flags >= 0);
  LHRS_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

Bytes EncodeCtrl(const CtrlMsg& msg) {
  WireWriter w;
  w.U32(kCtrlMagic);
  w.U32(static_cast<uint32_t>(msg.type));
  switch (msg.type) {
    case CtrlType::kHello:
      w.U32(msg.rank);
      PutEndpoint(w, msg.endpoint);
      break;
    case CtrlType::kWelcome:
      w.U32(static_cast<uint32_t>(msg.endpoints.size()));
      for (const Endpoint& ep : msg.endpoints) PutEndpoint(w, ep);
      w.U32(msg.field_choice);
      w.Str(msg.code);
      break;
    case CtrlType::kReady:
    case CtrlType::kStop:
    case CtrlType::kGoodbye:
    case CtrlType::kQuiesce:
      break;
    case CtrlType::kQuiesced:
      w.U32(msg.rank);
      break;
    case CtrlType::kActivateNode:
      w.I32(msg.node);
      w.Bool(msg.is_parity);
      w.Bool(msg.pre_initialized);
      w.U32(msg.bucket);
      w.U32(msg.level);
      w.U32(msg.k);
      break;
    case CtrlType::kAllocUpdate:
      w.U64(msg.version);
      w.U32(static_cast<uint32_t>(msg.entries.size()));
      for (NodeId id : msg.entries) w.I32(id);
      break;
    case CtrlType::kSetAvailable:
      w.I32(msg.node);
      w.Bool(msg.up);
      break;
    case CtrlType::kRunPhase:
      w.U32(msg.phase);
      break;
    case CtrlType::kPhaseDone:
      w.U32(msg.phase);
      w.Bool(msg.ok);
      w.U64(msg.ops);
      w.U64(msg.failures);
      w.U64(msg.elapsed_us);
      w.U64(msg.p50_us);
      w.U64(msg.p95_us);
      w.U64(msg.p99_us);
      break;
  }
  const Bytes payload = w.Flatten();
  Bytes frame(4);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<uint8_t>(len >> (8 * i));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::optional<CtrlMsg> DecodeCtrl(const uint8_t* data, size_t size) {
  WireReader r(BufferView(data, size));
  uint32_t magic = 0;
  uint32_t type = 0;
  if (!r.U32(&magic) || magic != kCtrlMagic || !r.U32(&type)) {
    return std::nullopt;
  }
  CtrlMsg msg;
  msg.type = static_cast<CtrlType>(type);
  switch (msg.type) {
    case CtrlType::kHello:
      r.U32(&msg.rank);
      GetEndpoint(r, &msg.endpoint);
      break;
    case CtrlType::kWelcome: {
      uint32_t n = 0;
      if (!r.U32(&n) || n > 4096) return std::nullopt;
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        Endpoint ep;
        if (GetEndpoint(r, &ep)) msg.endpoints.push_back(ep);
      }
      r.U32(&msg.field_choice);
      r.Str(&msg.code);
      break;
    }
    case CtrlType::kReady:
    case CtrlType::kStop:
    case CtrlType::kGoodbye:
    case CtrlType::kQuiesce:
      break;
    case CtrlType::kQuiesced:
      r.U32(&msg.rank);
      break;
    case CtrlType::kActivateNode:
      r.I32(&msg.node);
      r.Bool(&msg.is_parity);
      r.Bool(&msg.pre_initialized);
      r.U32(&msg.bucket);
      r.U32(&msg.level);
      r.U32(&msg.k);
      break;
    case CtrlType::kAllocUpdate: {
      uint32_t n = 0;
      if (!r.U64(&msg.version) || !r.U32(&n) || n > (1u << 20)) {
        return std::nullopt;
      }
      for (uint32_t i = 0; i < n && r.ok(); ++i) {
        NodeId id = kInvalidNode;
        if (r.I32(&id)) msg.entries.push_back(id);
      }
      break;
    }
    case CtrlType::kSetAvailable:
      r.I32(&msg.node);
      r.Bool(&msg.up);
      break;
    case CtrlType::kRunPhase:
      r.U32(&msg.phase);
      break;
    case CtrlType::kPhaseDone:
      r.U32(&msg.phase);
      r.Bool(&msg.ok);
      r.U64(&msg.ops);
      r.U64(&msg.failures);
      r.U64(&msg.elapsed_us);
      r.U64(&msg.p50_us);
      r.U64(&msg.p95_us);
      r.U64(&msg.p99_us);
      break;
    default:
      return std::nullopt;
  }
  if (!r.ok() || !r.AtEnd()) return std::nullopt;
  return msg;
}

ControlConn::ControlConn(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNonBlockingFd(fd_);
}

ControlConn::~ControlConn() { Close(); }

ControlConn::ControlConn(ControlConn&& other) noexcept
    : fd_(other.fd_),
      closed_(other.closed_),
      in_(std::move(other.in_)),
      out_(std::move(other.out_)),
      out_offset_(other.out_offset_) {
  other.fd_ = -1;
}

ControlConn& ControlConn::operator=(ControlConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    closed_ = other.closed_;
    in_ = std::move(other.in_);
    out_ = std::move(other.out_);
    out_offset_ = other.out_offset_;
    other.fd_ = -1;
  }
  return *this;
}

Status ControlConn::Connect(uint16_t port, ControlConn* out) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("control socket failed");
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Blocking connect: the listener is opened before members launch, so a
  // refused connection means a genuinely missing coordinator.
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Unavailable("control connect failed: " +
                               std::string(strerror(errno)));
  }
  *out = ControlConn(fd);
  return Status::OK();
}

void ControlConn::SendMsg(const CtrlMsg& msg) {
  if (fd_ < 0) return;
  out_.push_back(EncodeCtrl(msg));
  Flush();
}

void ControlConn::Flush() {
  while (fd_ >= 0 && !out_.empty()) {
    Bytes& front = out_.front();
    const ssize_t n =
        write(fd_, front.data() + out_offset_, front.size() - out_offset_);
    if (n <= 0) {
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        closed_ = true;
      }
      return;
    }
    out_offset_ += static_cast<size_t>(n);
    if (out_offset_ == front.size()) {
      out_.pop_front();
      out_offset_ = 0;
    }
  }
}

std::optional<CtrlMsg> ControlConn::Poll() {
  if (fd_ < 0) return std::nullopt;
  Flush();
  uint8_t buf[16384];
  for (;;) {
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) {
      closed_ = true;
      break;
    }
    if (n < 0) break;
    in_.insert(in_.end(), buf, buf + n);
  }
  if (in_.size() < 4) return std::nullopt;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(in_[i]) << (8 * i);
  if (len > (16u << 20)) {  // Corrupted stream.
    closed_ = true;
    return std::nullopt;
  }
  if (in_.size() < 4 + len) return std::nullopt;
  std::optional<CtrlMsg> msg = DecodeCtrl(in_.data() + 4, len);
  in_.erase(in_.begin(), in_.begin() + 4 + len);
  if (!msg.has_value()) closed_ = true;
  return msg;
}

void ControlConn::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

ControlListener::~ControlListener() { Close(); }

Status ControlListener::Open(uint16_t port) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("control listener socket failed");
  SetNonBlockingFd(fd_);
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal("control listener bind failed");
  }
  if (listen(fd_, 64) != 0) {
    return Status::Internal("control listener listen failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

std::optional<ControlConn> ControlListener::Accept() {
  if (fd_ < 0) return std::nullopt;
  const int fd = accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return ControlConn(fd);
}

void ControlListener::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

}  // namespace lhrs::transport
