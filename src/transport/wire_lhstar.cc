// Wire codecs of the LH* substrate (kind range [100, 200)).
//
// Field layouts mirror each message's declared ByteSize() exactly; the
// wire tests assert serialized length == ByteSize() for every kind, so a
// drift in either place fails loudly.

#include <memory>
#include <utility>

#include "lhstar/messages.h"
#include "transport/wire.h"
#include "transport/wire_internal.h"

namespace lhrs::transport {
namespace {

// Aborts the decoder on the first failed read.
#define RD(expr)                 \
  do {                           \
    if (!(expr)) return nullptr; \
  } while (0)

bool SerOpRequest(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<OpRequestMsg>(body);
  w.U8(static_cast<uint8_t>(m.op));
  w.Pad(3);
  w.U64(m.op_id);
  w.I32(m.client);
  w.U32(m.intended_bucket);
  w.U64(m.key);
  w.I32(m.hops);
  w.View(m.value);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeOpRequest(WireReader& r) {
  auto m = std::make_unique<OpRequestMsg>();
  uint8_t op;
  RD(r.U8(&op) && op <= 3);
  m->op = static_cast<OpType>(op);
  RD(r.Skip(3));
  RD(r.U64(&m->op_id));
  RD(r.I32(&m->client));
  RD(r.U32(&m->intended_bucket));
  RD(r.U64(&m->key));
  int32_t hops;
  RD(r.I32(&hops));
  m->hops = hops;
  RD(r.View(&m->value));
  RD(r.Skip(4));
  return m;
}

bool SerOpReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<OpReplyMsg>(body);
  w.U64(m.op_id);
  w.U8(static_cast<uint8_t>(m.code));
  w.Bool(m.iam.has_value());
  w.Pad(2);
  if (m.iam.has_value()) {
    w.U32(m.iam->bucket);
    w.U32(m.iam->level);
  }
  w.Str(m.error);
  w.View(m.value);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeOpReply(WireReader& r) {
  auto m = std::make_unique<OpReplyMsg>();
  RD(r.U64(&m->op_id));
  uint8_t code;
  RD(r.U8(&code) && code <= static_cast<uint8_t>(StatusCode::kTimeout));
  m->code = static_cast<StatusCode>(code);
  bool has_iam;
  RD(r.Bool(&has_iam));
  RD(r.Skip(2));
  if (has_iam) {
    IamInfo iam;
    RD(r.U32(&iam.bucket));
    RD(r.U32(&iam.level));
    m->iam = iam;
  }
  RD(r.Str(&m->error));
  RD(r.View(&m->value));
  RD(r.Skip(4));
  return m;
}

bool SerOverflowReport(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<OverflowReportMsg>(body);
  w.U32(m.bucket);
  w.U64(m.record_count);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeOverflowReport(WireReader& r) {
  auto m = std::make_unique<OverflowReportMsg>();
  RD(r.U32(&m->bucket));
  uint64_t count;
  RD(r.U64(&count));
  m->record_count = count;
  RD(r.Skip(4));
  return m;
}

bool SerSplitOrder(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<SplitOrderMsg>(body);
  w.U32(m.new_bucket);
  w.I32(m.new_node);
  w.U32(m.new_level);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeSplitOrder(WireReader& r) {
  auto m = std::make_unique<SplitOrderMsg>();
  RD(r.U32(&m->new_bucket));
  RD(r.I32(&m->new_node));
  RD(r.U32(&m->new_level));
  RD(r.Skip(4));
  return m;
}

bool SerMoveRecords(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<MoveRecordsMsg>(body);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeMoveRecords(WireReader& r) {
  auto m = std::make_unique<MoveRecordsMsg>();
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerSplitDone(const MessageBody& body, WireWriter& w) {
  w.U32(BodyAs<SplitDoneMsg>(body).bucket);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeSplitDone(WireReader& r) {
  auto m = std::make_unique<SplitDoneMsg>();
  RD(r.U32(&m->bucket));
  RD(r.Skip(4));
  return m;
}

bool SerScanRequest(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ScanRequestMsg>(body);
  // A predicate carrying native selection code cannot travel; scans with
  // custom predicates stay a simulator-only feature.
  if (m.predicate.custom != nullptr) return false;
  w.U64(m.op_id);
  w.I32(m.client);
  w.U32(m.attached_level);
  w.Bool(m.deterministic);
  // Predicate wire version, carved out of what used to be zero padding:
  // 0 = contains-only (byte-identical to the legacy frame), 1 = an
  // inclusive key range appended after the legacy fields.
  w.U8(m.predicate.has_key_range ? 1 : 0);
  w.Pad(6);
  w.BytesField(m.predicate.contains);
  w.Pad(12);
  if (m.predicate.has_key_range) {
    w.U64(m.predicate.key_min);
    w.U64(m.predicate.key_max);
  }
  return true;
}

std::unique_ptr<MessageBody> DeScanRequest(WireReader& r) {
  auto m = std::make_unique<ScanRequestMsg>();
  RD(r.U64(&m->op_id));
  RD(r.I32(&m->client));
  RD(r.U32(&m->attached_level));
  RD(r.Bool(&m->deterministic));
  uint8_t version = 0;
  RD(r.U8(&version));
  RD(r.Skip(6));
  RD(r.BytesField(&m->predicate.contains));
  RD(r.Skip(12));
  if (version >= 1) {
    m->predicate.has_key_range = true;
    RD(r.U64(&m->predicate.key_min));
    RD(r.U64(&m->predicate.key_max));
  }
  // A newer sender may append predicate fields this build does not know;
  // the known prefix decodes and the remainder is ignored.
  if (version > 1) RD(r.Skip(r.remaining()));
  return m;
}

bool SerScanReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ScanReplyMsg>(body);
  w.U64(m.op_id);
  w.U32(m.bucket);
  w.U32(m.level);
  w.Bool(m.coverage_failed);
  w.Pad(3);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeScanReply(WireReader& r) {
  auto m = std::make_unique<ScanReplyMsg>();
  RD(r.U64(&m->op_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  RD(r.Bool(&m->coverage_failed));
  RD(r.Skip(3));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerClientOpViaCoordinator(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ClientOpViaCoordinatorMsg>(body);
  w.U8(static_cast<uint8_t>(m.op));
  w.Pad(3);
  w.U64(m.op_id);
  w.I32(m.client);
  w.U32(m.intended_bucket);
  w.U64(m.key);
  w.View(m.value);
  w.Pad(8);
  return true;
}

std::unique_ptr<MessageBody> DeClientOpViaCoordinator(WireReader& r) {
  auto m = std::make_unique<ClientOpViaCoordinatorMsg>();
  uint8_t op;
  RD(r.U8(&op) && op <= 3);
  m->op = static_cast<OpType>(op);
  RD(r.Skip(3));
  RD(r.U64(&m->op_id));
  RD(r.I32(&m->client));
  RD(r.U32(&m->intended_bucket));
  RD(r.U64(&m->key));
  RD(r.View(&m->value));
  RD(r.Skip(8));
  return m;
}

bool SerUnavailableReport(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<UnavailableReportMsg>(body);
  w.I32(m.node);
  w.U32(m.bucket);
  w.Bool(m.is_parity);
  w.Pad(3);
  w.U32(m.group);
  w.U32(m.parity_index);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeUnavailableReport(WireReader& r) {
  auto m = std::make_unique<UnavailableReportMsg>();
  RD(r.I32(&m->node));
  RD(r.U32(&m->bucket));
  RD(r.Bool(&m->is_parity));
  RD(r.Skip(3));
  RD(r.U32(&m->group));
  RD(r.U32(&m->parity_index));
  RD(r.Skip(4));
  return m;
}

bool SerStateScanRequest(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<StateScanRequestMsg>(body).op_id);
  return true;
}

std::unique_ptr<MessageBody> DeStateScanRequest(WireReader& r) {
  auto m = std::make_unique<StateScanRequestMsg>();
  RD(r.U64(&m->op_id));
  return m;
}

bool SerStateScanReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<StateScanReplyMsg>(body);
  w.U64(m.op_id);
  w.U32(m.bucket);
  w.U32(m.level);
  return true;
}

std::unique_ptr<MessageBody> DeStateScanReply(WireReader& r) {
  auto m = std::make_unique<StateScanReplyMsg>();
  RD(r.U64(&m->op_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  return m;
}

bool SerUnderflowReport(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<UnderflowReportMsg>(body);
  w.U32(m.bucket);
  w.U64(m.record_count);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeUnderflowReport(WireReader& r) {
  auto m = std::make_unique<UnderflowReportMsg>();
  RD(r.U32(&m->bucket));
  uint64_t count;
  RD(r.U64(&count));
  m->record_count = count;
  RD(r.Skip(4));
  return m;
}

bool SerMergeOut(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<MergeOutMsg>(body);
  w.U32(m.parent_bucket);
  w.I32(m.parent_node);
  w.U32(m.parent_new_level);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeMergeOut(WireReader& r) {
  auto m = std::make_unique<MergeOutMsg>();
  RD(r.U32(&m->parent_bucket));
  RD(r.I32(&m->parent_node));
  RD(r.U32(&m->parent_new_level));
  RD(r.Skip(4));
  return m;
}

bool SerMergeRecords(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<MergeRecordsMsg>(body);
  w.U32(m.parent_bucket);
  w.U32(m.parent_new_level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeMergeRecords(WireReader& r) {
  auto m = std::make_unique<MergeRecordsMsg>();
  RD(r.U32(&m->parent_bucket));
  RD(r.U32(&m->parent_new_level));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerMergeDone(const MessageBody& body, WireWriter& w) {
  w.U32(BodyAs<MergeDoneMsg>(body).bucket);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeMergeDone(WireReader& r) {
  auto m = std::make_unique<MergeDoneMsg>();
  RD(r.U32(&m->bucket));
  RD(r.Skip(4));
  return m;
}

bool SerImageReset(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ImageResetMsg>(body);
  w.U32(m.i);
  w.U32(m.n);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeImageReset(WireReader& r) {
  auto m = std::make_unique<ImageResetMsg>();
  RD(r.U32(&m->i));
  RD(r.U32(&m->n));
  RD(r.Skip(4));
  return m;
}

bool SerSurveyRequest(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<SurveyRequestMsg>(body).survey_id);
  return true;
}

std::unique_ptr<MessageBody> DeSurveyRequest(WireReader& r) {
  auto m = std::make_unique<SurveyRequestMsg>();
  RD(r.U64(&m->survey_id));
  return m;
}

bool SerSurveyReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<SurveyReplyMsg>(body);
  w.U64(m.survey_id);
  w.U8(static_cast<uint8_t>(m.role));
  w.Bool(m.decommissioned);
  w.Pad(2);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U64(m.record_count);
  w.U32(m.group);
  w.U32(m.parity_index);
  w.U32(m.k);
  return true;
}

std::unique_ptr<MessageBody> DeSurveyReply(WireReader& r) {
  auto m = std::make_unique<SurveyReplyMsg>();
  RD(r.U64(&m->survey_id));
  uint8_t role;
  RD(r.U8(&role) && role <= 2);
  m->role = static_cast<SurveyReplyMsg::Role>(role);
  RD(r.Bool(&m->decommissioned));
  RD(r.Skip(2));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  RD(r.U64(&m->record_count));
  RD(r.U32(&m->group));
  RD(r.U32(&m->parity_index));
  RD(r.U32(&m->k));
  return m;
}

bool SerSelfCheckRequest(const MessageBody& body, WireWriter& w) {
  w.U32(BodyAs<SelfCheckRequestMsg>(body).bucket);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeSelfCheckRequest(WireReader& r) {
  auto m = std::make_unique<SelfCheckRequestMsg>();
  RD(r.U32(&m->bucket));
  RD(r.Skip(4));
  return m;
}

bool SerSelfCheckReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<SelfCheckReplyMsg>(body);
  w.U32(m.bucket);
  w.Bool(m.still_owner);
  w.Pad(3);
  w.I32(m.replacement);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeSelfCheckReply(WireReader& r) {
  auto m = std::make_unique<SelfCheckReplyMsg>();
  RD(r.U32(&m->bucket));
  RD(r.Bool(&m->still_owner));
  RD(r.Skip(3));
  RD(r.I32(&m->replacement));
  RD(r.Skip(4));
  return m;
}

bool SerInsertBatch(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<InsertBatchMsg>(body);
  w.U64(m.op_id);
  w.U64(m.seq);
  w.I32(m.client);
  w.U32(m.intended_bucket);
  w.U32(m.attempt);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const WireRecord& rec : m.records) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeInsertBatch(WireReader& r) {
  auto m = std::make_unique<InsertBatchMsg>();
  RD(r.U64(&m->op_id));
  RD(r.U64(&m->seq));
  RD(r.I32(&m->client));
  RD(r.U32(&m->intended_bucket));
  RD(r.U32(&m->attempt));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->records.resize(count);
  for (WireRecord& rec : m->records) RD(GetWireRecord(r, &rec));
  return m;
}

bool SerInsertBatchReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<InsertBatchReplyMsg>(body);
  w.U64(m.op_id);
  w.U64(m.seq);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(m.applied);
  w.U32(m.exists);
  w.Bool(m.bounced);
  w.Pad(3);
  w.U32(static_cast<uint32_t>(m.rejected.size()));
  for (const WireRecord& rec : m.rejected) PutWireRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeInsertBatchReply(WireReader& r) {
  auto m = std::make_unique<InsertBatchReplyMsg>();
  RD(r.U64(&m->op_id));
  RD(r.U64(&m->seq));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  RD(r.U32(&m->applied));
  RD(r.U32(&m->exists));
  RD(r.Bool(&m->bounced));
  RD(r.Skip(3));
  uint32_t count;
  RD(r.U32(&count));
  RD(PlausibleCount(r, count, kWireRecordMinSize));
  m->rejected.resize(count);
  for (WireRecord& rec : m->rejected) RD(GetWireRecord(r, &rec));
  return m;
}

#undef RD

}  // namespace

void RegisterLhStarWire() {
  static const bool once = [] {
    RegisterWireCodec(LhStarMsg::kOpRequest,
                      {"OpRequest", SerOpRequest, DeOpRequest});
    RegisterWireCodec(LhStarMsg::kOpReply,
                      {"OpReply", SerOpReply, DeOpReply});
    RegisterWireCodec(
        LhStarMsg::kOverflowReport,
        {"OverflowReport", SerOverflowReport, DeOverflowReport});
    RegisterWireCodec(LhStarMsg::kSplitOrder,
                      {"SplitOrder", SerSplitOrder, DeSplitOrder});
    RegisterWireCodec(LhStarMsg::kMoveRecords,
                      {"MoveRecords", SerMoveRecords, DeMoveRecords});
    RegisterWireCodec(LhStarMsg::kSplitDone,
                      {"SplitDone", SerSplitDone, DeSplitDone});
    RegisterWireCodec(LhStarMsg::kScanRequest,
                      {"ScanRequest", SerScanRequest, DeScanRequest});
    RegisterWireCodec(LhStarMsg::kScanReply,
                      {"ScanReply", SerScanReply, DeScanReply});
    RegisterWireCodec(LhStarMsg::kClientOpViaCoordinator,
                      {"ClientOpViaCoordinator", SerClientOpViaCoordinator,
                       DeClientOpViaCoordinator});
    RegisterWireCodec(
        LhStarMsg::kUnavailableReport,
        {"UnavailableReport", SerUnavailableReport, DeUnavailableReport});
    RegisterWireCodec(
        LhStarMsg::kStateScanRequest,
        {"StateScanRequest", SerStateScanRequest, DeStateScanRequest});
    RegisterWireCodec(LhStarMsg::kStateScanReply,
                      {"StateScanReply", SerStateScanReply, DeStateScanReply});
    RegisterWireCodec(
        LhStarMsg::kSelfCheckRequest,
        {"SelfCheckRequest", SerSelfCheckRequest, DeSelfCheckRequest});
    RegisterWireCodec(
        LhStarMsg::kSelfCheckReply,
        {"SelfCheckReply", SerSelfCheckReply, DeSelfCheckReply});
    RegisterWireCodec(
        LhStarMsg::kUnderflowReport,
        {"UnderflowReport", SerUnderflowReport, DeUnderflowReport});
    RegisterWireCodec(LhStarMsg::kMergeOut,
                      {"MergeOut", SerMergeOut, DeMergeOut});
    RegisterWireCodec(LhStarMsg::kMergeRecords,
                      {"MergeRecords", SerMergeRecords, DeMergeRecords});
    RegisterWireCodec(LhStarMsg::kMergeDone,
                      {"MergeDone", SerMergeDone, DeMergeDone});
    RegisterWireCodec(LhStarMsg::kImageReset,
                      {"ImageReset", SerImageReset, DeImageReset});
    RegisterWireCodec(LhStarMsg::kSurveyRequest,
                      {"SurveyRequest", SerSurveyRequest, DeSurveyRequest});
    RegisterWireCodec(LhStarMsg::kSurveyReply,
                      {"SurveyReply", SerSurveyReply, DeSurveyReply});
    RegisterWireCodec(LhStarMsg::kInsertBatch,
                      {"InsertBatch", SerInsertBatch, DeInsertBatch});
    RegisterWireCodec(
        LhStarMsg::kInsertBatchReply,
        {"InsertBatchReply", SerInsertBatchReply, DeInsertBatchReply});
    return true;
  }();
  (void)once;
}

}  // namespace lhrs::transport
