#ifndef LHRS_TRANSPORT_SOCKET_TRANSPORT_H_
#define LHRS_TRANSPORT_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/dedup.h"
#include "net/message.h"
#include "telemetry/telemetry.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace lhrs::transport {

/// Loopback/LAN address of one cluster process.
struct Endpoint {
  uint32_t ip = 0x7F000001;  ///< Host byte order; default 127.0.0.1.
  uint16_t udp_port = 0;
  uint16_t tcp_port = 0;
};

/// Tuning knobs of the socket backend.
struct SocketTransportOptions {
  /// Ports to bind (0 = ephemeral; the resolved ports appear in local()).
  Endpoint bind;
  /// UDP reliability: transport-level ack + bounded retransmit. After
  /// `max_attempts` unacked transmissions the send fails and the sender
  /// node sees HandleDeliveryFailure — the exact analogue of the
  /// simulator's RPC-timeout model.
  uint32_t max_attempts = 6;
  uint64_t initial_rto_us = 20'000;
  uint64_t max_rto_us = 320'000;
  /// Bodies whose frame exceeds this travel over TCP (recovery column
  /// dumps, bucket moves); smaller ones over UDP.
  size_t udp_payload_limit = 8192;
};

/// What the lossy test shim decides for one outgoing UDP datagram.
struct LossAction {
  bool drop = false;
  uint32_t duplicates = 0;
};

/// Wall-clock counters of one transport instance.
struct SocketTransportStats {
  uint64_t udp_datagrams_sent = 0;
  uint64_t udp_bytes_sent = 0;
  uint64_t udp_datagrams_received = 0;
  uint64_t retransmits = 0;
  uint64_t send_failures = 0;     ///< Gave up after max_attempts.
  uint64_t dup_suppressed = 0;    ///< Receiver-side seq dedup hits.
  uint64_t acks_sent = 0;
  uint64_t tcp_frames_sent = 0;
  uint64_t tcp_bytes_sent = 0;
  uint64_t tcp_frames_received = 0;
  uint64_t decode_failures = 0;   ///< Malformed frames rejected.
};

/// Real-socket Transport: one non-blocking UDP socket plus one TCP
/// listener per process.
///
/// UDP frames carry a fixed header (magic, version, frame type, sequence
/// number, from/to NodeIds, message kind, payload length) followed by the
/// WireWriter serialization of the body — sent scatter/gather, so record
/// payloads go from the bucket store's buffers to the kernel without an
/// intermediate copy. Every data frame is acked; unacked frames retransmit
/// with exponential backoff and fail over to the delivery-failure path
/// after a bounded number of attempts. The receiver dedups on (peer,
/// sequence) and re-acks duplicates, so a lost ack never surfaces a
/// duplicate message to protocol code — protocol-level dedup
/// (DuplicateFilter on Message::id) remains the second line of defense,
/// exercised by the lossy-shim tests.
///
/// Bulk frames (above `udp_payload_limit`) go over per-peer TCP
/// connections, length-prefixed with the same header, connected lazily.
///
/// Single-threaded: Send and Pump must be called from one thread (the
/// cluster runtime's pump loop).
class SocketTransport : public Transport {
 public:
  /// Delivery callback: returns true to accept (and ack) the message,
  /// false to drop it without acking (destination crashed here — the
  /// sender's retransmits then time out, as they would against a dead
  /// process).
  using DeliverFn = std::function<bool(
      NodeId from, NodeId to, std::unique_ptr<MessageBody> body)>;

  /// Failure callback: a send exhausted its attempts (or had no route);
  /// the body is handed back so the runtime can surface
  /// HandleDeliveryFailure on the sender node.
  using FailFn = std::function<void(NodeId from, NodeId to,
                                    std::unique_ptr<MessageBody> body)>;

  /// Maps a NodeId to the rank of the process hosting it (-1 = unknown).
  using RankFn = std::function<int(NodeId)>;

  explicit SocketTransport(SocketTransportOptions options = {});
  ~SocketTransport() override;

  /// Binds the UDP socket and TCP listener; fills local().
  Status Open();
  void Close();

  const Endpoint& local() const { return local_; }

  void set_my_rank(int rank) { my_rank_ = rank; }
  int my_rank() const { return my_rank_; }

  /// Registers (or updates) a peer process address.
  void SetPeer(int rank, const Endpoint& endpoint);

  void SetNodeRank(RankFn fn) { node_rank_ = std::move(fn); }
  void SetDeliverFn(DeliverFn fn) { deliver_ = std::move(fn); }
  void SetFailFn(FailFn fn) { fail_ = std::move(fn); }

  /// Installs a deterministic loss shim applied to every outgoing UDP
  /// datagram (data and acks): the duplicate/drop test harness.
  void SetLossShim(std::function<LossAction(bool is_ack, uint64_t seq)> fn) {
    loss_shim_ = std::move(fn);
  }

  /// Attaches telemetry: counters under "transport.*" plus the ack-RTT
  /// histogram. Not owned.
  void AttachTelemetry(telemetry::Telemetry* telemetry);

  // Transport:
  void Send(NodeId from, NodeId to,
            std::unique_ptr<MessageBody> body) override;
  size_t Pump(int timeout_ms) override;
  bool Quiescent() const override;
  const char* name() const override { return "udp"; }

  const SocketTransportStats& stats() const { return stats_; }

  /// Monotonic wall-clock microseconds (shared by the cluster runtime so
  /// simulated-time timers run on the same clock).
  static uint64_t MonotonicMicros();

 private:
  struct PendingUdp {
    int peer = -1;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    Bytes header;       ///< Fixed frame header.
    WireWriter writer;  ///< Payload gather list (zero-copy; the views keep
                        ///< the payload buffers alive until acked).
    std::unique_ptr<MessageBody> body;  ///< For the failure path.
    uint32_t attempts = 0;
    uint64_t next_deadline_us = 0;
    uint64_t rto_us = 0;
    uint64_t first_sent_us = 0;
  };

  struct PendingTcp {
    int peer = -1;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::unique_ptr<MessageBody> body;  ///< For the failure (nack) path.
  };

  struct TcpConn {
    int fd = -1;
    int peer = -1;          ///< -1 until the first frame identifies it.
    Bytes in;               ///< Read buffer (partial frames).
    std::deque<Bytes> out;  ///< Write queue.
    size_t out_offset = 0;  ///< Bytes of out.front() already written.
    bool connected = false; ///< Outbound: connect() completed.
  };

  void TransmitUdp(const PendingUdp& pending, uint64_t seq);
  void SendAck(int peer, uint64_t seq);
  TcpConn* OutboundConn(int peer);
  size_t ReadUdp(size_t* delivered);
  void ReadTcpConn(TcpConn& conn, size_t* delivered);
  void FlushTcpConn(TcpConn& conn);
  void AcceptTcp();
  void RetransmitPass(uint64_t now_us);
  void HandleAck(uint64_t seq, uint64_t now_us);
  void HandleNack(uint64_t seq);

  SocketTransportOptions options_;
  Endpoint local_;
  int my_rank_ = -1;
  int udp_fd_ = -1;
  int tcp_listen_fd_ = -1;

  std::map<int, Endpoint> peers_;
  RankFn node_rank_;
  DeliverFn deliver_;
  FailFn fail_;
  std::function<LossAction(bool, uint64_t)> loss_shim_;

  uint64_t next_seq_ = 1;
  std::map<uint64_t, PendingUdp> pending_;  ///< seq -> in-flight frame.
  std::map<uint64_t, PendingTcp> pending_tcp_;
  std::map<int, DuplicateFilter> rx_dedup_; ///< peer -> seen seqs.

  std::vector<std::unique_ptr<TcpConn>> tcp_conns_;
  std::map<int, TcpConn*> tcp_by_peer_;  ///< Outbound connections.

  SocketTransportStats stats_;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* tm_udp_sent_ = nullptr;
  telemetry::Counter* tm_udp_bytes_ = nullptr;
  telemetry::Counter* tm_retransmits_ = nullptr;
  telemetry::Counter* tm_send_failures_ = nullptr;
  telemetry::Counter* tm_dup_suppressed_ = nullptr;
  telemetry::Counter* tm_tcp_bytes_ = nullptr;
  telemetry::Histogram* tm_ack_rtt_us_ = nullptr;
};

}  // namespace lhrs::transport

#endif  // LHRS_TRANSPORT_SOCKET_TRANSPORT_H_
