#ifndef LHRS_TRANSPORT_CLUSTER_PROTO_H_
#define LHRS_TRANSPORT_CLUSTER_PROTO_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/message.h"
#include "transport/socket_transport.h"

namespace lhrs::transport {

/// Control-plane message types exchanged between the coordinator process
/// (rank 0) and every worker/client process over a dedicated TCP
/// connection. Control traffic is rare and tiny; the node-to-node data
/// plane never touches these connections.
enum class CtrlType : uint32_t {
  kHello = 1,         ///< member -> coord: rank + data-plane ports.
  kWelcome = 2,       ///< coord -> member: endpoints of every rank.
  kReady = 3,         ///< member -> coord: network built, pumping.
  kActivateNode = 4,  ///< coord -> owner: turn a spare stub into a node.
  kAllocUpdate = 5,   ///< coord -> all: allocation-table snapshot.
  kSetAvailable = 6,  ///< coord -> all: liveness oracle update.
  kRunPhase = 7,      ///< coord -> client: run workload phase N.
  kPhaseDone = 8,     ///< client -> coord: phase N finished + stats.
  kStop = 9,          ///< coord -> member: drain and exit.
  kGoodbye = 10,      ///< member -> coord: drained, report written.
  kQuiesce = 11,      ///< coord -> member: drain the data plane, then ack.
  kQuiesced = 12,     ///< member -> coord: transport drained (rank).
};

/// One control message, all variants flattened (control frames are a few
/// dozen bytes; a tagged struct keeps the encode/decode table trivial).
struct CtrlMsg {
  CtrlType type = CtrlType::kHello;

  // kHello:
  uint32_t rank = 0;
  Endpoint endpoint;

  // kWelcome: data-plane endpoints indexed by rank, plus the coordinator's
  // authoritative erasure-code choice (decoded via parity::CodeSpec::Parse;
  // a member must not guess the scheme from its own CLI flags).
  std::vector<Endpoint> endpoints;
  uint32_t field_choice = 0;  ///< static_cast<uint32_t>(FieldChoice).
  std::string code;           ///< parity::CodeSpec::Name() spelling.

  // kActivateNode:
  NodeId node = kInvalidNode;
  bool is_parity = false;
  bool pre_initialized = false;
  uint32_t bucket = 0;       ///< Data: bucket number. Parity: group.
  uint32_t level = 0;        ///< Data: level. Parity: parity index.
  uint32_t k = 0;            ///< Parity only.

  // kAllocUpdate:
  uint64_t version = 0;
  std::vector<NodeId> entries;

  // kSetAvailable (reuses `node`):
  bool up = false;

  // kRunPhase / kPhaseDone (phase in `rank`? no — own field):
  uint32_t phase = 0;
  bool ok = true;
  uint64_t ops = 0;
  uint64_t failures = 0;
  uint64_t elapsed_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
};

/// Serializes `msg` into a length-prefixed control frame.
Bytes EncodeCtrl(const CtrlMsg& msg);

/// Decodes one control frame payload (without the length prefix); nullopt
/// on malformed input.
std::optional<CtrlMsg> DecodeCtrl(const uint8_t* data, size_t size);

/// One non-blocking, length-prefix-framed control connection.
///
/// Writes are queued and flushed opportunistically (control frames are far
/// smaller than socket buffers, so in practice a single write suffices);
/// reads accumulate until a full frame decodes. Single-threaded.
class ControlConn {
 public:
  ControlConn() = default;
  explicit ControlConn(int fd);
  ~ControlConn();

  ControlConn(ControlConn&& other) noexcept;
  ControlConn& operator=(ControlConn&& other) noexcept;
  ControlConn(const ControlConn&) = delete;
  ControlConn& operator=(const ControlConn&) = delete;

  /// Connects to a coordinator's control listener on the loopback.
  static Status Connect(uint16_t port, ControlConn* out);

  bool valid() const { return fd_ >= 0; }
  bool closed() const { return closed_; }

  /// Queues one message and flushes as much as the socket accepts.
  void SendMsg(const CtrlMsg& msg);

  /// Drains readable bytes and returns the next complete message, if any.
  std::optional<CtrlMsg> Poll();

  /// Pushes queued writes to the socket (call from the pump loop).
  void Flush();

  void Close();

 private:
  int fd_ = -1;
  bool closed_ = false;
  Bytes in_;
  std::deque<Bytes> out_;
  size_t out_offset_ = 0;
};

/// The coordinator's control listener: accepts member connections.
class ControlListener {
 public:
  ControlListener() = default;
  ~ControlListener();

  /// Binds and listens on `port` (0 = ephemeral).
  Status Open(uint16_t port);
  uint16_t port() const { return port_; }

  /// Accepts one pending connection, if any.
  std::optional<ControlConn> Accept();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace lhrs::transport

#endif  // LHRS_TRANSPORT_CLUSTER_PROTO_H_
