#include "transport/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/logging.h"

namespace lhrs::transport {

namespace {

// Fixed 32-byte frame header shared by UDP datagrams and TCP frames.
constexpr uint32_t kMagic = 0x4C485253;  // "LHRS"
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderSize = 32;

enum FrameType : uint8_t {
  kFrameData = 1,  ///< UDP data (acked + retransmitted).
  kFrameAck = 2,   ///< Ack of a data frame (UDP or TCP).
  kFrameBulk = 3,  ///< TCP bulk data (acked, no retransmit needed).
  kFrameNack = 4,  ///< TCP bulk rejected by the receiver (crashed node).
};

struct FrameHeader {
  uint8_t type = 0;
  uint64_t seq = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  int kind = 0;
  uint32_t payload_len = 0;
};

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Bytes BuildHeader(const FrameHeader& h) {
  Bytes out(kHeaderSize, 0);
  PutU32(out.data(), kMagic);
  out[4] = kVersion;
  out[5] = h.type;
  // Bytes 6-7 reserved (zero).
  PutU64(out.data() + 8, h.seq);
  PutU32(out.data() + 16, static_cast<uint32_t>(h.from));
  PutU32(out.data() + 20, static_cast<uint32_t>(h.to));
  PutU32(out.data() + 24, static_cast<uint32_t>(h.kind));
  PutU32(out.data() + 28, h.payload_len);
  return out;
}

bool ParseHeader(const uint8_t* p, size_t n, FrameHeader* h) {
  if (n < kHeaderSize) return false;
  if (GetU32(p) != kMagic || p[4] != kVersion) return false;
  h->type = p[5];
  h->seq = GetU64(p + 8);
  h->from = static_cast<NodeId>(GetU32(p + 16));
  h->to = static_cast<NodeId>(GetU32(p + 20));
  h->kind = static_cast<int>(GetU32(p + 24));
  h->payload_len = GetU32(p + 28);
  return true;
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  LHRS_CHECK(flags >= 0);
  LHRS_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

sockaddr_in ToSockaddr(const Endpoint& ep, bool udp) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ep.ip);
  addr.sin_port = htons(udp ? ep.udp_port : ep.tcp_port);
  return addr;
}

}  // namespace

uint64_t SocketTransport::MonotonicMicros() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(options) {}

SocketTransport::~SocketTransport() { Close(); }

Status SocketTransport::Open() {
  udp_fd_ = socket(AF_INET, SOCK_DGRAM, 0);
  if (udp_fd_ < 0) return Status::Internal("udp socket failed");
  SetNonBlocking(udp_fd_);
  const int buf = 4 << 20;
  setsockopt(udp_fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  setsockopt(udp_fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

  sockaddr_in addr = ToSockaddr(options_.bind, /*udp=*/true);
  if (bind(udp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal("udp bind failed");
  }
  socklen_t len = sizeof(addr);
  getsockname(udp_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  local_.ip = options_.bind.ip;
  local_.udp_port = ntohs(addr.sin_port);

  tcp_listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_listen_fd_ < 0) return Status::Internal("tcp socket failed");
  SetNonBlocking(tcp_listen_fd_);
  const int one = 1;
  setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in taddr = ToSockaddr(options_.bind, /*udp=*/false);
  if (bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&taddr),
           sizeof(taddr)) != 0) {
    return Status::Internal("tcp bind failed");
  }
  if (listen(tcp_listen_fd_, 64) != 0) {
    return Status::Internal("tcp listen failed");
  }
  len = sizeof(taddr);
  getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&taddr), &len);
  local_.tcp_port = ntohs(taddr.sin_port);
  return Status::OK();
}

void SocketTransport::Close() {
  if (udp_fd_ >= 0) close(udp_fd_);
  if (tcp_listen_fd_ >= 0) close(tcp_listen_fd_);
  udp_fd_ = tcp_listen_fd_ = -1;
  for (auto& conn : tcp_conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  tcp_conns_.clear();
  tcp_by_peer_.clear();
}

void SocketTransport::SetPeer(int rank, const Endpoint& endpoint) {
  peers_[rank] = endpoint;
}

void SocketTransport::AttachTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  telemetry::MetricsRegistry& m = telemetry_->metrics();
  tm_udp_sent_ = &m.GetCounter("transport.udp.datagrams_sent");
  tm_udp_bytes_ = &m.GetCounter("transport.udp.bytes_sent");
  tm_retransmits_ = &m.GetCounter("transport.udp.retransmits");
  tm_send_failures_ = &m.GetCounter("transport.send_failures");
  tm_dup_suppressed_ = &m.GetCounter("transport.udp.dup_suppressed");
  tm_tcp_bytes_ = &m.GetCounter("transport.tcp.bytes_sent");
  tm_ack_rtt_us_ = &m.GetHistogram("transport.udp.ack_rtt_us");
}

void SocketTransport::Send(NodeId from, NodeId to,
                           std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(node_rank_ != nullptr && deliver_ != nullptr);
  const int peer = node_rank_(to);
  if (peer == my_rank_) {
    // Loopback shortcut: deliver synchronously (no wire, no loss).
    if (deliver_(from, to, std::move(body))) return;
    return;
  }
  auto fail_now = [&](std::unique_ptr<MessageBody> b) {
    ++stats_.send_failures;
    if (tm_send_failures_ != nullptr) tm_send_failures_->Add();
    if (fail_ != nullptr) fail_(from, to, std::move(b));
  };
  if (peer < 0 || peers_.find(peer) == peers_.end()) {
    fail_now(std::move(body));
    return;
  }

  WireWriter writer;
  if (!SerializeBody(*body, writer)) {
    LHRS_LOG(Warning) << "unserializable message kind " << body->kind()
                      << " dropped";
    fail_now(std::move(body));
    return;
  }

  FrameHeader header;
  header.seq = next_seq_++;
  header.from = from;
  header.to = to;
  header.kind = body->kind();
  header.payload_len = static_cast<uint32_t>(writer.size());

  if (writer.size() > options_.udp_payload_limit) {
    // Bulk path: one length-prefixed TCP frame. The flatten copy is the
    // price of stream framing; bulk frames are rare (recovery, splits).
    header.type = kFrameBulk;
    Bytes frame = BuildHeader(header);
    const Bytes payload = writer.Flatten();
    frame.insert(frame.end(), payload.begin(), payload.end());
    PendingTcp pending;
    pending.peer = peer;
    pending.from = from;
    pending.to = to;
    pending.body = std::move(body);
    pending_tcp_.emplace(header.seq, std::move(pending));
    TcpConn* conn = OutboundConn(peer);
    if (conn == nullptr) {
      auto it = pending_tcp_.find(header.seq);
      std::unique_ptr<MessageBody> failed_body = std::move(it->second.body);
      pending_tcp_.erase(it);
      fail_now(std::move(failed_body));
      return;
    }
    conn->out.push_back(std::move(frame));
    ++stats_.tcp_frames_sent;
    FlushTcpConn(*conn);
    return;
  }

  header.type = kFrameData;
  PendingUdp pending;
  pending.peer = peer;
  pending.from = from;
  pending.to = to;
  pending.header = BuildHeader(header);
  pending.writer = std::move(writer);
  pending.body = std::move(body);
  pending.attempts = 1;
  pending.rto_us = options_.initial_rto_us;
  pending.first_sent_us = MonotonicMicros();
  pending.next_deadline_us = pending.first_sent_us + pending.rto_us;
  TransmitUdp(pending, header.seq);
  pending_.emplace(header.seq, std::move(pending));
}

void SocketTransport::TransmitUdp(const PendingUdp& pending, uint64_t seq) {
  uint32_t copies = 1;
  if (loss_shim_ != nullptr) {
    const LossAction action = loss_shim_(/*is_ack=*/false, seq);
    if (action.drop) return;  // Pending entry stays; retransmit recovers.
    copies += action.duplicates;
  }
  const sockaddr_in addr = ToSockaddr(peers_[pending.peer], /*udp=*/true);
  std::vector<iovec> iov;
  iov.push_back({const_cast<uint8_t*>(pending.header.data()),
                 pending.header.size()});
  size_t bytes = pending.header.size();
  for (const WireWriter::Chunk& c : pending.writer.Chunks()) {
    iov.push_back({const_cast<uint8_t*>(c.data), c.size});
    bytes += c.size;
  }
  msghdr msg{};
  msg.msg_name = const_cast<sockaddr_in*>(&addr);
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov.data();
  msg.msg_iovlen = iov.size();
  for (uint32_t i = 0; i < copies; ++i) {
    // EAGAIN/full buffer == a dropped datagram; retransmit recovers.
    (void)sendmsg(udp_fd_, &msg, 0);
    ++stats_.udp_datagrams_sent;
    stats_.udp_bytes_sent += bytes;
    if (tm_udp_sent_ != nullptr) {
      tm_udp_sent_->Add();
      tm_udp_bytes_->Add(bytes);
    }
  }
}

void SocketTransport::SendAck(int peer, uint64_t seq) {
  if (loss_shim_ != nullptr && loss_shim_(/*is_ack=*/true, seq).drop) return;
  FrameHeader header;
  header.type = kFrameAck;
  header.seq = seq;
  const Bytes frame = BuildHeader(header);
  const sockaddr_in addr = ToSockaddr(peers_[peer], /*udp=*/true);
  (void)sendto(udp_fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  ++stats_.acks_sent;
}

SocketTransport::TcpConn* SocketTransport::OutboundConn(int peer) {
  auto it = tcp_by_peer_.find(peer);
  if (it != tcp_by_peer_.end()) return it->second;
  auto peer_it = peers_.find(peer);
  if (peer_it == peers_.end()) return nullptr;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  SetNonBlocking(fd);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = ToSockaddr(peer_it->second, /*udp=*/false);
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return nullptr;
  }
  auto conn = std::make_unique<TcpConn>();
  conn->fd = fd;
  conn->peer = peer;
  conn->connected = rc == 0;
  TcpConn* raw = conn.get();
  tcp_conns_.push_back(std::move(conn));
  tcp_by_peer_[peer] = raw;
  return raw;
}

void SocketTransport::FlushTcpConn(TcpConn& conn) {
  if (!conn.connected || conn.fd < 0) return;
  while (!conn.out.empty()) {
    Bytes& front = conn.out.front();
    const ssize_t n = write(conn.fd, front.data() + conn.out_offset,
                            front.size() - conn.out_offset);
    if (n <= 0) return;  // EAGAIN; POLLOUT will resume.
    stats_.tcp_bytes_sent += static_cast<size_t>(n);
    if (tm_tcp_bytes_ != nullptr) tm_tcp_bytes_->Add(static_cast<size_t>(n));
    conn.out_offset += static_cast<size_t>(n);
    if (conn.out_offset == front.size()) {
      conn.out.pop_front();
      conn.out_offset = 0;
    }
  }
}

void SocketTransport::AcceptTcp() {
  for (;;) {
    const int fd = accept(tcp_listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    SetNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<TcpConn>();
    conn->fd = fd;
    conn->connected = true;
    tcp_conns_.push_back(std::move(conn));
  }
}

void SocketTransport::HandleAck(uint64_t seq, uint64_t now_us) {
  auto it = pending_.find(seq);
  if (it != pending_.end()) {
    if (it->second.attempts == 1 && tm_ack_rtt_us_ != nullptr) {
      tm_ack_rtt_us_->Record(now_us - it->second.first_sent_us);
    }
    pending_.erase(it);
    return;
  }
  pending_tcp_.erase(seq);
}

void SocketTransport::HandleNack(uint64_t seq) {
  auto it = pending_tcp_.find(seq);
  if (it == pending_tcp_.end()) return;
  PendingTcp pending = std::move(it->second);
  pending_tcp_.erase(it);
  ++stats_.send_failures;
  if (tm_send_failures_ != nullptr) tm_send_failures_->Add();
  if (fail_ != nullptr) {
    fail_(pending.from, pending.to, std::move(pending.body));
  }
}

size_t SocketTransport::ReadUdp(size_t* delivered) {
  size_t datagrams = 0;
  uint8_t buf[65536];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n = recvfrom(udp_fd_, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) return datagrams;
    ++datagrams;
    ++stats_.udp_datagrams_received;
    FrameHeader header;
    if (!ParseHeader(buf, static_cast<size_t>(n), &header) ||
        static_cast<size_t>(n) != kHeaderSize + header.payload_len) {
      ++stats_.decode_failures;
      continue;
    }
    const uint64_t now_us = MonotonicMicros();
    if (header.type == kFrameAck) {
      HandleAck(header.seq, now_us);
      continue;
    }
    if (header.type != kFrameData) {
      ++stats_.decode_failures;
      continue;
    }
    const int peer = node_rank_ != nullptr ? node_rank_(header.from) : -1;
    if (peer < 0 || peers_.find(peer) == peers_.end()) {
      ++stats_.decode_failures;
      continue;
    }
    DuplicateFilter& dedup = rx_dedup_.try_emplace(peer, 1 << 16)
                                 .first->second;
    // A retransmit of an already-accepted frame means our ack was lost:
    // re-ack but do not re-deliver (at-most-once into the node layer; the
    // protocol-level DuplicateFilter guards the residual window overflow).
    if (dedup.Contains(header.seq)) {
      ++stats_.dup_suppressed;
      if (tm_dup_suppressed_ != nullptr) tm_dup_suppressed_->Add();
      SendAck(peer, header.seq);
      continue;
    }
    BufferView payload(buf + kHeaderSize, header.payload_len);
    std::unique_ptr<MessageBody> body =
        DeserializeBody(header.kind, std::move(payload));
    if (body == nullptr) {
      ++stats_.decode_failures;
      continue;
    }
    if (deliver_(header.from, header.to, std::move(body))) {
      dedup.SeenBefore(header.seq);  // Record only accepted deliveries.
      SendAck(peer, header.seq);
      ++*delivered;
    }
    // Rejected (crashed local node): no ack and no dedup record, so a
    // retransmit is judged afresh — against a still-dead node the sender's
    // attempts run out and it sees a delivery failure, exactly as against
    // a dead process.
  }
}

void SocketTransport::ReadTcpConn(TcpConn& conn, size_t* delivered) {
  uint8_t buf[65536];
  for (;;) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n == 0) {
      // Peer closed; drop the connection.
      close(conn.fd);
      conn.fd = -1;
      if (conn.peer >= 0) tcp_by_peer_.erase(conn.peer);
      return;
    }
    if (n < 0) break;
    conn.in.insert(conn.in.end(), buf, buf + n);
  }
  size_t pos = 0;
  while (conn.in.size() - pos >= kHeaderSize) {
    FrameHeader header;
    if (!ParseHeader(conn.in.data() + pos, conn.in.size() - pos, &header)) {
      // Corrupted stream: drop the connection (TCP should never do this).
      ++stats_.decode_failures;
      close(conn.fd);
      conn.fd = -1;
      if (conn.peer >= 0) tcp_by_peer_.erase(conn.peer);
      return;
    }
    if (conn.in.size() - pos < kHeaderSize + header.payload_len) break;
    const uint8_t* payload_ptr = conn.in.data() + pos + kHeaderSize;
    pos += kHeaderSize + header.payload_len;
    ++stats_.tcp_frames_received;
    switch (header.type) {
      case kFrameAck:
        HandleAck(header.seq, MonotonicMicros());
        break;
      case kFrameNack:
        HandleNack(header.seq);
        break;
      case kFrameBulk: {
        BufferView payload(payload_ptr, header.payload_len);
        std::unique_ptr<MessageBody> body =
            DeserializeBody(header.kind, std::move(payload));
        FrameHeader reply;
        reply.seq = header.seq;
        if (body != nullptr &&
            deliver_(header.from, header.to, std::move(body))) {
          reply.type = kFrameAck;
          ++*delivered;
        } else {
          if (body == nullptr) ++stats_.decode_failures;
          reply.type = kFrameNack;
        }
        conn.out.push_back(BuildHeader(reply));
        break;
      }
      default:
        ++stats_.decode_failures;
        break;
    }
  }
  if (pos > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + pos);
  FlushTcpConn(conn);
}

void SocketTransport::RetransmitPass(uint64_t now_us) {
  std::vector<uint64_t> failed;
  for (auto& [seq, pending] : pending_) {
    if (pending.next_deadline_us > now_us) continue;
    if (pending.attempts >= options_.max_attempts) {
      failed.push_back(seq);
      continue;
    }
    ++pending.attempts;
    pending.rto_us = std::min(pending.rto_us * 2, options_.max_rto_us);
    pending.next_deadline_us = now_us + pending.rto_us;
    ++stats_.retransmits;
    if (tm_retransmits_ != nullptr) tm_retransmits_->Add();
    TransmitUdp(pending, seq);
  }
  for (uint64_t seq : failed) {
    auto it = pending_.find(seq);
    PendingUdp pending = std::move(it->second);
    pending_.erase(it);
    ++stats_.send_failures;
    if (tm_send_failures_ != nullptr) tm_send_failures_->Add();
    if (fail_ != nullptr) {
      fail_(pending.from, pending.to, std::move(pending.body));
    }
  }
}

size_t SocketTransport::Pump(int timeout_ms) {
  LHRS_CHECK(udp_fd_ >= 0) << "transport not open";
  // Cap the poll wait at the next retransmit deadline.
  if (!pending_.empty()) {
    const uint64_t now_us = MonotonicMicros();
    uint64_t next = UINT64_MAX;
    for (const auto& [seq, p] : pending_) {
      next = std::min(next, p.next_deadline_us);
    }
    const int until_ms =
        next <= now_us ? 0 : static_cast<int>((next - now_us) / 1000 + 1);
    timeout_ms = std::min(timeout_ms, until_ms);
  }

  std::vector<pollfd> fds;
  fds.push_back({udp_fd_, POLLIN, 0});
  fds.push_back({tcp_listen_fd_, POLLIN, 0});
  std::vector<TcpConn*> polled;
  for (auto& conn : tcp_conns_) {
    if (conn->fd < 0) continue;
    short events = POLLIN;
    if (!conn->connected || !conn->out.empty()) events |= POLLOUT;
    fds.push_back({conn->fd, events, 0});
    polled.push_back(conn.get());
  }
  poll(fds.data(), fds.size(), timeout_ms);

  size_t delivered = 0;
  if ((fds[0].revents & POLLIN) != 0) ReadUdp(&delivered);
  if ((fds[1].revents & POLLIN) != 0) AcceptTcp();
  for (size_t i = 0; i < polled.size(); ++i) {
    TcpConn& conn = *polled[i];
    const short revents = fds[i + 2].revents;
    if (conn.fd < 0) continue;
    if ((revents & POLLOUT) != 0) {
      if (!conn.connected) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) conn.connected = true;
      }
      FlushTcpConn(conn);
    }
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ReadTcpConn(conn, &delivered);
    }
  }
  // Reap closed connections.
  tcp_conns_.erase(
      std::remove_if(tcp_conns_.begin(), tcp_conns_.end(),
                     [](const std::unique_ptr<TcpConn>& c) {
                       return c->fd < 0;
                     }),
      tcp_conns_.end());

  RetransmitPass(MonotonicMicros());
  return delivered;
}

bool SocketTransport::Quiescent() const {
  if (!pending_.empty() || !pending_tcp_.empty()) return false;
  for (const auto& conn : tcp_conns_) {
    if (!conn->out.empty()) return false;
  }
  return true;
}

}  // namespace lhrs::transport
