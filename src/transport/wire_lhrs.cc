// Wire codecs of the LH*RS parity / recovery layer (kind range [200, 300)).
//
// `attempt` fields are transport metadata (retransmission counters) and do
// not travel: a real stack carries them in its transport header, and the
// declared ByteSize() values exclude them for the same reason.

#include <memory>
#include <utility>

#include "common/logging.h"
#include "lhrs/messages.h"
#include "transport/wire.h"
#include "transport/wire_internal.h"

namespace lhrs::transport {
namespace {

#define RD(expr)                 \
  do {                           \
    if (!(expr)) return nullptr; \
  } while (0)

// ParityDelta: 28 + delta payload.
void PutParityDelta(const ParityDelta& d, WireWriter& w) {
  w.U32(d.rank);
  w.U32(d.slot);
  w.U8(static_cast<uint8_t>(d.key_op));
  w.Pad(3);
  w.U64(d.key);
  w.U32(d.new_length);
  w.View(d.delta);
}

bool GetParityDelta(WireReader& r, ParityDelta* d) {
  if (!r.U32(&d->rank) || !r.U32(&d->slot)) return false;
  uint8_t key_op;
  if (!r.U8(&key_op) || key_op > 2) return false;
  d->key_op = static_cast<ParityDelta::KeyOp>(key_op);
  return r.Skip(3) && r.U64(&d->key) && r.U32(&d->new_length) &&
         r.View(&d->delta);
}

constexpr size_t kParityDeltaMinSize = 28;

// RankedRecord: 16 + value payload.
void PutRankedRecord(const RankedRecord& rec, WireWriter& w) {
  w.U32(rec.rank);
  w.U64(rec.key);
  w.View(rec.value);
}

bool GetRankedRecord(WireReader& r, RankedRecord* rec) {
  return r.U32(&rec->rank) && r.U64(&rec->key) && r.View(&rec->value);
}

constexpr size_t kRankedRecordMinSize = 16;

// WireParityRecord: 12 + 13 per slot + parity payload.
void PutWireParityRecord(const WireParityRecord& rec, WireWriter& w) {
  LHRS_CHECK_EQ(rec.keys.size(), rec.lengths.size());
  w.U32(rec.rank);
  w.U32(static_cast<uint32_t>(rec.keys.size()));
  for (size_t i = 0; i < rec.keys.size(); ++i) {
    w.Bool(rec.keys[i].has_value());
    w.U64(rec.keys[i].value_or(0));
    w.U32(rec.lengths[i]);
  }
  w.View(rec.parity);
}

bool GetWireParityRecord(WireReader& r, WireParityRecord* rec) {
  uint32_t slots;
  if (!r.U32(&rec->rank) || !r.U32(&slots)) return false;
  if (!PlausibleCount(r, slots, 13)) return false;
  rec->keys.resize(slots);
  rec->lengths.resize(slots);
  for (uint32_t i = 0; i < slots; ++i) {
    bool has;
    uint64_t key;
    if (!r.Bool(&has) || !r.U64(&key) || !r.U32(&rec->lengths[i])) {
      return false;
    }
    if (has) rec->keys[i] = key;
  }
  return r.View(&rec->parity);
}

constexpr size_t kWireParityRecordMinSize = 12;

bool SerParityDelta(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ParityDeltaMsg>(body);
  w.U32(m.group);
  w.Pad(4);
  PutParityDelta(m.delta, w);
  return true;
}

std::unique_ptr<MessageBody> DeParityDelta(WireReader& r) {
  auto m = std::make_unique<ParityDeltaMsg>();
  RD(r.U32(&m->group));
  RD(r.Skip(4));
  RD(GetParityDelta(r, &m->delta));
  return m;
}

bool SerParityDeltaBatch(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ParityDeltaBatchMsg>(body);
  w.U32(m.group);
  w.U32(static_cast<uint32_t>(m.deltas.size()));
  w.Pad(4);
  for (const ParityDelta& d : m.deltas) PutParityDelta(d, w);
  return true;
}

std::unique_ptr<MessageBody> DeParityDeltaBatch(WireReader& r) {
  auto m = std::make_unique<ParityDeltaBatchMsg>();
  RD(r.U32(&m->group));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kParityDeltaMinSize));
  m->deltas.resize(count);
  for (ParityDelta& d : m->deltas) RD(GetParityDelta(r, &d));
  return m;
}

bool SerGroupConfig(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<GroupConfigMsg>(body);
  w.U32(m.group);
  w.U32(m.k);
  w.U32(static_cast<uint32_t>(m.parity_nodes.size()));
  w.Pad(4);
  for (NodeId node : m.parity_nodes) w.I32(node);
  return true;
}

std::unique_ptr<MessageBody> DeGroupConfig(WireReader& r) {
  auto m = std::make_unique<GroupConfigMsg>();
  RD(r.U32(&m->group));
  RD(r.U32(&m->k));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, 4));
  m->parity_nodes.resize(count);
  for (NodeId& node : m->parity_nodes) RD(r.I32(&node));
  return m;
}

bool SerColumnReadRequest(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ColumnReadRequestMsg>(body);
  w.U64(m.task_id);
  w.U32(m.group);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeColumnReadRequest(WireReader& r) {
  auto m = std::make_unique<ColumnReadRequestMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->group));
  RD(r.Skip(4));
  return m;
}

bool SerColumnReadReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ColumnReadReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.column);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.U32(static_cast<uint32_t>(m.parity_records.size()));
  for (const RankedRecord& rec : m.records) PutRankedRecord(rec, w);
  for (const WireParityRecord& rec : m.parity_records) {
    PutWireParityRecord(rec, w);
  }
  return true;
}

std::unique_ptr<MessageBody> DeColumnReadReply(WireReader& r) {
  auto m = std::make_unique<ColumnReadReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->column));
  RD(r.U32(&m->level));
  uint32_t records, parity_records;
  RD(r.U32(&records));
  RD(r.U32(&parity_records));
  RD(PlausibleCount(r, records, kRankedRecordMinSize));
  m->records.resize(records);
  for (RankedRecord& rec : m->records) RD(GetRankedRecord(r, &rec));
  RD(PlausibleCount(r, parity_records, kWireParityRecordMinSize));
  m->parity_records.resize(parity_records);
  for (WireParityRecord& rec : m->parity_records) {
    RD(GetWireParityRecord(r, &rec));
  }
  return m;
}

bool SerInstallDataColumn(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<InstallDataColumnMsg>(body);
  w.U64(m.task_id);
  w.U32(m.bucket);
  w.U32(m.level);
  w.U32(static_cast<uint32_t>(m.records.size()));
  w.Pad(4);
  for (const RankedRecord& rec : m.records) PutRankedRecord(rec, w);
  return true;
}

std::unique_ptr<MessageBody> DeInstallDataColumn(WireReader& r) {
  auto m = std::make_unique<InstallDataColumnMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->bucket));
  RD(r.U32(&m->level));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kRankedRecordMinSize));
  m->records.resize(count);
  for (RankedRecord& rec : m->records) RD(GetRankedRecord(r, &rec));
  return m;
}

bool SerInstallParityColumn(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<InstallParityColumnMsg>(body);
  w.U64(m.task_id);
  w.U32(m.group);
  w.U32(m.parity_index);
  w.U32(static_cast<uint32_t>(m.parity_records.size()));
  w.Pad(4);
  for (const WireParityRecord& rec : m.parity_records) {
    PutWireParityRecord(rec, w);
  }
  return true;
}

std::unique_ptr<MessageBody> DeInstallParityColumn(WireReader& r) {
  auto m = std::make_unique<InstallParityColumnMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->group));
  RD(r.U32(&m->parity_index));
  uint32_t count;
  RD(r.U32(&count));
  RD(r.Skip(4));
  RD(PlausibleCount(r, count, kWireParityRecordMinSize));
  m->parity_records.resize(count);
  for (WireParityRecord& rec : m->parity_records) {
    RD(GetWireParityRecord(r, &rec));
  }
  return m;
}

bool SerInstallDone(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<InstallDoneMsg>(body);
  w.U64(m.task_id);
  w.U32(m.column);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeInstallDone(WireReader& r) {
  auto m = std::make_unique<InstallDoneMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->column));
  RD(r.Skip(4));
  return m;
}

bool SerFindRankRequest(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<FindRankRequestMsg>(body);
  w.U64(m.task_id);
  w.U64(m.key);
  w.U32(m.slot);
  w.Pad(4);
  return true;
}

std::unique_ptr<MessageBody> DeFindRankRequest(WireReader& r) {
  auto m = std::make_unique<FindRankRequestMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U64(&m->key));
  RD(r.U32(&m->slot));
  RD(r.Skip(4));
  return m;
}

bool SerFindRankReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<FindRankReplyMsg>(body);
  w.U64(m.task_id);
  w.Bool(m.found);
  w.Pad(3);
  w.U32(m.parity_index);
  PutWireParityRecord(m.record, w);
  return true;
}

std::unique_ptr<MessageBody> DeFindRankReply(WireReader& r) {
  auto m = std::make_unique<FindRankReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.Bool(&m->found));
  RD(r.Skip(3));
  RD(r.U32(&m->parity_index));
  RD(GetWireParityRecord(r, &m->record));
  return m;
}

bool SerRecordReadRequest(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<RecordReadRequestMsg>(body);
  w.U64(m.task_id);
  w.U32(m.rank);
  w.U32(m.column);
  return true;
}

std::unique_ptr<MessageBody> DeRecordReadRequest(WireReader& r) {
  auto m = std::make_unique<RecordReadRequestMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->rank));
  RD(r.U32(&m->column));
  return m;
}

bool SerRecordReadReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<RecordReadReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.column);
  w.Bool(m.found);
  w.Pad(11);
  PutRankedRecord(m.record, w);
  return true;
}

std::unique_ptr<MessageBody> DeRecordReadReply(WireReader& r) {
  auto m = std::make_unique<RecordReadReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->column));
  RD(r.Bool(&m->found));
  RD(r.Skip(11));
  RD(GetRankedRecord(r, &m->record));
  return m;
}

bool SerParityRecordRequest(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ParityRecordRequestMsg>(body);
  w.U64(m.task_id);
  w.U32(m.rank);
  w.U32(m.column);
  return true;
}

std::unique_ptr<MessageBody> DeParityRecordRequest(WireReader& r) {
  auto m = std::make_unique<ParityRecordRequestMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->rank));
  RD(r.U32(&m->column));
  return m;
}

bool SerParityRecordReply(const MessageBody& body, WireWriter& w) {
  const auto& m = BodyAs<ParityRecordReplyMsg>(body);
  w.U64(m.task_id);
  w.U32(m.column);
  w.Bool(m.found);
  w.Pad(11);
  PutWireParityRecord(m.record, w);
  return true;
}

std::unique_ptr<MessageBody> DeParityRecordReply(WireReader& r) {
  auto m = std::make_unique<ParityRecordReplyMsg>();
  RD(r.U64(&m->task_id));
  RD(r.U32(&m->column));
  RD(r.Bool(&m->found));
  RD(r.Skip(11));
  RD(GetWireParityRecord(r, &m->record));
  return m;
}

bool SerPingRequest(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<PingRequestMsg>(body).probe_id);
  return true;
}

std::unique_ptr<MessageBody> DePingRequest(WireReader& r) {
  auto m = std::make_unique<PingRequestMsg>();
  RD(r.U64(&m->probe_id));
  return m;
}

bool SerPongReply(const MessageBody& body, WireWriter& w) {
  w.U64(BodyAs<PongReplyMsg>(body).probe_id);
  return true;
}

std::unique_ptr<MessageBody> DePongReply(WireReader& r) {
  auto m = std::make_unique<PongReplyMsg>();
  RD(r.U64(&m->probe_id));
  return m;
}

#undef RD

}  // namespace

void RegisterLhrsWire() {
  static const bool once = [] {
    RegisterWireCodec(LhrsMsg::kParityDelta,
                      {"ParityDelta", SerParityDelta, DeParityDelta});
    RegisterWireCodec(
        LhrsMsg::kParityDeltaBatch,
        {"ParityDeltaBatch", SerParityDeltaBatch, DeParityDeltaBatch});
    RegisterWireCodec(LhrsMsg::kGroupConfig,
                      {"GroupConfig", SerGroupConfig, DeGroupConfig});
    RegisterWireCodec(
        LhrsMsg::kColumnReadRequest,
        {"ColumnReadRequest", SerColumnReadRequest, DeColumnReadRequest});
    RegisterWireCodec(
        LhrsMsg::kColumnReadReply,
        {"ColumnReadReply", SerColumnReadReply, DeColumnReadReply});
    RegisterWireCodec(
        LhrsMsg::kInstallDataColumn,
        {"InstallDataColumn", SerInstallDataColumn, DeInstallDataColumn});
    RegisterWireCodec(LhrsMsg::kInstallParityColumn,
                      {"InstallParityColumn", SerInstallParityColumn,
                       DeInstallParityColumn});
    RegisterWireCodec(LhrsMsg::kInstallDone,
                      {"InstallDone", SerInstallDone, DeInstallDone});
    RegisterWireCodec(
        LhrsMsg::kFindRankRequest,
        {"FindRankRequest", SerFindRankRequest, DeFindRankRequest});
    RegisterWireCodec(LhrsMsg::kFindRankReply,
                      {"FindRankReply", SerFindRankReply, DeFindRankReply});
    RegisterWireCodec(
        LhrsMsg::kRecordReadRequest,
        {"RecordReadRequest", SerRecordReadRequest, DeRecordReadRequest});
    RegisterWireCodec(
        LhrsMsg::kRecordReadReply,
        {"RecordReadReply", SerRecordReadReply, DeRecordReadReply});
    RegisterWireCodec(LhrsMsg::kParityRecordRequest,
                      {"ParityRecordRequest", SerParityRecordRequest,
                       DeParityRecordRequest});
    RegisterWireCodec(
        LhrsMsg::kParityRecordReply,
        {"ParityRecordReply", SerParityRecordReply, DeParityRecordReply});
    RegisterWireCodec(LhrsMsg::kPingRequest,
                      {"PingRequest", SerPingRequest, DePingRequest});
    RegisterWireCodec(LhrsMsg::kPongReply,
                      {"PongReply", SerPongReply, DePongReply});
    return true;
  }();
  (void)once;
}

}  // namespace lhrs::transport
