#ifndef LHRS_TELEMETRY_RUN_REPORT_H_
#define LHRS_TELEMETRY_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace lhrs::telemetry {

/// Machine-readable report of one experiment run: named parameters, scalar
/// metrics, histogram summaries, the experiment's result tables and
/// (optionally) a full metrics-registry snapshot. Serializes to JSON with
/// strictly insertion-ordered sections so that two identical seeded runs
/// produce byte-identical files — reports are meant to be diffed across
/// commits as bench trajectories.
class RunReport {
 public:
  /// Every report starts with a "kernel_isa" param recording which GF
  /// kernel tier (gf/kernels.h) was selected for this process, so bench
  /// trajectories are comparable across machines and LHRS_KERNEL_ISA
  /// overrides.
  explicit RunReport(std::string name);

  void AddParam(std::string_view key, std::string_view value);
  void AddParam(std::string_view key, int64_t value);
  void AddParam(std::string_view key, double value);

  void AddMetric(std::string_view key, uint64_t value);
  void AddMetric(std::string_view key, int64_t value);
  void AddMetric(std::string_view key, double value);

  /// count/sum/min/max/mean/p50/p95/p99 summary under `key`.
  void AddHistogram(std::string_view key, const Histogram& histogram);

  /// Embeds a full registry snapshot under "metrics_registry".
  void AddRegistry(const MetricsRegistry& registry);

  /// Starts a new result table; subsequent AddTableRow calls append to it.
  void BeginTable(std::string_view title, std::vector<std::string> header);
  void AddTableRow(std::vector<std::string> cells);

  const std::string& name() const { return name_; }

  std::string ToJson() const;

  /// Writes ToJson() (plus a trailing newline) to `path`; false on I/O
  /// error.
  bool WriteFile(const std::string& path) const;

 private:
  struct Table {
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;   // key, json.
  std::vector<std::pair<std::string, std::string>> metrics_;  // key, json.
  std::vector<std::pair<std::string, std::string>> histograms_;
  std::vector<Table> tables_;
  std::string registry_json_;
};

}  // namespace lhrs::telemetry

#endif  // LHRS_TELEMETRY_RUN_REPORT_H_
