#include "telemetry/trace.h"

#include <algorithm>

#include "telemetry/json.h"

namespace lhrs::telemetry {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSend:
      return "send";
    case TraceEventType::kDeliver:
      return "deliver";
    case TraceEventType::kDeliveryFailure:
      return "delivery_failure";
    case TraceEventType::kCrash:
      return "crash";
    case TraceEventType::kRestore:
      return "restore";
    case TraceEventType::kSplitBegin:
      return "split_begin";
    case TraceEventType::kSplitEnd:
      return "split_end";
    case TraceEventType::kRecoveryBegin:
      return "recovery_begin";
    case TraceEventType::kRecoveryPhaseBegin:
      return "recovery_phase_begin";
    case TraceEventType::kRecoveryPhaseEnd:
      return "recovery_phase_end";
    case TraceEventType::kRecoveryEnd:
      return "recovery_end";
    case TraceEventType::kParityUpdateRound:
      return "parity_update_round";
    case TraceEventType::kFaultInjected:
      return "fault_injected";
  }
  return "unknown";
}

const char* RecoveryPhaseName(RecoveryPhase phase) {
  switch (phase) {
    case RecoveryPhase::kPlan:
      return "plan";
    case RecoveryPhase::kRead:
      return "read";
    case RecoveryPhase::kDecodeInstall:
      return "decode_install";
  }
  return "unknown";
}

Tracer::Tracer(size_t capacity) : ring_(std::max<size_t>(capacity, 1)) {}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t size = size_.load(std::memory_order_relaxed);
  if (size == ring_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // Oldest overwritten.
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  size_.store(std::min(size + 1, ring_.size()), std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t size = size_.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  out.reserve(size);
  const size_t start = (head_ + ring_.size() - size) % ring_.size();
  for (size_t i = 0; i < size; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

void AppendCommonFields(std::string* out, const TraceEvent& ev) {
  *out += "{\"ts\":" + std::to_string(ev.time_us);
  *out += ",\"type\":";
  AppendJsonString(out, TraceEventTypeName(ev.type));
  if (ev.node >= 0) *out += ",\"node\":" + std::to_string(ev.node);
  if (ev.peer >= 0) *out += ",\"peer\":" + std::to_string(ev.peer);
  if (ev.kind >= 0) *out += ",\"kind\":" + std::to_string(ev.kind);
  if (ev.group >= 0) *out += ",\"group\":" + std::to_string(ev.group);
}

bool IsPhaseEvent(TraceEventType t) {
  return t == TraceEventType::kRecoveryPhaseBegin ||
         t == TraceEventType::kRecoveryPhaseEnd;
}

}  // namespace

std::string Tracer::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& ev : Events()) {
    if (!first) out += ",";
    first = false;
    AppendCommonFields(&out, ev);
    if (IsPhaseEvent(ev.type)) {
      out += ",\"phase\":";
      AppendJsonString(
          &out, RecoveryPhaseName(static_cast<RecoveryPhase>(ev.detail)));
    } else {
      out += ",\"detail\":" + std::to_string(ev.detail);
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string Tracer::ToChromeTrace() const {
  // trace-event format: https://docs.google.com/document/d/1CvAClvFfyA5R-
  // PhYUmn5OOQtYMH4h6I0nSsKchNAySU — one process, node id (or a per-group
  // recovery track at 100000+g) as the thread id.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const TraceEvent& ev, const char* ph, std::string name,
                  int64_t tid) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":" + std::to_string(ev.time_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(tid);
    if (ph[0] == 'i') out += ",\"s\":\"g\"";
    out += ",\"args\":{";
    out += "\"node\":" + std::to_string(ev.node);
    if (ev.peer >= 0) out += ",\"peer\":" + std::to_string(ev.peer);
    if (ev.kind >= 0) out += ",\"kind\":" + std::to_string(ev.kind);
    if (ev.group >= 0) out += ",\"group\":" + std::to_string(ev.group);
    out += ",\"detail\":" + std::to_string(ev.detail);
    out += "}}";
  };

  for (const TraceEvent& ev : Events()) {
    const int64_t group_tid = 100000 + ev.group;
    switch (ev.type) {
      case TraceEventType::kSplitBegin:
        emit(ev, "B", "split", ev.node);
        break;
      case TraceEventType::kSplitEnd:
        emit(ev, "E", "split", ev.node);
        break;
      case TraceEventType::kRecoveryBegin:
        emit(ev, "B", "recovery g" + std::to_string(ev.group), group_tid);
        break;
      case TraceEventType::kRecoveryEnd:
        emit(ev, "E", "recovery g" + std::to_string(ev.group), group_tid);
        break;
      case TraceEventType::kRecoveryPhaseBegin:
        emit(ev, "B",
             RecoveryPhaseName(static_cast<RecoveryPhase>(ev.detail)),
             group_tid);
        break;
      case TraceEventType::kRecoveryPhaseEnd:
        emit(ev, "E",
             RecoveryPhaseName(static_cast<RecoveryPhase>(ev.detail)),
             group_tid);
        break;
      default:
        emit(ev, "i", TraceEventTypeName(ev.type), ev.node);
        break;
    }
  }
  out += "]}";
  return out;
}

}  // namespace lhrs::telemetry
