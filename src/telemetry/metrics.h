#ifndef LHRS_TELEMETRY_METRICS_H_
#define LHRS_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lhrs::telemetry {

/// Monotone event counter. Emission is safe from any thread (relaxed
/// atomics): counters are the one metric kind that multiple localities of
/// the parallel engine may legitimately share (chaos fault tallies,
/// protocol counters), and a plain increment would be a data race there.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. nodes currently down).
/// Thread-safe like Counter; Add is atomic so +1/-1 pairs from different
/// localities never lose updates.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram of non-negative integer samples (latencies in
/// simulated microseconds, message sizes, ...).
///
/// Bucket layout: values below 2^kSubBits get one exact bucket each; above
/// that, every power-of-two octave is split into 2^kSubBits sub-buckets, so
/// the relative quantization error is bounded by 1/2^kSubBits (12.5%).
/// Recording is O(1) and allocation-free once the covering bucket exists
/// (the bucket vector only ever grows, to at most ~500 entries for the full
/// uint64 range).
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint64_t kSub = 1u << kSubBits;  // Sub-buckets per octave.

  void Record(uint64_t value);

  /// Folds another histogram into this one (same fixed bucket layout).
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded sample (exact, not bucketized). 0 if empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Value at percentile `p` in [0, 100]: the inclusive upper bound of the
  /// bucket containing the ceil(p/100 * count)-th smallest sample, clamped
  /// to [min(), max()] so exact extremes are preserved. 0 if empty.
  uint64_t Percentile(double p) const;
  uint64_t p50() const { return Percentile(50); }
  uint64_t p95() const { return Percentile(95); }
  uint64_t p99() const { return Percentile(99); }

  /// Bucket index covering `value` (exposed for the boundary tests).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive [lower, upper] value range of bucket `index`.
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);

  /// Per-bucket counts, trailing zero buckets trimmed.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
};

/// Central, name-keyed home of every metric. Names are free-form; the
/// "base{label=value,...}" convention (see Labeled) keeps families of
/// related series (per node role, per message kind) groupable while the
/// registry itself stays a flat, deterministically ordered map.
/// Lookup/creation is mutex-protected so metrics may be resolved from any
/// locality thread; the std::map storage keeps returned references stable,
/// so the hot path (bumping an already-resolved Counter) never takes the
/// lock. Histograms are NOT internally synchronized — a histogram must be
/// recorded to from one thread at a time (the parallel engine gives each
/// locality its own shard registry and merges at report time, see
/// Telemetry::MergeShards).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Lookup without creation (nullptr when absent).
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  void Reset();

  /// Folds every series of `other` into this registry: counter and gauge
  /// values add, histograms merge bucket-wise. Used to collapse per-locality
  /// shards into the published registry at report time.
  void MergeFrom(const MetricsRegistry& other);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with all keys in
  /// lexicographic order; histograms export count/sum/min/max/mean and the
  /// p50/p95/p99 accessors. Byte-identical across identical runs.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// "base{key=value}" / "base{k1=v1,k2=v2}" series-name builders.
std::string Labeled(std::string_view base, std::string_view key,
                    std::string_view value);
std::string Labeled(std::string_view base, std::string_view key,
                    int64_t value);
std::string Labeled(std::string_view base, std::string_view k1,
                    std::string_view v1, std::string_view k2,
                    std::string_view v2);

}  // namespace lhrs::telemetry

#endif  // LHRS_TELEMETRY_METRICS_H_
