#ifndef LHRS_TELEMETRY_TRACE_H_
#define LHRS_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lhrs::telemetry {

/// Event taxonomy of the simulated system. One enumerator per observable
/// structural event; message-level events (send/deliver/failure and parity
/// update rounds) can be disabled independently because their volume
/// dominates long runs (see TelemetryConfig::trace_messages).
enum class TraceEventType : uint8_t {
  kSend = 0,             ///< Message enqueued (node=from, peer=to).
  kDeliver,              ///< Message handed to its destination (node=to).
  kDeliveryFailure,      ///< Timeout bounced to the sender (node=from).
  kCrash,                ///< Node marked unavailable.
  kRestore,              ///< Node marked available again.
  kSplitBegin,           ///< Coordinator launched a bucket split.
  kSplitEnd,             ///< SplitDone received.
  kRecoveryBegin,        ///< Group-recovery task created (group, detail=task).
  kRecoveryPhaseBegin,   ///< Recovery phase started (detail=RecoveryPhase).
  kRecoveryPhaseEnd,     ///< Recovery phase finished.
  kRecoveryEnd,          ///< Task finished (detail: 0 ok, 1 aborted/lost).
  kParityUpdateRound,    ///< Parity bucket applied a delta round
                         ///< (detail = deltas in the round).
  kFaultInjected,        ///< Chaos engine acted on a message or node
                         ///< (detail = chaos::FaultKind; node/peer =
                         ///< from/to, kind = message kind when applicable).
};

const char* TraceEventTypeName(TraceEventType type);

/// Phases of a bucket-group recovery task, traced via
/// kRecoveryPhaseBegin/End with the phase in `detail`.
enum class RecoveryPhase : uint8_t {
  kPlan = 0,           ///< Classify columns, allocate spares, push config.
  kRead = 1,           ///< Collect surviving column dumps.
  kDecodeInstall = 2,  ///< RS decode + install reconstructed columns.
};

const char* RecoveryPhaseName(RecoveryPhase phase);

/// One structured simulator event. Fixed-size and trivially copyable so the
/// tracer ring never allocates per event. Field use per type:
///   kSend/kDeliver/kDeliveryFailure: node, peer, kind, detail = bytes.
///   kCrash/kRestore:                 node.
///   kSplitBegin/kSplitEnd:           node = coordinator, peer = new server,
///                                    detail = new bucket number.
///   kRecovery*:                      node = coordinator, group,
///                                    detail = task id / phase / status.
///   kParityUpdateRound:              node = parity bucket, group,
///                                    detail = deltas applied.
struct TraceEvent {
  uint64_t time_us = 0;  ///< SimTime stamp.
  TraceEventType type = TraceEventType::kSend;
  int32_t node = -1;
  int32_t peer = -1;
  int32_t kind = -1;   ///< Message kind, when applicable.
  int32_t group = -1;  ///< Bucket group, when applicable.
  int64_t detail = 0;  ///< Type-specific payload (see above).
};

/// Bounded ring buffer of TraceEvents. When full, the oldest event is
/// overwritten and `dropped()` counts the loss; recording is O(1) and never
/// allocates after construction. Record/Events are mutex-serialized so any
/// locality thread of the parallel engine may trace — event volume is low
/// enough (structural events, optionally message events) that one lock is
/// cheaper than per-locality rings that would need a merge-by-time pass.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 16384);

  void Record(const TraceEvent& event);

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// JSON array of typed event objects (full fidelity, machine-readable).
  std::string ToJson() const;

  /// Chrome about://tracing (trace-event format) JSON object. Structural
  /// begin/end pairs map to "B"/"E" slices — recovery events on one track
  /// per bucket group, splits on the coordinator's track — and everything
  /// else to instant events on the acting node's track.
  std::string ToChromeTrace() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  ///< Next write position.
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace lhrs::telemetry

#endif  // LHRS_TELEMETRY_TRACE_H_
