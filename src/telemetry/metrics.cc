#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "telemetry/json.h"

namespace lhrs::telemetry {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<size_t>(value);
  const uint32_t octave = 63 - std::countl_zero(value);  // floor(log2(v)).
  const uint64_t sub = (value >> (octave - kSubBits)) - kSub;
  return kSub + (octave - kSubBits) * kSub + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSub) return index;
  const size_t j = index - kSub;
  const uint32_t octave = kSubBits + static_cast<uint32_t>(j / kSub);
  const uint64_t sub = j % kSub;
  return (kSub + sub) << (octave - kSubBits);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSub) return index;
  const size_t j = index - kSub;
  const uint32_t octave = kSubBits + static_cast<uint32_t>(j / kSub);
  return BucketLowerBound(index) + ((uint64_t{1} << (octave - kSubBits)) - 1);
}

void Histogram::Record(uint64_t value) {
  const size_t index = BucketIndex(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * count_));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(BucketUpperBound(i), min(), max_);
    }
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  if (&other == this) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [name, c] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) it = counters_.emplace(name, Counter{}).first;
    it->second.Add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) it = gauges_.emplace(name, Gauge{}).first;
    it->second.Add(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    it->second.Merge(h);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":" + std::to_string(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + std::to_string(h.sum());
    out += ",\"min\":" + std::to_string(h.min());
    out += ",\"max\":" + std::to_string(h.max());
    out += ",\"mean\":" + JsonNumber(h.mean());
    out += ",\"p50\":" + std::to_string(h.p50());
    out += ",\"p95\":" + std::to_string(h.p95());
    out += ",\"p99\":" + std::to_string(h.p99());
    out += "}";
  }
  out += "}}";
  return out;
}

std::string Labeled(std::string_view base, std::string_view key,
                    std::string_view value) {
  std::string out;
  out.reserve(base.size() + key.size() + value.size() + 3);
  out.append(base).append("{").append(key).append("=").append(value).append(
      "}");
  return out;
}

std::string Labeled(std::string_view base, std::string_view key,
                    int64_t value) {
  return Labeled(base, key, std::to_string(value));
}

std::string Labeled(std::string_view base, std::string_view k1,
                    std::string_view v1, std::string_view k2,
                    std::string_view v2) {
  std::string out;
  out.reserve(base.size() + k1.size() + v1.size() + k2.size() + v2.size() +
              5);
  out.append(base).append("{").append(k1).append("=").append(v1).append(",");
  out.append(k2).append("=").append(v2).append("}");
  return out;
}

}  // namespace lhrs::telemetry
