#ifndef LHRS_TELEMETRY_PROBE_H_
#define LHRS_TELEMETRY_PROBE_H_

#include <cstdint>
#include <string_view>

#include "telemetry/telemetry.h"

namespace lhrs::telemetry {

/// RAII timer for a client-visible operation (insert, lookup, scan, split,
/// recovery): captures the simulated clock at construction and records the
/// elapsed time into the named latency histogram at destruction.
///
/// Constructed with a null Telemetry it is a complete no-op: no clock read,
/// no histogram lookup, no allocation — the disabled-telemetry hot path
/// costs one branch.
class ScopedProbe {
 public:
  ScopedProbe(Telemetry* telemetry, std::string_view histogram) {
    if (telemetry == nullptr) return;
    telemetry_ = telemetry;
    histogram_ = &telemetry->metrics().GetHistogram(histogram);
    start_us_ = telemetry->now();
  }
  ~ScopedProbe() { Finish(); }

  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

  /// Records now() - start into the histogram (idempotent; the destructor
  /// calls it too). Use to time a sub-span without a nested scope.
  void Finish() {
    if (telemetry_ == nullptr) return;
    histogram_->Record(telemetry_->now() - start_us_);
    telemetry_ = nullptr;
  }

  /// Abandons the measurement (e.g. the operation was a no-op).
  void Cancel() { telemetry_ = nullptr; }

 private:
  Telemetry* telemetry_ = nullptr;
  Histogram* histogram_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace lhrs::telemetry

#endif  // LHRS_TELEMETRY_PROBE_H_
