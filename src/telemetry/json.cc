#include "telemetry/json.h"

#include <cmath>
#include <cstdio>

namespace lhrs::telemetry {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(&out, s);
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan.
  // Shortest representation from a fixed precision ladder that round-trips
  // to the same double — deterministic and human-readable.
  char buf[40];
  for (int precision : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

}  // namespace lhrs::telemetry
