#ifndef LHRS_TELEMETRY_TELEMETRY_H_
#define LHRS_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace lhrs::telemetry {

struct TelemetryConfig {
  /// Ring capacity of the event tracer; the oldest events are dropped (and
  /// counted) beyond this.
  size_t trace_capacity = 16384;
  /// Trace per-message events (send/deliver/failure, parity update
  /// rounds). They dominate long runs; structural events (crash, restore,
  /// split, recovery) are always traced.
  bool trace_messages = true;
};

/// One observability domain: a metrics registry plus an event tracer,
/// stamped from a caller-supplied clock (the simulator's SimTime). The
/// instrumented layers hold a `Telemetry*` that is null when telemetry is
/// off, so the disabled hot path is a single pointer test — no allocation,
/// no lookup, no virtual call.
class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : config_(config), tracer_(config.trace_capacity) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  const TelemetryConfig& config() const { return config_; }
  bool trace_messages() const { return config_.trace_messages; }

  /// Current instrumented time (simulated microseconds). Wired by the
  /// component that owns the clock (Network::EnableTelemetry).
  uint64_t now() const { return clock_ ? clock_() : 0; }
  void set_clock(std::function<uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  // --- Per-locality metric shards ---------------------------------------
  // The parallel engine gives each worker locality its own registry so
  // histograms (which are not internally synchronized) can be recorded
  // lock-free by a single writer. Shard 0 is the main registry (home
  // locality / driver thread); worker locality `i` uses shard(i).

  /// Grows the shard set so localities [1, count] have a registry. Call
  /// from the driver thread before workers start; idempotent.
  void EnsureShards(size_t count) {
    while (shards_.size() < count) {
      shards_.push_back(std::make_unique<MetricsRegistry>());
    }
  }
  size_t shard_count() const { return shards_.size(); }

  /// Registry for `locality` (0 = the main registry). References stay
  /// valid for the Telemetry's lifetime.
  MetricsRegistry& shard(size_t locality) {
    return locality == 0 ? metrics_ : *shards_[locality - 1];
  }

  /// Drains every worker shard into the main registry (values add,
  /// histograms merge) and resets the shards, so repeated merges never
  /// double-count. Call only when the workers are quiescent (between
  /// Step()s or after Stop) — e.g. from RunReport capture.
  void MergeShards() {
    for (auto& shard : shards_) {
      metrics_.MergeFrom(*shard);
      shard->Reset();
    }
  }

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::vector<std::unique_ptr<MetricsRegistry>> shards_;
  std::function<uint64_t()> clock_;
};

}  // namespace lhrs::telemetry

#endif  // LHRS_TELEMETRY_TELEMETRY_H_
