#ifndef LHRS_TELEMETRY_JSON_H_
#define LHRS_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lhrs::telemetry {

/// Minimal deterministic JSON emission helpers shared by the telemetry
/// exporters. Determinism matters more than speed here: two identical
/// seeded runs must serialize byte-identically, so formatting never
/// consults locale, pointers or wall-clock state.

/// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string* out, std::string_view s);

/// Formats a double with enough digits to round-trip, without locale
/// dependence ("%.17g" collapses to the shortest of a fixed ladder).
std::string JsonNumber(double v);

/// Convenience: quoted, escaped copy of `s`.
std::string JsonString(std::string_view s);

}  // namespace lhrs::telemetry

#endif  // LHRS_TELEMETRY_JSON_H_
