#include "telemetry/run_report.h"

#include <cstdio>

#include "gf/kernels.h"
#include "telemetry/json.h"

namespace lhrs::telemetry {

RunReport::RunReport(std::string name) : name_(std::move(name)) {
  AddParam("kernel_isa", ActiveKernels().name);
}

void RunReport::AddParam(std::string_view key, std::string_view value) {
  params_.emplace_back(std::string(key), JsonString(value));
}

void RunReport::AddParam(std::string_view key, int64_t value) {
  params_.emplace_back(std::string(key), std::to_string(value));
}

void RunReport::AddParam(std::string_view key, double value) {
  params_.emplace_back(std::string(key), JsonNumber(value));
}

void RunReport::AddMetric(std::string_view key, uint64_t value) {
  metrics_.emplace_back(std::string(key), std::to_string(value));
}

void RunReport::AddMetric(std::string_view key, int64_t value) {
  metrics_.emplace_back(std::string(key), std::to_string(value));
}

void RunReport::AddMetric(std::string_view key, double value) {
  metrics_.emplace_back(std::string(key), JsonNumber(value));
}

void RunReport::AddHistogram(std::string_view key,
                             const Histogram& histogram) {
  std::string json = "{\"count\":" + std::to_string(histogram.count());
  json += ",\"sum\":" + std::to_string(histogram.sum());
  json += ",\"min\":" + std::to_string(histogram.min());
  json += ",\"max\":" + std::to_string(histogram.max());
  json += ",\"mean\":" + JsonNumber(histogram.mean());
  json += ",\"p50\":" + std::to_string(histogram.p50());
  json += ",\"p95\":" + std::to_string(histogram.p95());
  json += ",\"p99\":" + std::to_string(histogram.p99());
  json += "}";
  histograms_.emplace_back(std::string(key), std::move(json));
}

void RunReport::AddRegistry(const MetricsRegistry& registry) {
  registry_json_ = registry.ToJson();
}

void RunReport::BeginTable(std::string_view title,
                           std::vector<std::string> header) {
  Table table;
  table.title = std::string(title);
  table.header = std::move(header);
  tables_.push_back(std::move(table));
}

void RunReport::AddTableRow(std::vector<std::string> cells) {
  if (tables_.empty()) BeginTable("", {});
  tables_.back().rows.push_back(std::move(cells));
}

namespace {

void AppendSection(
    std::string* out, const char* section,
    const std::vector<std::pair<std::string, std::string>>& entries) {
  *out += ",\"";
  *out += section;
  *out += "\":{";
  bool first = true;
  for (const auto& [key, value_json] : entries) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, key);
    *out += ":" + value_json;
  }
  *out += "}";
}

void AppendStringArray(std::string* out,
                       const std::vector<std::string>& cells) {
  *out += "[";
  bool first = true;
  for (const auto& c : cells) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, c);
  }
  *out += "]";
}

}  // namespace

std::string RunReport::ToJson() const {
  std::string out = "{\"report\":";
  AppendJsonString(&out, name_);
  AppendSection(&out, "params", params_);
  AppendSection(&out, "metrics", metrics_);
  AppendSection(&out, "histograms", histograms_);
  out += ",\"tables\":[";
  bool first_table = true;
  for (const Table& table : tables_) {
    if (!first_table) out += ",";
    first_table = false;
    out += "{\"title\":";
    AppendJsonString(&out, table.title);
    out += ",\"header\":";
    AppendStringArray(&out, table.header);
    out += ",\"rows\":[";
    bool first_row = true;
    for (const auto& row : table.rows) {
      if (!first_row) out += ",";
      first_row = false;
      AppendStringArray(&out, row);
    }
    out += "]}";
  }
  out += "]";
  if (!registry_json_.empty()) {
    out += ",\"metrics_registry\":" + registry_json_;
  }
  out += "}";
  return out;
}

bool RunReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size()
                  && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace lhrs::telemetry
