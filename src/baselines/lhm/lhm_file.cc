#include "baselines/lhm/lhm_file.h"

#include <utility>

#include "common/logging.h"
#include "exec/parallel_network.h"
#include "net/stats.h"

namespace lhrs::lhm {

namespace {

void RegisterNames() {
  RegisterMessageKindName(LhmMsg::kMirrorRead, "lhm.MirrorRead");
  RegisterMessageKindName(LhmMsg::kMirrorReadReply, "lhm.MirrorReadReply");
  RegisterMessageKindName(LhmMsg::kMirrorInstall, "lhm.MirrorInstall");
  RegisterMessageKindName(LhmMsg::kMirrorAck, "lhm.MirrorAck");
}

}  // namespace

void LhmBucketNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhmMsg::kMirrorRead: {
      const auto& req = static_cast<const MirrorReadMsg&>(*msg.body);
      LHRS_CHECK_EQ(req.bucket, bucket_no());
      auto reply = std::make_unique<MirrorReadReplyMsg>();
      reply->task_id = req.task_id;
      reply->level = level();
      records_.ForEachOrdered([&](Key key, const BufferView& value) {
        reply->records.push_back(WireRecord{key, 0, value});
      });
      Send(msg.from, std::move(reply));
      return;
    }
    case LhmMsg::kMirrorInstall: {
      const auto& install = static_cast<const MirrorInstallMsg&>(*msg.body);
      LHRS_CHECK_EQ(install.bucket, bucket_no());
      store::BucketStore records;
      for (const auto& rec : install.records) {
        records.InsertShared(rec.key, rec.value);
      }
      InstallRecoveredState(std::move(records), install.level);
      auto ack = std::make_unique<MirrorAckMsg>();
      ack->task_id = install.task_id;
      Send(msg.from, std::move(ack));
      return;
    }
    default:
      DataBucketNode::HandleSubclassMessage(msg);
  }
}

void LhmCoordinatorNode::RecoverBucket(BucketNo bucket) {
  if (recovering_.contains(bucket)) return;
  if (net()->available(ctx_->allocation.Lookup(bucket))) return;
  LHRS_CHECK(sibling_ != nullptr);
  recovering_.insert(bucket);

  CopyTask task;
  task.id = next_task_id_++;
  task.bucket = bucket;
  task.level = state_.BucketLevel(bucket);
  task.spare = CreateBucketNode(bucket, task.level);
  ctx_->allocation.Set(bucket, task.spare);

  // Mirror addressing: the replicas split independently, so our bucket's
  // keys can sit in the same-numbered sibling bucket or any of its split
  // descendants. A key of our bucket satisfies k = bucket (mod 2^j N)
  // where j is our bucket's level; every sibling bucket x with
  // x = bucket (mod 2^j N) holds only such keys (levels never decrease),
  // so reading exactly those buckets yields the full set with no filter.
  // When this recovery resumes a stalled split (the victim died between
  // the order and its execution), the bucket must be rebuilt with the
  // records of the whole *pre-split* congruence class — the retried split
  // partitions them afterwards. The per-record filter below keeps only
  // what belongs (harmlessly a no-op in the ordinary case).
  Level congruence_level = task.level;
  if (pending_split_orders_.contains(bucket) ||
      orphaned_moves_.contains(bucket)) {
    LHRS_CHECK_GT(congruence_level, 0u);
    --congruence_level;
  }
  const BucketNo stride =
      BucketNo{ctx_->config.initial_buckets} << congruence_level;
  const BucketNo sibling_extent = sibling_->state().bucket_count();
  for (BucketNo x = bucket % stride; x < sibling_extent; x += stride) {
    auto read = std::make_unique<MirrorReadMsg>();
    read->task_id = task.id;
    read->bucket = x;
    ++task.awaiting;
    Send(sibling_ctx_->allocation.Lookup(x), std::move(read));
  }
  LHRS_CHECK_GT(task.awaiting, 0u);
  tasks_.emplace(task.id, std::move(task));
}

void LhmCoordinatorNode::OnSplitOrderDeliveryFailure(
    const SplitOrderMsg& order, NodeId victim_node) {
  (void)victim_node;
  const BucketNo victim =
      order.new_bucket -
      (BucketNo{ctx_->config.initial_buckets} << (order.new_level - 1));
  pending_split_orders_[victim] = order;
  RecoverBucket(victim);
}

void LhmCoordinatorNode::OnOrphanedMoveRecords(const MoveRecordsMsg& move) {
  // The split target died with the movers in flight; its content rebuilds
  // entirely from the sibling replica (congruence read), so the in-flight
  // copy is redundant.
  orphaned_moves_.insert(move.bucket);
  RecoverBucket(move.bucket);
}

void LhmCoordinatorNode::ServeFromSibling(
    const ClientOpViaCoordinatorMsg& op) {
  const BucketNo a = sibling_->state().Address(op.key);
  auto req = std::make_unique<OpRequestMsg>();
  req->op = op.op;
  req->op_id = op.op_id;
  req->client = op.client;
  req->intended_bucket = a;
  req->key = op.key;
  req->value = op.value;
  req->hops = 0;  // No IAM: the reply must not distort the client's image.
  Send(sibling_ctx_->allocation.Lookup(a), std::move(req));
}

void LhmCoordinatorNode::HandleClientOpFallback(
    const ClientOpViaCoordinatorMsg& op) {
  const BucketNo a = state_.Address(op.key);
  if (recovering_.contains(a)) {
    if (op.op == OpType::kSearch) {
      ServeFromSibling(op);
    } else {
      parked_[a].push_back(op);
    }
    return;
  }
  if (!net()->available(ctx_->allocation.Lookup(a))) {
    RecoverBucket(a);
    if (op.op == OpType::kSearch) {
      ServeFromSibling(op);
    } else {
      parked_[a].push_back(op);
    }
    return;
  }
  DeliverViaState(op);
}

void LhmCoordinatorNode::OnOpDeliveryFailure(const OpRequestMsg& req) {
  ClientOpViaCoordinatorMsg op;
  op.op = req.op;
  op.op_id = req.op_id;
  op.client = req.client;
  op.intended_bucket = req.intended_bucket;
  op.key = req.key;
  op.value = req.value;
  HandleClientOpFallback(op);
}

void LhmCoordinatorNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhmMsg::kMirrorReadReply: {
      const auto& reply = static_cast<const MirrorReadReplyMsg&>(*msg.body);
      auto it = tasks_.find(reply.task_id);
      if (it == tasks_.end()) return;
      CopyTask& task = it->second;
      for (const auto& rec : reply.records) {
        // Keep only the records that belong in the bucket being rebuilt
        // (the pre-split congruence read may over-fetch; for a pending
        // split the movers re-partition when the split retries, so they
        // DO belong here at the pre-split level — hence filter at the
        // level the bucket will actually serve next, which is the
        // pre-split one when a split order is pending).
        const Level filter_level =
            pending_split_orders_.contains(task.bucket) ? task.level - 1
                                                        : task.level;
        if (HashL(rec.key, filter_level, ctx_->config.initial_buckets) !=
            task.bucket % (BucketNo{ctx_->config.initial_buckets}
                           << filter_level)) {
          continue;
        }
        task.records.push_back(rec);
      }
      LHRS_CHECK_GT(task.awaiting, 0u);
      if (--task.awaiting > 0) return;
      auto install = std::make_unique<MirrorInstallMsg>();
      install->task_id = task.id;
      install->bucket = task.bucket;
      install->level = task.level;
      install->records = std::move(task.records);
      Send(task.spare, std::move(install));
      return;
    }
    case LhmMsg::kMirrorAck: {
      const auto& ack = static_cast<const MirrorAckMsg&>(*msg.body);
      auto it = tasks_.find(ack.task_id);
      if (it == tasks_.end()) return;
      const BucketNo bucket = it->second.bucket;
      tasks_.erase(it);
      recovering_.erase(bucket);
      ++recoveries_completed_;
      auto parked = parked_.find(bucket);
      if (parked != parked_.end()) {
        std::vector<ClientOpViaCoordinatorMsg> ops =
            std::move(parked->second);
        parked_.erase(parked);
        for (const auto& op : ops) DeliverViaState(op);
      }
      if (auto pending = pending_split_orders_.find(bucket);
          pending != pending_split_orders_.end()) {
        Send(ctx_->allocation.Lookup(bucket),
             std::make_unique<SplitOrderMsg>(pending->second));
        pending_split_orders_.erase(pending);
      }
      if (orphaned_moves_.erase(bucket) > 0) {
        // The split's content arrived via the sibling copy; release the
        // latch the lost SplitDone would have cleared.
        AbortRestructure();
      }
      MaybeStartSplit();
      return;
    }
    default:
      CoordinatorNode::HandleSubclassMessage(msg);
  }
}

// --- Facade ------------------------------------------------------------------

LhmFile::LhmFile(Options options) : network_(exec::MakeNetwork(options.net)) {
  RegisterLhStarMessageNames();
  RegisterNames();
  for (int f = 0; f < 2; ++f) {
    replicas_[f].ctx = std::make_shared<SystemContext>();
    replicas_[f].ctx->config = options.file;
    auto coordinator =
        std::make_unique<LhmCoordinatorNode>(replicas_[f].ctx);
    coordinators_[f] = coordinator.get();
    replicas_[f].ctx->coordinator = network_->AddNode(std::move(coordinator));
    auto ctx = replicas_[f].ctx;
    coordinators_[f]->SetBucketFactory(
        [this, ctx](BucketNo bucket, Level level) {
          auto node = std::make_unique<LhmBucketNode>(
              ctx, bucket, level, /*pre_initialized=*/false);
          LhmBucketNode* ptr = node.get();
          const NodeId id = network_->AddNode(std::move(node));
          buckets_.Register(id, ptr);
          return id;
        });
    for (BucketNo b = 0; b < ctx->config.initial_buckets; ++b) {
      auto node = std::make_unique<LhmBucketNode>(ctx, b, /*level=*/0,
                                                  /*pre_initialized=*/true);
      LhmBucketNode* ptr = node.get();
      const NodeId id = network_->AddNode(std::move(node));
      buckets_.Register(id, ptr);
      ctx->allocation.Set(b, id);
    }
    AddReplicaClient(f, 0);
  }
  coordinators_[0]->SetSibling(coordinators_[1], replicas_[1].ctx);
  coordinators_[1]->SetSibling(coordinators_[0], replicas_[0].ctx);
}

ClientNode* LhmFile::AddReplicaClient(size_t replica, size_t session) {
  auto client = std::make_unique<ClientNode>(replicas_[replica].ctx);
  ClientNode* ptr = client.get();
  network_->AddNode(std::move(client));
  replicas_[replica].clients.push_back(ptr);
  replicas_[replica].subops.emplace_back();
  ptr->SetOnOpComplete([this, replica, session](uint64_t op_id) {
    OnSubOpComplete(replica, session, op_id);
  });
  return ptr;
}

size_t LhmFile::AddSession() {
  const size_t session = replicas_[0].clients.size();
  for (int f = 0; f < 2; ++f) AddReplicaClient(f, session);
  return session;
}

void LhmFile::StartSubOp(size_t replica, size_t session,
                         sdds::OpToken token, OpType op, Key key,
                         BufferView value) {
  ClientNode& c = *replicas_[replica].clients[session];
  const uint64_t op_id = c.StartOp(op, key, std::move(value));
  replicas_[replica].subops[session][op_id] = token;
}

sdds::OpToken LhmFile::Submit(size_t session, OpType op, Key key,
                              Bytes value) {
  LHRS_CHECK_LT(session, session_count());
  const sdds::OpToken token = NextToken();
  LogicalOp lop;
  lop.session = session;
  lop.op = op;
  lop.key = key;
  lop.value = BufferView(std::move(value));
  // The primary sub-op starts immediately; writes chain the mirror sub-op
  // from the primary's completion callback.
  StartSubOp(0, session, token, op, key, lop.value);
  inflight_.emplace(token, std::move(lop));
  return token;
}

void LhmFile::OnSubOpComplete(size_t replica, size_t session,
                              uint64_t op_id) {
  auto& sub = replicas_[replica].subops[session];
  auto it = sub.find(op_id);
  if (it == sub.end()) return;  // Direct client use outside the facade.
  const sdds::OpToken token = it->second;
  sub.erase(it);
  Result<OpOutcome> res =
      replicas_[replica].clients[session]->TakeResult(op_id);
  LHRS_CHECK(res.ok());
  auto lit = inflight_.find(token);
  LHRS_CHECK(lit != inflight_.end());
  LogicalOp& lop = lit->second;
  if (lop.op == OpType::kSearch) {
    // Searches touch the primary replica only.
    FinishOp(token, std::move(*res));
    return;
  }
  if (!lop.have_primary) {
    // Mirroring: the mirror write always runs, whatever the primary said
    // (the original synchronous semantics).
    lop.have_primary = true;
    lop.primary = std::move(*res);
    StartSubOp(1, lop.session, token, lop.op, lop.key, lop.value);
    return;
  }
  OpOutcome combined = std::move(lop.primary);
  if (combined.status.ok()) combined.status = std::move(res->status);
  FinishOp(token, std::move(combined));
}

void LhmFile::FinishOp(sdds::OpToken token, OpOutcome outcome) {
  inflight_.erase(token);
  done_[token] = std::move(outcome);
  NotifyComplete(token);
}

Result<OpOutcome> LhmFile::Take(sdds::OpToken token) {
  auto it = done_.find(token);
  if (it == done_.end()) {
    return Status::Internal("operation not finished");
  }
  OpOutcome out = std::move(it->second);
  done_.erase(it);
  return out;
}

NodeId LhmFile::CrashPrimaryBucket(BucketNo b) {
  const NodeId node = replicas_[0].ctx->allocation.Lookup(b);
  network_->SetAvailable(node, false);
  return node;
}

void LhmFile::RecoverPrimaryBucket(BucketNo b) {
  coordinators_[0]->RecoverBucket(b);
  network_->RunUntilIdle();
}

StorageStats LhmFile::GetStorageStats() const {
  StorageStats stats;
  for (int f = 0; f < 2; ++f) {
    const BucketNo count = coordinators_[f]->state().bucket_count();
    for (BucketNo b = 0; b < count; ++b) {
      const DataBucketNode* bucket =
          buckets_.At(replicas_[f].ctx->allocation.Lookup(b));
      if (f == 0) {
        stats.record_count += bucket->record_count();
        stats.data_bytes += bucket->StorageBytes();
        ++stats.data_buckets;
      } else {
        stats.parity_bytes += bucket->StorageBytes();
        ++stats.parity_buckets;
      }
    }
  }
  stats.load_factor = static_cast<double>(stats.record_count) /
                      (static_cast<double>(stats.data_buckets) *
                       replicas_[0].ctx->config.bucket_capacity);
  return stats;
}

Status LhmFile::VerifyMirrorInvariant() const {
  std::map<Key, BufferView> contents[2];
  for (int f = 0; f < 2; ++f) {
    const BucketNo count = coordinators_[f]->state().bucket_count();
    for (BucketNo b = 0; b < count; ++b) {
      const DataBucketNode* bucket =
          buckets_.At(replicas_[f].ctx->allocation.Lookup(b));
      bucket->records().ForEachOrdered([&](Key key, const BufferView& value) {
        contents[f][key] = value;
      });
    }
  }
  if (contents[0] != contents[1]) {
    return Status::Internal("replicas diverged");
  }
  return Status::OK();
}

}  // namespace lhrs::lhm
