#ifndef LHRS_BASELINES_LHM_LHM_FILE_H_
#define LHRS_BASELINES_LHM_LHM_FILE_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "lhstar/client.h"
#include "lhstar/coordinator.h"
#include "lhstar/data_bucket.h"
#include "lhstar/lhstar_file.h"
#include "net/network.h"

namespace lhrs::lhm {

/// Message kinds of the LH*m baseline (range [400, 500)).
struct LhmMsg {
  static constexpr int kMirrorRead = MessageKindRange::kLhmBase + 0;
  static constexpr int kMirrorReadReply = MessageKindRange::kLhmBase + 1;
  static constexpr int kMirrorInstall = MessageKindRange::kLhmBase + 2;
  static constexpr int kMirrorAck = MessageKindRange::kLhmBase + 3;
};

/// Coordinator -> sibling-file bucket: dump your records (they are the
/// mirror of the failed bucket's content).
struct MirrorReadMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;

  int kind() const override { return LhmMsg::kMirrorRead; }
  size_t ByteSize() const override { return 16; }
};

struct MirrorReadReplyMsg : MessageBody {
  uint64_t task_id = 0;
  Level level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhmMsg::kMirrorReadReply; }
  size_t ByteSize() const override {
    size_t n = 16;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct MirrorInstallMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhmMsg::kMirrorInstall; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct MirrorAckMsg : MessageBody {
  uint64_t task_id = 0;

  int kind() const override { return LhmMsg::kMirrorAck; }
  size_t ByteSize() const override { return 8; }
};

/// A bucket of one LH*m replica: a plain LH* bucket plus the mirror-copy
/// protocol for recovery.
class LhmBucketNode : public DataBucketNode {
 public:
  using DataBucketNode::DataBucketNode;
  const char* role() const override { return "lhm-bucket"; }

 protected:
  void HandleSubclassMessage(const Message& msg) override;
};

/// Coordinator of one LH*m replica. Serves ops that hit a dead bucket from
/// the sibling replica, recovers dead buckets by bulk copy from the
/// sibling, and parks writes during recovery.
class LhmCoordinatorNode : public CoordinatorNode {
 public:
  explicit LhmCoordinatorNode(std::shared_ptr<SystemContext> ctx)
      : CoordinatorNode(std::move(ctx)) {}

  /// Wires the sibling replica (direct state access models the paper-style
  /// shared coordination; all data moves via counted messages).
  void SetSibling(LhmCoordinatorNode* sibling,
                  std::shared_ptr<SystemContext> sibling_ctx) {
    sibling_ = sibling;
    sibling_ctx_ = std::move(sibling_ctx);
  }

  void RecoverBucket(BucketNo bucket);
  uint64_t recoveries_completed() const { return recoveries_completed_; }

 protected:
  void HandleClientOpFallback(const ClientOpViaCoordinatorMsg& op) override;
  void OnOpDeliveryFailure(const OpRequestMsg& request) override;
  void HandleSubclassMessage(const Message& msg) override;
  void OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                   NodeId victim_node) override;
  void OnOrphanedMoveRecords(const MoveRecordsMsg& move) override;
  bool CanSplitNow() const override { return tasks_.empty(); }

 private:
  struct CopyTask {
    uint64_t id = 0;
    BucketNo bucket = 0;
    NodeId spare = kInvalidNode;
    Level level = 0;
    size_t awaiting = 0;
    std::vector<WireRecord> records;
  };

  /// Sends an op to the sibling replica's copy of the record (degraded
  /// read). hops stays 0 so the sibling's IAM does not corrupt the
  /// client's image of *this* file.
  void ServeFromSibling(const ClientOpViaCoordinatorMsg& op);

  LhmCoordinatorNode* sibling_ = nullptr;
  std::shared_ptr<SystemContext> sibling_ctx_;
  uint64_t next_task_id_ = 1;
  std::map<uint64_t, CopyTask> tasks_;
  std::set<BucketNo> recovering_;
  std::map<BucketNo, std::vector<ClientOpViaCoordinatorMsg>> parked_;
  std::map<BucketNo, SplitOrderMsg> pending_split_orders_;
  std::set<BucketNo> orphaned_moves_;
  uint64_t recoveries_completed_ = 0;
};

/// The LH*m baseline: full record mirroring across two LH* files — the
/// simplest 1-available scheme, at 100% storage overhead and 2x write
/// messaging, with instant degraded reads (the mirror answers directly)
/// and bulk-copy recovery.
///
/// Implements the SddsFile facade. A logical write is a two-step chain:
/// the primary sub-op runs first, the mirror sub-op starts the instant the
/// primary completes (both always run, matching the original synchronous
/// semantics), and the combined status is the primary's error if any, else
/// the mirror's. Searches touch the primary replica only. A session owns
/// one client per replica.
class LhmFile : public sdds::SddsFile {
 public:
  struct Options {
    FileConfig file;
    NetworkConfig net;
  };

  explicit LhmFile(Options options);

  // --- SddsFile ------------------------------------------------------------
  size_t AddSession() override;
  size_t session_count() const override {
    return replicas_[0].clients.size();
  }
  sdds::OpToken Submit(size_t session, OpType op, Key key,
                       Bytes value) override;
  bool Poll(sdds::OpToken token) const override {
    return done_.contains(token);
  }
  Result<OpOutcome> Take(sdds::OpToken token) override;
  Network& network() override { return *network_; }
  StorageStats GetStorageStats() const override;

  NodeId CrashPrimaryBucket(BucketNo b);
  void RecoverPrimaryBucket(BucketNo b);

  BucketNo bucket_count() const { return coordinators_[0]->state().bucket_count(); }
  LhmCoordinatorNode& primary_coordinator() { return *coordinators_[0]; }

  /// Both replicas must hold identical record sets.
  Status VerifyMirrorInvariant() const;

 private:
  struct Replica {
    std::shared_ptr<SystemContext> ctx;
    std::vector<ClientNode*> clients;  ///< One per session.
    /// Per session: client op id -> facade token of the logical op.
    std::vector<std::map<uint64_t, sdds::OpToken>> subops;
  };

  /// State of one logical op between its primary and mirror sub-ops.
  struct LogicalOp {
    size_t session = 0;
    OpType op = OpType::kSearch;
    Key key = 0;
    BufferView value;  ///< Shared by both sub-ops.
    bool have_primary = false;
    OpOutcome primary;
  };

  void StartSubOp(size_t replica, size_t session, sdds::OpToken token,
                  OpType op, Key key, BufferView value);
  void OnSubOpComplete(size_t replica, size_t session, uint64_t op_id);
  void FinishOp(sdds::OpToken token, OpOutcome outcome);
  ClientNode* AddReplicaClient(size_t replica, size_t session);

  std::unique_ptr<Network> network_;  ///< exec::MakeNetwork(options.net).
  Replica replicas_[2];
  LhmCoordinatorNode* coordinators_[2] = {nullptr, nullptr};
  std::map<sdds::OpToken, LogicalOp> inflight_;
  std::map<sdds::OpToken, OpOutcome> done_;
  /// Typed registry of every bucket node of both replicas.
  sdds::NodeIndex<DataBucketNode> buckets_;
};

}  // namespace lhrs::lhm

#endif  // LHRS_BASELINES_LHM_LHM_FILE_H_
