#ifndef LHRS_BASELINES_LHM_LHM_FILE_H_
#define LHRS_BASELINES_LHM_LHM_FILE_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "lhstar/client.h"
#include "lhstar/coordinator.h"
#include "lhstar/data_bucket.h"
#include "lhstar/lhstar_file.h"
#include "net/network.h"

namespace lhrs::lhm {

/// Message kinds of the LH*m baseline (range [400, 500)).
struct LhmMsg {
  static constexpr int kMirrorRead = MessageKindRange::kLhmBase + 0;
  static constexpr int kMirrorReadReply = MessageKindRange::kLhmBase + 1;
  static constexpr int kMirrorInstall = MessageKindRange::kLhmBase + 2;
  static constexpr int kMirrorAck = MessageKindRange::kLhmBase + 3;
};

/// Coordinator -> sibling-file bucket: dump your records (they are the
/// mirror of the failed bucket's content).
struct MirrorReadMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;

  int kind() const override { return LhmMsg::kMirrorRead; }
  size_t ByteSize() const override { return 16; }
};

struct MirrorReadReplyMsg : MessageBody {
  uint64_t task_id = 0;
  Level level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhmMsg::kMirrorReadReply; }
  size_t ByteSize() const override {
    size_t n = 16;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct MirrorInstallMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhmMsg::kMirrorInstall; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct MirrorAckMsg : MessageBody {
  uint64_t task_id = 0;

  int kind() const override { return LhmMsg::kMirrorAck; }
  size_t ByteSize() const override { return 8; }
};

/// A bucket of one LH*m replica: a plain LH* bucket plus the mirror-copy
/// protocol for recovery.
class LhmBucketNode : public DataBucketNode {
 public:
  using DataBucketNode::DataBucketNode;
  const char* role() const override { return "lhm-bucket"; }

 protected:
  void HandleSubclassMessage(const Message& msg) override;
};

/// Coordinator of one LH*m replica. Serves ops that hit a dead bucket from
/// the sibling replica, recovers dead buckets by bulk copy from the
/// sibling, and parks writes during recovery.
class LhmCoordinatorNode : public CoordinatorNode {
 public:
  explicit LhmCoordinatorNode(std::shared_ptr<SystemContext> ctx)
      : CoordinatorNode(std::move(ctx)) {}

  /// Wires the sibling replica (direct state access models the paper-style
  /// shared coordination; all data moves via counted messages).
  void SetSibling(LhmCoordinatorNode* sibling,
                  std::shared_ptr<SystemContext> sibling_ctx) {
    sibling_ = sibling;
    sibling_ctx_ = std::move(sibling_ctx);
  }

  void RecoverBucket(BucketNo bucket);
  uint64_t recoveries_completed() const { return recoveries_completed_; }

 protected:
  void HandleClientOpFallback(const ClientOpViaCoordinatorMsg& op) override;
  void OnOpDeliveryFailure(const OpRequestMsg& request) override;
  void HandleSubclassMessage(const Message& msg) override;
  void OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                   NodeId victim_node) override;
  void OnOrphanedMoveRecords(const MoveRecordsMsg& move) override;
  bool CanSplitNow() const override { return tasks_.empty(); }

 private:
  struct CopyTask {
    uint64_t id = 0;
    BucketNo bucket = 0;
    NodeId spare = kInvalidNode;
    Level level = 0;
    size_t awaiting = 0;
    std::vector<WireRecord> records;
  };

  /// Sends an op to the sibling replica's copy of the record (degraded
  /// read). hops stays 0 so the sibling's IAM does not corrupt the
  /// client's image of *this* file.
  void ServeFromSibling(const ClientOpViaCoordinatorMsg& op);

  LhmCoordinatorNode* sibling_ = nullptr;
  std::shared_ptr<SystemContext> sibling_ctx_;
  uint64_t next_task_id_ = 1;
  std::map<uint64_t, CopyTask> tasks_;
  std::set<BucketNo> recovering_;
  std::map<BucketNo, std::vector<ClientOpViaCoordinatorMsg>> parked_;
  std::map<BucketNo, SplitOrderMsg> pending_split_orders_;
  std::set<BucketNo> orphaned_moves_;
  uint64_t recoveries_completed_ = 0;
};

/// The LH*m baseline: full record mirroring across two LH* files — the
/// simplest 1-available scheme, at 100% storage overhead and 2x write
/// messaging, with instant degraded reads (the mirror answers directly)
/// and bulk-copy recovery.
class LhmFile {
 public:
  struct Options {
    FileConfig file;
    NetworkConfig net;
  };

  explicit LhmFile(Options options);

  Status Insert(Key key, Bytes value);
  Result<Bytes> Search(Key key);
  Status Update(Key key, Bytes value);
  Status Delete(Key key);

  NodeId CrashPrimaryBucket(BucketNo b);
  void RecoverPrimaryBucket(BucketNo b);

  Network& network() { return network_; }
  BucketNo bucket_count() const { return coordinators_[0]->state().bucket_count(); }
  LhmCoordinatorNode& primary_coordinator() { return *coordinators_[0]; }
  StorageStats GetStorageStats() const;

  /// Both replicas must hold identical record sets.
  Status VerifyMirrorInvariant() const;

 private:
  struct Replica {
    std::shared_ptr<SystemContext> ctx;
    ClientNode* client = nullptr;
  };

  Result<OpOutcome> RunOn(size_t replica, OpType op, Key key, Bytes value);

  Network network_;
  Replica replicas_[2];
  LhmCoordinatorNode* coordinators_[2] = {nullptr, nullptr};
};

}  // namespace lhrs::lhm

#endif  // LHRS_BASELINES_LHM_LHM_FILE_H_
