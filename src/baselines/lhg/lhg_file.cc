#include "baselines/lhg/lhg_file.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"

namespace lhrs::lhg {

namespace {

LhStarFile::Options ToBaseOptions(const LhgFile::Options& options) {
  LhStarFile::Options base;
  base.file = options.file;
  // Per the paper, F1 starts with k buckets (one full bucket group).
  if (base.file.initial_buckets == 1) {
    base.file.initial_buckets = options.group_size;
  }
  base.net = options.net;
  return base;
}

}  // namespace

LhgFile::LhgFile(Options options)
    : LhStarFile(ToBaseOptions(options), DeferInit{}),
      group_size_(options.group_size) {
  const bool g1 = options.reassign_group_keys_on_split;
  RegisterLhgMessageNames();

  f2_ctx_ = std::make_shared<SystemContext>();
  f2_ctx_->config = ctx_->config;
  f2_ctx_->config.initial_buckets = 1;
  if (options.parity_bucket_capacity != 0) {
    f2_ctx_->config.bucket_capacity = options.parity_bucket_capacity;
  }

  // F1 coordinator (with all recovery logic) and F2 split coordinator;
  // per the paper they are one logical coordinator, so the F1 side reads
  // the F2 state directly.
  auto lhg_coordinator = std::make_unique<LhgCoordinatorNode>(
      ctx_, f2_ctx_, group_size_);
  lhg_coordinator_ = lhg_coordinator.get();
  coordinator_ = lhg_coordinator_;
  ctx_->coordinator = network_->AddNode(std::move(lhg_coordinator));

  auto f2_coordinator = std::make_unique<LhgParityCoordinatorNode>(f2_ctx_);
  f2_coordinator->SetMainCoordinator(lhg_coordinator_);
  f2_coordinator_ = f2_coordinator.get();
  f2_ctx_->coordinator = network_->AddNode(std::move(f2_coordinator));
  lhg_coordinator_->SetParityCoordinator(f2_coordinator_);

  lhg_coordinator_->SetBucketFactory([this, g1](BucketNo bucket,
                                                Level level) {
    auto node = std::make_unique<LhgDataBucketNode>(
        ctx_, f2_ctx_, group_size_, bucket, level, /*pre_initialized=*/false,
        g1);
    LhgDataBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    RegisterDataBucket(id, ptr);
    return id;
  });
  auto parity_factory = [this](BucketNo bucket, Level level) {
    auto node = std::make_unique<LhgParityBucketNode>(
        f2_ctx_, bucket, level, /*pre_initialized=*/false);
    LhgParityBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    parity_nodes_.Register(id, ptr);
    return id;
  };
  f2_coordinator_->SetBucketFactory(parity_factory);
  lhg_coordinator_->SetParityFactory(parity_factory);

  for (BucketNo b = 0; b < ctx_->config.initial_buckets; ++b) {
    auto node = std::make_unique<LhgDataBucketNode>(
        ctx_, f2_ctx_, group_size_, b, /*level=*/0, /*pre_initialized=*/true,
        g1);
    LhgDataBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    RegisterDataBucket(id, ptr);
    ctx_->allocation.Set(b, id);
  }
  auto parity0 = std::make_unique<LhgParityBucketNode>(
      f2_ctx_, /*bucket_no=*/0, /*level=*/0, /*pre_initialized=*/true);
  LhgParityBucketNode* parity0_ptr = parity0.get();
  const NodeId parity0_id = network_->AddNode(std::move(parity0));
  parity_nodes_.Register(parity0_id, parity0_ptr);
  f2_ctx_->allocation.Set(0, parity0_id);

  AddClient();
}

NodeId LhgFile::CrashDataBucket(BucketNo b) {
  const NodeId node = ctx_->allocation.Lookup(b);
  network_->SetAvailable(node, false);
  return node;
}

NodeId LhgFile::CrashParityBucket(BucketNo f2_bucket) {
  const NodeId node = f2_ctx_->allocation.Lookup(f2_bucket);
  network_->SetAvailable(node, false);
  return node;
}

void LhgFile::RecoverDataBucket(BucketNo b) {
  lhg_coordinator_->RecoverDataBucket(b);
  network_->RunUntilIdle();
}

void LhgFile::RecoverParityBucket(BucketNo f2_bucket) {
  lhg_coordinator_->RecoverParityBucket(f2_bucket);
  network_->RunUntilIdle();
}

LhgDataBucketNode* LhgFile::lhg_bucket(BucketNo b) const {
  // Every data bucket of an LH*g file is an LhgDataBucketNode, so the
  // registered base pointer downcasts statically.
  DataBucketNode* node = data_node(ctx_->allocation.Lookup(b));
  LHRS_CHECK(node != nullptr) << "bucket " << b << " not registered";
  return static_cast<LhgDataBucketNode*>(node);
}

LhgParityBucketNode* LhgFile::parity_bucket(BucketNo f2_bucket) const {
  return parity_nodes_.At(f2_ctx_->allocation.Lookup(f2_bucket));
}

StorageStats LhgFile::GetStorageStats() const {
  StorageStats stats = LhStarFile::GetStorageStats();
  const BucketNo m2 = f2_coordinator_->state().bucket_count();
  for (BucketNo b = 0; b < m2; ++b) {
    stats.parity_bytes += parity_bucket(b)->StorageBytes();
    ++stats.parity_buckets;
  }
  return stats;
}

Status LhgFile::VerifyParityInvariants() const {
  // Ground truth from F1: record groups by packed group key.
  std::map<uint64_t, ParityRecordG> expected;
  for (BucketNo b = 0; b < bucket_count(); ++b) {
    const LhgDataBucketNode* bucket = lhg_bucket(b);
    Status status = Status::OK();
    bucket->records().ForEachOrdered([&](Key key, const BufferView& value) {
      const uint64_t gkey = bucket->group_key_of(key).Packed();
      auto [it, unused] = expected.try_emplace(gkey);
      if (it->second.HasMember(key)) {
        status = Status::Internal("duplicate member in record group");
        return;
      }
      it->second.AddMember(key, static_cast<uint32_t>(value.size()));
      XorAssignPadded(it->second.parity, value);
    });
    if (!status.ok()) return status;
  }
  // Compare with F2 contents.
  std::map<uint64_t, ParityRecordG> actual;
  const BucketNo m2 = f2_coordinator_->state().bucket_count();
  for (BucketNo b = 0; b < m2; ++b) {
    for (auto& [gk, record] : parity_bucket(b)->DecodedRecords()) {
      if (!actual.emplace(gk.Packed(), std::move(record)).second) {
        return Status::Internal("parity record duplicated across F2");
      }
    }
  }
  if (expected.size() != actual.size()) {
    return Status::Internal(
        "record-group count mismatch: F1 implies " +
        std::to_string(expected.size()) + ", F2 holds " +
        std::to_string(actual.size()));
  }
  for (const auto& [gkey, exp] : expected) {
    auto it = actual.find(gkey);
    if (it == actual.end()) {
      return Status::Internal("missing parity record for group " +
                              std::to_string(gkey));
    }
    const ParityRecordG& act = it->second;
    std::vector<Key> exp_members = exp.members;
    std::vector<Key> act_members = act.members;
    std::sort(exp_members.begin(), exp_members.end());
    std::sort(act_members.begin(), act_members.end());
    if (exp_members != act_members) {
      return Status::Internal("member mismatch for group " +
                              std::to_string(gkey));
    }
    for (size_t i = 0; i < exp.members.size(); ++i) {
      const int j = act.FindMember(exp.members[i]);
      if (j < 0 || act.lengths[j] != exp.lengths[i]) {
        return Status::Internal("length mismatch for group " +
                                std::to_string(gkey));
      }
    }
    const size_t n = std::max(exp.parity.size(), act.parity.size());
    if (PadTo(exp.parity, n) != PadTo(act.parity, n)) {
      return Status::Internal("parity bytes mismatch for group " +
                              std::to_string(gkey));
    }
  }
  // Proposition 1: no record group exceeds k members, and all members sit
  // in distinct buckets.
  for (const auto& [gkey, exp] : expected) {
    if (exp.members.size() > group_size_) {
      return Status::Internal("record group exceeds k members");
    }
    std::set<BucketNo> buckets;
    const FileState& state = coordinator_->state();
    for (Key c : exp.members) {
      if (!buckets.insert(state.Address(c)).second) {
        return Status::Internal(
            "two members of one record group share a bucket");
      }
    }
  }
  return Status::OK();
}

}  // namespace lhrs::lhg
