#include "baselines/lhg/lhg_data_bucket.h"

#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs::lhg {

LhgDataBucketNode::LhgDataBucketNode(std::shared_ptr<SystemContext> f1_ctx,
                                     std::shared_ptr<SystemContext> f2_ctx,
                                     uint32_t group_size, BucketNo bucket_no,
                                     Level level, bool pre_initialized,
                                     bool reassign_on_split)
    : DataBucketNode(std::move(f1_ctx), bucket_no, level, pre_initialized),
      f2_ctx_(std::move(f2_ctx)),
      group_size_(group_size),
      reassign_on_split_(reassign_on_split) {
  f2_image_.initial_buckets = f2_ctx_->config.initial_buckets;
}

GroupKey LhgDataBucketNode::group_key_of(Key key) const {
  auto it = group_keys_.find(key);
  LHRS_CHECK(it != group_keys_.end()) << "no group key for " << key;
  return GroupKey::Unpack(it->second);
}

void LhgDataBucketNode::SendParityUpdate(GroupKey gk, ParityUpdateMsg::Op op,
                                         Key member, uint32_t new_length,
                                         BufferView delta) {
  const uint64_t packed = gk.Packed();
  const BucketNo a = f2_image_.Address(packed);  // A1 on the F2 image.
  auto update = std::make_unique<ParityUpdateMsg>();
  update->gkey = packed;
  update->op = op;
  update->member = member;
  update->new_length = new_length;
  update->delta = std::move(delta);
  update->reply_to = id();
  update->intended_bucket = a;
  Send(f2_ctx_->allocation.Lookup(a), std::move(update));
}

void LhgDataBucketNode::OnInsertCommitted(Key key, const BufferView& value) {
  const GroupKey gk{bucket_group(), ++counter_};
  group_keys_[key] = gk.Packed();
  SendParityUpdate(gk, ParityUpdateMsg::Op::kAddMember, key,
                   static_cast<uint32_t>(value.size()), value);
}

void LhgDataBucketNode::OnUpdateCommitted(Key key,
                                          const BufferView& old_value,
                                          const BufferView& new_value) {
  SendParityUpdate(group_key_of(key), ParityUpdateMsg::Op::kValueUpdate, key,
                   static_cast<uint32_t>(new_value.size()),
                   MakeXorDelta(old_value, new_value));
}

void LhgDataBucketNode::OnDeleteCommitted(Key key,
                                          const BufferView& old_value) {
  const GroupKey gk = group_key_of(key);
  group_keys_.erase(key);
  SendParityUpdate(gk, ParityUpdateMsg::Op::kRemoveMember, key, 0,
                   old_value);
}

void LhgDataBucketNode::OnRecordsMovedOut(std::vector<WireRecord>& moved) {
  // THE LH*g property: movers keep their group keys (carried in the wire
  // tag) and no parity record is touched.
  for (auto& rec : moved) {
    auto it = group_keys_.find(rec.key);
    LHRS_CHECK(it != group_keys_.end());
    rec.tag = it->second;
    group_keys_.erase(it);
  }
}

void LhgDataBucketNode::OnRecordsMovedIn(const std::vector<WireRecord>& moved) {
  for (const auto& rec : moved) {
    LHRS_CHECK_NE(rec.tag, 0u) << "moved LH*g record lost its group key";
    if (!reassign_on_split_) {
      // Basic LH*g: the group key is immutable; parity untouched.
      group_keys_[rec.key] = rec.tag;
      continue;
    }
    // LH*g1: retire the record from its old group and register it in this
    // bucket's group under a fresh counter value (paper section 4.4).
    const GroupKey old_gk = GroupKey::Unpack(rec.tag);
    SendParityUpdate(old_gk, ParityUpdateMsg::Op::kRemoveMember, rec.key,
                     0, rec.value);
    const GroupKey new_gk{bucket_group(), ++counter_};
    group_keys_[rec.key] = new_gk.Packed();
    SendParityUpdate(new_gk, ParityUpdateMsg::Op::kAddMember, rec.key,
                     static_cast<uint32_t>(rec.value.size()), rec.value);
  }
}

void LhgDataBucketNode::OnDecommissioned() {
  group_keys_.clear();
  counter_ = 0;
}

void LhgDataBucketNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhgMsg::kParityIam: {
      const auto& iam = static_cast<const ParityIamMsg&>(*msg.body);
      f2_image_.Adjust(iam.bucket, iam.level);  // A3 on the F2 image.
      return;
    }
    case LhgMsg::kCollectForParity:
      HandleCollectForParity(
          static_cast<const CollectForParityMsg&>(*msg.body), msg.from);
      return;
    case LhgMsg::kInstallData:
      HandleInstallData(static_cast<const InstallDataMsg&>(*msg.body),
                        msg.from);
      return;
    default:
      DataBucketNode::HandleSubclassMessage(msg);
  }
}

void LhgDataBucketNode::HandleSubclassDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhgMsg::kParityUpdate: {
      // An F2 bucket is down. Report it so the coordinator rebuilds it
      // (A5) — and escalate the update itself for re-delivery: the dead
      // node may merely be a *stale-image* miss whose correct bucket is
      // alive, and even when it is the right bucket, the A5 rebuild scans
      // F1 (which already holds this change's data side) only for records
      // addressed there, so an in-flight delta must not be dropped.
      const auto& update = static_cast<const ParityUpdateMsg&>(*msg.body);
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = update.intended_bucket;
      report->is_parity = true;
      Send(ctx().coordinator, std::move(report));
      Send(ctx().coordinator, std::make_unique<ParityUpdateMsg>(update));
      return;
    }
    default:
      DataBucketNode::HandleSubclassDeliveryFailure(msg);
  }
}

void LhgDataBucketNode::HandleCollectForParity(const CollectForParityMsg& req,
                                               NodeId from) {
  FileState f2_state{req.i2, req.n2, req.f2_initial_buckets};
  auto reply = std::make_unique<CollectForParityReplyMsg>();
  reply->task_id = req.task_id;
  reply->from_bucket = bucket_no();
  records_.ForEachOrdered([&](Key key, const BufferView& value) {
    const uint64_t packed = group_keys_.at(key);
    const BucketNo a = f2_state.Address(packed);
    if (a == req.parity_bucket || a == req.also_bucket) {
      reply->records.push_back(TaggedRecord{packed, key, value});
    }
  });
  Send(from, std::move(reply));
}

void LhgDataBucketNode::HandleInstallData(const InstallDataMsg& install,
                                          NodeId from) {
  LHRS_CHECK_EQ(install.bucket, bucket_no());
  store::BucketStore records;
  group_keys_.clear();
  for (const auto& rec : install.records) {
    records.InsertShared(rec.key, rec.value);
    group_keys_[rec.key] = rec.gkey;
  }
  counter_ = install.counter;
  InstallRecoveredState(std::move(records), install.level);
  auto ack = std::make_unique<InstallAckMsg>();
  ack->task_id = install.task_id;
  Send(from, std::move(ack));
}

}  // namespace lhrs::lhg
