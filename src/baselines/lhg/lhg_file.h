#ifndef LHRS_BASELINES_LHG_LHG_FILE_H_
#define LHRS_BASELINES_LHG_LHG_FILE_H_

#include <map>
#include <memory>
#include <vector>

#include "baselines/lhg/lhg_coordinator.h"
#include "baselines/lhg/lhg_data_bucket.h"
#include "baselines/lhg/lhg_parity_bucket.h"
#include "lhstar/lhstar_file.h"

namespace lhrs::lhg {

/// The LH*g baseline: a 1-available SDDS by record grouping, implemented
/// faithfully from its paper (the text supplied with this reproduction):
/// a primary LH* file F1 whose buckets assign immutable record-group keys
/// (g, r), plus a separate XOR parity LH* file F2, with the property that
/// F1 splits never touch parity records.
///
/// Comparison points against LH*RS (bench T1/T2/F4/F6): same 1-availability
/// at the same ~1/k storage overhead, free splits — but degraded-mode
/// record recovery must *scan* the whole parity file (O(M/k) messages)
/// where LH*RS contacts its group's parity bucket directly, and
/// availability cannot exceed one failure per bucket group.
class LhgFile : public LhStarFile {
 public:
  struct Options {
    FileConfig file;  ///< F1 config; initial_buckets defaults to k.
    NetworkConfig net;
    uint32_t group_size = 3;          ///< The paper's k (bucket group size).
    size_t parity_bucket_capacity = 0;  ///< b'; 0 = same as F1's b.
    /// LH*g1 variant (section 4.4): movers get fresh group keys, keeping
    /// groups bucket-local at ~2 extra parity messages per moved record.
    bool reassign_group_keys_on_split = false;
  };

  explicit LhgFile(Options options);

  // --- Failure injection & recovery --------------------------------------
  NodeId CrashDataBucket(BucketNo b);
  NodeId CrashParityBucket(BucketNo f2_bucket);
  void RecoverDataBucket(BucketNo b);
  void RecoverParityBucket(BucketNo f2_bucket);

  // --- Introspection -------------------------------------------------------
  LhgCoordinatorNode& lhg_coordinator() { return *lhg_coordinator_; }
  CoordinatorNode& f2_coordinator() { return *f2_coordinator_; }
  SystemContext& f2_context() { return *f2_ctx_; }
  BucketNo parity_bucket_count() const {
    return f2_coordinator_->state().bucket_count();
  }
  LhgDataBucketNode* lhg_bucket(BucketNo b) const;
  LhgParityBucketNode* parity_bucket(BucketNo f2_bucket) const;

  StorageStats GetStorageStats() const override;

  /// Recomputes every record group's XOR parity and membership from F1 and
  /// compares against F2's contents.
  Status VerifyParityInvariants() const;

 private:
  std::shared_ptr<SystemContext> f2_ctx_;
  LhgCoordinatorNode* lhg_coordinator_ = nullptr;  // Owned by network_.
  CoordinatorNode* f2_coordinator_ = nullptr;      // Owned by network_.
  uint32_t group_size_;
  /// Typed registry of F2 parity buckets (F1 data buckets live in the
  /// base's registry), filled by the parity factory.
  sdds::NodeIndex<LhgParityBucketNode> parity_nodes_;
};

}  // namespace lhrs::lhg

#endif  // LHRS_BASELINES_LHG_LHG_FILE_H_
