#include "baselines/lhg/lhg_coordinator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs::lhg {

LhgCoordinatorNode::LhgCoordinatorNode(std::shared_ptr<SystemContext> f1_ctx,
                                       std::shared_ptr<SystemContext> f2_ctx,
                                       uint32_t group_size)
    : CoordinatorNode(std::move(f1_ctx)),
      f2_ctx_(std::move(f2_ctx)),
      group_size_(group_size) {}

BucketNo LhgCoordinatorNode::F2BucketCount() const {
  LHRS_CHECK(f2_coordinator_ != nullptr);
  return f2_coordinator_->state().bucket_count();
}

void LhgCoordinatorNode::HandleUnavailableReport(
    const UnavailableReportMsg& report) {
  if (!auto_recover_) return;
  if (report.is_parity) {
    if (!f2_ctx_->allocation.Knows(report.bucket)) return;
    if (recovering_parity_.contains(report.bucket)) return;
    if (net()->available(f2_ctx_->allocation.Lookup(report.bucket))) return;
    StartParityRecovery(report.bucket);
  } else {
    if (!ctx_->allocation.Knows(report.bucket)) return;
    if (ctx_->allocation.Lookup(report.bucket) != report.node) return;
    if (recovering_data_.contains(report.bucket)) return;
    if (net()->available(report.node)) return;  // Stale report.
    StartDataRecovery(report.bucket);
  }
}

void LhgCoordinatorNode::RecoverDataBucket(BucketNo bucket) {
  if (!recovering_data_.contains(bucket)) StartDataRecovery(bucket);
}

void LhgCoordinatorNode::RecoverParityBucket(BucketNo f2_bucket) {
  if (!recovering_parity_.contains(f2_bucket)) {
    StartParityRecovery(f2_bucket);
  }
}

void LhgCoordinatorNode::ParkOp(const ClientOpViaCoordinatorMsg& op) {
  parked_[state_.Address(op.key)].push_back(op);
}

void LhgCoordinatorNode::HandleClientOpFallback(
    const ClientOpViaCoordinatorMsg& op) {
  if (op.client == id()) {
    // A bounced internal search: its target bucket stood down after an
    // aborted recovery — the search cannot be satisfied.
    FailInternalSearch(op.op_id);
    return;
  }
  MaybeResetClientImage(op);
  const BucketNo a = state_.Address(op.key);
  if (lost_buckets_.contains(a)) {
    FailClientOp(op, StatusCode::kDataLoss,
                 "multiple bucket failures exceed LH*g 1-availability");
    return;
  }
  if (recovering_data_.contains(a)) {
    if (op.op == OpType::kSearch) {
      StartDegradedRead(op);
    } else {
      ParkOp(op);
    }
    return;
  }
  if (!net()->available(ctx_->allocation.Lookup(a))) {
    if (auto_recover_) StartDataRecovery(a);
    if (op.op == OpType::kSearch) {
      StartDegradedRead(op);
    } else if (recovering_data_.contains(a)) {
      ParkOp(op);
    } else {
      FailClientOp(op, StatusCode::kUnavailable,
                   "bucket unavailable and automatic recovery is off");
    }
    return;
  }
  DeliverViaState(op);
}

void LhgCoordinatorNode::OnOpDeliveryFailure(const OpRequestMsg& req) {
  if (req.client == id()) {
    // An internal recovery/degraded-mode search hit another dead bucket:
    // multiple failures, which 1-available LH*g cannot mask.
    FailInternalSearch(req.op_id);
    return;
  }
  ClientOpViaCoordinatorMsg op;
  op.op = req.op;
  op.op_id = req.op_id;
  op.client = req.client;
  op.intended_bucket = req.intended_bucket;
  op.key = req.key;
  op.value = req.value;
  const BucketNo a = req.intended_bucket;
  if (auto_recover_) StartDataRecovery(a);
  if (lost_buckets_.contains(a)) {
    FailClientOp(op, StatusCode::kDataLoss,
                 "multiple bucket failures exceed LH*g 1-availability");
    return;
  }
  if (op.op == OpType::kSearch) {
    StartDegradedRead(op);
  } else if (recovering_data_.contains(a)) {
    ParkOp(op);
  } else {
    FailClientOp(op, StatusCode::kUnavailable,
                 "bucket unavailable and automatic recovery is off");
  }
}

void LhgCoordinatorNode::FailInternalSearch(uint64_t op_id) {
  auto it = internal_searches_.find(op_id);
  if (it == internal_searches_.end()) return;
  const InternalSearch search = it->second;
  internal_searches_.erase(it);
  if (search.degraded) {
    auto task = degraded_.find(search.task_id);
    if (task != degraded_.end()) {
      FailClientOp(task->second.op, StatusCode::kDataLoss,
                   "multiple bucket failures exceed LH*g 1-availability");
      degraded_.erase(task);
    }
  } else {
    auto task = data_tasks_.find(search.task_id);
    if (task != data_tasks_.end()) {
      LHRS_LOG(Warning)
          << "LH*g bucket recovery aborted: second failure in flight";
      const BucketNo bucket = task->second.bucket;
      data_tasks_.erase(task);
      MarkBucketLost(bucket);
    }
  }
}

void LhgCoordinatorNode::MarkBucketLost(BucketNo bucket) {
  if (!lost_buckets_.insert(bucket).second) return;
  recovering_data_.erase(bucket);
  // Stand the half-built spare down: it bounces its queued ops back here,
  // where the lost-bucket check fails them loudly.
  auto stand_down = std::make_unique<SelfCheckReplyMsg>();
  stand_down->bucket = bucket;
  stand_down->still_owner = false;
  Send(ctx_->allocation.Lookup(bucket), std::move(stand_down));
  auto parked = parked_.find(bucket);
  if (parked != parked_.end()) {
    for (const auto& op : parked->second) {
      FailClientOp(op, StatusCode::kDataLoss,
                   "multiple bucket failures exceed LH*g 1-availability");
    }
    parked_.erase(parked);
  }
  MaybeStartSplit();
}

void LhgCoordinatorNode::IssueInternalSearch(uint64_t task_id, bool degraded,
                                             Key key) {
  const uint64_t op_id = next_internal_op_++;
  internal_searches_[op_id] = InternalSearch{task_id, degraded, key};
  const BucketNo target = state_.Address(key);
  auto req = std::make_unique<OpRequestMsg>();
  req->op = OpType::kSearch;
  req->op_id = op_id;
  req->client = id();
  req->intended_bucket = target;
  req->key = key;
  Send(ctx_->allocation.Lookup(target), std::move(req));
}

// --- (A4) primary bucket recovery ------------------------------------------

void LhgCoordinatorNode::StartDataRecovery(BucketNo bucket) {
  if (recovering_data_.contains(bucket) || lost_buckets_.contains(bucket)) {
    return;
  }
  // Idempotence: never re-recover a live bucket (a second spare would
  // split-brain against the first).
  if (net()->available(ctx_->allocation.Lookup(bucket))) return;
  recovering_data_.insert(bucket);
  LHRS_LOG(Debug) << "lhg: A4 recovery of data bucket " << bucket;

  DataRecoveryTask task;
  task.id = next_task_id_++;
  task.bucket = bucket;
  if (auto it = pending_split_orders_.find(bucket);
      it != pending_split_orders_.end()) {
    task.also_bucket = it->second.new_bucket;
  }
  task.level = state_.BucketLevel(bucket);
  task.spare = CreateBucketNode(bucket, task.level);
  ctx_->allocation.Set(bucket, task.spare);

  // Step 1: scan Q1 of F2 with deterministic termination — multicast to
  // every parity bucket, all of which reply.
  const BucketNo m2 = F2BucketCount();
  task.awaiting_replies = m2;
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (BucketNo b = 0; b < m2; ++b) {
    auto req = std::make_unique<CollectForDataMsg>();
    req->task_id = task.id;
    req->bucket = bucket;
    req->file_level = state_.i;
    req->group_size = group_size_;
    req->initial_buckets = ctx_->config.initial_buckets;
    batch.emplace_back(f2_ctx_->allocation.Lookup(b), std::move(req));
  }
  const uint64_t id = task.id;
  data_tasks_.emplace(id, std::move(task));
  net()->Multicast(this->id(), std::move(batch));
}

void LhgCoordinatorNode::MaybeResolveDataTask(DataRecoveryTask& task) {
  if (task.awaiting_replies > 0 || task.installing) return;
  if (task.target_member.empty()) {
    // First time here: classify parity records and issue sibling reads.
    for (const auto& [gkey, record] : task.parity) {
      Key target = 0;
      bool has_target = false;
      for (Key c : record.members) {
        const BucketNo a = state_.Address(c);
        if (a == task.bucket || a == task.also_bucket) {
          LHRS_CHECK(!has_target) << "two group members in one bucket";
          target = c;
          has_target = true;
        }
      }
      if (!has_target) continue;  // All members moved elsewhere.
      task.target_member[gkey] = target;
      for (Key c : record.members) {
        if (c == target) continue;
        ++task.awaiting_searches;
        IssueInternalSearch(task.id, /*degraded=*/false, c);
      }
    }
  }
  if (task.awaiting_searches == 0) InstallDataTask(task);
}

void LhgCoordinatorNode::InstallDataTask(DataRecoveryTask& task) {
  task.installing = true;
  auto install = std::make_unique<InstallDataMsg>();
  install->task_id = task.id;
  install->bucket = task.bucket;
  install->level = task.level;
  // Counter recovery: the highest r among the group's relevant parity
  // records (conservative upper bound on the failed bucket's counter; a
  // skipped r value is merely an unused group, never a collision).
  uint32_t counter = 0;
  for (const auto& [gkey, record] : task.parity) {
    const GroupKey gk = GroupKey::Unpack(gkey);
    if (gk.g == task.bucket / group_size_) {
      counter = std::max(counter, gk.r);
    }
  }
  install->counter = counter;
  for (const auto& [gkey, target] : task.target_member) {
    const ParityRecordG& record = task.parity.at(gkey);
    // value(target) = parity XOR all other member values (zero-padded).
    Bytes value = record.parity;
    for (const auto& [member, member_value] : task.member_values[gkey]) {
      XorAssignPadded(value, member_value);
    }
    const int idx = record.FindMember(target);
    LHRS_CHECK_GE(idx, 0);
    const uint32_t len = record.lengths[idx];
    LHRS_CHECK_LE(len, value.size());
    for (size_t p = len; p < value.size(); ++p) {
      LHRS_CHECK_EQ(value[p], 0) << "LH*g reconstruction non-zero padding";
    }
    value.resize(len);
    install->records.push_back(TaggedRecord{gkey, target, std::move(value)});
  }
  Send(task.spare, std::move(install));
}

// --- (A5) parity bucket recovery --------------------------------------------

void LhgCoordinatorNode::StartParityRecovery(BucketNo f2_bucket) {
  if (recovering_parity_.contains(f2_bucket)) return;
  if (net()->available(f2_ctx_->allocation.Lookup(f2_bucket))) return;
  recovering_parity_.insert(f2_bucket);
  LHRS_CHECK(parity_factory_);
  LHRS_LOG(Debug) << "lhg: A5 recovery of parity bucket " << f2_bucket
                  << " (f2 state i=" << f2_coordinator_->state().i
                  << " n=" << f2_coordinator_->state().n << ")";

  ParityRecoveryTask task;
  task.id = next_task_id_++;
  task.f2_bucket = f2_bucket;
  if (auto it = pending_f2_split_orders_.find(f2_bucket);
      it != pending_f2_split_orders_.end()) {
    task.also_bucket = it->second.new_bucket;
  }
  task.level = f2_coordinator_->state().BucketLevel(f2_bucket);
  task.spare = parity_factory_(f2_bucket, task.level);
  f2_ctx_->allocation.Set(f2_bucket, task.spare);

  // Step 1: scan Q2 of F1 — every data bucket reports the records whose
  // parity record lives in the failed F2 bucket.
  const BucketNo m1 = state_.bucket_count();
  task.awaiting_replies = m1;
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (BucketNo b = 0; b < m1; ++b) {
    auto req = std::make_unique<CollectForParityMsg>();
    req->task_id = task.id;
    req->parity_bucket = f2_bucket;
    req->also_bucket = task.also_bucket;
    req->i2 = f2_coordinator_->state().i;
    req->n2 = f2_coordinator_->state().n;
    req->f2_initial_buckets = f2_ctx_->config.initial_buckets;
    batch.emplace_back(ctx_->allocation.Lookup(b), std::move(req));
  }
  const uint64_t id = task.id;
  parity_tasks_.emplace(id, std::move(task));
  net()->Multicast(this->id(), std::move(batch));
}

void LhgCoordinatorNode::InstallParityTask(ParityRecoveryTask& task) {
  task.installing = true;
  auto install = std::make_unique<InstallParityMsg>();
  install->task_id = task.id;
  install->bucket = task.f2_bucket;
  install->level = task.level;
  for (const auto& [gkey, record] : task.built) {
    install->records.push_back(
        SerializedParityRecord{gkey, record.Serialize()});
  }
  Send(task.spare, std::move(install));
}

// --- (A7) record recovery ----------------------------------------------------

void LhgCoordinatorNode::StartDegradedRead(
    const ClientOpViaCoordinatorMsg& op) {
  DegradedTask task;
  task.id = next_task_id_++;
  task.op = op;
  // Scan Q3 of F2 for the parity record containing op.key — LH*g must scan
  // because the group key of the lost record is unknown; this is the
  // O(M/k) cost LH*RS's known parity locations eliminate.
  const BucketNo m2 = F2BucketCount();
  task.awaiting_finds = m2;
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (BucketNo b = 0; b < m2; ++b) {
    auto req = std::make_unique<FindParityMsg>();
    req->task_id = task.id;
    req->key = op.key;
    batch.emplace_back(f2_ctx_->allocation.Lookup(b), std::move(req));
  }
  const uint64_t id = task.id;
  degraded_.emplace(id, std::move(task));
  net()->Multicast(this->id(), std::move(batch));
}

void LhgCoordinatorNode::FinishDegradedRead(DegradedTask& task) {
  // value(target) = parity XOR all other member values, trimmed.
  Bytes value = task.record.parity;
  for (const auto& [member, member_value] : task.member_values) {
    XorAssignPadded(value, member_value);
  }
  const int idx = task.record.FindMember(task.op.key);
  LHRS_CHECK_GE(idx, 0);
  const uint32_t len = task.record.lengths[idx];
  LHRS_CHECK_LE(len, value.size());
  value.resize(len);

  auto reply = std::make_unique<OpReplyMsg>();
  reply->op_id = task.op.op_id;
  reply->code = StatusCode::kOk;
  reply->value = std::move(value);
  Send(task.op.client, std::move(reply));
  ++degraded_reads_served_;
  degraded_.erase(task.id);
}

void LhgCoordinatorNode::FinishRecovery(BucketNo bucket) {
  recovering_data_.erase(bucket);
  ++recoveries_completed_;
  auto parked = parked_.find(bucket);
  if (parked != parked_.end()) {
    std::vector<ClientOpViaCoordinatorMsg> ops = std::move(parked->second);
    parked_.erase(parked);
    for (const auto& op : ops) DeliverViaState(op);
  }
  // Resume restructuring stalled on this bucket.
  if (auto it = pending_split_orders_.find(bucket);
      it != pending_split_orders_.end()) {
    Send(ctx_->allocation.Lookup(bucket),
         std::make_unique<SplitOrderMsg>(it->second));
    pending_split_orders_.erase(it);
  }
  if (orphaned_moves_.erase(bucket) > 0) {
    // The split's records were rebuilt into the recovered bucket straight
    // from parity (LH*g never retires group parity on splits), so the
    // split is effectively complete; release the restructuring latch that
    // the lost SplitDone would have cleared.
    AbortRestructure();
  }
  MaybeStartSplit();
}

void LhgCoordinatorNode::OnSplitOrderDeliveryFailure(
    const SplitOrderMsg& order, NodeId victim_node) {
  (void)victim_node;
  const BucketNo victim =
      order.new_bucket -
      (BucketNo{ctx_->config.initial_buckets} << (order.new_level - 1));
  pending_split_orders_[victim] = order;
  StartDataRecovery(victim);
}

void LhgCoordinatorNode::OnOrphanedMoveRecords(const MoveRecordsMsg& move) {
  // The split target died with the movers in flight — but their record
  // groups' parity is intact (LH*g splits never touch parity), so the A4
  // recovery of the new bucket rebuilds them from F2 + sibling reads; the
  // in-flight copy is redundant and dropped.
  orphaned_moves_.insert(move.bucket);
  StartDataRecovery(move.bucket);
}

void LhgCoordinatorNode::OnParitySplitVictimDown(const SplitOrderMsg& order,
                                                 BucketNo victim) {
  pending_f2_split_orders_[victim] = order;
  StartParityRecovery(victim);
}

void LhgCoordinatorNode::OnParityMoveOrphaned(BucketNo f2_target) {
  // The F2 split target died holding nothing; its content (the parity
  // records that hash to it under the advanced F2 state) rebuilds from F1.
  orphaned_f2_moves_.insert(f2_target);
  StartParityRecovery(f2_target);
}

void LhgParityCoordinatorNode::OnSplitOrderDeliveryFailure(
    const SplitOrderMsg& order, NodeId victim_node) {
  (void)victim_node;
  LHRS_CHECK(main_ != nullptr);
  const BucketNo victim =
      order.new_bucket -
      (BucketNo{ctx_->config.initial_buckets} << (order.new_level - 1));
  main_->OnParitySplitVictimDown(order, victim);
}

void LhgParityCoordinatorNode::OnOrphanedMoveRecords(
    const MoveRecordsMsg& move) {
  LHRS_CHECK(main_ != nullptr);
  main_->OnParityMoveOrphaned(move.bucket);
}

// --- Message plumbing --------------------------------------------------------

void LhgCoordinatorNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhgMsg::kCollectForDataReply: {
      const auto& reply =
          static_cast<const CollectForDataReplyMsg&>(*msg.body);
      auto it = data_tasks_.find(reply.task_id);
      if (it == data_tasks_.end()) return;
      DataRecoveryTask& task = it->second;
      for (const auto& r : reply.records) {
        task.parity.emplace(r.gkey, ParityRecordG::Deserialize(r.data));
      }
      LHRS_CHECK_GT(task.awaiting_replies, 0u);
      --task.awaiting_replies;
      MaybeResolveDataTask(task);
      return;
    }
    case LhgMsg::kCollectForParityReply: {
      const auto& reply =
          static_cast<const CollectForParityReplyMsg&>(*msg.body);
      auto it = parity_tasks_.find(reply.task_id);
      if (it == parity_tasks_.end()) return;
      ParityRecoveryTask& task = it->second;
      for (const auto& rec : reply.records) {
        auto [built, unused] = task.built.try_emplace(rec.gkey);
        built->second.AddMember(rec.key,
                                static_cast<uint32_t>(rec.value.size()));
        XorAssignPadded(built->second.parity, rec.value);
      }
      LHRS_CHECK_GT(task.awaiting_replies, 0u);
      --task.awaiting_replies;
      if (task.awaiting_replies == 0) InstallParityTask(task);
      return;
    }
    case LhgMsg::kInstallAck: {
      const auto& ack = static_cast<const InstallAckMsg&>(*msg.body);
      if (auto it = data_tasks_.find(ack.task_id); it != data_tasks_.end()) {
        const BucketNo bucket = it->second.bucket;
        data_tasks_.erase(it);
        FinishRecovery(bucket);
        return;
      }
      if (auto it = parity_tasks_.find(ack.task_id);
          it != parity_tasks_.end()) {
        const BucketNo f2_bucket = it->second.f2_bucket;
        recovering_parity_.erase(f2_bucket);
        ++recoveries_completed_;
        parity_tasks_.erase(it);
        // Resume a stalled F2 split on the recovered victim, or complete
        // one whose record move was orphaned.
        if (auto pending = pending_f2_split_orders_.find(f2_bucket);
            pending != pending_f2_split_orders_.end()) {
          Send(f2_ctx_->allocation.Lookup(f2_bucket),
               std::make_unique<SplitOrderMsg>(pending->second));
          pending_f2_split_orders_.erase(pending);
        }
        if (orphaned_f2_moves_.erase(f2_bucket) > 0) {
          // The F2 split's content was rebuilt straight from F1; release
          // the latch the lost SplitDone would have cleared.
          f2_coordinator_->AbortRestructure();
        }
        MaybeStartSplit();
        return;
      }
      return;
    }
    case LhgMsg::kFindParityReply: {
      const auto& reply = static_cast<const FindParityReplyMsg&>(*msg.body);
      auto it = degraded_.find(reply.task_id);
      if (it == degraded_.end()) return;
      DegradedTask& task = it->second;
      LHRS_CHECK_GT(task.awaiting_finds, 0u);
      --task.awaiting_finds;
      if (reply.found && !task.found) {
        task.found = true;
        task.record = ParityRecordG::Deserialize(reply.record);
        // Key searches for the other group members (A7 step 4).
        for (Key c : task.record.members) {
          if (c == task.op.key) continue;
          ++task.awaiting_searches;
          IssueInternalSearch(task.id, /*degraded=*/true, c);
        }
        if (task.awaiting_searches == 0) FinishDegradedRead(task);
        return;
      }
      if (task.awaiting_finds == 0 && !task.found) {
        // Scan unsuccessful: the key never existed (A7 step 2).
        FailClientOp(task.op, StatusCode::kNotFound, "no such key");
        degraded_.erase(task.id);
      }
      return;
    }
    case LhgMsg::kParityUpdate: {
      // A data bucket escalated a parity update whose target did not
      // answer (stale image or genuine failure). Re-deliver by the
      // authoritative F2 state; if the correct bucket is (being)
      // rebuilt, drop the delta — the A5 rebuild scans F1, which already
      // contains this change's data side.
      const auto& update = static_cast<const ParityUpdateMsg&>(*msg.body);
      const BucketNo target = f2_coordinator_->state().Address(update.gkey);
      if (recovering_parity_.contains(target)) return;
      const NodeId node = f2_ctx_->allocation.Lookup(target);
      if (!net()->available(node)) {
        if (auto_recover_) StartParityRecovery(target);
        return;  // The rebuild covers this change.
      }
      auto fwd = std::make_unique<ParityUpdateMsg>(update);
      fwd->intended_bucket = target;
      fwd->hops = update.hops + 1;  // The parity bucket IAMs the sender.
      Send(node, std::move(fwd));
      return;
    }
    case LhStarMsg::kOpReply: {
      // Internal search result.
      const auto& reply = static_cast<const OpReplyMsg&>(*msg.body);
      auto it = internal_searches_.find(reply.op_id);
      if (it == internal_searches_.end()) return;
      const InternalSearch search = it->second;
      internal_searches_.erase(it);
      LHRS_CHECK(reply.code == StatusCode::kOk)
          << "group member vanished during recovery: "
          << StatusCodeName(reply.code);
      if (search.degraded) {
        auto task = degraded_.find(search.task_id);
        if (task == degraded_.end()) return;
        task->second.member_values[search.key] = reply.value;
        LHRS_CHECK_GT(task->second.awaiting_searches, 0u);
        if (--task->second.awaiting_searches == 0) {
          FinishDegradedRead(task->second);
        }
      } else {
        auto task = data_tasks_.find(search.task_id);
        if (task == data_tasks_.end()) return;
        DataRecoveryTask& t = task->second;
        for (auto& [gkey, target] : t.target_member) {
          const ParityRecordG& record = t.parity.at(gkey);
          if (record.HasMember(search.key) && search.key != target) {
            t.member_values[gkey][search.key] = reply.value;
          }
        }
        LHRS_CHECK_GT(t.awaiting_searches, 0u);
        if (--t.awaiting_searches == 0) InstallDataTask(t);
      }
      return;
    }
    default:
      CoordinatorNode::HandleSubclassMessage(msg);
  }
}

void LhgCoordinatorNode::HandleSubclassDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhgMsg::kCollectForData:
    case LhgMsg::kFindParity: {
      // An F2 bucket is also down: recover it first; the blocked task
      // aborts (scans with deterministic termination terminate abnormally
      // on unavailability, section 2.7).
      LHRS_LOG(Warning) << "LH*g: parity bucket down during recovery scan";
      return;
    }
    case LhgMsg::kCollectForParity:
    case LhgMsg::kInstallParity:
    case LhgMsg::kInstallData:
      LHRS_LOG(Warning) << "LH*g: node died mid-recovery; task stalls";
      return;
    default:
      CoordinatorNode::HandleSubclassDeliveryFailure(msg);
  }
}

}  // namespace lhrs::lhg
