#include "baselines/lhg/lhg_parity_bucket.h"

#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs::lhg {

namespace {

std::unique_ptr<MessageBody> CloneBody(const MessageBody& body) {
  switch (body.kind()) {
    case LhgMsg::kParityUpdate:
      return std::make_unique<ParityUpdateMsg>(
          static_cast<const ParityUpdateMsg&>(body));
    case LhgMsg::kCollectForData:
      return std::make_unique<CollectForDataMsg>(
          static_cast<const CollectForDataMsg&>(body));
    case LhgMsg::kFindParity:
      return std::make_unique<FindParityMsg>(
          static_cast<const FindParityMsg&>(body));
    default:
      LHRS_LOG(Fatal) << "lhg parity bucket cannot defer message kind "
                      << body.kind();
      return nullptr;
  }
}

}  // namespace

LhgParityBucketNode::LhgParityBucketNode(
    std::shared_ptr<SystemContext> f2_ctx, BucketNo bucket_no, Level level,
    bool pre_initialized)
    : DataBucketNode(std::move(f2_ctx), bucket_no, level, pre_initialized),
      lhg_initialized_(pre_initialized) {}

std::vector<std::pair<GroupKey, ParityRecordG>>
LhgParityBucketNode::DecodedRecords() const {
  std::vector<std::pair<GroupKey, ParityRecordG>> out;
  out.reserve(records_.size());
  records_.ForEachOrdered([&](Key key, const BufferView& value) {
    out.emplace_back(GroupKey::Unpack(key), ParityRecordG::Deserialize(value));
  });
  return out;
}

void LhgParityBucketNode::HandleSubclassMessage(const Message& msg) {
  const int kind = msg.body->kind();
  if (!lhg_initialized_ && kind != LhgMsg::kInstallParity) {
    auto deferred = std::make_shared<Message>();
    deferred->from = msg.from;
    deferred->to = msg.to;
    deferred->body = CloneBody(*msg.body);
    deferred_.push_back(std::move(deferred));
    return;
  }
  switch (kind) {
    case LhgMsg::kParityUpdate:
      ApplyParityUpdate(static_cast<const ParityUpdateMsg&>(*msg.body));
      return;
    case LhgMsg::kCollectForData:
      HandleCollectForData(static_cast<const CollectForDataMsg&>(*msg.body),
                           msg.from);
      return;
    case LhgMsg::kFindParity:
      HandleFindParity(static_cast<const FindParityMsg&>(*msg.body),
                       msg.from);
      return;
    case LhgMsg::kInstallParity:
      HandleInstall(static_cast<const InstallParityMsg&>(*msg.body),
                    msg.from);
      return;
    default:
      DataBucketNode::HandleSubclassMessage(msg);
  }
}

void LhgParityBucketNode::ApplyParityUpdate(const ParityUpdateMsg& update) {
  // The F1 data bucket addressed us via its possibly-stale image of F2:
  // verify with (A2) on the packed group key and forward if wrong.
  const BucketNo target = ForwardAddress(bucket_no(), level(), update.gkey,
                                         ctx().config.initial_buckets);
  if (target != bucket_no()) {
    auto fwd = std::make_unique<ParityUpdateMsg>(update);
    fwd->intended_bucket = target;
    fwd->hops = update.hops + 1;
    LHRS_CHECK_LE(fwd->hops, 3);
    Send(ctx().allocation.Lookup(target), std::move(fwd));
    return;
  }

  const BufferView* existing = records_.Find(update.gkey);
  ParityRecordG record;
  if (existing != nullptr) record = ParityRecordG::Deserialize(*existing);

  switch (update.op) {
    case ParityUpdateMsg::Op::kAddMember:
      record.AddMember(update.member, update.new_length);
      break;
    case ParityUpdateMsg::Op::kRemoveMember:
      record.RemoveMember(update.member);
      break;
    case ParityUpdateMsg::Op::kValueUpdate:
      record.SetLength(update.member, update.new_length);
      break;
  }
  XorAssignPadded(record.parity, update.delta);

  if (record.members.empty()) {
    // Empty group: its parity must have cancelled to zero.
    LHRS_CHECK(AllZero(record.parity))
        << "non-zero parity for empty LH*g record group";
    if (existing != nullptr) records_.Erase(update.gkey);
  } else {
    const bool fresh = (existing == nullptr);
    records_.Put(update.gkey, record.Serialize());
    if (fresh) ReportOverflowIfNeeded();
  }

  if (update.hops > 0) {
    // IAM to the F1 bucket acting as F2 client.
    auto iam = std::make_unique<ParityIamMsg>();
    iam->bucket = bucket_no();
    iam->level = level();
    Send(update.reply_to, std::move(iam));
  }
}

void LhgParityBucketNode::HandleCollectForData(const CollectForDataMsg& req,
                                               NodeId from) {
  auto reply = std::make_unique<CollectForDataReplyMsg>();
  reply->task_id = req.task_id;
  reply->from_bucket = bucket_no();
  records_.ForEachOrdered([&](Key gkey, const BufferView& serialized) {
    // No group-number filter here: splits move records *out of* their
    // origin group's buckets, so the failed bucket holds records with
    // foreign group numbers. (The g = m/k filter in A4's step 2 serves
    // only the insert-counter recovery, applied coordinator-side.)
    const ParityRecordG record = ParityRecordG::Deserialize(serialized);
    // Relevant iff some member's address chain passes through the failed
    // bucket: exists l <= i+1 with h_l(c) = bucket (A4 steps 2-3).
    bool relevant = false;
    for (Key c : record.members) {
      for (Level l = 0; l <= req.file_level + 1 && !relevant; ++l) {
        relevant = HashL(c, l, req.initial_buckets) == req.bucket;
      }
      if (relevant) break;
    }
    if (relevant) {
      reply->records.push_back(SerializedParityRecord{gkey, serialized});
    }
  });
  Send(from, std::move(reply));
}

void LhgParityBucketNode::HandleFindParity(const FindParityMsg& req,
                                           NodeId from) {
  auto reply = std::make_unique<FindParityReplyMsg>();
  reply->task_id = req.task_id;
  reply->from_bucket = bucket_no();
  records_.ForEachOrdered([&](Key gkey, const BufferView& serialized) {
    if (reply->found) return;
    const ParityRecordG record = ParityRecordG::Deserialize(serialized);
    if (record.HasMember(req.key)) {
      reply->found = true;
      reply->gkey = gkey;
      reply->record = serialized;
    }
  });
  Send(from, std::move(reply));
}

void LhgParityBucketNode::HandleInstall(const InstallParityMsg& install,
                                        NodeId from) {
  LHRS_CHECK_EQ(install.bucket, bucket_no());
  store::BucketStore records;
  for (const auto& r : install.records) records.Put(r.gkey, r.data);
  InstallRecoveredState(std::move(records), install.level);  // -> OnActivated.
  auto ack = std::make_unique<InstallAckMsg>();
  ack->task_id = install.task_id;
  Send(from, std::move(ack));
}

void LhgParityBucketNode::OnActivated() {
  lhg_initialized_ = true;
  std::vector<std::shared_ptr<Message>> deferred = std::move(deferred_);
  deferred_.clear();
  for (const auto& m : deferred) HandleSubclassMessage(*m);
}

}  // namespace lhrs::lhg
