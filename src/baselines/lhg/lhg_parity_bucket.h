#ifndef LHRS_BASELINES_LHG_LHG_PARITY_BUCKET_H_
#define LHRS_BASELINES_LHG_LHG_PARITY_BUCKET_H_

#include <memory>
#include <vector>

#include "baselines/lhg/lhg_messages.h"
#include "lhstar/data_bucket.h"

namespace lhrs::lhg {

/// A bucket of the LH*g parity file F2: a plain LH* bucket whose records
/// are serialized ParityRecordG values keyed by the packed group key, plus
/// the XOR-maintenance protocol. Because it *is* an LH* bucket, F2 scales
/// by ordinary splits and parity records move with zero special handling —
/// exactly the paper's construction.
class LhgParityBucketNode : public DataBucketNode {
 public:
  LhgParityBucketNode(std::shared_ptr<SystemContext> f2_ctx,
                      BucketNo bucket_no, Level level, bool pre_initialized);

  const char* role() const override { return "lhg-parity-bucket"; }

  /// Decoded view of all parity records (tests / verification).
  std::vector<std::pair<GroupKey, ParityRecordG>> DecodedRecords() const;

 protected:
  void HandleSubclassMessage(const Message& msg) override;
  void OnActivated() override;

 private:
  void ApplyParityUpdate(const ParityUpdateMsg& update);
  void HandleCollectForData(const CollectForDataMsg& req, NodeId from);
  void HandleFindParity(const FindParityMsg& req, NodeId from);
  void HandleInstall(const InstallParityMsg& install, NodeId from);

  bool lhg_initialized_;
  std::vector<std::shared_ptr<Message>> deferred_;
};

}  // namespace lhrs::lhg

#endif  // LHRS_BASELINES_LHG_LHG_PARITY_BUCKET_H_
