#include "baselines/lhg/lhg_messages.h"

#include <span>

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "net/stats.h"

namespace lhrs::lhg {

Bytes ParityRecordG::Serialize() const {
  LHRS_CHECK_EQ(members.size(), lengths.size());
  Bytes out;
  out.reserve(8 + members.size() * 12 + parity.size());
  auto put_u32 = [&out](uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto put_u64 = [&out](uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  put_u32(static_cast<uint32_t>(members.size()));
  for (size_t i = 0; i < members.size(); ++i) {
    put_u64(members[i]);
    put_u32(lengths[i]);
  }
  put_u32(static_cast<uint32_t>(parity.size()));
  out.insert(out.end(), parity.begin(), parity.end());
  return out;
}

ParityRecordG ParityRecordG::Deserialize(std::span<const uint8_t> data) {
  ParityRecordG out;
  size_t pos = 0;
  auto get_u32 = [&data, &pos] {
    LHRS_CHECK_LE(pos + 4, data.size());
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{data[pos++]} << (8 * i);
    return v;
  };
  auto get_u64 = [&data, &pos] {
    LHRS_CHECK_LE(pos + 8, data.size());
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{data[pos++]} << (8 * i);
    return v;
  };
  const uint32_t count = get_u32();
  out.members.reserve(count);
  out.lengths.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out.members.push_back(get_u64());
    out.lengths.push_back(get_u32());
  }
  const uint32_t parity_len = get_u32();
  LHRS_CHECK_LE(pos + parity_len, data.size());
  out.parity.assign(data.begin() + pos, data.begin() + pos + parity_len);
  return out;
}

int ParityRecordG::FindMember(Key c) const {
  auto it = std::find(members.begin(), members.end(), c);
  return it == members.end() ? -1 : static_cast<int>(it - members.begin());
}

void ParityRecordG::AddMember(Key c, uint32_t length) {
  LHRS_CHECK(!HasMember(c));
  members.push_back(c);
  lengths.push_back(length);
}

void ParityRecordG::RemoveMember(Key c) {
  const int i = FindMember(c);
  LHRS_CHECK_GE(i, 0);
  members.erase(members.begin() + i);
  lengths.erase(lengths.begin() + i);
}

void ParityRecordG::SetLength(Key c, uint32_t length) {
  const int i = FindMember(c);
  LHRS_CHECK_GE(i, 0);
  lengths[i] = length;
}

void RegisterLhgMessageNames() {
  RegisterMessageKindName(LhgMsg::kParityUpdate, "lhg.ParityUpdate");
  RegisterMessageKindName(LhgMsg::kParityIam, "lhg.ParityIam");
  RegisterMessageKindName(LhgMsg::kCollectForData, "lhg.CollectForData");
  RegisterMessageKindName(LhgMsg::kCollectForDataReply,
                          "lhg.CollectForDataReply");
  RegisterMessageKindName(LhgMsg::kCollectForParity, "lhg.CollectForParity");
  RegisterMessageKindName(LhgMsg::kCollectForParityReply,
                          "lhg.CollectForParityReply");
  RegisterMessageKindName(LhgMsg::kInstallParity, "lhg.InstallParity");
  RegisterMessageKindName(LhgMsg::kInstallData, "lhg.InstallData");
  RegisterMessageKindName(LhgMsg::kInstallAck, "lhg.InstallAck");
  RegisterMessageKindName(LhgMsg::kFindParity, "lhg.FindParity");
  RegisterMessageKindName(LhgMsg::kFindParityReply, "lhg.FindParityReply");
}

}  // namespace lhrs::lhg
