#ifndef LHRS_BASELINES_LHG_LHG_COORDINATOR_H_
#define LHRS_BASELINES_LHG_LHG_COORDINATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baselines/lhg/lhg_messages.h"
#include "lhstar/coordinator.h"

namespace lhrs::lhg {

/// The LH*g coordinator. Per the paper, a single coordinator manages the
/// file state of both the primary file F1 and the parity file F2; here the
/// F2 split bookkeeping lives in a plain CoordinatorNode whose state this
/// class reads directly (same node in spirit), while all recovery logic —
/// (A4) primary-bucket recovery, (A5) parity-bucket recovery and (A7)
/// degraded-mode record recovery — is orchestrated here.
class LhgCoordinatorNode : public CoordinatorNode {
 public:
  using ParityFactory = std::function<NodeId(BucketNo bucket, Level level)>;

  LhgCoordinatorNode(std::shared_ptr<SystemContext> f1_ctx,
                     std::shared_ptr<SystemContext> f2_ctx,
                     uint32_t group_size);

  /// When false, failures only trigger degraded-mode record recovery (A7);
  /// bucket rebuilds (A4/A5) run solely via the explicit Recover* calls.
  void set_auto_recover(bool on) { auto_recover_ = on; }

  void SetParityCoordinator(CoordinatorNode* f2_coordinator) {
    f2_coordinator_ = f2_coordinator;
  }
  void SetParityFactory(ParityFactory factory) {
    parity_factory_ = std::move(factory);
  }

  /// External failure notifications (facade / operator).
  void RecoverDataBucket(BucketNo bucket);
  void RecoverParityBucket(BucketNo f2_bucket);

  /// Escalations from the parity file's split coordinator: an F2
  /// restructuring participant was down. Recovers it and resumes (or
  /// completes) the F2 split.
  void OnParitySplitVictimDown(const SplitOrderMsg& order, BucketNo victim);
  void OnParityMoveOrphaned(BucketNo f2_target);

  uint64_t recoveries_completed() const { return recoveries_completed_; }
  uint64_t degraded_reads_served() const { return degraded_reads_served_; }

 protected:
  void HandleUnavailableReport(const UnavailableReportMsg& report) override;
  void HandleClientOpFallback(const ClientOpViaCoordinatorMsg& op) override;
  void OnOpDeliveryFailure(const OpRequestMsg& request) override;
  void HandleSubclassMessage(const Message& msg) override;
  void HandleSubclassDeliveryFailure(const Message& msg) override;
  void OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                   NodeId victim_node) override;
  void OnOrphanedMoveRecords(const MoveRecordsMsg& move) override;
  bool CanSplitNow() const override {
    return data_tasks_.empty() && parity_tasks_.empty();
  }

 private:
  /// (A4): rebuild one F1 bucket from the parity file + sibling reads.
  struct DataRecoveryTask {
    uint64_t id = 0;
    BucketNo bucket = 0;
    /// When the victim died between a split order and its execution, the
    /// records bound for the (still uninitialised) split target also
    /// belong in the rebuilt victim; classification must accept both
    /// addresses. kInvalidBucket otherwise.
    BucketNo also_bucket = ~BucketNo{0};
    NodeId spare = kInvalidNode;
    Level level = 0;
    size_t awaiting_replies = 0;
    std::map<uint64_t, ParityRecordG> parity;      // gkey -> record.
    std::map<uint64_t, Key> target_member;          // gkey -> key in bucket.
    std::map<uint64_t, std::map<Key, BufferView>> member_values;  // by gkey.
    size_t awaiting_searches = 0;
    bool installing = false;
  };

  /// (A5): rebuild one F2 bucket from a scan of F1.
  struct ParityRecoveryTask {
    uint64_t id = 0;
    BucketNo f2_bucket = 0;
    BucketNo also_bucket = ~BucketNo{0};  ///< Pending-F2-split target.
    NodeId spare = kInvalidNode;
    Level level = 0;
    size_t awaiting_replies = 0;
    std::map<uint64_t, ParityRecordG> built;  // gkey -> rebuilt record.
    bool installing = false;
  };

  /// (A7): serve one search against an unavailable bucket.
  struct DegradedTask {
    uint64_t id = 0;
    ClientOpViaCoordinatorMsg op;
    size_t awaiting_finds = 0;
    bool found = false;
    ParityRecordG record;
    std::map<Key, BufferView> member_values;
    size_t awaiting_searches = 0;
  };

  BucketNo F2BucketCount() const;
  /// Issues an internal key search in F1 (coordinator acting as client);
  /// the reply routes back through `search_owner_`.
  void IssueInternalSearch(uint64_t task_id, bool degraded, Key key);
  void StartDataRecovery(BucketNo bucket);
  void MaybeResolveDataTask(DataRecoveryTask& task);
  void InstallDataTask(DataRecoveryTask& task);
  void StartParityRecovery(BucketNo f2_bucket);
  void InstallParityTask(ParityRecoveryTask& task);
  void StartDegradedRead(const ClientOpViaCoordinatorMsg& op);
  void FinishDegradedRead(DegradedTask& task);
  void ParkOp(const ClientOpViaCoordinatorMsg& op);
  void FinishRecovery(BucketNo bucket);
  /// Declares `bucket` unrecoverable: fails its parked ops, stands its
  /// half-built spare down (which bounces queued ops back here).
  void MarkBucketLost(BucketNo bucket);
  /// Resolves a failed internal search against its owning task.
  void FailInternalSearch(uint64_t op_id);

  std::shared_ptr<SystemContext> f2_ctx_;
  uint32_t group_size_;
  CoordinatorNode* f2_coordinator_ = nullptr;
  ParityFactory parity_factory_;
  bool auto_recover_ = true;

  uint64_t next_task_id_ = 1;
  std::map<uint64_t, DataRecoveryTask> data_tasks_;
  std::map<uint64_t, ParityRecoveryTask> parity_tasks_;
  std::map<uint64_t, DegradedTask> degraded_;
  std::set<BucketNo> recovering_data_;
  std::set<BucketNo> recovering_parity_;
  std::set<BucketNo> lost_buckets_;  ///< Unrecoverable (>1 group failure).
  std::map<BucketNo, SplitOrderMsg> pending_split_orders_;
  std::set<BucketNo> orphaned_moves_;  ///< Split targets rebuilt via A4.
  std::map<BucketNo, SplitOrderMsg> pending_f2_split_orders_;
  std::set<BucketNo> orphaned_f2_moves_;  ///< F2 targets rebuilt via A5.
  std::map<BucketNo, std::vector<ClientOpViaCoordinatorMsg>> parked_;

  uint64_t next_internal_op_ = 1;
  struct InternalSearch {
    uint64_t task_id = 0;
    bool degraded = false;
    Key key = 0;
  };
  std::map<uint64_t, InternalSearch> internal_searches_;

  uint64_t recoveries_completed_ = 0;
  uint64_t degraded_reads_served_ = 0;
};

/// Split coordinator of the LH*g parity file F2. Splits/merges run exactly
/// as in plain LH*; failures of F2 restructuring participants are
/// escalated to the main LH*g coordinator, which owns the recovery
/// machinery (the paper's single-coordinator model).
class LhgParityCoordinatorNode : public CoordinatorNode {
 public:
  explicit LhgParityCoordinatorNode(std::shared_ptr<SystemContext> f2_ctx)
      : CoordinatorNode(std::move(f2_ctx)) {}

  void SetMainCoordinator(LhgCoordinatorNode* main) { main_ = main; }
  const char* role() const override { return "lhg-parity-coordinator"; }

 protected:
  void OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                   NodeId victim_node) override;
  void OnOrphanedMoveRecords(const MoveRecordsMsg& move) override;

 private:
  LhgCoordinatorNode* main_ = nullptr;
};

}  // namespace lhrs::lhg

#endif  // LHRS_BASELINES_LHG_LHG_COORDINATOR_H_
