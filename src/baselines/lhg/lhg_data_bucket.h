#ifndef LHRS_BASELINES_LHG_LHG_DATA_BUCKET_H_
#define LHRS_BASELINES_LHG_LHG_DATA_BUCKET_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/lhg/lhg_messages.h"
#include "lhstar/data_bucket.h"

namespace lhrs::lhg {

/// A bucket of the LH*g primary file F1: an LH* bucket that additionally
/// assigns record-group keys (g, r) at insert time — g from its own bucket
/// group, r from its monotone insert counter — and maintains the XOR
/// parity file F2, acting as an LH* *client* of F2 (own image of F2's
/// state, corrected by IAMs).
///
/// The defining property implemented here: splits move records with their
/// group keys unchanged and touch no parity record (OnRecordsMovedOut is
/// parity-silent), unlike LH*RS where a split pays O(b) parity deltas.
class LhgDataBucketNode : public DataBucketNode {
 public:
  /// `reassign_on_split` selects the LH*g1 variant (paper section 4.4):
  /// records moved by a split receive *new* group keys in the new bucket's
  /// bucket group (old group membership retired, new one registered — ~2
  /// extra parity messages per mover). The payoff is group locality: every
  /// record's group number always equals its current bucket's group, so
  /// any multi-bucket failure across *different* groups stays recoverable
  /// and bucket recovery can bulk-read exactly k-1 sibling buckets.
  LhgDataBucketNode(std::shared_ptr<SystemContext> f1_ctx,
                    std::shared_ptr<SystemContext> f2_ctx,
                    uint32_t group_size, BucketNo bucket_no, Level level,
                    bool pre_initialized, bool reassign_on_split);

  const char* role() const override { return "lhg-data-bucket"; }

  uint32_t bucket_group() const { return bucket_no() / group_size_; }
  uint32_t insert_counter() const { return counter_; }
  GroupKey group_key_of(Key key) const;

 protected:
  void OnInsertCommitted(Key key, const BufferView& value) override;
  void OnUpdateCommitted(Key key, const BufferView& old_value,
                         const BufferView& new_value) override;
  void OnDeleteCommitted(Key key, const BufferView& old_value) override;
  void OnRecordsMovedOut(std::vector<WireRecord>& moved) override;
  void OnRecordsMovedIn(const std::vector<WireRecord>& moved) override;
  void OnDecommissioned() override;
  void HandleSubclassMessage(const Message& msg) override;
  void HandleSubclassDeliveryFailure(const Message& msg) override;

 private:
  void SendParityUpdate(GroupKey gk, ParityUpdateMsg::Op op, Key member,
                        uint32_t new_length, BufferView delta);
  void HandleCollectForParity(const CollectForParityMsg& req, NodeId from);
  void HandleInstallData(const InstallDataMsg& install, NodeId from);

  std::shared_ptr<SystemContext> f2_ctx_;
  uint32_t group_size_;
  bool reassign_on_split_;  ///< LH*g1 variant.
  uint32_t counter_ = 0;  ///< The paper's r; never reused (basic scheme).
  ClientImage f2_image_;
  std::unordered_map<Key, uint64_t> group_keys_;  ///< key -> packed (g,r).
};

}  // namespace lhrs::lhg

#endif  // LHRS_BASELINES_LHG_LHG_DATA_BUCKET_H_
