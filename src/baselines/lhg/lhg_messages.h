#ifndef LHRS_BASELINES_LHG_LHG_MESSAGES_H_
#define LHRS_BASELINES_LHG_LHG_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "lh/lh_math.h"
#include "lhstar/messages.h"
#include "net/message.h"

namespace lhrs::lhg {

/// The LH*g record-group key (g, r): bucket-group number of the bucket the
/// record was inserted into, plus that bucket's insert-counter value. Never
/// changes once assigned, even as splits move the record (the defining
/// property of LH*g).
struct GroupKey {
  uint32_t g = 0;
  uint32_t r = 0;

  /// Packed form used as the LH* key of the parity record in file F2 and
  /// as the WireRecord tag on record moves. The (g, r) pair occupies
  /// (high, low) halves, so parity records hash mostly by r, matching the
  /// paper's Fig. 2 where an F2 split separates odd from even r.
  uint64_t Packed() const { return (uint64_t{g} << 32) | r; }
  static GroupKey Unpack(uint64_t packed) {
    return GroupKey{static_cast<uint32_t>(packed >> 32),
                    static_cast<uint32_t>(packed)};
  }
  bool operator==(const GroupKey&) const = default;
};

/// A parity record of file F2 as a value object: the member keys c_1..c_l
/// (with their value lengths) and the XOR parity bits of the members'
/// values. Stored serialized in the parity buckets (which are plain LH*
/// buckets), so F2 splits move parity records with zero special handling.
///
/// Deviation note: the paper's bit-string model pads shorter values with
/// zeros and assumes self-delimiting data; we store each member's value
/// length so recovery reproduces values byte-exactly.
struct ParityRecordG {
  std::vector<Key> members;
  std::vector<uint32_t> lengths;  ///< Parallel to `members`.
  Bytes parity;

  Bytes Serialize() const;
  static ParityRecordG Deserialize(std::span<const uint8_t> data);
  /// Index of member `c`, or -1.
  int FindMember(Key c) const;
  bool HasMember(Key c) const { return FindMember(c) >= 0; }
  void AddMember(Key c, uint32_t length);
  void RemoveMember(Key c);
  void SetLength(Key c, uint32_t length);
};

/// Message kinds of the LH*g baseline (range [300, 400)).
struct LhgMsg {
  static constexpr int kParityUpdate = MessageKindRange::kLhgBase + 0;
  static constexpr int kParityIam = MessageKindRange::kLhgBase + 1;
  static constexpr int kCollectForData = MessageKindRange::kLhgBase + 2;
  static constexpr int kCollectForDataReply = MessageKindRange::kLhgBase + 3;
  static constexpr int kCollectForParity = MessageKindRange::kLhgBase + 4;
  static constexpr int kCollectForParityReply =
      MessageKindRange::kLhgBase + 5;
  static constexpr int kInstallParity = MessageKindRange::kLhgBase + 6;
  static constexpr int kInstallData = MessageKindRange::kLhgBase + 7;
  static constexpr int kInstallAck = MessageKindRange::kLhgBase + 8;
  static constexpr int kFindParity = MessageKindRange::kLhgBase + 9;
  static constexpr int kFindParityReply = MessageKindRange::kLhgBase + 10;
};

void RegisterLhgMessageNames();

/// F1 data bucket (acting as an LH* client of F2) -> F2 parity bucket:
/// maintain parity record `gkey`. Forwarded between parity buckets per A2.
struct ParityUpdateMsg : MessageBody {
  uint64_t gkey = 0;
  enum class Op : uint8_t { kAddMember, kRemoveMember, kValueUpdate };
  Op op = Op::kAddMember;
  Key member = 0;
  uint32_t new_length = 0;  ///< Value length after the change.
  BufferView delta;  ///< XORed into the parity bits (zero-padded).
  NodeId reply_to = kInvalidNode;  ///< The F1 bucket, for IAMs.
  BucketNo intended_bucket = 0;
  int hops = 0;

  int kind() const override { return LhgMsg::kParityUpdate; }
  size_t ByteSize() const override { return 40 + delta.size(); }
};

/// F2 parity bucket -> F1 data bucket: image adjustment for the data
/// bucket's client image of F2 (sent when a parity update was forwarded).
struct ParityIamMsg : MessageBody {
  BucketNo bucket = 0;
  Level level = 0;

  int kind() const override { return LhgMsg::kParityIam; }
  size_t ByteSize() const override { return 12; }
};

/// Coordinator -> every F2 bucket (A4 step 1): send the parity records
/// relevant to recovering F1 bucket `bucket`, i.e. records with bucket
/// group g = bucket / k containing some member whose address chain passes
/// through `bucket` under file level `file_level`.
struct CollectForDataMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level file_level = 0;
  uint32_t group_size = 0;      ///< k (bucket-group size).
  uint32_t initial_buckets = 0;  ///< N of F1.

  int kind() const override { return LhgMsg::kCollectForData; }
  size_t ByteSize() const override { return 24; }
};

struct SerializedParityRecord {
  uint64_t gkey = 0;
  BufferView data;  ///< ParityRecordG::Serialize form.

  /// gkey + length prefix + payload, matching the transport codec.
  size_t ByteSize() const { return 12 + data.size(); }
};

struct CollectForDataReplyMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo from_bucket = 0;
  std::vector<SerializedParityRecord> records;

  int kind() const override { return LhgMsg::kCollectForDataReply; }
  size_t ByteSize() const override {
    size_t n = 16;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Coordinator -> every F1 bucket (A5 step 1): send the (group key, key,
/// value) triples of your records whose parity record lives in F2 bucket
/// `parity_bucket` under F2 state (i2, n2). When the failed parity bucket
/// died between an F2 split order and its execution, `also_bucket` names
/// the (still empty) split target whose records also belong in the
/// rebuilt victim.
struct CollectForParityMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo parity_bucket = 0;
  BucketNo also_bucket = ~BucketNo{0};
  Level i2 = 0;
  BucketNo n2 = 0;
  uint32_t f2_initial_buckets = 1;

  int kind() const override { return LhgMsg::kCollectForParity; }
  size_t ByteSize() const override { return 32; }
};

struct TaggedRecord {
  uint64_t gkey = 0;
  Key key = 0;
  BufferView value;

  /// gkey + key + length prefix + payload, matching the transport codec.
  size_t ByteSize() const { return 20 + value.size(); }
};

struct CollectForParityReplyMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo from_bucket = 0;
  std::vector<TaggedRecord> records;

  int kind() const override { return LhgMsg::kCollectForParityReply; }
  size_t ByteSize() const override {
    size_t n = 16;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Coordinator -> spare: install a rebuilt F2 parity bucket.
struct InstallParityMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  std::vector<SerializedParityRecord> records;

  int kind() const override { return LhgMsg::kInstallParity; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Coordinator -> spare: install a rebuilt F1 data bucket (records carry
/// their immutable group keys; `counter` restores the insert counter r).
struct InstallDataMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  uint32_t counter = 0;
  std::vector<TaggedRecord> records;

  int kind() const override { return LhgMsg::kInstallData; }
  size_t ByteSize() const override {
    size_t n = 28;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct InstallAckMsg : MessageBody {
  uint64_t task_id = 0;

  int kind() const override { return LhgMsg::kInstallAck; }
  size_t ByteSize() const override { return 8; }
};

/// Coordinator -> every F2 bucket (A7 step 1): does any of your parity
/// records contain member key `key`?
struct FindParityMsg : MessageBody {
  uint64_t task_id = 0;
  Key key = 0;

  int kind() const override { return LhgMsg::kFindParity; }
  size_t ByteSize() const override { return 16; }
};

struct FindParityReplyMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo from_bucket = 0;
  bool found = false;
  uint64_t gkey = 0;
  BufferView record;  ///< Serialized ParityRecordG when found.

  int kind() const override { return LhgMsg::kFindParityReply; }
  size_t ByteSize() const override { return 28 + record.size(); }
};

}  // namespace lhrs::lhg

#endif  // LHRS_BASELINES_LHG_LHG_MESSAGES_H_
