#ifndef LHRS_BASELINES_LHS_LHS_FILE_H_
#define LHRS_BASELINES_LHS_LHS_FILE_H_

#include <memory>
#include <vector>

#include "lhstar/client.h"
#include "lhstar/coordinator.h"
#include "lhstar/data_bucket.h"
#include "lhstar/lhstar_file.h"
#include "net/network.h"

namespace lhrs::lhs {

/// Message kinds of the LH*s baseline (range [500, 600)).
struct LhsMsg {
  static constexpr int kStripeRead = MessageKindRange::kLhsBase + 0;
  static constexpr int kStripeReadReply = MessageKindRange::kLhsBase + 1;
  static constexpr int kStripeInstall = MessageKindRange::kLhsBase + 2;
  static constexpr int kStripeAck = MessageKindRange::kLhsBase + 3;
};

/// Coordinator -> same-numbered bucket of another stripe file: dump your
/// records (for XOR reconstruction of a lost stripe bucket).
struct StripeReadMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;

  int kind() const override { return LhsMsg::kStripeRead; }
  size_t ByteSize() const override { return 16; }
};

struct StripeReadReplyMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t file_index = 0;
  Level level = 0;
  /// Set when the asked server no longer carries the bucket (it stood
  /// down after its own failed rebuild): the reconstruction cannot finish.
  bool failed = false;
  std::vector<WireRecord> records;

  int kind() const override { return LhsMsg::kStripeReadReply; }
  size_t ByteSize() const override {
    size_t n = 24;  // task + file index + level + failed flag + count.
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct StripeInstallMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhsMsg::kStripeInstall; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

struct StripeAckMsg : MessageBody {
  uint64_t task_id = 0;

  int kind() const override { return LhsMsg::kStripeAck; }
  size_t ByteSize() const override { return 8; }
};

/// A bucket of one LH*s stripe file: a plain LH* bucket plus the stripe
/// dump/install protocol for recovery.
class LhsBucketNode : public DataBucketNode {
 public:
  using DataBucketNode::DataBucketNode;
  const char* role() const override { return "lhs-bucket"; }

 protected:
  void HandleSubclassMessage(const Message& msg) override;
};

/// Coordinator of one LH*s stripe file. Recovers a dead bucket by reading
/// the same-numbered buckets of every other stripe file (identical key
/// placement across files) and XOR-reconstructing each stripe; ops that
/// hit the dead bucket park until the rebuild completes.
class LhsCoordinatorNode : public CoordinatorNode {
 public:
  explicit LhsCoordinatorNode(std::shared_ptr<SystemContext> ctx,
                              uint32_t file_index, uint32_t stripe_count)
      : CoordinatorNode(std::move(ctx)),
        file_index_(file_index),
        stripe_count_(stripe_count) {}

  /// Wires the contexts of all k+1 stripe files (index == position).
  void SetFleet(std::vector<std::shared_ptr<SystemContext>> fleet) {
    fleet_ = std::move(fleet);
  }

  void RecoverBucket(BucketNo bucket);
  uint64_t recoveries_completed() const { return recoveries_completed_; }

 protected:
  void HandleClientOpFallback(const ClientOpViaCoordinatorMsg& op) override;
  void OnOpDeliveryFailure(const OpRequestMsg& request) override;
  void HandleSubclassMessage(const Message& msg) override;
  void HandleSubclassDeliveryFailure(const Message& msg) override;
  bool CanSplitNow() const override { return tasks_.empty(); }

 private:
  struct RebuildTask {
    uint64_t id = 0;
    BucketNo bucket = 0;
    NodeId spare = kInvalidNode;
    Level level = 0;
    size_t awaiting = 0;
    /// key -> XOR of the sibling stripes seen so far.
    std::map<Key, BufferView> accumulator;
  };

  uint32_t file_index_;
  uint32_t stripe_count_;
  std::vector<std::shared_ptr<SystemContext>> fleet_;
  /// Fails the rebuild: the op parkers get kDataLoss and the bucket is
  /// marked lost (two stripe-column failures exceed 1-availability).
  void MarkLost(RebuildTask& task);

  uint64_t next_task_id_ = 1;
  std::map<uint64_t, RebuildTask> tasks_;
  std::set<BucketNo> recovering_;
  std::set<BucketNo> lost_buckets_;
  std::map<BucketNo, std::vector<ClientOpViaCoordinatorMsg>> parked_;
  uint64_t recoveries_completed_ = 0;
};

/// The LH*s baseline: record striping. Every record is cut into k stripes
/// stored in k separate LH* files under the record's key, plus one XOR
/// parity stripe in a (k+1)-th file — all on different servers.
///
/// Comparison points: ~1/k storage overhead and 1-availability like LH*g /
/// LH*RS(k=1), but *every* key search must gather k stripes (k messages
/// where LH*RS pays 1) — the striping drawback the LH*g and LH*RS papers
/// both highlight. Inserts cost k+1 messages.
///
/// Implements the SddsFile facade. A logical op is a chain of sequential
/// sub-ops, one per stripe file, each started the moment the previous one
/// completes — the exact message schedule of the original synchronous
/// loops (writes fail fast; searches stop at the first kNotFound, fall
/// back to the parity stripe on one unavailable column, and reconstruct).
/// A session owns one client per stripe file.
class LhsFile : public sdds::SddsFile {
 public:
  struct Options {
    FileConfig file;       ///< Config of each stripe file.
    NetworkConfig net;
    uint32_t stripe_count = 4;  ///< The paper's k.
  };

  explicit LhsFile(Options options);

  // --- SddsFile ------------------------------------------------------------
  size_t AddSession() override;
  size_t session_count() const override { return files_[0].clients.size(); }
  sdds::OpToken Submit(size_t session, OpType op, Key key,
                       Bytes value) override;
  bool Poll(sdds::OpToken token) const override {
    return done_.contains(token);
  }
  Result<OpOutcome> Take(sdds::OpToken token) override;
  Network& network() override { return *network_; }
  StorageStats GetStorageStats() const override;

  /// Crashes the bucket of stripe file `stripe` that holds `key`'s stripe.
  NodeId CrashStripeBucketOf(uint32_t stripe, Key key);

  uint32_t stripe_count() const { return stripe_count_; }

  /// Splits `value` into `stripe_count` equal chunks (zero-padded) plus an
  /// XOR parity chunk; element i is stripe i's payload, element
  /// stripe_count is the parity payload. Each payload carries a 4-byte
  /// total-length prefix so reassembly trims exactly.
  static std::vector<Bytes> StripeValue(const Bytes& value,
                                        uint32_t stripe_count);
  /// Inverse of StripeValue given all data stripes.
  static Bytes AssembleValue(const std::vector<Bytes>& stripes,
                             uint32_t stripe_count);
  /// Reconstructs data stripe `missing` from the others plus parity.
  static Bytes ReconstructStripe(const std::vector<const Bytes*>& present,
                                 std::span<const uint8_t> parity,
                                 uint32_t stripe_count, uint32_t missing);

 private:
  struct StripeFile {
    std::shared_ptr<SystemContext> ctx;
    CoordinatorNode* coordinator = nullptr;
    std::vector<ClientNode*> clients;  ///< One per session.
    /// Per session: client op id -> facade token of the logical op.
    std::vector<std::map<uint64_t, sdds::OpToken>> subops;
  };

  /// State of one logical op across its per-stripe sub-op chain.
  struct LogicalOp {
    size_t session = 0;
    OpType op = OpType::kSearch;
    Key key = 0;
    uint32_t next = 0;           ///< Stripe file of the current sub-op.
    std::vector<Bytes> stripes;  ///< Write payloads / gathered read stripes.
    std::vector<bool> have;      ///< Which data stripes a search gathered.
    uint32_t missing = 0;        ///< First unavailable stripe (== k: none).
    bool parity_fetch = false;   ///< Current sub-op reads the parity file.
  };

  void StartSubOp(uint32_t file_index, size_t session, sdds::OpToken token,
                  OpType op, Key key, BufferView value);
  void OnSubOpComplete(uint32_t file_index, size_t session, uint64_t op_id);
  void AdvanceSearch(sdds::OpToken token, LogicalOp& lop, OpOutcome sub);
  void AdvanceWrite(sdds::OpToken token, LogicalOp& lop, OpOutcome sub);
  void FinishOp(sdds::OpToken token, OpOutcome outcome);
  void AddStripeClient(uint32_t file_index, size_t session);

  std::unique_ptr<Network> network_;  ///< exec::MakeNetwork(options.net).
  uint32_t stripe_count_;
  std::vector<StripeFile> files_;  ///< k stripes + 1 parity.
  std::map<sdds::OpToken, LogicalOp> inflight_;
  std::map<sdds::OpToken, OpOutcome> done_;
  /// Typed registry of every bucket node of all stripe files.
  sdds::NodeIndex<DataBucketNode> buckets_;
};

}  // namespace lhrs::lhs

#endif  // LHRS_BASELINES_LHS_LHS_FILE_H_
