#include "baselines/lhs/lhs_file.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "exec/parallel_network.h"

namespace lhrs::lhs {

namespace {

constexpr size_t kLengthPrefix = 4;

void RegisterLhsNames() {
  RegisterMessageKindName(LhsMsg::kStripeRead, "lhs.StripeRead");
  RegisterMessageKindName(LhsMsg::kStripeReadReply, "lhs.StripeReadReply");
  RegisterMessageKindName(LhsMsg::kStripeInstall, "lhs.StripeInstall");
  RegisterMessageKindName(LhsMsg::kStripeAck, "lhs.StripeAck");
}

void PutLength(Bytes& stripe, uint32_t len) {
  for (int i = 0; i < 4; ++i) {
    stripe.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
}

uint32_t GetLength(const Bytes& stripe) {
  LHRS_CHECK_GE(stripe.size(), kLengthPrefix);
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= uint32_t{stripe[i]} << (8 * i);
  return len;
}

}  // namespace

std::vector<Bytes> LhsFile::StripeValue(const Bytes& value,
                                        uint32_t stripe_count) {
  const uint32_t len = static_cast<uint32_t>(value.size());
  const size_t chunk = (value.size() + stripe_count - 1) / stripe_count;
  std::vector<Bytes> out(stripe_count + 1);
  Bytes parity_chunk(chunk, 0);
  for (uint32_t s = 0; s < stripe_count; ++s) {
    Bytes& stripe = out[s];
    stripe.reserve(kLengthPrefix + chunk);
    PutLength(stripe, len);
    const size_t begin = std::min<size_t>(s * chunk, value.size());
    const size_t end = std::min<size_t>((s + 1) * chunk, value.size());
    stripe.insert(stripe.end(), value.begin() + begin, value.begin() + end);
    stripe.resize(kLengthPrefix + chunk, 0);
    for (size_t i = 0; i < chunk; ++i) {
      parity_chunk[i] ^= stripe[kLengthPrefix + i];
    }
  }
  Bytes& parity = out[stripe_count];
  parity.reserve(kLengthPrefix + chunk);
  PutLength(parity, len);
  parity.insert(parity.end(), parity_chunk.begin(), parity_chunk.end());
  return out;
}

Bytes LhsFile::AssembleValue(const std::vector<Bytes>& stripes,
                             uint32_t stripe_count) {
  LHRS_CHECK_GE(stripes.size(), stripe_count);
  const uint32_t len = GetLength(stripes[0]);
  Bytes out;
  out.reserve(len);
  for (uint32_t s = 0; s < stripe_count; ++s) {
    out.insert(out.end(), stripes[s].begin() + kLengthPrefix,
               stripes[s].end());
  }
  LHRS_CHECK_GE(out.size(), len);
  out.resize(len);
  return out;
}

Bytes LhsFile::ReconstructStripe(const std::vector<const Bytes*>& present,
                                 std::span<const uint8_t> parity,
                                 uint32_t stripe_count, uint32_t missing) {
  Bytes out(parity.begin(), parity.end());  // Prefix carries the length.
  for (uint32_t s = 0; s < stripe_count; ++s) {
    if (s == missing) continue;
    const Bytes* stripe = present[s];
    LHRS_CHECK(stripe != nullptr);
    LHRS_CHECK_EQ(stripe->size(), out.size());
    for (size_t i = kLengthPrefix; i < out.size(); ++i) {
      out[i] ^= (*stripe)[i];
    }
  }
  return out;
}

LhsFile::LhsFile(Options options)
    : network_(exec::MakeNetwork(options.net)),
      stripe_count_(options.stripe_count) {
  RegisterLhStarMessageNames();
  RegisterLhsNames();
  files_.resize(stripe_count_ + 1);
  std::vector<std::shared_ptr<SystemContext>> fleet;
  for (uint32_t f = 0; f <= stripe_count_; ++f) {
    StripeFile& file = files_[f];
    file.ctx = std::make_shared<SystemContext>();
    file.ctx->config = options.file;
    fleet.push_back(file.ctx);
    auto coordinator =
        std::make_unique<LhsCoordinatorNode>(file.ctx, f, stripe_count_);
    file.coordinator = coordinator.get();
    file.ctx->coordinator = network_->AddNode(std::move(coordinator));
    auto ctx = file.ctx;
    file.coordinator->SetBucketFactory(
        [this, ctx](BucketNo bucket, Level level) {
          auto node = std::make_unique<LhsBucketNode>(
              ctx, bucket, level, /*pre_initialized=*/false);
          LhsBucketNode* ptr = node.get();
          const NodeId id = network_->AddNode(std::move(node));
          buckets_.Register(id, ptr);
          return id;
        });
    for (BucketNo b = 0; b < ctx->config.initial_buckets; ++b) {
      auto node = std::make_unique<LhsBucketNode>(ctx, b, /*level=*/0,
                                                  /*pre_initialized=*/true);
      LhsBucketNode* ptr = node.get();
      const NodeId id = network_->AddNode(std::move(node));
      buckets_.Register(id, ptr);
      ctx->allocation.Set(b, id);
    }
  }
  for (auto& file : files_) {
    static_cast<LhsCoordinatorNode*>(file.coordinator)->SetFleet(fleet);
  }
  AddSession();
}

size_t LhsFile::AddSession() {
  const size_t session = files_[0].clients.size();
  for (uint32_t f = 0; f <= stripe_count_; ++f) AddStripeClient(f, session);
  return session;
}

void LhsFile::AddStripeClient(uint32_t file_index, size_t session) {
  StripeFile& file = files_[file_index];
  LHRS_CHECK_EQ(file.clients.size(), session);
  auto client = std::make_unique<ClientNode>(file.ctx);
  ClientNode* ptr = client.get();
  network_->AddNode(std::move(client));
  file.clients.push_back(ptr);
  file.subops.emplace_back();
  ptr->SetOnOpComplete([this, file_index, session](uint64_t op_id) {
    OnSubOpComplete(file_index, session, op_id);
  });
}

void LhsBucketNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhsMsg::kStripeRead: {
      const auto& req = static_cast<const StripeReadMsg&>(*msg.body);
      auto reply = std::make_unique<StripeReadReplyMsg>();
      reply->task_id = req.task_id;
      reply->level = level();
      if (decommissioned() || req.bucket != bucket_no()) {
        reply->failed = true;
      } else {
        records_.ForEachOrdered([&](Key key, const BufferView& value) {
          reply->records.push_back(WireRecord{key, 0, value});
        });
      }
      Send(msg.from, std::move(reply));
      return;
    }
    case LhsMsg::kStripeInstall: {
      const auto& install = static_cast<const StripeInstallMsg&>(*msg.body);
      LHRS_CHECK_EQ(install.bucket, bucket_no());
      store::BucketStore records;
      for (const auto& rec : install.records) {
        records.InsertShared(rec.key, rec.value);
      }
      InstallRecoveredState(std::move(records), install.level);
      auto ack = std::make_unique<StripeAckMsg>();
      ack->task_id = install.task_id;
      Send(msg.from, std::move(ack));
      return;
    }
    default:
      DataBucketNode::HandleSubclassMessage(msg);
  }
}

void LhsCoordinatorNode::RecoverBucket(BucketNo bucket) {
  if (recovering_.contains(bucket)) return;
  if (net()->available(ctx_->allocation.Lookup(bucket))) return;
  LHRS_CHECK(!fleet_.empty());
  recovering_.insert(bucket);

  RebuildTask task;
  task.id = next_task_id_++;
  task.bucket = bucket;
  task.level = state_.BucketLevel(bucket);
  task.spare = CreateBucketNode(bucket, task.level);
  ctx_->allocation.Set(bucket, task.spare);

  // All k+1 files hold every key in the same-numbered bucket (identical
  // key sets -> identical split schedules), so the k sibling dumps XOR to
  // the lost stripe.
  for (uint32_t f = 0; f <= stripe_count_; ++f) {
    if (f == file_index_) continue;
    auto read = std::make_unique<StripeReadMsg>();
    read->task_id = task.id;
    read->bucket = bucket;
    ++task.awaiting;
    Send(fleet_[f]->allocation.Lookup(bucket), std::move(read));
  }
  tasks_.emplace(task.id, std::move(task));
}

void LhsCoordinatorNode::HandleClientOpFallback(
    const ClientOpViaCoordinatorMsg& op) {
  MaybeResetClientImage(op);
  const BucketNo a = state_.Address(op.key);
  if (lost_buckets_.contains(a)) {
    FailClientOp(op, StatusCode::kDataLoss,
                 "two stripe columns lost: beyond LH*s 1-availability");
    return;
  }
  if (recovering_.contains(a) ||
      !net()->available(ctx_->allocation.Lookup(a))) {
    RecoverBucket(a);
    parked_[a].push_back(op);  // Served right after the rebuild.
    return;
  }
  DeliverViaState(op);
}

void LhsCoordinatorNode::MarkLost(RebuildTask& task) {
  const BucketNo bucket = task.bucket;
  lost_buckets_.insert(bucket);
  recovering_.erase(bucket);
  // Stand the half-built spare down so queued ops bounce back here.
  auto stand_down = std::make_unique<SelfCheckReplyMsg>();
  stand_down->bucket = bucket;
  stand_down->still_owner = false;
  Send(task.spare, std::move(stand_down));
  auto parked = parked_.find(bucket);
  if (parked != parked_.end()) {
    for (const auto& op : parked->second) {
      FailClientOp(op, StatusCode::kDataLoss,
                   "two stripe columns lost: beyond LH*s 1-availability");
    }
    parked_.erase(parked);
  }
  tasks_.erase(task.id);
  MaybeStartSplit();
}

void LhsCoordinatorNode::HandleSubclassDeliveryFailure(const Message& msg) {
  if (msg.body->kind() == LhsMsg::kStripeRead) {
    // A sibling stripe bucket is down too: second column failure.
    const auto& req = static_cast<const StripeReadMsg&>(*msg.body);
    auto it = tasks_.find(req.task_id);
    if (it != tasks_.end()) MarkLost(it->second);
    return;
  }
  CoordinatorNode::HandleSubclassDeliveryFailure(msg);
}

void LhsCoordinatorNode::OnOpDeliveryFailure(const OpRequestMsg& req) {
  ClientOpViaCoordinatorMsg op;
  op.op = req.op;
  op.op_id = req.op_id;
  op.client = req.client;
  op.intended_bucket = req.intended_bucket;
  op.key = req.key;
  op.value = req.value;
  HandleClientOpFallback(op);
}

void LhsCoordinatorNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhsMsg::kStripeReadReply: {
      const auto& reply = static_cast<const StripeReadReplyMsg&>(*msg.body);
      auto it = tasks_.find(reply.task_id);
      if (it == tasks_.end()) return;
      RebuildTask& task = it->second;
      if (reply.failed) {
        MarkLost(task);
        return;
      }
      for (const auto& rec : reply.records) {
        auto [acc, fresh] = task.accumulator.try_emplace(rec.key, rec.value);
        if (fresh) continue;
        // XOR the chunk parts; the 4-byte length prefix is identical in
        // every stripe and must not be XORed away. MutableData detaches
        // the accumulator from the first reply's shared buffer before the
        // in-place fold. XorBuffer rides the runtime-dispatched kernel
        // layer (gf/kernels.h), so the baseline's striping folds get the
        // same SIMD tier as the LH*RS parity path.
        LHRS_CHECK_EQ(acc->second.size(), rec.value.size());
        uint8_t* dst = acc->second.MutableData();
        XorBuffer(dst + kLengthPrefix, rec.value.data() + kLengthPrefix,
                  rec.value.size() - kLengthPrefix);
      }
      LHRS_CHECK_GT(task.awaiting, 0u);
      if (--task.awaiting > 0) return;
      auto install = std::make_unique<StripeInstallMsg>();
      install->task_id = task.id;
      install->bucket = task.bucket;
      install->level = task.level;
      for (auto& [key, stripe] : task.accumulator) {
        install->records.push_back(WireRecord{key, 0, stripe});
      }
      Send(task.spare, std::move(install));
      return;
    }
    case LhsMsg::kStripeAck: {
      const auto& ack = static_cast<const StripeAckMsg&>(*msg.body);
      auto it = tasks_.find(ack.task_id);
      if (it == tasks_.end()) return;
      const BucketNo bucket = it->second.bucket;
      tasks_.erase(it);
      recovering_.erase(bucket);
      ++recoveries_completed_;
      auto parked = parked_.find(bucket);
      if (parked != parked_.end()) {
        std::vector<ClientOpViaCoordinatorMsg> ops =
            std::move(parked->second);
        parked_.erase(parked);
        for (const auto& op : ops) DeliverViaState(op);
      }
      MaybeStartSplit();
      return;
    }
    default:
      CoordinatorNode::HandleSubclassMessage(msg);
  }
}

void LhsFile::StartSubOp(uint32_t file_index, size_t session,
                         sdds::OpToken token, OpType op, Key key,
                         BufferView value) {
  ClientNode& c = *files_[file_index].clients[session];
  const uint64_t op_id = c.StartOp(op, key, std::move(value));
  files_[file_index].subops[session][op_id] = token;
}

sdds::OpToken LhsFile::Submit(size_t session, OpType op, Key key,
                              Bytes value) {
  LHRS_CHECK_LT(session, session_count());
  const sdds::OpToken token = NextToken();
  LogicalOp lop;
  lop.session = session;
  lop.op = op;
  lop.key = key;
  lop.missing = stripe_count_;
  if (op == OpType::kInsert || op == OpType::kUpdate) {
    lop.stripes = StripeValue(value, stripe_count_);
  } else if (op == OpType::kSearch) {
    lop.stripes.resize(stripe_count_);
    lop.have.assign(stripe_count_, false);
  }
  // The stripe-0 sub-op starts immediately; each completion chains the
  // next stripe file, reproducing the synchronous loops' message schedule.
  BufferView first;
  if (op == OpType::kInsert || op == OpType::kUpdate) {
    first = BufferView(lop.stripes[0]);
  }
  auto [it, inserted] = inflight_.emplace(token, std::move(lop));
  LHRS_CHECK(inserted);
  StartSubOp(0, session, token, op, key, std::move(first));
  return token;
}

void LhsFile::OnSubOpComplete(uint32_t file_index, size_t session,
                              uint64_t op_id) {
  auto& sub = files_[file_index].subops[session];
  auto it = sub.find(op_id);
  if (it == sub.end()) return;  // Not started through the facade.
  const sdds::OpToken token = it->second;
  sub.erase(it);
  Result<OpOutcome> res =
      files_[file_index].clients[session]->TakeResult(op_id);
  LHRS_CHECK(res.ok());
  auto in = inflight_.find(token);
  LHRS_CHECK(in != inflight_.end());
  LogicalOp& lop = in->second;
  if (lop.op == OpType::kSearch) {
    AdvanceSearch(token, lop, std::move(*res));
  } else {
    AdvanceWrite(token, lop, std::move(*res));
  }
}

void LhsFile::AdvanceWrite(sdds::OpToken token, LogicalOp& lop,
                           OpOutcome sub) {
  // k + 1 writes, one per stripe site (the LH*s write cost), fail-fast.
  if (!sub.status.ok()) {
    FinishOp(token, std::move(sub));
    return;
  }
  ++lop.next;
  if (lop.next <= stripe_count_) {
    BufferView value;
    if (lop.op != OpType::kDelete) value = BufferView(lop.stripes[lop.next]);
    StartSubOp(lop.next, lop.session, token, lop.op, lop.key,
               std::move(value));
    return;
  }
  FinishOp(token, OpOutcome{Status::OK(), {}});
}

void LhsFile::AdvanceSearch(sdds::OpToken token, LogicalOp& lop,
                            OpOutcome sub) {
  if (lop.parity_fetch) {
    // Degraded read: reconstruct the missing stripe from parity.
    if (!sub.status.ok()) {
      FinishOp(token, OpOutcome{std::move(sub.status), {}});
      return;
    }
    std::vector<const Bytes*> present(stripe_count_, nullptr);
    for (uint32_t s = 0; s < stripe_count_; ++s) {
      if (lop.have[s]) present[s] = &lop.stripes[s];
    }
    lop.stripes[lop.missing] =
        ReconstructStripe(present, sub.value, stripe_count_, lop.missing);
    Bytes assembled = AssembleValue(lop.stripes, stripe_count_);
    FinishOp(token, OpOutcome{Status::OK(), BufferView(assembled)});
    return;
  }
  // Gathering the k data stripes (k messages — the striping read penalty).
  const uint32_t s = lop.next;
  if (sub.status.ok()) {
    lop.stripes[s] = sub.value.ToBytes();
    lop.have[s] = true;
  } else if (sub.status.IsNotFound()) {
    // Key absent everywhere: identical split schedules mean no stripe file
    // holds it, so the remaining fetches are skipped.
    FinishOp(token, OpOutcome{std::move(sub.status), {}});
    return;
  } else if (lop.missing == stripe_count_) {
    lop.missing = s;  // First unavailable stripe: parity can cover it.
  } else {
    FinishOp(token,
             OpOutcome{Status::DataLoss(
                           "two stripes unavailable: beyond LH*s "
                           "1-availability"),
                       {}});
    return;
  }
  ++lop.next;
  if (lop.next < stripe_count_) {
    StartSubOp(lop.next, lop.session, token, OpType::kSearch, lop.key, {});
    return;
  }
  if (lop.missing == stripe_count_) {
    Bytes assembled = AssembleValue(lop.stripes, stripe_count_);
    FinishOp(token, OpOutcome{Status::OK(), BufferView(assembled)});
    return;
  }
  lop.parity_fetch = true;
  StartSubOp(stripe_count_, lop.session, token, OpType::kSearch, lop.key,
             {});
}

void LhsFile::FinishOp(sdds::OpToken token, OpOutcome outcome) {
  inflight_.erase(token);
  done_[token] = std::move(outcome);
  NotifyComplete(token);
}

Result<OpOutcome> LhsFile::Take(sdds::OpToken token) {
  auto it = done_.find(token);
  if (it == done_.end()) {
    return Status::Internal("operation did not complete");
  }
  OpOutcome out = std::move(it->second);
  done_.erase(it);
  return out;
}

NodeId LhsFile::CrashStripeBucketOf(uint32_t stripe, Key key) {
  const StripeFile& file = files_.at(stripe);
  const BucketNo a = file.coordinator->state().Address(key);
  const NodeId node = file.ctx->allocation.Lookup(a);
  network_->SetAvailable(node, false);
  return node;
}

StorageStats LhsFile::GetStorageStats() const {
  StorageStats stats;
  for (uint32_t f = 0; f <= stripe_count_; ++f) {
    const StripeFile& file = files_[f];
    const BucketNo count = file.coordinator->state().bucket_count();
    for (BucketNo b = 0; b < count; ++b) {
      const DataBucketNode* bucket =
          buckets_.At(file.ctx->allocation.Lookup(b));
      if (f < stripe_count_) {
        stats.record_count += bucket->record_count();
        stats.data_bytes += bucket->StorageBytes();
        ++stats.data_buckets;
      } else {
        stats.parity_bytes += bucket->StorageBytes();
        ++stats.parity_buckets;
      }
    }
  }
  // record_count counts stripes; report whole records.
  stats.record_count /= stripe_count_;
  stats.load_factor = 0.0;
  return stats;
}

}  // namespace lhrs::lhs
