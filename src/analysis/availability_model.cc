#include "analysis/availability_model.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace lhrs {

double PlainAvailability(uint32_t buckets, double p) {
  return std::pow(p, buckets);
}

double AtMostFailures(uint32_t n, uint32_t tolerated, double p) {
  const double q = 1.0 - p;
  double sum = 0.0;
  double coeff = 1.0;  // C(n, i), built incrementally.
  for (uint32_t i = 0; i <= tolerated && i <= n; ++i) {
    sum += coeff * std::pow(q, i) * std::pow(p, n - i);
    coeff = coeff * (n - i) / (i + 1);
  }
  return sum;
}

double LhrsAvailability(uint32_t data_buckets, uint32_t m, uint32_t k,
                        double p) {
  LHRS_CHECK_GT(m, 0u);
  double total = 1.0;
  for (uint32_t first = 0; first < data_buckets; first += m) {
    const uint32_t existing = std::min(m, data_buckets - first);
    total *= AtMostFailures(existing + k, k, p);
  }
  return total;
}

double LhrsScalableAvailability(
    uint32_t data_buckets, uint32_t m,
    const std::function<uint32_t(uint32_t group)>& k_for_group, double p) {
  LHRS_CHECK_GT(m, 0u);
  double total = 1.0;
  uint32_t group = 0;
  for (uint32_t first = 0; first < data_buckets; first += m, ++group) {
    const uint32_t existing = std::min(m, data_buckets - first);
    const uint32_t k = k_for_group(group);
    total *= AtMostFailures(existing + k, k, p);
  }
  return total;
}

double MirrorAvailability(uint32_t buckets, double p) {
  const double q = 1.0 - p;
  return std::pow(1.0 - q * q, buckets);
}

double LhgAvailability(uint32_t data_buckets, uint32_t group_size,
                       uint32_t parity_buckets, double p) {
  LHRS_CHECK_GT(group_size, 0u);
  // P(no data failure anywhere).
  const double no_data_failure = std::pow(p, data_buckets);
  // P(every group has <= 1 data failure).
  double per_group_ok = 1.0;
  for (uint32_t first = 0; first < data_buckets; first += group_size) {
    const uint32_t existing = std::min(group_size, data_buckets - first);
    per_group_ok *= AtMostFailures(existing, 1, p);
  }
  const double all_parity_up = std::pow(p, parity_buckets);
  // Survive iff: (all parity up AND <=1 data failure per group)
  //          OR (some parity down AND zero data failures).
  return all_parity_up * per_group_ok +
         (1.0 - all_parity_up) * no_data_failure;
}

double LhsAvailability(uint32_t buckets_per_stripe_file, uint32_t k,
                       double p) {
  // Column groups of k+1 same-numbered buckets, each 1-available.
  return std::pow(AtMostFailures(k + 1, 1, p), buckets_per_stripe_file);
}

double MonteCarloAvailability(
    uint32_t nodes, double p, uint32_t trials, Rng& rng,
    const std::function<bool(const std::vector<bool>& up)>& survives) {
  LHRS_CHECK_GT(trials, 0u);
  uint32_t ok = 0;
  std::vector<bool> up(nodes);
  for (uint32_t t = 0; t < trials; ++t) {
    for (uint32_t n = 0; n < nodes; ++n) up[n] = rng.Flip(p);
    if (survives(up)) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace lhrs
