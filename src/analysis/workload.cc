#include "analysis/workload.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lhrs {

ZipfSampler::ZipfSampler(size_t n, double theta) {
  LHRS_CHECK_GT(n, 0u);
  cumulative_.reserve(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cumulative_.push_back(sum);
  }
  for (double& c : cumulative_) c /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return it == cumulative_.end() ? cumulative_.size() - 1
                                 : static_cast<size_t>(
                                       it - cumulative_.begin());
}

bool WorkloadSpec::Valid() const {
  const double sum = insert_fraction + search_fraction + update_fraction +
                     delete_fraction;
  return sum > 0.999 && sum < 1.001 && insert_fraction >= 0 &&
         search_fraction >= 0 && update_fraction >= 0 &&
         delete_fraction >= 0 && value_min <= value_max;
}

std::string WorkloadStats::ToString() const {
  std::ostringstream os;
  os << "ops=" << total() << " (i=" << inserts << " s=" << searches
     << " u=" << updates << " d=" << deletes << ") misses=" << not_found
     << " failures=" << failures << " live=" << live_keys;
  return os.str();
}

}  // namespace lhrs
