#include "analysis/workload.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

namespace lhrs {

ZipfSampler::ZipfSampler(size_t n, double theta) {
  LHRS_CHECK_GT(n, 0u);
  cumulative_.reserve(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cumulative_.push_back(sum);
  }
  for (double& c : cumulative_) c /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return it == cumulative_.end() ? cumulative_.size() - 1
                                 : static_cast<size_t>(
                                       it - cumulative_.begin());
}

bool WorkloadSpec::Valid() const {
  const double sum = insert_fraction + search_fraction + update_fraction +
                     delete_fraction;
  return sum > 0.999 && sum < 1.001 && insert_fraction >= 0 &&
         search_fraction >= 0 && update_fraction >= 0 &&
         delete_fraction >= 0 && value_min <= value_max;
}

OpenLoopResult RunOpenLoopWorkload(sdds::SddsFile& file,
                                   const WorkloadSpec& spec, uint64_t ops,
                                   const OpenLoopOptions& options, Rng& rng) {
  LHRS_CHECK(spec.Valid()) << "workload fractions must sum to 1";
  OpenLoopResult result;
  WorkloadStats& stats = result.stats;
  std::vector<Key> live;
  std::set<Key> phantoms;  ///< Searched keys that were never inserted.
  ZipfSampler zipf(1, spec.zipf_theta);
  uint64_t generated = 0;

  auto pick_existing = [&]() -> size_t {
    if (spec.skew == WorkloadSpec::Skew::kZipfian) {
      if (zipf.n() != live.size()) {
        zipf = ZipfSampler(live.size(), spec.zipf_theta);
      }
      return zipf.Sample(rng);
    }
    return static_cast<size_t>(rng.Uniform(live.size()));
  };
  auto value = [&] {
    return rng.RandomBytes(spec.value_min +
                           rng.Uniform(spec.value_max - spec.value_min + 1));
  };

  // Called from inside event processing in completion order: a single rng
  // stream drawn in a deterministic order, whatever N and W are.
  auto source = [&](size_t /*session*/) -> std::optional<sdds::SddsOp> {
    if (generated >= ops) return std::nullopt;
    ++generated;
    sdds::SddsOp op;
    const double roll = rng.NextDouble();
    if (roll < spec.insert_fraction || live.empty()) {
      op.op = OpType::kInsert;
      op.key = rng.Next64();
      op.value = value();
      ++stats.inserts;
      live.push_back(op.key);  // Optimistic: live the moment it is sent.
    } else if (roll < spec.insert_fraction + spec.search_fraction) {
      op.op = OpType::kSearch;
      ++stats.searches;
      if (rng.Flip(0.9)) {
        op.key = live[pick_existing()];
      } else {
        op.key = rng.Next64();
        phantoms.insert(op.key);
      }
    } else if (roll < spec.insert_fraction + spec.search_fraction +
                          spec.update_fraction) {
      op.op = OpType::kUpdate;
      op.key = live[pick_existing()];
      op.value = value();
      ++stats.updates;
    } else {
      op.op = OpType::kDelete;
      const size_t at = pick_existing();
      op.key = live[at];
      ++stats.deletes;
      live[at] = live.back();  // Optimistic: dead the moment it is sent.
      live.pop_back();
    }
    return op;
  };

  auto on_complete = [&](size_t /*session*/, const sdds::SddsOp& op,
                         const OpOutcome& outcome) {
    if (op.op == OpType::kSearch) {
      const auto phantom = phantoms.find(op.key);
      if (phantom != phantoms.end()) {
        phantoms.erase(phantom);
        if (outcome.status.ok()) ++stats.failures;  // Phantom read.
        else if (outcome.status.IsNotFound()) ++stats.not_found;
        else ++stats.failures;
        return;
      }
    }
    if (outcome.status.ok()) return;
    if (outcome.status.IsNotFound() || outcome.status.IsAlreadyExists()) {
      // A race with the op that made this key live/dead — expected with
      // W > 1 — or an insert landing on a key the driver already retired.
      ++stats.not_found;
      return;
    }
    ++stats.failures;
  };

  sdds::RunnerOptions runner_options;
  runner_options.sessions = options.sessions;
  runner_options.window = options.window;
  sdds::PipelinedRunner runner(file, runner_options);
  result.report = runner.Run(source, on_complete);
  stats.live_keys = live.size();
  return result;
}

std::string WorkloadStats::ToString() const {
  std::ostringstream os;
  os << "ops=" << total() << " (i=" << inserts << " s=" << searches
     << " u=" << updates << " d=" << deletes << ") misses=" << not_found
     << " failures=" << failures << " live=" << live_keys;
  return os.str();
}

}  // namespace lhrs
