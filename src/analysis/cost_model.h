#ifndef LHRS_ANALYSIS_COST_MODEL_H_
#define LHRS_ANALYSIS_COST_MODEL_H_

#include <cstdint>

namespace lhrs {

/// Closed-form messaging-cost predictions per scheme, in messages
/// (request + reply counted separately, matching the simulator's
/// statistics). Benches print these next to the measured values so each
/// table shows model vs measurement.
struct CostModel {
  /// Converged-image key search: request + reply.
  static constexpr double kLhStarSearch = 2.0;
  /// Converged-image insert: request + reply (parity excluded).
  static constexpr double kLhStarInsert = 2.0;

  /// LH*RS insert: data request + reply + k parity deltas (unacknowledged).
  static double LhrsInsert(uint32_t k) { return 2.0 + k; }
  /// LH*RS update: same shape as insert.
  static double LhrsUpdate(uint32_t k) { return 2.0 + k; }
  /// LH*RS failure-free search: identical to LH*.
  static constexpr double kLhrsSearch = kLhStarSearch;

  /// LH*g insert: data request + reply + 1 parity update.
  static constexpr double kLhgInsert = 3.0;

  /// LH*m insert: two replicas, request + reply each.
  static constexpr double kLhmInsert = 4.0;

  /// LH*s insert: k data stripes + 1 parity stripe, request + reply each.
  static double LhsInsert(uint32_t k) { return 2.0 * (k + 1); }
  /// LH*s search must gather k stripes.
  static double LhsSearch(uint32_t k) { return 2.0 * k; }

  /// LH*RS degraded-mode record recovery: find-rank round trip at the
  /// group's parity bucket + one read round trip per surviving sibling +
  /// the client reply. Constant in file size M.
  static double LhrsRecordRecovery(uint32_t m) {
    return 2.0 + 2.0 * (m - 1) + 1.0;
  }
  /// LH*g record recovery (A7): scan of the whole parity file (multicast
  /// counted as 1) + M2 replies + 2(k-1) member searches + client reply.
  /// Linear in file size via M2 ~ M/k.
  static double LhgRecordRecovery(uint32_t parity_buckets,
                                  uint32_t group_size) {
    return 1.0 + parity_buckets + 2.0 * (group_size - 1) + 1.0;
  }

  /// LH*RS bucket recovery: m column reads + m dumps + f installs + f acks
  /// (dump/install sizes scale with b, captured by simulated time).
  static double LhrsBucketRecovery(uint32_t m, uint32_t failed) {
    return 2.0 * m + 2.0 * failed;
  }
  /// LH*g bucket recovery (A4): F2 scan (1 + M2) + 2 searches per lost
  /// record per surviving group member + install + ack.
  static double LhgBucketRecovery(uint32_t parity_buckets,
                                  double lost_records,
                                  double avg_group_fill) {
    return 1.0 + parity_buckets + 2.0 * lost_records * (avg_group_fill - 1) +
           2.0;
  }
};

}  // namespace lhrs

#endif  // LHRS_ANALYSIS_COST_MODEL_H_
