#ifndef LHRS_ANALYSIS_AVAILABILITY_MODEL_H_
#define LHRS_ANALYSIS_AVAILABILITY_MODEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace lhrs {

/// Closed-form file-availability models under the paper's assumption of
/// independent bucket failures with per-bucket availability p. These drive
/// experiment F3 (availability vs file size) and are cross-validated by
/// Monte-Carlo simulation in the tests.

/// Plain LH*: all M buckets must be up — P = p^M, the motivating collapse
/// (0.99^100 ~ 0.37).
double PlainAvailability(uint32_t buckets, double p);

/// Binomial tail: probability that at most `tolerated` of `n` independent
/// nodes are down.
double AtMostFailures(uint32_t n, uint32_t tolerated, double p);

/// LH*RS with fixed geometry: M data buckets in groups of m, each group
/// with k parity buckets; a group survives iff at most k of its
/// (m' + k) nodes fail (m' < m in the partial last group).
double LhrsAvailability(uint32_t data_buckets, uint32_t m, uint32_t k,
                        double p);

/// LH*RS with scalable availability: group g created when the file had
/// `KForGroup(g)` availability; pass the per-group k directly.
double LhrsScalableAvailability(
    uint32_t data_buckets, uint32_t m,
    const std::function<uint32_t(uint32_t group)>& k_for_group, double p);

/// LH*m mirroring: every bucket is paired; the file survives iff no pair
/// loses both copies.
double MirrorAvailability(uint32_t buckets, double p);

/// LH*g record grouping with bucket groups of size k and `parity_buckets`
/// F2 buckets. Survives iff (a) every bucket group has at most one data
/// failure, and (b) data failures and parity failures do not coincide
/// (a failed data bucket needs all of F2 to rebuild; a failed parity
/// bucket needs all of F1).
double LhgAvailability(uint32_t data_buckets, uint32_t group_size,
                       uint32_t parity_buckets, double p);

/// LH*s striping: k stripe files plus a parity file with identical bucket
/// counts; same-numbered buckets across the k+1 files form a 1-available
/// column group.
double LhsAvailability(uint32_t buckets_per_stripe_file, uint32_t k,
                       double p);

/// Monte-Carlo estimate of any scheme's availability: samples node up/down
/// vectors and evaluates `survives`. Used to validate the closed forms.
double MonteCarloAvailability(
    uint32_t nodes, double p, uint32_t trials, Rng& rng,
    const std::function<bool(const std::vector<bool>& up)>& survives);

}  // namespace lhrs

#endif  // LHRS_ANALYSIS_AVAILABILITY_MODEL_H_
