#ifndef LHRS_ANALYSIS_WORKLOAD_H_
#define LHRS_ANALYSIS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "lh/lh_math.h"
#include "sdds/session.h"

namespace lhrs {

/// Zipf-distributed index sampler over [0, n): index i is drawn with
/// probability proportional to 1 / (i+1)^theta. Used to model skewed
/// (hot-key) access in workloads; rebuilding the cumulative table costs
/// O(n), sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  size_t n() const { return cumulative_.size(); }

  /// Draws an index in [0, n).
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

/// Specification of a synthetic workload: an operation mix over a keyspace
/// with a chosen access skew and value-size range.
struct WorkloadSpec {
  /// Operation mix; fractions must sum to ~1.
  double insert_fraction = 0.25;
  double search_fraction = 0.60;
  double update_fraction = 0.10;
  double delete_fraction = 0.05;

  /// How keys of search/update/delete are picked among the live keys.
  enum class Skew {
    kUniform,   ///< Every live key equally likely.
    kZipfian,   ///< Hot keys (theta below) — models popularity skew.
  };
  Skew skew = Skew::kUniform;
  double zipf_theta = 0.99;  ///< YCSB-style default.

  size_t value_min = 16;
  size_t value_max = 128;

  /// Validates the mix; returns false when the fractions are inconsistent.
  bool Valid() const;
};

/// Outcome counters of a workload run.
struct WorkloadStats {
  uint64_t inserts = 0;
  uint64_t searches = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t not_found = 0;   ///< Searches that (correctly) missed.
  uint64_t failures = 0;    ///< Ops that errored unexpectedly.
  uint64_t live_keys = 0;   ///< Keys alive at the end.

  uint64_t total() const {
    return inserts + searches + updates + deletes;
  }
  std::string ToString() const;
};

/// Drives `ops` operations of the spec against any file facade exposing
/// Insert/Search/Update/Delete (LhrsFile and every baseline do). The
/// driver keeps the live-key set so deletes and updates always target
/// existing keys; with Zipfian skew, lower-indexed (older) keys are hotter.
template <typename File>
WorkloadStats RunWorkload(File& file, const WorkloadSpec& spec, int ops,
                          Rng& rng) {
  LHRS_CHECK(spec.Valid()) << "workload fractions must sum to 1";
  WorkloadStats stats;
  std::vector<Key> live;
  ZipfSampler zipf(1, spec.zipf_theta);

  auto pick_existing = [&]() -> size_t {
    if (spec.skew == WorkloadSpec::Skew::kZipfian) {
      if (zipf.n() != live.size()) zipf = ZipfSampler(live.size(),
                                                      spec.zipf_theta);
      return zipf.Sample(rng);
    }
    return static_cast<size_t>(rng.Uniform(live.size()));
  };
  auto value = [&] {
    return rng.RandomBytes(spec.value_min +
                           rng.Uniform(spec.value_max - spec.value_min + 1));
  };

  for (int i = 0; i < ops; ++i) {
    const double roll = rng.NextDouble();
    if (roll < spec.insert_fraction || live.empty()) {
      const Key key = rng.Next64();
      const Status s = file.Insert(key, value());
      ++stats.inserts;
      if (s.ok()) {
        live.push_back(key);
      } else if (!s.IsAlreadyExists()) {
        ++stats.failures;
      }
    } else if (roll < spec.insert_fraction + spec.search_fraction) {
      ++stats.searches;
      if (rng.Flip(0.9)) {
        auto got = file.Search(live[pick_existing()]);
        if (!got.ok()) ++stats.failures;
      } else {
        auto got = file.Search(rng.Next64());
        if (got.ok()) {
          ++stats.failures;  // Phantom read.
        } else if (got.status().IsNotFound()) {
          ++stats.not_found;
        } else {
          ++stats.failures;
        }
      }
    } else if (roll < spec.insert_fraction + spec.search_fraction +
                          spec.update_fraction) {
      ++stats.updates;
      if (!file.Update(live[pick_existing()], value()).ok()) {
        ++stats.failures;
      }
    } else {
      ++stats.deletes;
      const size_t at = pick_existing();
      if (!file.Delete(live[at]).ok()) ++stats.failures;
      live[at] = live.back();
      live.pop_back();
    }
  }
  stats.live_keys = live.size();
  return stats;
}

/// Configuration of the open-loop workload driver.
struct OpenLoopOptions {
  size_t sessions = 4;  ///< Concurrent client sessions (N).
  size_t window = 4;    ///< Outstanding ops per session (W).
};

/// What one open-loop run produced: the op-mix counters plus the runner's
/// throughput/latency report (simulated time).
struct OpenLoopResult {
  WorkloadStats stats;
  sdds::RunnerReport report;
};

/// Drives `ops` operations of the spec against `file` through the
/// pipelined session layer: N sessions, each keeping up to W operations in
/// flight, refilled from inside the completion path. The generator keeps
/// the live-key set *optimistically* (inserts join / deletes leave at
/// submit time), so with W > 1 an operation can race the one that made its
/// key live or dead — kNotFound on search/update/delete therefore counts
/// as `not_found`, never as a failure. With sessions == 1 and window == 1
/// this reduces exactly to the closed-loop RunWorkload execution model.
OpenLoopResult RunOpenLoopWorkload(sdds::SddsFile& file,
                                   const WorkloadSpec& spec, uint64_t ops,
                                   const OpenLoopOptions& options, Rng& rng);

}  // namespace lhrs

#endif  // LHRS_ANALYSIS_WORKLOAD_H_
