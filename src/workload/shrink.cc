#include "workload/shrink.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace lhrs::workload {

ShrinkReport ShrinkByDeletion(LhStarFile& file, const std::vector<Key>& keys,
                              const ShrinkOptions& options) {
  LHRS_CHECK(options.delete_fraction >= 0 && options.delete_fraction <= 1);
  LHRS_CHECK(options.resume_fraction >= 0 &&
             options.resume_fraction <= options.delete_fraction);
  LHRS_CHECK(options.sessions > 0 && options.window > 0);

  ShrinkReport report;
  report.buckets_before = file.bucket_count();
  const uint64_t merges_before = file.coordinator().merges_performed();

  // Seeded Fisher-Yates over a copy, then take the prefix: which keys die
  // (and in what order) is a pure function of (keys, seed).
  std::vector<Key> shuffled = keys;
  Rng rng(options.seed);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  const size_t victims_end = static_cast<size_t>(
      static_cast<double>(shuffled.size()) * options.delete_fraction);
  const size_t victims_begin = static_cast<size_t>(
      static_cast<double>(shuffled.size()) * options.resume_fraction);
  report.deleted_keys.assign(
      shuffled.begin() + static_cast<ptrdiff_t>(victims_begin),
      shuffled.begin() + static_cast<ptrdiff_t>(victims_end));
  report.deletes = victims_end - victims_begin;

  size_t next = 0;
  sdds::PipelinedRunner runner(
      file, sdds::RunnerOptions{options.sessions, options.window, 0});
  report.runner =
      runner.Run([&](size_t /*session*/) -> std::optional<sdds::SddsOp> {
        if (next >= report.deleted_keys.size()) return std::nullopt;
        return sdds::SddsOp{OpType::kDelete, report.deleted_keys[next++], {}};
      });

  // The runner returns when the last delete completes; merge record moves
  // and parity deltas it triggered can still be in flight. Settle before
  // reading the post-shrink shape (invariant checks rely on this).
  file.network().RunUntilIdle();

  report.buckets_after = file.bucket_count();
  report.merges = file.coordinator().merges_performed() - merges_before;
  return report;
}

}  // namespace lhrs::workload
