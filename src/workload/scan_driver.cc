#include "workload/scan_driver.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace lhrs::workload {
namespace {

/// Upper boundary of partition `i` of `p` over the inclusive span
/// [key_min, key_min + span]: key_min + ((i+1) * span) / p, computed in
/// 128 bits so the full-key-space span (2^64 - 1) never overflows.
Key PartitionUpper(Key key_min, uint64_t span, size_t i, size_t p) {
  const unsigned __int128 scaled =
      static_cast<unsigned __int128>(span) * (i + 1) / p;
  return key_min + static_cast<Key>(scaled);
}

}  // namespace

Result<ParallelScanReport> ParallelScan(LhStarFile& file,
                                        const ParallelScanOptions& options) {
  if (options.partitions == 0 || options.key_min > options.key_max) {
    return Status::InvalidArgument("bad parallel-scan partitioning");
  }
  const size_t p = options.partitions;
  const uint64_t span = options.key_max - options.key_min;

  struct Launched {
    size_t session = 0;
    uint64_t op_id = 0;
  };
  std::vector<Launched> launched;
  ParallelScanReport report;
  const SimTime start_us = file.network().now();

  Key lo = options.key_min;
  for (size_t i = 0; i < p && lo <= options.key_max; ++i) {
    const Key hi =
        i + 1 == p ? options.key_max : PartitionUpper(options.key_min, span,
                                                      i, p);
    if (hi < lo) continue;  // Degenerate partition (span < p).
    while (file.session_count() <= launched.size()) file.AddSession();
    const size_t session = launched.size();
    ScanPredicate predicate;
    predicate.has_key_range = true;
    predicate.key_min = lo;
    predicate.key_max = hi;
    const uint64_t op_id =
        file.client(session).StartScan(std::move(predicate),
                                       options.deterministic);
    launched.push_back(Launched{session, op_id});
    if (hi == options.key_max) break;
    lo = hi + 1;
  }
  report.partitions = launched.size();

  file.network().RunUntilIdle();

  for (const Launched& scan : launched) {
    ClientNode& client = file.client(scan.session);
    if (!client.IsDone(scan.op_id)) {
      if (!options.deterministic) {
        // The simulation going idle is the probabilistic-mode time-out.
        client.FinishProbabilisticScan(scan.op_id);
      } else {
        return Status::Internal("parallel scan partition did not terminate");
      }
    }
    LHRS_ASSIGN_OR_RETURN(OpOutcome outcome, client.TakeResult(scan.op_id));
    if (!outcome.status.ok()) return outcome.status;
    // Per-partition sort; partitions are disjoint and ascending, so the
    // concatenation is globally sorted.
    std::sort(outcome.scan_records.begin(), outcome.scan_records.end(),
              [](const WireRecord& a, const WireRecord& b) {
                return a.key < b.key;
              });
    report.records.insert(report.records.end(),
                          std::make_move_iterator(
                              outcome.scan_records.begin()),
                          std::make_move_iterator(outcome.scan_records.end()));
  }
  report.elapsed_us = file.network().now() - start_us;
  return report;
}

}  // namespace lhrs::workload
