#include "workload/bulk_load.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"

namespace lhrs::workload {

double BulkLoadReport::RecordsPerSimSecond() const {
  const SimTime us = elapsed_us();
  if (us == 0) return 0.0;
  return static_cast<double>(records) * 1e6 / static_cast<double>(us);
}

BulkLoadReport BulkLoad(LhStarFile& file,
                        const std::vector<WireRecord>& records,
                        const BulkLoadOptions& options) {
  LHRS_CHECK(options.batch_size > 0);
  LHRS_CHECK(options.sessions > 0);
  LHRS_CHECK(options.window > 0);

  BulkLoadReport report;
  report.records = records.size();
  report.start_us = file.network().now();
  report.end_us = report.start_us;
  if (records.empty()) return report;

  while (file.session_count() < options.sessions) file.AddSession();

  // Pre-chunk into batches; `next` advances as sessions pull work.
  std::vector<std::vector<WireRecord>> batches;
  for (size_t at = 0; at < records.size(); at += options.batch_size) {
    const size_t n = std::min(options.batch_size, records.size() - at);
    batches.emplace_back(records.begin() + static_cast<ptrdiff_t>(at),
                         records.begin() + static_cast<ptrdiff_t>(at + n));
  }
  report.batches = batches.size();

  size_t next = 0;
  size_t outstanding = 0;
  std::map<sdds::OpToken, size_t> token_session;

  auto submit_on = [&](size_t session) {
    if (next >= batches.size()) return false;
    const sdds::OpToken token =
        file.SubmitBatch(session, std::move(batches[next++]));
    token_session[token] = session;
    ++outstanding;
    return true;
  };

  // Completion-driven refill: the listener fires inside event processing,
  // keeping each session's window full until the batch queue drains.
  file.SetCompletionListener([&](sdds::OpToken token) {
    auto it = token_session.find(token);
    if (it == token_session.end()) return;  // Not one of ours.
    const size_t session = it->second;
    token_session.erase(it);
    --outstanding;
    Result<OpOutcome> outcome = file.Take(token);
    LHRS_CHECK(outcome.ok()) << "bulk-load take failed";
    report.applied += outcome->batch_applied;
    report.exists += outcome->batch_exists;
    report.failed += outcome->batch_failed;
    submit_on(session);
  });

  for (size_t w = 0; w < options.window; ++w) {
    for (size_t s = 0; s < options.sessions; ++s) {
      if (!submit_on(s)) break;
    }
  }
  file.network().RunUntilIdle();
  file.SetCompletionListener(nullptr);
  LHRS_CHECK(outstanding == 0 && next == batches.size())
      << "bulk load stalled with " << outstanding << " batches in flight";
  report.end_us = file.network().now();
  return report;
}

}  // namespace lhrs::workload
