#include "workload/generator.h"

#include <cmath>
#include <set>
#include <utility>

#include "common/logging.h"

namespace lhrs::workload {

bool GeneratorOptions::Valid() const {
  const double sum = search_fraction + rmw_fraction + insert_fraction;
  return sessions > 0 && keyspace > 0 && std::abs(sum - 1.0) < 1e-9 &&
         search_fraction >= 0 && rmw_fraction >= 0 && insert_fraction >= 0;
}

uint64_t WorkloadGenerator::SessionSeed(uint64_t seed, size_t session) {
  // SplitMix64 finalizer over the pair, so streams of adjacent sessions
  // (and of adjacent base seeds) are uncorrelated.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (session + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

WorkloadGenerator::WorkloadGenerator(GeneratorOptions options)
    : options_(options),
      zipf_(options.keyspace, options.zipf_theta) {
  LHRS_CHECK(options_.Valid()) << "workload fractions must sum to 1";
  // The keyspace is drawn from the base seed alone (not per session):
  // every session, every engine and every oracle replay sees the same
  // rank -> key mapping.
  Rng key_rng(SessionSeed(options_.seed, /*session=*/0x6b657973));
  std::set<Key> seen;
  preload_.reserve(options_.keyspace);
  while (preload_.size() < options_.keyspace) {
    const Key k = key_rng.Next64();
    if (seen.insert(k).second) preload_.push_back(k);
  }
  streams_.reserve(options_.sessions);
  for (size_t s = 0; s < options_.sessions; ++s) {
    streams_.emplace_back(SessionSeed(options_.seed, s));
  }
}

uint64_t WorkloadGenerator::issued(size_t session) const {
  LHRS_CHECK_LT(session, streams_.size());
  return streams_[session].issued;
}

std::optional<sdds::SddsOp> WorkloadGenerator::Next(size_t session) {
  LHRS_CHECK_LT(session, streams_.size());
  Stream& stream = streams_[session];
  if (stream.issued >= options_.ops_per_session) return std::nullopt;
  ++stream.issued;
  return Generate(stream);
}

sdds::SddsOp WorkloadGenerator::Generate(Stream& stream) {
  // The update half of a read-modify-write pair goes out before anything
  // else: the pair occupies consecutive slots of its session's stream.
  if (stream.pending_update.has_value()) {
    const Key key = *stream.pending_update;
    stream.pending_update.reset();
    return sdds::SddsOp{OpType::kUpdate, key,
                        stream.rng.RandomBytes(options_.value_bytes)};
  }
  const double roll = stream.rng.NextDouble();
  if (roll < options_.search_fraction + options_.rmw_fraction) {
    const size_t rank = options_.dist == GeneratorOptions::KeyDist::kZipfian
                            ? zipf_.Sample(stream.rng)
                            : static_cast<size_t>(
                                  stream.rng.Uniform(preload_.size()));
    const Key key = preload_[rank];
    if (roll >= options_.search_fraction) stream.pending_update = key;
    return sdds::SddsOp{OpType::kSearch, key, {}};
  }
  // Fresh insert: a full-width random key collides with the preloaded
  // keyspace (or an earlier fresh key) with probability ~ops^2 / 2^64 —
  // never in any seeded run this repo performs.
  return sdds::SddsOp{OpType::kInsert, stream.rng.Next64(),
                      stream.rng.RandomBytes(options_.value_bytes)};
}

uint64_t WorkloadGenerator::StreamDigest(const GeneratorOptions& options,
                                         size_t session) {
  WorkloadGenerator fresh(options);
  uint64_t h = kFnvOffsetBasis;
  while (auto op = fresh.Next(session)) h = DigestOp(h, *op);
  return h;
}

uint64_t DigestOp(uint64_t h, const sdds::SddsOp& op) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  auto mix = [&](uint8_t byte) { h = (h ^ byte) * kPrime; };
  mix(static_cast<uint8_t>(op.op));
  for (int i = 0; i < 8; ++i) mix(static_cast<uint8_t>(op.key >> (8 * i)));
  for (uint8_t byte : op.value) mix(byte);
  return h;
}

}  // namespace lhrs::workload
