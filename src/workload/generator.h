#ifndef LHRS_WORKLOAD_GENERATOR_H_
#define LHRS_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/workload.h"
#include "common/rng.h"
#include "lh/lh_math.h"
#include "sdds/session.h"

namespace lhrs::workload {

/// Specification of a production-shaped op stream family: N per-session
/// streams over a preloaded keyspace, with a chosen access skew and an
/// operation mix of searches, read-modify-write pairs and fresh inserts.
///
/// Determinism contract: session `s`'s stream is a pure function of
/// (seed, s, index) — every session draws from its own Rng seeded by
/// SessionSeed(seed, s), so the stream a session sees never depends on how
/// the driver interleaves Next() calls across sessions. That is what makes
/// open-loop runs comparable across execution engines: the deterministic
/// event loop and the locality-sharded parallel engine call the source in
/// different completion orders, yet each session submits byte-identical
/// ops (see StreamDigest and tests/workload_gen_test.cc).
struct GeneratorOptions {
  uint64_t seed = 1;
  size_t sessions = 4;
  uint64_t ops_per_session = 1000;

  /// Preloaded keyspace (see WorkloadGenerator::preload_keys). Under
  /// Zipfian skew, rank 0 is the hottest key.
  size_t keyspace = 512;
  size_t value_bytes = 32;

  enum class KeyDist {
    kUniform,  ///< Every preloaded key equally likely.
    kZipfian,  ///< Hot ranks per 1/(r+1)^theta — models popularity skew.
  };
  KeyDist dist = KeyDist::kUniform;
  double zipf_theta = 0.99;  ///< YCSB-style default.

  /// Op mix; fractions must sum to ~1. A read-modify-write occupies two
  /// consecutive stream slots (the search, then the update of that key).
  double search_fraction = 0.70;
  double rmw_fraction = 0.20;
  double insert_fraction = 0.10;

  bool Valid() const;
};

/// Seeded generator feeding the open-loop PipelinedRunner: construct one,
/// preload `preload_keys()` into the file, then wire `Next` as the
/// runner's OpSource.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorOptions options);

  const GeneratorOptions& options() const { return options_; }

  /// The fixed keyspace, rank order (index 0 = hottest under Zipf). Pure
  /// function of the seed; load these before running the streams.
  const std::vector<Key>& preload_keys() const { return preload_; }

  /// Next op of `session`'s stream; nullopt once ops_per_session issued.
  std::optional<sdds::SddsOp> Next(size_t session);

  uint64_t issued(size_t session) const;

  /// Per-session stream seed: SplitMix64-style mix of (seed, session), so
  /// adjacent sessions get uncorrelated streams.
  static uint64_t SessionSeed(uint64_t seed, size_t session);

  /// FNV-1a digest of `session`'s complete stream under `options`,
  /// replayed from scratch — the reference value determinism tests compare
  /// observed submissions against.
  static uint64_t StreamDigest(const GeneratorOptions& options,
                               size_t session);

 private:
  struct Stream {
    Rng rng;
    uint64_t issued = 0;
    /// Second half of an in-progress read-modify-write pair.
    std::optional<Key> pending_update;
    explicit Stream(uint64_t seed) : rng(seed) {}
  };

  sdds::SddsOp Generate(Stream& stream);

  GeneratorOptions options_;
  std::vector<Key> preload_;
  ZipfSampler zipf_;
  std::vector<Stream> streams_;
};

/// FNV-1a offset basis; chain ops with DigestOp to fingerprint a stream.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;

/// Folds one op (type, key, payload bytes) into an FNV-1a chain value.
uint64_t DigestOp(uint64_t h, const sdds::SddsOp& op);

}  // namespace lhrs::workload

#endif  // LHRS_WORKLOAD_GENERATOR_H_
