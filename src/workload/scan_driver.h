#ifndef LHRS_WORKLOAD_SCAN_DRIVER_H_
#define LHRS_WORKLOAD_SCAN_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "lhstar/lhstar_file.h"

namespace lhrs::workload {

struct ParallelScanOptions {
  /// Disjoint key-range partitions, one scan op (and one session) each.
  size_t partitions = 4;
  /// Deterministic (every-bucket-replies) termination; false relies on
  /// the run-to-idle time-out, matching the paper's probabilistic mode.
  bool deterministic = true;
  /// Inclusive overall key range; defaults to the full key space.
  Key key_min = 0;
  Key key_max = ~Key{0};
};

struct ParallelScanReport {
  /// Client-side merge of all partitions, globally sorted by key.
  std::vector<WireRecord> records;
  size_t partitions = 0;  ///< Non-empty partitions actually launched.
  SimTime elapsed_us = 0;
};

/// Range-partitioned parallel scan with client-side merge: splits
/// [key_min, key_max] into `partitions` contiguous disjoint sub-ranges,
/// launches one ranged scan per sub-range on its own session (so the P
/// scans overlap in the network), then sorts each partition's replies and
/// concatenates them in partition order — disjoint ascending ranges make
/// the concatenation globally sorted without a P-way merge.
///
/// Works over multicast scan delivery and the unicast fallback alike
/// (NetworkConfig::multicast_available), and stays exact while splits
/// race the scan: the coverage-forwarding protocol guarantees each
/// record is reported exactly once per matching sub-range.
Result<ParallelScanReport> ParallelScan(LhStarFile& file,
                                        const ParallelScanOptions& options =
                                            {});

}  // namespace lhrs::workload

#endif  // LHRS_WORKLOAD_SCAN_DRIVER_H_
