#ifndef LHRS_WORKLOAD_BUCKET_LOAD_H_
#define LHRS_WORKLOAD_BUCKET_LOAD_H_

#include <cstdint>
#include <vector>

#include "lhstar/lhstar_file.h"

namespace lhrs::workload {

/// One data bucket's observed load: how many key-addressed ops it
/// executed and the distribution of its network queueing depth (pending
/// deliveries at op arrival) — the telemetry DataBucketNode records as
/// bucket.ops{bucket=N} / bucket.queue_depth{bucket=N}.
struct BucketLoad {
  BucketNo bucket = 0;
  uint64_t ops = 0;
  uint64_t queue_depth_p50 = 0;
  uint64_t queue_depth_p95 = 0;
  uint64_t queue_depth_max = 0;
};

/// Reads the per-bucket series for buckets [0, bucket_count) from the
/// file's telemetry. Requires Network::EnableTelemetry before the
/// workload ran and the deterministic engine (localities == 0; the
/// parallel engine's worker mailboxes are not observable per bucket).
/// Buckets with no recorded ops report zeros.
std::vector<BucketLoad> SnapshotBucketLoad(LhStarFile& file);

/// Hottest-to-mean ops ratio over the non-empty snapshot — 1.0 for a
/// perfectly even spread, rising with access skew. 0 when no ops recorded.
double SkewRatio(const std::vector<BucketLoad>& load);

}  // namespace lhrs::workload

#endif  // LHRS_WORKLOAD_BUCKET_LOAD_H_
