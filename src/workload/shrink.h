#ifndef LHRS_WORKLOAD_SHRINK_H_
#define LHRS_WORKLOAD_SHRINK_H_

#include <cstdint>
#include <vector>

#include "lhstar/lhstar_file.h"
#include "sdds/session.h"

namespace lhrs::workload {

struct ShrinkOptions {
  /// Fraction of `keys` deleted (a seeded shuffle picks the victims).
  double delete_fraction = 0.75;
  /// Start of the victim window within the same seeded shuffle: the drive
  /// deletes victims [resume_fraction, delete_fraction). Because the
  /// shuffle is a pure function of (keys, seed), an interrupted drive can
  /// resume exactly where it stopped — two drives covering [0, a) and
  /// [a, b) delete precisely the victims of one drive covering [0, b).
  double resume_fraction = 0.0;
  uint64_t seed = 1;
  /// Open-loop deletion drive: sessions x window concurrent deletes, so
  /// merges happen under load rather than between isolated ops.
  size_t sessions = 2;
  size_t window = 4;
};

struct ShrinkReport {
  BucketNo buckets_before = 0;
  BucketNo buckets_after = 0;
  uint64_t merges = 0;   ///< Coordinator merges during the drive.
  uint64_t deletes = 0;  ///< Delete ops submitted.
  sdds::RunnerReport runner;

  /// Keys the drive deleted, in submission order (the test oracle removes
  /// exactly these).
  std::vector<Key> deleted_keys;
};

/// Shrinks a file by deleting `delete_fraction` of `keys` through the
/// pipelined session layer. With FileConfig::enable_merge set, the load
/// dropping below merge_load_threshold makes the coordinator merge tail
/// buckets back into their parents while deletes are still in flight —
/// the file-shrink scenario of paper section 4.3 under load.
ShrinkReport ShrinkByDeletion(LhStarFile& file, const std::vector<Key>& keys,
                              const ShrinkOptions& options = {});

}  // namespace lhrs::workload

#endif  // LHRS_WORKLOAD_SHRINK_H_
