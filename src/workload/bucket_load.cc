#include "workload/bucket_load.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace lhrs::workload {

std::vector<BucketLoad> SnapshotBucketLoad(LhStarFile& file) {
  std::vector<BucketLoad> out;
  telemetry::Telemetry* t = file.network().telemetry();
  if (t == nullptr) return out;
  const telemetry::MetricsRegistry& metrics = t->metrics();
  const BucketNo buckets = file.bucket_count();
  out.reserve(buckets);
  for (BucketNo b = 0; b < buckets; ++b) {
    BucketLoad load;
    load.bucket = b;
    const auto label = static_cast<int64_t>(b);
    if (const telemetry::Counter* ops = metrics.FindCounter(
            telemetry::Labeled("bucket.ops", "bucket", label))) {
      load.ops = ops->value();
    }
    if (const telemetry::Histogram* depth = metrics.FindHistogram(
            telemetry::Labeled("bucket.queue_depth", "bucket", label))) {
      load.queue_depth_p50 = depth->p50();
      load.queue_depth_p95 = depth->p95();
      load.queue_depth_max = depth->max();
    }
    out.push_back(load);
  }
  return out;
}

double SkewRatio(const std::vector<BucketLoad>& load) {
  uint64_t total = 0;
  uint64_t peak = 0;
  for (const BucketLoad& b : load) {
    total += b.ops;
    peak = std::max(peak, b.ops);
  }
  if (total == 0 || load.empty()) return 0.0;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(load.size());
  return static_cast<double>(peak) / mean;
}

}  // namespace lhrs::workload
