#ifndef LHRS_WORKLOAD_BULK_LOAD_H_
#define LHRS_WORKLOAD_BULK_LOAD_H_

#include <cstdint>
#include <vector>

#include "lhstar/lhstar_file.h"

namespace lhrs::workload {

struct BulkLoadOptions {
  /// Records per InsertBatchMsg sub-batch group (one SubmitBatch call).
  size_t batch_size = 64;
  /// Client sessions loading in parallel; batches round-robin across them.
  size_t sessions = 1;
  /// Outstanding batch ops per session (open-loop window).
  size_t window = 2;
};

struct BulkLoadReport {
  uint64_t records = 0;
  uint64_t batches = 0;
  uint64_t applied = 0;
  uint64_t exists = 0;  ///< Duplicate keys (already resident).
  uint64_t failed = 0;
  SimTime start_us = 0;
  SimTime end_us = 0;

  SimTime elapsed_us() const { return end_us - start_us; }
  double RecordsPerSimSecond() const;
};

/// Loads `records` through the batched insert path: each SubmitBatch call
/// ships `batch_size` records grouped per target bucket under the session's
/// client image (one InsertBatchMsg per bucket), and the availability
/// layers group-commit their parity deltas per sub-batch. Runs open-loop —
/// up to `sessions * window` batches in flight, refilled from inside the
/// completion path — and drains the network to idle before returning.
///
/// Owns the file's completion listener for the duration of the call (do
/// not run it under a live SessionPool).
BulkLoadReport BulkLoad(LhStarFile& file,
                        const std::vector<WireRecord>& records,
                        const BulkLoadOptions& options = {});

}  // namespace lhrs::workload

#endif  // LHRS_WORKLOAD_BULK_LOAD_H_
