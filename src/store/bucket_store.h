#ifndef LHRS_STORE_BUCKET_STORE_H_
#define LHRS_STORE_BUCKET_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"

namespace lhrs::store {

/// A slotted-segment record store: payloads packed back-to-back into
/// ref-counted arena segments, with an O(1) key -> handle index on top.
///
/// This replaces the per-bucket `std::map<Key, Bytes>`: a read hands out a
/// `BufferView` sharing the segment (no copy), a split or recovery dump
/// streams views of whole segments instead of copying records one by one,
/// and deletes/overwrites tombstone the old slot (dead-bytes accounting)
/// until compaction repacks the live set.
///
/// Ownership rule: segments are ref-counted `Buffer`s, so any view handed
/// out — a wire message in flight, a recovery dump, a reader that started
/// before a compaction — keeps its segment alive after the store has
/// compacted it away. Readers are never invalidated; the store just stops
/// accounting for the retired segment.
///
/// Keys are `uint64_t`: the LH* record key, the LH*RS rank, or the packed
/// LH*g group key, depending on the bucket kind. Iteration order is
/// deterministic (ascending key) so split movement and recovery dumps
/// replay identically across runs.
class BucketStore {
 public:
  static constexpr size_t kDefaultSegmentCapacity = 64 * 1024;

  struct Stats {
    size_t live_records = 0;
    size_t live_bytes = 0;    ///< Sum of live payload sizes.
    size_t dead_bytes = 0;    ///< Tombstoned payload bytes awaiting compaction.
    size_t arena_bytes = 0;   ///< Total capacity of all open segments.
    size_t segments = 0;
    uint64_t compactions = 0;
  };

  explicit BucketStore(size_t segment_capacity = kDefaultSegmentCapacity)
      : segment_capacity_(std::max<size_t>(segment_capacity, 64)) {}

  BucketStore(BucketStore&&) = default;
  BucketStore& operator=(BucketStore&&) = default;
  BucketStore(const BucketStore&) = delete;
  BucketStore& operator=(const BucketStore&) = delete;

  /// Inserts a new record, copying the payload into the arena (the single
  /// ingestion copy). Returns false (and changes nothing) if the key
  /// already exists.
  bool Insert(uint64_t key, std::span<const uint8_t> value);

  /// Inserts a record by adopting an existing view — zero-copy: the store
  /// shares the caller's buffer (moved-in split records, recovered
  /// columns). Compaction localizes it into the arena later.
  bool InsertShared(uint64_t key, BufferView value);

  /// Upsert: like InsertShared but overwrites (tombstoning the old
  /// payload) when the key exists.
  void Put(uint64_t key, BufferView value);

  /// O(1) handle lookup. The returned pointer is valid until the next
  /// mutating call; copy the view (cheap) to hold it longer.
  const BufferView* Find(uint64_t key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second;
  }

  bool Contains(uint64_t key) const { return index_.contains(key); }

  /// Tombstones the record. Returns false if absent.
  bool Erase(uint64_t key);

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  size_t payload_bytes() const { return live_bytes_; }

  /// All keys in ascending order (deterministic iteration).
  std::vector<uint64_t> SortedKeys() const;

  /// Visits records in ascending key order: fn(uint64_t key,
  /// const BufferView& value). Safe against mutation of *other* keys from
  /// inside fn (the key snapshot is taken up front); erased keys are
  /// skipped.
  template <typename Fn>
  void ForEachOrdered(Fn&& fn) const {
    for (uint64_t key : SortedKeys()) {
      auto it = index_.find(key);
      if (it != index_.end()) fn(key, it->second);
    }
  }

  /// Repacks all live payloads into fresh segments (ascending key order)
  /// and drops the old ones. Outstanding views keep retired segments
  /// alive; new reads come from the fresh packing.
  void Compact();

  /// Drops everything (recovery install starts from a clean slate).
  void Clear();

  Stats GetStats() const;

 private:
  /// Copies `value` into the arena and returns a view of the new slot.
  BufferView Intern(std::span<const uint8_t> value);
  void NoteDead(size_t bytes);
  void MaybeCompact();

  size_t segment_capacity_;
  std::vector<std::shared_ptr<Buffer>> segments_;
  size_t head_used_ = 0;  ///< Bytes bump-allocated in segments_.back().
  std::unordered_map<uint64_t, BufferView> index_;
  size_t live_bytes_ = 0;
  size_t dead_bytes_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace lhrs::store

#endif  // LHRS_STORE_BUCKET_STORE_H_
