#include "store/bucket_store.h"

#include <cstring>
#include <utility>

namespace lhrs::store {

namespace {

/// Slots are 8-byte aligned inside a segment so word-wise kernels start on
/// a word boundary.
constexpr size_t kSlotAlign = 8;

size_t AlignSlot(size_t n) {
  return (n + kSlotAlign - 1) & ~(kSlotAlign - 1);
}

/// Compact once tombstones exceed this fraction of the touched bytes (and
/// a floor, so tiny stores don't churn).
constexpr size_t kCompactMinDeadBytes = 16 * 1024;

}  // namespace

BufferView BucketStore::Intern(std::span<const uint8_t> value) {
  if (value.empty()) return BufferView{};
  if (value.size() > segment_capacity_) {
    // Oversized record: dedicated segment, so the common segments stay
    // uniform and a huge record never strands half a segment of slack.
    auto seg = Buffer::Allocate(value.size());
    std::memcpy(seg->data(), value.data(), value.size());
    BufferView view(seg, 0, value.size());
    // Marking the head full steers the next small record into a fresh
    // uniform segment instead of bump-allocating over this one.
    head_used_ = seg->capacity();
    segments_.push_back(std::move(seg));
    return view;
  }
  const size_t need = AlignSlot(value.size());
  if (segments_.empty() || head_used_ + need > segments_.back()->capacity()) {
    segments_.push_back(Buffer::Allocate(segment_capacity_));
    head_used_ = 0;
  }
  auto& seg = segments_.back();
  std::memcpy(seg->data() + head_used_, value.data(), value.size());
  BufferView view(seg, head_used_, value.size());
  head_used_ += need;
  return view;
}

bool BucketStore::Insert(uint64_t key, std::span<const uint8_t> value) {
  if (index_.contains(key)) return false;
  BufferView view = Intern(value);
  live_bytes_ += view.size();
  index_.emplace(key, std::move(view));
  return true;
}

bool BucketStore::InsertShared(uint64_t key, BufferView value) {
  if (index_.contains(key)) return false;
  live_bytes_ += value.size();
  index_.emplace(key, std::move(value));
  return true;
}

void BucketStore::Put(uint64_t key, BufferView value) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    live_bytes_ += value.size();
    index_.emplace(key, std::move(value));
    return;
  }
  NoteDead(it->second.size());
  live_bytes_ += value.size();
  it->second = std::move(value);
  MaybeCompact();
}

bool BucketStore::Erase(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  NoteDead(it->second.size());
  index_.erase(it);
  MaybeCompact();
  return true;
}

void BucketStore::NoteDead(size_t bytes) {
  live_bytes_ -= bytes;
  dead_bytes_ += bytes;
}

void BucketStore::MaybeCompact() {
  // Tombstoned bytes dominate: repack. The threshold is byte-based (not
  // record-based) so a few huge deletes trigger as readily as many small
  // ones.
  if (dead_bytes_ >= kCompactMinDeadBytes && dead_bytes_ >= live_bytes_) {
    Compact();
  }
}

void BucketStore::Compact() {
  std::vector<std::shared_ptr<Buffer>> old_segments;
  old_segments.swap(segments_);
  head_used_ = 0;
  live_bytes_ = 0;
  // Ascending key order: the packed layout (and therefore any future
  // whole-segment stream) is deterministic.
  for (uint64_t key : SortedKeys()) {
    auto it = index_.find(key);
    BufferView packed = Intern(it->second.span());
    live_bytes_ += packed.size();
    it->second = std::move(packed);
  }
  // old_segments dies here unless outstanding views still pin entries.
  dead_bytes_ = 0;
  ++compactions_;
}

BucketStore::Stats BucketStore::GetStats() const {
  Stats s;
  s.live_records = index_.size();
  s.live_bytes = live_bytes_;
  s.dead_bytes = dead_bytes_;
  for (const auto& seg : segments_) s.arena_bytes += seg->capacity();
  s.segments = segments_.size();
  s.compactions = compactions_;
  return s;
}

void BucketStore::Clear() {
  index_.clear();
  segments_.clear();
  head_used_ = 0;
  live_bytes_ = 0;
  dead_bytes_ = 0;
}

std::vector<uint64_t> BucketStore::SortedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(index_.size());
  for (const auto& [key, view] : index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace lhrs::store
