// Runtime kernel-tier selection (DESIGN.md §15).
//
// The tier list is assembled from what CMake compiled in (feature-checked
// -m flags set LHRS_HAVE_KERNELS_*) filtered by what the running CPU
// supports (__builtin_cpu_supports on x86; NEON is unconditional on
// aarch64). Selection happens once, on first use, so the whole parity
// path — encode, Δ-fold, degraded read, recovery decode — rides a single
// indirect call with no per-call branching.

#include "gf/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "gf/kernels_internal.h"

namespace lhrs {
namespace {

using gfk::kKernelsScalar;
using gfk::kKernelsWordwise;

/// Compiled-in tiers usable on this CPU, worst to best.
std::vector<const GfKernels*> DetectAvailable() {
  std::vector<const GfKernels*> tiers = {&kKernelsScalar,
                                         &kKernelsWordwise};
#if defined(LHRS_HAVE_KERNELS_SSSE3)
  if (__builtin_cpu_supports("ssse3")) tiers.push_back(&gfk::kKernelsSsse3);
#endif
#if defined(LHRS_HAVE_KERNELS_AVX2)
  if (__builtin_cpu_supports("avx2")) tiers.push_back(&gfk::kKernelsAvx2);
#endif
#if defined(LHRS_HAVE_KERNELS_NEON)
  tiers.push_back(&gfk::kKernelsNeon);
#endif
  return tiers;
}

const std::vector<const GfKernels*>& Available() {
  static const std::vector<const GfKernels*> kTiers = DetectAvailable();
  return kTiers;
}

/// Startup selection: LHRS_KERNEL_ISA if usable, else the best tier.
/// "scalar" is honored but never auto-selected — it exists as the pinned
/// floor, not a production path.
const GfKernels* SelectAtStartup() {
  const std::vector<const GfKernels*>& tiers = Available();
  const GfKernels* best = tiers.back();
  const char* env = std::getenv("LHRS_KERNEL_ISA");
  if (env == nullptr || env[0] == '\0') return best;
  const std::string_view want(env);
  if (want == "native") return best;
  for (const GfKernels* t : tiers) {
    if (want == t->name) return t;
  }
  std::fprintf(stderr,
               "lhrs: LHRS_KERNEL_ISA=%s is not a usable kernel tier on "
               "this machine; using \"%s\"\n",
               env, best->name);
  return best;
}

std::atomic<const GfKernels*> g_forced{nullptr};

}  // namespace

const GfKernels& ActiveKernels() {
  const GfKernels* forced = g_forced.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const GfKernels* const kActive = SelectAtStartup();
  return *kActive;
}

const GfKernels* KernelsByName(std::string_view name) {
  for (const GfKernels* t : Available()) {
    if (name == t->name) return t;
  }
  return nullptr;
}

std::vector<const GfKernels*> AvailableKernels() { return Available(); }

void ForceActiveKernelsForTesting(const GfKernels* kernels) {
  g_forced.store(kernels, std::memory_order_release);
}

}  // namespace lhrs
