#include "gf/gf65536.h"

#include "common/logging.h"
#include "gf/gf.h"
#include "gf/kernels.h"

namespace lhrs {

const GF65536::Tables& GF65536::tables() {
  static const Tables* kTables = [] {
    auto* t = new Tables();
    uint32_t x = 1;
    for (uint32_t i = 0; i < 65535; ++i) {
      t->exp[i] = static_cast<uint16_t>(x);
      t->log[x] = static_cast<uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= kPolynomial;
    }
    t->log[0] = 0;  // Sentinel; callers must not take log(0).
    return t;
  }();
  return *kTables;
}

GF65536::Symbol GF65536::Div(Symbol a, Symbol b) {
  LHRS_CHECK_NE(b, 0) << "GF65536 division by zero";
  if (a == 0) return 0;
  const Tables& t = tables();
  uint32_t d = t.log[a] + 65535 - t.log[b];
  if (d >= 65535) d -= 65535;
  return t.exp[d];
}

GF65536::Symbol GF65536::Inv(Symbol a) {
  LHRS_CHECK_NE(a, 0) << "GF65536 inverse of zero";
  const Tables& t = tables();
  uint32_t e = 65535 - t.log[a];
  if (e == 65535) e = 0;
  return t.exp[e];
}

uint32_t GF65536::Log(Symbol a) {
  LHRS_CHECK_NE(a, 0) << "GF65536 log of zero";
  return tables().log[a];
}

void GF65536::MulAddBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                           Symbol coeff) {
  LHRS_CHECK_EQ(n % 2, 0u) << "GF65536 buffers must hold whole symbols";
  if (coeff == 0 || n == 0) return;
  const GfKernels& k = ActiveKernels();
  if (coeff == 1) {
    k.xor_buf(dst, src, n);
    return;
  }
  k.mul_add_16(dst, src, n, coeff);
}

void GF65536::MulAddBufferByteReference(uint8_t* dst, const uint8_t* src,
                                        size_t n, Symbol coeff) {
  LHRS_CHECK_EQ(n % 2, 0u) << "GF65536 buffers must hold whole symbols";
  KernelsByName("scalar")->mul_add_16(dst, src, n, coeff);
}

void GF65536::MulAddRow(uint8_t* dst, const uint8_t* const* srcs,
                        const Symbol* coeffs, size_t num_srcs, size_t n) {
  LHRS_CHECK_EQ(n % 2, 0u) << "GF65536 buffers must hold whole symbols";
  if (num_srcs == 0 || n == 0) return;
  ActiveKernels().matrix_row_apply_16(dst, srcs, coeffs, num_srcs, n);
}

}  // namespace lhrs
