// SSSE3 kernel tier: 4-bit split-table PSHUFB multiply, 16-byte vectors.
//
// The GF(2^8) product of one byte b with a fixed coefficient c splits as
// c*b = lo[b & 15] ^ hi[b >> 4] (linearity of GF(2^w) multiplication over
// XOR), so two 16-entry tables per coefficient turn PSHUFB into sixteen
// simultaneous table lookups — the Jerasure/GF-complete/ISA-L technique
// this tier reproduces. GF(2^16) splits each symbol into four nibbles and
// keeps the product's low and high bytes in separate registers.
//
// This translation unit is compiled with -mssse3 and must only be entered
// after runtime CPU detection (kernels.cc); nothing here may be called on
// a CPU without SSSE3.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "gf/kernels_internal.h"

#if defined(__SSSE3__)

#include <tmmintrin.h>

namespace lhrs::gfk {
namespace {

inline __m128i Mul16Bytes(__m128i v, __m128i tlo, __m128i thi,
                          __m128i nib_mask) {
  const __m128i lo = _mm_and_si128(v, nib_mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), nib_mask);
  return _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                       _mm_shuffle_epi8(thi, hi));
}

void Ssse3Xor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const uint8_t* s = src + i;
    uint8_t* d = dst + i;
    __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d));
    __m128i d1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + 16));
    __m128i d2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + 32));
    __m128i d3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + 48));
    d0 = _mm_xor_si128(
        d0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s)));
    d1 = _mm_xor_si128(
        d1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 16)));
    d2 = _mm_xor_si128(
        d2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 32)));
    d3 = _mm_xor_si128(
        d3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 48)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d), d0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + 16), d1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + 32), d2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + 48), d3);
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void Ssse3MulAdd8(uint8_t* dst, const uint8_t* src, size_t n,
                  uint8_t coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    Ssse3Xor(dst, src, n);
    return;
  }
  Nib8Tables t;
  BuildNib8(coeff, &t);
  const __m128i tlo = _mm_loadu_si128(reinterpret_cast<__m128i*>(t.lo));
  const __m128i thi = _mm_loadu_si128(reinterpret_cast<__m128i*>(t.hi));
  const __m128i nib_mask = _mm_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i s0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i));
    const __m128i s1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i + 16));
    __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i d1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + i + 16));
    d0 = _mm_xor_si128(d0, Mul16Bytes(s0, tlo, thi, nib_mask));
    d1 = _mm_xor_si128(d1, Mul16Bytes(s1, tlo, thi, nib_mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), d1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    d = _mm_xor_si128(d, Mul16Bytes(s, tlo, thi, nib_mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  MulAdd8TailNib(dst + i, src + i, n - i, t);
}

/// Registers for one coefficient's GF(2^16) nibble tables.
struct Nib16Regs {
  __m128i lo[4];  // Low product byte, per nibble position.
  __m128i hi[4];  // High product byte.
};

inline void LoadNib16(const Nib16Tables& t, Nib16Regs* r) {
  for (int p = 0; p < 4; ++p) {
    r->lo[p] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(t.prod_lo[p]));
    r->hi[p] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(t.prod_hi[p]));
  }
}

/// Multiplies 16 symbols held as separated byte planes (`lo_b` = the low
/// byte of each symbol, `hi_b` = the high byte) by the table coefficient,
/// returning the product planes through *out_lo / *out_hi.
inline void Mul16Symbols(__m128i lo_b, __m128i hi_b, const Nib16Regs& r,
                         __m128i nib_mask, __m128i* out_lo,
                         __m128i* out_hi) {
  const __m128i n0 = _mm_and_si128(lo_b, nib_mask);
  const __m128i n1 = _mm_and_si128(_mm_srli_epi16(lo_b, 4), nib_mask);
  const __m128i n2 = _mm_and_si128(hi_b, nib_mask);
  const __m128i n3 = _mm_and_si128(_mm_srli_epi16(hi_b, 4), nib_mask);
  *out_lo = _mm_xor_si128(
      _mm_xor_si128(_mm_shuffle_epi8(r.lo[0], n0),
                    _mm_shuffle_epi8(r.lo[1], n1)),
      _mm_xor_si128(_mm_shuffle_epi8(r.lo[2], n2),
                    _mm_shuffle_epi8(r.lo[3], n3)));
  *out_hi = _mm_xor_si128(
      _mm_xor_si128(_mm_shuffle_epi8(r.hi[0], n0),
                    _mm_shuffle_epi8(r.hi[1], n1)),
      _mm_xor_si128(_mm_shuffle_epi8(r.hi[2], n2),
                    _mm_shuffle_epi8(r.hi[3], n3)));
}

void Ssse3MulAdd16(uint8_t* dst, const uint8_t* src, size_t n,
                   uint16_t coeff) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    Ssse3Xor(dst, src, n);
    return;
  }
  Nib16Tables t;
  BuildNib16(coeff, &t);
  Nib16Regs r;
  LoadNib16(t, &r);
  const __m128i nib_mask = _mm_set1_epi8(0x0F);
  const __m128i byte_mask = _mm_set1_epi16(0x00FF);
  size_t i = 0;
  // 16 symbols (32 bytes) per iteration: deinterleave the symbol stream
  // into a low-byte plane and a high-byte plane (pack of masked/shifted
  // halves), multiply plane-wise through the nibble tables, re-interleave
  // with unpack, and XOR into dst.
  for (; i + 32 <= n; i += 32) {
    const __m128i v0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i));
    const __m128i v1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i lo_b = _mm_packus_epi16(_mm_and_si128(v0, byte_mask),
                                          _mm_and_si128(v1, byte_mask));
    const __m128i hi_b = _mm_packus_epi16(_mm_srli_epi16(v0, 8),
                                          _mm_srli_epi16(v1, 8));
    __m128i prod_lo, prod_hi;
    Mul16Symbols(lo_b, hi_b, r, nib_mask, &prod_lo, &prod_hi);
    __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i d1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(dst + i + 16));
    d0 = _mm_xor_si128(d0, _mm_unpacklo_epi8(prod_lo, prod_hi));
    d1 = _mm_xor_si128(d1, _mm_unpackhi_epi8(prod_lo, prod_hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), d1);
  }
  MulAdd16TailNib(dst + i, src + i, n - i, t);
}

// Sources are folded in batches of kFusedBatch so the per-source tables
// live in a fixed stack footprint; within a batch each 32-byte dst block
// is loaded and stored exactly once while every source streams through.
constexpr size_t kFusedBatch = 16;

void Ssse3RowApply8(uint8_t* dst, const uint8_t* const* srcs,
                    const uint8_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t base = 0; base < num_srcs; base += kFusedBatch) {
    const size_t batch = std::min(kFusedBatch, num_srcs - base);
    Nib8Tables tabs[kFusedBatch];
    const uint8_t* use[kFusedBatch];
    size_t used = 0;
    for (size_t s = 0; s < batch; ++s) {
      if (coeffs[base + s] == 0) continue;
      BuildNib8(coeffs[base + s], &tabs[used]);
      use[used] = srcs[base + s];
      ++used;
    }
    if (used == 0) continue;
    const __m128i nib_mask = _mm_set1_epi8(0x0F);
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      __m128i d0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(dst + i));
      __m128i d1 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(dst + i + 16));
      for (size_t s = 0; s < used; ++s) {
        const __m128i tlo = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(tabs[s].lo));
        const __m128i thi = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(tabs[s].hi));
        const __m128i s0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(use[s] + i));
        const __m128i s1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(use[s] + i + 16));
        d0 = _mm_xor_si128(d0, Mul16Bytes(s0, tlo, thi, nib_mask));
        d1 = _mm_xor_si128(d1, Mul16Bytes(s1, tlo, thi, nib_mask));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), d1);
    }
    for (size_t s = 0; s < used; ++s) {
      MulAdd8TailNib(dst + i, use[s] + i, n - i, tabs[s]);
    }
  }
}

void Ssse3RowApply16(uint8_t* dst, const uint8_t* const* srcs,
                     const uint16_t* coeffs, size_t num_srcs, size_t n) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  for (size_t base = 0; base < num_srcs; base += kFusedBatch) {
    const size_t batch = std::min(kFusedBatch, num_srcs - base);
    Nib16Tables tabs[kFusedBatch];
    const uint8_t* use[kFusedBatch];
    size_t used = 0;
    for (size_t s = 0; s < batch; ++s) {
      if (coeffs[base + s] == 0) continue;
      BuildNib16(coeffs[base + s], &tabs[used]);
      use[used] = srcs[base + s];
      ++used;
    }
    if (used == 0) continue;
    const __m128i nib_mask = _mm_set1_epi8(0x0F);
    const __m128i byte_mask = _mm_set1_epi16(0x00FF);
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      __m128i d0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(dst + i));
      __m128i d1 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(dst + i + 16));
      for (size_t s = 0; s < used; ++s) {
        Nib16Regs r;
        LoadNib16(tabs[s], &r);
        const __m128i v0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(use[s] + i));
        const __m128i v1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(use[s] + i + 16));
        const __m128i lo_b = _mm_packus_epi16(
            _mm_and_si128(v0, byte_mask), _mm_and_si128(v1, byte_mask));
        const __m128i hi_b = _mm_packus_epi16(_mm_srli_epi16(v0, 8),
                                              _mm_srli_epi16(v1, 8));
        __m128i prod_lo, prod_hi;
        Mul16Symbols(lo_b, hi_b, r, nib_mask, &prod_lo, &prod_hi);
        d0 = _mm_xor_si128(d0, _mm_unpacklo_epi8(prod_lo, prod_hi));
        d1 = _mm_xor_si128(d1, _mm_unpackhi_epi8(prod_lo, prod_hi));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), d1);
    }
    for (size_t s = 0; s < used; ++s) {
      MulAdd16TailNib(dst + i, use[s] + i, n - i, tabs[s]);
    }
  }
}

}  // namespace

const GfKernels kKernelsSsse3 = {
    "ssse3",        Ssse3Xor,       Ssse3MulAdd8,
    Ssse3MulAdd16,  Ssse3RowApply8, Ssse3RowApply16,
};

}  // namespace lhrs::gfk

#endif  // defined(__SSSE3__)
