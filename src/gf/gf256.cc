#include "gf/gf256.h"

#include "common/logging.h"
#include "gf/gf.h"
#include "gf/kernels.h"

namespace lhrs {

const GF256::Tables& GF256::tables() {
  static const Tables* kTables = [] {
    auto* t = new Tables();
    uint32_t x = 1;
    for (uint32_t i = 0; i < 255; ++i) {
      t->exp[i] = static_cast<uint8_t>(x);
      t->log[x] = static_cast<uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPolynomial;
    }
    for (uint32_t i = 255; i < 512; ++i) t->exp[i] = t->exp[i - 255];
    t->log[0] = 0;  // Sentinel; callers must not take log(0).
    return t;
  }();
  return *kTables;
}

GF256::Symbol GF256::Div(Symbol a, Symbol b) {
  LHRS_CHECK_NE(b, 0) << "GF256 division by zero";
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

GF256::Symbol GF256::Inv(Symbol a) {
  LHRS_CHECK_NE(a, 0) << "GF256 inverse of zero";
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

uint32_t GF256::Log(Symbol a) {
  LHRS_CHECK_NE(a, 0) << "GF256 log of zero";
  return tables().log[a];
}

void GF256::MulAddBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                         Symbol coeff) {
  if (coeff == 0 || n == 0) return;
  const GfKernels& k = ActiveKernels();
  if (coeff == 1) {  // XOR fast path (parity column 0).
    k.xor_buf(dst, src, n);
    return;
  }
  k.mul_add_8(dst, src, n, coeff);
}

void GF256::MulAddBufferByteReference(uint8_t* dst, const uint8_t* src,
                                      size_t n, Symbol coeff) {
  // Always the pinned "scalar" tier, independent of the active selection.
  KernelsByName("scalar")->mul_add_8(dst, src, n, coeff);
}

void GF256::MulAddRow(uint8_t* dst, const uint8_t* const* srcs,
                      const Symbol* coeffs, size_t num_srcs, size_t n) {
  if (num_srcs == 0 || n == 0) return;
  ActiveKernels().matrix_row_apply_8(dst, srcs, coeffs, num_srcs, n);
}

void GF256::MulBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                      Symbol coeff) {
  if (n == 0) return;
  if (coeff == 0) {
    for (size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (coeff == 1) {
    for (size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  uint8_t row[256];
  row[0] = 0;
  const Tables& t = tables();
  const uint32_t lc = t.log[coeff];
  for (uint32_t b = 1; b < 256; ++b) row[b] = t.exp[lc + t.log[b]];
  for (size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace lhrs
