#include "gf/gf256.h"

#include <cstring>

#include "common/logging.h"
#include "gf/gf.h"

namespace lhrs {

const GF256::Tables& GF256::tables() {
  static const Tables* kTables = [] {
    auto* t = new Tables();
    uint32_t x = 1;
    for (uint32_t i = 0; i < 255; ++i) {
      t->exp[i] = static_cast<uint8_t>(x);
      t->log[x] = static_cast<uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPolynomial;
    }
    for (uint32_t i = 255; i < 512; ++i) t->exp[i] = t->exp[i - 255];
    t->log[0] = 0;  // Sentinel; callers must not take log(0).
    return t;
  }();
  return *kTables;
}

GF256::Symbol GF256::Div(Symbol a, Symbol b) {
  LHRS_CHECK_NE(b, 0) << "GF256 division by zero";
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

GF256::Symbol GF256::Inv(Symbol a) {
  LHRS_CHECK_NE(a, 0) << "GF256 inverse of zero";
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

uint32_t GF256::Log(Symbol a) {
  LHRS_CHECK_NE(a, 0) << "GF256 log of zero";
  return tables().log[a];
}

namespace {

/// Eight product-row lookups packed into one little-endian word.
inline uint64_t GatherRow8(const uint8_t* src, const uint8_t* row) {
  return uint64_t{row[src[0]]} | uint64_t{row[src[1]]} << 8 |
         uint64_t{row[src[2]]} << 16 | uint64_t{row[src[3]]} << 24 |
         uint64_t{row[src[4]]} << 32 | uint64_t{row[src[5]]} << 40 |
         uint64_t{row[src[6]]} << 48 | uint64_t{row[src[7]]} << 56;
}

}  // namespace

void GF256::MulAddBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                         Symbol coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {  // XOR fast path (parity column 0).
    XorBuffer(dst, src, n);
    return;
  }
  // Materialise the product row for this coefficient: row[b] = coeff * b.
  // It stays L1-resident across the whole buffer.
  uint8_t row[256];
  row[0] = 0;
  const Tables& t = tables();
  const uint32_t lc = t.log[coeff];
  for (uint32_t b = 1; b < 256; ++b) row[b] = t.exp[lc + t.log[b]];
  size_t i = 0;
  // The gathers are inherently byte lookups, but accumulating them into a
  // word halves the loads/stores on dst: one read-xor-write of 8 bytes
  // instead of eight.
  for (; i + 16 <= n; i += 16) {
    uint64_t d0, d1;
    std::memcpy(&d0, dst + i, 8);
    std::memcpy(&d1, dst + i + 8, 8);
    d0 ^= GatherRow8(src + i, row);
    d1 ^= GatherRow8(src + i + 8, row);
    std::memcpy(dst + i, &d0, 8);
    std::memcpy(dst + i + 8, &d1, 8);
  }
  for (; i + 8 <= n; i += 8) {
    uint64_t d;
    std::memcpy(&d, dst + i, 8);
    d ^= GatherRow8(src + i, row);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
void GF256::MulAddBufferByteReference(uint8_t* dst, const uint8_t* src,
                                      size_t n, Symbol coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    XorBufferByteReference(dst, src, n);
    return;
  }
  uint8_t row[256];
  row[0] = 0;
  const Tables& t = tables();
  const uint32_t lc = t.log[coeff];
  for (uint32_t b = 1; b < 256; ++b) row[b] = t.exp[lc + t.log[b]];
  for (size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void GF256::MulBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                      Symbol coeff) {
  if (n == 0) return;
  if (coeff == 0) {
    for (size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (coeff == 1) {
    for (size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  uint8_t row[256];
  row[0] = 0;
  const Tables& t = tables();
  const uint32_t lc = t.log[coeff];
  for (uint32_t b = 1; b < 256; ++b) row[b] = t.exp[lc + t.log[b]];
  for (size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace lhrs
