// AVX2 kernel tier: 4-bit split-table VPSHUFB multiply, 32-byte vectors.
//
// Same split-table math as the SSSE3 tier (see kernels_ssse3.cc), twice
// the width: VPSHUFB shuffles per 128-bit lane, so each 16-entry nibble
// table is broadcast into both lanes and the lane-local pack/unpack pairs
// used by the GF(2^16) plane separation cancel each other exactly.
//
// Compiled with -mavx2; only entered after runtime CPU detection.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "gf/kernels_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace lhrs::gfk {
namespace {

inline __m256i Broadcast128(const uint8_t* table16) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(table16)));
}

inline __m256i Mul32Bytes(__m256i v, __m256i tlo, __m256i thi,
                          __m256i nib_mask) {
  const __m256i lo = _mm256_and_si256(v, nib_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib_mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                          _mm256_shuffle_epi8(thi, hi));
}

void Avx2Xor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    const uint8_t* s = src + i;
    uint8_t* d = dst + i;
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + 32));
    __m256i d2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + 64));
    __m256i d3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + 96));
    d0 = _mm256_xor_si256(
        d0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s)));
    d1 = _mm256_xor_si256(
        d1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 32)));
    d2 = _mm256_xor_si256(
        d2, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 64)));
    d3 = _mm256_xor_si256(
        d3, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 96)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + 32), d1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + 64), d2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + 96), d3);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void Avx2MulAdd8(uint8_t* dst, const uint8_t* src, size_t n, uint8_t coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    Avx2Xor(dst, src, n);
    return;
  }
  Nib8Tables t;
  BuildNib8(coeff, &t);
  const __m256i tlo = Broadcast128(t.lo);
  const __m256i thi = Broadcast128(t.hi);
  const __m256i nib_mask = _mm256_set1_epi8(0x0F);
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(d0, Mul32Bytes(s0, tlo, thi, nib_mask));
    d1 = _mm256_xor_si256(d1, Mul32Bytes(s1, tlo, thi, nib_mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    d = _mm256_xor_si256(d, Mul32Bytes(s, tlo, thi, nib_mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  MulAdd8TailNib(dst + i, src + i, n - i, t);
}

struct Nib16Regs {
  __m256i lo[4];
  __m256i hi[4];
};

inline void LoadNib16(const Nib16Tables& t, Nib16Regs* r) {
  for (int p = 0; p < 4; ++p) {
    r->lo[p] = Broadcast128(t.prod_lo[p]);
    r->hi[p] = Broadcast128(t.prod_hi[p]);
  }
}

inline void Mul32Symbols(__m256i lo_b, __m256i hi_b, const Nib16Regs& r,
                         __m256i nib_mask, __m256i* out_lo,
                         __m256i* out_hi) {
  const __m256i n0 = _mm256_and_si256(lo_b, nib_mask);
  const __m256i n1 = _mm256_and_si256(_mm256_srli_epi16(lo_b, 4), nib_mask);
  const __m256i n2 = _mm256_and_si256(hi_b, nib_mask);
  const __m256i n3 = _mm256_and_si256(_mm256_srli_epi16(hi_b, 4), nib_mask);
  *out_lo = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_shuffle_epi8(r.lo[0], n0),
                       _mm256_shuffle_epi8(r.lo[1], n1)),
      _mm256_xor_si256(_mm256_shuffle_epi8(r.lo[2], n2),
                       _mm256_shuffle_epi8(r.lo[3], n3)));
  *out_hi = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_shuffle_epi8(r.hi[0], n0),
                       _mm256_shuffle_epi8(r.hi[1], n1)),
      _mm256_xor_si256(_mm256_shuffle_epi8(r.hi[2], n2),
                       _mm256_shuffle_epi8(r.hi[3], n3)));
}

void Avx2MulAdd16(uint8_t* dst, const uint8_t* src, size_t n,
                  uint16_t coeff) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    Avx2Xor(dst, src, n);
    return;
  }
  Nib16Tables t;
  BuildNib16(coeff, &t);
  Nib16Regs r;
  LoadNib16(t, &r);
  const __m256i nib_mask = _mm256_set1_epi8(0x0F);
  const __m256i byte_mask = _mm256_set1_epi16(0x00FF);
  size_t i = 0;
  // 32 symbols (64 bytes) per iteration. _mm256_packus_epi16 and the
  // unpack pair both operate per lane, so the deinterleave/reinterleave
  // round-trips without any cross-lane fixup.
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i lo_b = _mm256_packus_epi16(
        _mm256_and_si256(v0, byte_mask), _mm256_and_si256(v1, byte_mask));
    const __m256i hi_b = _mm256_packus_epi16(_mm256_srli_epi16(v0, 8),
                                             _mm256_srli_epi16(v1, 8));
    __m256i prod_lo, prod_hi;
    Mul32Symbols(lo_b, hi_b, r, nib_mask, &prod_lo, &prod_hi);
    __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(d0, _mm256_unpacklo_epi8(prod_lo, prod_hi));
    d1 = _mm256_xor_si256(d1, _mm256_unpackhi_epi8(prod_lo, prod_hi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  MulAdd16TailNib(dst + i, src + i, n - i, t);
}

constexpr size_t kFusedBatch = 16;

void Avx2RowApply8(uint8_t* dst, const uint8_t* const* srcs,
                   const uint8_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t base = 0; base < num_srcs; base += kFusedBatch) {
    const size_t batch = std::min(kFusedBatch, num_srcs - base);
    Nib8Tables tabs[kFusedBatch];
    __m256i tlo[kFusedBatch], thi[kFusedBatch];
    const uint8_t* use[kFusedBatch];
    size_t used = 0;
    for (size_t s = 0; s < batch; ++s) {
      if (coeffs[base + s] == 0) continue;
      BuildNib8(coeffs[base + s], &tabs[used]);
      tlo[used] = Broadcast128(tabs[used].lo);
      thi[used] = Broadcast128(tabs[used].hi);
      use[used] = srcs[base + s];
      ++used;
    }
    if (used == 0) continue;
    const __m256i nib_mask = _mm256_set1_epi8(0x0F);
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
      __m256i d0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      __m256i d1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(dst + i + 32));
      for (size_t s = 0; s < used; ++s) {
        const __m256i s0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(use[s] + i));
        const __m256i s1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(use[s] + i + 32));
        d0 = _mm256_xor_si256(d0, Mul32Bytes(s0, tlo[s], thi[s], nib_mask));
        d1 = _mm256_xor_si256(d1, Mul32Bytes(s1, tlo[s], thi[s], nib_mask));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
    }
    for (; i + 32 <= n; i += 32) {
      __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      for (size_t s = 0; s < used; ++s) {
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(use[s] + i));
        d = _mm256_xor_si256(d, Mul32Bytes(sv, tlo[s], thi[s], nib_mask));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
    }
    for (size_t s = 0; s < used; ++s) {
      MulAdd8TailNib(dst + i, use[s] + i, n - i, tabs[s]);
    }
  }
}

void Avx2RowApply16(uint8_t* dst, const uint8_t* const* srcs,
                    const uint16_t* coeffs, size_t num_srcs, size_t n) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  for (size_t base = 0; base < num_srcs; base += kFusedBatch) {
    const size_t batch = std::min(kFusedBatch, num_srcs - base);
    Nib16Tables tabs[kFusedBatch];
    const uint8_t* use[kFusedBatch];
    size_t used = 0;
    for (size_t s = 0; s < batch; ++s) {
      if (coeffs[base + s] == 0) continue;
      BuildNib16(coeffs[base + s], &tabs[used]);
      use[used] = srcs[base + s];
      ++used;
    }
    if (used == 0) continue;
    const __m256i nib_mask = _mm256_set1_epi8(0x0F);
    const __m256i byte_mask = _mm256_set1_epi16(0x00FF);
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
      __m256i d0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      __m256i d1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(dst + i + 32));
      for (size_t s = 0; s < used; ++s) {
        Nib16Regs r;
        LoadNib16(tabs[s], &r);
        const __m256i v0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(use[s] + i));
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(use[s] + i + 32));
        const __m256i lo_b =
            _mm256_packus_epi16(_mm256_and_si256(v0, byte_mask),
                                _mm256_and_si256(v1, byte_mask));
        const __m256i hi_b = _mm256_packus_epi16(
            _mm256_srli_epi16(v0, 8), _mm256_srli_epi16(v1, 8));
        __m256i prod_lo, prod_hi;
        Mul32Symbols(lo_b, hi_b, r, nib_mask, &prod_lo, &prod_hi);
        d0 = _mm256_xor_si256(d0, _mm256_unpacklo_epi8(prod_lo, prod_hi));
        d1 = _mm256_xor_si256(d1, _mm256_unpackhi_epi8(prod_lo, prod_hi));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
    }
    for (size_t s = 0; s < used; ++s) {
      MulAdd16TailNib(dst + i, use[s] + i, n - i, tabs[s]);
    }
  }
}

}  // namespace

const GfKernels kKernelsAvx2 = {
    "avx2",        Avx2Xor,       Avx2MulAdd8,
    Avx2MulAdd16,  Avx2RowApply8, Avx2RowApply16,
};

}  // namespace lhrs::gfk

#endif  // defined(__AVX2__)
