// NEON kernel tier (aarch64): 4-bit split-table TBL multiply.
//
// Same split-table math as the x86 tiers (see kernels_ssse3.cc) with
// vqtbl1q_u8 playing PSHUFB's role. The GF(2^16) plane separation comes
// for free from the vld2q/vst2q de-/re-interleaving loads. NEON is
// architecturally mandatory on aarch64, so this tier needs no runtime
// feature check — it is simply the best tier on ARM builds.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>

#include "gf/kernels_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace lhrs::gfk {
namespace {

inline uint8x16_t Mul16Bytes(uint8x16_t v, uint8x16_t tlo, uint8x16_t thi) {
  const uint8x16_t nib_mask = vdupq_n_u8(0x0F);
  const uint8x16_t lo = vandq_u8(v, nib_mask);
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  return veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
}

void NeonXor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    uint8x16x4_t d = vld1q_u8_x4(dst + i);
    const uint8x16x4_t s = vld1q_u8_x4(src + i);
    d.val[0] = veorq_u8(d.val[0], s.val[0]);
    d.val[1] = veorq_u8(d.val[1], s.val[1]);
    d.val[2] = veorq_u8(d.val[2], s.val[2]);
    d.val[3] = veorq_u8(d.val[3], s.val[3]);
    vst1q_u8_x4(dst + i, d);
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void NeonMulAdd8(uint8_t* dst, const uint8_t* src, size_t n, uint8_t coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    NeonXor(dst, src, n);
    return;
  }
  Nib8Tables t;
  BuildNib8(coeff, &t);
  const uint8x16_t tlo = vld1q_u8(t.lo);
  const uint8x16_t thi = vld1q_u8(t.hi);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint8x16_t d0 = vld1q_u8(dst + i);
    uint8x16_t d1 = vld1q_u8(dst + i + 16);
    d0 = veorq_u8(d0, Mul16Bytes(vld1q_u8(src + i), tlo, thi));
    d1 = veorq_u8(d1, Mul16Bytes(vld1q_u8(src + i + 16), tlo, thi));
    vst1q_u8(dst + i, d0);
    vst1q_u8(dst + i + 16, d1);
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               Mul16Bytes(vld1q_u8(src + i), tlo, thi)));
  }
  MulAdd8TailNib(dst + i, src + i, n - i, t);
}

struct Nib16Regs {
  uint8x16_t lo[4];
  uint8x16_t hi[4];
};

inline void LoadNib16(const Nib16Tables& t, Nib16Regs* r) {
  for (int p = 0; p < 4; ++p) {
    r->lo[p] = vld1q_u8(t.prod_lo[p]);
    r->hi[p] = vld1q_u8(t.prod_hi[p]);
  }
}

/// Multiplies 16 symbols given as separated byte planes.
inline void Mul16Symbols(uint8x16_t lo_b, uint8x16_t hi_b,
                         const Nib16Regs& r, uint8x16_t* out_lo,
                         uint8x16_t* out_hi) {
  const uint8x16_t nib_mask = vdupq_n_u8(0x0F);
  const uint8x16_t n0 = vandq_u8(lo_b, nib_mask);
  const uint8x16_t n1 = vshrq_n_u8(lo_b, 4);
  const uint8x16_t n2 = vandq_u8(hi_b, nib_mask);
  const uint8x16_t n3 = vshrq_n_u8(hi_b, 4);
  *out_lo = veorq_u8(
      veorq_u8(vqtbl1q_u8(r.lo[0], n0), vqtbl1q_u8(r.lo[1], n1)),
      veorq_u8(vqtbl1q_u8(r.lo[2], n2), vqtbl1q_u8(r.lo[3], n3)));
  *out_hi = veorq_u8(
      veorq_u8(vqtbl1q_u8(r.hi[0], n0), vqtbl1q_u8(r.hi[1], n1)),
      veorq_u8(vqtbl1q_u8(r.hi[2], n2), vqtbl1q_u8(r.hi[3], n3)));
}

void NeonMulAdd16(uint8_t* dst, const uint8_t* src, size_t n,
                  uint16_t coeff) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    NeonXor(dst, src, n);
    return;
  }
  Nib16Tables t;
  BuildNib16(coeff, &t);
  Nib16Regs r;
  LoadNib16(t, &r);
  size_t i = 0;
  // 16 symbols (32 bytes) per iteration: vld2q deinterleaves the symbol
  // stream straight into low-byte / high-byte planes.
  for (; i + 32 <= n; i += 32) {
    const uint8x16x2_t s = vld2q_u8(src + i);
    uint8x16_t prod_lo, prod_hi;
    Mul16Symbols(s.val[0], s.val[1], r, &prod_lo, &prod_hi);
    uint8x16x2_t d = vld2q_u8(dst + i);
    d.val[0] = veorq_u8(d.val[0], prod_lo);
    d.val[1] = veorq_u8(d.val[1], prod_hi);
    vst2q_u8(dst + i, d);
  }
  MulAdd16TailNib(dst + i, src + i, n - i, t);
}

constexpr size_t kFusedBatch = 16;

void NeonRowApply8(uint8_t* dst, const uint8_t* const* srcs,
                   const uint8_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t base = 0; base < num_srcs; base += kFusedBatch) {
    const size_t batch = std::min(kFusedBatch, num_srcs - base);
    Nib8Tables tabs[kFusedBatch];
    uint8x16_t tlo[kFusedBatch], thi[kFusedBatch];
    const uint8_t* use[kFusedBatch];
    size_t used = 0;
    for (size_t s = 0; s < batch; ++s) {
      if (coeffs[base + s] == 0) continue;
      BuildNib8(coeffs[base + s], &tabs[used]);
      tlo[used] = vld1q_u8(tabs[used].lo);
      thi[used] = vld1q_u8(tabs[used].hi);
      use[used] = srcs[base + s];
      ++used;
    }
    if (used == 0) continue;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      uint8x16_t d0 = vld1q_u8(dst + i);
      uint8x16_t d1 = vld1q_u8(dst + i + 16);
      for (size_t s = 0; s < used; ++s) {
        d0 = veorq_u8(d0, Mul16Bytes(vld1q_u8(use[s] + i), tlo[s], thi[s]));
        d1 = veorq_u8(
            d1, Mul16Bytes(vld1q_u8(use[s] + i + 16), tlo[s], thi[s]));
      }
      vst1q_u8(dst + i, d0);
      vst1q_u8(dst + i + 16, d1);
    }
    for (size_t s = 0; s < used; ++s) {
      MulAdd8TailNib(dst + i, use[s] + i, n - i, tabs[s]);
    }
  }
}

void NeonRowApply16(uint8_t* dst, const uint8_t* const* srcs,
                    const uint16_t* coeffs, size_t num_srcs, size_t n) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  for (size_t base = 0; base < num_srcs; base += kFusedBatch) {
    const size_t batch = std::min(kFusedBatch, num_srcs - base);
    Nib16Tables tabs[kFusedBatch];
    const uint8_t* use[kFusedBatch];
    size_t used = 0;
    for (size_t s = 0; s < batch; ++s) {
      if (coeffs[base + s] == 0) continue;
      BuildNib16(coeffs[base + s], &tabs[used]);
      use[used] = srcs[base + s];
      ++used;
    }
    if (used == 0) continue;
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      uint8x16x2_t d = vld2q_u8(dst + i);
      for (size_t s = 0; s < used; ++s) {
        Nib16Regs r;
        LoadNib16(tabs[s], &r);
        const uint8x16x2_t sv = vld2q_u8(use[s] + i);
        uint8x16_t prod_lo, prod_hi;
        Mul16Symbols(sv.val[0], sv.val[1], r, &prod_lo, &prod_hi);
        d.val[0] = veorq_u8(d.val[0], prod_lo);
        d.val[1] = veorq_u8(d.val[1], prod_hi);
      }
      vst2q_u8(dst + i, d);
    }
    for (size_t s = 0; s < used; ++s) {
      MulAdd16TailNib(dst + i, use[s] + i, n - i, tabs[s]);
    }
  }
}

}  // namespace

const GfKernels kKernelsNeon = {
    "neon",        NeonXor,       NeonMulAdd8,
    NeonMulAdd16,  NeonRowApply8, NeonRowApply16,
};

}  // namespace lhrs::gfk

#endif  // defined(__aarch64__)
