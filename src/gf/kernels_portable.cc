// The two portable kernel tiers.
//
// "scalar": the pinned byte-/symbol-wise loops. These are the correctness
// oracle for every other tier (kernel property tests assert byte-identical
// output) and the denominator of bench_t3's speedup columns, so they are
// pinned against auto-vectorization — without that, -O3 silently turns the
// "reference" into another SIMD kernel.
//
// "wordwise": PR 3's uint64-at-a-time kernels (XOR and the GF(2^8) product
// row gather), plus an 8-bit split-table GF(2^16) gather. The portable
// floor: selected when no SIMD tier is compiled in or supported.

#include <cassert>
#include <cstdint>
#include <cstring>

#include "gf/kernels_internal.h"

namespace lhrs::gfk {
namespace {

// --- scalar tier -----------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define LHRS_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define LHRS_NO_VECTORIZE
#endif

LHRS_NO_VECTORIZE
void ScalarXor(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

LHRS_NO_VECTORIZE
void ScalarMulAdd8(uint8_t* dst, const uint8_t* src, size_t n,
                   uint8_t coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    ScalarXor(dst, src, n);
    return;
  }
  uint8_t row[256];
  BuildRow8(coeff, row);
  for (size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

LHRS_NO_VECTORIZE
void ScalarMulAdd16(uint8_t* dst, const uint8_t* src, size_t n,
                    uint16_t coeff) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    ScalarXor(dst, src, n);
    return;
  }
  Split16Tables t;
  BuildSplit16(coeff, &t);
  for (size_t i = 0; i + 2 <= n; i += 2) {
    uint16_t s;
    std::memcpy(&s, src + i, 2);
    const uint16_t prod =
        static_cast<uint16_t>(t.lo[s & 0xFF] ^ t.hi[s >> 8]);
    uint16_t d;
    std::memcpy(&d, dst + i, 2);
    d ^= prod;
    std::memcpy(dst + i, &d, 2);
  }
}

void ScalarRowApply8(uint8_t* dst, const uint8_t* const* srcs,
                     const uint8_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t s = 0; s < num_srcs; ++s) {
    if (coeffs[s] == 0) continue;
    ScalarMulAdd8(dst, srcs[s], n, coeffs[s]);
  }
}

void ScalarRowApply16(uint8_t* dst, const uint8_t* const* srcs,
                      const uint16_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t s = 0; s < num_srcs; ++s) {
    if (coeffs[s] == 0) continue;
    ScalarMulAdd16(dst, srcs[s], n, coeffs[s]);
  }
}

// --- wordwise tier ---------------------------------------------------------

// 4-way unrolled word loop: 32 bytes per iteration. memcpy compiles to
// plain (possibly unaligned) word loads/stores on every target we care
// about, so this is alignment-agnostic; the 64-byte-aligned buffers from
// the storage layer take the fast path end to end.
void WordXor(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint64_t d0, d1, d2, d3, s0, s1, s2, s3;
    std::memcpy(&d0, dst + i, 8);
    std::memcpy(&d1, dst + i + 8, 8);
    std::memcpy(&d2, dst + i + 16, 8);
    std::memcpy(&d3, dst + i + 24, 8);
    std::memcpy(&s0, src + i, 8);
    std::memcpy(&s1, src + i + 8, 8);
    std::memcpy(&s2, src + i + 16, 8);
    std::memcpy(&s3, src + i + 24, 8);
    d0 ^= s0;
    d1 ^= s1;
    d2 ^= s2;
    d3 ^= s3;
    std::memcpy(dst + i, &d0, 8);
    std::memcpy(dst + i + 8, &d1, 8);
    std::memcpy(dst + i + 16, &d2, 8);
    std::memcpy(dst + i + 24, &d3, 8);
  }
  for (; i + 8 <= n; i += 8) {
    uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Eight product-row lookups packed into one little-endian word.
inline uint64_t GatherRow8(const uint8_t* src, const uint8_t* row) {
  return uint64_t{row[src[0]]} | uint64_t{row[src[1]]} << 8 |
         uint64_t{row[src[2]]} << 16 | uint64_t{row[src[3]]} << 24 |
         uint64_t{row[src[4]]} << 32 | uint64_t{row[src[5]]} << 40 |
         uint64_t{row[src[6]]} << 48 | uint64_t{row[src[7]]} << 56;
}

// The gathers are inherently byte lookups, but accumulating them into a
// word halves the loads/stores on dst: one read-xor-write of 8 bytes
// instead of eight. The 256-byte product row stays L1-resident.
void WordMulAdd8(uint8_t* dst, const uint8_t* src, size_t n, uint8_t coeff) {
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    WordXor(dst, src, n);
    return;
  }
  uint8_t row[256];
  BuildRow8(coeff, row);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint64_t d0, d1;
    std::memcpy(&d0, dst + i, 8);
    std::memcpy(&d1, dst + i + 8, 8);
    d0 ^= GatherRow8(src + i, row);
    d1 ^= GatherRow8(src + i + 8, row);
    std::memcpy(dst + i, &d0, 8);
    std::memcpy(dst + i + 8, &d1, 8);
  }
  for (; i + 8 <= n; i += 8) {
    uint64_t d;
    std::memcpy(&d, dst + i, 8);
    d ^= GatherRow8(src + i, row);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

/// Four split-table products (two 16-bit lookups each) packed into a word.
inline uint64_t GatherSplit16(const uint8_t* src, const Split16Tables& t) {
  uint16_t s0, s1, s2, s3;
  std::memcpy(&s0, src, 2);
  std::memcpy(&s1, src + 2, 2);
  std::memcpy(&s2, src + 4, 2);
  std::memcpy(&s3, src + 6, 2);
  return uint64_t{static_cast<uint16_t>(t.lo[s0 & 0xFF] ^ t.hi[s0 >> 8])} |
         uint64_t{static_cast<uint16_t>(t.lo[s1 & 0xFF] ^ t.hi[s1 >> 8])}
             << 16 |
         uint64_t{static_cast<uint16_t>(t.lo[s2 & 0xFF] ^ t.hi[s2 >> 8])}
             << 32 |
         uint64_t{static_cast<uint16_t>(t.lo[s3 & 0xFF] ^ t.hi[s3 >> 8])}
             << 48;
}

// 8-bit split tables (1 KiB, L1-resident) replace the log/exp walk of the
// archival GF(2^16) path: two lookups and one XOR per symbol with no
// zero-test branch, gathered four symbols per dst word.
void WordMulAdd16(uint8_t* dst, const uint8_t* src, size_t n,
                  uint16_t coeff) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  if (coeff == 0 || n == 0) return;
  if (coeff == 1) {
    WordXor(dst, src, n);
    return;
  }
  Split16Tables t;
  BuildSplit16(coeff, &t);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t d;
    std::memcpy(&d, dst + i, 8);
    d ^= GatherSplit16(src + i, t);
    std::memcpy(dst + i, &d, 8);
  }
  for (; i + 2 <= n; i += 2) {
    uint16_t s;
    std::memcpy(&s, src + i, 2);
    const uint16_t prod =
        static_cast<uint16_t>(t.lo[s & 0xFF] ^ t.hi[s >> 8]);
    uint16_t d;
    std::memcpy(&d, dst + i, 2);
    d ^= prod;
    std::memcpy(dst + i, &d, 2);
  }
}

void WordRowApply8(uint8_t* dst, const uint8_t* const* srcs,
                   const uint8_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t s = 0; s < num_srcs; ++s) {
    if (coeffs[s] == 0) continue;
    WordMulAdd8(dst, srcs[s], n, coeffs[s]);
  }
}

void WordRowApply16(uint8_t* dst, const uint8_t* const* srcs,
                    const uint16_t* coeffs, size_t num_srcs, size_t n) {
  for (size_t s = 0; s < num_srcs; ++s) {
    if (coeffs[s] == 0) continue;
    WordMulAdd16(dst, srcs[s], n, coeffs[s]);
  }
}

}  // namespace

const GfKernels kKernelsScalar = {
    "scalar",        ScalarXor,         ScalarMulAdd8,
    ScalarMulAdd16,  ScalarRowApply8,   ScalarRowApply16,
};

const GfKernels kKernelsWordwise = {
    "wordwise",      WordXor,           WordMulAdd8,
    WordMulAdd16,    WordRowApply8,     WordRowApply16,
};

}  // namespace lhrs::gfk
