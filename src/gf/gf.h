#ifndef LHRS_GF_GF_H_
#define LHRS_GF_GF_H_

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace lhrs {

/// Compile-time contract for a binary-extension Galois field GF(2^w) as the
/// Reed-Solomon coder consumes it. A conforming field provides scalar
/// arithmetic on `Symbol` plus bulk buffer kernels used on record payloads.
///
/// Addition in GF(2^w) is always XOR, so the buffer addition kernel is shared
/// and the field only supplies multiplication machinery.
template <typename F>
concept GaloisField = requires(typename F::Symbol a, typename F::Symbol b,
                               uint8_t* dst, const uint8_t* const* srcs,
                               const typename F::Symbol* coeffs,
                               const uint8_t* src, size_t n) {
  typename F::Symbol;
  { F::kOrder } -> std::convertible_to<uint32_t>;
  { F::kSymbolBytes } -> std::convertible_to<size_t>;
  { F::Add(a, b) } -> std::same_as<typename F::Symbol>;
  { F::Mul(a, b) } -> std::same_as<typename F::Symbol>;
  { F::Div(a, b) } -> std::same_as<typename F::Symbol>;
  { F::Inv(a) } -> std::same_as<typename F::Symbol>;
  { F::MulAddBuffer(dst, src, n, a) };
  { F::MulAddRow(dst, srcs, coeffs, n, n) };
};

/// dst[i] ^= src[i] for i in [0, n). Field-independent GF(2^w) addition.
///
/// Rides the runtime-dispatched kernel layer (gf/kernels.h, DESIGN.md
/// §15): SSSE3/AVX2/NEON vectors when the CPU has them, the word-wise
/// uint64 loop as the portable floor. Every tier is alignment-agnostic;
/// all are fastest on the 64-byte-aligned `Buffer` slices the storage
/// layer hands out (the aligned-kernel contract, DESIGN.md §10). `dst`
/// and `src` must not partially overlap (dst == src is fine).
void XorBuffer(uint8_t* dst, const uint8_t* src, size_t n);

/// The original byte-at-a-time XOR loop, pinned against auto-vectorization.
/// Kept as the checked reference for every dispatched kernel: tests assert
/// equivalence, and bench_t3 reports per-ISA/byte throughput ratios.
void XorBufferByteReference(uint8_t* dst, const uint8_t* src, size_t n);

}  // namespace lhrs

#endif  // LHRS_GF_GF_H_
