#ifndef LHRS_GF_KERNELS_H_
#define LHRS_GF_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lhrs {

/// Runtime-dispatched buffer-kernel table for the whole parity path
/// (DESIGN.md §15). One `GfKernels` instance per implementation tier:
///
///   "scalar"   — pinned byte-/symbol-wise loops. Never auto-selected; kept
///                as the portable floor and the correctness oracle every
///                other tier is property-tested against.
///   "wordwise" — uint64-at-a-time kernels (PR 3's word loops plus a
///                split-table GF(2^16) gather). Default when no SIMD tier
///                is compiled in or supported by the CPU.
///   "ssse3"    — 4-bit split-table PSHUFB multiply, 16-byte vectors.
///   "avx2"     — 4-bit split-table VPSHUFB multiply, 32-byte vectors.
///   "neon"     — 4-bit split-table TBL multiply (aarch64).
///
/// The active tier is chosen once, at first use, by runtime CPU detection
/// (best compiled-in tier the host supports), overridable with the
/// `LHRS_KERNEL_ISA` environment variable for testing. All tiers are
/// byte-identical by contract; only throughput differs.
///
/// Kernel contracts (shared by every tier):
///  - Buffers may have any alignment; `dst` and `src` must not partially
///    overlap (`dst == src` is allowed for `xor_buf`).
///  - `mul_add_16` / `matrix_row_apply_16` interpret buffers as
///    little-endian uint16 symbols: `n` MUST be even (the RS coder pads
///    payloads; see gf65536.h). Debug builds assert on odd `n`.
///  - `matrix_row_apply_*` computes `dst[i] ^= sum_s coeffs[s]*srcs[s][i]`
///    in one pass: every source buffer must hold at least `n` bytes, and
///    zero coefficients are skipped. This is the fused kernel recovery
///    decodes ride so k source columns fold per dst pass instead of k
///    separate read-modify-writes of dst.
struct GfKernels {
  const char* name;

  /// dst[i] ^= src[i] — GF(2^w) addition for every field.
  void (*xor_buf)(uint8_t* dst, const uint8_t* src, size_t n);

  /// dst[i] ^= coeff * src[i] over GF(2^8). Handles coeff 0 and 1
  /// correctly (callers usually branch to a no-op / xor_buf first).
  void (*mul_add_8)(uint8_t* dst, const uint8_t* src, size_t n,
                    uint8_t coeff);

  /// dst += coeff * src over GF(2^16), little-endian symbols, n even.
  void (*mul_add_16)(uint8_t* dst, const uint8_t* src, size_t n,
                     uint16_t coeff);

  /// Fused multi-source fold over GF(2^8): one dst pass for all sources.
  void (*matrix_row_apply_8)(uint8_t* dst, const uint8_t* const* srcs,
                             const uint8_t* coeffs, size_t num_srcs,
                             size_t n);

  /// Fused multi-source fold over GF(2^16); n even.
  void (*matrix_row_apply_16)(uint8_t* dst, const uint8_t* const* srcs,
                              const uint16_t* coeffs, size_t num_srcs,
                              size_t n);
};

/// The active kernel tier. Selected on first call: `LHRS_KERNEL_ISA` if set
/// to the name of a compiled-in tier the CPU supports (an unusable name
/// warns on stderr and falls through), otherwise the best supported tier.
/// Thread-safe; the selection never changes after first use except through
/// ForceActiveKernelsForTesting.
const GfKernels& ActiveKernels();

/// Looks a tier up by name. Returns nullptr when the tier is not compiled
/// in or the running CPU does not support it. "scalar" and "wordwise" are
/// always available.
const GfKernels* KernelsByName(std::string_view name);

/// Every tier usable on this machine, worst ("scalar") to best. Tests and
/// bench_t3 iterate this to property-check / measure each tier in one
/// process, independent of the env-selected active tier.
std::vector<const GfKernels*> AvailableKernels();

/// Test/bench hook: overrides ActiveKernels() until called again.
/// nullptr restores the startup selection. Not for production code paths;
/// callers must not race it against concurrent kernel users.
void ForceActiveKernelsForTesting(const GfKernels* kernels);

}  // namespace lhrs

#endif  // LHRS_GF_KERNELS_H_
