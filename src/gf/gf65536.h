#ifndef LHRS_GF_GF65536_H_
#define LHRS_GF_GF65536_H_

#include <cstddef>
#include <cstdint>

namespace lhrs {

/// GF(2^16) with the primitive polynomial x^16 + x^12 + x^3 + x + 1
/// (0x1100B) and generator alpha = 2. The archival LH*RS implementation
/// moved from GF(2^8) to GF(2^16) because wider symbols halve the number of
/// table lookups per payload byte; we provide both so the trade-off is
/// measurable (bench T3).
///
/// Buffer kernels interpret payloads as little-endian uint16 symbols; byte
/// counts passed to them must be even (the RS coder pads payloads).
class GF65536 {
 public:
  using Symbol = uint16_t;
  static constexpr uint32_t kOrder = 65536;
  static constexpr size_t kSymbolBytes = 2;
  static constexpr uint32_t kPolynomial = 0x1100B;

  static Symbol Add(Symbol a, Symbol b) { return a ^ b; }
  static Symbol Sub(Symbol a, Symbol b) { return a ^ b; }

  static Symbol Mul(Symbol a, Symbol b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    uint32_t s = t.log[a] + t.log[b];
    if (s >= 65535) s -= 65535;
    return t.exp[s];
  }

  /// a / b. b must be non-zero.
  static Symbol Div(Symbol a, Symbol b);

  /// Multiplicative inverse. a must be non-zero.
  static Symbol Inv(Symbol a);

  /// alpha^e for e >= 0.
  static Symbol Exp(uint32_t e) { return tables().exp[e % 65535]; }

  /// Discrete log base alpha. a must be non-zero.
  static uint32_t Log(Symbol a);

  /// dst += coeff * src over GF(2^16) for n bytes (n must be even — the
  /// RS coder pads payloads to whole symbols; the dispatched kernels
  /// assert this in debug builds). Rides the runtime-dispatched kernel
  /// layer (gf/kernels.h): 4-bit split-table SIMD when available, an
  /// 8-bit split-table word gather on the portable floor.
  static void MulAddBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                           Symbol coeff);

  /// The pinned symbol-at-a-time loop ("scalar" tier); checked reference
  /// for every dispatched kernel. n must be even.
  static void MulAddBufferByteReference(uint8_t* dst, const uint8_t* src,
                                        size_t n, Symbol coeff);

  /// Fused multi-source fold: dst += sum_s coeffs[s] * srcs[s] in a single
  /// pass over dst. Every source must hold at least n bytes (n even); zero
  /// coefficients are skipped.
  static void MulAddRow(uint8_t* dst, const uint8_t* const* srcs,
                        const Symbol* coeffs, size_t num_srcs, size_t n);

 private:
  struct Tables {
    uint16_t exp[65535];
    uint16_t log[65536];
  };
  static const Tables& tables();
};

}  // namespace lhrs

#endif  // LHRS_GF_GF65536_H_
