#ifndef LHRS_GF_GF256_H_
#define LHRS_GF_GF256_H_

#include <cstddef>
#include <cstdint>

namespace lhrs {

/// GF(2^8) with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D)
/// and generator alpha = 2. Multiplication goes through log/antilog tables,
/// the classical choice of the LH*RS parity subsystem: one byte of payload is
/// one code symbol, so records of any length encode without symbol packing.
///
/// All operations are static; the tables are built once on first use.
class GF256 {
 public:
  using Symbol = uint8_t;
  static constexpr uint32_t kOrder = 256;
  static constexpr size_t kSymbolBytes = 1;
  static constexpr uint32_t kPolynomial = 0x11D;

  static Symbol Add(Symbol a, Symbol b) { return a ^ b; }
  static Symbol Sub(Symbol a, Symbol b) { return a ^ b; }

  static Symbol Mul(Symbol a, Symbol b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  /// a / b. b must be non-zero.
  static Symbol Div(Symbol a, Symbol b);

  /// Multiplicative inverse. a must be non-zero.
  static Symbol Inv(Symbol a);

  /// alpha^e for e >= 0.
  static Symbol Exp(uint32_t e) { return tables().exp[e % 255]; }

  /// Discrete log base alpha. a must be non-zero.
  static uint32_t Log(Symbol a);

  /// dst[i] += coeff * src[i] over GF(2^8), for n bytes. The workhorse of
  /// parity encoding; falls back to plain XOR when coeff == 1 (the LH*RS
  /// "first parity column is XOR" fast path), otherwise rides the
  /// runtime-dispatched kernel layer (gf/kernels.h): split-table
  /// PSHUFB/VPSHUFB/TBL on SIMD-capable hosts, a word-wise product-row
  /// gather on the portable floor. Alignment-agnostic.
  static void MulAddBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                           Symbol coeff);

  /// The original byte-at-a-time MulAdd loop, pinned against
  /// auto-vectorization; checked reference for every dispatched kernel.
  static void MulAddBufferByteReference(uint8_t* dst, const uint8_t* src,
                                        size_t n, Symbol coeff);

  /// Fused multi-source fold: dst[i] += sum_s coeffs[s] * srcs[s][i] in a
  /// single pass over dst (one read-modify-write per block instead of one
  /// per source). Every source must hold at least n bytes; zero
  /// coefficients are skipped. Matrix decodes and full-group encodes ride
  /// this so recovery folds all survivor columns per pass.
  static void MulAddRow(uint8_t* dst, const uint8_t* const* srcs,
                        const Symbol* coeffs, size_t num_srcs, size_t n);

  /// dst[i] = coeff * src[i] over GF(2^8), for n bytes.
  static void MulBuffer(uint8_t* dst, const uint8_t* src, size_t n,
                        Symbol coeff);

 private:
  struct Tables {
    uint8_t exp[512];   // exp[i] = alpha^i, doubled to skip the mod-255.
    uint16_t log[256];  // log[0] unused.
    // mul_row[c] built lazily would cost 64 KiB; instead each bulk call
    // builds its own 256-byte row, which stays L1-resident.
  };
  static const Tables& tables();
};

}  // namespace lhrs

#endif  // LHRS_GF_GF256_H_
