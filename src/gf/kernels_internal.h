#ifndef LHRS_GF_KERNELS_INTERNAL_H_
#define LHRS_GF_KERNELS_INTERNAL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "gf/kernels.h"

// Shared machinery for the per-ISA kernel translation units. Everything
// here is self-contained (no dependency on GF256/GF65536 or lhrs_common):
// the kernels library sits below every other target, so lhrs_common's
// XorBuffer can forward into it without a dependency cycle.

namespace lhrs::gfk {

inline constexpr uint32_t kPoly8 = 0x11D;    // x^8+x^4+x^3+x^2+1.
inline constexpr uint32_t kPoly16 = 0x1100B;  // x^16+x^12+x^3+x+1.

/// Carry-less shift-and-add multiply, used only to build lookup tables
/// (a few dozen to a few hundred products per bulk call, amortized over
/// the buffer). Matches GF256::Mul / GF65536::Mul by construction: same
/// polynomials, same bit order.
inline uint8_t GfMul8(uint8_t a, uint8_t b) {
  uint32_t acc = 0;
  uint32_t aa = a;
  for (uint32_t bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= kPoly8;
  }
  return static_cast<uint8_t>(acc);
}

inline uint16_t GfMul16(uint16_t a, uint16_t b) {
  uint32_t acc = 0;
  uint32_t aa = a;
  for (uint32_t bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x10000) aa ^= kPoly16;
  }
  return static_cast<uint16_t>(acc);
}

/// row[b] = coeff * b for all 256 bytes — the word-wise GF(2^8) kernel's
/// L1-resident product row.
inline void BuildRow8(uint8_t coeff, uint8_t row[256]) {
  row[0] = 0;
  // alpha = 2 generates the field: fill by repeated doubling of the
  // coefficient row index instead of 255 full multiplies.
  for (uint32_t b = 1; b < 256; ++b) {
    row[b] = GfMul8(coeff, static_cast<uint8_t>(b));
  }
}

/// 4-bit split tables for GF(2^8): product(b) = lo[b & 15] ^ hi[b >> 4].
/// 32 bytes per coefficient — one PSHUFB register pair.
struct Nib8Tables {
  uint8_t lo[16];
  uint8_t hi[16];
};

inline void BuildNib8(uint8_t coeff, Nib8Tables* t) {
  for (uint32_t i = 0; i < 16; ++i) {
    t->lo[i] = GfMul8(coeff, static_cast<uint8_t>(i));
    t->hi[i] = GfMul8(coeff, static_cast<uint8_t>(i << 4));
  }
}

/// 4-bit split tables for GF(2^16). A symbol s = hi_byte:lo_byte splits
/// into four nibbles; the product accumulates one 16-bit contribution per
/// nibble, stored as separate low-byte/high-byte shuffle tables so the
/// SIMD kernels can keep the two product halves in separate registers:
///   prod_lo(s) = ll[n0]^lh[n1]^hl[n2]^hh[n3] (low byte), prod_hi likewise.
/// 128 bytes per coefficient.
struct Nib16Tables {
  // [nibble position 0..3][nibble value 0..15]; position 0 is bits 0-3.
  uint8_t prod_lo[4][16];
  uint8_t prod_hi[4][16];
};

inline void BuildNib16(uint16_t coeff, Nib16Tables* t) {
  for (uint32_t pos = 0; pos < 4; ++pos) {
    for (uint32_t i = 0; i < 16; ++i) {
      const uint16_t p =
          GfMul16(coeff, static_cast<uint16_t>(i << (4 * pos)));
      t->prod_lo[pos][i] = static_cast<uint8_t>(p);
      t->prod_hi[pos][i] = static_cast<uint8_t>(p >> 8);
    }
  }
}

/// 8-bit split tables for GF(2^16) — the word-wise tier's variant:
/// product(s) = lo[s & 0xFF] ^ hi[s >> 8]. 1 KiB per coefficient, still
/// L1-resident; 512 table builds amortize over the buffer.
struct Split16Tables {
  uint16_t lo[256];
  uint16_t hi[256];
};

inline void BuildSplit16(uint16_t coeff, Split16Tables* t) {
  t->lo[0] = 0;
  t->hi[0] = 0;
  for (uint32_t b = 1; b < 256; ++b) {
    t->lo[b] = GfMul16(coeff, static_cast<uint16_t>(b));
    t->hi[b] = GfMul16(coeff, static_cast<uint16_t>(b << 8));
  }
}

/// Scalar tail loops shared by the SIMD translation units (plain C++, no
/// intrinsics, so they compile identically in every TU). The SIMD kernels
/// delegate their sub-vector tails here with the tables already built.
inline void MulAdd8TailNib(uint8_t* dst, const uint8_t* src, size_t n,
                           const Nib8Tables& t) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t s = src[i];
    dst[i] ^= static_cast<uint8_t>(t.lo[s & 15] ^ t.hi[s >> 4]);
  }
}

inline void MulAdd16TailNib(uint8_t* dst, const uint8_t* src, size_t n,
                            const Nib16Tables& t) {
  assert(n % 2 == 0 && "GF(2^16) kernels operate on whole symbols");
  for (size_t i = 0; i + 2 <= n; i += 2) {
    const uint8_t sl = src[i];
    const uint8_t sh = src[i + 1];
    dst[i] ^= static_cast<uint8_t>(t.prod_lo[0][sl & 15] ^
                                   t.prod_lo[1][sl >> 4] ^
                                   t.prod_lo[2][sh & 15] ^
                                   t.prod_lo[3][sh >> 4]);
    dst[i + 1] ^= static_cast<uint8_t>(t.prod_hi[0][sl & 15] ^
                                       t.prod_hi[1][sl >> 4] ^
                                       t.prod_hi[2][sh & 15] ^
                                       t.prod_hi[3][sh >> 4]);
  }
}

// Tier tables defined by the per-ISA translation units. The SIMD tiers
// exist only when their TU is compiled in (CMake feature checks set
// LHRS_HAVE_KERNELS_*); kernels.cc additionally gates them on runtime CPU
// support before they become selectable.
extern const GfKernels kKernelsScalar;    // kernels_portable.cc
extern const GfKernels kKernelsWordwise;  // kernels_portable.cc
#if defined(LHRS_HAVE_KERNELS_SSSE3)
extern const GfKernels kKernelsSsse3;  // kernels_ssse3.cc (-mssse3)
#endif
#if defined(LHRS_HAVE_KERNELS_AVX2)
extern const GfKernels kKernelsAvx2;  // kernels_avx2.cc (-mavx2)
#endif
#if defined(LHRS_HAVE_KERNELS_NEON)
extern const GfKernels kKernelsNeon;  // kernels_neon.cc (aarch64)
#endif

}  // namespace lhrs::gfk

#endif  // LHRS_GF_KERNELS_INTERNAL_H_
