#include "common/logging.h"

namespace lhrs {
namespace internal_logging {

Severity& MinLogSeverity() {
  static Severity min_severity = Severity::kWarning;  // Tests/benches may lower this.
  return min_severity;
}

}  // namespace internal_logging
}  // namespace lhrs
