#ifndef LHRS_COMMON_RESULT_H_
#define LHRS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lhrs {

/// A value-or-error holder in the style of `arrow::Result` / `StatusOr`.
///
/// Invariant: exactly one of {value, non-OK status} is set.
///
///     Result<Record> r = file.Lookup(key);
///     if (!r.ok()) return r.status();
///     Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so functions can
  /// `return Status::NotFound(...)`). Passing an OK status is a programming
  /// error and is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// Status of the operation; OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ is set.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise binds the
/// value to `lhs`. `lhs` may be a declaration, e.g.
/// `LHRS_ASSIGN_OR_RETURN(auto rec, file.Lookup(k));`
#define LHRS_ASSIGN_OR_RETURN(lhs, rexpr)               \
  LHRS_ASSIGN_OR_RETURN_IMPL_(                          \
      LHRS_RESULT_CONCAT_(_lhrs_result, __LINE__), lhs, rexpr)

#define LHRS_RESULT_CONCAT_INNER_(a, b) a##b
#define LHRS_RESULT_CONCAT_(a, b) LHRS_RESULT_CONCAT_INNER_(a, b)
#define LHRS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace lhrs

#endif  // LHRS_COMMON_RESULT_H_
