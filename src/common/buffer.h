#ifndef LHRS_COMMON_BUFFER_H_
#define LHRS_COMMON_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "common/bytes.h"

namespace lhrs {

/// A ref-counted, 64-byte-aligned, fixed-capacity byte arena.
///
/// Buffers are the unit of payload ownership across the stack: bucket
/// stores pack record payloads into them, messages carry `BufferView`
/// slices of them, and the GF kernels run word-wise over them. Capacity is
/// rounded up to a whole number of 64-byte lines and the storage is
/// zero-initialized, so padded parity reads beyond a record's logical
/// length always see zeros.
class Buffer {
 public:
  static constexpr size_t kAlignment = 64;

  /// Allocates a zeroed buffer of at least `capacity` bytes.
  static std::shared_ptr<Buffer> Allocate(size_t capacity);

  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t capacity() const { return capacity_; }

 private:
  Buffer(uint8_t* data, size_t capacity)
      : data_(data), capacity_(capacity) {}

  uint8_t* data_;
  size_t capacity_;
};

/// An immutable, cheaply copyable slice of a ref-counted `Buffer`.
///
/// Copying a view shares the underlying buffer (no byte copy); the bytes a
/// view exposes never change under it. Mutation goes through the
/// copy-on-write entry points (`MutableResized` / `MutableData`), which
/// write in place only when this view is the sole owner of its buffer and
/// otherwise detach onto a fresh buffer first — so snapshots taken earlier
/// (wire messages, recovery dumps, mid-compaction readers) stay intact.
///
/// Constructing a view from loose bytes performs the single ingestion copy
/// into an aligned buffer; from then on the payload flows through the
/// stack by reference.
class BufferView {
 public:
  BufferView() = default;

  /// Ingests a byte vector (one copy into a fresh aligned buffer).
  /// Implicit: `Bytes` literals flow into message payload fields directly.
  BufferView(const Bytes& bytes);  // NOLINT(google-explicit-constructor)

  /// Ingests `n` raw bytes (one copy into a fresh aligned buffer).
  BufferView(const uint8_t* data, size_t n);

  /// A view of `[offset, offset + size)` inside an existing buffer.
  /// Used by the storage layer; shares, never copies.
  BufferView(std::shared_ptr<Buffer> buffer, size_t offset, size_t size);

  static BufferView FromString(std::string_view s);

  const uint8_t* data() const {
    return buffer_ == nullptr ? nullptr : buffer_->data() + offset_;
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  operator std::span<const uint8_t>() const {  // NOLINT
    return {data(), size_};
  }
  std::span<const uint8_t> span() const { return {data(), size_}; }

  /// Materializes the bytes (one copy; boundary of the zero-copy domain).
  Bytes ToBytes() const { return Bytes(begin(), end()); }

  /// Content equality (not buffer identity) — `WireRecord` and friends
  /// compare payloads by value in tests and invariant checks.
  bool operator==(const BufferView& other) const;

  /// A sub-view sharing this view's buffer.
  BufferView Slice(size_t offset, size_t n) const;

  /// Copy-on-write resize: afterwards this view is the unique owner of
  /// `n` writable bytes (old content retained up to `min(old, n)`, any
  /// extension zero-filled) and the returned pointer may be written until
  /// the next copy of this view is taken. Writes in place when this view
  /// exclusively owns its buffer and the capacity fits; otherwise detaches
  /// onto a fresh aligned buffer.
  uint8_t* MutableResized(size_t n);

  /// Copy-on-write without resizing.
  uint8_t* MutableData() { return MutableResized(size_); }

  /// The owning buffer (may be shared with other views); null when empty.
  const std::shared_ptr<Buffer>& buffer() const { return buffer_; }
  size_t offset() const { return offset_; }

 private:
  std::shared_ptr<Buffer> buffer_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

/// Builds the padded XOR delta of two payloads in one pass: the result has
/// `max(a.size(), b.size())` bytes, equal to `a XOR b` with the shorter
/// operand zero-extended. This is the incremental parity delta (old XOR
/// new) every availability layer ships.
BufferView MakeXorDelta(std::span<const uint8_t> a,
                        std::span<const uint8_t> b);

}  // namespace lhrs

#endif  // LHRS_COMMON_BUFFER_H_
