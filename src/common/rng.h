#ifndef LHRS_COMMON_RNG_H_
#define LHRS_COMMON_RNG_H_

#include <cstdint>
#include <limits>

#include "common/bytes.h"

namespace lhrs {

/// Deterministic, seedable PRNG (xoshiro256** core, SplitMix64 seeding).
///
/// Every randomised component of the simulator takes an explicit `Rng` so
/// that whole-file scenarios — including failure schedules — replay
/// identically from a seed. We do not use `std::mt19937` because its
/// distributions are not guaranteed bit-identical across standard-library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform in [0, 2^64).
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next64() % bound; }

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformIn(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Flip(double p) { return NextDouble() < p; }

  /// Random payload of `n` bytes.
  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    for (auto& b : out) b = static_cast<uint8_t>(Next64());
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace lhrs

#endif  // LHRS_COMMON_RNG_H_
