#ifndef LHRS_COMMON_BYTES_H_
#define LHRS_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lhrs {

/// Non-key record payloads are raw byte strings; all parity math operates on
/// these buffers.
using Bytes = std::vector<uint8_t>;

/// Builds a byte buffer from an ASCII string (convenience for tests and
/// examples).
Bytes BytesFromString(std::string_view s);

/// Renders a buffer as lowercase hex, e.g. {0xde, 0xad} -> "dead".
std::string ToHex(std::span<const uint8_t> data);

/// dst[i] ^= src[i] for i in [0, n) — GF(2^w) addition for every field.
///
/// Rides the runtime-dispatched kernel layer (gf/kernels.h, DESIGN.md
/// §15): SSSE3/AVX2/NEON vectors when the CPU has them, the word-wise
/// uint64 loop as the portable floor. Alignment-agnostic; fastest on the
/// 64-byte-aligned `Buffer` slices the storage layer hands out (the
/// aligned-kernel contract, DESIGN.md §10). `dst` and `src` must not
/// partially overlap (dst == src is fine).
void XorBuffer(uint8_t* dst, const uint8_t* src, size_t n);

/// The original byte-at-a-time XOR loop, pinned against auto-vectorization.
/// Kept as the checked reference for every dispatched kernel: tests assert
/// equivalence, and bench_t3 reports per-ISA/byte throughput ratios.
void XorBufferByteReference(uint8_t* dst, const uint8_t* src, size_t n);

/// XORs `src` into `dst` elementwise in one pass. `dst` grows to
/// `src.size()` if shorter: the overlap is XORed word-wise and `src`'s
/// tail is appended directly (XOR against an implicit zero pad), as the
/// parity schemes require for variable-length records.
void XorAssignPadded(Bytes& dst, std::span<const uint8_t> src);

/// Returns a copy of `b` zero-padded (or truncated) to exactly `n` bytes.
Bytes PadTo(std::span<const uint8_t> b, size_t n);

/// True when every byte is zero (an all-zero parity buffer means "empty
/// group slot" in the XOR schemes).
bool AllZero(std::span<const uint8_t> b);

}  // namespace lhrs

#endif  // LHRS_COMMON_BYTES_H_
