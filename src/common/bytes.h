#ifndef LHRS_COMMON_BYTES_H_
#define LHRS_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lhrs {

/// Non-key record payloads are raw byte strings; all parity math operates on
/// these buffers.
using Bytes = std::vector<uint8_t>;

/// Builds a byte buffer from an ASCII string (convenience for tests and
/// examples).
Bytes BytesFromString(std::string_view s);

/// Renders a buffer as lowercase hex, e.g. {0xde, 0xad} -> "dead".
std::string ToHex(std::span<const uint8_t> data);

/// XORs `src` into `dst` elementwise. `dst` is grown (zero-padded) to
/// `src.size()` first if shorter: XOR against an implicit zero pad, as the
/// parity schemes require for variable-length records.
void XorAssignPadded(Bytes& dst, std::span<const uint8_t> src);

/// Returns a copy of `b` zero-padded (or truncated) to exactly `n` bytes.
Bytes PadTo(std::span<const uint8_t> b, size_t n);

/// True when every byte is zero (an all-zero parity buffer means "empty
/// group slot" in the XOR schemes).
bool AllZero(std::span<const uint8_t> b);

}  // namespace lhrs

#endif  // LHRS_COMMON_BYTES_H_
