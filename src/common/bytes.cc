#include "common/bytes.h"

#include <algorithm>

namespace lhrs {

Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToHex(std::span<const uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

void XorAssignPadded(Bytes& dst, std::span<const uint8_t> src) {
  // One pass: XOR the overlap word-wise, then append src's tail directly —
  // zero-filling the extension first and XORing over it again would touch
  // the tail bytes twice.
  const size_t common = std::min(dst.size(), src.size());
  XorBuffer(dst.data(), src.data(), common);
  if (src.size() > common) {
    dst.insert(dst.end(), src.begin() + common, src.end());
  }
}

Bytes PadTo(std::span<const uint8_t> b, size_t n) {
  Bytes out(b.begin(), b.begin() + std::min(b.size(), n));
  out.resize(n, 0);
  return out;
}

bool AllZero(std::span<const uint8_t> b) {
  return std::all_of(b.begin(), b.end(), [](uint8_t x) { return x == 0; });
}

}  // namespace lhrs
