#ifndef LHRS_COMMON_LOGGING_H_
#define LHRS_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace lhrs {
namespace internal_logging {

/// Message severities. kFatal aborts the process after logging: invariant
/// violations in a storage system must never be silently ignored.
enum class Severity { kDebug = 0, kInfo = 1, kWarning = 2, kFatal = 3 };

/// Process-wide minimum severity that is actually printed. Benchmarks raise
/// this to kWarning to keep output clean.
Severity& MinLogSeverity();

class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (severity_ >= MinLogSeverity()) {
      std::cerr << stream_.str() << std::endl;
    }
    if (severity_ == Severity::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityTag(Severity s) {
    switch (s) {
      case Severity::kDebug:
        return "D";
      case Severity::kInfo:
        return "I";
      case Severity::kWarning:
        return "W";
      case Severity::kFatal:
        return "F";
    }
    return "?";
  }

  Severity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lhrs

#define LHRS_LOG(severity)                                          \
  ::lhrs::internal_logging::LogMessage(                             \
      ::lhrs::internal_logging::Severity::k##severity, __FILE__,    \
      __LINE__)                                                     \
      .stream()

/// Hard invariant check; logs and aborts on violation. Active in all build
/// modes — a corrupted parity invariant must never propagate.
#define LHRS_CHECK(cond)                                            \
  if (!(cond))                                                      \
  LHRS_LOG(Fatal) << "Check failed: " #cond " "

#define LHRS_CHECK_EQ(a, b) LHRS_CHECK((a) == (b))
#define LHRS_CHECK_NE(a, b) LHRS_CHECK((a) != (b))
#define LHRS_CHECK_LT(a, b) LHRS_CHECK((a) < (b))
#define LHRS_CHECK_LE(a, b) LHRS_CHECK((a) <= (b))
#define LHRS_CHECK_GT(a, b) LHRS_CHECK((a) > (b))
#define LHRS_CHECK_GE(a, b) LHRS_CHECK((a) >= (b))

#endif  // LHRS_COMMON_LOGGING_H_
