#include <cstdint>

#include "common/bytes.h"
#include "gf/kernels.h"

namespace lhrs {

// Field-independent GF(2^w) addition, riding the runtime-dispatched kernel
// layer (gf/kernels.h): word-wise on the portable floor, SSSE3/AVX2/NEON
// vectors when the CPU has them. The word/byte implementations themselves
// live in gf/kernels_portable.cc.
void XorBuffer(uint8_t* dst, const uint8_t* src, size_t n) {
  ActiveKernels().xor_buf(dst, src, n);
}

// The pinned byte-at-a-time reference — always the "scalar" tier,
// regardless of the active selection, so tests and benches keep a stable
// oracle/denominator.
void XorBufferByteReference(uint8_t* dst, const uint8_t* src, size_t n) {
  KernelsByName("scalar")->xor_buf(dst, src, n);
}

}  // namespace lhrs
