#include <cstdint>
#include <cstring>

#include "common/bytes.h"

namespace lhrs {

void XorBuffer(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  // 4-way unrolled word loop: 32 bytes per iteration. memcpy compiles to
  // plain (possibly unaligned) word loads/stores on every target we care
  // about, so this is alignment-agnostic; the 64-byte-aligned buffers from
  // the storage layer take the fast path end to end.
  for (; i + 32 <= n; i += 32) {
    uint64_t d0, d1, d2, d3, s0, s1, s2, s3;
    std::memcpy(&d0, dst + i, 8);
    std::memcpy(&d1, dst + i + 8, 8);
    std::memcpy(&d2, dst + i + 16, 8);
    std::memcpy(&d3, dst + i + 24, 8);
    std::memcpy(&s0, src + i, 8);
    std::memcpy(&s1, src + i + 8, 8);
    std::memcpy(&s2, src + i + 16, 8);
    std::memcpy(&s3, src + i + 24, 8);
    d0 ^= s0;
    d1 ^= s1;
    d2 ^= s2;
    d3 ^= s3;
    std::memcpy(dst + i, &d0, 8);
    std::memcpy(dst + i + 8, &d1, 8);
    std::memcpy(dst + i + 16, &d2, 8);
    std::memcpy(dst + i + 24, &d3, 8);
  }
  for (; i + 8 <= n; i += 8) {
    uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// Pinned scalar: without this, -O3 auto-vectorizes the byte loop and the
// "reference" silently becomes another SIMD kernel, making the measured
// word/byte ratio meaningless.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
void XorBufferByteReference(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace lhrs
