#ifndef LHRS_COMMON_STATUS_H_
#define LHRS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace lhrs {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning a `Status` from any operation that can fail,
/// instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kNotFound,        ///< Key or resource does not exist.
  kAlreadyExists,   ///< Duplicate key insert or double registration.
  kInvalidArgument, ///< Caller passed a parameter outside its contract.
  kUnavailable,     ///< A required server/bucket is unavailable (failure).
  kDataLoss,        ///< Unrecoverable: more erasures than the code tolerates.
  kInternal,        ///< Invariant violation inside the library.
  kTimeout,         ///< Simulated network delivery timed out.
};

/// Returns a stable human-readable name, e.g. "NotFound".
const char* StatusCodeName(StatusCode code);

/// Result of an operation: either OK or an error code plus message.
///
/// `Status` is cheap to copy for the OK case and cheap to move always.
/// Typical use:
///
///     Status s = file.Insert(key, value);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller.
#define LHRS_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::lhrs::Status _lhrs_status = (expr);          \
    if (!_lhrs_status.ok()) return _lhrs_status;   \
  } while (false)

}  // namespace lhrs

#endif  // LHRS_COMMON_STATUS_H_
