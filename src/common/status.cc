#include "common/status.h"

namespace lhrs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace lhrs
