#include "common/buffer.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace lhrs {

namespace {

size_t RoundUpToLine(size_t n) {
  return (n + Buffer::kAlignment - 1) & ~(Buffer::kAlignment - 1);
}

}  // namespace

std::shared_ptr<Buffer> Buffer::Allocate(size_t capacity) {
  const size_t rounded = std::max(RoundUpToLine(capacity), kAlignment);
  auto* raw = static_cast<uint8_t*>(
      ::operator new(rounded, std::align_val_t{kAlignment}));
  std::memset(raw, 0, rounded);
  return std::shared_ptr<Buffer>(new Buffer(raw, rounded));
}

Buffer::~Buffer() {
  ::operator delete(data_, std::align_val_t{kAlignment});
}

BufferView::BufferView(const Bytes& bytes)
    : BufferView(bytes.data(), bytes.size()) {}

BufferView::BufferView(const uint8_t* data, size_t n) {
  if (n == 0) return;
  buffer_ = Buffer::Allocate(n);
  std::memcpy(buffer_->data(), data, n);
  size_ = n;
}

BufferView::BufferView(std::shared_ptr<Buffer> buffer, size_t offset,
                       size_t size)
    : buffer_(std::move(buffer)), offset_(offset), size_(size) {}

BufferView BufferView::FromString(std::string_view s) {
  return BufferView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool BufferView::operator==(const BufferView& other) const {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  return std::memcmp(data(), other.data(), size_) == 0;
}

BufferView BufferView::Slice(size_t offset, size_t n) const {
  if (offset >= size_) return BufferView{};
  return BufferView(buffer_, offset_ + offset, std::min(n, size_ - offset));
}

uint8_t* BufferView::MutableResized(size_t n) {
  // In place only when no other view (or store handle) can observe the
  // write: sole owner of the whole buffer, and the slice fits.
  const bool unique = buffer_ != nullptr && buffer_.use_count() == 1;
  if (unique && offset_ + n <= buffer_->capacity()) {
    uint8_t* p = buffer_->data() + offset_;
    if (n > size_) std::memset(p + size_, 0, n - size_);
    size_ = n;
    return p;
  }
  auto fresh = Buffer::Allocate(n);
  const size_t keep = std::min(size_, n);
  if (keep > 0) std::memcpy(fresh->data(), data(), keep);
  // Allocate() zero-fills, so bytes [keep, n) are already zero.
  buffer_ = std::move(fresh);
  offset_ = 0;
  size_ = n;
  return buffer_->data();
}

BufferView MakeXorDelta(std::span<const uint8_t> a,
                        std::span<const uint8_t> b) {
  const size_t n = std::max(a.size(), b.size());
  if (n == 0) return BufferView{};
  auto buf = Buffer::Allocate(n);
  uint8_t* out = buf->data();
  const size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) out[i] = a[i] ^ b[i];
  const auto& tail = a.size() > b.size() ? a : b;
  if (tail.size() > common) {
    std::memcpy(out + common, tail.data() + common, tail.size() - common);
  }
  return BufferView(std::move(buf), 0, n);
}

}  // namespace lhrs
