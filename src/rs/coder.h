#ifndef LHRS_RS_CODER_H_
#define LHRS_RS_CODER_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/result.h"
#include "rs/generator.h"
#include "rs/matrix.h"

namespace lhrs {

/// Reed-Solomon coder for one LH*RS record group: m data slots, k parity
/// slots. Codeword columns are numbered 0..m-1 (data) and m..m+k-1 (parity).
///
/// Payloads are variable-length byte strings; the code semantically operates
/// on buffers zero-padded to a common length, and an absent group member is
/// an all-zero buffer. Callers therefore never need to materialise padding:
/// `ApplyDelta` grows the parity buffer on demand, and `DecodeData` pads
/// survivors internally.
///
/// Thread-compatible: const methods are safe to call concurrently.
template <GaloisField F>
class GroupCoder {
 public:
  using Symbol = typename F::Symbol;

  /// Builds the coder for a group of `m` data buckets with availability
  /// level `k`. CHECK-fails on invalid (m, k); use BuildParityMatrix
  /// directly when graceful validation is needed.
  GroupCoder(size_t m, size_t k)
      : m_(m), k_(k), parity_matrix_(std::move([&] {
          auto p = BuildParityMatrix<F>(m, k);
          LHRS_CHECK(p.ok()) << p.status();
          return std::move(p).value();
        }())) {}

  /// Builds the coder around a caller-supplied m x k parity-coefficient
  /// matrix (e.g. an LRC layout). The encode/delta machinery works for any
  /// linear code; DecodeData's any-m-columns contract only holds when the
  /// matrix is MDS, so non-MDS callers must decode through a rank-aware
  /// solver instead.
  explicit GroupCoder(Matrix<F> parity_matrix)
      : m_(parity_matrix.rows()),
        k_(parity_matrix.cols()),
        parity_matrix_(std::move(parity_matrix)) {}

  size_t m() const { return m_; }
  size_t k() const { return k_; }
  const Matrix<F>& parity_matrix() const { return parity_matrix_; }

  /// Coefficient applied to data slot `i` when folding into parity `j`.
  /// Coefficient(i, 0) == 1 for all i: parity 0 is the XOR bucket.
  Symbol Coefficient(size_t data_slot, size_t parity_idx) const {
    return parity_matrix_.At(data_slot, parity_idx);
  }

  /// Full-group encode. `data[i]` may be nullptr (absent member == zero
  /// buffer). Returns k parity buffers, each of the padded common length.
  std::vector<Bytes> Encode(std::span<const Bytes* const> data) const {
    LHRS_CHECK_EQ(data.size(), m_);
    size_t len = 0;
    for (const Bytes* d : data) {
      if (d != nullptr) len = std::max(len, d->size());
    }
    len = PaddedLength(len);
    std::vector<Bytes> parity(k_, Bytes(len, 0));
    if (len == 0) return parity;
    // Pad each present member once (full-length members are fed to the
    // kernel in place), then fold every member into each parity column
    // with one fused row pass: one read-modify-write of the parity buffer
    // per column instead of one per member.
    std::vector<Bytes> padded_storage;
    std::vector<const uint8_t*> srcs;
    std::vector<size_t> slots;
    for (size_t i = 0; i < m_; ++i) {
      if (data[i] == nullptr || data[i]->empty()) continue;
      if (data[i]->size() == len) {
        srcs.push_back(data[i]->data());
      } else {
        padded_storage.push_back(PadTo(*data[i], len));
        srcs.push_back(padded_storage.back().data());
      }
      slots.push_back(i);
    }
    std::vector<Symbol> coeffs(srcs.size());
    for (size_t j = 0; j < k_; ++j) {
      for (size_t t = 0; t < slots.size(); ++t) {
        coeffs[t] = Coefficient(slots[t], j);
      }
      F::MulAddRow(parity[j].data(), srcs.data(), coeffs.data(),
                   srcs.size(), len);
    }
    return parity;
  }

  /// Incremental parity maintenance into a copy-on-write view: the parity
  /// bytes are updated in place when no snapshot (wire dump, recovery
  /// read) shares them, and detached onto a fresh buffer first when one
  /// does — snapshots never observe later deltas.
  void ApplyDelta(size_t data_slot, std::span<const uint8_t> delta,
                  size_t parity_idx, BufferView* parity) const {
    LHRS_CHECK_LT(data_slot, m_);
    LHRS_CHECK_LT(parity_idx, k_);
    // Zero coefficient (non-MDS layouts): the slot does not feed this
    // parity column, and the buffer must not grow for it — a local parity
    // stores only its own group's extent.
    if (Coefficient(data_slot, parity_idx) == 0) return;
    const size_t len = PaddedLength(delta.size());
    const size_t target = std::max(parity->size(), len);
    uint8_t* dst = parity->MutableResized(target);
    if (delta.size() == len) {
      F::MulAddBuffer(dst, delta.data(), len,
                      Coefficient(data_slot, parity_idx));
    } else {
      const Bytes padded = PadTo(delta, len);
      F::MulAddBuffer(dst, padded.data(), len,
                      Coefficient(data_slot, parity_idx));
    }
  }

  /// Incremental parity maintenance: folds `coeff(i, j) * delta` into
  /// `parity`, growing it (zero padding) as needed. `delta` is
  /// old_payload XOR new_payload (with the shorter one zero-padded), which
  /// equals new_payload on insert and old_payload on delete.
  void ApplyDelta(size_t data_slot, std::span<const uint8_t> delta,
                  size_t parity_idx, Bytes* parity) const {
    LHRS_CHECK_LT(data_slot, m_);
    LHRS_CHECK_LT(parity_idx, k_);
    if (Coefficient(data_slot, parity_idx) == 0) return;
    const size_t len = PaddedLength(delta.size());
    if (parity->size() < len) parity->resize(len, 0);
    if (delta.size() == len) {
      F::MulAddBuffer(parity->data(), delta.data(), len,
                      Coefficient(data_slot, parity_idx));
    } else {
      const Bytes padded = PadTo(delta, len);
      F::MulAddBuffer(parity->data(), padded.data(), len,
                      Coefficient(data_slot, parity_idx));
    }
  }

  /// Reconstructs the requested data columns from any >= m available
  /// codeword columns. `available` holds (column index, payload) pairs;
  /// column indices in [0, m) are data slots, in [m, m+k) parity slots.
  /// Absent-but-known-empty data slots should be passed as available columns
  /// with an empty payload.
  ///
  /// Returns the reconstructed payloads in the order of `missing_data`,
  /// each padded to the common group length (callers trim using the record
  /// length recorded in the parity metadata). Fails with DataLoss when
  /// fewer than m columns are available.
  Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, Bytes>>& available,
      const std::vector<size_t>& missing_data) const {
    std::vector<std::pair<size_t, BufferView>> views;
    views.reserve(available.size());
    for (const auto& [col, payload] : available) {
      views.emplace_back(col, BufferView(payload));
    }
    return DecodeData(views, missing_data);
  }

  /// Zero-copy overload: survivor columns come in as shared views (straight
  /// out of recovery dumps); only the decode work buffers are allocated.
  Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, BufferView>>& available,
      const std::vector<size_t>& missing_data) const {
    if (available.size() < m_) {
      return Status::DataLoss(
          "unrecoverable record group: " + std::to_string(available.size()) +
          " of " + std::to_string(m_) + " required columns available");
    }
    for (size_t col : missing_data) {
      LHRS_CHECK_LT(col, m_) << "only data columns can be requested";
    }
    // Use exactly m of the available columns, preferring data columns (they
    // carry identity rows, keeping the decode matrix mostly trivial).
    std::vector<std::pair<size_t, const BufferView*>> use;
    use.reserve(m_);
    for (const auto& [col, payload] : available) {
      if (col < m_ && use.size() < m_) use.emplace_back(col, &payload);
    }
    for (const auto& [col, payload] : available) {
      if (col >= m_ && use.size() < m_) use.emplace_back(col, &payload);
    }
    LHRS_CHECK_EQ(use.size(), m_);

    size_t len = 0;
    for (const auto& [col, payload] : use) {
      len = std::max(len, payload->size());
    }
    len = PaddedLength(len);

    // Codeword relation: value(col) = sum_i d_i * G[i][col] with
    // G = [I | P]. Stack the m used columns into A (m x m):
    // A[i][t] = G[i][use[t].col]; then d = values * A^{-1}.
    Matrix<F> a(m_, m_);
    for (size_t t = 0; t < m_; ++t) {
      const size_t col = use[t].first;
      for (size_t i = 0; i < m_; ++i) {
        if (col < m_) {
          a.Set(i, t, i == col ? 1 : 0);
        } else {
          a.Set(i, t, Coefficient(i, col - m_));
        }
      }
    }
    auto inv = a.Inverted();
    if (!inv.ok()) {
      return Status::Internal("decode matrix singular — MDS violation: " +
                              inv.status().message());
    }

    // Pad each survivor once (full-length survivors are shared views fed to
    // the kernel in place), then reconstruct each wanted column with one
    // fused row pass over all m survivors: d_want = sum_t values_t *
    // Ainv[t][want]. Empty survivors are known-zero buffers; zeroing their
    // coefficient lets the kernel skip them without a padded copy.
    std::vector<Bytes> padded_storage;
    std::vector<const uint8_t*> srcs(m_, nullptr);
    std::vector<bool> known_zero(m_, false);
    for (size_t t = 0; t < m_; ++t) {
      const BufferView& col = *use[t].second;
      if (col.empty() || len == 0) {
        known_zero[t] = true;
      } else if (col.size() == len) {
        srcs[t] = col.data();
      } else {
        padded_storage.push_back(PadTo(col, len));
        srcs[t] = padded_storage.back().data();
      }
    }
    std::vector<Symbol> coeffs(m_);
    std::vector<Bytes> out;
    out.reserve(missing_data.size());
    for (size_t want : missing_data) {
      Bytes rec(len, 0);
      for (size_t t = 0; t < m_; ++t) {
        coeffs[t] = known_zero[t] ? 0 : inv->At(t, want);
      }
      if (len != 0) {
        F::MulAddRow(rec.data(), srcs.data(), coeffs.data(), m_, len);
      }
      out.push_back(std::move(rec));
    }
    return out;
  }

  /// Rounds a payload length up to a whole number of field symbols.
  size_t PaddedLength(size_t n) const {
    const size_t s = F::kSymbolBytes;
    return (n + s - 1) / s * s;
  }

 private:
  size_t m_;
  size_t k_;
  Matrix<F> parity_matrix_;
};

}  // namespace lhrs

#endif  // LHRS_RS_CODER_H_
