#ifndef LHRS_RS_GENERATOR_H_
#define LHRS_RS_GENERATOR_H_

#include <cstddef>

#include "common/result.h"
#include "rs/matrix.h"

namespace lhrs {

/// Builds the m x k parity-coefficient matrix P of the systematic LH*RS
/// code. The full generator is G = [I_m | P]; the code is MDS (any m of the
/// m+k codeword symbols reconstruct the group) iff every square submatrix of
/// P is nonsingular.
///
/// Construction (the one the LH*RS line of work settled on): start from the
/// Cauchy matrix C[i][j] = 1 / (x_i + y_j) with all x_i, y_j distinct —
/// every square submatrix of a Cauchy matrix is nonsingular — then scale
/// each row so column 0 becomes all ones and each column so row 0 becomes
/// all ones. Row/column scaling by non-zero constants preserves submatrix
/// nonsingularity, and the all-ones first column turns the first parity
/// bucket into a plain XOR bucket: 1-availability at LH*g price, with the
/// Reed-Solomon machinery only paying for k > 1.
///
/// Requires m + k <= F::kOrder. Fails with InvalidArgument otherwise.
template <GaloisField F>
Result<Matrix<F>> BuildParityMatrix(size_t m, size_t k) {
  if (m == 0 || k == 0) {
    return Status::InvalidArgument("parity matrix needs m >= 1 and k >= 1");
  }
  if (m + k > F::kOrder) {
    return Status::InvalidArgument(
        "group size m + availability k exceeds field order");
  }
  using Symbol = typename F::Symbol;
  Matrix<F> p(m, k);
  // x_i = i for data rows, y_j = m + j for parity columns: all distinct, so
  // x_i ^ y_j != 0 always holds in a binary field.
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      const Symbol x = static_cast<Symbol>(i);
      const Symbol y = static_cast<Symbol>(m + j);
      p.Set(i, j, F::Inv(F::Add(x, y)));
    }
  }
  // Normalise rows: divide row i by its column-0 entry.
  for (size_t i = 0; i < m; ++i) {
    const Symbol f = F::Inv(p.At(i, 0));
    for (size_t j = 0; j < k; ++j) p.Set(i, j, F::Mul(p.At(i, j), f));
  }
  // Normalise columns: divide column j by its row-0 entry.
  for (size_t j = 0; j < k; ++j) {
    const Symbol f = F::Inv(p.At(0, j));
    for (size_t i = 0; i < m; ++i) p.Set(i, j, F::Mul(p.At(i, j), f));
  }
  return p;
}

/// The naive textbook construction P[i][j] = alpha^(i*j): a Vandermonde-
/// style matrix appended to the identity. This does NOT yield an MDS code
/// for all (m, k) — kept as the ablation target showing why LH*RS needs the
/// Cauchy-derived matrix (see rs/generator_test.cc).
template <GaloisField F>
Matrix<F> BuildNaiveVandermondeParity(size_t m, size_t k) {
  Matrix<F> p(m, k);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      p.Set(i, j, F::Exp(static_cast<uint32_t>(i * j)));
    }
  }
  return p;
}

/// Exhaustively verifies the MDS property of a parity matrix: every square
/// submatrix (all sizes, all row/column subsets) must be nonsingular.
/// Exponential in min(m, k); intended for tests with small k.
template <GaloisField F>
bool IsMdsParityMatrix(const Matrix<F>& p);

// Implementation details only below here.

namespace rs_internal {

/// Enumerates all size-`want` subsets of [0, n) into `out`, invoking `fn` on
/// each complete subset. Returns false early if `fn` returns false.
template <typename Fn>
bool ForEachSubset(size_t n, size_t want, std::vector<size_t>& out, Fn&& fn,
                   size_t start = 0) {
  if (out.size() == want) return fn(out);
  for (size_t v = start; v < n; ++v) {
    out.push_back(v);
    if (!ForEachSubset(n, want, out, fn, v + 1)) return false;
    out.pop_back();
  }
  return true;
}

}  // namespace rs_internal

template <GaloisField F>
bool IsMdsParityMatrix(const Matrix<F>& p) {
  const size_t max_size = std::min(p.rows(), p.cols());
  for (size_t s = 1; s <= max_size; ++s) {
    std::vector<size_t> rows;
    bool ok = rs_internal::ForEachSubset(
        p.rows(), s, rows, [&](const std::vector<size_t>& r) {
          std::vector<size_t> cols;
          return rs_internal::ForEachSubset(
              p.cols(), s, cols, [&](const std::vector<size_t>& c) {
                return p.Submatrix(r, c).Determinant() != 0;
              });
        });
    if (!ok) return false;
  }
  return true;
}

}  // namespace lhrs

#endif  // LHRS_RS_GENERATOR_H_
