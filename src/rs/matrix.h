#ifndef LHRS_RS_MATRIX_H_
#define LHRS_RS_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"
#include "gf/gf.h"

namespace lhrs {

/// Dense matrix over a Galois field. Used for the Reed-Solomon generator
/// matrix and the per-recovery decode matrices; these are tiny (m+k <= a few
/// dozen), so a straightforward row-major vector is the right representation.
template <GaloisField F>
class Matrix {
 public:
  using Symbol = typename F::Symbol;

  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static Matrix Identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m.Set(i, i, 1);
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  Symbol At(size_t r, size_t c) const {
    LHRS_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  void Set(size_t r, size_t c, Symbol v) {
    LHRS_CHECK(r < rows_ && c < cols_);
    data_[r * cols_ + c] = v;
  }

  /// Matrix product this * other.
  Matrix Mul(const Matrix& other) const {
    LHRS_CHECK_EQ(cols_, other.rows_);
    Matrix out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
      for (size_t j = 0; j < other.cols_; ++j) {
        Symbol acc = 0;
        for (size_t t = 0; t < cols_; ++t) {
          acc = F::Add(acc, F::Mul(At(i, t), other.At(t, j)));
        }
        out.Set(i, j, acc);
      }
    }
    return out;
  }

  /// Gauss-Jordan inversion. Fails with InvalidArgument when singular —
  /// for an MDS generator matrix this never happens on decode submatrices,
  /// and the tests rely on that.
  Result<Matrix> Inverted() const {
    LHRS_CHECK_EQ(rows_, cols_);
    const size_t n = rows_;
    Matrix a = *this;
    Matrix inv = Identity(n);
    for (size_t col = 0; col < n; ++col) {
      // Find a pivot row.
      size_t pivot = col;
      while (pivot < n && a.At(pivot, col) == 0) ++pivot;
      if (pivot == n) {
        return Status::InvalidArgument("matrix is singular");
      }
      if (pivot != col) {
        a.SwapRows(pivot, col);
        inv.SwapRows(pivot, col);
      }
      // Scale the pivot row to make the pivot 1.
      const Symbol p = a.At(col, col);
      const Symbol pinv = F::Inv(p);
      a.ScaleRow(col, pinv);
      inv.ScaleRow(col, pinv);
      // Eliminate the column everywhere else.
      for (size_t r = 0; r < n; ++r) {
        if (r == col) continue;
        const Symbol f = a.At(r, col);
        if (f == 0) continue;
        a.AddScaledRow(r, col, f);
        inv.AddScaledRow(r, col, f);
      }
    }
    return inv;
  }

  /// Determinant via Gaussian elimination (used by MDS-property tests).
  Symbol Determinant() const {
    LHRS_CHECK_EQ(rows_, cols_);
    const size_t n = rows_;
    Matrix a = *this;
    Symbol det = 1;
    for (size_t col = 0; col < n; ++col) {
      size_t pivot = col;
      while (pivot < n && a.At(pivot, col) == 0) ++pivot;
      if (pivot == n) return 0;
      if (pivot != col) a.SwapRows(pivot, col);  // Swap negates; char 2: no-op.
      const Symbol p = a.At(col, col);
      det = F::Mul(det, p);
      const Symbol pinv = F::Inv(p);
      a.ScaleRow(col, pinv);
      for (size_t r = col + 1; r < n; ++r) {
        const Symbol f = a.At(r, col);
        if (f != 0) a.AddScaledRow(r, col, f);
      }
    }
    return det;
  }

  /// Returns the submatrix with the given rows and columns (for MDS checks).
  Matrix Submatrix(const std::vector<size_t>& rows,
                   const std::vector<size_t>& cols) const {
    Matrix out(rows.size(), cols.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = 0; j < cols.size(); ++j) {
        out.Set(i, j, At(rows[i], cols[j]));
      }
    }
    return out;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < rows_; ++i) {
      for (size_t j = 0; j < cols_; ++j) {
        out += std::to_string(static_cast<uint64_t>(At(i, j)));
        out += (j + 1 == cols_) ? '\n' : ' ';
      }
    }
    return out;
  }

 private:
  void SwapRows(size_t r1, size_t r2) {
    for (size_t c = 0; c < cols_; ++c) {
      std::swap(data_[r1 * cols_ + c], data_[r2 * cols_ + c]);
    }
  }
  void ScaleRow(size_t r, Symbol f) {
    for (size_t c = 0; c < cols_; ++c) {
      data_[r * cols_ + c] = F::Mul(data_[r * cols_ + c], f);
    }
  }
  /// row[dst] += f * row[src] (in characteristic 2, += is XOR).
  void AddScaledRow(size_t dst, size_t src, Symbol f) {
    for (size_t c = 0; c < cols_; ++c) {
      data_[dst * cols_ + c] =
          F::Add(data_[dst * cols_ + c], F::Mul(f, data_[src * cols_ + c]));
    }
  }

  size_t rows_;
  size_t cols_;
  std::vector<Symbol> data_;
};

}  // namespace lhrs

#endif  // LHRS_RS_MATRIX_H_
