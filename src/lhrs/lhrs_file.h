#ifndef LHRS_LHRS_LHRS_FILE_H_
#define LHRS_LHRS_LHRS_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "lhrs/parity_bucket.h"
#include "lhrs/rs_coordinator.h"
#include "lhrs/rs_data_bucket.h"
#include "lhrs/shared.h"
#include "lhstar/lhstar_file.h"

namespace lhrs {

/// The public face of this library: an LH*RS file — a scalable distributed
/// hash file with k-availability through Reed-Solomon-coded parity buckets —
/// on a simulated multicomputer.
///
/// Usage:
///
///     lhrs::LhrsFile::Options opts;
///     opts.group_size = 4;                 // m
///     opts.policy.base_k = 2;              // 2-availability
///     lhrs::LhrsFile file(opts);
///     file.Insert(42, lhrs::BytesFromString("payload")).ok();
///     file.CrashDataBucket(0);
///     file.Search(42);                     // still answers (record recovery)
///
/// Inherits all client operations (Insert/Search/Update/Delete/Scan,
/// multi-client variants) from LhStarFile; adds failure injection,
/// recovery control and parity introspection.
class LhrsFile : public LhStarFile {
 public:
  struct Options {
    FileConfig file;
    NetworkConfig net;
    uint32_t group_size = 4;  ///< The paper's m (data buckets per group).
    AvailabilityPolicy policy;  ///< k per group; supports scalable k.
    bool auto_recover = true;   ///< Recover buckets on failure detection.
    bool reuse_ranks = true;    ///< Ablation: see LhrsContext::reuse_ranks.
    FieldChoice field = FieldChoice::kGf256;  ///< Parity symbol width.
    /// Parity scheme: RS (the paper's code), LRC, progressive decoding.
    /// See parity::CodeSpec::Parse for the flag syntax ("rs", "lrc2",
    /// "rs+prog", ...).
    parity::CodeSpec code;
  };

  explicit LhrsFile(Options options);

  // --- Failure injection & recovery --------------------------------------
  /// Crashes the server carrying data bucket `b`. Returns its node id.
  NodeId CrashDataBucket(BucketNo b);
  /// Crashes parity bucket `parity_index` of group `g`.
  NodeId CrashParityBucket(uint32_t g, uint32_t parity_index);
  /// Restores a previously crashed node (it self-checks with the
  /// coordinator and stands down if it was replaced).
  void RestoreNode(NodeId node);
  /// Tells the coordinator about a failed node and runs recovery to
  /// completion (the explicit-detection path; client traffic triggers the
  /// lazy path by itself).
  void DetectAndRecover(NodeId node);
  /// Recovers every failed column in every group.
  void RecoverAll();

  /// Exercises algorithm (A6): reconstructs the file state (i, n) from a
  /// state scan of the buckets and returns it.
  Result<FileState> RecoverFileState();

  /// Integrity audit: scrubs every bucket group (reads all columns,
  /// recomputes parity from data, compares). With `repair`, mismatched
  /// parity columns are re-encoded and reinstalled. All nodes must be up.
  RsCoordinatorNode::ScrubReport Scrub(bool repair = false);

  /// Simulates a coordinator restart with total soft-state loss, then
  /// rebuilds the file state, allocation table and parity directory from a
  /// node survey (and recovers any silently-dead buckets). Returns OK when
  /// the rebuild completed.
  Status SimulateCoordinatorRestart();

  // --- Introspection -------------------------------------------------------
  RsCoordinatorNode& rs_coordinator() { return *rs_coordinator_; }
  const RsCoordinatorNode& rs_coordinator() const { return *rs_coordinator_; }
  uint32_t group_size() const { return lhrs_ctx_->m; }
  size_t group_count() const { return rs_coordinator_->group_count(); }
  RsDataBucketNode* rs_bucket(BucketNo b) const;
  ParityBucketNode* parity_bucket(uint32_t g, uint32_t parity_index) const;

  StorageStats GetStorageStats() const override;

  std::string code_name() const override {
    return lhrs_ctx_->coders->code().Name();
  }

  /// Recomputes every group's parity from the data buckets and compares it
  /// (and the key/length metadata) against the parity buckets' contents.
  /// The central end-to-end invariant of the scheme; returns a descriptive
  /// Internal error on the first mismatch.
  Status VerifyParityInvariants() const;

 protected:
  /// Chaos: a bucket group's members are its live data buckets plus its
  /// parity buckets — the unit of correlated failure (FaultKind::
  /// kCrashGroup picks victims among them).
  chaos::ChaosEngine::GroupResolver ChaosGroupResolver() override;

 private:
  std::shared_ptr<LhrsContext> lhrs_ctx_;
  RsCoordinatorNode* rs_coordinator_ = nullptr;  // Owned by network_.
  /// Typed registry of parity buckets (data buckets live in the base's
  /// registry), filled by the parity factory.
  sdds::NodeIndex<ParityBucketNode> parity_nodes_;
};

}  // namespace lhrs

#endif  // LHRS_LHRS_LHRS_FILE_H_
