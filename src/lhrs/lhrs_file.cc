#include "lhrs/lhrs_file.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"

namespace lhrs {

namespace {

LhStarFile::Options ToBaseOptions(const LhrsFile::Options& options) {
  LhStarFile::Options base;
  base.file = options.file;
  base.net = options.net;
  return base;
}

/// Compares two byte strings modulo trailing zero padding.
bool EqualModuloPadding(std::span<const uint8_t> a,
                        std::span<const uint8_t> b) {
  const size_t n = std::min(a.size(), b.size());
  if (!std::equal(a.begin(), a.begin() + n, b.begin())) return false;
  std::span<const uint8_t> longer = a.size() >= b.size() ? a : b;
  for (size_t i = n; i < longer.size(); ++i) {
    if (longer[i] != 0) return false;
  }
  return true;
}

}  // namespace

LhrsFile::LhrsFile(Options options)
    : LhStarFile(ToBaseOptions(options), DeferInit{}) {
  RegisterLhrsMessageNames();

  lhrs_ctx_ = std::make_shared<LhrsContext>();
  lhrs_ctx_->base = ctx_;
  lhrs_ctx_->m = options.group_size;
  lhrs_ctx_->coders = std::make_shared<CoderCache>(
      options.group_size, options.field, options.code);
  lhrs_ctx_->policy = options.policy;
  lhrs_ctx_->auto_recover = options.auto_recover;
  lhrs_ctx_->reuse_ranks = options.reuse_ranks;

  auto coordinator = std::make_unique<RsCoordinatorNode>(lhrs_ctx_);
  rs_coordinator_ = coordinator.get();
  coordinator_ = rs_coordinator_;
  ctx_->coordinator = network_->AddNode(std::move(coordinator));

  rs_coordinator_->SetBucketFactory([this](BucketNo bucket, Level level) {
    auto node = std::make_unique<RsDataBucketNode>(
        lhrs_ctx_, bucket, level, /*pre_initialized=*/false);
    RsDataBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    RegisterDataBucket(id, ptr);
    return id;
  });
  rs_coordinator_->SetParityFactory(
      [this](uint32_t group, uint32_t parity_index, uint32_t k, bool spare) {
        auto node = std::make_unique<ParityBucketNode>(
            lhrs_ctx_, group, parity_index, k, /*pre_initialized=*/!spare);
        ParityBucketNode* ptr = node.get();
        const NodeId id = network_->AddNode(std::move(node));
        parity_nodes_.Register(id, ptr);
        return id;
      });

  for (BucketNo b = 0; b < ctx_->config.initial_buckets; ++b) {
    auto node = std::make_unique<RsDataBucketNode>(lhrs_ctx_, b, /*level=*/0,
                                                   /*pre_initialized=*/true);
    RsDataBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    RegisterDataBucket(id, ptr);
    ctx_->allocation.Set(b, id);
  }
  rs_coordinator_->InitializeGroups();
  AddClient();
  network_->RunUntilIdle();  // Deliver the initial group configurations.
}

NodeId LhrsFile::CrashDataBucket(BucketNo b) {
  const NodeId node = ctx_->allocation.Lookup(b);
  network_->SetAvailable(node, false);
  return node;
}

NodeId LhrsFile::CrashParityBucket(uint32_t g, uint32_t parity_index) {
  const NodeId node = rs_coordinator_->group_info(g).parity_nodes.at(
      parity_index);
  network_->SetAvailable(node, false);
  return node;
}

void LhrsFile::RestoreNode(NodeId node) {
  network_->SetAvailable(node, true);
  // Self-detected recovery (section 2.5.4): the node checks with the
  // coordinator whether it still carries its bucket.
  if (DataBucketNode* bucket = data_node(node)) {
    bucket->SelfCheck();
    network_->RunUntilIdle();
  }
}

chaos::ChaosEngine::GroupResolver LhrsFile::ChaosGroupResolver() {
  return [this](uint32_t g) {
    std::vector<NodeId> members;
    if (g >= rs_coordinator_->group_count()) return members;
    const uint32_t m = lhrs_ctx_->m;
    const BucketNo bucket_count = coordinator_->state().bucket_count();
    for (uint32_t j = 0; j < m; ++j) {
      const BucketNo b = g * m + j;
      if (b >= bucket_count) break;
      members.push_back(ctx_->allocation.Lookup(b));
    }
    for (NodeId p : rs_coordinator_->group_info(g).parity_nodes) {
      members.push_back(p);
    }
    return members;
  };
}

void LhrsFile::DetectAndRecover(NodeId node) {
  rs_coordinator_->NotifyUnavailable(node);
  network_->RunUntilIdle();
}

void LhrsFile::RecoverAll() {
  for (uint32_t g = 0; g < rs_coordinator_->group_count(); ++g) {
    rs_coordinator_->RecoverGroup(g);
  }
  network_->RunUntilIdle();
}

RsCoordinatorNode::ScrubReport LhrsFile::Scrub(bool repair) {
  rs_coordinator_->ResetScrubReport();
  for (uint32_t g = 0; g < rs_coordinator_->group_count(); ++g) {
    rs_coordinator_->StartScrub(g, repair);
    network_->RunUntilIdle();
  }
  return rs_coordinator_->scrub_report();
}

Status LhrsFile::SimulateCoordinatorRestart() {
  rs_coordinator_->WipeSoftStateAndResurvey();
  network_->RunUntilIdle();
  if (!rs_coordinator_->survey_rebuilt()) {
    return Status::Internal("survey did not complete");
  }
  return Status::OK();
}

Result<FileState> LhrsFile::RecoverFileState() {
  rs_coordinator_->StartFileStateRecovery();
  network_->RunUntilIdle();
  return rs_coordinator_->FinishFileStateRecovery();
}

RsDataBucketNode* LhrsFile::rs_bucket(BucketNo b) const {
  // Every data bucket of an LH*RS file is an RsDataBucketNode, so the
  // registered base pointer downcasts statically.
  DataBucketNode* node = data_node(ctx_->allocation.Lookup(b));
  LHRS_CHECK(node != nullptr) << "bucket " << b << " not registered";
  return static_cast<RsDataBucketNode*>(node);
}

ParityBucketNode* LhrsFile::parity_bucket(uint32_t g,
                                          uint32_t parity_index) const {
  return parity_nodes_.At(
      rs_coordinator_->group_info(g).parity_nodes.at(parity_index));
}

StorageStats LhrsFile::GetStorageStats() const {
  StorageStats stats = LhStarFile::GetStorageStats();
  for (uint32_t g = 0; g < rs_coordinator_->group_count(); ++g) {
    const auto& info = rs_coordinator_->group_info(g);
    for (uint32_t j = 0; j < info.k; ++j) {
      stats.parity_bytes += parity_bucket(g, j)->StorageBytes();
      ++stats.parity_buckets;
    }
  }
  return stats;
}

Status LhrsFile::VerifyParityInvariants() const {
  const uint32_t m = lhrs_ctx_->m;
  const BucketNo total = bucket_count();
  for (uint32_t g = 0; g < rs_coordinator_->group_count(); ++g) {
    const auto& info = rs_coordinator_->group_info(g);
    if (info.lost) continue;
    const uint32_t existing =
        std::min<BucketNo>(m, total - std::min<BucketNo>(total, g * m));
    // Gather ground truth: per rank, the member values by slot.
    struct Truth {
      std::vector<std::optional<Key>> keys;
      std::vector<uint32_t> lengths;
      std::vector<BufferView> values;
      explicit Truth(uint32_t m)
          : keys(m), lengths(m, 0), values(m) {}
    };
    std::map<Rank, Truth> truth;
    for (uint32_t slot = 0; slot < existing; ++slot) {
      const BucketNo b = g * m + slot;
      if (!network_->available(ctx_->allocation.Lookup(b))) {
        return Status::Internal("cannot verify: data bucket " +
                                std::to_string(b) + " is down");
      }
      for (const auto& rec : rs_bucket(b)->RankedRecords()) {
        auto [it, unused] = truth.try_emplace(rec.rank, Truth(m));
        Truth& t = it->second;
        t.keys[slot] = rec.key;
        t.lengths[slot] = static_cast<uint32_t>(rec.value.size());
        t.values[slot] = rec.value;
      }
    }
    const ErasureCoder& coder = lhrs_ctx_->coders->ForK(info.k);
    for (uint32_t j = 0; j < info.k; ++j) {
      const ParityBucketNode* parity = parity_bucket(g, j);
      const auto& records = parity->parity_records();
      // Every ground-truth rank must have a parity record, and vice versa.
      if (records.size() != truth.size()) {
        return Status::Internal(
            "group " + std::to_string(g) + " parity " + std::to_string(j) +
            ": " + std::to_string(records.size()) + " parity records vs " +
            std::to_string(truth.size()) + " record groups");
      }
      for (const auto& [rank, t] : truth) {
        auto it = records.find(rank);
        if (it == records.end()) {
          return Status::Internal("group " + std::to_string(g) +
                                  ": missing parity record for rank " +
                                  std::to_string(rank));
        }
        const ParityRecord& pr = it->second;
        for (uint32_t slot = 0; slot < m; ++slot) {
          if (pr.keys[slot] != t.keys[slot]) {
            return Status::Internal(
                "group " + std::to_string(g) + " rank " +
                std::to_string(rank) + ": key mismatch at slot " +
                std::to_string(slot));
          }
          if (t.keys[slot].has_value() && pr.lengths[slot] != t.lengths[slot]) {
            return Status::Internal(
                "group " + std::to_string(g) + " rank " +
                std::to_string(rank) + ": length mismatch at slot " +
                std::to_string(slot));
          }
        }
        Bytes expected;
        for (uint32_t slot = 0; slot < m; ++slot) {
          if (!t.keys[slot].has_value()) continue;
          coder.ApplyDelta(slot, t.values[slot], j, &expected);
        }
        if (!EqualModuloPadding(expected, pr.parity)) {
          return Status::Internal(
              "group " + std::to_string(g) + " parity " + std::to_string(j) +
              " rank " + std::to_string(rank) + ": parity bytes mismatch");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace lhrs
