#ifndef LHRS_LHRS_MESSAGES_H_
#define LHRS_LHRS_MESSAGES_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "lh/lh_math.h"
#include "lhstar/messages.h"
#include "net/message.h"

namespace lhrs {

/// Message kinds of the LH*RS parity / recovery layer (range [200, 300)).
struct LhrsMsg {
  static constexpr int kParityDelta = MessageKindRange::kLhrsBase + 0;
  static constexpr int kParityDeltaBatch = MessageKindRange::kLhrsBase + 1;
  static constexpr int kGroupConfig = MessageKindRange::kLhrsBase + 2;
  static constexpr int kColumnReadRequest = MessageKindRange::kLhrsBase + 3;
  static constexpr int kColumnReadReply = MessageKindRange::kLhrsBase + 4;
  static constexpr int kInstallDataColumn = MessageKindRange::kLhrsBase + 5;
  static constexpr int kInstallParityColumn = MessageKindRange::kLhrsBase + 6;
  static constexpr int kInstallDone = MessageKindRange::kLhrsBase + 7;
  static constexpr int kFindRankRequest = MessageKindRange::kLhrsBase + 8;
  static constexpr int kFindRankReply = MessageKindRange::kLhrsBase + 9;
  static constexpr int kRecordReadRequest = MessageKindRange::kLhrsBase + 10;
  static constexpr int kRecordReadReply = MessageKindRange::kLhrsBase + 11;
  static constexpr int kParityRecordRequest =
      MessageKindRange::kLhrsBase + 12;
  static constexpr int kParityRecordReply = MessageKindRange::kLhrsBase + 13;
  static constexpr int kPingRequest = MessageKindRange::kLhrsBase + 14;
  static constexpr int kPongReply = MessageKindRange::kLhrsBase + 15;
};

void RegisterLhrsMessageNames();

/// Record rank within its bucket (1-based; the record group key is
/// (bucket group g, rank r)).
using Rank = uint32_t;

/// One incremental parity maintenance action for record group (g, rank).
struct ParityDelta {
  Rank rank = 0;
  uint32_t slot = 0;  ///< Data slot (bucket % m) the change happened at.
  enum class KeyOp : uint8_t {
    kNone,   ///< Value-only update.
    kSet,    ///< Member (re)registered: set key + length.
    kClear,  ///< Member removed from the group.
  };
  KeyOp key_op = KeyOp::kNone;
  Key key = 0;
  uint32_t new_length = 0;
  /// old XOR new (zero-padded); the parity-side change. A shared view:
  /// fanning one delta out to k parity buckets copies no payload bytes.
  BufferView delta;

  /// rank + slot + key_op (+pad) + key + new_length + length prefix +
  /// payload, matching the transport codec byte for byte.
  size_t ByteSize() const { return 28 + delta.size(); }
};

/// Data bucket -> parity bucket: one record's parity maintenance.
struct ParityDeltaMsg : MessageBody {
  uint32_t group = 0;
  /// Retransmission count (chaos hardening): a delivery failure under an
  /// active fault injector re-sends the delta a bounded number of times
  /// before falling back to the unavailable-report path. Not on the wire
  /// (a real stack's transport header), so it does not count in ByteSize.
  uint32_t attempt = 0;
  ParityDelta delta;

  int kind() const override { return LhrsMsg::kParityDelta; }
  size_t ByteSize() const override { return 8 + delta.ByteSize(); }
};

/// Data bucket -> parity bucket: bulk parity maintenance (splits batch
/// all moved records into one transfer per parity bucket).
struct ParityDeltaBatchMsg : MessageBody {
  uint32_t group = 0;
  uint32_t attempt = 0;  ///< See ParityDeltaMsg::attempt.
  std::vector<ParityDelta> deltas;

  int kind() const override { return LhrsMsg::kParityDeltaBatch; }
  size_t ByteSize() const override {
    size_t n = 12;  // group + delta count (+ padding).
    for (const auto& d : deltas) n += d.ByteSize();
    return n;
  }
};

/// Coordinator -> data bucket: the parity buckets serving your group (sent
/// at bucket creation and whenever a parity bucket moves to a spare).
struct GroupConfigMsg : MessageBody {
  uint32_t group = 0;
  uint32_t k = 1;
  std::vector<NodeId> parity_nodes;  ///< size k.
  uint32_t attempt = 0;  ///< Transport metadata (resends); not in ByteSize.

  int kind() const override { return LhrsMsg::kGroupConfig; }
  size_t ByteSize() const override { return 16 + 4 * parity_nodes.size(); }
};

/// One data record with its rank, as shipped in recovery dumps.
struct RankedRecord {
  Rank rank = 0;
  Key key = 0;
  BufferView value;  ///< Shares the dumping bucket's segment bytes.

  size_t ByteSize() const { return 16 + value.size(); }
};

/// Wire form of a parity record (the non-key part of parity record (g, r)).
struct WireParityRecord {
  Rank rank = 0;
  /// Per data slot: the member's key, or nullopt when the slot has no
  /// member in this record group.
  std::vector<std::optional<Key>> keys;
  std::vector<uint32_t> lengths;
  BufferView parity;  ///< Snapshot view of the column's parity bytes.

  /// rank + slot count + per-slot (presence + key + length) + parity
  /// length prefix + parity bytes, matching the transport codec.
  size_t ByteSize() const {
    return 12 + keys.size() * 13 + parity.size();
  }
};

/// Coordinator -> surviving column (data or parity bucket): send your full
/// group-relevant content for recovery of group `group`.
struct ColumnReadRequestMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t group = 0;

  int kind() const override { return LhrsMsg::kColumnReadRequest; }
  size_t ByteSize() const override { return 16; }
};

/// Survivor -> coordinator: full column dump. Exactly one of
/// records/parity_records is populated, matching the sender's role.
struct ColumnReadReplyMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t column = 0;  ///< 0..m-1 data slot, m..m+k-1 parity index + m.
  std::vector<RankedRecord> records;
  std::vector<WireParityRecord> parity_records;
  Level level = 0;  ///< Data columns: the bucket's level j.

  uint32_t attempt = 0;  ///< Transport metadata (resends); not in ByteSize.

  int kind() const override { return LhrsMsg::kColumnReadReply; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    for (const auto& p : parity_records) n += p.ByteSize();
    return n;
  }
};

/// Coordinator -> spare: install a reconstructed data bucket.
struct InstallDataColumnMsg : MessageBody {
  uint64_t task_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  std::vector<RankedRecord> records;

  int kind() const override { return LhrsMsg::kInstallDataColumn; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Coordinator -> spare: install a reconstructed parity bucket.
struct InstallParityColumnMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t group = 0;
  uint32_t parity_index = 0;
  std::vector<WireParityRecord> parity_records;

  int kind() const override { return LhrsMsg::kInstallParityColumn; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& p : parity_records) n += p.ByteSize();
    return n;
  }
};

/// Spare -> coordinator: installation finished; the bucket serves traffic.
struct InstallDoneMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t column = 0;
  uint32_t attempt = 0;  ///< Transport metadata (resends); not in ByteSize.

  int kind() const override { return LhrsMsg::kInstallDone; }
  size_t ByteSize() const override { return 16; }
};

/// Coordinator -> parity bucket: which record group holds key `key` at data
/// slot `slot`? First step of degraded-mode record recovery: unlike LH*g,
/// no scan of the parity file is needed — the group's parity bucket is
/// known directly.
struct FindRankRequestMsg : MessageBody {
  uint64_t task_id = 0;
  Key key = 0;
  uint32_t slot = 0;

  int kind() const override { return LhrsMsg::kFindRankRequest; }
  size_t ByteSize() const override { return 24; }
};

struct FindRankReplyMsg : MessageBody {
  uint64_t task_id = 0;
  bool found = false;
  uint32_t parity_index = 0;  ///< Which parity column answered.
  WireParityRecord record;    ///< Valid when found.

  int kind() const override { return LhrsMsg::kFindRankReply; }
  size_t ByteSize() const override { return 16 + record.ByteSize(); }
};

/// Coordinator -> data bucket: read the single record with rank `rank`.
struct RecordReadRequestMsg : MessageBody {
  uint64_t task_id = 0;
  Rank rank = 0;
  uint32_t column = 0;  ///< Requester-side bookkeeping (echoed in replies).

  int kind() const override { return LhrsMsg::kRecordReadRequest; }
  size_t ByteSize() const override { return 16; }
};

struct RecordReadReplyMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t column = 0;
  bool found = false;
  RankedRecord record;

  int kind() const override { return LhrsMsg::kRecordReadReply; }
  size_t ByteSize() const override { return 24 + record.ByteSize(); }
};

/// Coordinator -> parity bucket: read the parity record of rank `rank`.
struct ParityRecordRequestMsg : MessageBody {
  uint64_t task_id = 0;
  Rank rank = 0;
  uint32_t column = 0;  ///< Requester-side bookkeeping (echoed in replies).

  int kind() const override { return LhrsMsg::kParityRecordRequest; }
  size_t ByteSize() const override { return 16; }
};

struct ParityRecordReplyMsg : MessageBody {
  uint64_t task_id = 0;
  uint32_t column = 0;  ///< m + parity index.
  bool found = false;
  WireParityRecord record;

  int kind() const override { return LhrsMsg::kParityRecordReply; }
  size_t ByteSize() const override { return 24 + record.ByteSize(); }
};

/// Coordinator -> any node: liveness probe used to verify third-party
/// unavailability reports before committing to a recovery.
struct PingRequestMsg : MessageBody {
  uint64_t probe_id = 0;

  int kind() const override { return LhrsMsg::kPingRequest; }
  size_t ByteSize() const override { return 8; }
};

struct PongReplyMsg : MessageBody {
  uint64_t probe_id = 0;

  int kind() const override { return LhrsMsg::kPongReply; }
  size_t ByteSize() const override { return 8; }
};

}  // namespace lhrs

#endif  // LHRS_LHRS_MESSAGES_H_
