#ifndef LHRS_LHRS_PARITY_BUCKET_H_
#define LHRS_LHRS_PARITY_BUCKET_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "lhrs/messages.h"
#include "lhrs/shared.h"
#include "net/dedup.h"
#include "net/node.h"

namespace lhrs {

/// In-memory parity record of record group (g, rank) at one parity bucket:
/// the member keys and lengths per data slot, and this parity column's
/// Reed-Solomon parity bytes.
struct ParityRecord {
  std::vector<std::optional<Key>> keys;  ///< size m.
  std::vector<uint32_t> lengths;         ///< size m; 0 when no member.
  /// Copy-on-write view: delta application mutates in place while this
  /// record is the sole owner, and detaches automatically when a ToWire
  /// snapshot still shares the buffer (DESIGN.md section 10).
  BufferView parity;

  explicit ParityRecord(uint32_t m) : keys(m), lengths(m, 0) {}

  bool HasAnyMember() const {
    for (const auto& k : keys) {
      if (k.has_value()) return true;
    }
    return false;
  }

  size_t StorageBytes() const { return keys.size() * 12 + parity.size(); }
};

/// A server carrying one parity bucket: parity column `parity_index` of
/// bucket group `group`, at availability level k.
///
/// Applies incremental parity deltas from the group's data buckets, serves
/// rank lookups for degraded-mode record recovery, and dumps / installs its
/// column during bucket recovery.
class ParityBucketNode : public Node {
 public:
  /// `pre_initialized` is false for recovery spares, which buffer deltas
  /// and reads until the reconstructed column is installed.
  ParityBucketNode(std::shared_ptr<LhrsContext> ctx, uint32_t group,
                   uint32_t parity_index, uint32_t k, bool pre_initialized);

  void HandleMessage(const Message& msg) override;
  void HandleDeliveryFailure(const Message& msg) override;
  const char* role() const override { return "parity-bucket"; }

  uint32_t group() const { return group_; }
  uint32_t parity_index() const { return parity_index_; }
  uint32_t k() const { return k_; }
  size_t parity_record_count() const { return records_.size(); }

  /// Local inspection for tests / invariant verification.
  const std::map<Rank, ParityRecord>& parity_records() const {
    return records_;
  }

  /// Test-only hook: mutable access to a parity record, used to inject
  /// silent corruption that scrubbing must detect. Returns nullptr when
  /// the rank has no record.
  ParityRecord* MutableParityRecordForTest(Rank rank) {
    auto it = records_.find(rank);
    return it == records_.end() ? nullptr : &it->second;
  }

  size_t StorageBytes() const;

 private:
  void Dispatch(const Message& msg);
  void ApplyDelta(const ParityDelta& delta);
  /// Applies `delta` unless its metadata precondition has not arrived yet
  /// (kSet onto a foreign key / kClear of an empty slot — possible only
  /// when chaos reordering swaps deltas in flight). Returns false without
  /// touching any state when the delta must wait.
  bool TryApplyDelta(const ParityDelta& delta);
  /// Re-attempts buffered deltas for (rank, slot) after a successful apply
  /// unblocked them, in arrival order.
  void DrainPendingDeltas(Rank rank, uint32_t slot);
  /// Telemetry for one applied delta round (a kParityDelta message or one
  /// kParityDeltaBatch of `deltas` updates).
  void RecordUpdateRound(size_t deltas);
  WireParityRecord ToWire(Rank rank, const ParityRecord& rec) const;
  void InstallColumn(const InstallParityColumnMsg& install);

  std::shared_ptr<LhrsContext> ctx_;
  /// Delta application XORs into the column — not idempotent, so network
  /// duplicates (chaos) must be filtered by message id on arrival.
  DuplicateFilter dedup_;
  uint32_t group_;
  uint32_t parity_index_;
  uint32_t k_;
  bool initialized_;
  std::map<Rank, ParityRecord> records_;
  /// Degraded-read index: key -> rank (keys are unique across the group).
  std::unordered_map<Key, Rank> key_index_;
  std::vector<std::shared_ptr<Message>> queued_;  // Pre-install traffic.
  /// Deltas that overtook the registration they depend on (chaos reorder
  /// only). The XOR parity bytes commute, but the key/length metadata does
  /// not — so an early arrival waits here, per (rank, slot), and drains in
  /// arrival order once the blocking registration lands.
  std::map<std::pair<Rank, uint32_t>, std::vector<ParityDelta>>
      pending_deltas_;
};

}  // namespace lhrs

#endif  // LHRS_LHRS_PARITY_BUCKET_H_
