#include "lhrs/rs_coordinator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs {

RsCoordinatorNode::RsCoordinatorNode(std::shared_ptr<LhrsContext> lhrs_ctx)
    : CoordinatorNode(lhrs_ctx->base), lhrs_ctx_(std::move(lhrs_ctx)) {}

const RsCoordinatorNode::GroupInfo& RsCoordinatorNode::group_info(
    uint32_t g) const {
  LHRS_CHECK_LT(g, groups_.size());
  return groups_[g];
}

uint32_t RsCoordinatorNode::ExistingSlots(uint32_t g) const {
  const uint32_t m = lhrs_ctx_->m;
  const BucketNo total = state_.bucket_count();
  const BucketNo first = g * m;
  LHRS_CHECK_LT(first, total);
  return std::min<BucketNo>(m, total - first);
}

bool RsCoordinatorNode::NodeUp(NodeId node) const {
  return net()->available(node);
}

void RsCoordinatorNode::EnsureGroup(uint32_t g) {
  LHRS_CHECK(parity_factory_) << "coordinator has no parity factory";
  while (groups_.size() <= g) {
    const uint32_t new_group = static_cast<uint32_t>(groups_.size());
    GroupInfo info;
    info.k = lhrs_ctx_->policy.KForFileSize(state_.bucket_count());
    info.parity_nodes.reserve(info.k);
    for (uint32_t j = 0; j < info.k; ++j) {
      info.parity_nodes.push_back(
          parity_factory_(new_group, j, info.k, /*spare=*/false));
    }
    groups_.push_back(std::move(info));
  }
}

void RsCoordinatorNode::InitializeGroups() {
  const uint32_t last_group =
      GroupOf(state_.bucket_count() - 1, lhrs_ctx_->m);
  EnsureGroup(last_group);
  for (uint32_t g = 0; g <= last_group; ++g) SendGroupConfig(g);
}

void RsCoordinatorNode::SendGroupConfig(uint32_t g) {
  const GroupInfo& info = groups_[g];
  const uint32_t existing = ExistingSlots(g);
  for (uint32_t slot = 0; slot < existing; ++slot) {
    const BucketNo b = g * lhrs_ctx_->m + slot;
    auto cfg = std::make_unique<GroupConfigMsg>();
    cfg->group = g;
    cfg->k = info.k;
    cfg->parity_nodes = info.parity_nodes;
    Send(ctx_->allocation.Lookup(b), std::move(cfg));
  }
}

void RsCoordinatorNode::OnBucketCreated(BucketNo bucket, NodeId node,
                                        Level level) {
  (void)level;
  const uint32_t g = GroupOf(bucket, lhrs_ctx_->m);
  EnsureGroup(g);
  const GroupInfo& info = groups_[g];
  auto cfg = std::make_unique<GroupConfigMsg>();
  cfg->group = g;
  cfg->k = info.k;
  cfg->parity_nodes = info.parity_nodes;
  Send(node, std::move(cfg));
}

// --- Failure detection -------------------------------------------------

void RsCoordinatorNode::HandleUnavailableReport(
    const UnavailableReportMsg& report) {
  // With automatic recovery off, failure handling is operator-driven
  // (NotifyUnavailable); third-party reports are informational only.
  if (!lhrs_ctx_->auto_recover) return;
  // Ignore stale reports (node already replaced) and duplicates (already
  // recovering); otherwise verify with a liveness probe before committing
  // to a recovery.
  if (report.is_parity) {
    if (report.group >= groups_.size()) return;
    const GroupInfo& info = groups_[report.group];
    if (report.parity_index >= info.k) return;
    if (info.parity_nodes[report.parity_index] != report.node) return;
    if (recovering_parity_.contains({report.group, report.parity_index})) {
      return;
    }
  } else {
    if (!ctx_->allocation.Knows(report.bucket)) return;
    if (ctx_->allocation.Lookup(report.bucket) != report.node) return;
    if (recovering_data_.contains(report.bucket)) return;
  }
  const uint64_t probe_id = next_probe_id_++;
  probes_[probe_id] = report.node;
  auto ping = std::make_unique<PingRequestMsg>();
  ping->probe_id = probe_id;
  Send(report.node, std::move(ping));
}

void RsCoordinatorNode::NotifyUnavailable(NodeId node) {
  std::set<uint32_t> affected;
  for (BucketNo b = 0; b < state_.bucket_count(); ++b) {
    if (ctx_->allocation.Knows(b) && ctx_->allocation.Lookup(b) == node) {
      affected.insert(GroupOf(b, lhrs_ctx_->m));
    }
  }
  for (uint32_t g = 0; g < groups_.size(); ++g) {
    for (NodeId p : groups_[g].parity_nodes) {
      if (p == node) affected.insert(g);
    }
  }
  for (uint32_t g : affected) RecoverGroup(g);
}

void RsCoordinatorNode::RecoverGroup(uint32_t g) { StartRecovery(g); }

// --- Recovery orchestration ---------------------------------------------

void RsCoordinatorNode::StartRecovery(uint32_t g) {
  EnsureGroup(g);
  GroupInfo& info = groups_[g];
  if (info.lost) return;
  // A merge-driven shrink can retire every data bucket of a tail group;
  // the group lingers in groups_ but holds nothing to repair.
  if (static_cast<BucketNo>(g) * lhrs_ctx_->m >= state_.bucket_count()) {
    return;
  }

  const uint32_t m = lhrs_ctx_->m;
  const uint32_t existing = ExistingSlots(g);

  // Classify columns.
  std::vector<uint32_t> missing;
  std::vector<uint32_t> alive_data;    // columns (slots).
  std::vector<uint32_t> alive_parity;  // parity indexes.
  for (uint32_t slot = 0; slot < existing; ++slot) {
    const BucketNo b = g * m + slot;
    const NodeId node =
        ctx_->allocation.Knows(b) ? ctx_->allocation.Lookup(b) : kInvalidNode;
    if (recovering_data_.contains(b) || node == kInvalidNode ||
        !NodeUp(node)) {
      missing.push_back(slot);
    } else {
      alive_data.push_back(slot);
    }
  }
  for (uint32_t j = 0; j < info.k; ++j) {
    const NodeId node = info.parity_nodes[j];
    if (recovering_parity_.contains({g, j}) || node == kInvalidNode ||
        !NodeUp(node)) {
      missing.push_back(m + j);
    } else {
      alive_parity.push_back(j);
    }
  }
  if (missing.empty()) return;
  // Already handled by an identical in-flight task? Don't restart it.
  if (auto it = group_task_.find(g); it != group_task_.end()) {
    if (tasks_.at(it->second).missing_columns == missing) return;
  }

  bool missing_has_data = false;
  bool missing_has_parity = false;
  for (uint32_t col : missing) {
    (col < m ? missing_has_data : missing_has_parity) = true;
  }

  // The group's code plans the repair: which survivors to read, and
  // whether decode may start before every reply. A failed plan means the
  // surviving columns cannot determine the lost ones.
  const ErasureCoder& code = lhrs_ctx_->coders->ForK(info.k);
  parity::RepairContext repair_ctx;
  repair_ctx.existing_slots = existing;
  repair_ctx.alive_data = alive_data;
  repair_ctx.alive_parity = alive_parity;
  repair_ctx.missing = missing;
  auto plan = code.PlanRepair(repair_ctx);
  if (!plan.ok()) {
    MarkGroupLost(g);
    return;
  }

  // Abort any in-flight task for this group (its survivor set is stale).
  if (auto it = group_task_.find(g); it != group_task_.end()) {
    TraceTaskAborted(tasks_.at(it->second));
    tasks_.erase(it->second);
    group_task_.erase(it);
  }

  RecoveryTask task;
  task.id = next_task_id_++;
  task.group = g;
  task.missing_columns = missing;

  // Allocate (or reuse) a spare per missing column and repoint the
  // directory at it; uninitialised spares queue traffic until installed.
  for (uint32_t col : missing) {
    if (col < m) {
      const BucketNo b = g * m + col;
      const Level level = state_.BucketLevel(b);
      NodeId spare =
          ctx_->allocation.Knows(b) ? ctx_->allocation.Lookup(b)
                                    : kInvalidNode;
      if (!recovering_data_.contains(b) || spare == kInvalidNode ||
          !NodeUp(spare)) {
        spare = CreateBucketNode(b, level);
        ctx_->allocation.Set(b, spare);
      }
      recovering_data_.insert(b);
      task.spares[col] = spare;
      task.data_levels[col] = level;
    } else {
      const uint32_t j = col - m;
      NodeId spare = info.parity_nodes[j];
      if (!recovering_parity_.contains({g, j}) || spare == kInvalidNode ||
          !NodeUp(spare)) {
        spare = parity_factory_(g, j, info.k, /*spare=*/true);
        info.parity_nodes[j] = spare;
      }
      recovering_parity_.insert({g, j});
      task.spares[col] = spare;
    }
  }
  // New parity locations must reach the group's data buckets — including
  // the data spares, which SendGroupConfig covers because the allocation
  // table already points at them.
  SendGroupConfig(g);

  // Issue the planned reads. Early decode (progressive) only applies when
  // no parity column is missing: re-encoding one needs the full data row,
  // i.e. every planned data read.
  task.progressive = plan->progressive && !missing_has_parity;
  if (task.progressive) {
    std::vector<uint32_t> wanted_data;
    for (uint32_t col : missing) {
      if (col < m) wanted_data.push_back(col);
    }
    std::vector<uint32_t> known_zero;
    for (uint32_t slot = existing; slot < m; ++slot) {
      known_zero.push_back(slot);
    }
    task.rank_tracker = code.NewProgressiveDecoder(wanted_data, known_zero);
  }
  for (uint32_t col : plan->read_columns) {
    auto read = std::make_unique<ColumnReadRequestMsg>();
    read->task_id = task.id;
    read->group = g;
    task.awaiting_reads.insert(col);
    Send(col < m ? ctx_->allocation.Lookup(g * m + col)
                 : info.parity_nodes[col - m],
         std::move(read));
  }

  group_task_[g] = task.id;
  const uint64_t id = task.id;
  tasks_.emplace(id, std::move(task));
  // A group with no reads to await (all survivors are known-zero slots)
  // cannot happen: missing data requires a parity read, and missing parity
  // with no alive data means existing == 0, impossible.
  LHRS_CHECK(!tasks_.at(id).awaiting_reads.empty());

  if (auto* t = net()->telemetry()) {
    const uint64_t now = net()->now();
    RecoveryTask& tk = tasks_.at(id);
    // The plan phase (classify, allocate spares, push config) runs
    // synchronously inside this call, so it begins and ends at `now`; the
    // read phase opens immediately after.
    tk.started_us = now;
    tk.read_started_us = now;
    t->metrics().GetCounter("recovery.started").Add();
    const auto g32 = static_cast<int32_t>(g);
    const int32_t self = this->id();  // Local `id` shadows Node::id().
    auto& tracer = t->tracer();
    tracer.Record({now, telemetry::TraceEventType::kRecoveryBegin, self, -1,
                   -1, g32, static_cast<int64_t>(id)});
    using P = telemetry::RecoveryPhase;
    tracer.Record({now, telemetry::TraceEventType::kRecoveryPhaseBegin,
                   self, -1, -1, g32, static_cast<int64_t>(P::kPlan)});
    tracer.Record({now, telemetry::TraceEventType::kRecoveryPhaseEnd, self,
                   -1, -1, g32, static_cast<int64_t>(P::kPlan)});
    tracer.Record({now, telemetry::TraceEventType::kRecoveryPhaseBegin,
                   self, -1, -1, g32, static_cast<int64_t>(P::kRead)});
  }
}

void RsCoordinatorNode::AbortTaskIfActive(uint64_t task_id, uint32_t g) {
  auto it = group_task_.find(g);
  if (it == group_task_.end() || it->second != task_id) return;
  TraceTaskAborted(tasks_.at(task_id));
  tasks_.erase(task_id);
  group_task_.erase(it);
}

void RsCoordinatorNode::TraceTaskAborted(const RecoveryTask& task) {
  auto* t = net()->telemetry();
  if (t == nullptr || task.started_us == 0) return;
  const uint64_t now = net()->now();
  const auto g32 = static_cast<int32_t>(task.group);
  // The read phase is open until every dump arrived; afterwards the
  // decode+install phase is.
  const auto phase = task.awaiting_reads.empty()
                         ? telemetry::RecoveryPhase::kDecodeInstall
                         : telemetry::RecoveryPhase::kRead;
  t->tracer().Record({now, telemetry::TraceEventType::kRecoveryPhaseEnd,
                      id(), -1, -1, g32, static_cast<int64_t>(phase)});
  t->tracer().Record({now, telemetry::TraceEventType::kRecoveryEnd, id(),
                      -1, -1, g32, /*detail=*/1});
  t->metrics().GetCounter("recovery.aborted").Add();
}

void RsCoordinatorNode::MarkGroupLost(uint32_t g) {
  GroupInfo& info = groups_[g];
  if (info.lost) return;
  info.lost = true;
  ++groups_lost_;
  if (auto* t = net()->telemetry()) {
    t->metrics().GetCounter("recovery.groups_lost").Add();
  }
  LHRS_LOG(Warning) << "bucket group " << g
                    << " lost: more failures than availability level k="
                    << info.k;
  if (auto it = group_task_.find(g); it != group_task_.end()) {
    TraceTaskAborted(tasks_.at(it->second));
    tasks_.erase(it->second);
    group_task_.erase(it);
  }
  const uint32_t m = lhrs_ctx_->m;
  for (uint32_t slot = 0; slot < ExistingSlots(g); ++slot) {
    const BucketNo b = g * m + slot;
    if (recovering_data_.contains(b)) {
      // Stand the half-built spare down so it bounces queued ops back
      // here, where they fail loudly instead of hanging.
      auto stand_down = std::make_unique<SelfCheckReplyMsg>();
      stand_down->bucket = b;
      stand_down->still_owner = false;
      Send(ctx_->allocation.Lookup(b), std::move(stand_down));
    }
    auto parked = parked_.find(b);
    if (parked == parked_.end()) continue;
    for (const auto& op : parked->second) {
      FailClientOp(op, StatusCode::kDataLoss,
                   "bucket group lost more columns than its availability "
                   "level tolerates");
    }
    parked_.erase(parked);
  }
  std::vector<uint64_t> doomed;
  for (auto& [id, task] : degraded_) {
    if (task.group == g) doomed.push_back(id);
  }
  for (uint64_t id : doomed) {
    FailDegradedRead(degraded_.at(id),
                     Status::DataLoss("bucket group lost"));
  }
  // Restructuring steps stalled on buckets of the lost group can never
  // resume; abandon them so the file keeps operating elsewhere.
  bool dropped_restructure = false;
  for (auto it = pending_split_orders_.begin();
       it != pending_split_orders_.end();) {
    if (GroupOf(it->first, m) == g) {
      it = pending_split_orders_.erase(it);
      dropped_restructure = true;
    } else {
      ++it;
    }
  }
  for (auto it = pending_move_records_.begin();
       it != pending_move_records_.end();) {
    if (GroupOf(it->first, m) == g) {
      it = pending_move_records_.erase(it);
      dropped_restructure = true;
    } else {
      ++it;
    }
  }
  for (auto it = pending_merge_records_.begin();
       it != pending_merge_records_.end();) {
    if (GroupOf(it->first, m) == g) {
      it = pending_merge_records_.erase(it);
      dropped_restructure = true;
    } else {
      ++it;
    }
  }
  if (dropped_restructure) AbortRestructure();
  MaybeStartSplit();
}

void RsCoordinatorNode::OnColumnRead(const ColumnReadReplyMsg& reply,
                                     NodeId from) {
  (void)from;
  if (auto scrub = scrubs_.find(reply.task_id); scrub != scrubs_.end()) {
    ScrubTask& task = scrub->second;
    if (!task.awaiting_reads.erase(reply.column)) return;
    ColumnDump dump;
    dump.column = reply.column;
    dump.records = reply.records;
    dump.parity_records = reply.parity_records;
    task.dumps.push_back(std::move(dump));
    if (task.awaiting_reads.empty()) FinishScrub(task);
    return;
  }
  auto it = tasks_.find(reply.task_id);
  if (it == tasks_.end()) return;  // Stale task.
  RecoveryTask& task = it->second;
  if (!task.awaiting_reads.erase(reply.column)) return;
  if (auto* t = net()->telemetry()) {
    t->metrics()
        .GetCounter("recovery.repair_bytes_moved")
        .Add(reply.ByteSize());
  }
  ColumnDump dump;
  dump.column = reply.column;
  dump.records = reply.records;
  dump.parity_records = reply.parity_records;
  const bool got_parity = dump.is_parity(lhrs_ctx_->m);
  task.dumps.push_back(std::move(dump));
  if (task.rank_tracker != nullptr) {
    task.rank_tracker->AddColumn(reply.column, BufferView());
    task.have_parity_dump |= got_parity;
    // Progressive decode: reconstruction starts on the earliest reply set
    // whose column identities determine the missing data (the key/length
    // directory additionally needs one parity dump). Outstanding reads
    // keep draining into the ignore path above.
    if (!task.awaiting_reads.empty() && task.have_parity_dump &&
        task.rank_tracker->Ready()) {
      if (auto* t = net()->telemetry()) {
        t->metrics()
            .GetCounter("recovery.progressive_early_decodes")
            .Add();
      }
      task.awaiting_reads.clear();
    }
  }
  if (task.awaiting_reads.empty()) TryDecodeAndInstall(task);
}

void RsCoordinatorNode::TryDecodeAndInstall(RecoveryTask& task) {
  if (auto* t = net()->telemetry()) {
    // All survivor dumps are in: the read phase closes and decode+install
    // opens. If the decode below fails, MarkGroupLost closes the open
    // phase via TraceTaskAborted.
    const uint64_t now = net()->now();
    const auto g32 = static_cast<int32_t>(task.group);
    task.install_started_us = now;
    t->metrics()
        .GetHistogram("recovery_phase_read_us")
        .Record(now - task.read_started_us);
    using P = telemetry::RecoveryPhase;
    t->tracer().Record({now, telemetry::TraceEventType::kRecoveryPhaseEnd,
                        id(), -1, -1, g32,
                        static_cast<int64_t>(P::kRead)});
    t->tracer().Record({now, telemetry::TraceEventType::kRecoveryPhaseBegin,
                        id(), -1, -1, g32,
                        static_cast<int64_t>(P::kDecodeInstall)});
  }
  const GroupInfo& info = groups_[task.group];
  ReconstructionRequest req;
  req.m = lhrs_ctx_->m;
  req.k = info.k;
  req.coder = &lhrs_ctx_->coders->ForK(info.k);
  req.existing_slots = ExistingSlots(task.group);
  req.survivors = task.dumps;
  req.missing_columns = task.missing_columns;
  req.progressive = task.progressive;

  auto result = ReconstructColumns(req);
  if (!result.ok()) {
    LHRS_LOG(Warning) << "reconstruction of group " << task.group
                      << " failed: " << result.status();
    MarkGroupLost(task.group);
    return;
  }

  for (auto& col : *result) {
    const NodeId spare = task.spares.at(col.column);
    if (col.column < lhrs_ctx_->m) {
      auto install = std::make_unique<InstallDataColumnMsg>();
      install->task_id = task.id;
      install->bucket = task.group * lhrs_ctx_->m + col.column;
      install->level = task.data_levels.at(col.column);
      install->records = std::move(col.records);
      task.awaiting_installs.insert(col.column);
      Send(spare, std::move(install));
    } else {
      auto install = std::make_unique<InstallParityColumnMsg>();
      install->task_id = task.id;
      install->group = task.group;
      install->parity_index = col.column - lhrs_ctx_->m;
      install->parity_records = std::move(col.parity_records);
      task.awaiting_installs.insert(col.column);
      Send(spare, std::move(install));
    }
  }
  LHRS_CHECK(!task.awaiting_installs.empty());
}

void RsCoordinatorNode::OnInstallDone(const InstallDoneMsg& done) {
  auto it = tasks_.find(done.task_id);
  if (it == tasks_.end()) return;
  RecoveryTask& task = it->second;
  if (!task.awaiting_installs.erase(done.column)) return;
  ++columns_recovered_;
  if (task.awaiting_installs.empty() && task.awaiting_reads.empty()) {
    FinishTask(task);
  }
}

void RsCoordinatorNode::FinishTask(RecoveryTask& task) {
  const uint32_t m = lhrs_ctx_->m;
  std::vector<ClientOpViaCoordinatorMsg> to_replay;
  std::vector<BucketNo> recovered_buckets;
  for (uint32_t col : task.missing_columns) {
    if (col < m) {
      const BucketNo b = task.group * m + col;
      recovering_data_.erase(b);
      recovered_buckets.push_back(b);
      auto parked = parked_.find(b);
      if (parked != parked_.end()) {
        for (auto& op : parked->second) to_replay.push_back(std::move(op));
        parked_.erase(parked);
      }
    } else {
      recovering_parity_.erase({task.group, col - m});
    }
  }
  ++recoveries_completed_;
  const uint32_t g = task.group;
  if (auto* t = net()->telemetry()) {
    const uint64_t now = net()->now();
    const auto g32 = static_cast<int32_t>(g);
    t->metrics().GetCounter("recovery.completed").Add();
    t->metrics()
        .GetHistogram("recovery_phase_decode_install_us")
        .Record(now - task.install_started_us);
    t->metrics()
        .GetHistogram("recovery_latency_us")
        .Record(now - task.started_us);
    t->tracer().Record({now, telemetry::TraceEventType::kRecoveryPhaseEnd,
                        id(), -1, -1, g32,
                        static_cast<int64_t>(
                            telemetry::RecoveryPhase::kDecodeInstall)});
    t->tracer().Record({now, telemetry::TraceEventType::kRecoveryEnd, id(),
                        -1, -1, g32, /*detail=*/0});
  }
  group_task_.erase(g);
  tasks_.erase(task.id);  // `task` is dead after this line.
  for (const auto& op : to_replay) DeliverViaState(op);

  // Resume restructuring steps that stalled on now-recovered buckets.
  for (BucketNo b : recovered_buckets) {
    if (auto it = pending_split_orders_.find(b);
        it != pending_split_orders_.end()) {
      Send(ctx_->allocation.Lookup(b),
           std::make_unique<SplitOrderMsg>(it->second));
      pending_split_orders_.erase(it);
    }
    if (auto it = pending_move_records_.find(b);
        it != pending_move_records_.end()) {
      Send(ctx_->allocation.Lookup(b),
           std::make_unique<MoveRecordsMsg>(it->second));
      pending_move_records_.erase(it);
    }
    if (auto it = pending_merge_records_.find(b);
        it != pending_merge_records_.end()) {
      Send(ctx_->allocation.Lookup(b),
           std::make_unique<MergeRecordsMsg>(it->second));
      pending_merge_records_.erase(it);
    }
  }
  MaybeStartSplit();
}

void RsCoordinatorNode::OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                                    NodeId victim_node) {
  // The split victim is down (undetected until now). Recover it, then
  // retry the order; the state already advanced and the new bucket exists.
  const BucketNo victim =
      order.new_bucket -
      (BucketNo{ctx_->config.initial_buckets} << (order.new_level - 1));
  pending_split_orders_[victim] = order;
  NotifyUnavailable(victim_node);
}

void RsCoordinatorNode::OnOrphanedMoveRecords(const MoveRecordsMsg& move) {
  // Under fault injection the move may simply have been *dropped* with the
  // target alive and waiting uninitialized; recovery would find nothing
  // missing and the records would stay parked forever. Relay directly
  // instead (the target's duplicate filter makes this safe).
  if (net()->fault_injection_active() &&
      ctx_->allocation.Knows(move.bucket)) {
    const NodeId target = ctx_->allocation.Lookup(move.bucket);
    if (NodeUp(target)) {
      Send(target, std::make_unique<MoveRecordsMsg>(move));
      return;
    }
  }
  // The split target died holding no state; the moved records live only in
  // this message. Recover the (empty) target, then deliver the move.
  pending_move_records_[move.bucket] = move;
  if (!IsRecoveringData(move.bucket)) {
    StartRecovery(GroupOf(move.bucket, lhrs_ctx_->m));
  }
}

void RsCoordinatorNode::OnOrphanedMergeRecords(const MergeRecordsMsg& merge) {
  // Same dropped-not-dead relay as OnOrphanedMoveRecords.
  if (net()->fault_injection_active() &&
      ctx_->allocation.Knows(merge.parent_bucket)) {
    const NodeId parent = ctx_->allocation.Lookup(merge.parent_bucket);
    if (NodeUp(parent)) {
      Send(parent, std::make_unique<MergeRecordsMsg>(merge));
      return;
    }
  }
  pending_merge_records_[merge.parent_bucket] = merge;
  if (!IsRecoveringData(merge.parent_bucket)) {
    StartRecovery(GroupOf(merge.parent_bucket, lhrs_ctx_->m));
  }
}

// --- Coordinator soft-state recovery -----------------------------------------

void RsCoordinatorNode::WipeSoftStateAndResurvey() {
  // Total soft-state loss: the restarted coordinator process knows only
  // its configuration (N, m, b, policy) and the set of machine addresses.
  state_ = FileState{};
  state_.initial_buckets = ctx_->config.initial_buckets;
  ctx_->allocation.Clear();
  groups_.clear();
  tasks_.clear();
  group_task_.clear();
  recovering_data_.clear();
  recovering_parity_.clear();
  degraded_.clear();
  scrubs_.clear();
  parked_.clear();
  probes_.clear();
  survey_rebuilt_ = false;

  SurveyState survey;
  survey.id = next_survey_id_++;
  const size_t nodes = net()->node_count();
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (NodeId n = 0; n < static_cast<NodeId>(nodes); ++n) {
    if (n == id()) continue;
    auto req = std::make_unique<SurveyRequestMsg>();
    req->survey_id = survey.id;
    batch.emplace_back(n, std::move(req));
    ++survey.awaiting;
  }
  const uint64_t sid = survey.id;
  surveys_.emplace(sid, std::move(survey));
  net()->Multicast(id(), std::move(batch));
}

void RsCoordinatorNode::FinishSurvey(SurveyState& survey) {
  const uint32_t m = lhrs_ctx_->m;
  // Allocation table + (A6) file state from the data-bucket replies.
  Level min_level = ~Level{0};
  BucketNo max_bucket = 0;
  bool any_data = false;
  for (const auto& [node, reply] : survey.replies) {
    if (reply.role != SurveyReplyMsg::Role::kDataBucket ||
        reply.decommissioned) {
      continue;
    }
    any_data = true;
    ctx_->allocation.Set(reply.bucket, node);
    min_level = std::min(min_level, reply.level);
    max_bucket = std::max(max_bucket, reply.bucket);
    ctx_->total_records += reply.record_count;
  }
  LHRS_CHECK(any_data) << "survey found no data buckets";
  // Parity directory.
  uint32_t max_group = 0;
  for (const auto& [node, reply] : survey.replies) {
    if (reply.role == SurveyReplyMsg::Role::kParityBucket) {
      max_group = std::max(max_group, reply.group);
    }
  }
  groups_.assign(max_group + 1, GroupInfo{});
  for (const auto& [node, reply] : survey.replies) {
    if (reply.role != SurveyReplyMsg::Role::kParityBucket) continue;
    GroupInfo& info = groups_[reply.group];
    if (info.k == 0) {
      info.k = reply.k;
      info.parity_nodes.assign(reply.k, kInvalidNode);
    }
    LHRS_CHECK_EQ(info.k, reply.k) << "inconsistent k in group survey";
    // Keep the newest registration (a stale decommissioned twin may also
    // answer; parity buckets are never decommissioned, but recovered ones
    // leave their dead predecessors silent, so collisions cannot happen).
    info.parity_nodes[reply.parity_index] = node;
  }
  // Groups whose every parity bucket stayed silent: availability level is
  // unknowable from the survey; fall back to the policy (exact for
  // fixed-k files) and let recovery rebuild the columns from the data.
  for (GroupInfo& info : groups_) {
    if (info.k == 0) {
      info.k = lhrs_ctx_->policy.KForFileSize(max_bucket + 1);
      info.parity_nodes.assign(info.k, kInvalidNode);
    }
  }
  // (A6) closed form. The survey needs the highest bucket's server alive
  // to pin M; cross-check against the parity directory extent.
  FileState rebuilt;
  rebuilt.initial_buckets = ctx_->config.initial_buckets;
  rebuilt.i = min_level;
  const BucketNo boundary =
      BucketNo{ctx_->config.initial_buckets} << min_level;
  BucketNo total = max_bucket + 1;
  LHRS_CHECK_GE(total, boundary)
      << "survey replies inconsistent with LH* (is the last bucket down?)";
  rebuilt.n = total - boundary;
  state_ = rebuilt;

  survey_rebuilt_ = true;
  surveys_.erase(survey.id);

  // Heal the holes: recover buckets/parity columns whose servers stayed
  // silent, through the ordinary machinery.
  if (lhrs_ctx_->auto_recover) {
    for (uint32_t g = 0; g < groups_.size(); ++g) StartRecovery(g);
  }
}

// --- Parity scrubbing --------------------------------------------------------

void RsCoordinatorNode::StartScrub(uint32_t g, bool repair) {
  EnsureGroup(g);
  const GroupInfo& info = groups_[g];
  if (info.lost) return;
  // Tail groups emptied by merges have no columns to scrub.
  if (static_cast<BucketNo>(g) * lhrs_ctx_->m >= state_.bucket_count()) {
    return;
  }
  const uint32_t m = lhrs_ctx_->m;

  ScrubTask task;
  task.id = next_task_id_++;
  task.group = g;
  task.repair = repair;
  for (uint32_t slot = 0; slot < ExistingSlots(g); ++slot) {
    const BucketNo b = g * m + slot;
    LHRS_CHECK(NodeUp(ctx_->allocation.Lookup(b)))
        << "scrub requires every column up";
    auto read = std::make_unique<ColumnReadRequestMsg>();
    read->task_id = task.id;
    read->group = g;
    task.awaiting_reads.insert(slot);
    Send(ctx_->allocation.Lookup(b), std::move(read));
  }
  for (uint32_t j = 0; j < info.k; ++j) {
    LHRS_CHECK(NodeUp(info.parity_nodes[j]))
        << "scrub requires every column up";
    auto read = std::make_unique<ColumnReadRequestMsg>();
    read->task_id = task.id;
    read->group = g;
    task.awaiting_reads.insert(m + j);
    Send(info.parity_nodes[j], std::move(read));
  }
  const uint64_t id = task.id;
  scrubs_.emplace(id, std::move(task));
}

void RsCoordinatorNode::FinishScrub(ScrubTask& task) {
  const uint32_t m = lhrs_ctx_->m;
  const GroupInfo& info = groups_[task.group];
  const ErasureCoder& coder = lhrs_ctx_->coders->ForK(info.k);

  // Ground truth per rank from the data columns.
  struct Truth {
    std::vector<std::optional<Key>> keys;
    std::vector<uint32_t> lengths;
    std::vector<const BufferView*> values;
    explicit Truth(uint32_t m) : keys(m), lengths(m, 0), values(m) {}
  };
  std::map<Rank, Truth> truth;
  for (const auto& dump : task.dumps) {
    if (dump.is_parity(m)) continue;
    for (const auto& rec : dump.records) {
      auto [it, unused] = truth.try_emplace(rec.rank, Truth(m));
      it->second.keys[dump.column] = rec.key;
      it->second.lengths[dump.column] =
          static_cast<uint32_t>(rec.value.size());
      it->second.values[dump.column] = &rec.value;
    }
  }

  auto equal_mod_padding = [](std::span<const uint8_t> a,
                              std::span<const uint8_t> b) {
    const size_t n = std::min(a.size(), b.size());
    if (!std::equal(a.begin(), a.begin() + n, b.begin())) return false;
    std::span<const uint8_t> longer = a.size() >= b.size() ? a : b;
    for (size_t i = n; i < longer.size(); ++i) {
      if (longer[i] != 0) return false;
    }
    return true;
  };

  std::set<uint32_t> bad_columns;
  for (const auto& dump : task.dumps) {
    if (!dump.is_parity(m)) continue;
    const uint32_t j = dump.column - m;
    std::set<Rank> seen;
    for (const auto& pr : dump.parity_records) {
      seen.insert(pr.rank);
      auto it = truth.find(pr.rank);
      bool ok = it != truth.end();
      if (ok) {
        const Truth& t = it->second;
        for (uint32_t slot = 0; slot < m && ok; ++slot) {
          ok = pr.keys[slot] == t.keys[slot] &&
               (!t.keys[slot].has_value() ||
                pr.lengths[slot] == t.lengths[slot]);
        }
        if (ok) {
          Bytes expected;
          for (uint32_t slot = 0; slot < m; ++slot) {
            if (t.values[slot] == nullptr) continue;
            coder.ApplyDelta(slot, *t.values[slot], j, &expected);
          }
          ok = equal_mod_padding(expected, pr.parity);
        }
      }
      if (!ok) {
        ++scrub_report_.mismatched_parity_records;
        bad_columns.insert(dump.column);
      }
    }
    // Ranks the parity bucket is missing entirely.
    for (const auto& [rank, t] : truth) {
      if (!seen.contains(rank)) {
        ++scrub_report_.mismatched_parity_records;
        bad_columns.insert(dump.column);
      }
    }
  }
  ++scrub_report_.groups_scrubbed;
  scrub_report_.record_groups_checked += truth.size();

  if (task.repair && !bad_columns.empty()) {
    // Re-encode the bad columns from the (authoritative) data columns.
    ReconstructionRequest req;
    req.m = m;
    req.k = info.k;
    req.coder = &coder;
    req.existing_slots = ExistingSlots(task.group);
    for (const auto& dump : task.dumps) {
      if (!dump.is_parity(m)) req.survivors.push_back(dump);
    }
    req.missing_columns.assign(bad_columns.begin(), bad_columns.end());
    auto result = ReconstructColumns(req);
    LHRS_CHECK(result.ok()) << result.status();
    for (auto& col : *result) {
      auto install = std::make_unique<InstallParityColumnMsg>();
      install->task_id = task.id;
      install->group = task.group;
      install->parity_index = col.column - m;
      install->parity_records = std::move(col.parity_records);
      Send(info.parity_nodes[col.column - m], std::move(install));
      ++scrub_report_.parity_columns_repaired;
    }
  }
  scrubs_.erase(task.id);
}

// --- Client ops in degraded mode ------------------------------------------

void RsCoordinatorNode::ParkOp(const ClientOpViaCoordinatorMsg& op) {
  const BucketNo a = state_.Address(op.key);
  parked_[a].push_back(op);
}

void RsCoordinatorNode::HandleClientOpFallback(
    const ClientOpViaCoordinatorMsg& op) {
  MaybeResetClientImage(op);
  const BucketNo a = state_.Address(op.key);
  const uint32_t g = GroupOf(a, lhrs_ctx_->m);
  if (g < groups_.size() && groups_[g].lost) {
    FailClientOp(op, StatusCode::kDataLoss, "bucket group lost");
    return;
  }
  if (IsRecoveringData(a)) {
    if (op.op == OpType::kSearch) {
      StartDegradedRead(op);
    } else {
      ParkOp(op);
    }
    return;
  }
  const NodeId node = ctx_->allocation.Lookup(a);
  if (!NodeUp(node)) {
    OnDataBucketUnreachable(a, &op);
    return;
  }
  DeliverViaState(op);
}

void RsCoordinatorNode::OnDataBucketUnreachable(
    BucketNo bucket, const ClientOpViaCoordinatorMsg* op) {
  const uint32_t g = GroupOf(bucket, lhrs_ctx_->m);
  if (lhrs_ctx_->auto_recover) StartRecovery(g);
  if (g < groups_.size() && groups_[g].lost) {
    if (op != nullptr) {
      FailClientOp(*op, StatusCode::kDataLoss, "bucket group lost");
    }
    return;
  }
  if (op == nullptr) return;
  if (op->op == OpType::kSearch) {
    // Record recovery serves the read in degraded mode, long before the
    // full bucket recovery completes (paper section 2.6).
    StartDegradedRead(*op);
  } else if (IsRecoveringData(bucket)) {
    ParkOp(*op);  // Completed right after the bucket is rebuilt.
  } else {
    FailClientOp(*op, StatusCode::kUnavailable,
                 "bucket unavailable and automatic recovery is off");
  }
}

void RsCoordinatorNode::OnOpDeliveryFailure(const OpRequestMsg& req) {
  ClientOpViaCoordinatorMsg op;
  op.op = req.op;
  op.op_id = req.op_id;
  op.client = req.client;
  op.intended_bucket = req.intended_bucket;
  op.key = req.key;
  op.value = req.value;
  OnDataBucketUnreachable(req.intended_bucket, &op);
}

void RsCoordinatorNode::StartDegradedRead(
    const ClientOpViaCoordinatorMsg& op) {
  const BucketNo a = state_.Address(op.key);
  const uint32_t g = GroupOf(a, lhrs_ctx_->m);
  EnsureGroup(g);
  const GroupInfo& info = groups_[g];

  // Find a live parity bucket to resolve key -> record group. Unlike the
  // LH*g baseline, no scan is needed: the group's parity buckets are known.
  // Ask in the code's preference order for the target slot — for a locally
  // repairable code that is the slot's own local parity, whose payload then
  // double-duties as a decode column.
  const uint32_t target_slot = SlotOf(a, lhrs_ctx_->m);
  const ErasureCoder& code = lhrs_ctx_->coders->ForK(info.k);
  uint32_t j = info.k;
  for (uint32_t cand : code.ParityPreference(target_slot)) {
    if (!recovering_parity_.contains({g, cand}) &&
        NodeUp(info.parity_nodes[cand])) {
      j = cand;
      break;
    }
  }
  if (j == info.k) {
    if (IsRecoveringData(a)) {
      ParkOp(op);  // Parity is being rebuilt; the op completes afterwards.
    } else {
      FailClientOp(op, StatusCode::kUnavailable,
                   "no parity bucket available for record recovery");
    }
    return;
  }

  DegradedReadTask task;
  task.id = next_task_id_++;
  task.op = op;
  task.started_us = net()->now();
  task.group = g;
  task.target_slot = target_slot;
  task.used_parity.insert(j);
  const uint64_t id = task.id;
  degraded_.emplace(id, std::move(task));

  auto find = std::make_unique<FindRankRequestMsg>();
  find->task_id = id;
  find->key = op.key;
  find->slot = target_slot;
  Send(info.parity_nodes[j], std::move(find));
}

void RsCoordinatorNode::OnFindRankReply(const FindRankReplyMsg& reply) {
  auto it = degraded_.find(reply.task_id);
  if (it == degraded_.end()) return;
  DegradedReadTask& task = it->second;
  if (!reply.found) {
    // No parity record holds the key: the search is (correctly)
    // unsuccessful even though the bucket is down.
    FailDegradedRead(task, Status::NotFound("no such key"));
    return;
  }
  task.have_meta = true;
  task.meta = reply.record;
  if (auto* t = net()->telemetry()) {
    t->metrics()
        .GetCounter("degraded_read.bytes_moved")
        .Add(reply.record.parity.size());
  }
  task.columns[lhrs_ctx_->m + reply.parity_index] = reply.record.parity;
  ContinueDegradedRead(task);
}

void RsCoordinatorNode::ContinueDegradedRead(DegradedReadTask& task) {
  const uint32_t m = lhrs_ctx_->m;
  const uint32_t g = task.group;
  const GroupInfo& info = groups_[g];
  const uint32_t existing = ExistingSlots(g);
  const ErasureCoder& code = lhrs_ctx_->coders->ForK(info.k);

  // A rank tracker over column identities answers "do the columns in hand
  // (or in flight) determine the target slot?". Known-zero columns — slots
  // beyond the file edge and slots with no member at this rank — come free.
  std::vector<uint32_t> known_zero;
  for (uint32_t slot = 0; slot < existing; ++slot) {
    if (slot != task.target_slot && !task.meta.keys[slot].has_value() &&
        !task.columns.contains(slot)) {
      known_zero.push_back(slot);
    }
  }
  for (uint32_t slot = existing; slot < m; ++slot) known_zero.push_back(slot);
  auto tracker =
      code.NewProgressiveDecoder({task.target_slot}, known_zero);
  for (const auto& [col, payload] : task.columns) {
    tracker->AddColumn(col, BufferView());
  }
  for (uint32_t col : task.awaiting) tracker->AddColumn(col, BufferView());

  // Collect candidate columns until the rank suffices, cheapest first:
  // alive member siblings in slot order, then parity columns in the
  // code's preference order for the target. Columns that do not raise the
  // rank are never considered.
  struct Candidate {
    uint32_t column;
    NodeId node;
  };
  std::vector<Candidate> candidates;
  for (uint32_t slot = 0; slot < existing && !tracker->Ready(); ++slot) {
    if (slot == task.target_slot) continue;
    if (!task.meta.keys[slot].has_value()) continue;
    if (task.columns.contains(slot) || task.awaiting.contains(slot)) {
      continue;
    }
    const BucketNo b = g * m + slot;
    const NodeId node = ctx_->allocation.Lookup(b);
    if (IsRecoveringData(b) || !NodeUp(node)) continue;
    if (!tracker->AddColumn(slot, BufferView())) continue;
    candidates.push_back({slot, node});
  }
  for (uint32_t j : code.ParityPreference(task.target_slot)) {
    if (tracker->Ready()) break;
    if (task.used_parity.contains(j)) continue;
    if (recovering_parity_.contains({g, j}) ||
        !NodeUp(info.parity_nodes[j])) {
      continue;
    }
    if (!tracker->AddColumn(m + j, BufferView())) continue;
    candidates.push_back({m + j, info.parity_nodes[j]});
  }
  if (!tracker->Ready()) {
    FailDegradedRead(task,
                     Status::DataLoss("not enough live columns to "
                                      "reconstruct the record"));
    return;
  }

  // Prune, least-preferred first: a candidate whose remaining peers still
  // determine the target is never read. An MDS code keeps every
  // rank-raising column (its read set is already minimal), but an LRC
  // drops the siblings outside the target's local group.
  std::vector<uint32_t> in_hand = known_zero;
  for (const auto& [col, payload] : task.columns) in_hand.push_back(col);
  for (uint32_t col : task.awaiting) in_hand.push_back(col);
  std::vector<bool> dropped(candidates.size(), false);
  for (size_t i = candidates.size(); i-- > 0;) {
    std::vector<uint32_t> cols = in_hand;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (!dropped[j] && j != i) cols.push_back(candidates[j].column);
    }
    if (code.CanDecodeFrom(cols, {task.target_slot})) dropped[i] = true;
  }

  for (size_t i = 0; i < candidates.size(); ++i) {
    if (dropped[i]) continue;
    const auto& [column, node] = candidates[i];
    if (column < m) {
      auto read = std::make_unique<RecordReadRequestMsg>();
      read->task_id = task.id;
      read->rank = task.meta.rank;
      read->column = column;
      task.awaiting.insert(column);
      Send(node, std::move(read));
    } else {
      auto read = std::make_unique<ParityRecordRequestMsg>();
      read->task_id = task.id;
      read->rank = task.meta.rank;
      read->column = column;
      task.awaiting.insert(column);
      task.used_parity.insert(column - m);
      Send(node, std::move(read));
    }
  }
  MaybeFinishDegradedRead(task);
}

void RsCoordinatorNode::OnDegradedColumn(uint64_t task_id, uint32_t column,
                                         bool found,
                                         const BufferView& payload) {
  auto it = degraded_.find(task_id);
  if (it == degraded_.end()) return;
  DegradedReadTask& task = it->second;
  if (!task.awaiting.erase(column)) return;
  if (auto* t = net()->telemetry()) {
    t->metrics().GetCounter("degraded_read.bytes_moved").Add(payload.size());
  }
  // A sibling data bucket must hold the record its parity metadata lists;
  // an absent parity record means a zero column (no members at this rank
  // from that parity bucket's perspective cannot happen here, but zero is
  // the correct algebraic value regardless).
  if (column < lhrs_ctx_->m) {
    LHRS_CHECK(found) << "sibling bucket lost a record its group parity "
                         "still lists (column "
                      << column << ")";
  }
  task.columns[column] = payload;
  MaybeFinishDegradedRead(task);
}

void RsCoordinatorNode::MaybeFinishDegradedRead(DegradedReadTask& task) {
  if (!task.have_meta || !task.awaiting.empty()) return;
  const uint32_t m = lhrs_ctx_->m;
  const uint32_t existing = ExistingSlots(task.group);
  const GroupInfo& info = groups_[task.group];

  std::vector<std::pair<size_t, BufferView>> available;
  for (const auto& [col, payload] : task.columns) {
    available.emplace_back(col, payload);
  }
  const BufferView kEmpty;
  for (uint32_t slot = 0; slot < existing; ++slot) {
    if (slot == task.target_slot) continue;
    if (!task.meta.keys[slot].has_value() && !task.columns.contains(slot)) {
      available.emplace_back(slot, kEmpty);
    }
  }
  for (uint32_t slot = existing; slot < m; ++slot) {
    available.emplace_back(slot, kEmpty);
  }

  const ErasureCoder& coder = lhrs_ctx_->coders->ForK(info.k);
  auto decoded = coder.DecodeData(available, {task.target_slot});
  if (!decoded.ok()) {
    FailDegradedRead(task, decoded.status());
    return;
  }
  Bytes value = std::move((*decoded)[0]);
  const uint32_t len = task.meta.lengths[task.target_slot];
  LHRS_CHECK_LE(len, value.size());
  value.resize(len);

  auto reply = std::make_unique<OpReplyMsg>();
  reply->op_id = task.op.op_id;
  reply->code = StatusCode::kOk;
  reply->value = std::move(value);
  Send(task.op.client, std::move(reply));
  ++degraded_reads_served_;
  if (auto* t = net()->telemetry()) {
    t->metrics().GetCounter("degraded_read.served").Add();
    t->metrics()
        .GetHistogram("degraded_read_latency_us")
        .Record(net()->now() - task.started_us);
  }
  degraded_.erase(task.id);
}

void RsCoordinatorNode::FailDegradedRead(DegradedReadTask& task,
                                         Status status) {
  FailClientOp(task.op, status.code(), status.message());
  degraded_.erase(task.id);
}

// --- File-state recovery (A6) ---------------------------------------------

void RsCoordinatorNode::StartFileStateRecovery() {
  state_scan_active_ = true;
  state_scan_replies_.clear();
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  for (BucketNo b = 0; b < state_.bucket_count(); ++b) {
    auto req = std::make_unique<StateScanRequestMsg>();
    req->op_id = 0;
    batch.emplace_back(ctx_->allocation.Lookup(b), std::move(req));
  }
  net()->Multicast(id(), std::move(batch));
}

Result<FileState> RsCoordinatorNode::FinishFileStateRecovery() {
  if (!state_scan_active_) {
    return Status::Internal("no state scan in progress");
  }
  state_scan_active_ = false;
  if (state_scan_replies_.empty()) {
    return Status::Unavailable("no buckets answered the state scan");
  }
  // Algorithm (A6), in the closed form implied by (E1): with
  // i = min(j_m) and M = largest replying bucket + 1,  n = M - 2^i * N.
  Level i = ~Level{0};
  BucketNo largest = 0;
  for (const auto& [bucket, level] : state_scan_replies_) {
    i = std::min(i, level);
    largest = std::max(largest, bucket);
  }
  const uint32_t n_initial = ctx_->config.initial_buckets;
  const BucketNo boundary = static_cast<BucketNo>(n_initial) << i;
  const BucketNo total = largest + 1;
  if (total < boundary) {
    return Status::Internal("state scan replies inconsistent with LH*");
  }
  FileState recovered;
  recovered.initial_buckets = n_initial;
  recovered.i = i;
  recovered.n = total - boundary;
  return recovered;
}

// --- Message plumbing -------------------------------------------------------

void RsCoordinatorNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhrsMsg::kColumnReadReply:
      OnColumnRead(static_cast<const ColumnReadReplyMsg&>(*msg.body),
                   msg.from);
      return;
    case LhrsMsg::kInstallDone:
      OnInstallDone(static_cast<const InstallDoneMsg&>(*msg.body));
      return;
    case LhrsMsg::kFindRankReply:
      OnFindRankReply(static_cast<const FindRankReplyMsg&>(*msg.body));
      return;
    case LhrsMsg::kRecordReadReply: {
      const auto& reply = static_cast<const RecordReadReplyMsg&>(*msg.body);
      OnDegradedColumn(reply.task_id, reply.column, reply.found,
                       reply.record.value);
      return;
    }
    case LhrsMsg::kParityRecordReply: {
      const auto& reply =
          static_cast<const ParityRecordReplyMsg&>(*msg.body);
      OnDegradedColumn(reply.task_id, reply.column, reply.found,
                       reply.record.parity);
      return;
    }
    case LhrsMsg::kPongReply: {
      const auto& pong = static_cast<const PongReplyMsg&>(*msg.body);
      probes_.erase(pong.probe_id);  // Alive: the report was stale.
      return;
    }
    case LhStarMsg::kSurveyReply: {
      const auto& reply = static_cast<const SurveyReplyMsg&>(*msg.body);
      auto it = surveys_.find(reply.survey_id);
      if (it == surveys_.end()) return;
      it->second.replies.emplace_back(msg.from, reply);
      LHRS_CHECK_GT(it->second.awaiting, 0u);
      if (--it->second.awaiting == 0) FinishSurvey(it->second);
      return;
    }
    case LhStarMsg::kStateScanReply: {
      const auto& reply = static_cast<const StateScanReplyMsg&>(*msg.body);
      if (state_scan_active_) {
        state_scan_replies_[reply.bucket] = reply.level;
      }
      return;
    }
    default:
      CoordinatorNode::HandleSubclassMessage(msg);
  }
}

void RsCoordinatorNode::HandleSubclassDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhrsMsg::kPingRequest: {
      // Probe confirmed the failure: recover everything that node carried.
      const auto& ping = static_cast<const PingRequestMsg&>(*msg.body);
      probes_.erase(ping.probe_id);
      NotifyUnavailable(msg.to);
      return;
    }
    case LhrsMsg::kColumnReadRequest: {
      // A survivor died mid-recovery (or, under fault injection, the read
      // was dropped with the survivor alive): abort the broken task and
      // re-plan with the remaining columns.
      const auto& req = static_cast<const ColumnReadRequestMsg&>(*msg.body);
      // A progressive task that already decoded does not care about its
      // surplus outstanding reads bouncing — it is in the install phase.
      if (auto it = tasks_.find(req.task_id);
          it != tasks_.end() && it->second.awaiting_reads.empty()) {
        return;
      }
      AbortTaskIfActive(req.task_id, req.group);
      StartRecovery(req.group);
      return;
    }
    case LhrsMsg::kInstallDataColumn: {
      const auto& install =
          static_cast<const InstallDataColumnMsg&>(*msg.body);
      const uint32_t g = GroupOf(install.bucket, lhrs_ctx_->m);
      AbortTaskIfActive(install.task_id, g);
      StartRecovery(g);
      return;
    }
    case LhrsMsg::kInstallParityColumn: {
      const auto& install =
          static_cast<const InstallParityColumnMsg&>(*msg.body);
      AbortTaskIfActive(install.task_id, install.group);
      StartRecovery(install.group);
      return;
    }
    case LhrsMsg::kFindRankRequest: {
      // The parity bucket we asked died; retry from scratch with another.
      const auto& req = static_cast<const FindRankRequestMsg&>(*msg.body);
      auto it = degraded_.find(req.task_id);
      if (it == degraded_.end()) return;
      ClientOpViaCoordinatorMsg op = it->second.op;
      degraded_.erase(it);
      if (lhrs_ctx_->auto_recover) StartRecovery(GroupOf(
          state_.Address(op.key), lhrs_ctx_->m));
      StartDegradedRead(op);
      return;
    }
    case LhrsMsg::kRecordReadRequest: {
      // A sibling died mid-read: substitute one more parity column.
      const auto& req = static_cast<const RecordReadRequestMsg&>(*msg.body);
      auto it = degraded_.find(req.task_id);
      if (it == degraded_.end()) return;
      DegradedReadTask& task = it->second;
      task.awaiting.erase(req.column);
      if (lhrs_ctx_->auto_recover) StartRecovery(task.group);
      ContinueDegradedRead(task);
      return;
    }
    case LhrsMsg::kParityRecordRequest: {
      const auto& req =
          static_cast<const ParityRecordRequestMsg&>(*msg.body);
      auto it = degraded_.find(req.task_id);
      if (it == degraded_.end()) return;
      DegradedReadTask& task = it->second;
      task.awaiting.erase(req.column);
      task.used_parity.erase(req.column - lhrs_ctx_->m);
      if (lhrs_ctx_->auto_recover) StartRecovery(task.group);
      ContinueDegradedRead(task);
      return;
    }
    case LhStarMsg::kStateScanRequest:
      return;  // Dead buckets simply do not answer the state scan.
    case LhStarMsg::kSurveyRequest: {
      const auto& req = static_cast<const SurveyRequestMsg&>(*msg.body);
      auto it = surveys_.find(req.survey_id);
      if (it == surveys_.end()) return;
      LHRS_CHECK_GT(it->second.awaiting, 0u);
      if (--it->second.awaiting == 0) FinishSurvey(it->second);
      return;
    }
    case LhrsMsg::kGroupConfig: {
      // A split target without its group configuration parks incoming
      // records forever — under fault injection a bounce can mean a
      // *dropped* message, so re-send a bounded number of times before
      // treating it as a node death.
      if (network()->fault_injection_active()) {
        const auto& cfg = static_cast<const GroupConfigMsg&>(*msg.body);
        constexpr uint32_t kMaxGroupConfigAttempts = 4;
        if (cfg.attempt + 1 < kMaxGroupConfigAttempts) {
          auto resend = std::make_unique<GroupConfigMsg>(cfg);
          ++resend->attempt;
          Send(msg.to, std::move(resend));
          return;
        }
      }
      NotifyUnavailable(msg.to);
      return;
    }
    case LhStarMsg::kSplitOrder: {
      // The target died; its group recovery will rebuild it consistently.
      NotifyUnavailable(msg.to);
      return;
    }
    case LhStarMsg::kMoveRecords:
      // Our own relay of orphaned records bounced; re-enter the orphan
      // path, which relays again (live target) or parks and recovers.
      OnOrphanedMoveRecords(static_cast<const MoveRecordsMsg&>(*msg.body));
      return;
    case LhStarMsg::kMergeRecords:
      OnOrphanedMergeRecords(
          static_cast<const MergeRecordsMsg&>(*msg.body));
      return;
    default:
      CoordinatorNode::HandleSubclassDeliveryFailure(msg);
  }
}

}  // namespace lhrs
