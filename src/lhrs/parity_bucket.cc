#include "lhrs/parity_bucket.h"

#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs {

namespace {

/// Copies a message body of any kind the parity bucket understands, for
/// deferring traffic that arrives before a recovery install.
std::unique_ptr<MessageBody> CloneBody(const MessageBody& body) {
  switch (body.kind()) {
    case LhrsMsg::kParityDelta:
      return std::make_unique<ParityDeltaMsg>(
          static_cast<const ParityDeltaMsg&>(body));
    case LhrsMsg::kParityDeltaBatch:
      return std::make_unique<ParityDeltaBatchMsg>(
          static_cast<const ParityDeltaBatchMsg&>(body));
    case LhrsMsg::kFindRankRequest:
      return std::make_unique<FindRankRequestMsg>(
          static_cast<const FindRankRequestMsg&>(body));
    case LhrsMsg::kColumnReadRequest:
      return std::make_unique<ColumnReadRequestMsg>(
          static_cast<const ColumnReadRequestMsg&>(body));
    case LhrsMsg::kParityRecordRequest:
      return std::make_unique<ParityRecordRequestMsg>(
          static_cast<const ParityRecordRequestMsg&>(body));
    default:
      LHRS_LOG(Fatal) << "parity bucket cannot defer message kind "
                      << body.kind();
      return nullptr;
  }
}

}  // namespace

ParityBucketNode::ParityBucketNode(std::shared_ptr<LhrsContext> ctx,
                                   uint32_t group, uint32_t parity_index,
                                   uint32_t k, bool pre_initialized)
    : ctx_(std::move(ctx)),
      group_(group),
      parity_index_(parity_index),
      k_(k),
      initialized_(pre_initialized) {
  LHRS_CHECK_LT(parity_index_, k_);
}

size_t ParityBucketNode::StorageBytes() const {
  size_t n = 0;
  for (const auto& [rank, rec] : records_) n += rec.StorageBytes();
  return n;
}

void ParityBucketNode::HandleMessage(const Message& msg) {
  const int kind = msg.body->kind();
  if ((kind == LhrsMsg::kParityDelta || kind == LhrsMsg::kParityDeltaBatch) &&
      network()->fault_injection_active() && dedup_.SeenBefore(msg.id)) {
    return;  // Duplicated delivery: applying the delta twice would corrupt.
  }
  if (!initialized_ && msg.body->kind() != LhrsMsg::kInstallParityColumn &&
      msg.body->kind() != LhrsMsg::kPingRequest &&
      msg.body->kind() != LhStarMsg::kSurveyRequest) {
    auto deferred = std::make_shared<Message>();
    deferred->from = msg.from;
    deferred->to = msg.to;
    deferred->body = CloneBody(*msg.body);
    queued_.push_back(std::move(deferred));
    return;
  }
  Dispatch(msg);
}

void ParityBucketNode::HandleDeliveryFailure(const Message& msg) {
  // Recovery-protocol replies to the coordinator. A drop (fault injection;
  // the coordinator itself does not crash) would wedge the recovery task,
  // so re-send a bounded number of times. Everything else stays ignored:
  // degraded-read replies are re-driven by client retries.
  if (!network()->fault_injection_active()) return;
  constexpr uint32_t kMaxReplyAttempts = 4;
  switch (msg.body->kind()) {
    case LhrsMsg::kColumnReadReply: {
      const auto& reply = static_cast<const ColumnReadReplyMsg&>(*msg.body);
      if (reply.attempt + 1 < kMaxReplyAttempts) {
        auto resend = std::make_unique<ColumnReadReplyMsg>(reply);
        ++resend->attempt;
        Send(msg.to, std::move(resend));
      }
      return;
    }
    case LhrsMsg::kInstallDone: {
      const auto& done = static_cast<const InstallDoneMsg&>(*msg.body);
      if (done.attempt + 1 < kMaxReplyAttempts) {
        auto resend = std::make_unique<InstallDoneMsg>(done);
        ++resend->attempt;
        Send(msg.to, std::move(resend));
      }
      return;
    }
    default:
      return;
  }
}

void ParityBucketNode::RecordUpdateRound(size_t deltas) {
  auto* t = network()->telemetry();
  if (t == nullptr) return;
  t->metrics().GetCounter("parity.update_rounds").Add();
  t->metrics().GetCounter("parity.deltas_applied").Add(deltas);
  if (t->trace_messages()) {
    t->tracer().Record({network()->now(),
                        telemetry::TraceEventType::kParityUpdateRound, id(),
                        -1, -1, static_cast<int32_t>(group_),
                        static_cast<int64_t>(deltas)});
  }
}

void ParityBucketNode::Dispatch(const Message& msg) {
  switch (msg.body->kind()) {
    case LhrsMsg::kParityDelta: {
      const auto& m = static_cast<const ParityDeltaMsg&>(*msg.body);
      LHRS_CHECK_EQ(m.group, group_);
      ApplyDelta(m.delta);
      RecordUpdateRound(1);
      return;
    }
    case LhrsMsg::kParityDeltaBatch: {
      const auto& m = static_cast<const ParityDeltaBatchMsg&>(*msg.body);
      LHRS_CHECK_EQ(m.group, group_);
      for (const auto& d : m.deltas) ApplyDelta(d);
      RecordUpdateRound(m.deltas.size());
      return;
    }
    case LhrsMsg::kFindRankRequest: {
      const auto& req = static_cast<const FindRankRequestMsg&>(*msg.body);
      auto reply = std::make_unique<FindRankReplyMsg>();
      reply->task_id = req.task_id;
      reply->parity_index = parity_index_;
      auto it = key_index_.find(req.key);
      if (it != key_index_.end()) {
        const ParityRecord& rec = records_.at(it->second);
        // The key must sit at the requested slot: keys are unique file-wide
        // and the slot is derived from the key's correct bucket.
        if (rec.keys[req.slot] == req.key) {
          reply->found = true;
          reply->record = ToWire(it->second, rec);
        }
      }
      Send(msg.from, std::move(reply));
      return;
    }
    case LhrsMsg::kParityRecordRequest: {
      const auto& req =
          static_cast<const ParityRecordRequestMsg&>(*msg.body);
      auto reply = std::make_unique<ParityRecordReplyMsg>();
      reply->task_id = req.task_id;
      reply->column = ctx_->m + parity_index_;
      auto it = records_.find(req.rank);
      if (it != records_.end()) {
        reply->found = true;
        reply->record = ToWire(it->first, it->second);
      }
      Send(msg.from, std::move(reply));
      return;
    }
    case LhrsMsg::kColumnReadRequest: {
      const auto& req = static_cast<const ColumnReadRequestMsg&>(*msg.body);
      LHRS_CHECK_EQ(req.group, group_);
      auto reply = std::make_unique<ColumnReadReplyMsg>();
      reply->task_id = req.task_id;
      reply->column = ctx_->m + parity_index_;
      reply->parity_records.reserve(records_.size());
      for (const auto& [rank, rec] : records_) {
        reply->parity_records.push_back(ToWire(rank, rec));
      }
      Send(msg.from, std::move(reply));
      return;
    }
    case LhrsMsg::kInstallParityColumn: {
      InstallColumn(static_cast<const InstallParityColumnMsg&>(*msg.body));
      auto done = std::make_unique<InstallDoneMsg>();
      done->task_id =
          static_cast<const InstallParityColumnMsg&>(*msg.body).task_id;
      done->column = ctx_->m + parity_index_;
      Send(msg.from, std::move(done));
      // Replay deferred traffic in arrival order.
      std::vector<std::shared_ptr<Message>> queued = std::move(queued_);
      queued_.clear();
      for (const auto& m : queued) Dispatch(*m);
      return;
    }
    case LhStarMsg::kSurveyRequest: {
      const auto& req = static_cast<const SurveyRequestMsg&>(*msg.body);
      auto reply = std::make_unique<SurveyReplyMsg>();
      reply->survey_id = req.survey_id;
      reply->role = SurveyReplyMsg::Role::kParityBucket;
      reply->group = group_;
      reply->parity_index = parity_index_;
      reply->k = k_;
      Send(msg.from, std::move(reply));
      return;
    }
    case LhrsMsg::kPingRequest: {
      const auto& req = static_cast<const PingRequestMsg&>(*msg.body);
      auto pong = std::make_unique<PongReplyMsg>();
      pong->probe_id = req.probe_id;
      Send(msg.from, std::move(pong));
      return;
    }
    default:
      LHRS_LOG(Fatal) << "parity bucket: unhandled message kind "
                      << msg.body->kind();
  }
}

void ParityBucketNode::ApplyDelta(const ParityDelta& delta) {
  if (TryApplyDelta(delta)) {
    DrainPendingDeltas(delta.rank, delta.slot);
    return;
  }
  // The delta this op depends on has not arrived yet. Chaos reordering is
  // one cause; the other is plain concurrency: delivery latency scales with
  // message size, so a small kSet for a just-freed rank (insert reusing the
  // rank a split mover released) can overtake the bulk kClear batch that
  // frees it, even on the same sender->receiver path. Buffer the delta;
  // applying the predecessor drains it in arrival order.
  pending_deltas_[{delta.rank, delta.slot}].push_back(delta);
  if (auto* t = network()->telemetry(); t != nullptr) {
    t->metrics().GetCounter("parity.deltas_buffered").Add();
  }
}

bool ParityBucketNode::TryApplyDelta(const ParityDelta& delta) {
  const uint32_t m = ctx_->m;
  LHRS_CHECK_LT(delta.slot, m);

  // Precondition check before touching any state: kSet may not overwrite a
  // different live key, kNone needs a registered member, and kClear must
  // name the key it removes. The key match matters under real-transport
  // reordering: ranks are reused smallest-first, so a retransmit-delayed
  // clear(old key) can arrive after set(new key) for the same (rank, slot)
  // — applied blindly it would remove the new member and let the buffered
  // old set resurrect a deleted key in the parity metadata.
  auto existing = records_.find(delta.rank);
  const std::optional<Key>* cur =
      existing == records_.end() ? nullptr
                                 : &existing->second.keys[delta.slot];
  switch (delta.key_op) {
    case ParityDelta::KeyOp::kSet:
      if (cur != nullptr && cur->has_value() && **cur != delta.key) {
        return false;
      }
      break;
    case ParityDelta::KeyOp::kNone:
      if (cur == nullptr || !cur->has_value()) return false;
      break;
    case ParityDelta::KeyOp::kClear:
      if (cur == nullptr || !cur->has_value() || **cur != delta.key) {
        return false;
      }
      break;
  }

  auto [it, created] = records_.try_emplace(delta.rank, ParityRecord(m));
  ParityRecord& rec = it->second;

  const ErasureCoder& coder = ctx_->coders->ForK(k_);
  coder.ApplyDelta(delta.slot, delta.delta, parity_index_, &rec.parity);

  switch (delta.key_op) {
    case ParityDelta::KeyOp::kNone:
      rec.lengths[delta.slot] = delta.new_length;
      break;
    case ParityDelta::KeyOp::kSet:
      if (!rec.keys[delta.slot].has_value()) {
        rec.keys[delta.slot] = delta.key;
        key_index_[delta.key] = delta.rank;
      }
      rec.lengths[delta.slot] = delta.new_length;
      break;
    case ParityDelta::KeyOp::kClear:
      key_index_.erase(*rec.keys[delta.slot]);
      rec.keys[delta.slot].reset();
      rec.lengths[delta.slot] = 0;
      break;
  }

  if (!rec.HasAnyMember()) {
    // The last member left: the parity of an empty group must be zero —
    // a cheap, powerful integrity check of the whole delta pipeline.
    LHRS_CHECK(AllZero(rec.parity))
        << "non-zero parity for empty record group (g=" << group_
        << ", r=" << delta.rank << ")";
    records_.erase(it);
  }
  return true;
}

void ParityBucketNode::DrainPendingDeltas(Rank rank, uint32_t slot) {
  auto it = pending_deltas_.find({rank, slot});
  if (it == pending_deltas_.end()) return;
  // Each successful apply can unblock the next buffered op (a scrambled
  // set/clear/set chain resolves one alternation at a time), so keep
  // sweeping the arrival-ordered list until a pass makes no progress.
  bool progress = true;
  while (progress && !it->second.empty()) {
    progress = false;
    for (size_t i = 0; i < it->second.size(); ++i) {
      if (TryApplyDelta(it->second[i])) {
        it->second.erase(it->second.begin() + static_cast<long>(i));
        progress = true;
        break;
      }
    }
  }
  if (it->second.empty()) pending_deltas_.erase(it);
}

WireParityRecord ParityBucketNode::ToWire(Rank rank,
                                          const ParityRecord& rec) const {
  WireParityRecord out;
  out.rank = rank;
  out.keys = rec.keys;
  out.lengths = rec.lengths;
  out.parity = rec.parity;
  return out;
}

void ParityBucketNode::InstallColumn(const InstallParityColumnMsg& install) {
  LHRS_CHECK_EQ(install.group, group_);
  LHRS_CHECK_EQ(install.parity_index, parity_index_);
  records_.clear();
  key_index_.clear();
  pending_deltas_.clear();  // An install supersedes anything buffered.
  for (const auto& wire : install.parity_records) {
    ParityRecord rec(ctx_->m);
    rec.keys = wire.keys;
    rec.lengths = wire.lengths;
    rec.parity = wire.parity;
    for (uint32_t slot = 0; slot < ctx_->m; ++slot) {
      if (rec.keys[slot].has_value()) key_index_[*rec.keys[slot]] = wire.rank;
    }
    records_.emplace(wire.rank, std::move(rec));
  }
  initialized_ = true;
}

}  // namespace lhrs
