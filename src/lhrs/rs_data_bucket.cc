#include "lhrs/rs_data_bucket.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs {

RsDataBucketNode::RsDataBucketNode(std::shared_ptr<LhrsContext> lhrs_ctx,
                                   BucketNo bucket_no, Level level,
                                   bool pre_initialized)
    : DataBucketNode(lhrs_ctx->base, bucket_no, level, pre_initialized),
      lhrs_ctx_(std::move(lhrs_ctx)) {}

Rank RsDataBucketNode::RankOf(Key key) const {
  auto it = key_rank_.find(key);
  LHRS_CHECK(it != key_rank_.end()) << "no rank for key " << key;
  return it->second;
}

std::vector<RankedRecord> RsDataBucketNode::RankedRecords() const {
  std::vector<RankedRecord> out;
  out.reserve(rank_key_.size());
  for (const auto& [rank, key] : rank_key_) {
    out.push_back(RankedRecord{rank, key, *records_.Find(key)});
  }
  return out;
}

Rank RsDataBucketNode::AllocRank() {
  if (lhrs_ctx_->reuse_ranks && !free_ranks_.empty()) {
    const Rank r = free_ranks_.top();
    free_ranks_.pop();
    return r;
  }
  return next_rank_++;
}

void RsDataBucketNode::FreeRank(Rank r) { free_ranks_.push(r); }

void RsDataBucketNode::BindRank(Key key, Rank r) {
  key_rank_[key] = r;
  const auto [it, inserted] = rank_key_.emplace(r, key);
  LHRS_CHECK(inserted) << "rank " << r << " already bound";
  (void)it;
}

void RsDataBucketNode::ParkDelta(ParityDelta delta) {
  // Only possible on a lossy transport (or under fault injection): the
  // coordinator's GroupConfig was dropped or reordered behind a record
  // move or a forwarded client op. The delta waits; the (retransmitted)
  // GroupConfig flushes it. Ranks were already bound, so ordering per
  // record group is preserved.
  LHRS_CHECK(network()->fault_injection_active())
      << "bucket " << bucket_no()
      << " mutated before its group configuration";
  pending_deltas_.push_back(std::move(delta));
}

void RsDataBucketNode::SendDelta(ParityDelta delta) {
  if (batching_deltas_) {
    // Group commit (bulk load): coalesced into one batch message per
    // parity bucket at OnBatchCommitEnd.
    batch_deltas_.push_back(std::move(delta));
    return;
  }
  if (!has_group_config()) {
    ParkDelta(std::move(delta));
    return;
  }
  for (size_t i = 0; i < parity_nodes_.size(); ++i) {
    auto msg = std::make_unique<ParityDeltaMsg>();
    msg->group = group();
    msg->delta = i + 1 == parity_nodes_.size() ? std::move(delta) : delta;
    Send(parity_nodes_[i], std::move(msg));
  }
}

void RsDataBucketNode::OnInsertCommitted(Key key, const BufferView& value) {
  const Rank r = AllocRank();
  BindRank(key, r);
  ParityDelta d;
  d.rank = r;
  d.slot = slot();
  d.key_op = ParityDelta::KeyOp::kSet;
  d.key = key;
  d.new_length = static_cast<uint32_t>(value.size());
  d.delta = value;
  SendDelta(std::move(d));
}

void RsDataBucketNode::OnUpdateCommitted(Key key,
                                         const BufferView& old_value,
                                         const BufferView& new_value) {
  // Delta = old XOR new, zero-padded to the longer of the two — built once
  // in one pass; the k parity buckets then share the same delta buffer.
  BufferView delta = MakeXorDelta(old_value, new_value);
  ParityDelta d;
  d.rank = RankOf(key);
  d.slot = slot();
  d.key_op = ParityDelta::KeyOp::kSet;  // Refreshes the stored length.
  d.key = key;
  d.new_length = static_cast<uint32_t>(new_value.size());
  d.delta = std::move(delta);
  SendDelta(std::move(d));
}

void RsDataBucketNode::OnDeleteCommitted(Key key,
                                         const BufferView& old_value) {
  const Rank r = RankOf(key);
  key_rank_.erase(key);
  rank_key_.erase(r);
  FreeRank(r);
  ParityDelta d;
  d.rank = r;
  d.slot = slot();
  d.key_op = ParityDelta::KeyOp::kClear;
  d.key = key;  // The parity bucket refuses to clear any other key.
  d.delta = old_value;  // Folding the value out zeroes its contribution.
  SendDelta(std::move(d));
}

void RsDataBucketNode::OnRecordsMovedOut(std::vector<WireRecord>& moved) {
  if (moved.empty()) return;
  // One bulk message per parity bucket: every mover leaves its record
  // group (it will join a group of the new bucket's bucket group).
  std::vector<ParityDelta> deltas;
  deltas.reserve(moved.size());
  for (const auto& rec : moved) {
    const Rank r = RankOf(rec.key);
    key_rank_.erase(rec.key);
    rank_key_.erase(r);
    FreeRank(r);
    ParityDelta d;
    d.rank = r;
    d.slot = slot();
    d.key_op = ParityDelta::KeyOp::kClear;
    d.key = rec.key;
    d.delta = rec.value;
    deltas.push_back(std::move(d));
  }
  SendDeltaBatch(std::move(deltas));
}

void RsDataBucketNode::OnRecordsMovedIn(const std::vector<WireRecord>& moved) {
  if (moved.empty()) return;
  std::vector<ParityDelta> deltas;
  deltas.reserve(moved.size());
  for (const auto& rec : moved) {
    const Rank r = AllocRank();
    BindRank(rec.key, r);
    ParityDelta d;
    d.rank = r;
    d.slot = slot();
    d.key_op = ParityDelta::KeyOp::kSet;
    d.key = rec.key;
    d.new_length = static_cast<uint32_t>(rec.value.size());
    d.delta = rec.value;
    deltas.push_back(std::move(d));
  }
  SendDeltaBatch(std::move(deltas));
}

void RsDataBucketNode::OnBatchCommitBegin() {
  batching_deltas_ = true;
  batch_deltas_.clear();
}

void RsDataBucketNode::OnBatchCommitEnd() {
  batching_deltas_ = false;
  if (batch_deltas_.empty()) return;
  SendDeltaBatch(std::move(batch_deltas_));
  batch_deltas_.clear();  // Defined-empty after the move.
}

void RsDataBucketNode::SendDeltaBatch(std::vector<ParityDelta> deltas) {
  if (!has_group_config()) {
    for (ParityDelta& d : deltas) ParkDelta(std::move(d));
    return;
  }
  for (size_t i = 0; i < parity_nodes_.size(); ++i) {
    auto msg = std::make_unique<ParityDeltaBatchMsg>();
    msg->group = group();
    msg->deltas = i + 1 == parity_nodes_.size() ? std::move(deltas) : deltas;
    Send(parity_nodes_[i], std::move(msg));
  }
}

void RsDataBucketNode::OnDecommissioned() {
  key_rank_.clear();
  rank_key_.clear();
  next_rank_ = 1;
  while (!free_ranks_.empty()) free_ranks_.pop();
}

void RsDataBucketNode::HandleSubclassMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhrsMsg::kGroupConfig: {
      const auto& cfg = static_cast<const GroupConfigMsg&>(*msg.body);
      LHRS_CHECK_EQ(cfg.group, group());
      parity_nodes_ = cfg.parity_nodes;
      k_ = cfg.k;
      if (!pending_deltas_.empty()) {
        SendDeltaBatch(std::move(pending_deltas_));
        pending_deltas_.clear();
      }
      return;
    }
    case LhrsMsg::kColumnReadRequest: {
      const auto& req = static_cast<const ColumnReadRequestMsg&>(*msg.body);
      LHRS_CHECK_EQ(req.group, group());
      auto reply = std::make_unique<ColumnReadReplyMsg>();
      reply->task_id = req.task_id;
      reply->column = slot();
      reply->level = level();
      reply->records.reserve(rank_key_.size());
      for (const auto& [rank, key] : rank_key_) {
        // Views into the store's segments: the whole column dump ships
        // without copying a single payload byte.
        reply->records.push_back(RankedRecord{rank, key, *records_.Find(key)});
      }
      Send(msg.from, std::move(reply));
      return;
    }
    case LhrsMsg::kRecordReadRequest: {
      const auto& req = static_cast<const RecordReadRequestMsg&>(*msg.body);
      auto reply = std::make_unique<RecordReadReplyMsg>();
      reply->task_id = req.task_id;
      reply->column = slot();
      auto it = rank_key_.find(req.rank);
      if (it != rank_key_.end()) {
        reply->found = true;
        reply->record =
            RankedRecord{req.rank, it->second, *records_.Find(it->second)};
      }
      Send(msg.from, std::move(reply));
      return;
    }
    case LhrsMsg::kInstallDataColumn: {
      const auto& install =
          static_cast<const InstallDataColumnMsg&>(*msg.body);
      InstallDataColumn(install);
      auto done = std::make_unique<InstallDoneMsg>();
      done->task_id = install.task_id;
      done->column = slot();
      Send(msg.from, std::move(done));
      return;
    }
    case LhrsMsg::kPingRequest: {
      const auto& req = static_cast<const PingRequestMsg&>(*msg.body);
      auto pong = std::make_unique<PongReplyMsg>();
      pong->probe_id = req.probe_id;
      Send(msg.from, std::move(pong));
      return;
    }
    default:
      DataBucketNode::HandleSubclassMessage(msg);
  }
}

void RsDataBucketNode::HandleSubclassDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhrsMsg::kColumnReadReply:
    case LhrsMsg::kInstallDone: {
      // Recovery-protocol replies to the coordinator. A drop (fault
      // injection; the coordinator itself does not crash) would wedge the
      // recovery task, so re-send a bounded number of times.
      if (!network()->fault_injection_active()) return;
      constexpr uint32_t kMaxReplyAttempts = 4;
      if (msg.body->kind() == LhrsMsg::kColumnReadReply) {
        const auto& reply = static_cast<const ColumnReadReplyMsg&>(*msg.body);
        if (reply.attempt + 1 < kMaxReplyAttempts) {
          auto resend = std::make_unique<ColumnReadReplyMsg>(reply);
          ++resend->attempt;
          Send(msg.to, std::move(resend));
        }
      } else {
        const auto& done = static_cast<const InstallDoneMsg&>(*msg.body);
        if (done.attempt + 1 < kMaxReplyAttempts) {
          auto resend = std::make_unique<InstallDoneMsg>(done);
          ++resend->attempt;
          Send(msg.to, std::move(resend));
        }
      }
      return;
    }
    case LhrsMsg::kParityDelta:
    case LhrsMsg::kParityDeltaBatch: {
      // Under fault injection a bounce can mean a *dropped* message, not a
      // dead parity bucket — and the coordinator's ping verification would
      // find the bucket alive and dismiss our report, leaving its column
      // silently stale. Re-send a bounded number of times first.
      if (network()->fault_injection_active()) {
        constexpr uint32_t kMaxParityDeltaAttempts = 4;
        if (msg.body->kind() == LhrsMsg::kParityDelta) {
          const auto& delta = static_cast<const ParityDeltaMsg&>(*msg.body);
          if (delta.attempt + 1 < kMaxParityDeltaAttempts) {
            auto resend = std::make_unique<ParityDeltaMsg>(delta);
            ++resend->attempt;
            Send(msg.to, std::move(resend));
            return;
          }
        } else {
          const auto& batch =
              static_cast<const ParityDeltaBatchMsg&>(*msg.body);
          if (batch.attempt + 1 < kMaxParityDeltaAttempts) {
            auto resend = std::make_unique<ParityDeltaBatchMsg>(batch);
            ++resend->attempt;
            Send(msg.to, std::move(resend));
            return;
          }
        }
      }
      // A parity bucket of our group is down: report it so the coordinator
      // recovers it. The delta itself is not lost information — the parity
      // column is rebuilt from the data columns, which include this change.
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->is_parity = true;
      report->group = group();
      for (uint32_t j = 0; j < parity_nodes_.size(); ++j) {
        if (parity_nodes_[j] == msg.to) report->parity_index = j;
      }
      Send(ctx().coordinator, std::move(report));
      return;
    }
    default:
      DataBucketNode::HandleSubclassDeliveryFailure(msg);
  }
}

void RsDataBucketNode::InstallDataColumn(const InstallDataColumnMsg& install) {
  LHRS_CHECK_EQ(install.bucket, bucket_no());
  store::BucketStore records;
  key_rank_.clear();
  rank_key_.clear();
  while (!free_ranks_.empty()) free_ranks_.pop();
  Rank max_rank = 0;
  for (const auto& rec : install.records) {
    // Adopt the install message's views — the reconstructed column lands
    // without a per-record copy.
    records.InsertShared(rec.key, rec.value);
    BindRank(rec.key, rec.rank);
    max_rank = std::max(max_rank, rec.rank);
  }
  next_rank_ = max_rank + 1;
  for (Rank r = 1; r < next_rank_; ++r) {
    if (!rank_key_.contains(r)) free_ranks_.push(r);
  }
  InstallRecoveredState(std::move(records), install.level);
}

}  // namespace lhrs
