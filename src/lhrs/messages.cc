#include "lhrs/messages.h"

#include "net/stats.h"

namespace lhrs {

void RegisterLhrsMessageNames() {
  RegisterMessageKindName(LhrsMsg::kParityDelta, "lhrs.ParityDelta");
  RegisterMessageKindName(LhrsMsg::kParityDeltaBatch,
                          "lhrs.ParityDeltaBatch");
  RegisterMessageKindName(LhrsMsg::kGroupConfig, "lhrs.GroupConfig");
  RegisterMessageKindName(LhrsMsg::kColumnReadRequest,
                          "lhrs.ColumnReadRequest");
  RegisterMessageKindName(LhrsMsg::kColumnReadReply, "lhrs.ColumnReadReply");
  RegisterMessageKindName(LhrsMsg::kInstallDataColumn,
                          "lhrs.InstallDataColumn");
  RegisterMessageKindName(LhrsMsg::kInstallParityColumn,
                          "lhrs.InstallParityColumn");
  RegisterMessageKindName(LhrsMsg::kInstallDone, "lhrs.InstallDone");
  RegisterMessageKindName(LhrsMsg::kFindRankRequest, "lhrs.FindRankRequest");
  RegisterMessageKindName(LhrsMsg::kFindRankReply, "lhrs.FindRankReply");
  RegisterMessageKindName(LhrsMsg::kRecordReadRequest,
                          "lhrs.RecordReadRequest");
  RegisterMessageKindName(LhrsMsg::kRecordReadReply, "lhrs.RecordReadReply");
  RegisterMessageKindName(LhrsMsg::kParityRecordRequest,
                          "lhrs.ParityRecordRequest");
  RegisterMessageKindName(LhrsMsg::kParityRecordReply,
                          "lhrs.ParityRecordReply");
  RegisterMessageKindName(LhrsMsg::kPingRequest, "lhrs.PingRequest");
  RegisterMessageKindName(LhrsMsg::kPongReply, "lhrs.PongReply");
}

}  // namespace lhrs
