#include "lhrs/recovery.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <utility>

#include "common/buffer.h"
#include "common/logging.h"

namespace lhrs {

namespace {

/// Everything known about one record group (one rank) during
/// reconstruction.
struct RankState {
  std::vector<std::optional<Key>> keys;     // size m; merged metadata.
  std::vector<uint32_t> lengths;            // size m.
  // Shared views into the survivors' dump messages — collation never
  // copies a payload byte.
  std::map<uint32_t, const BufferView*> data;    // survivor data column.
  std::map<uint32_t, const BufferView*> parity;  // survivor parity column.
  bool have_parity_meta = false;

  explicit RankState(uint32_t m) : keys(m), lengths(m, 0) {}
};

}  // namespace

Result<std::vector<ReconstructedColumn>> ReconstructColumns(
    const ReconstructionRequest& req) {
  const uint32_t m = req.m;
  LHRS_CHECK(req.coder != nullptr);
  LHRS_CHECK_LE(req.existing_slots, m);

  std::vector<uint32_t> missing_data;
  std::vector<uint32_t> missing_parity;
  for (uint32_t col : req.missing_columns) {
    (col < m ? missing_data : missing_parity).push_back(col);
  }

  // Feasibility in column-identity space: the survivors (plus known-zero
  // slots) must determine every missing data column. For an MDS code this
  // is the classic >= m columns bound; non-MDS codes rank-check.
  std::vector<uint32_t> have;
  for (const auto& s : req.survivors) have.push_back(s.column);
  for (uint32_t slot = req.existing_slots; slot < m; ++slot) {
    have.push_back(slot);
  }
  if (!req.coder->CanDecodeFrom(have, missing_data)) {
    return Status::DataLoss("group unrecoverable: " +
                            std::to_string(req.survivors.size()) +
                            " survivors + " +
                            std::to_string(m - req.existing_slots) +
                            " empty slots do not determine the lost columns");
  }
  bool have_parity_survivor = false;
  for (const auto& s : req.survivors) {
    if (s.is_parity(m)) have_parity_survivor = true;
  }
  if (!missing_data.empty() && !have_parity_survivor) {
    return Status::DataLoss(
        "data columns lost and no parity survivor holds their keys");
  }
  if (!missing_parity.empty()) {
    // Re-encoding a parity column needs every existing data slot's value:
    // as a survivor, as a freshly decoded missing column, or known-zero.
    for (uint32_t slot = 0; slot < req.existing_slots; ++slot) {
      const bool covered =
          std::find(have.begin(), have.end(), slot) != have.end() ||
          std::find(missing_data.begin(), missing_data.end(), slot) !=
              missing_data.end();
      if (!covered) {
        return Status::DataLoss(
            "parity column lost and data slot " + std::to_string(slot) +
            " is neither a survivor nor being rebuilt");
      }
    }
  }

  // Collate survivors per rank.
  std::map<Rank, RankState> table;
  auto rank_state = [&](Rank r) -> RankState& {
    return table.try_emplace(r, RankState(m)).first->second;
  };
  for (const auto& s : req.survivors) {
    if (s.is_parity(m)) {
      for (const auto& pr : s.parity_records) {
        RankState& st = rank_state(pr.rank);
        st.parity[s.column] = &pr.parity;
        if (!st.have_parity_meta) {
          st.keys = pr.keys;
          st.lengths = pr.lengths;
          st.have_parity_meta = true;
        }
      }
    } else {
      for (const auto& rec : s.records) {
        RankState& st = rank_state(rec.rank);
        st.data[s.column] = &rec.value;
      }
    }
  }
  // Fold data-dump metadata in (and cross-check against parity metadata).
  for (const auto& s : req.survivors) {
    if (s.is_parity(m)) continue;
    for (const auto& rec : s.records) {
      RankState& st = table.at(rec.rank);
      if (st.have_parity_meta) {
        LHRS_CHECK(st.keys[s.column].has_value() &&
                   *st.keys[s.column] == rec.key)
            << "parity metadata disagrees with data column " << s.column;
      } else {
        st.keys[s.column] = rec.key;
        st.lengths[s.column] = static_cast<uint32_t>(rec.value.size());
      }
    }
  }

  std::vector<ReconstructedColumn> out;
  out.reserve(req.missing_columns.size());
  std::map<uint32_t, ReconstructedColumn*> out_by_col;
  for (uint32_t col : req.missing_columns) {
    out.push_back(ReconstructedColumn{col, {}, {}});
  }
  for (auto& col : out) out_by_col[col.column] = &col;

  const BufferView kEmpty;
  for (auto& [rank, st] : table) {
    // Which of the missing data slots actually hold a member here?
    std::vector<size_t> wanted;
    for (uint32_t col : missing_data) {
      if (st.keys[col].has_value()) wanted.push_back(col);
    }

    std::vector<Bytes> decoded;
    if (!wanted.empty()) {
      std::vector<std::pair<size_t, BufferView>> available;
      // Survivor data columns (absent record == empty == zero column).
      for (const auto& s : req.survivors) {
        if (s.is_parity(m)) continue;
        auto it = st.data.find(s.column);
        available.emplace_back(s.column,
                               it == st.data.end() ? kEmpty : *it->second);
      }
      // Known-zero (non-existing) slots.
      for (uint32_t slot = req.existing_slots; slot < m; ++slot) {
        available.emplace_back(slot, kEmpty);
      }
      // Survivor parity columns (absent parity record == zero parity; only
      // consistent when the rank has no members there, checked by decode).
      for (const auto& s : req.survivors) {
        if (!s.is_parity(m)) continue;
        auto it = st.parity.find(s.column);
        available.emplace_back(s.column,
                               it == st.parity.end() ? kEmpty : *it->second);
      }
      if (req.progressive) {
        // Feed the code's incremental decoder column by column and stop as
        // soon as the rank suffices: the record group decodes from the
        // earliest sufficient survivor subset.
        std::vector<uint32_t> wanted32(wanted.begin(), wanted.end());
        auto decoder = req.coder->NewProgressiveDecoder(wanted32, {});
        for (const auto& [col, payload] : available) {
          if (decoder->Ready()) break;
          decoder->AddColumn(static_cast<uint32_t>(col), payload);
        }
        auto result = decoder->Decode();
        if (!result.ok()) return result.status();
        decoded = std::move(result).value();
      } else {
        auto result = req.coder->DecodeData(available, wanted);
        if (!result.ok()) return result.status();
        decoded = std::move(result).value();
      }
      // Trim each reconstructed value to its recorded length; the padding
      // beyond it must be zero, a strong end-to-end decode check.
      for (size_t i = 0; i < wanted.size(); ++i) {
        const uint32_t len = st.lengths[wanted[i]];
        LHRS_CHECK_LE(len, decoded[i].size());
        for (size_t p = len; p < decoded[i].size(); ++p) {
          LHRS_CHECK_EQ(decoded[i][p], 0)
              << "decode produced non-zero padding";
        }
        decoded[i].resize(len);
        out_by_col[wanted[i]]->records.push_back(
            RankedRecord{rank, *st.keys[wanted[i]], decoded[i]});
      }
    }

    if (!missing_parity.empty()) {
      // Assemble the full data row (survivor values + freshly decoded) and
      // re-encode the missing parity columns.
      std::vector<std::span<const uint8_t>> row(m);
      bool any_member = false;
      for (uint32_t slot = 0; slot < req.existing_slots; ++slot) {
        if (!st.keys[slot].has_value()) continue;
        any_member = true;
        auto it = st.data.find(slot);
        if (it != st.data.end()) {
          row[slot] = *it->second;
          continue;
        }
        auto w = std::find(wanted.begin(), wanted.end(), slot);
        LHRS_CHECK(w != wanted.end())
            << "member value for slot " << slot << " is neither a survivor "
            << "nor reconstructible";
        row[slot] = decoded[w - wanted.begin()];
      }
      if (any_member) {
        for (uint32_t col : missing_parity) {
          const uint32_t j = col - m;
          BufferView parity;
          for (uint32_t slot = 0; slot < m; ++slot) {
            if (row[slot].empty()) continue;
            req.coder->ApplyDelta(slot, row[slot], j, &parity);
          }
          WireParityRecord pr;
          pr.rank = rank;
          pr.keys = st.keys;
          pr.lengths = st.lengths;
          pr.parity = std::move(parity);
          out_by_col[col]->parity_records.push_back(std::move(pr));
        }
      }
    }
  }
  return out;
}

}  // namespace lhrs
