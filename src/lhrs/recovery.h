#ifndef LHRS_LHRS_RECOVERY_H_
#define LHRS_LHRS_RECOVERY_H_

#include <vector>

#include "common/result.h"
#include "lhrs/messages.h"
#include "lhrs/shared.h"

namespace lhrs {

/// One surviving codeword column of a bucket group, as dumped by its
/// server. Data columns carry ranked records; parity columns carry parity
/// records.
struct ColumnDump {
  uint32_t column = 0;  ///< 0..m-1 data slot, m..m+k-1 parity.
  std::vector<RankedRecord> records;
  std::vector<WireParityRecord> parity_records;

  bool is_parity(uint32_t m) const { return column >= m; }
};

/// Input of a group reconstruction: the survivors that were read, the
/// columns to rebuild, and the group geometry. `existing_slots` is the
/// number of data slots that exist (< m for the file's last, partial
/// group); non-existing slots are known-zero columns.
struct ReconstructionRequest {
  uint32_t m = 0;
  uint32_t k = 0;
  const ErasureCoder* coder = nullptr;
  uint32_t existing_slots = 0;
  std::vector<ColumnDump> survivors;
  std::vector<uint32_t> missing_columns;
  /// Decode each record group through the code's incremental decoder,
  /// consuming survivor columns in arrival order and stopping as soon as
  /// the rank suffices (instead of the one-shot all-columns decode).
  bool progressive = false;
};

/// One rebuilt column, ready to install at a spare.
struct ReconstructedColumn {
  uint32_t column = 0;
  std::vector<RankedRecord> records;           ///< Data columns.
  std::vector<WireParityRecord> parity_records;  ///< Parity columns.
};

/// Rebuilds every requested column of one bucket group from the surviving
/// columns, rank by rank (each record group decodes independently).
///
/// Requirements checked: enough columns for an MDS decode (survivors +
/// known-zero slots >= m) and, when data columns are missing, at least one
/// parity survivor (the only holder of the missing records' keys and
/// lengths). Violations return kDataLoss.
Result<std::vector<ReconstructedColumn>> ReconstructColumns(
    const ReconstructionRequest& request);

}  // namespace lhrs

#endif  // LHRS_LHRS_RECOVERY_H_
