#ifndef LHRS_LHRS_RS_COORDINATOR_H_
#define LHRS_LHRS_RS_COORDINATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "lhrs/messages.h"
#include "lhrs/recovery.h"
#include "lhrs/shared.h"
#include "lhstar/coordinator.h"

namespace lhrs {

/// The LH*RS coordinator: the LH* split coordinator extended with
/// bucket-group management (parity bucket allocation, scalable
/// availability), k-availability recovery orchestration, and degraded-mode
/// record recovery for searches that hit an unavailable bucket.
///
/// Simulation note: recovery *planning* consults the simulator's liveness
/// oracle (which nodes are up), modelling the coordinator's failure
/// detector; every byte of recovery *data* still moves through counted
/// messages (column reads, installs), so the reproduced costs are the
/// protocol's.
class RsCoordinatorNode : public CoordinatorNode {
 public:
  /// Creates a parity-bucket server (uninitialised when `spare`).
  using ParityFactory = std::function<NodeId(
      uint32_t group, uint32_t parity_index, uint32_t k, bool spare)>;

  explicit RsCoordinatorNode(std::shared_ptr<LhrsContext> lhrs_ctx);

  void SetParityFactory(ParityFactory factory) {
    parity_factory_ = std::move(factory);
  }

  /// Per-group parity configuration.
  struct GroupInfo {
    uint32_t k = 0;
    std::vector<NodeId> parity_nodes;
    bool lost = false;  ///< More than k columns failed; data is gone.
  };

  size_t group_count() const { return groups_.size(); }
  const GroupInfo& group_info(uint32_t g) const;

  /// Makes sure groups 0..g exist (allocating parity buckets with the
  /// availability level the policy dictates at current file size).
  void EnsureGroup(uint32_t g);

  /// Creates the groups covering the file's initial buckets and pushes the
  /// group configuration to them (called once by the facade at setup).
  void InitializeGroups();

  /// External failure notification (the facade's failure detector / a
  /// human operator): recover everything this node carried.
  void NotifyUnavailable(NodeId node);

  /// Explicitly starts recovery of every failed column in group `g`.
  void RecoverGroup(uint32_t g);

  // --- File-state recovery (algorithm A6) --------------------------------
  /// Broadcasts a state scan; call FinishFileStateRecovery after the
  /// simulation settles to compute (i, n) from the replies.
  void StartFileStateRecovery();
  /// Applies A6 to the collected (m, j_m) replies and returns the
  /// reconstructed state.
  Result<FileState> FinishFileStateRecovery();

  // --- Coordinator soft-state recovery -------------------------------------
  /// Simulates a coordinator restart that lost all soft state, then
  /// rebuilds everything from a survey of the surviving nodes: the file
  /// state (i, n) via the (A6) closed form, the allocation table, and the
  /// bucket-group/parity directory. Buckets whose servers do not answer
  /// are recovered through the normal k-availability machinery afterwards.
  ///
  /// Call WipeSoftState, run the simulation until idle (the survey and any
  /// triggered recoveries complete), then query survey_rebuilt().
  void WipeSoftStateAndResurvey();
  bool survey_rebuilt() const { return survey_rebuilt_; }

  // --- Parity scrubbing ----------------------------------------------------
  /// Outcome of a scrub pass over one or more bucket groups.
  struct ScrubReport {
    uint32_t groups_scrubbed = 0;
    uint64_t record_groups_checked = 0;
    uint64_t mismatched_parity_records = 0;
    uint32_t parity_columns_repaired = 0;
  };

  /// Starts an integrity audit of group `g`: reads every column, recomputes
  /// the Reed-Solomon parity from the data columns and compares it (and the
  /// key/length metadata) against the parity buckets' contents. With
  /// `repair`, mismatched parity columns are re-encoded from the data and
  /// reinstalled. Results accumulate into scrub_report() (reset it first
  /// via ResetScrubReport). Requires all columns of the group to be up.
  void StartScrub(uint32_t g, bool repair);
  const ScrubReport& scrub_report() const { return scrub_report_; }
  void ResetScrubReport() { scrub_report_ = ScrubReport{}; }
  bool scrub_in_progress() const { return !scrubs_.empty(); }

  // --- Statistics ----------------------------------------------------------
  uint64_t recoveries_completed() const { return recoveries_completed_; }
  uint64_t columns_recovered() const { return columns_recovered_; }
  uint64_t degraded_reads_served() const { return degraded_reads_served_; }
  uint64_t groups_lost() const { return groups_lost_; }

 protected:
  void OnBucketCreated(BucketNo bucket, NodeId node, Level level) override;
  void HandleClientOpFallback(const ClientOpViaCoordinatorMsg& op) override;
  void HandleUnavailableReport(const UnavailableReportMsg& report) override;
  void HandleSubclassMessage(const Message& msg) override;
  void HandleSubclassDeliveryFailure(const Message& msg) override;
  void OnOpDeliveryFailure(const OpRequestMsg& request) override;
  void OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                   NodeId victim_node) override;
  void OnOrphanedMoveRecords(const MoveRecordsMsg& move) override;
  void OnOrphanedMergeRecords(const MergeRecordsMsg& merge) override;
  bool CanSplitNow() const override {
    return tasks_.empty() && scrubs_.empty();
  }

 private:
  struct RecoveryTask {
    uint64_t id = 0;
    uint32_t group = 0;
    std::vector<uint32_t> missing_columns;
    std::map<uint32_t, NodeId> spares;        // column -> spare node.
    std::map<uint32_t, Level> data_levels;    // data column -> level j.
    std::set<uint32_t> awaiting_reads;        // columns not yet dumped.
    std::vector<ColumnDump> dumps;
    std::set<uint32_t> awaiting_installs;
    /// Progressive repair: decode as soon as the received columns' rank
    /// suffices instead of waiting for every requested read.
    bool progressive = false;
    /// Tracks the rank of the received column set (column ids only; the
    /// per-rank byte decode happens later in ReconstructColumns).
    std::unique_ptr<parity::ProgressiveDecoder> rank_tracker;
    bool have_parity_dump = false;  ///< A parity dump (key metadata) arrived.
    // Telemetry timestamps (SimTime; meaningful only when telemetry is on).
    uint64_t started_us = 0;
    uint64_t read_started_us = 0;
    uint64_t install_started_us = 0;
  };

  struct ScrubTask {
    uint64_t id = 0;
    uint32_t group = 0;
    bool repair = false;
    std::set<uint32_t> awaiting_reads;
    std::vector<ColumnDump> dumps;
  };

  struct DegradedReadTask {
    uint64_t id = 0;
    ClientOpViaCoordinatorMsg op;
    uint32_t group = 0;
    uint32_t target_slot = 0;
    bool have_meta = false;
    WireParityRecord meta;
    std::set<uint32_t> awaiting;              // columns requested.
    std::map<uint32_t, BufferView> columns;   // shared column payloads.
    std::set<uint32_t> used_parity;           // parity indexes consumed.
    uint64_t started_us = 0;                  // Telemetry timestamp.
  };

  /// Data buckets of group g that exist right now: [g*m, min((g+1)*m, M)).
  uint32_t ExistingSlots(uint32_t g) const;
  bool NodeUp(NodeId node) const;
  void SendGroupConfig(uint32_t g);
  /// True when `bucket`'s column is being rebuilt.
  bool IsRecoveringData(BucketNo bucket) const {
    return recovering_data_.contains(bucket);
  }

  void StartRecovery(uint32_t g);
  void MarkGroupLost(uint32_t g);
  /// Drops group `g`'s in-flight recovery task if it is `task_id`. Used
  /// when one of the task's own messages bounced: the task can never
  /// finish, and StartRecovery's identical-missing-set guard would
  /// otherwise keep the broken task waiting forever.
  void AbortTaskIfActive(uint64_t task_id, uint32_t g);
  /// Closes the open trace slices of a task being abandoned (stale survivor
  /// set or group loss), so Chrome-trace B/E pairs stay balanced.
  void TraceTaskAborted(const RecoveryTask& task);
  void OnColumnRead(const ColumnReadReplyMsg& reply, NodeId from);
  void TryDecodeAndInstall(RecoveryTask& task);
  void OnInstallDone(const InstallDoneMsg& done);
  void FinishTask(RecoveryTask& task);
  void ParkOp(const ClientOpViaCoordinatorMsg& op);
  void OnDataBucketUnreachable(BucketNo bucket,
                               const ClientOpViaCoordinatorMsg* op);

  void FinishScrub(ScrubTask& task);

  void StartDegradedRead(const ClientOpViaCoordinatorMsg& op);
  void ContinueDegradedRead(DegradedReadTask& task);
  void OnFindRankReply(const FindRankReplyMsg& reply);
  void OnDegradedColumn(uint64_t task_id, uint32_t column, bool found,
                        const BufferView& payload);
  void MaybeFinishDegradedRead(DegradedReadTask& task);
  void FailDegradedRead(DegradedReadTask& task, Status status);

  std::shared_ptr<LhrsContext> lhrs_ctx_;
  ParityFactory parity_factory_;
  std::vector<GroupInfo> groups_;

  uint64_t next_task_id_ = 1;
  std::map<uint64_t, RecoveryTask> tasks_;
  std::map<uint32_t, uint64_t> group_task_;      // group -> active task id.
  std::set<BucketNo> recovering_data_;
  std::set<std::pair<uint32_t, uint32_t>> recovering_parity_;
  std::map<BucketNo, std::vector<ClientOpViaCoordinatorMsg>> parked_;
  /// Restructuring steps stalled on a dead participant, resumed when its
  /// bucket finishes recovering. Keyed by that bucket.
  std::map<BucketNo, SplitOrderMsg> pending_split_orders_;
  std::map<BucketNo, MoveRecordsMsg> pending_move_records_;
  std::map<BucketNo, MergeRecordsMsg> pending_merge_records_;

  std::map<uint64_t, DegradedReadTask> degraded_;
  std::map<uint64_t, ScrubTask> scrubs_;
  ScrubReport scrub_report_;

  bool state_scan_active_ = false;
  std::map<BucketNo, Level> state_scan_replies_;

  struct SurveyState {
    uint64_t id = 0;
    size_t awaiting = 0;
    std::vector<std::pair<NodeId, SurveyReplyMsg>> replies;
  };
  void FinishSurvey(SurveyState& survey);
  std::map<uint64_t, SurveyState> surveys_;
  uint64_t next_survey_id_ = 1;
  bool survey_rebuilt_ = false;

  uint64_t recoveries_completed_ = 0;
  uint64_t columns_recovered_ = 0;
  uint64_t degraded_reads_served_ = 0;
  uint64_t groups_lost_ = 0;
  uint64_t next_probe_id_ = 1;
  std::map<uint64_t, NodeId> probes_;  // probe id -> probed node.
};

}  // namespace lhrs

#endif  // LHRS_LHRS_RS_COORDINATOR_H_
