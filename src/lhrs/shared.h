#ifndef LHRS_LHRS_SHARED_H_
#define LHRS_LHRS_SHARED_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "lh/lh_math.h"
#include "lhstar/system.h"
#include "parity/parity_code.h"

namespace lhrs {

/// The protocol nodes (parity buckets, recovery, degraded reads) are
/// written against the field- and scheme-erased parity-code interface;
/// the historical name survives as an alias.
using ErasureCoder = parity::ParityCode;

/// Scalable-availability policy (paper section on n-availability /
/// uncoordinated scalable availability): the availability level k assigned
/// to a *newly created* bucket group is base_k plus the number of
/// size thresholds the file has crossed. Existing groups keep their k.
struct AvailabilityPolicy {
  uint32_t base_k = 1;
  /// File sizes (in data buckets) at which k increments for new groups.
  std::vector<BucketNo> scale_thresholds;

  uint32_t KForFileSize(BucketNo data_buckets) const {
    uint32_t k = base_k;
    for (BucketNo t : scale_thresholds) {
      if (data_buckets >= t) ++k;
    }
    return k;
  }
};

/// Shares one parity code per availability level k (the generator matrix
/// for (m, k2) embeds the one for (m, k1 < k2) column-wise only after the
/// same normalisation, so each k gets its own code; they are tiny).
class CoderCache {
 public:
  explicit CoderCache(uint32_t m, FieldChoice field = FieldChoice::kGf256,
                      parity::CodeSpec code = {})
      : m_(m), field_(field), code_(code) {}

  uint32_t m() const { return m_; }
  FieldChoice field() const { return field_; }
  const parity::CodeSpec& code() const { return code_; }

  /// Get-or-create; the returned code lives as long as the cache. Guarded
  /// so parity buckets on different localities can resolve concurrently
  /// (codes themselves are immutable once built). CHECK-fails on a
  /// geometry the configured code cannot express — validate the spec
  /// against the availability policy at file creation.
  const ErasureCoder& ForK(uint32_t k) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = coders_.find(k);
    if (it == coders_.end()) {
      auto coder = parity::MakeParityCode(code_, m_, k, field_);
      LHRS_CHECK(coder.ok()) << coder.status();
      it = coders_.emplace(k, std::move(coder).value()).first;
    }
    return *it->second;
  }

 private:
  std::mutex mu_;
  uint32_t m_;
  FieldChoice field_;
  parity::CodeSpec code_;
  std::map<uint32_t, std::unique_ptr<ErasureCoder>> coders_;
};

/// Shared wiring of the LH*RS layer, handed to parity buckets, RS data
/// buckets and the RS coordinator alongside the base SystemContext.
struct LhrsContext {
  std::shared_ptr<SystemContext> base;
  uint32_t m = 4;  ///< Bucket-group size.
  std::shared_ptr<CoderCache> coders;
  AvailabilityPolicy policy;
  bool auto_recover = true;
  /// Ablation switch (DESIGN.md section 6): reuse ranks freed by deletes
  /// and split moves (keeps record groups dense) vs monotone ranks (group
  /// occupancy decays, inflating parity storage).
  bool reuse_ranks = true;
};

/// Bucket group of data bucket `b` for group size m.
inline uint32_t GroupOf(BucketNo b, uint32_t m) { return b / m; }
/// Slot of data bucket `b` within its group.
inline uint32_t SlotOf(BucketNo b, uint32_t m) { return b % m; }

}  // namespace lhrs

#endif  // LHRS_LHRS_SHARED_H_
