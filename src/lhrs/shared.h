#ifndef LHRS_LHRS_SHARED_H_
#define LHRS_LHRS_SHARED_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "lh/lh_math.h"
#include "lhstar/system.h"
#include "rs/coder.h"

namespace lhrs {

/// Galois field used by a file's parity subsystem. GF(2^8) treats every
/// payload byte as a symbol (the SIGMOD-era choice); GF(2^16) halves the
/// table lookups per byte at the cost of 256 KiB tables (the choice the
/// LH*RS line of work later moved to). Selected per file at creation.
enum class FieldChoice { kGf256, kGf65536 };

inline const char* FieldChoiceName(FieldChoice f) {
  return f == FieldChoice::kGf256 ? "GF(2^8)" : "GF(2^16)";
}

/// Field-erased view of a GroupCoder, so the protocol nodes (parity
/// buckets, recovery, degraded reads) are independent of the symbol width.
class ErasureCoder {
 public:
  virtual ~ErasureCoder() = default;

  virtual uint32_t m() const = 0;
  virtual uint32_t k() const = 0;

  /// Folds coeff(slot, parity_index) * delta into parity (grows it).
  virtual void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                          size_t parity_index, Bytes* parity) const = 0;

  /// Copy-on-write form: in place when the view is sole owner, detaching
  /// when a snapshot shares the buffer.
  virtual void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                          size_t parity_index, BufferView* parity) const = 0;

  /// Reconstructs the requested data columns from >= m available columns
  /// (shared views of the survivors' dumps; no payload copies).
  virtual Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, BufferView>>& available,
      const std::vector<size_t>& missing_data) const = 0;
};

/// ErasureCoder over a concrete field.
template <GaloisField F>
class TypedErasureCoder final : public ErasureCoder {
 public:
  TypedErasureCoder(uint32_t m, uint32_t k) : impl_(m, k) {}

  uint32_t m() const override { return static_cast<uint32_t>(impl_.m()); }
  uint32_t k() const override { return static_cast<uint32_t>(impl_.k()); }

  void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                  size_t parity_index, Bytes* parity) const override {
    impl_.ApplyDelta(slot, delta, parity_index, parity);
  }

  void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                  size_t parity_index, BufferView* parity) const override {
    impl_.ApplyDelta(slot, delta, parity_index, parity);
  }

  Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, BufferView>>& available,
      const std::vector<size_t>& missing_data) const override {
    return impl_.DecodeData(available, missing_data);
  }

 private:
  GroupCoder<F> impl_;
};

/// Scalable-availability policy (paper section on n-availability /
/// uncoordinated scalable availability): the availability level k assigned
/// to a *newly created* bucket group is base_k plus the number of
/// size thresholds the file has crossed. Existing groups keep their k.
struct AvailabilityPolicy {
  uint32_t base_k = 1;
  /// File sizes (in data buckets) at which k increments for new groups.
  std::vector<BucketNo> scale_thresholds;

  uint32_t KForFileSize(BucketNo data_buckets) const {
    uint32_t k = base_k;
    for (BucketNo t : scale_thresholds) {
      if (data_buckets >= t) ++k;
    }
    return k;
  }
};

/// Shares one coder per availability level k (the generator matrix for
/// (m, k2) embeds the one for (m, k1 < k2) column-wise only after the same
/// normalisation, so each k gets its own coder; they are tiny).
class CoderCache {
 public:
  explicit CoderCache(uint32_t m, FieldChoice field = FieldChoice::kGf256)
      : m_(m), field_(field) {}

  uint32_t m() const { return m_; }
  FieldChoice field() const { return field_; }

  /// Get-or-create; the returned coder lives as long as the cache. Guarded
  /// so parity buckets on different localities can resolve concurrently
  /// (coders themselves are immutable once built).
  const ErasureCoder& ForK(uint32_t k) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = coders_.find(k);
    if (it == coders_.end()) {
      std::unique_ptr<ErasureCoder> coder;
      if (field_ == FieldChoice::kGf256) {
        coder = std::make_unique<TypedErasureCoder<GF256>>(m_, k);
      } else {
        coder = std::make_unique<TypedErasureCoder<GF65536>>(m_, k);
      }
      it = coders_.emplace(k, std::move(coder)).first;
    }
    return *it->second;
  }

 private:
  std::mutex mu_;
  uint32_t m_;
  FieldChoice field_;
  std::map<uint32_t, std::unique_ptr<ErasureCoder>> coders_;
};

/// Shared wiring of the LH*RS layer, handed to parity buckets, RS data
/// buckets and the RS coordinator alongside the base SystemContext.
struct LhrsContext {
  std::shared_ptr<SystemContext> base;
  uint32_t m = 4;  ///< Bucket-group size.
  std::shared_ptr<CoderCache> coders;
  AvailabilityPolicy policy;
  bool auto_recover = true;
  /// Ablation switch (DESIGN.md section 6): reuse ranks freed by deletes
  /// and split moves (keeps record groups dense) vs monotone ranks (group
  /// occupancy decays, inflating parity storage).
  bool reuse_ranks = true;
};

/// Bucket group of data bucket `b` for group size m.
inline uint32_t GroupOf(BucketNo b, uint32_t m) { return b / m; }
/// Slot of data bucket `b` within its group.
inline uint32_t SlotOf(BucketNo b, uint32_t m) { return b % m; }

}  // namespace lhrs

#endif  // LHRS_LHRS_SHARED_H_
