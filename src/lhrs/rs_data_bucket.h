#ifndef LHRS_LHRS_RS_DATA_BUCKET_H_
#define LHRS_LHRS_RS_DATA_BUCKET_H_

#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "lhrs/messages.h"
#include "lhrs/shared.h"
#include "lhstar/data_bucket.h"

namespace lhrs {

/// An LH*RS data bucket: an LH* data bucket that additionally assigns a
/// rank to every resident record and keeps the k parity buckets of its
/// bucket group consistent through incremental XOR/Reed-Solomon deltas.
///
/// Rank discipline: ranks are 1-based and unique within the bucket; ranks
/// freed by deletes and split moves are reused smallest-first so record
/// groups stay dense (the paper's counter-reuse enhancement, section 4.3).
class RsDataBucketNode : public DataBucketNode {
 public:
  RsDataBucketNode(std::shared_ptr<LhrsContext> lhrs_ctx, BucketNo bucket_no,
                   Level level, bool pre_initialized);

  uint32_t group() const { return GroupOf(bucket_no(), lhrs_ctx_->m); }
  uint32_t slot() const { return SlotOf(bucket_no(), lhrs_ctx_->m); }
  bool has_group_config() const { return !parity_nodes_.empty(); }

  /// Rank of a resident key (tests / invariant checks).
  Rank RankOf(Key key) const;
  Rank next_rank() const { return next_rank_; }

  /// All resident records with their ranks, in rank order (tests /
  /// invariant verification; the protocol path is ColumnReadRequest).
  std::vector<RankedRecord> RankedRecords() const;

 protected:
  void OnInsertCommitted(Key key, const BufferView& value) override;
  void OnUpdateCommitted(Key key, const BufferView& old_value,
                         const BufferView& new_value) override;
  void OnDeleteCommitted(Key key, const BufferView& old_value) override;
  void OnRecordsMovedOut(std::vector<WireRecord>& moved) override;
  void OnRecordsMovedIn(const std::vector<WireRecord>& moved) override;
  void OnDecommissioned() override;
  /// Group commit for bulk loads: deltas generated between Begin and End
  /// are buffered and flushed as one ParityDeltaBatchMsg per parity bucket
  /// instead of one ParityDeltaMsg per record — k messages per sub-batch.
  void OnBatchCommitBegin() override;
  void OnBatchCommitEnd() override;

  void HandleSubclassMessage(const Message& msg) override;
  void HandleSubclassDeliveryFailure(const Message& msg) override;

 private:
  Rank AllocRank();
  void FreeRank(Rank r);
  void BindRank(Key key, Rank r);
  /// Sends one delta to all k parity buckets of this bucket's group.
  void SendDelta(ParityDelta delta);
  /// Holds a delta generated before GroupConfig arrived (only possible on
  /// a lossy transport or under fault injection).
  void ParkDelta(ParityDelta delta);
  /// Sends a delta batch to all k parity buckets (one bulk message each;
  /// the last send steals the batch instead of copying it).
  void SendDeltaBatch(std::vector<ParityDelta> deltas);
  void InstallDataColumn(const InstallDataColumnMsg& install);

  std::shared_ptr<LhrsContext> lhrs_ctx_;
  std::vector<NodeId> parity_nodes_;  ///< Local copy, fed by GroupConfig.
  uint32_t k_ = 0;
  /// Deltas generated before GroupConfig arrived (chaos reorder/drop, or
  /// real-transport retransmit delay); flushed when the configuration
  /// lands. Ranks are bound at generation time, so replay order within a
  /// record group is preserved.
  std::vector<ParityDelta> pending_deltas_;
  /// Group-commit buffer: while true, SendDelta accumulates here instead
  /// of sending (see OnBatchCommitBegin/End).
  bool batching_deltas_ = false;
  std::vector<ParityDelta> batch_deltas_;

  Rank next_rank_ = 1;
  std::priority_queue<Rank, std::vector<Rank>, std::greater<Rank>>
      free_ranks_;
  std::unordered_map<Key, Rank> key_rank_;
  std::map<Rank, Key> rank_key_;  ///< Ordered for deterministic dumps.
};

}  // namespace lhrs

#endif  // LHRS_LHRS_RS_DATA_BUCKET_H_
