#ifndef LHRS_CHAOS_FAULT_PLAN_H_
#define LHRS_CHAOS_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/message.h"

namespace lhrs::chaos {

/// Sentinel for "window never closes" in message fault rules.
inline constexpr SimTime kAlways = std::numeric_limits<SimTime>::max();

/// The fault taxonomy of the chaos engine. Scheduled (structural) faults
/// use the first three kinds; message fault rules use the rest. The values
/// are stable because they appear verbatim in telemetry
/// (`faults_injected{kind=...}` counters and kFaultInjected trace events).
enum class FaultKind : uint8_t {
  kCrash = 0,   ///< Mark one node unavailable at a scheduled time.
  kRestore,     ///< Bring a crashed node back (and let it self-report).
  kCrashGroup,  ///< Crash k random live members of one bucket group —
                ///< the correlated-failure scenario LH*RS is built for.
  kDrop,        ///< Lose a matching message (sender sees an RPC timeout).
  kDuplicate,   ///< Deliver an extra copy (same message id).
  kDelay,       ///< Add fixed + jittered latency to a matching message.
  kReorder,     ///< Add random latency only: messages overtake each other.
  kSlowNode,    ///< Multiply delivery latency for messages touching a node.
};

const char* FaultKindName(FaultKind kind);

/// One structural fault at a scripted instant. Times are offsets from the
/// moment the plan is attached (ChaosEngine records the attach time), so a
/// plan built at t=0 replays identically when attached mid-run.
struct ScheduledFault {
  SimTime at = 0;
  FaultKind kind = FaultKind::kCrash;
  NodeId node = kInvalidNode;  ///< kCrash / kRestore target.
  uint32_t group = 0;          ///< kCrashGroup: which bucket group.
  uint32_t count = 1;          ///< kCrashGroup: how many members to crash.
};

/// One probabilistic message-fault rule. A rule fires when the message
/// matches every set predicate AND a Bernoulli(p) draw succeeds. Unset
/// predicates (kInvalidNode / full kind range / kAlways window) match
/// everything, so `{.kind = kDrop, .p = 0.05}` is "drop 5% of all
/// traffic".
struct MessageFaultRule {
  FaultKind kind = FaultKind::kDrop;
  double p = 1.0;

  /// Active window [window_begin, window_end), offsets from attach.
  SimTime window_begin = 0;
  SimTime window_end = kAlways;

  /// Message-kind range [kind_min, kind_max], matching MessageBody::kind().
  int kind_min = 0;
  int kind_max = std::numeric_limits<int>::max();

  NodeId from = kInvalidNode;       ///< Exact sender, or any.
  NodeId to = kInvalidNode;         ///< Exact destination, or any.
  NodeId involving = kInvalidNode;  ///< Sender OR destination, or any.

  SimTime delay_us = 0;    ///< kDelay: fixed extra latency.
  SimTime jitter_us = 0;   ///< kDelay / kReorder: uniform extra in [0, j].
  double factor = 1.0;     ///< kSlowNode: latency multiplier.

  /// Predicate part only (time window, kind range, endpoints) — the
  /// probability draw is the engine's job so rule evaluation order alone
  /// determines the random stream.
  bool Matches(const Message& msg, SimTime offset_now) const;
};

/// A scripted, seed-deterministic fault scenario: structural faults at
/// fixed instants plus probabilistic message-fault rules. Plans are plain
/// data — build one with the fluent helpers, hand it to
/// ChaosEngine / LhStarFile::AttachChaos, and the same (plan, seed) pair
/// replays the exact same faults event for event.
struct FaultPlan {
  uint64_t seed = 1;  ///< Drives every probabilistic decision.
  std::vector<ScheduledFault> schedule;
  std::vector<MessageFaultRule> rules;

  FaultPlan& CrashAt(SimTime at, NodeId node);
  FaultPlan& RestoreAt(SimTime at, NodeId node);
  /// Crash `count` random currently-live members of bucket `group`.
  FaultPlan& CrashGroupAt(SimTime at, uint32_t group, uint32_t count);

  FaultPlan& DropMessages(double p, SimTime begin = 0, SimTime end = kAlways);
  FaultPlan& DropKindRange(double p, int kind_min, int kind_max,
                           SimTime begin = 0, SimTime end = kAlways);
  FaultPlan& DuplicateMessages(double p, SimTime begin = 0,
                               SimTime end = kAlways);
  FaultPlan& DelayMessages(double p, SimTime delay_us, SimTime jitter_us,
                           SimTime begin = 0, SimTime end = kAlways);
  /// Pure jitter: a later message can overtake an earlier one.
  FaultPlan& ReorderMessages(double p, SimTime jitter_us, SimTime begin = 0,
                             SimTime end = kAlways);
  /// Every message to or from `node` takes `factor` times as long.
  FaultPlan& SlowNode(NodeId node, double factor, SimTime begin = 0,
                      SimTime end = kAlways);
  FaultPlan& AddRule(MessageFaultRule rule);

  /// Latest scheduled-fault offset (0 for a rules-only plan). Drivers play
  /// the script out with `RunUntil(attach_time + Horizon())`.
  SimTime Horizon() const;

  /// One line per scheduled fault and rule — for logging the scenario a
  /// drill or CI job is about to run.
  std::string Describe() const;
};

}  // namespace lhrs::chaos

#endif  // LHRS_CHAOS_FAULT_PLAN_H_
