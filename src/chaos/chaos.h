#ifndef LHRS_CHAOS_CHAOS_H_
#define LHRS_CHAOS_CHAOS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/rng.h"
#include "net/network.h"

namespace lhrs::chaos {

class ChaosControllerNode;

/// Executes a FaultPlan against a Network: a FaultInjector for the
/// message-fault rules plus a hidden controller node whose (non-wake)
/// timers fire the scheduled structural faults. Everything probabilistic
/// draws from one Rng seeded with plan.seed, and rules are evaluated in
/// plan order, so a run is a pure function of (workload, plan): the same
/// seed replays byte-identical telemetry.
///
/// Construction attaches immediately: the controller node is registered,
/// the schedule is armed relative to `net->now()`, and the network's
/// injector hook is pointed here. Destruction detaches the hook (the
/// controller node stays registered — networks never remove nodes — but
/// becomes inert). Enable telemetry *before* constructing the engine if
/// you want the `faults_injected{kind=...}` counters.
///
/// Parallel engine: OnMessage runs on the *sender's* locality thread, so
/// the engine keeps one independent RNG stream per locality. Stream 0 is
/// seeded with exactly `plan.seed` — in the single-threaded deterministic
/// engine every draw comes from stream 0, so replays stay byte-identical
/// with plans recorded before streams existed. Streams i > 0 are seeded
/// from (seed, i), making each locality's fault sequence deterministic in
/// isolation even though cross-locality interleaving is not.
///
/// Scheduled-fault timers do not wake the event loop: an idle file does
/// not fast-forward through its fault script. Drivers interleave workload
/// with `RunUntilIdle()` and finish with `net->RunUntil(engine.Horizon())`
/// to play out the tail of the schedule.
class ChaosEngine final : public FaultInjector {
 public:
  /// Maps a bucket group to its current member nodes (data + parity) for
  /// kCrashGroup; the engine picks the random victims. Supplied by the
  /// file facade, which knows the group layout.
  using GroupResolver = std::function<std::vector<NodeId>(uint32_t group)>;

  /// Invoked for kRestore instead of a bare SetAvailable(node, true), so
  /// the facade can trigger the node's self-announcement protocol. Must
  /// not pump the event loop (it runs inside event processing).
  using RestoreHook = std::function<void(NodeId node)>;

  ChaosEngine(Network* net, FaultPlan plan,
              GroupResolver group_resolver = nullptr,
              RestoreHook restore_hook = nullptr);
  ~ChaosEngine() override;

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// FaultInjector: evaluates the plan's message rules against `msg`.
  FaultActions OnMessage(const Message& msg, SimTime now) override;

  const FaultPlan& plan() const { return plan_; }

  /// Absolute sim time of the last scheduled fault (attach time + plan
  /// horizon) — pass to Network::RunUntil to drain the schedule.
  SimTime Horizon() const { return attach_time_ + plan_.Horizon(); }

  /// Faults actually injected so far, by kind and in total. These mirror
  /// the `faults_injected{kind=...}` telemetry counters but work with
  /// telemetry disabled.
  uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  uint64_t injected_total() const;

  NodeId controller() const { return controller_id_; }

 private:
  friend class ChaosControllerNode;

  /// Timer callback from the controller: schedule[index] is due.
  void FireScheduled(uint64_t index);

  void CrashGroup(const ScheduledFault& fault);

  /// Bumps the per-kind tally + telemetry counter and records a
  /// kFaultInjected trace event. Message-level kinds respect the
  /// trace_messages gate; structural kinds are always traced.
  void Count(FaultKind kind, NodeId node, NodeId peer, int msg_kind,
             int32_t group);

  /// The calling locality's RNG stream (see class comment). Structural
  /// faults always fire on the controller's home locality, i.e. stream 0.
  Rng& StreamRng();

  Network* net_;
  FaultPlan plan_;
  GroupResolver group_resolver_;
  RestoreHook restore_hook_;
  /// Per-locality deterministic streams; [0] is the classic engine's RNG.
  std::vector<Rng> rng_streams_;
  SimTime attach_time_ = 0;
  NodeId controller_id_ = kInvalidNode;
  ChaosControllerNode* controller_ = nullptr;

  std::array<std::atomic<uint64_t>, 8> injected_{};
  /// Cached telemetry counters per kind (null when telemetry was off at
  /// construction).
  std::array<telemetry::Counter*, 8> counters_{};
};

}  // namespace lhrs::chaos

#endif  // LHRS_CHAOS_CHAOS_H_
