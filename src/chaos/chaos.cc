#include "chaos/chaos.h"

#include <algorithm>
#include <utility>

#include "net/locality.h"

namespace lhrs::chaos {

/// Hidden node whose timers carry the fault schedule. It never exchanges
/// messages; it exists because structural faults must fire at scripted
/// simulated times, and timers are the simulator's only time source.
class ChaosControllerNode final : public Node {
 public:
  void HandleMessage(const Message& msg) override { (void)msg; }

  void HandleTimer(uint64_t timer_id) override {
    if (engine_ != nullptr) engine_->FireScheduled(timer_id);
  }

  const char* role() const override { return "chaos"; }

 private:
  friend class ChaosEngine;

  ChaosEngine* engine_ = nullptr;
};

ChaosEngine::ChaosEngine(Network* net, FaultPlan plan,
                         GroupResolver group_resolver,
                         RestoreHook restore_hook)
    : net_(net),
      plan_(std::move(plan)),
      group_resolver_(std::move(group_resolver)),
      restore_hook_(std::move(restore_hook)),
      attach_time_(net->now()) {
  // Stream 0 is seeded with exactly plan.seed so the single-threaded
  // engine (which only ever draws from stream 0) replays byte-identically.
  rng_streams_.emplace_back(plan_.seed);
  for (size_t i = 1; i <= net_->config().localities; ++i) {
    rng_streams_.emplace_back(plan_.seed ^
                              (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(i)));
  }
  auto controller = std::make_unique<ChaosControllerNode>();
  controller_ = controller.get();
  controller_->engine_ = this;
  controller_id_ = net_->AddNode(std::move(controller));
  for (size_t i = 0; i < plan_.schedule.size(); ++i) {
    net_->ScheduleTimer(controller_id_, plan_.schedule[i].at, i,
                        /*wake=*/false);
  }
  if (telemetry::Telemetry* t = net_->telemetry()) {
    for (size_t k = 0; k < counters_.size(); ++k) {
      counters_[k] = &t->metrics().GetCounter(
          telemetry::Labeled("chaos.faults_injected", "kind",
                             FaultKindName(static_cast<FaultKind>(k))));
    }
  }
  net_->SetFaultInjector(this);
}

ChaosEngine::~ChaosEngine() {
  controller_->engine_ = nullptr;  // Stale schedule timers become no-ops.
  net_->SetFaultInjector(nullptr);
}

uint64_t ChaosEngine::injected_total() const {
  uint64_t total = 0;
  for (const auto& n : injected_) total += n.load(std::memory_order_relaxed);
  return total;
}

Rng& ChaosEngine::StreamRng() {
  const size_t locality = CurrentLocality();
  return rng_streams_[std::min(locality, rng_streams_.size() - 1)];
}

FaultActions ChaosEngine::OnMessage(const Message& msg, SimTime now) {
  FaultActions actions;
  Rng& rng = StreamRng();  // The sending locality's deterministic stream.
  const SimTime offset = now - attach_time_;
  for (const MessageFaultRule& rule : plan_.rules) {
    if (!rule.Matches(msg, offset)) continue;
    switch (rule.kind) {
      case FaultKind::kDrop:
        if (rng.Flip(rule.p)) {
          actions.drop = true;
          Count(FaultKind::kDrop, msg.from, msg.to, msg.body->kind(), -1);
          return actions;  // The message is gone; later rules are moot.
        }
        break;
      case FaultKind::kDuplicate:
        if (rng.Flip(rule.p)) {
          ++actions.duplicates;
          Count(FaultKind::kDuplicate, msg.from, msg.to, msg.body->kind(),
                -1);
        }
        break;
      case FaultKind::kDelay:
        if (rng.Flip(rule.p)) {
          actions.extra_delay_us +=
              rule.delay_us +
              (rule.jitter_us > 0 ? rng.Uniform(rule.jitter_us + 1) : 0);
          Count(FaultKind::kDelay, msg.from, msg.to, msg.body->kind(), -1);
        }
        break;
      case FaultKind::kReorder:
        if (rng.Flip(rule.p)) {
          actions.extra_delay_us +=
              (rule.jitter_us > 0 ? rng.Uniform(rule.jitter_us + 1) : 0);
          Count(FaultKind::kReorder, msg.from, msg.to, msg.body->kind(), -1);
        }
        break;
      case FaultKind::kSlowNode:
        if (rng.Flip(rule.p)) {
          actions.latency_factor *= rule.factor;
          Count(FaultKind::kSlowNode, msg.from, msg.to, msg.body->kind(),
                -1);
        }
        break;
      default:
        break;  // Structural kinds are invalid as message rules.
    }
  }
  return actions;
}

void ChaosEngine::FireScheduled(uint64_t index) {
  if (index >= plan_.schedule.size()) return;
  const ScheduledFault& fault = plan_.schedule[index];
  switch (fault.kind) {
    case FaultKind::kCrash:
      if (fault.node != kInvalidNode && net_->available(fault.node)) {
        net_->SetAvailable(fault.node, false);
        Count(FaultKind::kCrash, fault.node, kInvalidNode, -1, -1);
      }
      break;
    case FaultKind::kRestore:
      if (fault.node != kInvalidNode && !net_->available(fault.node)) {
        if (restore_hook_) {
          restore_hook_(fault.node);
        } else {
          net_->SetAvailable(fault.node, true);
        }
        Count(FaultKind::kRestore, fault.node, kInvalidNode, -1, -1);
      }
      break;
    case FaultKind::kCrashGroup:
      CrashGroup(fault);
      break;
    default:
      break;  // Message kinds never appear in the schedule.
  }
}

void ChaosEngine::CrashGroup(const ScheduledFault& fault) {
  if (!group_resolver_) return;
  std::vector<NodeId> members = group_resolver_(fault.group);
  members.erase(std::remove_if(members.begin(), members.end(),
                               [&](NodeId n) { return !net_->available(n); }),
                members.end());
  const uint32_t count = std::min<uint32_t>(
      fault.count, static_cast<uint32_t>(members.size()));
  // Partial Fisher–Yates: the first `count` slots become the victims.
  for (uint32_t i = 0; i < count; ++i) {
    // Structural faults fire on the home locality, so this is stream 0 —
    // the same draws the single-threaded engine makes.
    const size_t j = i + rng_streams_[0].Uniform(members.size() - i);
    std::swap(members[i], members[j]);
    net_->SetAvailable(members[i], false);
  }
  if (count > 0) {
    Count(FaultKind::kCrashGroup, members[0], kInvalidNode, -1,
          static_cast<int32_t>(fault.group));
  }
}

void ChaosEngine::Count(FaultKind kind, NodeId node, NodeId peer,
                        int msg_kind, int32_t group) {
  injected_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
  if (counters_[static_cast<size_t>(kind)] != nullptr) {
    counters_[static_cast<size_t>(kind)]->Add();
  }
  telemetry::Telemetry* t = net_->telemetry();
  if (t == nullptr) return;
  const bool structural = kind == FaultKind::kCrash ||
                          kind == FaultKind::kRestore ||
                          kind == FaultKind::kCrashGroup;
  if (!structural && !t->trace_messages()) return;
  t->tracer().Record({net_->now(), telemetry::TraceEventType::kFaultInjected,
                      node, peer, msg_kind, group,
                      static_cast<int64_t>(kind)});
}

}  // namespace lhrs::chaos
