#include "chaos/fault_plan.h"

#include <algorithm>

namespace lhrs::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestore:
      return "restore";
    case FaultKind::kCrashGroup:
      return "crash_group";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kSlowNode:
      return "slow_node";
  }
  return "unknown";
}

bool MessageFaultRule::Matches(const Message& msg, SimTime offset_now) const {
  if (offset_now < window_begin || offset_now >= window_end) return false;
  const int kind_value = msg.body->kind();
  if (kind_value < kind_min || kind_value > kind_max) return false;
  if (from != kInvalidNode && msg.from != from) return false;
  if (to != kInvalidNode && msg.to != to) return false;
  if (involving != kInvalidNode && msg.from != involving &&
      msg.to != involving) {
    return false;
  }
  return true;
}

FaultPlan& FaultPlan::CrashAt(SimTime at, NodeId node) {
  schedule.push_back({at, FaultKind::kCrash, node, 0, 1});
  return *this;
}

FaultPlan& FaultPlan::RestoreAt(SimTime at, NodeId node) {
  schedule.push_back({at, FaultKind::kRestore, node, 0, 1});
  return *this;
}

FaultPlan& FaultPlan::CrashGroupAt(SimTime at, uint32_t group,
                                   uint32_t count) {
  schedule.push_back({at, FaultKind::kCrashGroup, kInvalidNode, group, count});
  return *this;
}

FaultPlan& FaultPlan::DropMessages(double p, SimTime begin, SimTime end) {
  MessageFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.p = p;
  rule.window_begin = begin;
  rule.window_end = end;
  return AddRule(rule);
}

FaultPlan& FaultPlan::DropKindRange(double p, int kind_min, int kind_max,
                                    SimTime begin, SimTime end) {
  MessageFaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.p = p;
  rule.kind_min = kind_min;
  rule.kind_max = kind_max;
  rule.window_begin = begin;
  rule.window_end = end;
  return AddRule(rule);
}

FaultPlan& FaultPlan::DuplicateMessages(double p, SimTime begin,
                                        SimTime end) {
  MessageFaultRule rule;
  rule.kind = FaultKind::kDuplicate;
  rule.p = p;
  rule.window_begin = begin;
  rule.window_end = end;
  return AddRule(rule);
}

FaultPlan& FaultPlan::DelayMessages(double p, SimTime delay_us,
                                    SimTime jitter_us, SimTime begin,
                                    SimTime end) {
  MessageFaultRule rule;
  rule.kind = FaultKind::kDelay;
  rule.p = p;
  rule.delay_us = delay_us;
  rule.jitter_us = jitter_us;
  rule.window_begin = begin;
  rule.window_end = end;
  return AddRule(rule);
}

FaultPlan& FaultPlan::ReorderMessages(double p, SimTime jitter_us,
                                      SimTime begin, SimTime end) {
  MessageFaultRule rule;
  rule.kind = FaultKind::kReorder;
  rule.p = p;
  rule.jitter_us = jitter_us;
  rule.window_begin = begin;
  rule.window_end = end;
  return AddRule(rule);
}

FaultPlan& FaultPlan::SlowNode(NodeId node, double factor, SimTime begin,
                               SimTime end) {
  MessageFaultRule rule;
  rule.kind = FaultKind::kSlowNode;
  rule.p = 1.0;
  rule.involving = node;
  rule.factor = factor;
  rule.window_begin = begin;
  rule.window_end = end;
  return AddRule(rule);
}

FaultPlan& FaultPlan::AddRule(MessageFaultRule rule) {
  rules.push_back(rule);
  return *this;
}

SimTime FaultPlan::Horizon() const {
  SimTime horizon = 0;
  for (const ScheduledFault& fault : schedule) {
    horizon = std::max(horizon, fault.at);
  }
  return horizon;
}

std::string FaultPlan::Describe() const {
  std::string out = "FaultPlan seed=" + std::to_string(seed) + "\n";
  for (const ScheduledFault& fault : schedule) {
    out += "  @" + std::to_string(fault.at) + "us " +
           FaultKindName(fault.kind);
    if (fault.kind == FaultKind::kCrashGroup) {
      out += " group=" + std::to_string(fault.group) +
             " count=" + std::to_string(fault.count);
    } else {
      out += " node=" + std::to_string(fault.node);
    }
    out += "\n";
  }
  for (const MessageFaultRule& rule : rules) {
    out += "  rule " + std::string(FaultKindName(rule.kind)) +
           " p=" + std::to_string(rule.p);
    if (rule.kind_min != 0 ||
        rule.kind_max != std::numeric_limits<int>::max()) {
      out += " kinds=[" + std::to_string(rule.kind_min) + "," +
             std::to_string(rule.kind_max) + "]";
    }
    if (rule.from != kInvalidNode) out += " from=" + std::to_string(rule.from);
    if (rule.to != kInvalidNode) out += " to=" + std::to_string(rule.to);
    if (rule.involving != kInvalidNode) {
      out += " involving=" + std::to_string(rule.involving);
    }
    if (rule.delay_us != 0) out += " delay=" + std::to_string(rule.delay_us);
    if (rule.jitter_us != 0) {
      out += " jitter=" + std::to_string(rule.jitter_us);
    }
    if (rule.factor != 1.0) out += " factor=" + std::to_string(rule.factor);
    if (rule.window_begin != 0 || rule.window_end != kAlways) {
      out += " window=[" + std::to_string(rule.window_begin) + "," +
             (rule.window_end == kAlways ? std::string("inf")
                                         : std::to_string(rule.window_end)) +
             ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace lhrs::chaos
