#ifndef LHRS_LHSTAR_DATA_BUCKET_H_
#define LHRS_LHSTAR_DATA_BUCKET_H_

#include <map>
#include <memory>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "lh/lh_math.h"
#include "lhstar/messages.h"
#include "lhstar/system.h"
#include "net/dedup.h"
#include "net/node.h"
#include "store/bucket_store.h"

namespace lhrs {

namespace telemetry {
class Counter;
class Histogram;
}  // namespace telemetry

/// A server carrying one LH* data bucket.
///
/// Implements the server side of the LH* protocol: address verification and
/// at-most-two-hop forwarding (A2), IAM issuance on forwarded requests,
/// overflow reporting, the splitting protocol, scan coverage forwarding, and
/// the displaced-bucket checks of paper section 2.8.
///
/// The high-availability layers subclass this and hook the `On*Committed` /
/// `OnRecordsMoved*` notification points to maintain parity; the base class
/// is a complete, availability-free LH* server.
class DataBucketNode : public Node {
 public:
  /// `pre_initialized` is true for the file's initial buckets and false for
  /// split targets, which buffer client traffic until the record move
  /// arrives.
  DataBucketNode(std::shared_ptr<SystemContext> ctx, BucketNo bucket_no,
                 Level level, bool pre_initialized);

  void HandleMessage(const Message& msg) override;
  void HandleDeliveryFailure(const Message& msg) override;
  const char* role() const override { return "data-bucket"; }

  BucketNo bucket_no() const { return bucket_no_; }
  Level level() const { return level_; }
  size_t record_count() const { return records_.size(); }
  bool decommissioned() const { return decommissioned_; }

  /// Local inspection for tests / storage statistics (not a protocol path).
  const store::BucketStore& records() const { return records_; }

  /// Approximate local storage in bytes (records + per-record overhead).
  size_t StorageBytes() const;

  /// Models self-detected restart after a transient outage (section
  /// 2.5.4): asks the coordinator whether this node still carries its
  /// bucket; stands down as a spare if it was recovered elsewhere.
  void SelfCheck();

 protected:
  // --- Hooks for availability layers -------------------------------------

  /// A new record was stored (insert path). Views share the stored bytes.
  virtual void OnInsertCommitted(Key key, const BufferView& value);
  /// An existing record's value changed (update path).
  virtual void OnUpdateCommitted(Key key, const BufferView& old_value,
                                 const BufferView& new_value);
  /// A record was removed (delete path).
  virtual void OnDeleteCommitted(Key key, const BufferView& old_value);
  /// Records are about to leave this bucket because of a split. The
  /// vector is mutable so layers can attach per-record tags that must
  /// travel with the move.
  virtual void OnRecordsMovedOut(std::vector<WireRecord>& moved);
  /// Records arrived from a splitting bucket.
  virtual void OnRecordsMovedIn(const std::vector<WireRecord>& moved);
  /// This node was told it no longer carries its bucket (becomes a spare).
  virtual void OnDecommissioned();

  /// Brackets the commit loop of one insert batch. Between the two calls
  /// every OnInsertCommitted belongs to the same client sub-batch, so an
  /// availability layer can group-commit its side effects (LH*RS coalesces
  /// the per-record parity deltas into one batch message per parity
  /// bucket). Base: no-op.
  virtual void OnBatchCommitBegin();
  virtual void OnBatchCommitEnd();

  /// The bucket just became initialized (split handover completed or
  /// recovered state installed); subclasses flush their own deferred
  /// traffic here.
  virtual void OnActivated();

  /// Allows subclasses to extend the message vocabulary; called for any
  /// kind the base class does not recognise.
  virtual void HandleSubclassMessage(const Message& msg);
  /// Same for delivery failures of subclass-sent messages.
  virtual void HandleSubclassDeliveryFailure(const Message& msg);

  SystemContext& ctx() { return *ctx_; }
  const SystemContext& ctx() const { return *ctx_; }

  /// Directly installs state (recovery path; bypasses the insert hooks)
  /// and replays any traffic queued while uninitialized.
  void InstallRecoveredState(store::BucketStore records, Level level);

  /// Replays ops and scans buffered while this bucket was uninitialized.
  void FlushQueuedTraffic();

  /// Reports to the coordinator when this bucket exceeds its capacity
  /// (also used by subclasses that insert through non-OpRequest paths).
  void ReportOverflowIfNeeded();

  /// Record storage: payloads packed in arena segments, handles O(1),
  /// iteration in ascending key order (deterministic split movement).
  store::BucketStore records_;

 private:
  /// Restructuring messages (split orders, record moves/merges) are not
  /// idempotent; duplicated deliveries under fault injection are dropped
  /// by message id here.
  DuplicateFilter dedup_;

  void HandleOpRequest(const Message& msg);
  void ExecuteLocalOp(const OpRequestMsg& req);
  void HandleInsertBatch(const InsertBatchMsg& batch);
  /// Records bucket.queue_depth{bucket=N} / bucket.ops{bucket=N} for one
  /// executed op (deterministic engine only; see the .cc).
  void RecordOpTelemetry();
  void HandleSplitOrder(const SplitOrderMsg& order);
  void HandleMoveRecords(const MoveRecordsMsg& move);
  void HandleMergeOut(const MergeOutMsg& order);
  void HandleMergeRecords(const MergeRecordsMsg& merge);
  void HandleScanRequest(const ScanRequestMsg& scan);
  void ReplyToClient(const OpRequestMsg& req, StatusCode code,
                     std::string error, BufferView value);
  /// Hands an op the server cannot place to the coordinator (displaced
  /// bucket / spare, section 2.8).
  void BounceToCoordinator(const OpRequestMsg& req);

  std::shared_ptr<SystemContext> ctx_;
  BucketNo bucket_no_;
  Level level_;
  bool initialized_;
  bool decommissioned_ = false;
  std::vector<std::unique_ptr<OpRequestMsg>> queued_ops_;  // Pre-init ops.
  std::vector<std::unique_ptr<ScanRequestMsg>> queued_scans_;
  std::vector<std::unique_ptr<InsertBatchMsg>> queued_batches_;
  /// Bounded resends of batch replies lost on a lossy/chaotic network,
  /// keyed by sub-batch seq (the client dedups by seq).
  std::map<uint64_t, uint32_t> batch_reply_resends_;
  /// Cached telemetry handles for the per-bucket skew/queue-depth series.
  telemetry::Counter* ops_counter_ = nullptr;
  telemetry::Histogram* queue_depth_histogram_ = nullptr;
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_DATA_BUCKET_H_
