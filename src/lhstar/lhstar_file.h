#ifndef LHRS_LHSTAR_LHSTAR_FILE_H_
#define LHRS_LHSTAR_LHSTAR_FILE_H_

#include <map>
#include <memory>
#include <vector>

#include "chaos/chaos.h"
#include "common/bytes.h"
#include "common/result.h"
#include "lhstar/client.h"
#include "lhstar/coordinator.h"
#include "lhstar/data_bucket.h"
#include "lhstar/system.h"
#include "net/network.h"
#include "sdds/facade.h"

namespace lhrs {

/// A plain LH* file on a simulated multicomputer: the substrate and the
/// zero-availability comparison point of every experiment.
///
/// Owns the network, coordinator, server and client nodes. Implements the
/// scheme-agnostic SddsFile facade: the inherited synchronous calls run
/// each operation to quiescence; Submit/Poll/Take expose the asynchronous
/// protocol directly for pipelined drivers. A session maps 1:1 onto an
/// autonomous ClientNode.
class LhStarFile : public sdds::SddsFile {
 public:
  struct Options {
    FileConfig file;
    NetworkConfig net;
  };

  explicit LhStarFile(Options options);

  Result<std::vector<WireRecord>> Scan(ScanPredicate predicate = {},
                                       bool deterministic = true) override;

  // --- SddsFile async interface -------------------------------------------
  size_t AddSession() override { return AddClient(); }
  size_t session_count() const override { return clients_.size(); }
  sdds::OpToken Submit(size_t session, OpType op, Key key,
                       Bytes value) override;
  bool Poll(sdds::OpToken token) const override;
  Result<OpOutcome> Take(sdds::OpToken token) override;

  /// Submits one bulk-load batch on `session` (see
  /// ClientNode::StartInsertBatch): the records travel as one message per
  /// target bucket and the availability layers group-commit their parity
  /// deltas per sub-batch. Completes like any other token; the outcome's
  /// batch_* fields carry the per-record tallies. `records` must be
  /// non-empty.
  sdds::OpToken SubmitBatch(size_t session, std::vector<WireRecord> records);

  // --- Multi-client access ------------------------------------------------
  /// Adds another autonomous client; returns its index.
  size_t AddClient();
  ClientNode& client(size_t index = 0);
  size_t client_count() const { return clients_.size(); }

  Status InsertVia(size_t client_index, Key key, Bytes value);
  Result<Bytes> SearchVia(size_t client_index, Key key);

  // --- Introspection ------------------------------------------------------
  Network& network() override { return *network_; }
  const Network& network() const { return *network_; }
  CoordinatorNode& coordinator() { return *coordinator_; }
  SystemContext& context() { return *ctx_; }
  BucketNo bucket_count() const { return coordinator_->state().bucket_count(); }
  DataBucketNode* bucket(BucketNo b) const;

  StorageStats GetStorageStats() const override;

  // --- Chaos / fault injection --------------------------------------------
  /// Arms a scripted fault scenario against this file's network: message
  /// faults apply from now on, scheduled faults fire at their offsets from
  /// now. Replaces any previously attached engine. The file stays attached
  /// until DetachChaos (faults keep applying across operations).
  chaos::ChaosEngine& AttachChaos(chaos::FaultPlan plan);
  void DetachChaos();
  bool chaos_attached() const { return chaos_ != nullptr; }
  chaos::ChaosEngine* chaos() { return chaos_.get(); }

  /// Runs the simulation until the attached plan's last scheduled fault
  /// has fired and the system is idle again (workload-independent tail of
  /// a drill: restores, late recoveries).
  void PlayOutChaos();

 protected:
  /// Chaos hooks a subclass can specialise: how to map a bucket group to
  /// node ids (plain LH* has no parity groups — no resolver) and how to
  /// restore a crashed node (default: mark available + self-check so a
  /// replaced bucket stands down).
  virtual chaos::ChaosEngine::GroupResolver ChaosGroupResolver() {
    return nullptr;
  }
  virtual chaos::ChaosEngine::RestoreHook ChaosRestoreHook();

  /// Subclass constructor hook: builds the network/context but defers node
  /// creation to the subclass (which installs its own coordinator and
  /// factory).
  struct DeferInit {};
  LhStarFile(Options options, DeferInit);

  /// Every data-bucket creation point (initial buckets, split factories —
  /// base and subclass alike) registers the typed pointer here, replacing
  /// per-call dynamic_cast lookups on hot paths.
  void RegisterDataBucket(NodeId id, DataBucketNode* node) {
    data_nodes_.Register(id, node);
  }
  /// The registered data bucket at `id`, or nullptr for other roles.
  DataBucketNode* data_node(NodeId id) const { return data_nodes_.Find(id); }

  Options options_;
  /// exec::MakeNetwork — the classic deterministic engine when
  /// options_.net.localities == 0, the locality-sharded ParallelNetwork
  /// otherwise. Facade code is engine-agnostic.
  std::unique_ptr<Network> network_;
  std::shared_ptr<SystemContext> ctx_;
  CoordinatorNode* coordinator_ = nullptr;  // Owned by network_.
  std::vector<ClientNode*> clients_;        // Owned by network_.
  /// Declared after network_ so it detaches before the network dies.
  std::unique_ptr<chaos::ChaosEngine> chaos_;

 private:
  /// ClientNode completion callback: resolves the client op back to its
  /// facade token (ops started outside Submit — scans, direct client use —
  /// have none and are ignored) and notifies the listener.
  void OnClientOpComplete(size_t session, uint64_t op_id);

  struct TokenEntry {
    size_t session = 0;
    uint64_t op_id = 0;
  };
  std::map<sdds::OpToken, TokenEntry> tokens_;
  /// Per session: client op id -> token (reverse index for the callback).
  std::vector<std::map<uint64_t, sdds::OpToken>> op_tokens_;

  sdds::NodeIndex<DataBucketNode> data_nodes_;
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_LHSTAR_FILE_H_
