#ifndef LHRS_LHSTAR_LHSTAR_FILE_H_
#define LHRS_LHSTAR_LHSTAR_FILE_H_

#include <memory>
#include <vector>

#include "chaos/chaos.h"
#include "common/bytes.h"
#include "common/result.h"
#include "lhstar/client.h"
#include "lhstar/coordinator.h"
#include "lhstar/data_bucket.h"
#include "lhstar/system.h"
#include "net/network.h"

namespace lhrs {

/// Aggregate storage statistics of a simulated file.
struct StorageStats {
  size_t record_count = 0;
  size_t data_bytes = 0;        ///< Primary record payloads incl. keys.
  size_t parity_bytes = 0;      ///< Availability overhead (0 for plain LH*).
  size_t data_buckets = 0;
  size_t parity_buckets = 0;
  double load_factor = 0.0;     ///< records / (buckets * capacity).

  /// parity_bytes / data_bytes — the paper's storage-overhead metric.
  double ParityOverhead() const {
    return data_bytes == 0 ? 0.0
                           : static_cast<double>(parity_bytes) / data_bytes;
  }
};

/// A plain LH* file on a simulated multicomputer: the substrate and the
/// zero-availability comparison point of every experiment.
///
/// Owns the network, coordinator, server and client nodes. The public calls
/// are synchronous: each starts the asynchronous protocol and runs the
/// simulation until it settles.
class LhStarFile {
 public:
  struct Options {
    FileConfig file;
    NetworkConfig net;
  };

  explicit LhStarFile(Options options);
  virtual ~LhStarFile() = default;
  LhStarFile(const LhStarFile&) = delete;
  LhStarFile& operator=(const LhStarFile&) = delete;

  // --- Client operations (via the default client 0) ----------------------
  Status Insert(Key key, Bytes value);
  Result<Bytes> Search(Key key);
  Status Update(Key key, Bytes value);
  Status Delete(Key key);
  Result<std::vector<WireRecord>> Scan(ScanPredicate predicate = {},
                                       bool deterministic = true);

  // --- Multi-client access ------------------------------------------------
  /// Adds another autonomous client; returns its index.
  size_t AddClient();
  ClientNode& client(size_t index = 0);
  size_t client_count() const { return clients_.size(); }

  Status InsertVia(size_t client_index, Key key, Bytes value);
  Result<Bytes> SearchVia(size_t client_index, Key key);

  // --- Introspection ------------------------------------------------------
  Network& network() { return network_; }
  const Network& network() const { return network_; }
  CoordinatorNode& coordinator() { return *coordinator_; }
  SystemContext& context() { return *ctx_; }
  BucketNo bucket_count() const { return coordinator_->state().bucket_count(); }
  DataBucketNode* bucket(BucketNo b) const;

  virtual StorageStats GetStorageStats() const;

  // --- Chaos / fault injection --------------------------------------------
  /// Arms a scripted fault scenario against this file's network: message
  /// faults apply from now on, scheduled faults fire at their offsets from
  /// now. Replaces any previously attached engine. The file stays attached
  /// until DetachChaos (faults keep applying across operations).
  chaos::ChaosEngine& AttachChaos(chaos::FaultPlan plan);
  void DetachChaos();
  bool chaos_attached() const { return chaos_ != nullptr; }
  chaos::ChaosEngine* chaos() { return chaos_.get(); }

  /// Runs the simulation until the attached plan's last scheduled fault
  /// has fired and the system is idle again (workload-independent tail of
  /// a drill: restores, late recoveries).
  void PlayOutChaos();

 protected:
  /// Chaos hooks a subclass can specialise: how to map a bucket group to
  /// node ids (plain LH* has no parity groups — no resolver) and how to
  /// restore a crashed node (default: mark available + self-check so a
  /// replaced bucket stands down).
  virtual chaos::ChaosEngine::GroupResolver ChaosGroupResolver() {
    return nullptr;
  }
  virtual chaos::ChaosEngine::RestoreHook ChaosRestoreHook();

  /// Subclass constructor hook: builds the network/context but defers node
  /// creation to the subclass (which installs its own coordinator and
  /// factory).
  struct DeferInit {};
  LhStarFile(Options options, DeferInit);

  Result<OpOutcome> RunOp(size_t client_index, OpType op, Key key,
                          Bytes value);

  Options options_;
  Network network_;
  std::shared_ptr<SystemContext> ctx_;
  CoordinatorNode* coordinator_ = nullptr;  // Owned by network_.
  std::vector<ClientNode*> clients_;        // Owned by network_.
  /// Declared after network_ so it detaches before the network dies.
  std::unique_ptr<chaos::ChaosEngine> chaos_;
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_LHSTAR_FILE_H_
