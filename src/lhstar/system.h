#ifndef LHRS_LHSTAR_SYSTEM_H_
#define LHRS_LHSTAR_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "lh/lh_math.h"
#include "net/message.h"

namespace lhrs {

/// Static parameters of one LH* file.
struct FileConfig {
  uint32_t initial_buckets = 1;  ///< The paper's N.
  size_t bucket_capacity = 50;   ///< The paper's b (records per bucket).

  /// Load control: when false, every overflow report triggers a split
  /// (plain LH*, ~70% load factor). When true, the coordinator splits only
  /// while the global load factor exceeds `split_load_threshold` (~up to
  /// 85% load factor per the paper).
  bool use_load_control = false;
  double split_load_threshold = 0.8;

  /// Collapses repeat overflow reports from the same bucket into one
  /// queued split (re-armed when a split completes). In the simulator a
  /// split lands within a few events of the report, so this barely
  /// matters; over a real transport dozens of reports from one overflowing
  /// bucket arrive before the first split finishes, and without damping
  /// each would queue another split — cluster mode turns this on.
  bool dedup_overflow_reports = false;

  /// File shrinking by bucket merge (paper section 4.3): when enabled,
  /// deletions that leave the file's load factor below
  /// `merge_load_threshold` merge the last bucket back into its parent.
  bool enable_merge = false;
  double merge_load_threshold = 0.4;
};

/// Maps logical bucket numbers to the nodes currently carrying them — the
/// paper's (dynamic) allocation tables "at the clients and the servers".
///
/// Simulation note: we model one authoritative table, updated by the
/// coordinator at splits and recoveries. Clients additionally keep private
/// *cached* copies (see ClientNode) so the displaced-bucket protocol of
/// section 2.8 — a client contacting the pre-recovery server — still
/// happens. Server-side forward-address resolution reads the authoritative
/// table directly; in a real deployment servers learn child addresses from
/// the coordinator at split time, and that lookup is local there exactly as
/// it is here, so no counted message traffic is hidden by this shortcut.
///
/// Concurrency: the coordinator (home locality) writes at splits and
/// recoveries while server nodes on other localities of the parallel
/// engine resolve forward addresses, so every accessor is mutex-guarded.
/// The version counter is additionally atomic so cluster mode's broadcast
/// check can poll it without the lock.
class AllocationTable {
 public:
  void Set(BucketNo bucket, NodeId node) {
    std::lock_guard<std::mutex> lock(mu_);
    if (bucket >= table_.size()) table_.resize(bucket + 1, kInvalidNode);
    table_[bucket] = node;
    version_.fetch_add(1, std::memory_order_release);
  }

  NodeId Lookup(BucketNo bucket) const {
    std::lock_guard<std::mutex> lock(mu_);
    LHRS_CHECK_LT(bucket, table_.size()) << "unknown bucket";
    return table_[bucket];
  }

  bool Knows(BucketNo bucket) const {
    std::lock_guard<std::mutex> lock(mu_);
    return bucket < table_.size() && table_[bucket] != kInvalidNode;
  }

  /// Forgets every mapping (coordinator soft-state loss simulation).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    table_.clear();
    version_.fetch_add(1, std::memory_order_release);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

  /// Monotone change counter. Cluster mode broadcasts a fresh snapshot of
  /// the coordinator's authoritative table whenever the version moves, so
  /// worker/client replicas converge without per-entry messages.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Snapshot of the bucket -> node vector (for the wire).
  std::vector<NodeId> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_;
  }

  /// Replaces the whole table with a received snapshot.
  void Restore(std::vector<NodeId> entries, uint64_t version) {
    std::lock_guard<std::mutex> lock(mu_);
    table_ = std::move(entries);
    version_.store(version, std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  std::vector<NodeId> table_;
  std::atomic<uint64_t> version_{0};
};

/// Shared wiring of one LH* file instance, handed to every node of that
/// file. Holds only location metadata, never record data.
struct SystemContext {
  FileConfig config;
  AllocationTable allocation;     ///< Authoritative bucket -> node map.
  NodeId coordinator = kInvalidNode;

  /// Record count maintained by the buckets (insert/delete), read by the
  /// coordinator's load-control policy. Models the load statistics real
  /// LH* piggybacks on existing traffic; no extra messages are charged.
  /// Atomic because buckets on different localities of the parallel engine
  /// bump it concurrently.
  std::atomic<uint64_t> total_records{0};
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_SYSTEM_H_
