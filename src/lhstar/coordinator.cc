#include "lhstar/coordinator.h"

#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs {

CoordinatorNode::CoordinatorNode(std::shared_ptr<SystemContext> ctx)
    : ctx_(std::move(ctx)) {
  state_.initial_buckets = ctx_->config.initial_buckets;
}

void CoordinatorNode::HandleMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kOverflowReport: {
      const auto& report = static_cast<const OverflowReportMsg&>(*msg.body);
      if (ctx_->config.use_load_control) {
        const double capacity_total =
            static_cast<double>(ctx_->config.bucket_capacity) *
            state_.bucket_count();
        const double load = static_cast<double>(ctx_->total_records) /
                            capacity_total;
        if (load <= ctx_->config.split_load_threshold) return;
      }
      if (ctx_->config.dedup_overflow_reports &&
          !overflow_reported_.insert(report.bucket).second) {
        return;  // This bucket already has a split queued for it.
      }
      ++pending_splits_;
      MaybeStartSplit();
      return;
    }
    case LhStarMsg::kSplitDone: {
      restructure_in_progress_ = false;
      // Still-overflowing buckets re-report on their next insert.
      overflow_reported_.clear();
      if (auto* t = net()->telemetry()) {
        t->metrics().GetCounter("split.completed").Add();
        t->metrics()
            .GetHistogram("split_latency_us")
            .Record(net()->now() - split_started_us_);
        t->tracer().Record({net()->now(),
                            telemetry::TraceEventType::kSplitEnd, id(), -1,
                            -1, -1, 0});
      }
      MaybeStartSplit();
      MaybeStartMerge();
      return;
    }
    case LhStarMsg::kMergeDone: {
      restructure_in_progress_ = false;
      MaybeStartSplit();
      MaybeStartMerge();
      return;
    }
    case LhStarMsg::kUnderflowReport: {
      if (!ctx_->config.enable_merge) return;
      merge_requested_ = true;
      MaybeStartMerge();
      return;
    }
    case LhStarMsg::kMoveRecords:
      OnOrphanedMoveRecords(static_cast<const MoveRecordsMsg&>(*msg.body));
      return;
    case LhStarMsg::kMergeRecords:
      OnOrphanedMergeRecords(
          static_cast<const MergeRecordsMsg&>(*msg.body));
      return;
    case LhStarMsg::kClientOpViaCoordinator: {
      HandleClientOpFallback(
          static_cast<const ClientOpViaCoordinatorMsg&>(*msg.body));
      return;
    }
    case LhStarMsg::kUnavailableReport: {
      HandleUnavailableReport(
          static_cast<const UnavailableReportMsg&>(*msg.body));
      return;
    }
    case LhStarMsg::kSelfCheckRequest: {
      const auto& req = static_cast<const SelfCheckRequestMsg&>(*msg.body);
      auto reply = std::make_unique<SelfCheckReplyMsg>();
      reply->bucket = req.bucket;
      const bool known = ctx_->allocation.Knows(req.bucket);
      reply->still_owner =
          known && ctx_->allocation.Lookup(req.bucket) == msg.from;
      reply->replacement = known ? ctx_->allocation.Lookup(req.bucket)
                                 : kInvalidNode;
      Send(msg.from, std::move(reply));
      return;
    }
    default:
      HandleSubclassMessage(msg);
      return;
  }
}

void CoordinatorNode::HandleSubclassMessage(const Message& msg) {
  LHRS_LOG(Fatal) << "coordinator: unhandled message kind "
                  << msg.body->kind();
}

void CoordinatorNode::HandleSubclassDeliveryFailure(const Message& msg) {
  (void)msg;
}

void CoordinatorNode::MaybeStartSplit() {
  while (!restructure_in_progress_ && pending_splits_ > 0 && CanSplitNow()) {
    --pending_splits_;
    StartSplit();
  }
}

void CoordinatorNode::MaybeStartMerge() {
  if (!merge_requested_ || restructure_in_progress_ || !CanSplitNow()) {
    return;
  }
  merge_requested_ = false;
  // Merge only while the file is above its initial size and under-loaded.
  if (state_.bucket_count() <= ctx_->config.initial_buckets) return;
  const double capacity_total =
      static_cast<double>(ctx_->config.bucket_capacity) *
      (state_.bucket_count() - 1);
  const double load =
      static_cast<double>(ctx_->total_records) / capacity_total;
  if (load >= ctx_->config.merge_load_threshold) return;

  // Reverse the last split: state (i, n) steps back, the last bucket
  // returns into its parent (the new split-pointer position).
  if (state_.n > 0) {
    --state_.n;
  } else {
    --state_.i;
    state_.n = (BucketNo{ctx_->config.initial_buckets} << state_.i) - 1;
  }
  const BucketNo parent = state_.n;
  const BucketNo removed = state_.bucket_count();  // Old M - 1.
  const Level parent_new_level = state_.BucketLevel(parent);

  auto order = std::make_unique<MergeOutMsg>();
  order->parent_bucket = parent;
  order->parent_node = ctx_->allocation.Lookup(parent);
  order->parent_new_level = parent_new_level;
  Send(ctx_->allocation.Lookup(removed), std::move(order));

  restructure_in_progress_ = true;
  ++merges_performed_;
  // Keep shrinking while under-loaded: re-evaluate after MergeDone.
  merge_requested_ = true;
}

NodeId CoordinatorNode::CreateBucketNode(BucketNo bucket, Level level) {
  LHRS_CHECK(bucket_factory_) << "coordinator has no bucket factory";
  return bucket_factory_(bucket, level);
}

void CoordinatorNode::StartSplit() {
  const BucketNo victim = state_.n;
  const Level new_level = state_.i + 1;
  const BucketNo new_bucket = state_.AdvanceSplit();

  const NodeId new_node = CreateBucketNode(new_bucket, new_level);
  ctx_->allocation.Set(new_bucket, new_node);
  OnBucketCreated(new_bucket, new_node, new_level);

  LHRS_LOG(Debug) << role() << ": split bucket " << victim << " -> "
                  << new_bucket << " (level " << new_level << ")";
  auto order = std::make_unique<SplitOrderMsg>();
  order->new_bucket = new_bucket;
  order->new_node = new_node;
  order->new_level = new_level;
  Send(ctx_->allocation.Lookup(victim), std::move(order));

  restructure_in_progress_ = true;
  ++splits_performed_;
  if (auto* t = net()->telemetry()) {
    t->metrics().GetCounter("split.started").Add();
    split_started_us_ = net()->now();
    t->tracer().Record({net()->now(), telemetry::TraceEventType::kSplitBegin,
                        id(), new_node, -1, -1,
                        static_cast<int64_t>(new_bucket)});
  }
}

void CoordinatorNode::OnBucketCreated(BucketNo, NodeId, Level) {}

void CoordinatorNode::DeliverViaState(const ClientOpViaCoordinatorMsg& op) {
  const BucketNo a = state_.Address(op.key);
  auto req = std::make_unique<OpRequestMsg>();
  req->op = op.op;
  req->op_id = op.op_id;
  req->client = op.client;
  req->intended_bucket = a;
  req->key = op.key;
  req->value = op.value;
  req->hops = 1;  // Forces an IAM so the client's image and cache converge.
  Send(ctx_->allocation.Lookup(a), std::move(req));
}

void CoordinatorNode::FailClientOp(const ClientOpViaCoordinatorMsg& op,
                                   StatusCode code, std::string error) {
  auto reply = std::make_unique<OpReplyMsg>();
  reply->op_id = op.op_id;
  reply->code = code;
  reply->error = std::move(error);
  Send(op.client, std::move(reply));
}

void CoordinatorNode::HandleClientOpFallback(
    const ClientOpViaCoordinatorMsg& op) {
  MaybeResetClientImage(op);
  DeliverViaState(op);
}

void CoordinatorNode::MaybeResetClientImage(
    const ClientOpViaCoordinatorMsg& op) {
  // After a merge, a client image can be AHEAD of the file; IAMs only
  // advance images, so send the authoritative state explicitly.
  if (op.intended_bucket < state_.bucket_count()) return;
  auto reset = std::make_unique<ImageResetMsg>();
  reset->i = state_.i;
  reset->n = state_.n;
  Send(op.client, std::move(reset));
}

void CoordinatorNode::HandleUnavailableReport(const UnavailableReportMsg&) {
  // Plain LH* has no recovery machinery; reports are informational.
}

void CoordinatorNode::OnOpDeliveryFailure(const OpRequestMsg& req) {
  ClientOpViaCoordinatorMsg op;
  op.op = req.op;
  op.op_id = req.op_id;
  op.client = req.client;
  op.intended_bucket = req.intended_bucket;
  op.key = req.key;
  op.value = req.value;
  FailClientOp(op, StatusCode::kUnavailable,
               "bucket unavailable and file has no availability layer");
}

void CoordinatorNode::OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                                  NodeId victim_node) {
  (void)order;
  (void)victim_node;
  LHRS_LOG(Warning) << "split victim unreachable; split abandoned "
                       "(no availability layer)";
  restructure_in_progress_ = false;
}

void CoordinatorNode::OnOrphanedMoveRecords(const MoveRecordsMsg& move) {
  LHRS_LOG(Warning) << "split target for bucket " << move.bucket
                    << " lost with " << move.records.size()
                    << " records in flight (no availability layer)";
  restructure_in_progress_ = false;
}

void CoordinatorNode::OnOrphanedMergeRecords(const MergeRecordsMsg& merge) {
  LHRS_LOG(Warning) << "merge parent " << merge.parent_bucket
                    << " lost with " << merge.records.size()
                    << " records in flight (no availability layer)";
  restructure_in_progress_ = false;
}

void CoordinatorNode::HandleDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kOpRequest:
      OnOpDeliveryFailure(static_cast<const OpRequestMsg&>(*msg.body));
      return;
    case LhStarMsg::kSplitOrder:
      OnSplitOrderDeliveryFailure(
          static_cast<const SplitOrderMsg&>(*msg.body), msg.to);
      return;
    case LhStarMsg::kMergeOut: {
      // The merge victim is down: undo the state reversal (the merge never
      // happened) and let the availability layer recover the victim.
      state_.AdvanceSplit();
      restructure_in_progress_ = false;
      --merges_performed_;
      HandleSubclassDeliveryFailure(msg);
      return;
    }
    default:
      HandleSubclassDeliveryFailure(msg);
      return;
  }
}

}  // namespace lhrs
