#include "lhstar/data_bucket.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "net/network.h"
#include "telemetry/metrics.h"

namespace lhrs {

DataBucketNode::DataBucketNode(std::shared_ptr<SystemContext> ctx,
                               BucketNo bucket_no, Level level,
                               bool pre_initialized)
    : ctx_(std::move(ctx)),
      bucket_no_(bucket_no),
      level_(level),
      initialized_(pre_initialized) {}

size_t DataBucketNode::StorageBytes() const {
  return records_.size() * sizeof(Key) + records_.payload_bytes();
}

void DataBucketNode::HandleMessage(const Message& msg) {
  const int k = msg.body->kind();
  if ((k == LhStarMsg::kSplitOrder || k == LhStarMsg::kMoveRecords ||
       k == LhStarMsg::kMergeOut || k == LhStarMsg::kMergeRecords ||
       k == LhStarMsg::kInsertBatch) &&
      network()->fault_injection_active() && dedup_.SeenBefore(msg.id)) {
    return;  // Duplicated restructuring/batch message (not idempotent).
  }
  switch (msg.body->kind()) {
    case LhStarMsg::kOpRequest:
      HandleOpRequest(msg);
      return;
    case LhStarMsg::kInsertBatch:
      HandleInsertBatch(static_cast<const InsertBatchMsg&>(*msg.body));
      return;
    case LhStarMsg::kSplitOrder:
      HandleSplitOrder(static_cast<const SplitOrderMsg&>(*msg.body));
      return;
    case LhStarMsg::kMoveRecords:
      HandleMoveRecords(static_cast<const MoveRecordsMsg&>(*msg.body));
      return;
    case LhStarMsg::kMergeOut:
      HandleMergeOut(static_cast<const MergeOutMsg&>(*msg.body));
      return;
    case LhStarMsg::kMergeRecords:
      HandleMergeRecords(static_cast<const MergeRecordsMsg&>(*msg.body));
      return;
    case LhStarMsg::kScanRequest:
      HandleScanRequest(static_cast<const ScanRequestMsg&>(*msg.body));
      return;
    case LhStarMsg::kSurveyRequest: {
      const auto& req = static_cast<const SurveyRequestMsg&>(*msg.body);
      auto reply = std::make_unique<SurveyReplyMsg>();
      reply->survey_id = req.survey_id;
      reply->role = SurveyReplyMsg::Role::kDataBucket;
      reply->decommissioned = decommissioned_;
      reply->bucket = bucket_no_;
      reply->level = level_;
      reply->record_count = records_.size();
      Send(msg.from, std::move(reply));
      return;
    }
    case LhStarMsg::kStateScanRequest: {
      const auto& req = static_cast<const StateScanRequestMsg&>(*msg.body);
      auto reply = std::make_unique<StateScanReplyMsg>();
      reply->op_id = req.op_id;
      reply->bucket = bucket_no_;
      reply->level = level_;
      Send(msg.from, std::move(reply));
      return;
    }
    case LhStarMsg::kSelfCheckReply: {
      const auto& reply = static_cast<const SelfCheckReplyMsg&>(*msg.body);
      if (!reply.still_owner && !decommissioned_) {
        decommissioned_ = true;
        records_.Clear();
        // Traffic buffered while waiting for an installation that will
        // never come goes back to the coordinator / clients.
        std::vector<std::unique_ptr<OpRequestMsg>> queued =
            std::move(queued_ops_);
        queued_ops_.clear();
        for (const auto& op : queued) BounceToCoordinator(*op);
        std::vector<std::unique_ptr<ScanRequestMsg>> scans =
            std::move(queued_scans_);
        queued_scans_.clear();
        for (const auto& scan : scans) {
          auto fail = std::make_unique<ScanReplyMsg>();
          fail->op_id = scan->op_id;
          fail->bucket = bucket_no_;
          fail->level = level_;
          fail->coverage_failed = true;
          Send(scan->client, std::move(fail));
        }
        std::vector<std::unique_ptr<InsertBatchMsg>> batches =
            std::move(queued_batches_);
        queued_batches_.clear();
        for (const auto& batch : batches) {
          auto bounce = std::make_unique<InsertBatchReplyMsg>();
          bounce->op_id = batch->op_id;
          bounce->seq = batch->seq;
          bounce->bucket = bucket_no_;
          bounce->level = level_;
          bounce->bounced = true;
          bounce->rejected = batch->records;
          Send(batch->client, std::move(bounce));
        }
        OnDecommissioned();
      }
      return;
    }
    default:
      HandleSubclassMessage(msg);
      return;
  }
}

void DataBucketNode::HandleSubclassMessage(const Message& msg) {
  LHRS_LOG(Fatal) << role() << " bucket " << bucket_no_
                  << ": unhandled message kind " << msg.body->kind();
}

void DataBucketNode::HandleSubclassDeliveryFailure(const Message& msg) {
  (void)msg;
}

void DataBucketNode::HandleOpRequest(const Message& msg) {
  const auto& req = static_cast<const OpRequestMsg&>(*msg.body);

  // Section 2.8: a spare, or a server reused for another bucket, matches
  // the intended bucket number against what it carries and bounces
  // mismatches to the coordinator.
  if (decommissioned_ || req.intended_bucket != bucket_no_) {
    BounceToCoordinator(req);
    return;
  }

  if (!initialized_) {
    // Mid-split: the record move from the parent has not arrived yet.
    // Buffer and replay (models the parent serving until handover).
    auto copy = std::make_unique<OpRequestMsg>(req);
    queued_ops_.push_back(std::move(copy));
    return;
  }

  // Algorithm (A2): verify the address, forward at most twice.
  const BucketNo target =
      ForwardAddress(bucket_no_, level_, req.key, ctx_->config.initial_buckets);
  if (target != bucket_no_) {
    if (!ctx_->allocation.Knows(target)) {
      // Cluster mode: this server's allocation replica has not caught up
      // with the split that created `target` yet. The coordinator always
      // has the authoritative address.
      BounceToCoordinator(req);
      return;
    }
    auto fwd = std::make_unique<OpRequestMsg>(req);
    fwd->intended_bucket = target;
    fwd->hops = req.hops + 1;
    LHRS_CHECK_LE(fwd->hops, 3) << "A2 forwarding chain too long";
    Send(ctx_->allocation.Lookup(target), std::move(fwd));
    return;
  }

  ExecuteLocalOp(req);
}

void DataBucketNode::HandleInsertBatch(const InsertBatchMsg& batch) {
  if (!initialized_) {
    // Mid-split: buffer and replay after the record move lands, exactly
    // like single ops.
    queued_batches_.push_back(std::make_unique<InsertBatchMsg>(batch));
    return;
  }

  auto reply = std::make_unique<InsertBatchReplyMsg>();
  reply->op_id = batch.op_id;
  reply->seq = batch.seq;
  reply->bucket = bucket_no_;
  reply->level = level_;

  if (decommissioned_ || batch.intended_bucket != bucket_no_) {
    // Displaced bucket / spare (section 2.8): this server cannot judge the
    // records; hand the whole sub-batch back for coordinator routing.
    reply->bounced = true;
    reply->rejected = batch.records;
    Send(batch.client, std::move(reply));
    return;
  }

  RecordOpTelemetry();
  OnBatchCommitBegin();
  for (const WireRecord& rec : batch.records) {
    const BucketNo target = ForwardAddress(bucket_no_, level_, rec.key,
                                           ctx_->config.initial_buckets);
    if (target != bucket_no_) {
      // Addressed under a stale image: goes back with the IAM instead of
      // fanning out into per-record forwards.
      reply->rejected.push_back(rec);
      continue;
    }
    if (!records_.InsertShared(rec.key, rec.value)) {
      ++reply->exists;
      continue;
    }
    ++ctx_->total_records;
    ++reply->applied;
    OnInsertCommitted(rec.key, *records_.Find(rec.key));
  }
  OnBatchCommitEnd();

  Send(batch.client, std::move(reply));
  // One overflow report per sub-batch (vs one per record): the split
  // amortization half of the bulk-load path.
  ReportOverflowIfNeeded();
}

void DataBucketNode::RecordOpTelemetry() {
  // Deterministic engine only: in parallel mode bucket handlers run on
  // worker threads where the pending-delivery counters and the main metric
  // registry are not theirs to touch; the skew/queue-depth series are a
  // deterministic-simulation instrument.
  if (network() == nullptr || network()->telemetry() == nullptr ||
      network()->config().localities != 0) {
    return;
  }
  if (ops_counter_ == nullptr) {
    telemetry::MetricsRegistry& m = network()->telemetry()->metrics();
    const std::string bucket = std::to_string(bucket_no_);
    ops_counter_ =
        &m.GetCounter(telemetry::Labeled("bucket.ops", "bucket", bucket));
    queue_depth_histogram_ = &m.GetHistogram(
        telemetry::Labeled("bucket.queue_depth", "bucket", bucket));
  }
  ops_counter_->Add();
  queue_depth_histogram_->Record(network()->PendingTo(id()));
}

void DataBucketNode::ExecuteLocalOp(const OpRequestMsg& req) {
  RecordOpTelemetry();
  switch (req.op) {
    case OpType::kInsert: {
      // The request's view is adopted as the stored payload: the bytes
      // ingested at the client flow into the store without another copy.
      if (!records_.InsertShared(req.key, req.value)) {
        ReplyToClient(req, StatusCode::kAlreadyExists, "duplicate key", {});
        return;
      }
      ++ctx_->total_records;
      OnInsertCommitted(req.key, *records_.Find(req.key));
      ReplyToClient(req, StatusCode::kOk, {}, {});
      ReportOverflowIfNeeded();
      return;
    }
    case OpType::kSearch: {
      const BufferView* value = records_.Find(req.key);
      if (value == nullptr) {
        ReplyToClient(req, StatusCode::kNotFound, "no such key", {});
      } else {
        ReplyToClient(req, StatusCode::kOk, {}, *value);
      }
      return;
    }
    case OpType::kUpdate: {
      const BufferView* found = records_.Find(req.key);
      if (found == nullptr) {
        ReplyToClient(req, StatusCode::kNotFound, "no such key", {});
        return;
      }
      const BufferView old_value = *found;  // Shares; survives the Put.
      records_.Put(req.key, req.value);
      OnUpdateCommitted(req.key, old_value, req.value);
      ReplyToClient(req, StatusCode::kOk, {}, {});
      return;
    }
    case OpType::kDelete: {
      const BufferView* found = records_.Find(req.key);
      if (found == nullptr) {
        ReplyToClient(req, StatusCode::kNotFound, "no such key", {});
        return;
      }
      const BufferView old_value = *found;  // Shares; survives the erase.
      records_.Erase(req.key);
      if (ctx_->total_records > 0) --ctx_->total_records;
      OnDeleteCommitted(req.key, old_value);
      ReplyToClient(req, StatusCode::kOk, {}, {});
      if (ctx_->config.enable_merge &&
          records_.size() * 4 < ctx_->config.bucket_capacity) {
        auto report = std::make_unique<UnderflowReportMsg>();
        report->bucket = bucket_no_;
        report->record_count = records_.size();
        Send(ctx_->coordinator, std::move(report));
      }
      return;
    }
  }
}

void DataBucketNode::ReplyToClient(const OpRequestMsg& req, StatusCode code,
                                   std::string error, BufferView value) {
  auto reply = std::make_unique<OpReplyMsg>();
  reply->op_id = req.op_id;
  reply->code = code;
  reply->error = std::move(error);
  reply->value = std::move(value);
  if (req.hops > 0) {
    // The correct server receiving a forwarded request issues an IAM.
    reply->iam = IamInfo{bucket_no_, level_};
  }
  Send(req.client, std::move(reply));
}

void DataBucketNode::BounceToCoordinator(const OpRequestMsg& req) {
  auto bounce = std::make_unique<ClientOpViaCoordinatorMsg>();
  bounce->op = req.op;
  bounce->op_id = req.op_id;
  bounce->client = req.client;
  bounce->intended_bucket = req.intended_bucket;
  bounce->key = req.key;
  bounce->value = req.value;
  Send(ctx_->coordinator, std::move(bounce));
}

void DataBucketNode::ReportOverflowIfNeeded() {
  if (records_.size() <= ctx_->config.bucket_capacity) return;
  auto report = std::make_unique<OverflowReportMsg>();
  report->bucket = bucket_no_;
  report->record_count = records_.size();
  Send(ctx_->coordinator, std::move(report));
}

void DataBucketNode::HandleSplitOrder(const SplitOrderMsg& order) {
  // A split retried after this bucket was recovered arrives with the
  // bucket already at the post-split level (the recovery installed the
  // level implied by the advanced file state).
  LHRS_CHECK(order.new_level == level_ + 1 || order.new_level == level_);
  level_ = order.new_level;

  std::vector<WireRecord> moved;
  records_.ForEachOrdered([&](uint64_t key, const BufferView& value) {
    if (HashL(key, level_, ctx_->config.initial_buckets) != bucket_no_) {
      // The wire record shares the stored segment bytes; the erase below
      // only tombstones the slot, the view keeps the payload alive.
      moved.push_back(WireRecord{key, 0, value});
    }
  });
  for (const auto& rec : moved) records_.Erase(rec.key);
  OnRecordsMovedOut(moved);

  auto move = std::make_unique<MoveRecordsMsg>();
  move->bucket = order.new_bucket;
  move->level = order.new_level;
  move->records = std::move(moved);
  Send(order.new_node, std::move(move));
}

void DataBucketNode::HandleMoveRecords(const MoveRecordsMsg& move) {
  LHRS_CHECK_EQ(move.bucket, bucket_no_);
  LHRS_CHECK_EQ(move.level, level_);
  std::vector<WireRecord> fresh;
  fresh.reserve(move.records.size());
  for (const auto& rec : move.records) {
    // Zero-copy adoption: the store shares the wire message's payload
    // buffer until the next compaction localizes it.
    if (!records_.InsertShared(rec.key, rec.value)) {
      // Chaos duplication (of the move itself, or of its orphan-relay via
      // the coordinator) redelivers records we already hold; applying them
      // twice would corrupt parity.
      LHRS_CHECK(network()->fault_injection_active())
          << "duplicate key in split move";
      continue;
    }
    fresh.push_back(rec);
  }
  if (fresh.empty() && initialized_ && !move.records.empty()) {
    return;  // Pure redelivery: everything already applied and acked.
  }
  OnRecordsMovedIn(fresh);
  initialized_ = true;

  auto done = std::make_unique<SplitDoneMsg>();
  done->bucket = bucket_no_;
  Send(ctx_->coordinator, std::move(done));

  OnActivated();
  FlushQueuedTraffic();
}

void DataBucketNode::FlushQueuedTraffic() {
  std::vector<std::unique_ptr<OpRequestMsg>> queued = std::move(queued_ops_);
  queued_ops_.clear();
  for (auto& op : queued) {
    Message replay;
    replay.from = op->client;
    replay.to = id();
    replay.body = std::move(op);
    HandleOpRequest(replay);
  }
  std::vector<std::unique_ptr<ScanRequestMsg>> scans =
      std::move(queued_scans_);
  queued_scans_.clear();
  for (auto& scan : scans) HandleScanRequest(*scan);
  std::vector<std::unique_ptr<InsertBatchMsg>> batches =
      std::move(queued_batches_);
  queued_batches_.clear();
  for (auto& batch : batches) HandleInsertBatch(*batch);
}

void DataBucketNode::HandleMergeOut(const MergeOutMsg& order) {
  // Inverse of a split: every resident record returns to the parent. The
  // same moved-out hook fires, so availability layers retire the records
  // from their groups exactly as they would for a split.
  std::vector<WireRecord> moved;
  moved.reserve(records_.size());
  records_.ForEachOrdered([&](uint64_t key, const BufferView& value) {
    moved.push_back(WireRecord{key, 0, value});
  });
  records_.Clear();
  OnRecordsMovedOut(moved);

  auto merge = std::make_unique<MergeRecordsMsg>();
  merge->parent_bucket = order.parent_bucket;
  merge->parent_new_level = order.parent_new_level;
  merge->records = std::move(moved);
  Send(order.parent_node, std::move(merge));

  // This server stands down; stale clients that still address the removed
  // bucket bounce off it to the coordinator (which resets their images).
  decommissioned_ = true;
  OnDecommissioned();
}

void DataBucketNode::HandleMergeRecords(const MergeRecordsMsg& merge) {
  LHRS_CHECK_EQ(merge.parent_bucket, bucket_no_);
  // Tolerate a parent recovered (to the post-merge level) between the
  // merge order and the record delivery.
  LHRS_CHECK(merge.parent_new_level + 1 == level_ ||
             merge.parent_new_level == level_);
  level_ = merge.parent_new_level;
  for (const auto& rec : merge.records) {
    LHRS_CHECK(records_.InsertShared(rec.key, rec.value))
        << "duplicate key in merge";
  }
  OnRecordsMovedIn(merge.records);

  auto done = std::make_unique<MergeDoneMsg>();
  done->bucket = bucket_no_;
  Send(ctx_->coordinator, std::move(done));
}

void DataBucketNode::HandleScanRequest(const ScanRequestMsg& scan) {
  if (!initialized_) {
    // Mid-split: records destined for this bucket are still in flight;
    // answering now would silently miss them.
    queued_scans_.push_back(std::make_unique<ScanRequestMsg>(scan));
    return;
  }
  // Exactly-once coverage: forward one copy to each child this bucket
  // created at a level above the sender's presumed one.
  for (Level l = scan.attached_level + 1; l <= level_; ++l) {
    const BucketNo child =
        bucket_no_ +
        (static_cast<BucketNo>(ctx_->config.initial_buckets) << (l - 1));
    // Cluster mode: a stale allocation replica cannot route the copy; the
    // client's deterministic-coverage check reports the gap.
    if (!ctx_->allocation.Knows(child)) continue;
    auto fwd = std::make_unique<ScanRequestMsg>(scan);
    fwd->attached_level = l;
    Send(ctx_->allocation.Lookup(child), std::move(fwd));
  }

  std::vector<WireRecord> matches;
  records_.ForEachOrdered([&](uint64_t key, const BufferView& value) {
    if (scan.predicate.Matches(key, value)) {
      matches.push_back(WireRecord{key, 0, value});
    }
  });
  if (scan.deterministic || !matches.empty()) {
    auto reply = std::make_unique<ScanReplyMsg>();
    reply->op_id = scan.op_id;
    reply->bucket = bucket_no_;
    reply->level = level_;
    reply->records = std::move(matches);
    Send(scan.client, std::move(reply));
  }
}

void DataBucketNode::HandleDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kOpRequest: {
      // A forward hop failed: report the failure and hand the op to the
      // coordinator (section 2.8).
      const auto& req = static_cast<const OpRequestMsg&>(*msg.body);
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = req.intended_bucket;
      Send(ctx_->coordinator, std::move(report));
      BounceToCoordinator(req);
      return;
    }
    case LhStarMsg::kMoveRecords: {
      // The new bucket died mid-split. The moved records exist only in
      // this message now (their parity was already retired), so hand them
      // to the coordinator for safekeeping and recovery.
      const auto& move = static_cast<const MoveRecordsMsg&>(*msg.body);
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = move.bucket;
      Send(ctx_->coordinator, std::move(report));
      Send(ctx_->coordinator, std::make_unique<MoveRecordsMsg>(move));
      return;
    }
    case LhStarMsg::kMergeRecords: {
      // The merge parent died; same safekeeping as for kMoveRecords.
      const auto& merge = static_cast<const MergeRecordsMsg&>(*msg.body);
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = merge.parent_bucket;
      Send(ctx_->coordinator, std::move(report));
      Send(ctx_->coordinator, std::make_unique<MergeRecordsMsg>(merge));
      return;
    }
    case LhStarMsg::kInsertBatchReply: {
      // A lossy network ate the reply; resend a bounded number of times so
      // the client's batch can complete (it dedups by sub-batch seq).
      if (!network()->fault_injection_active()) return;
      const auto& reply = static_cast<const InsertBatchReplyMsg&>(*msg.body);
      if (++batch_reply_resends_[reply.seq] > 3) return;
      Send(msg.to, std::make_unique<InsertBatchReplyMsg>(reply));
      return;
    }
    case LhStarMsg::kScanRequest: {
      // Coverage forwarding hit a dead bucket: the deterministic scan
      // cannot terminate normally; tell the client.
      const auto& scan = static_cast<const ScanRequestMsg&>(*msg.body);
      auto reply = std::make_unique<ScanReplyMsg>();
      reply->op_id = scan.op_id;
      reply->bucket = bucket_no_;
      reply->level = level_;
      reply->coverage_failed = true;
      Send(scan.client, std::move(reply));
      return;
    }
    default:
      HandleSubclassDeliveryFailure(msg);
      return;
  }
}

void DataBucketNode::SelfCheck() {
  auto req = std::make_unique<SelfCheckRequestMsg>();
  req->bucket = bucket_no_;
  Send(ctx_->coordinator, std::move(req));
}

void DataBucketNode::InstallRecoveredState(store::BucketStore records,
                                           Level level) {
  records_ = std::move(records);
  level_ = level;
  initialized_ = true;
  OnActivated();
  FlushQueuedTraffic();
}

void DataBucketNode::OnInsertCommitted(Key, const BufferView&) {}
void DataBucketNode::OnUpdateCommitted(Key, const BufferView&,
                                       const BufferView&) {}
void DataBucketNode::OnDeleteCommitted(Key, const BufferView&) {}
void DataBucketNode::OnRecordsMovedOut(std::vector<WireRecord>&) {}
void DataBucketNode::OnRecordsMovedIn(const std::vector<WireRecord>&) {}
void DataBucketNode::OnDecommissioned() {}
void DataBucketNode::OnBatchCommitBegin() {}
void DataBucketNode::OnBatchCommitEnd() {}
void DataBucketNode::OnActivated() {}

}  // namespace lhrs
