#include "lhstar/lhstar_file.h"

#include <utility>

#include "common/logging.h"
#include "exec/parallel_network.h"

namespace lhrs {

LhStarFile::LhStarFile(Options options, DeferInit)
    : options_(std::move(options)),
      network_(exec::MakeNetwork(options_.net)),
      ctx_(std::make_shared<SystemContext>()) {
  RegisterLhStarMessageNames();
  ctx_->config = options_.file;
}

LhStarFile::LhStarFile(Options options)
    : LhStarFile(std::move(options), DeferInit{}) {
  auto coordinator = std::make_unique<CoordinatorNode>(ctx_);
  coordinator_ = coordinator.get();
  ctx_->coordinator = network_->AddNode(std::move(coordinator));

  coordinator_->SetBucketFactory([this](BucketNo bucket, Level level) {
    auto node = std::make_unique<DataBucketNode>(ctx_, bucket, level,
                                                 /*pre_initialized=*/false);
    DataBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    RegisterDataBucket(id, ptr);
    return id;
  });

  for (BucketNo b = 0; b < ctx_->config.initial_buckets; ++b) {
    auto node = std::make_unique<DataBucketNode>(ctx_, b, /*level=*/0,
                                                 /*pre_initialized=*/true);
    DataBucketNode* ptr = node.get();
    const NodeId id = network_->AddNode(std::move(node));
    RegisterDataBucket(id, ptr);
    ctx_->allocation.Set(b, id);
  }

  AddClient();
}

size_t LhStarFile::AddClient() {
  auto client = std::make_unique<ClientNode>(ctx_);
  ClientNode* ptr = client.get();
  network_->AddNode(std::move(client));
  clients_.push_back(ptr);
  op_tokens_.emplace_back();
  const size_t session = clients_.size() - 1;
  ptr->SetOnOpComplete(
      [this, session](uint64_t op_id) { OnClientOpComplete(session, op_id); });
  return session;
}

ClientNode& LhStarFile::client(size_t index) {
  LHRS_CHECK_LT(index, clients_.size());
  return *clients_[index];
}

sdds::OpToken LhStarFile::Submit(size_t session, OpType op, Key key,
                                 Bytes value) {
  ClientNode& c = client(session);
  const sdds::OpToken token = NextToken();
  const uint64_t op_id = c.StartOp(op, key, std::move(value));
  tokens_[token] = TokenEntry{session, op_id};
  op_tokens_[session][op_id] = token;
  return token;
}

sdds::OpToken LhStarFile::SubmitBatch(size_t session,
                                      std::vector<WireRecord> records) {
  ClientNode& c = client(session);
  const sdds::OpToken token = NextToken();
  const uint64_t op_id = c.StartInsertBatch(std::move(records));
  tokens_[token] = TokenEntry{session, op_id};
  op_tokens_[session][op_id] = token;
  return token;
}

bool LhStarFile::Poll(sdds::OpToken token) const {
  auto it = tokens_.find(token);
  if (it == tokens_.end()) return false;
  return clients_[it->second.session]->IsDone(it->second.op_id);
}

Result<OpOutcome> LhStarFile::Take(sdds::OpToken token) {
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    return Status::Internal("unknown operation token");
  }
  const TokenEntry entry = it->second;
  Result<OpOutcome> outcome = clients_[entry.session]->TakeResult(entry.op_id);
  if (!outcome.ok()) return outcome;  // Still in flight: token stays live.
  tokens_.erase(it);
  op_tokens_[entry.session].erase(entry.op_id);
  return outcome;
}

void LhStarFile::OnClientOpComplete(size_t session, uint64_t op_id) {
  auto it = op_tokens_[session].find(op_id);
  if (it == op_tokens_[session].end()) return;  // Not started via Submit.
  NotifyComplete(it->second);
}

Status LhStarFile::InsertVia(size_t client_index, Key key, Bytes value) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out,
                        RunSync(client_index, OpType::kInsert, key,
                                std::move(value)));
  return out.status;
}

Result<Bytes> LhStarFile::SearchVia(size_t client_index, Key key) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out,
                        RunSync(client_index, OpType::kSearch, key, {}));
  if (!out.status.ok()) return out.status;
  return out.value.ToBytes();
}

Result<std::vector<WireRecord>> LhStarFile::Scan(ScanPredicate predicate,
                                                 bool deterministic) {
  ClientNode& c = client(0);
  const uint64_t op_id = c.StartScan(std::move(predicate), deterministic);
  network_->RunUntilIdle();
  if (!c.IsDone(op_id)) {
    if (!deterministic) {
      // Probabilistic termination: the simulation going idle is the
      // time-out after the last received record.
      c.FinishProbabilisticScan(op_id);
    } else {
      return Status::Internal("scan did not terminate");
    }
  }
  LHRS_ASSIGN_OR_RETURN(OpOutcome out, c.TakeResult(op_id));
  if (!out.status.ok()) return out.status;
  return std::move(out.scan_records);
}

DataBucketNode* LhStarFile::bucket(BucketNo b) const {
  return data_nodes_.At(ctx_->allocation.Lookup(b));
}

chaos::ChaosEngine& LhStarFile::AttachChaos(chaos::FaultPlan plan) {
  chaos_.reset();  // Detach first: the engine registers a network hook.
  chaos_ = std::make_unique<chaos::ChaosEngine>(
      network_.get(), std::move(plan), ChaosGroupResolver(),
      ChaosRestoreHook());
  return *chaos_;
}

void LhStarFile::DetachChaos() { chaos_.reset(); }

void LhStarFile::PlayOutChaos() {
  if (chaos_ == nullptr) return;
  network_->RunUntil(chaos_->Horizon());
  network_->RunUntilIdle();
}

chaos::ChaosEngine::RestoreHook LhStarFile::ChaosRestoreHook() {
  // Must not pump the event loop: it runs inside event processing. The
  // self-check messages play out in the surrounding run.
  return [this](NodeId node) {
    network_->SetAvailable(node, true);
    if (DataBucketNode* bucket = data_node(node)) {
      bucket->SelfCheck();
    }
  };
}

StorageStats LhStarFile::GetStorageStats() const {
  StorageStats stats;
  stats.data_buckets = bucket_count();
  for (BucketNo b = 0; b < stats.data_buckets; ++b) {
    const DataBucketNode* node = bucket(b);
    stats.record_count += node->record_count();
    stats.data_bytes += node->StorageBytes();
  }
  stats.load_factor =
      static_cast<double>(stats.record_count) /
      (static_cast<double>(stats.data_buckets) * ctx_->config.bucket_capacity);
  return stats;
}

}  // namespace lhrs
