#include "lhstar/lhstar_file.h"

#include <utility>

#include "common/logging.h"
#include "telemetry/probe.h"

namespace lhrs {

namespace {

/// Histogram name for a client-visible op; constants so the probe path does
/// not build label strings per call.
std::string_view OpLatencyHistogram(OpType op) {
  switch (op) {
    case OpType::kInsert:
      return "op_latency_us{op=insert}";
    case OpType::kSearch:
      return "op_latency_us{op=search}";
    case OpType::kUpdate:
      return "op_latency_us{op=update}";
    case OpType::kDelete:
      return "op_latency_us{op=delete}";
  }
  return "op_latency_us{op=unknown}";
}

}  // namespace

LhStarFile::LhStarFile(Options options, DeferInit)
    : options_(std::move(options)),
      network_(options_.net),
      ctx_(std::make_shared<SystemContext>()) {
  RegisterLhStarMessageNames();
  ctx_->config = options_.file;
}

LhStarFile::LhStarFile(Options options)
    : LhStarFile(std::move(options), DeferInit{}) {
  auto coordinator = std::make_unique<CoordinatorNode>(ctx_);
  coordinator_ = coordinator.get();
  ctx_->coordinator = network_.AddNode(std::move(coordinator));

  coordinator_->SetBucketFactory([this](BucketNo bucket, Level level) {
    auto node = std::make_unique<DataBucketNode>(ctx_, bucket, level,
                                                 /*pre_initialized=*/false);
    return network_.AddNode(std::move(node));
  });

  for (BucketNo b = 0; b < ctx_->config.initial_buckets; ++b) {
    auto node = std::make_unique<DataBucketNode>(ctx_, b, /*level=*/0,
                                                 /*pre_initialized=*/true);
    ctx_->allocation.Set(b, network_.AddNode(std::move(node)));
  }

  AddClient();
}

size_t LhStarFile::AddClient() {
  auto client = std::make_unique<ClientNode>(ctx_);
  ClientNode* ptr = client.get();
  network_.AddNode(std::move(client));
  clients_.push_back(ptr);
  return clients_.size() - 1;
}

ClientNode& LhStarFile::client(size_t index) {
  LHRS_CHECK_LT(index, clients_.size());
  return *clients_[index];
}

Result<OpOutcome> LhStarFile::RunOp(size_t client_index, OpType op, Key key,
                                    Bytes value) {
  ClientNode& c = client(client_index);
  telemetry::ScopedProbe probe(network_.telemetry(), OpLatencyHistogram(op));
  const uint64_t op_id = c.StartOp(op, key, std::move(value));
  network_.RunUntilIdle();
  if (!c.IsDone(op_id)) {
    return Status::Internal("operation did not complete");
  }
  return c.TakeResult(op_id);
}

Status LhStarFile::Insert(Key key, Bytes value) {
  return InsertVia(0, key, std::move(value));
}

Status LhStarFile::InsertVia(size_t client_index, Key key, Bytes value) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out,
                        RunOp(client_index, OpType::kInsert, key,
                              std::move(value)));
  return out.status;
}

Result<Bytes> LhStarFile::Search(Key key) { return SearchVia(0, key); }

Result<Bytes> LhStarFile::SearchVia(size_t client_index, Key key) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out,
                        RunOp(client_index, OpType::kSearch, key, {}));
  if (!out.status.ok()) return out.status;
  return out.value.ToBytes();
}

Status LhStarFile::Update(Key key, Bytes value) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out,
                        RunOp(0, OpType::kUpdate, key, std::move(value)));
  return out.status;
}

Status LhStarFile::Delete(Key key) {
  LHRS_ASSIGN_OR_RETURN(OpOutcome out, RunOp(0, OpType::kDelete, key, {}));
  return out.status;
}

Result<std::vector<WireRecord>> LhStarFile::Scan(ScanPredicate predicate,
                                                 bool deterministic) {
  ClientNode& c = client(0);
  telemetry::ScopedProbe probe(network_.telemetry(),
                               "op_latency_us{op=scan}");
  const uint64_t op_id = c.StartScan(std::move(predicate), deterministic);
  network_.RunUntilIdle();
  if (!c.IsDone(op_id)) {
    if (!deterministic) {
      // Probabilistic termination: the simulation going idle is the
      // time-out after the last received record.
      c.FinishProbabilisticScan(op_id);
    } else {
      return Status::Internal("scan did not terminate");
    }
  }
  LHRS_ASSIGN_OR_RETURN(OpOutcome out, c.TakeResult(op_id));
  if (!out.status.ok()) return out.status;
  return std::move(out.scan_records);
}

DataBucketNode* LhStarFile::bucket(BucketNo b) const {
  return network_.node_as<DataBucketNode>(ctx_->allocation.Lookup(b));
}

chaos::ChaosEngine& LhStarFile::AttachChaos(chaos::FaultPlan plan) {
  chaos_.reset();  // Detach first: the engine registers a network hook.
  chaos_ = std::make_unique<chaos::ChaosEngine>(
      &network_, std::move(plan), ChaosGroupResolver(), ChaosRestoreHook());
  return *chaos_;
}

void LhStarFile::DetachChaos() { chaos_.reset(); }

void LhStarFile::PlayOutChaos() {
  if (chaos_ == nullptr) return;
  network_.RunUntil(chaos_->Horizon());
  network_.RunUntilIdle();
}

chaos::ChaosEngine::RestoreHook LhStarFile::ChaosRestoreHook() {
  // Must not pump the event loop: it runs inside event processing. The
  // self-check messages play out in the surrounding run.
  return [this](NodeId node) {
    network_.SetAvailable(node, true);
    if (auto* bucket = dynamic_cast<DataBucketNode*>(network_.node(node))) {
      bucket->SelfCheck();
    }
  };
}

StorageStats LhStarFile::GetStorageStats() const {
  StorageStats stats;
  stats.data_buckets = bucket_count();
  for (BucketNo b = 0; b < stats.data_buckets; ++b) {
    const DataBucketNode* node = bucket(b);
    stats.record_count += node->record_count();
    stats.data_bytes += node->StorageBytes();
  }
  stats.load_factor =
      static_cast<double>(stats.record_count) /
      (static_cast<double>(stats.data_buckets) * ctx_->config.bucket_capacity);
  return stats;
}

}  // namespace lhrs
