#include "lhstar/client.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "net/network.h"
#include "telemetry/metrics.h"

namespace lhrs {

ClientNode::ClientNode(std::shared_ptr<SystemContext> ctx)
    : ctx_(std::move(ctx)) {
  image_.initial_buckets = ctx_->config.initial_buckets;
}

NodeId ClientNode::ResolveNode(BucketNo bucket) {
  if (bucket < cached_nodes_.size() &&
      cached_nodes_[bucket] != kInvalidNode) {
    return cached_nodes_[bucket];
  }
  // Cluster mode: this client's allocation replica may lag the
  // coordinator's table right after a split or recovery. An unknown
  // bucket is not an error — the caller routes via the coordinator.
  if (!ctx_->allocation.Knows(bucket)) return kInvalidNode;
  const NodeId node = ctx_->allocation.Lookup(bucket);
  if (bucket >= cached_nodes_.size()) {
    cached_nodes_.resize(bucket + 1, kInvalidNode);
  }
  cached_nodes_[bucket] = node;
  return node;
}

uint64_t ClientNode::StartOp(OpType op, Key key, BufferView value) {
  const uint64_t op_id = next_op_id_++;
  const BucketNo a = image_.Address(key);  // Algorithm (A1) on the image.
  PendingOp& pending = pending_[op_id];
  pending = PendingOp{op, key, std::move(value), a};
  pending.start_us = network()->now();
  SendDirect(op_id, pending);
  if (retry_.enabled) ArmOpTimer(op_id, pending);
  return op_id;
}

void ClientNode::SetRetryPolicy(ClientRetryPolicy policy) {
  retry_ = policy;
  retry_rng_.emplace(policy.seed);
}

void ClientNode::SendDirect(uint64_t op_id, PendingOp& op) {
  // Re-derive the address each attempt: an IAM that arrived since the
  // first send may have advanced the image.
  const BucketNo a = image_.Address(op.key);
  op.sent_to_bucket = a;
  auto req = std::make_unique<OpRequestMsg>();
  req->op = op.op;
  req->op_id = op_id;
  req->client = id();
  req->intended_bucket = a;
  req->key = op.key;
  req->value = op.value;
  const NodeId node = ResolveNode(a);
  if (node == kInvalidNode) {
    // The image points at a bucket this process has not learned the
    // address of yet (stale allocation replica): let the coordinator
    // place the operation.
    SendViaCoordinator(op_id, op);
    return;
  }
  Send(node, std::move(req));
}

void ClientNode::SendViaCoordinator(uint64_t op_id, const PendingOp& op) {
  auto bounce = std::make_unique<ClientOpViaCoordinatorMsg>();
  bounce->op = op.op;
  bounce->op_id = op_id;
  bounce->client = id();
  bounce->intended_bucket = op.sent_to_bucket;
  bounce->key = op.key;
  bounce->value = op.value;
  Send(ctx_->coordinator, std::move(bounce));
}

SimTime ClientNode::Backoff(uint32_t attempt) {
  if (attempt <= 1) return 0;
  SimTime backoff = retry_.base_backoff_us;
  for (uint32_t i = 2; i < attempt && backoff < retry_.max_backoff_us; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, retry_.max_backoff_us);
  if (retry_.jitter > 0 && retry_rng_.has_value()) {
    const auto spread = static_cast<SimTime>(
        static_cast<double>(backoff) * retry_.jitter);
    if (spread > 0) {
      backoff = backoff - spread + retry_rng_->Uniform(2 * spread + 1);
    }
  }
  return backoff;
}

void ClientNode::ArmOpTimer(uint64_t op_id, PendingOp& op) {
  const SimTime delay = retry_.request_timeout_us + Backoff(op.attempts + 1);
  op.deadline = network()->now() + delay;
  ScheduleTimer(delay, op_id);
}

void ClientNode::HandleTimer(uint64_t timer_id) {
  if (!retry_.enabled) return;
  auto it = pending_.find(timer_id);
  if (it == pending_.end()) return;  // Completed; timer is stale.
  // A bounce-triggered resend moved the deadline past this (uncancellable)
  // timer: the newer timer owns the attempt.
  if (network()->now() < it->second.deadline) return;
  RetryOp(timer_id, it->second);
}

void ClientNode::RetryOp(uint64_t op_id, PendingOp& op) {
  if (op.attempts >= retry_.max_total_attempts) {
    OpOutcome outcome;
    outcome.status = Status::Unavailable("retries exhausted after " +
                                         std::to_string(op.attempts) +
                                         " attempts");
    CompleteOp(op_id, std::move(outcome));
    return;
  }
  ++op.attempts;
  CountRetry();
  if (op.attempts <= retry_.max_direct_attempts) {
    SendDirect(op_id, op);
  } else {
    ++escalations_;
    if (escalations_counter_ != nullptr) escalations_counter_->Add();
    SendViaCoordinator(op_id, op);
  }
  ArmOpTimer(op_id, op);
}

void ClientNode::CountRetry() {
  ResolveCounters();
  ++retries_;
  if (retries_counter_ != nullptr) retries_counter_->Add();
}

void ClientNode::CountDuplicate() {
  ResolveCounters();
  ++duplicates_suppressed_;
  if (duplicates_counter_ != nullptr) duplicates_counter_->Add();
}

void ClientNode::ResolveCounters() {
  if (retries_counter_ != nullptr || network() == nullptr ||
      network()->telemetry() == nullptr) {
    return;
  }
  telemetry::MetricsRegistry& m = network()->telemetry()->metrics();
  retries_counter_ = &m.GetCounter("client.retries");
  escalations_counter_ = &m.GetCounter("client.escalations");
  duplicates_counter_ = &m.GetCounter("client.duplicates_suppressed");
}

uint64_t ClientNode::StartInsertBatch(std::vector<WireRecord> records) {
  LHRS_CHECK(!records.empty()) << "empty insert batch";
  const uint64_t op_id = next_op_id_++;
  PendingBatch& batch = pending_batches_[op_id];
  batch.total = records.size();
  batch.start_us = network()->now();

  // Group per target bucket under the image (algorithm A1 per record);
  // map order makes the sub-batch sequence deterministic.
  std::map<BucketNo, std::vector<WireRecord>> groups;
  for (WireRecord& rec : records) {
    groups[image_.Address(rec.key)].push_back(std::move(rec));
  }
  for (auto& [bucket, group] : groups) {
    SendSubBatch(op_id, batch, bucket, std::move(group), /*attempt=*/1);
  }
  return op_id;
}

void ClientNode::SendSubBatch(uint64_t op_id, PendingBatch& batch,
                              BucketNo bucket,
                              std::vector<WireRecord> records,
                              uint32_t attempt) {
  const NodeId node = ResolveNode(bucket);
  if (node == kInvalidNode) {
    // Stale allocation replica: the coordinator places these per record.
    for (const WireRecord& rec : records) {
      SendBatchChildViaCoordinator(op_id, batch, rec);
    }
    return;
  }
  const uint64_t seq = next_batch_seq_++;
  auto msg = std::make_unique<InsertBatchMsg>();
  msg->op_id = op_id;
  msg->seq = seq;
  msg->client = id();
  msg->intended_bucket = bucket;
  msg->attempt = attempt;
  msg->records = records;  // The pending copy shares the payload views.
  batch.outstanding[seq] = PendingSubBatch{std::move(records), attempt};
  Send(node, std::move(msg));
}

void ClientNode::SendBatchChildViaCoordinator(uint64_t batch_op_id,
                                              PendingBatch& batch,
                                              const WireRecord& rec) {
  const uint64_t child_id = next_op_id_++;
  batch_children_[child_id] = batch_op_id;
  ++batch.outstanding_children;
  auto bounce = std::make_unique<ClientOpViaCoordinatorMsg>();
  bounce->op = OpType::kInsert;
  bounce->op_id = child_id;
  bounce->client = id();
  bounce->intended_bucket = image_.Address(rec.key);
  bounce->key = rec.key;
  bounce->value = rec.value;
  Send(ctx_->coordinator, std::move(bounce));
}

void ClientNode::HandleInsertBatchReply(const InsertBatchReplyMsg& reply) {
  auto bit = pending_batches_.find(reply.op_id);
  if (bit == pending_batches_.end()) {
    CountDuplicate();
    return;
  }
  PendingBatch& batch = bit->second;
  auto oit = batch.outstanding.find(reply.seq);
  if (oit == batch.outstanding.end()) {
    CountDuplicate();  // Resent reply for a sub-batch already settled.
    return;
  }
  PendingSubBatch sub = std::move(oit->second);
  batch.outstanding.erase(oit);

  if (reply.bounced) {
    // Displaced bucket / spare: coordinator routing, per record.
    for (const WireRecord& rec : sub.records) {
      SendBatchChildViaCoordinator(reply.op_id, batch, rec);
    }
    MaybeCompleteBatch(reply.op_id);
    return;
  }

  batch.applied += reply.applied;
  batch.exists += reply.exists;
  if (!reply.rejected.empty()) {
    // The server's (bucket, level) is the IAM: adjust and re-group. The
    // LH* image-convergence argument guarantees a rejected record never
    // lands on the same wrong bucket twice, but merges can move the file
    // under the client, so re-grouping is bounded and then handed over.
    ++iam_count_;
    image_.Adjust(reply.bucket, reply.level);
    if (sub.attempt < 4) {
      std::map<BucketNo, std::vector<WireRecord>> groups;
      for (const WireRecord& rec : reply.rejected) {
        groups[image_.Address(rec.key)].push_back(rec);
      }
      for (auto& [bucket, group] : groups) {
        SendSubBatch(reply.op_id, batch, bucket, std::move(group),
                     sub.attempt + 1);
      }
    } else {
      for (const WireRecord& rec : reply.rejected) {
        SendBatchChildViaCoordinator(reply.op_id, batch, rec);
      }
    }
  }
  MaybeCompleteBatch(reply.op_id);
}

void ClientNode::MaybeCompleteBatch(uint64_t op_id) {
  auto it = pending_batches_.find(op_id);
  if (it == pending_batches_.end()) return;
  PendingBatch& batch = it->second;
  if (!batch.outstanding.empty() || batch.outstanding_children > 0) return;
  OpOutcome outcome;
  const size_t settled = batch.applied + batch.exists + batch.failed;
  if (settled < batch.total) {
    // Records lost without a failure signal would be a protocol bug; a
    // completed batch always accounts for every record.
    batch.failed += static_cast<uint32_t>(batch.total - settled);
  }
  outcome.batch_applied = batch.applied;
  outcome.batch_exists = batch.exists;
  outcome.batch_failed = batch.failed;
  outcome.status =
      batch.failed == 0
          ? Status::OK()
          : Status::Internal(std::to_string(batch.failed) +
                             " batch records failed");
  CompleteOp(op_id, std::move(outcome));
}

uint64_t ClientNode::StartScan(ScanPredicate predicate, bool deterministic) {
  const uint64_t op_id = next_op_id_++;
  pending_scans_[op_id] = PendingScan{deterministic, {}, {}, network()->now()};

  // One copy to every bucket of the client's image, each tagged with the
  // level the image presumes for it; server-side forwarding covers buckets
  // the image does not know (exactly once).
  const BucketNo extent = image_.presumed_bucket_count();
  FileState presumed{image_.i, image_.n, image_.initial_buckets};
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  batch.reserve(extent);
  for (BucketNo a = 0; a < extent; ++a) {
    // Cluster mode: buckets the local allocation replica cannot place yet
    // are skipped; the deterministic-coverage check reports the gap.
    if (!ctx_->allocation.Knows(a)) continue;
    auto req = std::make_unique<ScanRequestMsg>();
    req->op_id = op_id;
    req->client = id();
    req->attached_level = presumed.BucketLevel(a);
    req->predicate = predicate;
    req->deterministic = deterministic;
    // Scans resolve through the authoritative allocation (the multicast
    // group membership); key-addressed ops use the cache.
    batch.emplace_back(ctx_->allocation.Lookup(a), std::move(req));
  }
  if (network()->config().multicast_available) {
    network()->Multicast(id(), std::move(batch));
  } else {
    // No hardware multicast: the client sends one true unicast per bucket
    // (section 2.1's fallback), each paying full per-message cost.
    for (auto& [to, body] : batch) Send(to, std::move(body));
  }
  return op_id;
}

Result<OpOutcome> ClientNode::TakeResult(uint64_t op_id) {
  auto it = done_.find(op_id);
  if (it == done_.end()) {
    return Status::Internal("operation " + std::to_string(op_id) +
                            " not finished");
  }
  OpOutcome out = std::move(it->second);
  done_.erase(it);
  return out;
}

void ClientNode::FinishProbabilisticScan(uint64_t op_id) {
  auto it = pending_scans_.find(op_id);
  if (it == pending_scans_.end()) return;
  LHRS_CHECK(!it->second.deterministic);
  OpOutcome outcome;
  outcome.status = Status::OK();
  outcome.scan_records = std::move(it->second.records);
  CompleteOp(op_id, std::move(outcome));
}

void ClientNode::ResetImage() {
  image_ = ClientImage{};
  image_.initial_buckets = ctx_->config.initial_buckets;
  cached_nodes_.clear();
}

void ClientNode::CompleteOp(uint64_t op_id, OpOutcome outcome) {
  RecordOpLatency(op_id);
  pending_.erase(op_id);
  pending_scans_.erase(op_id);
  pending_batches_.erase(op_id);
  done_[op_id] = std::move(outcome);
  // Last: the callback may re-enter StartOp / TakeResult.
  if (on_op_complete_) on_op_complete_(op_id);
}

void ClientNode::RecordOpLatency(uint64_t op_id) {
  if (network() == nullptr || network()->telemetry() == nullptr) return;
  size_t slot;
  SimTime start;
  if (auto it = pending_.find(op_id); it != pending_.end()) {
    slot = static_cast<size_t>(it->second.op);
    start = it->second.start_us;
  } else if (auto sit = pending_scans_.find(op_id);
             sit != pending_scans_.end()) {
    slot = 4;
    start = sit->second.start_us;
  } else if (auto bit = pending_batches_.find(op_id);
             bit != pending_batches_.end()) {
    slot = 5;
    start = bit->second.start_us;
  } else {
    return;
  }
  if (latency_histograms_[slot] == nullptr) {
    static constexpr const char* kLabels[6] = {"insert", "search", "update",
                                               "delete", "scan", "batch"};
    telemetry::MetricsRegistry& m = network()->telemetry()->metrics();
    latency_histograms_[slot] = &m.GetHistogram(
        telemetry::Labeled("op_latency_us", "op", kLabels[slot]));
  }
  latency_histograms_[slot]->Record(network()->now() - start);
}

void ClientNode::HandleMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kInsertBatchReply:
      HandleInsertBatchReply(
          static_cast<const InsertBatchReplyMsg&>(*msg.body));
      return;
    case LhStarMsg::kOpReply: {
      const auto& reply = static_cast<const OpReplyMsg&>(*msg.body);
      auto it = pending_.find(reply.op_id);
      if (it == pending_.end()) {
        // A child of a batch operation (coordinator fallback)?
        if (auto cit = batch_children_.find(reply.op_id);
            cit != batch_children_.end()) {
          const uint64_t batch_op = cit->second;
          batch_children_.erase(cit);
          auto bit = pending_batches_.find(batch_op);
          if (bit == pending_batches_.end()) return;
          PendingBatch& batch = bit->second;
          if (reply.iam.has_value()) {
            image_.Adjust(reply.iam->bucket, reply.iam->level);
          }
          if (reply.code == StatusCode::kOk) {
            ++batch.applied;
          } else if (reply.code == StatusCode::kAlreadyExists) {
            // An earlier attempt (a sub-batch applied just before its
            // server crashed) landed this record.
            ++batch.exists;
          } else {
            ++batch.failed;
          }
          if (batch.outstanding_children > 0) --batch.outstanding_children;
          MaybeCompleteBatch(batch_op);
          return;
        }
        CountDuplicate();  // Late duplicate (chaos or a retry).
        return;
      }
      StatusCode code = reply.code;
      if (retry_.enabled && it->second.attempts > 1) {
        // At-least-once semantics: if an earlier attempt landed, its
        // effect shows up as a constraint error on the retry — fold it
        // back into success.
        if (it->second.op == OpType::kInsert &&
            code == StatusCode::kAlreadyExists) {
          code = StatusCode::kOk;
        }
        if (it->second.op == OpType::kDelete &&
            code == StatusCode::kNotFound) {
          code = StatusCode::kOk;
        }
      }
      OpOutcome outcome;
      outcome.status = code == StatusCode::kOk ? Status::OK()
                                               : Status(code, reply.error);
      outcome.value = reply.value;
      if (reply.iam.has_value()) {
        // Algorithm (A3) plus address-cache refresh.
        ++iam_count_;
        ++forwarded_ops_;
        outcome.was_forwarded = true;
        image_.Adjust(reply.iam->bucket, reply.iam->level);
        if (reply.iam->bucket >= cached_nodes_.size()) {
          cached_nodes_.resize(reply.iam->bucket + 1, kInvalidNode);
        }
        cached_nodes_[reply.iam->bucket] = msg.from;
      }
      CompleteOp(reply.op_id, std::move(outcome));
      return;
    }
    case LhStarMsg::kSurveyRequest: {
      const auto& req = static_cast<const SurveyRequestMsg&>(*msg.body);
      auto reply = std::make_unique<SurveyReplyMsg>();
      reply->survey_id = req.survey_id;
      reply->role = SurveyReplyMsg::Role::kOther;
      Send(msg.from, std::move(reply));
      return;
    }
    case LhStarMsg::kImageReset: {
      const auto& reset = static_cast<const ImageResetMsg&>(*msg.body);
      image_.i = reset.i;
      image_.n = reset.n;
      // Cached physical addresses beyond the new extent are stale.
      if (cached_nodes_.size() > image_.presumed_bucket_count()) {
        cached_nodes_.resize(image_.presumed_bucket_count());
      }
      return;
    }
    case LhStarMsg::kScanReply: {
      const auto& reply = static_cast<const ScanReplyMsg&>(*msg.body);
      auto it = pending_scans_.find(reply.op_id);
      if (it == pending_scans_.end()) return;
      if (reply.coverage_failed) {
        OpOutcome outcome;
        outcome.status =
            Status::Unavailable("scan could not reach every bucket");
        CompleteOp(reply.op_id, std::move(outcome));
        return;
      }
      PendingScan& scan = it->second;
      if (scan.replied.contains(reply.bucket)) {
        CountDuplicate();  // A duplicated reply must not double records.
        return;
      }
      scan.replied[reply.bucket] = reply.level;
      for (const auto& rec : reply.records) scan.records.push_back(rec);
      if (!scan.deterministic) return;  // Completed via time-out upstream.
      if (ScanCoverageComplete(scan)) {
        OpOutcome outcome;
        outcome.status = Status::OK();
        outcome.scan_records = std::move(scan.records);
        CompleteOp(reply.op_id, std::move(outcome));
      }
      return;
    }
    default:
      LHRS_LOG(Fatal) << "client: unhandled message kind "
                      << msg.body->kind();
  }
}

bool ClientNode::ScanCoverageComplete(const PendingScan& scan) const {
  // Deterministic termination (section 2.1): with i = min(j_m) and
  // n = min{m : j_m = i}, the file has M = n + 2^i * N buckets; terminate
  // when every bucket 0..M-1 has replied.
  if (scan.replied.empty()) return false;
  Level min_level = ~Level{0};
  for (const auto& [bucket, level] : scan.replied) {
    min_level = std::min(min_level, level);
  }
  BucketNo n = 0;
  bool found = false;
  for (const auto& [bucket, level] : scan.replied) {
    if (level == min_level) {
      n = bucket;
      found = true;
      break;  // std::map iterates in bucket order: first hit is min.
    }
  }
  LHRS_CHECK(found);
  const BucketNo expected =
      n + (static_cast<BucketNo>(image_.initial_buckets) << min_level);
  if (scan.replied.size() < expected) return false;
  for (BucketNo b = 0; b < expected; ++b) {
    if (!scan.replied.contains(b)) return false;
  }
  return true;
}

void ClientNode::HandleDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kOpRequest: {
      // Section 2.4/2.8: the server did not answer; notify the
      // coordinator, which completes the operation (recovering first when
      // the file has an availability layer).
      const auto& req = static_cast<const OpRequestMsg&>(*msg.body);
      auto it = pending_.find(req.op_id);
      if (it == pending_.end()) return;
      // Evict the stale cache entry; the next attempt re-resolves.
      if (req.intended_bucket < cached_nodes_.size()) {
        cached_nodes_[req.intended_bucket] = kInvalidNode;
      }
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = req.intended_bucket;
      Send(ctx_->coordinator, std::move(report));

      if (retry_.enabled) {
        // The bounce is a definite loss signal: retry immediately rather
        // than waiting out the attempt timer (RetryOp re-arms the
        // deadline, superseding it).
        RetryOp(req.op_id, it->second);
        return;
      }

      auto bounce = std::make_unique<ClientOpViaCoordinatorMsg>();
      bounce->op = req.op;
      bounce->op_id = req.op_id;
      bounce->client = id();
      bounce->intended_bucket = req.intended_bucket;
      bounce->key = req.key;
      bounce->value = req.value;
      Send(ctx_->coordinator, std::move(bounce));
      return;
    }
    case LhStarMsg::kInsertBatch: {
      // The whole sub-batch bounced (server crashed / unreachable):
      // report it and fall back to per-record delivery via the
      // coordinator, which recovers the bucket first when the scheme can.
      const auto& batch_msg = static_cast<const InsertBatchMsg&>(*msg.body);
      auto bit = pending_batches_.find(batch_msg.op_id);
      if (bit == pending_batches_.end()) return;
      PendingBatch& batch = bit->second;
      auto oit = batch.outstanding.find(batch_msg.seq);
      if (oit == batch.outstanding.end()) return;  // Already settled.
      PendingSubBatch sub = std::move(oit->second);
      batch.outstanding.erase(oit);
      if (batch_msg.intended_bucket < cached_nodes_.size()) {
        cached_nodes_[batch_msg.intended_bucket] = kInvalidNode;
      }
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = batch_msg.intended_bucket;
      Send(ctx_->coordinator, std::move(report));
      for (const WireRecord& rec : sub.records) {
        SendBatchChildViaCoordinator(batch_msg.op_id, batch, rec);
      }
      MaybeCompleteBatch(batch_msg.op_id);
      return;
    }
    case LhStarMsg::kScanRequest: {
      // A scan with deterministic termination blocks on an unavailable
      // bucket; surface that as kUnavailable.
      const auto& req = static_cast<const ScanRequestMsg&>(*msg.body);
      if (!pending_scans_.contains(req.op_id)) return;
      OpOutcome outcome;
      outcome.status =
          Status::Unavailable("scan could not reach every bucket");
      CompleteOp(req.op_id, std::move(outcome));
      return;
    }
    default:
      return;
  }
}

}  // namespace lhrs
