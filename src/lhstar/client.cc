#include "lhstar/client.h"

#include <utility>

#include "common/logging.h"
#include "net/network.h"

namespace lhrs {

ClientNode::ClientNode(std::shared_ptr<SystemContext> ctx)
    : ctx_(std::move(ctx)) {
  image_.initial_buckets = ctx_->config.initial_buckets;
}

NodeId ClientNode::ResolveNode(BucketNo bucket) {
  if (bucket < cached_nodes_.size() &&
      cached_nodes_[bucket] != kInvalidNode) {
    return cached_nodes_[bucket];
  }
  const NodeId node = ctx_->allocation.Lookup(bucket);
  if (bucket >= cached_nodes_.size()) {
    cached_nodes_.resize(bucket + 1, kInvalidNode);
  }
  cached_nodes_[bucket] = node;
  return node;
}

uint64_t ClientNode::StartOp(OpType op, Key key, Bytes value) {
  const uint64_t op_id = next_op_id_++;
  const BucketNo a = image_.Address(key);  // Algorithm (A1) on the image.
  pending_[op_id] = PendingOp{op, key, value, a};

  auto req = std::make_unique<OpRequestMsg>();
  req->op = op;
  req->op_id = op_id;
  req->client = id();
  req->intended_bucket = a;
  req->key = key;
  req->value = std::move(value);
  Send(ResolveNode(a), std::move(req));
  return op_id;
}

uint64_t ClientNode::StartScan(ScanPredicate predicate, bool deterministic) {
  const uint64_t op_id = next_op_id_++;
  pending_scans_[op_id] = PendingScan{deterministic, {}, {}};

  // One copy to every bucket of the client's image, each tagged with the
  // level the image presumes for it; server-side forwarding covers buckets
  // the image does not know (exactly once).
  const BucketNo extent = image_.presumed_bucket_count();
  FileState presumed{image_.i, image_.n, image_.initial_buckets};
  std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch;
  batch.reserve(extent);
  for (BucketNo a = 0; a < extent; ++a) {
    auto req = std::make_unique<ScanRequestMsg>();
    req->op_id = op_id;
    req->client = id();
    req->attached_level = presumed.BucketLevel(a);
    req->predicate = predicate;
    req->deterministic = deterministic;
    // Scans resolve through the authoritative allocation (the multicast
    // group membership); key-addressed ops use the cache.
    batch.emplace_back(ctx_->allocation.Lookup(a), std::move(req));
  }
  network()->Multicast(id(), std::move(batch));
  return op_id;
}

Result<OpOutcome> ClientNode::TakeResult(uint64_t op_id) {
  auto it = done_.find(op_id);
  if (it == done_.end()) {
    return Status::Internal("operation " + std::to_string(op_id) +
                            " not finished");
  }
  OpOutcome out = std::move(it->second);
  done_.erase(it);
  return out;
}

void ClientNode::FinishProbabilisticScan(uint64_t op_id) {
  auto it = pending_scans_.find(op_id);
  if (it == pending_scans_.end()) return;
  LHRS_CHECK(!it->second.deterministic);
  OpOutcome outcome;
  outcome.status = Status::OK();
  outcome.scan_records = std::move(it->second.records);
  CompleteOp(op_id, std::move(outcome));
}

void ClientNode::ResetImage() {
  image_ = ClientImage{};
  image_.initial_buckets = ctx_->config.initial_buckets;
  cached_nodes_.clear();
}

void ClientNode::CompleteOp(uint64_t op_id, OpOutcome outcome) {
  pending_.erase(op_id);
  pending_scans_.erase(op_id);
  done_[op_id] = std::move(outcome);
}

void ClientNode::HandleMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kOpReply: {
      const auto& reply = static_cast<const OpReplyMsg&>(*msg.body);
      if (!pending_.contains(reply.op_id)) return;  // Late duplicate.
      OpOutcome outcome;
      outcome.status = reply.code == StatusCode::kOk
                           ? Status::OK()
                           : Status(reply.code, reply.error);
      outcome.value = reply.value;
      if (reply.iam.has_value()) {
        // Algorithm (A3) plus address-cache refresh.
        ++iam_count_;
        ++forwarded_ops_;
        outcome.was_forwarded = true;
        image_.Adjust(reply.iam->bucket, reply.iam->level);
        if (reply.iam->bucket >= cached_nodes_.size()) {
          cached_nodes_.resize(reply.iam->bucket + 1, kInvalidNode);
        }
        cached_nodes_[reply.iam->bucket] = msg.from;
      }
      CompleteOp(reply.op_id, std::move(outcome));
      return;
    }
    case LhStarMsg::kSurveyRequest: {
      const auto& req = static_cast<const SurveyRequestMsg&>(*msg.body);
      auto reply = std::make_unique<SurveyReplyMsg>();
      reply->survey_id = req.survey_id;
      reply->role = SurveyReplyMsg::Role::kOther;
      Send(msg.from, std::move(reply));
      return;
    }
    case LhStarMsg::kImageReset: {
      const auto& reset = static_cast<const ImageResetMsg&>(*msg.body);
      image_.i = reset.i;
      image_.n = reset.n;
      // Cached physical addresses beyond the new extent are stale.
      if (cached_nodes_.size() > image_.presumed_bucket_count()) {
        cached_nodes_.resize(image_.presumed_bucket_count());
      }
      return;
    }
    case LhStarMsg::kScanReply: {
      const auto& reply = static_cast<const ScanReplyMsg&>(*msg.body);
      auto it = pending_scans_.find(reply.op_id);
      if (it == pending_scans_.end()) return;
      if (reply.coverage_failed) {
        OpOutcome outcome;
        outcome.status =
            Status::Unavailable("scan could not reach every bucket");
        CompleteOp(reply.op_id, std::move(outcome));
        return;
      }
      PendingScan& scan = it->second;
      scan.replied[reply.bucket] = reply.level;
      for (const auto& rec : reply.records) scan.records.push_back(rec);
      if (!scan.deterministic) return;  // Completed via time-out upstream.
      if (ScanCoverageComplete(scan)) {
        OpOutcome outcome;
        outcome.status = Status::OK();
        outcome.scan_records = std::move(scan.records);
        CompleteOp(reply.op_id, std::move(outcome));
      }
      return;
    }
    default:
      LHRS_LOG(Fatal) << "client: unhandled message kind "
                      << msg.body->kind();
  }
}

bool ClientNode::ScanCoverageComplete(const PendingScan& scan) const {
  // Deterministic termination (section 2.1): with i = min(j_m) and
  // n = min{m : j_m = i}, the file has M = n + 2^i * N buckets; terminate
  // when every bucket 0..M-1 has replied.
  if (scan.replied.empty()) return false;
  Level min_level = ~Level{0};
  for (const auto& [bucket, level] : scan.replied) {
    min_level = std::min(min_level, level);
  }
  BucketNo n = 0;
  bool found = false;
  for (const auto& [bucket, level] : scan.replied) {
    if (level == min_level) {
      n = bucket;
      found = true;
      break;  // std::map iterates in bucket order: first hit is min.
    }
  }
  LHRS_CHECK(found);
  const BucketNo expected =
      n + (static_cast<BucketNo>(image_.initial_buckets) << min_level);
  if (scan.replied.size() < expected) return false;
  for (BucketNo b = 0; b < expected; ++b) {
    if (!scan.replied.contains(b)) return false;
  }
  return true;
}

void ClientNode::HandleDeliveryFailure(const Message& msg) {
  switch (msg.body->kind()) {
    case LhStarMsg::kOpRequest: {
      // Section 2.4/2.8: the server did not answer; notify the
      // coordinator, which completes the operation (recovering first when
      // the file has an availability layer).
      const auto& req = static_cast<const OpRequestMsg&>(*msg.body);
      if (!pending_.contains(req.op_id)) return;
      // Evict the stale cache entry; the next attempt re-resolves.
      if (req.intended_bucket < cached_nodes_.size()) {
        cached_nodes_[req.intended_bucket] = kInvalidNode;
      }
      auto report = std::make_unique<UnavailableReportMsg>();
      report->node = msg.to;
      report->bucket = req.intended_bucket;
      Send(ctx_->coordinator, std::move(report));

      auto bounce = std::make_unique<ClientOpViaCoordinatorMsg>();
      bounce->op = req.op;
      bounce->op_id = req.op_id;
      bounce->client = id();
      bounce->intended_bucket = req.intended_bucket;
      bounce->key = req.key;
      bounce->value = req.value;
      Send(ctx_->coordinator, std::move(bounce));
      return;
    }
    case LhStarMsg::kScanRequest: {
      // A scan with deterministic termination blocks on an unavailable
      // bucket; surface that as kUnavailable.
      const auto& req = static_cast<const ScanRequestMsg&>(*msg.body);
      if (!pending_scans_.contains(req.op_id)) return;
      OpOutcome outcome;
      outcome.status =
          Status::Unavailable("scan could not reach every bucket");
      CompleteOp(req.op_id, std::move(outcome));
      return;
    }
    default:
      return;
  }
}

}  // namespace lhrs
