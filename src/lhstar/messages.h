#ifndef LHRS_LHSTAR_MESSAGES_H_
#define LHRS_LHSTAR_MESSAGES_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/status.h"
#include "lh/lh_math.h"
#include "net/message.h"

namespace lhrs {

/// Client-visible file operations.
enum class OpType : uint8_t { kInsert, kSearch, kUpdate, kDelete };

const char* OpTypeName(OpType op);

/// A record as shipped between nodes (splits, recovery, scan replies).
/// `tag` is an opaque per-record attachment for availability layers that
/// must travel with moved records (LH*g carries the immutable record-group
/// key in it); 0 when unused. The payload is a shared view: moving a
/// bucketful of records copies no bytes, only references into the sender's
/// segments.
struct WireRecord {
  Key key = 0;
  uint64_t tag = 0;
  BufferView value;

  /// key + tag + length prefix + payload, matching the transport codec
  /// (see src/transport/wire_lhstar.cc) byte for byte.
  size_t ByteSize() const { return 20 + value.size(); }
  bool operator==(const WireRecord&) const = default;
};

/// Message kinds of the LH* substrate (range [100, 200)).
struct LhStarMsg {
  static constexpr int kOpRequest = MessageKindRange::kLhStarBase + 0;
  static constexpr int kOpReply = MessageKindRange::kLhStarBase + 1;
  static constexpr int kOverflowReport = MessageKindRange::kLhStarBase + 2;
  static constexpr int kSplitOrder = MessageKindRange::kLhStarBase + 3;
  static constexpr int kMoveRecords = MessageKindRange::kLhStarBase + 4;
  static constexpr int kSplitDone = MessageKindRange::kLhStarBase + 5;
  static constexpr int kScanRequest = MessageKindRange::kLhStarBase + 6;
  static constexpr int kScanReply = MessageKindRange::kLhStarBase + 7;
  static constexpr int kClientOpViaCoordinator =
      MessageKindRange::kLhStarBase + 8;
  static constexpr int kUnavailableReport = MessageKindRange::kLhStarBase + 9;
  static constexpr int kStateScanRequest = MessageKindRange::kLhStarBase + 10;
  static constexpr int kStateScanReply = MessageKindRange::kLhStarBase + 11;
  static constexpr int kSelfCheckRequest = MessageKindRange::kLhStarBase + 12;
  static constexpr int kSelfCheckReply = MessageKindRange::kLhStarBase + 13;
  static constexpr int kUnderflowReport = MessageKindRange::kLhStarBase + 14;
  static constexpr int kMergeOut = MessageKindRange::kLhStarBase + 15;
  static constexpr int kMergeRecords = MessageKindRange::kLhStarBase + 16;
  static constexpr int kMergeDone = MessageKindRange::kLhStarBase + 17;
  static constexpr int kImageReset = MessageKindRange::kLhStarBase + 18;
  static constexpr int kSurveyRequest = MessageKindRange::kLhStarBase + 19;
  static constexpr int kSurveyReply = MessageKindRange::kLhStarBase + 20;
  static constexpr int kInsertBatch = MessageKindRange::kLhStarBase + 21;
  static constexpr int kInsertBatchReply = MessageKindRange::kLhStarBase + 22;
};

/// Registers display names for all LH* message kinds (idempotent).
void RegisterLhStarMessageNames();

/// A key-addressed operation, sent client->server and forwarded
/// server->server per algorithm (A2). Carries the bucket number the sender
/// intended to reach so a displaced/reused server can detect the mismatch
/// (paper section 2.8).
struct OpRequestMsg : MessageBody {
  OpType op = OpType::kSearch;
  uint64_t op_id = 0;
  NodeId client = kInvalidNode;   ///< Where the final reply goes.
  BucketNo intended_bucket = 0;
  Key key = 0;
  BufferView value;               ///< Insert/update payload (shared view).
  int hops = 0;                   ///< Forwarding count; >0 triggers an IAM.

  int kind() const override { return LhStarMsg::kOpRequest; }
  size_t ByteSize() const override { return 40 + value.size(); }
};

/// Image-adjustment payload piggybacked on replies after forwarding: the
/// level of the correct bucket (the paper's IAM content).
struct IamInfo {
  BucketNo bucket = 0;
  Level level = 0;
};

/// Reply for one operation, server->client (or coordinator->client in
/// degraded mode).
struct OpReplyMsg : MessageBody {
  uint64_t op_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string error;
  BufferView value;               ///< Search result payload (shared view).
  std::optional<IamInfo> iam;

  int kind() const override { return LhStarMsg::kOpReply; }
  size_t ByteSize() const override {
    return 24 + value.size() + error.size() + (iam.has_value() ? 8 : 0);
  }
};

/// Server->coordinator: bucket exceeded its capacity.
struct OverflowReportMsg : MessageBody {
  BucketNo bucket = 0;
  size_t record_count = 0;

  int kind() const override { return LhStarMsg::kOverflowReport; }
  size_t ByteSize() const override { return 16; }
};

/// Coordinator->server: split your bucket; send movers to `new_node`.
struct SplitOrderMsg : MessageBody {
  BucketNo new_bucket = 0;
  NodeId new_node = kInvalidNode;
  Level new_level = 0;  ///< Level of both halves after the split.

  int kind() const override { return LhStarMsg::kSplitOrder; }
  size_t ByteSize() const override { return 16; }
};

/// Splitting server -> new server: the relocated records (one bulk
/// transfer; its byte size drives the simulated time of the split).
struct MoveRecordsMsg : MessageBody {
  BucketNo bucket = 0;  ///< Bucket number of the receiving (new) bucket.
  Level level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhStarMsg::kMoveRecords; }
  size_t ByteSize() const override {
    size_t n = 16;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// New server -> coordinator: split finished; next split may proceed.
struct SplitDoneMsg : MessageBody {
  BucketNo bucket = 0;

  int kind() const override { return LhStarMsg::kSplitDone; }
  size_t ByteSize() const override { return 8; }
};

/// Predicate of a scan: matches records by a byte substring of the value
/// (empty pattern matches everything), or by an arbitrary `custom`
/// function — the simulated form of the shipped selection code real SDDS
/// scans carry. The scan *protocol* (coverage + termination) is what the
/// experiments exercise.
struct ScanPredicate {
  Bytes contains;
  /// Structured key-range selection (inclusive bounds). Unlike `custom`
  /// this travels on the wire: the request frame carries a predicate
  /// version byte, so old decoders still read new contains-only frames and
  /// new decoders read old frames (which simply have no range).
  bool has_key_range = false;
  Key key_min = 0;
  Key key_max = 0;
  std::function<bool(Key key, std::span<const uint8_t> value)> custom;

  bool Matches(Key key, std::span<const uint8_t> value) const;
  size_t ByteSize() const {
    return 16 + contains.size() + (has_key_range ? 16 : 0);
  }
};

/// Client->server (multicast) and server->server (coverage forwarding).
/// `attached_level` implements the exactly-once coverage algorithm: a bucket
/// at level j receiving level l forwards copies to its children created at
/// levels l+1..j.
struct ScanRequestMsg : MessageBody {
  uint64_t op_id = 0;
  NodeId client = kInvalidNode;
  Level attached_level = 0;
  ScanPredicate predicate;
  bool deterministic = true;  ///< All buckets reply (vs only matching ones).

  int kind() const override { return LhStarMsg::kScanRequest; }
  size_t ByteSize() const override { return 24 + predicate.ByteSize(); }
};

/// Server->client scan answer with the bucket's matching records plus the
/// (m, j_m) pair the deterministic-termination check needs.
struct ScanReplyMsg : MessageBody {
  uint64_t op_id = 0;
  BucketNo bucket = 0;
  Level level = 0;
  /// Set when this server could not forward coverage to a child bucket:
  /// the deterministic scan terminates abnormally (section 2.7).
  bool coverage_failed = false;
  std::vector<WireRecord> records;

  int kind() const override { return LhStarMsg::kScanReply; }
  size_t ByteSize() const override {
    size_t n = 24;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Client->coordinator: an operation whose target server did not answer
/// (or a forwarding bucket failed). The coordinator owns the op from here
/// (paper section 2.8).
struct ClientOpViaCoordinatorMsg : MessageBody {
  OpType op = OpType::kSearch;
  uint64_t op_id = 0;
  NodeId client = kInvalidNode;
  BucketNo intended_bucket = 0;
  Key key = 0;
  BufferView value;

  int kind() const override { return LhStarMsg::kClientOpViaCoordinator; }
  size_t ByteSize() const override { return 40 + value.size(); }
};

/// Any party -> coordinator: node `node` (believed to carry `bucket`) is
/// unreachable.
struct UnavailableReportMsg : MessageBody {
  NodeId node = kInvalidNode;
  BucketNo bucket = 0;
  bool is_parity = false;   ///< LH*RS parity bucket vs data bucket.
  uint32_t group = 0;       ///< Parity: bucket group; data: unused.
  uint32_t parity_index = 0;

  int kind() const override { return LhStarMsg::kUnavailableReport; }
  size_t ByteSize() const override { return 24; }
};

/// Coordinator->buckets: report your (m, j_m) for file-state recovery (A6).
struct StateScanRequestMsg : MessageBody {
  uint64_t op_id = 0;

  int kind() const override { return LhStarMsg::kStateScanRequest; }
  size_t ByteSize() const override { return 8; }
};

struct StateScanReplyMsg : MessageBody {
  uint64_t op_id = 0;
  BucketNo bucket = 0;
  Level level = 0;

  int kind() const override { return LhStarMsg::kStateScanReply; }
  size_t ByteSize() const override { return 16; }
};

/// Server -> coordinator: bucket occupancy fell below the merge trigger
/// (file shrinking, the paper's section 4.3 "bucket merge" variation).
struct UnderflowReportMsg : MessageBody {
  BucketNo bucket = 0;
  size_t record_count = 0;

  int kind() const override { return LhStarMsg::kUnderflowReport; }
  size_t ByteSize() const override { return 16; }
};

/// Coordinator -> the last bucket: merge yourself back into your parent
/// (inverse of a split).
struct MergeOutMsg : MessageBody {
  BucketNo parent_bucket = 0;
  NodeId parent_node = kInvalidNode;
  Level parent_new_level = 0;

  int kind() const override { return LhStarMsg::kMergeOut; }
  size_t ByteSize() const override { return 16; }
};

/// Merging bucket -> parent: all of its records (one bulk transfer).
struct MergeRecordsMsg : MessageBody {
  BucketNo parent_bucket = 0;
  Level parent_new_level = 0;
  std::vector<WireRecord> records;

  int kind() const override { return LhStarMsg::kMergeRecords; }
  size_t ByteSize() const override {
    size_t n = 16;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Parent -> coordinator: merge absorbed; restructuring may continue.
struct MergeDoneMsg : MessageBody {
  BucketNo bucket = 0;

  int kind() const override { return LhStarMsg::kMergeDone; }
  size_t ByteSize() const override { return 8; }
};

/// Coordinator -> client: authoritative file state. Sent when a client
/// addressed a bucket beyond the (shrunk) file — IAMs only ever advance an
/// image, so shrinking needs an explicit reset.
struct ImageResetMsg : MessageBody {
  Level i = 0;
  BucketNo n = 0;

  int kind() const override { return LhStarMsg::kImageReset; }
  size_t ByteSize() const override { return 12; }
};

/// Restarted coordinator -> every node: identify yourself. The replies
/// rebuild the coordinator's soft state: the file state (i, n) via the
/// (A6) closed form, the allocation table, and (for availability layers)
/// the parity directory. Every node answers, so the survey terminates
/// deterministically against the known node count.
struct SurveyRequestMsg : MessageBody {
  uint64_t survey_id = 0;

  int kind() const override { return LhStarMsg::kSurveyRequest; }
  size_t ByteSize() const override { return 8; }
};

struct SurveyReplyMsg : MessageBody {
  uint64_t survey_id = 0;
  enum class Role : uint8_t { kOther, kDataBucket, kParityBucket };
  Role role = Role::kOther;
  bool decommissioned = false;
  // Data buckets:
  BucketNo bucket = 0;
  Level level = 0;
  uint64_t record_count = 0;
  // Parity buckets (availability layers):
  uint32_t group = 0;
  uint32_t parity_index = 0;
  uint32_t k = 0;

  int kind() const override { return LhStarMsg::kSurveyReply; }
  size_t ByteSize() const override { return 40; }
};

/// Client -> server: one bulk-load sub-batch of inserts, all addressed to
/// `intended_bucket` under the client's image. The server applies the
/// records that hash to it and returns the rest in the reply, so a batch
/// never fans out into per-record forwarding; the client re-groups
/// rejected records under its (IAM-adjusted) image and resends. `seq`
/// identifies the sub-batch within the client's batch operation `op_id`.
struct InsertBatchMsg : MessageBody {
  uint64_t op_id = 0;
  uint64_t seq = 0;
  NodeId client = kInvalidNode;
  BucketNo intended_bucket = 0;
  uint32_t attempt = 1;  ///< Re-group generation (bounded by the client).
  std::vector<WireRecord> records;

  int kind() const override { return LhStarMsg::kInsertBatch; }
  size_t ByteSize() const override {
    size_t n = 32;
    for (const auto& r : records) n += r.ByteSize();
    return n;
  }
};

/// Server -> client: outcome of one bulk-load sub-batch. `bucket`/`level`
/// double as the IAM of the replying bucket; `rejected` holds the records
/// that hash elsewhere under the server's (authoritative) level. With
/// `bounced` set the server is displaced or stood down and could not judge
/// the records at all — the client re-routes them via the coordinator.
struct InsertBatchReplyMsg : MessageBody {
  uint64_t op_id = 0;
  uint64_t seq = 0;
  BucketNo bucket = 0;
  Level level = 0;
  uint32_t applied = 0;
  uint32_t exists = 0;  ///< Duplicate keys (already resident).
  bool bounced = false;
  std::vector<WireRecord> rejected;

  int kind() const override { return LhStarMsg::kInsertBatchReply; }
  size_t ByteSize() const override {
    size_t n = 40;
    for (const auto& r : rejected) n += r.ByteSize();
    return n;
  }
};

/// Restored server -> coordinator: "am I still bucket m?" (self-detected
/// recovery, paper section 2.5.4).
struct SelfCheckRequestMsg : MessageBody {
  BucketNo bucket = 0;

  int kind() const override { return LhStarMsg::kSelfCheckRequest; }
  size_t ByteSize() const override { return 8; }
};

/// Coordinator -> restored server: keep serving, or stand down as a hot
/// spare (your bucket was recreated at `replacement`).
struct SelfCheckReplyMsg : MessageBody {
  BucketNo bucket = 0;
  bool still_owner = false;
  NodeId replacement = kInvalidNode;

  int kind() const override { return LhStarMsg::kSelfCheckReply; }
  size_t ByteSize() const override { return 16; }
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_MESSAGES_H_
