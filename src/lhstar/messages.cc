#include "lhstar/messages.h"

#include <algorithm>

#include "net/stats.h"

namespace lhrs {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kInsert:
      return "Insert";
    case OpType::kSearch:
      return "Search";
    case OpType::kUpdate:
      return "Update";
    case OpType::kDelete:
      return "Delete";
  }
  return "?";
}

void RegisterLhStarMessageNames() {
  RegisterMessageKindName(LhStarMsg::kOpRequest, "lhstar.OpRequest");
  RegisterMessageKindName(LhStarMsg::kOpReply, "lhstar.OpReply");
  RegisterMessageKindName(LhStarMsg::kOverflowReport,
                          "lhstar.OverflowReport");
  RegisterMessageKindName(LhStarMsg::kSplitOrder, "lhstar.SplitOrder");
  RegisterMessageKindName(LhStarMsg::kMoveRecords, "lhstar.MoveRecords");
  RegisterMessageKindName(LhStarMsg::kSplitDone, "lhstar.SplitDone");
  RegisterMessageKindName(LhStarMsg::kScanRequest, "lhstar.ScanRequest");
  RegisterMessageKindName(LhStarMsg::kScanReply, "lhstar.ScanReply");
  RegisterMessageKindName(LhStarMsg::kClientOpViaCoordinator,
                          "lhstar.ClientOpViaCoordinator");
  RegisterMessageKindName(LhStarMsg::kUnavailableReport,
                          "lhstar.UnavailableReport");
  RegisterMessageKindName(LhStarMsg::kStateScanRequest,
                          "lhstar.StateScanRequest");
  RegisterMessageKindName(LhStarMsg::kStateScanReply,
                          "lhstar.StateScanReply");
  RegisterMessageKindName(LhStarMsg::kSelfCheckRequest,
                          "lhstar.SelfCheckRequest");
  RegisterMessageKindName(LhStarMsg::kSelfCheckReply,
                          "lhstar.SelfCheckReply");
  RegisterMessageKindName(LhStarMsg::kUnderflowReport,
                          "lhstar.UnderflowReport");
  RegisterMessageKindName(LhStarMsg::kMergeOut, "lhstar.MergeOut");
  RegisterMessageKindName(LhStarMsg::kMergeRecords, "lhstar.MergeRecords");
  RegisterMessageKindName(LhStarMsg::kMergeDone, "lhstar.MergeDone");
  RegisterMessageKindName(LhStarMsg::kImageReset, "lhstar.ImageReset");
  RegisterMessageKindName(LhStarMsg::kSurveyRequest, "lhstar.SurveyRequest");
  RegisterMessageKindName(LhStarMsg::kSurveyReply, "lhstar.SurveyReply");
  RegisterMessageKindName(LhStarMsg::kInsertBatch, "lhstar.InsertBatch");
  RegisterMessageKindName(LhStarMsg::kInsertBatchReply,
                          "lhstar.InsertBatchReply");
}

bool ScanPredicate::Matches(Key key, std::span<const uint8_t> value) const {
  if (has_key_range && (key < key_min || key > key_max)) return false;
  if (custom) return custom(key, value);
  if (contains.empty()) return true;
  return std::search(value.begin(), value.end(), contains.begin(),
                     contains.end()) != value.end();
}

}  // namespace lhrs
