#ifndef LHRS_LHSTAR_CLIENT_H_
#define LHRS_LHSTAR_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "lh/lh_math.h"
#include "lhstar/messages.h"
#include "lhstar/system.h"
#include "net/node.h"

namespace lhrs {

namespace telemetry {
class Counter;
class Histogram;
}  // namespace telemetry

/// Client-side resilience knobs for lossy networks (the chaos engine's
/// territory). Disabled by default: in a fault-free simulation the only
/// failure signal is the delivery-failure bounce, which the base protocol
/// already handles, and retry timers would change message counts.
///
/// With the policy enabled a key-addressed operation becomes at-least-once:
/// attempts 1..max_direct_attempts go straight to the addressed bucket
/// (each armed with a timeout of request_timeout_us plus exponential
/// backoff with +/- jitter), later attempts escalate to the coordinator,
/// whose degraded-read path answers even with the data bucket down. The
/// duplicate deliveries that retries can produce are suppressed by op id on
/// the reply path, and retried inserts/deletes map kAlreadyExists/kNotFound
/// back to success (the earlier attempt landed).
struct ClientRetryPolicy {
  bool enabled = false;
  uint32_t max_direct_attempts = 3;  ///< Sends to the bucket itself.
  uint32_t max_total_attempts = 6;   ///< Including coordinator escalations.
  SimTime request_timeout_us = 6000; ///< Lost-reply detection per attempt.
  SimTime base_backoff_us = 500;     ///< Backoff before attempt 2.
  SimTime max_backoff_us = 8000;     ///< Exponential growth cap.
  double jitter = 0.5;               ///< Backoff spread: b * (1 +/- jitter).
  uint64_t seed = 42;                ///< Jitter stream (deterministic).
};

/// Completed outcome of a client operation.
struct OpOutcome {
  Status status;
  BufferView value;                  ///< Search result payload (shared).
  std::vector<WireRecord> scan_records;
  bool was_forwarded = false;        ///< An IAM arrived with the reply.
  // Batch operations (StartInsertBatch) report per-record tallies.
  uint32_t batch_applied = 0;
  uint32_t batch_exists = 0;   ///< Duplicate keys (already resident).
  uint32_t batch_failed = 0;
};

/// An LH* application client. Autonomous: carries its own image (i', n')
/// of the file state — initially (0, 0), i.e. "the file never grew" — and
/// converges through IAMs (algorithm A3).
///
/// The client also caches physical addresses of buckets it has talked to;
/// a recovery that moves a bucket to a spare leaves this cache stale, which
/// exercises the displaced-bucket protocol of section 2.8.
///
/// Operations are asynchronous: Start*() returns an op id, the simulation
/// is run (Network::RunUntilIdle), then TakeResult() yields the outcome.
class ClientNode : public Node {
 public:
  explicit ClientNode(std::shared_ptr<SystemContext> ctx);

  void HandleMessage(const Message& msg) override;
  void HandleDeliveryFailure(const Message& msg) override;
  const char* role() const override { return "client"; }

  /// Starts a key-addressed operation; value applies to insert/update.
  uint64_t StartOp(OpType op, Key key, BufferView value = {});

  /// Starts a bulk-load batch: the records are grouped per target bucket
  /// under the client's image and shipped as one InsertBatchMsg per
  /// bucket. Records a stale image sent astray come back in the reply
  /// (with the IAM) and are re-grouped and resent; sub-batches that bounce
  /// off a displaced or crashed server fall back to per-record delivery
  /// via the coordinator. Completes (one op id, one outcome carrying the
  /// batch_* tallies) when every record is applied, a known duplicate, or
  /// failed. `records` must be non-empty.
  uint64_t StartInsertBatch(std::vector<WireRecord> records);

  /// Starts a parallel scan. With `deterministic` termination every bucket
  /// replies and the client verifies full coverage; otherwise only
  /// matching buckets reply (the caller then relies on the run-until-idle
  /// simulation as the paper's time-out).
  uint64_t StartScan(ScanPredicate predicate, bool deterministic = true);

  bool IsDone(uint64_t op_id) const { return done_.contains(op_id); }

  /// Declares a probabilistic-termination scan finished (the driver's
  /// time-out fired): whatever replies arrived become the result.
  void FinishProbabilisticScan(uint64_t op_id);

  /// Returns and removes the outcome of a finished operation.
  Result<OpOutcome> TakeResult(uint64_t op_id);

  const ClientImage& image() const { return image_; }

  /// Forgets everything learned (image and address cache): the client
  /// behaves like a brand-new one. Used by the image-convergence bench.
  void ResetImage();

  /// Number of IAMs received so far (image-adjustment messages).
  uint64_t iam_count() const { return iam_count_; }
  /// Number of operations that needed at least one forwarding hop.
  uint64_t forwarded_ops() const { return forwarded_ops_; }

  /// Installs (or, with policy.enabled false, removes) the retry layer.
  /// Applies to operations started afterwards.
  void SetRetryPolicy(ClientRetryPolicy policy);
  const ClientRetryPolicy& retry_policy() const { return retry_; }

  /// Resilience counters (mirrored to telemetry when enabled, as
  /// client.retries / client.escalations / client.duplicates_suppressed).
  uint64_t retries() const { return retries_; }
  uint64_t escalations() const { return escalations_; }
  uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }

  /// Invoked with the op id as the last action of every op completion
  /// (replies, retries-exhausted, scan termination alike). The callback
  /// runs inside event processing and may start new operations; it must
  /// not destroy the client. One callback per client; facades use it to
  /// surface completions to open-loop drivers.
  using OpCompleteCallback = std::function<void(uint64_t op_id)>;
  void SetOnOpComplete(OpCompleteCallback callback) {
    on_op_complete_ = std::move(callback);
  }

 private:
  struct PendingOp {
    OpType op;
    Key key = 0;
    BufferView value;  ///< Shared across attempts; never re-copied.
    BucketNo sent_to_bucket = 0;
    uint32_t attempts = 1;
    SimTime deadline = 0;  ///< Current attempt's timeout instant.
    SimTime start_us = 0;  ///< Send time of the first attempt.
  };

  struct PendingScan {
    bool deterministic = true;
    std::map<BucketNo, Level> replied;
    std::vector<WireRecord> records;
    SimTime start_us = 0;
  };

  struct PendingSubBatch {
    std::vector<WireRecord> records;  ///< As sent (views; no copies).
    uint32_t attempt = 1;
  };

  struct PendingBatch {
    size_t total = 0;
    uint32_t applied = 0;
    uint32_t exists = 0;
    uint32_t failed = 0;
    /// In-flight sub-batches by seq; erased on first reply (dedup).
    std::map<uint64_t, PendingSubBatch> outstanding;
    /// Records re-routed per-record via the coordinator (children).
    size_t outstanding_children = 0;
    SimTime start_us = 0;
  };

  /// Physical address the client uses for `bucket`: its cached entry if it
  /// has one, else the authoritative table (modelling the allocation-table
  /// propagation to new clients), which is then cached.
  NodeId ResolveNode(BucketNo bucket);

  void CompleteOp(uint64_t op_id, OpOutcome outcome);
  bool ScanCoverageComplete(const PendingScan& scan) const;

  /// Ships one sub-batch of `op_id` to `bucket` (as addressed under the
  /// current image).
  void SendSubBatch(uint64_t op_id, PendingBatch& batch, BucketNo bucket,
                    std::vector<WireRecord> records, uint32_t attempt);
  /// Re-routes one record of a batch via the coordinator as an individual
  /// child insert (crash / displaced-bucket fallback).
  void SendBatchChildViaCoordinator(uint64_t batch_op_id, PendingBatch& batch,
                                    const WireRecord& rec);
  /// Completes the batch op when nothing is outstanding any more.
  void MaybeCompleteBatch(uint64_t op_id);
  void HandleInsertBatchReply(const InsertBatchReplyMsg& reply);

  /// Timer callback (HandleTimer): attempts are tracked by op id.
  void HandleTimer(uint64_t timer_id) override;

  /// Re-sends a timed-out / bounced operation: directly while direct
  /// attempts remain, then via the coordinator, then gives up.
  void RetryOp(uint64_t op_id, PendingOp& op);

  /// Arms the current attempt's timeout timer and records its deadline
  /// (stale timers from superseded attempts check the deadline and bail —
  /// the simulator has no timer cancellation).
  void ArmOpTimer(uint64_t op_id, PendingOp& op);

  /// Backoff before attempt `attempt` (0 for the first attempt):
  /// exponential in the attempt number, capped, with +/- jitter.
  SimTime Backoff(uint32_t attempt);

  void SendDirect(uint64_t op_id, PendingOp& op);
  void SendViaCoordinator(uint64_t op_id, const PendingOp& op);
  void CountRetry();
  void CountDuplicate();
  void ResolveCounters();

  /// Records op_latency_us{op=...} for a completing op: simulated time
  /// from the StartOp/StartScan send to this completion — the client's
  /// view of one operation, independent of any background work (splits,
  /// parity traffic) the drain to idle would otherwise fold in.
  void RecordOpLatency(uint64_t op_id);

  std::shared_ptr<SystemContext> ctx_;
  ClientImage image_;
  uint64_t next_op_id_ = 1;
  std::map<uint64_t, PendingOp> pending_;
  std::map<uint64_t, PendingScan> pending_scans_;
  std::map<uint64_t, PendingBatch> pending_batches_;
  /// Child insert op id -> owning batch op id (coordinator fallback).
  std::map<uint64_t, uint64_t> batch_children_;
  uint64_t next_batch_seq_ = 1;
  std::map<uint64_t, OpOutcome> done_;
  std::vector<NodeId> cached_nodes_;
  uint64_t iam_count_ = 0;
  uint64_t forwarded_ops_ = 0;

  ClientRetryPolicy retry_;
  std::optional<Rng> retry_rng_;
  uint64_t retries_ = 0;
  uint64_t escalations_ = 0;
  uint64_t duplicates_suppressed_ = 0;
  telemetry::Counter* retries_counter_ = nullptr;
  telemetry::Counter* escalations_counter_ = nullptr;
  telemetry::Counter* duplicates_counter_ = nullptr;
  /// Cached op_latency_us{op=...} handles, indexed by OpType; slot 4 is
  /// the scan histogram, slot 5 the batch one. Resolved lazily like the
  /// counters.
  telemetry::Histogram* latency_histograms_[6] = {};

  OpCompleteCallback on_op_complete_;
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_CLIENT_H_
