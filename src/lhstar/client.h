#ifndef LHRS_LHSTAR_CLIENT_H_
#define LHRS_LHSTAR_CLIENT_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "lh/lh_math.h"
#include "lhstar/messages.h"
#include "lhstar/system.h"
#include "net/node.h"

namespace lhrs {

/// Completed outcome of a client operation.
struct OpOutcome {
  Status status;
  Bytes value;                       ///< Search result payload.
  std::vector<WireRecord> scan_records;
  bool was_forwarded = false;        ///< An IAM arrived with the reply.
};

/// An LH* application client. Autonomous: carries its own image (i', n')
/// of the file state — initially (0, 0), i.e. "the file never grew" — and
/// converges through IAMs (algorithm A3).
///
/// The client also caches physical addresses of buckets it has talked to;
/// a recovery that moves a bucket to a spare leaves this cache stale, which
/// exercises the displaced-bucket protocol of section 2.8.
///
/// Operations are asynchronous: Start*() returns an op id, the simulation
/// is run (Network::RunUntilIdle), then TakeResult() yields the outcome.
class ClientNode : public Node {
 public:
  explicit ClientNode(std::shared_ptr<SystemContext> ctx);

  void HandleMessage(const Message& msg) override;
  void HandleDeliveryFailure(const Message& msg) override;
  const char* role() const override { return "client"; }

  /// Starts a key-addressed operation; value applies to insert/update.
  uint64_t StartOp(OpType op, Key key, Bytes value = {});

  /// Starts a parallel scan. With `deterministic` termination every bucket
  /// replies and the client verifies full coverage; otherwise only
  /// matching buckets reply (the caller then relies on the run-until-idle
  /// simulation as the paper's time-out).
  uint64_t StartScan(ScanPredicate predicate, bool deterministic = true);

  bool IsDone(uint64_t op_id) const { return done_.contains(op_id); }

  /// Declares a probabilistic-termination scan finished (the driver's
  /// time-out fired): whatever replies arrived become the result.
  void FinishProbabilisticScan(uint64_t op_id);

  /// Returns and removes the outcome of a finished operation.
  Result<OpOutcome> TakeResult(uint64_t op_id);

  const ClientImage& image() const { return image_; }

  /// Forgets everything learned (image and address cache): the client
  /// behaves like a brand-new one. Used by the image-convergence bench.
  void ResetImage();

  /// Number of IAMs received so far (image-adjustment messages).
  uint64_t iam_count() const { return iam_count_; }
  /// Number of operations that needed at least one forwarding hop.
  uint64_t forwarded_ops() const { return forwarded_ops_; }

 private:
  struct PendingOp {
    OpType op;
    Key key = 0;
    Bytes value;
    BucketNo sent_to_bucket = 0;
  };

  struct PendingScan {
    bool deterministic = true;
    std::map<BucketNo, Level> replied;
    std::vector<WireRecord> records;
  };

  /// Physical address the client uses for `bucket`: its cached entry if it
  /// has one, else the authoritative table (modelling the allocation-table
  /// propagation to new clients), which is then cached.
  NodeId ResolveNode(BucketNo bucket);

  void CompleteOp(uint64_t op_id, OpOutcome outcome);
  bool ScanCoverageComplete(const PendingScan& scan) const;

  std::shared_ptr<SystemContext> ctx_;
  ClientImage image_;
  uint64_t next_op_id_ = 1;
  std::map<uint64_t, PendingOp> pending_;
  std::map<uint64_t, PendingScan> pending_scans_;
  std::map<uint64_t, OpOutcome> done_;
  std::vector<NodeId> cached_nodes_;
  uint64_t iam_count_ = 0;
  uint64_t forwarded_ops_ = 0;
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_CLIENT_H_
