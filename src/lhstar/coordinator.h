#ifndef LHRS_LHSTAR_COORDINATOR_H_
#define LHRS_LHSTAR_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "lh/lh_math.h"
#include "lhstar/messages.h"
#include "lhstar/system.h"
#include "net/node.h"

namespace lhrs {

/// The LH* split coordinator: owns the authoritative file state (i, n),
/// decides splits on overflow reports (with optional load control),
/// allocates new server nodes, and completes client operations that hit
/// unavailable or displaced buckets.
///
/// The availability layers (LH*RS and the baselines) subclass this to add
/// parity-group management and recovery orchestration.
class CoordinatorNode : public Node {
 public:
  /// Allocates a fresh server node carrying `bucket` at `level`, registers
  /// it on the network and returns its id. Provided by the file facade so
  /// the coordinator creates the right server subclass.
  using BucketFactory = std::function<NodeId(BucketNo bucket, Level level)>;

  explicit CoordinatorNode(std::shared_ptr<SystemContext> ctx);

  void SetBucketFactory(BucketFactory factory) {
    bucket_factory_ = std::move(factory);
  }

  void HandleMessage(const Message& msg) override;
  void HandleDeliveryFailure(const Message& msg) override;
  const char* role() const override { return "coordinator"; }

  const FileState& state() const { return state_; }
  uint64_t merges_performed() const { return merges_performed_; }

  /// Total records currently in the file, as tracked for load control
  /// (see FileConfig::use_load_control). Updated from overflow reports and
  /// split completions, so it is an estimate, as in real LH*.
  uint64_t splits_performed() const { return splits_performed_; }

  /// Clears the restructuring latch. Public because a sibling coordinator
  /// (LH*g manages two files as one logical coordinator) may complete or
  /// abandon this file's restructuring step on its behalf.
  void AbortRestructure() { restructure_in_progress_ = false; }
  bool restructure_in_progress() const { return restructure_in_progress_; }

 protected:
  /// Reacts to a newly created bucket (LH*RS allocates parity groups here).
  virtual void OnBucketCreated(BucketNo bucket, NodeId node, Level level);

  /// Completes a client op that a server or client bounced here. The base
  /// implementation re-delivers it to the correct server using the
  /// authoritative state; if that server is down, the op fails with
  /// kUnavailable (plain LH* has no recovery).
  virtual void HandleClientOpFallback(const ClientOpViaCoordinatorMsg& op);

  /// Reacts to an unavailability report. Base: nothing (no availability).
  virtual void HandleUnavailableReport(const UnavailableReportMsg& report);

  /// Extension point for subclass message kinds.
  virtual void HandleSubclassMessage(const Message& msg);
  virtual void HandleSubclassDeliveryFailure(const Message& msg);

  /// Gate for split initiation; LH*RS defers splits while a recovery is in
  /// flight (the split would move records whose groups are being rebuilt).
  virtual bool CanSplitNow() const { return true; }

  /// Re-evaluates deferred splits (call when CanSplitNow may have turned
  /// true).
  void MaybeStartSplit();

  /// Allocates a server node for `bucket` via the factory (used by splits
  /// and by recovery to create spares).
  NodeId CreateBucketNode(BucketNo bucket, Level level);

  /// An OpRequest re-delivered by DeliverViaState could not reach its
  /// server. Base: fail the op (plain LH* cannot recover).
  virtual void OnOpDeliveryFailure(const OpRequestMsg& request);

  /// A SplitOrder could not reach the split victim (it was down,
  /// undetected). The file state has already advanced and the new bucket
  /// exists (uninitialised). Base: abandon (plain LH* cannot recover);
  /// availability layers recover the victim and retry the order.
  virtual void OnSplitOrderDeliveryFailure(const SplitOrderMsg& order,
                                           NodeId victim_node);

  /// A bulk record transfer (split move or merge) bounced off a dead
  /// target and was escalated here by the sender — the records exist only
  /// in the escalated message. Base: drop with a loud warning (plain LH*
  /// cannot recover); availability layers park the transfer, recover the
  /// target and re-deliver.
  virtual void OnOrphanedMoveRecords(const MoveRecordsMsg& move);
  virtual void OnOrphanedMergeRecords(const MergeRecordsMsg& merge);


  /// Delivers `op` to the server currently carrying its correct bucket.
  /// hops is set to 1 so the serving bucket issues an IAM to the client.
  void DeliverViaState(const ClientOpViaCoordinatorMsg& op);

  /// Replies to the client with an error (used when an op cannot be
  /// completed).
  void FailClientOp(const ClientOpViaCoordinatorMsg& op, StatusCode code,
                    std::string error);

  /// Sends the client the authoritative file state when its op addressed a
  /// bucket beyond the (possibly shrunk) file; IAMs cannot move an image
  /// backwards.
  void MaybeResetClientImage(const ClientOpViaCoordinatorMsg& op);

  SystemContext& ctx() { return *ctx_; }
  Network* net() const { return network(); }

  std::shared_ptr<SystemContext> ctx_;
  FileState state_;

 private:
  void StartSplit();
  /// Merges the last bucket into its parent when the load policy says so.
  void MaybeStartMerge();

  BucketFactory bucket_factory_;
  bool restructure_in_progress_ = false;  ///< A split or merge is running.
  uint32_t pending_splits_ = 0;
  /// Buckets with an un-acted-on overflow report (dedup_overflow_reports).
  std::set<BucketNo> overflow_reported_;
  bool merge_requested_ = false;
  uint64_t splits_performed_ = 0;
  uint64_t merges_performed_ = 0;
  /// Start of the in-flight split (at most one restructure runs at a time).
  SimTime split_started_us_ = 0;
};

}  // namespace lhrs

#endif  // LHRS_LHSTAR_COORDINATOR_H_
