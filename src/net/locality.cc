#include "net/locality.h"

namespace lhrs {

namespace {
thread_local size_t current_locality = kHomeLocality;
}  // namespace

size_t CurrentLocality() { return current_locality; }

void SetCurrentLocality(size_t locality) { current_locality = locality; }

}  // namespace lhrs
