#ifndef LHRS_NET_NETWORK_H_
#define LHRS_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "net/message.h"
#include "net/node.h"
#include "net/stats.h"
#include "telemetry/telemetry.h"

namespace lhrs {

/// Latency and service parameters of the simulated network. Defaults model
/// the ~100 Mb/s switched-Ethernet multicomputer of the original LH*
/// experiments: ~100 us per short message plus per-KB serialisation cost.
struct NetworkConfig {
  SimTime unicast_latency_us = 100;   ///< Fixed per-message latency.
  SimTime per_kb_us = 80;             ///< Added latency per KiB of payload.
  SimTime timeout_us = 2000;          ///< Failure-detection (RPC timeout).
  bool multicast_available = true;    ///< Hardware multicast for scans.

  // --- Parallel execution engine (src/exec) ------------------------------
  /// Worker localities of the parallel engine. 0 selects the classic
  /// single-threaded deterministic event loop (this class); any value >= 1
  /// makes exec::MakeNetwork build an exec::ParallelNetwork with that many
  /// worker threads plus the driver-pumped home locality.
  size_t localities = 0;
  /// Per-delivery handler occupancy charged to the destination locality's
  /// virtual clock in parallel mode — the simulated cost of one core
  /// executing one handler. 0 models instantaneous handlers (pure
  /// messaging-cost accounting, the deterministic simulator's model).
  SimTime service_us_per_task = 0;
  /// Additional occupancy per KiB of payload (memcpy, parity arithmetic).
  SimTime service_us_per_kb = 0;
  /// Parallel-mode node-slot capacity. Slots are pre-allocated so worker
  /// threads can resolve node ids without locking while the driver adds
  /// nodes (splits, spares). Ignored in deterministic mode.
  size_t max_nodes = 1 << 16;
};

/// What a fault injector tells the network to do with one message about to
/// be scheduled for delivery. The default value is "deliver normally".
struct FaultActions {
  bool drop = false;           ///< Lose the message (sender times out).
  uint32_t duplicates = 0;     ///< Extra copies delivered alongside.
  SimTime extra_delay_us = 0;  ///< Added to the computed latency.
  double latency_factor = 1.0; ///< Multiplies the computed latency.
};

/// Hook between the network and its delivery queue. When attached, every
/// enqueued message is offered to the injector, which can drop, duplicate,
/// delay or slow it (see src/chaos for the scripted implementation). The
/// injector must be deterministic for replays to be byte-identical.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual FaultActions OnMessage(const Message& msg, SimTime now) = 0;
};

/// Egress hook for cluster mode. In a multi-process deployment every
/// process runs its own Network whose node table spans the *global* id
/// space; ids resident elsewhere hold stub nodes. A router attached via
/// SetRemoteRouter intercepts sends to such ids before they reach the
/// event queue and hands them to a real transport (src/transport). Traffic
/// statistics are still recorded by the local network, so per-node
/// messaging costs keep their simulator semantics.
class RemoteRouter {
 public:
  virtual ~RemoteRouter() = default;

  /// True when `to` is not resident in this process.
  virtual bool IsRemote(NodeId to) const = 0;

  /// Takes ownership of the body and moves it across the wire.
  virtual void RouteRemote(NodeId from, NodeId to,
                           std::unique_ptr<MessageBody> body) = 0;
};

/// Discrete-event message-passing simulator of a share-nothing
/// multicomputer.
///
/// Single-threaded and deterministic: events are processed in (time, seq)
/// order, so a scenario replays identically from the same seed. Nodes are
/// added dynamically (file growth allocates new servers; recovery allocates
/// hot spares). A node can be marked unavailable, after which messages to
/// it bounce back to the sender as delivery failures after the configured
/// timeout — the simulator's model of crash + detection.
class Network {
 public:
  explicit Network(NetworkConfig config = {});
  virtual ~Network() = default;

  /// Registers a node and assigns its NodeId. May be called while the
  /// event loop runs (splits and recoveries allocate servers on the fly).
  virtual NodeId AddNode(std::unique_ptr<Node> node);

  /// Replaces the node object at an existing id, keeping availability and
  /// crash epoch. Cluster mode uses this to swap a remote stub for the
  /// real node when a spare slot is activated in this process.
  virtual void ReplaceNode(NodeId id, std::unique_ptr<Node> node);

  /// The node object at `id` (never null for a valid id).
  Node* node(NodeId id) const {
    LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return nodes_[id].node.get();
  }

  /// Downcasts node(id); CHECK-fails if the role does not match.
  template <typename T>
  T* node_as(NodeId id) const {
    T* t = dynamic_cast<T*>(node(id));
    LHRS_CHECK(t != nullptr) << "node " << id << " has unexpected role";
    return t;
  }

  size_t node_count() const { return nodes_.size(); }

  /// Queues a unicast message for delivery.
  virtual void Send(NodeId from, NodeId to, std::unique_ptr<MessageBody> body);

  /// Queues one message per destination as a single multicast batch:
  /// counted as one message in the statistics when hardware multicast is
  /// available (how the paper accounts scan costs), as N unicasts
  /// otherwise. Bodies may differ per destination (scans attach
  /// per-bucket presumed levels).
  virtual void Multicast(
      NodeId from,
      std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch);

  /// Crash / restore a node. An unavailable node receives nothing; senders
  /// get HandleDeliveryFailure after the timeout. A crash also increments
  /// the node's crash epoch: messages already in flight towards it bounce
  /// even if the node is restored before their delivery time.
  virtual void SetAvailable(NodeId id, bool available);
  virtual bool available(NodeId id) const;

  /// Schedules `node`'s HandleTimer(timer_id) to fire after `delay`.
  /// Timers to a node that is unavailable at fire time are silently
  /// dropped. With `wake` false the timer does not keep RunUntilIdle
  /// going: it fires only if protocol traffic carries simulated time past
  /// it (the chaos engine schedules its fault script this way, so an idle
  /// file does not fast-forward through the whole schedule).
  virtual void ScheduleTimer(NodeId node, SimTime delay, uint64_t timer_id,
                             bool wake = true);

  /// Runs the event loop until no *wake* events remain (messages, delivery
  /// failures and ordinary timers). Every client-visible operation in this
  /// codebase completes within one call (the protocols' retries are
  /// bounded). Non-wake timers scheduled beyond the quiescent time stay
  /// queued.
  virtual void RunUntilIdle();

  /// Processes exactly one event — the next one in (time, seq) order — and
  /// returns true; returns false without touching the queue when no wake
  /// events remain (the RunUntilIdle stopping condition). N calls to Step()
  /// process the identical event sequence RunUntilIdle would, so a driver
  /// can interleave issuing new operations with event processing without
  /// perturbing determinism.
  virtual bool Step();

  /// Steps until `done()` returns true or the network is idle. The
  /// predicate is evaluated before each event, so the event that makes it
  /// true is not followed by further processing.
  virtual void RunUntil(const std::function<bool()>& done);

  /// Processes every event (wake or not) with time <= t, then advances the
  /// clock to `t`. Lets a driver play out the remainder of a scripted
  /// fault schedule after the workload went idle.
  virtual void RunUntil(SimTime t);

  /// Current simulated time (microseconds). In parallel mode this is the
  /// home locality's virtual clock (the clients' view of time).
  virtual SimTime now() const { return now_; }

  /// Traffic statistics. In parallel mode the non-const form folds the
  /// per-locality shards together first; call it only from the driver
  /// thread, quiescent or between phases.
  virtual MessageStats& stats() { return stats_; }
  const MessageStats& stats() const {
    return const_cast<Network*>(this)->stats();
  }
  const NetworkConfig& config() const { return config_; }

  /// Turns observability on: the network owns a Telemetry instance, wires
  /// its clock to the simulated time, and from here on feeds counters, the
  /// delivery-latency histogram and (config-dependent) per-message trace
  /// events. Returns the instance so callers can add their own series.
  /// Idempotent; the config of the first call wins.
  virtual telemetry::Telemetry* EnableTelemetry(
      telemetry::TelemetryConfig config = {});

  /// The attached telemetry, or nullptr when disabled. Every instrumented
  /// layer gates on this pointer, so the disabled path costs one branch.
  telemetry::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Attaches (or with nullptr detaches) a fault injector. Not owned; the
  /// caller keeps it alive while attached.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// True while a fault injector is attached — or while the network sits on
  /// a real, lossy transport. Protocol layers use this to turn on
  /// retransmissions that would be dead weight in a fault-free simulation.
  bool fault_injection_active() const {
    return injector_ != nullptr || lossy_transport_;
  }

  /// Declares that this network's traffic crosses a real transport that
  /// may lose or duplicate messages, so the protocol hardening gated on
  /// fault_injection_active() must stay armed.
  void SetLossyTransport(bool lossy) { lossy_transport_ = lossy; }

  /// Attaches (or with nullptr detaches) the cluster egress router. Not
  /// owned. While attached, Send/Multicast to ids the router claims are
  /// remote bypass the event queue (statistics are still recorded).
  void SetRemoteRouter(RemoteRouter* router) { router_ = router; }

  /// Ingress path for cluster mode: delivers `body` to local node `to` as
  /// if it had just arrived from `from`, at the current time. The message
  /// gets a fresh local id (transport-level retransmits deliver at most
  /// once, so ids stay unique) and is processed through the ordinary
  /// delivery event so telemetry, stats and crash-epoch checks all apply.
  virtual void Inject(NodeId from, NodeId to,
                      std::unique_ptr<MessageBody> body);

  /// Ingress path for transport-detected send failures: invokes `from`'s
  /// HandleDeliveryFailure with a synthesized bounced message, mirroring
  /// the simulator's RPC-timeout model (recorded in stats/telemetry).
  virtual void NotifyDeliveryFailure(NodeId from, NodeId to,
                                     std::unique_ptr<MessageBody> body);

  /// Total messages processed since construction (safety valve for tests).
  uint64_t processed_events() const { return processed_events_; }

  /// Deliveries queued towards `id` but not yet processed — the node's
  /// instantaneous ingress queue depth, the quantity the per-bucket
  /// queueing telemetry records under skewed workloads. Deterministic
  /// engine only: the parallel engine's worker mailboxes are not
  /// observable from other threads, so it reports 0 for worker-resident
  /// nodes (driver-pumped home nodes are still counted).
  virtual size_t PendingTo(NodeId id) const {
    return static_cast<size_t>(id) < pending_deliver_.size()
               ? pending_deliver_[id]
               : 0;
  }

 protected:
  enum class EventType { kDeliver, kDeliveryFailure, kTimer };

  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tiebreak.
    EventType type;
    std::shared_ptr<Message> message;  // null for kTimer.
    NodeId timer_node = kInvalidNode;
    uint64_t timer_id = 0;
    bool wake = true;  ///< Keeps RunUntilIdle going (see ScheduleTimer).
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct NodeSlot {
    std::unique_ptr<Node> node;
    bool available = true;
    uint64_t epoch = 0;  ///< Incremented on each crash (see Message).
  };

  SimTime DeliveryLatency(size_t bytes) const {
    // Ceiling division: a sub-KiB payload still pays one KB quantum of
    // serialisation cost (flooring would make short messages free).
    return config_.unicast_latency_us +
           config_.per_kb_us * ((bytes + 1023) / 1024);
  }

  void Enqueue(std::unique_ptr<MessageBody> body, NodeId from, NodeId to,
               bool multicast_member);
  void Push(Event event);
  void ProcessEvent(Event ev);

  NetworkConfig config_;
  std::vector<NodeSlot> nodes_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  SimTime now_ = 0;
  uint64_t next_message_id_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t processed_events_ = 0;
  size_t wake_events_ = 0;  ///< Queued events with wake == true.
  /// Queued kDeliver events per destination (see PendingTo). Maintained in
  /// Push/ProcessEvent, so every engine that funnels deliveries through
  /// the base event queue keeps it consistent.
  std::vector<uint32_t> pending_deliver_;
  MessageStats stats_;
  FaultInjector* injector_ = nullptr;
  RemoteRouter* router_ = nullptr;
  bool lossy_transport_ = false;

  std::unique_ptr<telemetry::Telemetry> telemetry_;
  /// Cached metric handles so the enabled per-message path does no name
  /// lookups (resolved once in EnableTelemetry).
  struct TelemetryHandles {
    telemetry::Counter* sent_messages = nullptr;
    telemetry::Counter* sent_bytes = nullptr;
    telemetry::Counter* deliveries = nullptr;
    telemetry::Counter* delivery_failures = nullptr;
    telemetry::Gauge* nodes_unavailable = nullptr;
    telemetry::Histogram* delivery_latency_us = nullptr;
  };
  TelemetryHandles tm_;
};

}  // namespace lhrs

#endif  // LHRS_NET_NETWORK_H_
