#ifndef LHRS_NET_MESSAGE_H_
#define LHRS_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>

namespace lhrs {

/// Logical address of a node (server, client or coordinator) on the
/// simulated multicomputer. Dense indices assigned by the Network.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Simulated wall-clock time in microseconds.
using SimTime = uint64_t;

/// Base class of every message payload exchanged on the simulated network.
///
/// Each protocol layer defines its own message structs deriving from this
/// and tags them with a kind from its reserved range (see MessageKindRange).
/// The simulator treats bodies as opaque apart from kind (for statistics)
/// and ByteSize (for the latency model) — exactly the information a real
/// wire format would expose.
class MessageBody {
 public:
  virtual ~MessageBody() = default;

  /// Globally unique message-kind tag (see MessageKindRange).
  virtual int kind() const = 0;

  /// Approximate serialized size in bytes; drives per-byte latency and the
  /// bytes-on-the-wire statistics.
  virtual size_t ByteSize() const = 0;

  /// Short human-readable tag for logs, e.g. "InsertRequest".
  virtual std::string Describe() const;
};

/// Reserved kind ranges per layer, so statistics can attribute traffic.
struct MessageKindRange {
  static constexpr int kNetBase = 0;        // network-internal
  static constexpr int kLhStarBase = 100;   // LH* substrate
  static constexpr int kLhrsBase = 200;     // LH*RS parity & recovery
  static constexpr int kLhgBase = 300;      // LH*g baseline
  static constexpr int kLhmBase = 400;      // LH*m baseline
  static constexpr int kLhsBase = 500;      // LH*s baseline
};

/// An in-flight message. Owned by the network's event queue between send
/// and delivery.
struct Message {
  uint64_t id = 0;       ///< Unique per network, in send order.
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  SimTime send_time = 0;
  bool multicast_member = false;  ///< Part of a 1-counted multicast batch.
  /// Crash epoch of the destination at send time. A crash increments the
  /// destination's epoch, so a message in flight across a crash bounces
  /// even when the node is back up by delivery time — the crash lost the
  /// in-flight state.
  uint64_t to_epoch = 0;
  std::unique_ptr<MessageBody> body;
};

}  // namespace lhrs

#endif  // LHRS_NET_MESSAGE_H_
