#include "net/stats.h"

#include <sstream>

#include "telemetry/metrics.h"

namespace lhrs {

namespace {

std::map<int, std::string>& KindNames() {
  static auto* names = new std::map<int, std::string>();
  return *names;
}

}  // namespace

void RegisterMessageKindName(int kind, std::string name) {
  KindNames().emplace(kind, std::move(name));
}

std::string MessageKindName(int kind) {
  const auto& names = KindNames();
  auto it = names.find(kind);
  if (it != names.end()) return it->second;
  return "kind" + std::to_string(kind);
}

void MessageStats::ExportTo(telemetry::MetricsRegistry* registry) const {
  using telemetry::Labeled;
  for (const auto& [kind, c] : per_kind_) {
    registry->GetCounter(Labeled("net.sent.messages", "kind",
                                 MessageKindName(kind)))
        .Add(c.messages);
    registry->GetCounter(Labeled("net.sent.bytes", "kind",
                                 MessageKindName(kind)))
        .Add(c.bytes);
  }
  for (const auto& [node, c] : per_node_sent_) {
    registry->GetCounter(Labeled("net.node_sent.messages", "node", node))
        .Add(c.messages);
    registry->GetCounter(Labeled("net.node_sent.bytes", "node", node))
        .Add(c.bytes);
  }
  for (const auto& [node, c] : per_node_received_) {
    registry->GetCounter(Labeled("net.node_received.messages", "node", node))
        .Add(c.messages);
    registry->GetCounter(Labeled("net.node_received.bytes", "node", node))
        .Add(c.bytes);
  }
}

std::string MessageStats::ToString() const {
  std::ostringstream os;
  os << "messages=" << total_.messages << " bytes=" << total_.bytes
     << " deliveries=" << deliveries_ << " failures=" << delivery_failures_
     << "\n";
  for (const auto& [kind, c] : per_kind_) {
    os << "  " << MessageKindName(kind) << ": " << c.messages << " msgs, "
       << c.bytes << " B\n";
  }
  return os.str();
}

}  // namespace lhrs
