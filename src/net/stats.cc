#include "net/stats.h"

#include <sstream>

namespace lhrs {

namespace {

std::map<int, std::string>& KindNames() {
  static auto* names = new std::map<int, std::string>();
  return *names;
}

}  // namespace

void RegisterMessageKindName(int kind, std::string name) {
  KindNames().emplace(kind, std::move(name));
}

std::string MessageKindName(int kind) {
  const auto& names = KindNames();
  auto it = names.find(kind);
  if (it != names.end()) return it->second;
  return "kind" + std::to_string(kind);
}

std::string MessageStats::ToString() const {
  std::ostringstream os;
  os << "messages=" << total_.messages << " bytes=" << total_.bytes
     << " deliveries=" << deliveries_ << " failures=" << delivery_failures_
     << "\n";
  for (const auto& [kind, c] : per_kind_) {
    os << "  " << MessageKindName(kind) << ": " << c.messages << " msgs, "
       << c.bytes << " B\n";
  }
  return os.str();
}

}  // namespace lhrs
