#ifndef LHRS_NET_NODE_H_
#define LHRS_NET_NODE_H_

#include <memory>

#include "net/message.h"

namespace lhrs {

class Network;

/// A process on the simulated multicomputer: a server carrying a bucket, a
/// client, the split coordinator, or an idle hot spare. Nodes communicate
/// exclusively by message passing; a node must never touch another node's
/// state directly (the tests enforce that discipline by running scenarios
/// where such shortcuts would produce wrong message counts).
class Node {
 public:
  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  virtual ~Node() = default;

  NodeId id() const { return id_; }

  /// Delivers one message. May send further messages via Send().
  virtual void HandleMessage(const Message& msg) = 0;

  /// Invoked (after the simulated timeout) when a message this node sent
  /// could not be delivered because the destination is unavailable — the
  /// simulator's model of an RPC timeout. Default: ignore.
  virtual void HandleDeliveryFailure(const Message& msg);

  /// Invoked when a timer armed with ScheduleTimer fires (and this node is
  /// still available). Default: ignore.
  virtual void HandleTimer(uint64_t timer_id);

  /// Human-readable role tag for logs ("bucket", "client", ...).
  virtual const char* role() const { return "node"; }

 protected:
  /// Sends a message to `to`. Valid only after registration on a network.
  void Send(NodeId to, std::unique_ptr<MessageBody> body);

  /// Arms HandleTimer(timer_id) to fire after `delay` simulated us.
  void ScheduleTimer(SimTime delay, uint64_t timer_id);

  Network* network() const { return network_; }

 private:
  friend class Network;

  Network* network_ = nullptr;
  NodeId id_ = kInvalidNode;
};

}  // namespace lhrs

#endif  // LHRS_NET_NODE_H_
