#include "net/node.h"

#include "net/network.h"

namespace lhrs {

void Node::HandleDeliveryFailure(const Message& msg) {
  (void)msg;  // Default: losses are ignored; protocol nodes override.
}

void Node::Send(NodeId to, std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(network_ != nullptr) << "node not registered on a network";
  network_->Send(id_, to, std::move(body));
}

}  // namespace lhrs
