#include "net/node.h"

#include "net/network.h"

namespace lhrs {

void Node::HandleDeliveryFailure(const Message& msg) {
  (void)msg;  // Default: losses are ignored; protocol nodes override.
}

void Node::HandleTimer(uint64_t timer_id) {
  (void)timer_id;  // Default: spurious timers are ignored.
}

void Node::Send(NodeId to, std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(network_ != nullptr) << "node not registered on a network";
  network_->Send(id_, to, std::move(body));
}

void Node::ScheduleTimer(SimTime delay, uint64_t timer_id) {
  LHRS_CHECK(network_ != nullptr) << "node not registered on a network";
  network_->ScheduleTimer(id_, delay, timer_id);
}

}  // namespace lhrs
