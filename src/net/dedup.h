#ifndef LHRS_NET_DEDUP_H_
#define LHRS_NET_DEDUP_H_

#include <cstdint>
#include <deque>
#include <unordered_set>

namespace lhrs {

/// Bounded receiver-side duplicate detector, keyed on Message::id (a
/// duplicated delivery carries the same id as the original — see
/// FaultActions::duplicates). Nodes whose handlers are not idempotent
/// (parity-delta application, record moves) consult it when a fault
/// injector is active; in a fault-free simulation the network never
/// duplicates, so the filter stays empty.
///
/// The window is FIFO-bounded: after `capacity` further messages a
/// duplicate would be forgotten. Simulated duplicates arrive at the same
/// latency as their originals, so a window of thousands is far beyond any
/// achievable reorder distance.
class DuplicateFilter {
 public:
  explicit DuplicateFilter(size_t capacity = 4096) : capacity_(capacity) {}

  /// Records `msg_id` and reports whether it was already in the window.
  bool SeenBefore(uint64_t msg_id) {
    if (!seen_.insert(msg_id).second) return true;
    order_.push_back(msg_id);
    if (order_.size() > capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return false;
  }

  /// Peek without recording. The socket transport records a sequence only
  /// once its delivery is accepted, so a rejected frame's retransmit is
  /// judged afresh instead of being mistaken for a lost-ack duplicate.
  bool Contains(uint64_t msg_id) const { return seen_.contains(msg_id); }

  size_t size() const { return order_.size(); }

 private:
  size_t capacity_;
  std::unordered_set<uint64_t> seen_;
  std::deque<uint64_t> order_;
};

}  // namespace lhrs

#endif  // LHRS_NET_DEDUP_H_
