#ifndef LHRS_NET_STATS_H_
#define LHRS_NET_STATS_H_

#include <cstdint>
#include <map>
#include <string>

namespace lhrs {

/// Message-traffic counters, the primary metric of every SDDS evaluation
/// ("messaging costs are network-speed invariant"). Counts are kept per
/// message kind; benches snapshot/diff around operations.
class MessageStats {
 public:
  struct Counter {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  /// Records one sent message. A multicast to n destinations is recorded as
  /// one message when the multicast service is on (`count_as_message` true
  /// only for the first member), matching how the paper counts scans.
  void RecordSend(int kind, size_t bytes, bool count_as_message) {
    Counter& c = per_kind_[kind];
    c.bytes += bytes;
    total_.bytes += bytes;
    if (count_as_message) {
      ++c.messages;
      ++total_.messages;
    }
    ++deliveries_;
  }

  void RecordDeliveryFailure() { ++delivery_failures_; }

  const Counter& total() const { return total_; }
  uint64_t total_messages() const { return total_.messages; }

  /// Point-to-point deliveries including every member of a multicast.
  uint64_t deliveries() const { return deliveries_; }
  uint64_t delivery_failures() const { return delivery_failures_; }

  Counter ForKind(int kind) const {
    auto it = per_kind_.find(kind);
    return it == per_kind_.end() ? Counter{} : it->second;
  }

  /// Sum over a half-open kind range [lo, hi) — e.g. all LH*RS parity
  /// traffic.
  Counter ForKindRange(int lo, int hi) const {
    Counter out;
    for (auto it = per_kind_.lower_bound(lo);
         it != per_kind_.end() && it->first < hi; ++it) {
      out.messages += it->second.messages;
      out.bytes += it->second.bytes;
    }
    return out;
  }

  void Reset() {
    per_kind_.clear();
    total_ = Counter{};
    deliveries_ = 0;
    delivery_failures_ = 0;
  }

  /// Multi-line table of per-kind counts using the registered kind names.
  std::string ToString() const;

 private:
  std::map<int, Counter> per_kind_;
  Counter total_;
  uint64_t deliveries_ = 0;
  uint64_t delivery_failures_ = 0;
};

/// Registers a display name for a message kind (idempotent).
void RegisterMessageKindName(int kind, std::string name);

/// Name previously registered, or "kind<N>".
std::string MessageKindName(int kind);

}  // namespace lhrs

#endif  // LHRS_NET_STATS_H_
