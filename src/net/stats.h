#ifndef LHRS_NET_STATS_H_
#define LHRS_NET_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "net/message.h"

namespace lhrs {

namespace telemetry {
class MetricsRegistry;
}  // namespace telemetry

/// Message-traffic counters, the primary metric of every SDDS evaluation
/// ("messaging costs are network-speed invariant"). Counts are kept per
/// message kind; benches snapshot/diff around operations.
class MessageStats {
 public:
  struct Counter {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  /// Records one sent message. A multicast to n destinations is recorded as
  /// one message when the multicast service is on (`count_as_message` true
  /// only for the first member), matching how the paper counts scans.
  /// `from` attributes the send to a node (kInvalidNode: unattributed).
  void RecordSend(int kind, size_t bytes, bool count_as_message,
                  NodeId from = kInvalidNode) {
    Counter& c = per_kind_[kind];
    c.bytes += bytes;
    total_.bytes += bytes;
    if (count_as_message) {
      ++c.messages;
      ++total_.messages;
    }
    ++deliveries_;
    if (from != kInvalidNode) {
      Counter& n = per_node_sent_[from];
      ++n.messages;  // Per-node counts are physical, every copy counts.
      n.bytes += bytes;
    }
  }

  /// Records one successful point-to-point delivery at node `to`.
  void RecordReceive(NodeId to, size_t bytes) {
    if (to == kInvalidNode) return;
    Counter& n = per_node_received_[to];
    ++n.messages;
    n.bytes += bytes;
  }

  void RecordDeliveryFailure() { ++delivery_failures_; }

  const Counter& total() const { return total_; }
  uint64_t total_messages() const { return total_.messages; }

  /// Point-to-point deliveries including every member of a multicast.
  uint64_t deliveries() const { return deliveries_; }
  uint64_t delivery_failures() const { return delivery_failures_; }

  Counter ForKind(int kind) const {
    auto it = per_kind_.find(kind);
    return it == per_kind_.end() ? Counter{} : it->second;
  }

  /// Sum over a half-open kind range [lo, hi) — e.g. all LH*RS parity
  /// traffic.
  Counter ForKindRange(int lo, int hi) const {
    Counter out;
    for (auto it = per_kind_.lower_bound(lo);
         it != per_kind_.end() && it->first < hi; ++it) {
      out.messages += it->second.messages;
      out.bytes += it->second.bytes;
    }
    return out;
  }

  // --- Per-node attribution (hot-bucket skew visibility) -----------------
  Counter SentBy(NodeId node) const {
    auto it = per_node_sent_.find(node);
    return it == per_node_sent_.end() ? Counter{} : it->second;
  }
  Counter ReceivedBy(NodeId node) const {
    auto it = per_node_received_.find(node);
    return it == per_node_received_.end() ? Counter{} : it->second;
  }
  const std::map<NodeId, Counter>& per_node_sent() const {
    return per_node_sent_;
  }
  const std::map<NodeId, Counter>& per_node_received() const {
    return per_node_received_;
  }

  /// Publishes every per-kind and per-node series into a metrics registry
  /// as "net.sent.messages{kind=...}", "net.node_sent.messages{node=N}",
  /// "net.node_received.bytes{node=N}", ... — the bridge between the
  /// paper-style message accounting and the telemetry run reports.
  void ExportTo(telemetry::MetricsRegistry* registry) const;

  /// Folds another stats object into this one. The parallel engine keeps
  /// one MessageStats per locality (recorded lock-free by its own
  /// executor) and merges the shards into the published view on read.
  void MergeFrom(const MessageStats& other) {
    for (const auto& [kind, c] : other.per_kind_) {
      Counter& mine = per_kind_[kind];
      mine.messages += c.messages;
      mine.bytes += c.bytes;
    }
    for (const auto& [node, c] : other.per_node_sent_) {
      Counter& mine = per_node_sent_[node];
      mine.messages += c.messages;
      mine.bytes += c.bytes;
    }
    for (const auto& [node, c] : other.per_node_received_) {
      Counter& mine = per_node_received_[node];
      mine.messages += c.messages;
      mine.bytes += c.bytes;
    }
    total_.messages += other.total_.messages;
    total_.bytes += other.total_.bytes;
    deliveries_ += other.deliveries_;
    delivery_failures_ += other.delivery_failures_;
  }

  void Reset() {
    per_kind_.clear();
    per_node_sent_.clear();
    per_node_received_.clear();
    total_ = Counter{};
    deliveries_ = 0;
    delivery_failures_ = 0;
  }

  /// Multi-line table of per-kind counts using the registered kind names.
  std::string ToString() const;

 private:
  std::map<int, Counter> per_kind_;
  std::map<NodeId, Counter> per_node_sent_;
  std::map<NodeId, Counter> per_node_received_;
  Counter total_;
  uint64_t deliveries_ = 0;
  uint64_t delivery_failures_ = 0;
};

/// Registers a display name for a message kind (idempotent).
void RegisterMessageKindName(int kind, std::string name);

/// Name previously registered, or "kind<N>".
std::string MessageKindName(int kind);

}  // namespace lhrs

#endif  // LHRS_NET_STATS_H_
