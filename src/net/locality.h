#ifndef LHRS_NET_LOCALITY_H_
#define LHRS_NET_LOCALITY_H_

#include <cstddef>

namespace lhrs {

/// Locality ids of the parallel execution engine (src/exec). A locality is
/// one run-to-completion executor with stable per-node affinity: every
/// handler of a node runs on that node's locality, so node state needs no
/// locks. Locality 0 — the *home* locality — is special: it is pumped by
/// the driver thread through the Network::Step/RunUntil surface (never by a
/// worker thread), and it is where clients, coordinators and the chaos
/// controller live, so facade bookkeeping and completion callbacks stay
/// single-threaded exactly as in the deterministic simulator.
inline constexpr size_t kHomeLocality = 0;

/// The locality whose executor is running on this thread. Worker threads
/// are pinned to their locality for life; the driver thread executes home
/// tasks, so it reads 0 — which is also what every thread outside the
/// engine (single-threaded simulations, tests, tools) reads. Components
/// that keep per-locality shards (chaos RNG streams, telemetry) index them
/// with this.
size_t CurrentLocality();

/// Engine-internal: binds this thread to `locality` (workers call it once
/// at startup). Public so tests can simulate worker threads.
void SetCurrentLocality(size_t locality);

}  // namespace lhrs

#endif  // LHRS_NET_LOCALITY_H_
