#include "net/message.h"

#include "net/stats.h"

namespace lhrs {

std::string MessageBody::Describe() const { return MessageKindName(kind()); }

}  // namespace lhrs
