#include "net/network.h"

#include <algorithm>
#include <utility>

namespace lhrs {

namespace {

/// Hard cap on processed events per RunUntilIdle, so a protocol bug
/// (forwarding loop, retry storm) fails a test loudly instead of hanging.
constexpr uint64_t kEventBudget = 200'000'000;

}  // namespace

Network::Network(NetworkConfig config) : config_(config) {}

telemetry::Telemetry* Network::EnableTelemetry(
    telemetry::TelemetryConfig config) {
  if (telemetry_ != nullptr) return telemetry_.get();
  telemetry_ = std::make_unique<telemetry::Telemetry>(config);
  telemetry_->set_clock([this] { return now_; });
  telemetry::MetricsRegistry& m = telemetry_->metrics();
  tm_.sent_messages = &m.GetCounter("net.sent_messages");
  tm_.sent_bytes = &m.GetCounter("net.sent_bytes");
  tm_.deliveries = &m.GetCounter("net.deliveries");
  tm_.delivery_failures = &m.GetCounter("net.delivery_failures");
  tm_.nodes_unavailable = &m.GetGauge("net.nodes_unavailable");
  tm_.delivery_latency_us = &m.GetHistogram("net.delivery_latency_us");
  return telemetry_.get();
}

NodeId Network::AddNode(std::unique_ptr<Node> node) {
  LHRS_CHECK(node != nullptr);
  LHRS_CHECK(node->network_ == nullptr) << "node already registered";
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->network_ = this;
  node->id_ = id;
  nodes_.push_back(NodeSlot{std::move(node), /*available=*/true});
  return id;
}

void Network::ReplaceNode(NodeId id, std::unique_ptr<Node> node) {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  LHRS_CHECK(node != nullptr);
  LHRS_CHECK(node->network_ == nullptr) << "node already registered";
  node->network_ = this;
  node->id_ = id;
  nodes_[id].node = std::move(node);  // Availability and epoch persist.
}

void Network::Send(NodeId from, NodeId to,
                   std::unique_ptr<MessageBody> body) {
  Enqueue(std::move(body), from, to, /*multicast_member=*/false);
}

void Network::Multicast(
    NodeId from,
    std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch) {
  bool first = true;
  for (auto& [to, body] : batch) {
    const bool member = config_.multicast_available && !first;
    Enqueue(std::move(body), from, to, member);
    first = false;
  }
}

void Network::Push(Event event) {
  if (event.wake) ++wake_events_;
  if (event.type == EventType::kDeliver && event.message != nullptr) {
    const auto to = static_cast<size_t>(event.message->to);
    if (to >= pending_deliver_.size()) pending_deliver_.resize(to + 1, 0);
    ++pending_deliver_[to];
  }
  events_.push(std::move(event));
}

void Network::Enqueue(std::unique_ptr<MessageBody> body, NodeId from,
                      NodeId to, bool multicast_member) {
  LHRS_CHECK(body != nullptr);
  LHRS_CHECK(to >= 0 && static_cast<size_t>(to) < nodes_.size())
      << "send to unknown node " << to;
  const size_t bytes = body->ByteSize();
  stats_.RecordSend(body->kind(), bytes, !multicast_member, from);
  if (telemetry_ != nullptr) {
    tm_.sent_messages->Add();
    tm_.sent_bytes->Add(bytes);
    if (telemetry_->trace_messages()) {
      telemetry_->tracer().Record(
          {now_, telemetry::TraceEventType::kSend, from, to, body->kind(),
           -1, static_cast<int64_t>(bytes)});
    }
  }

  if (router_ != nullptr && router_->IsRemote(to)) {
    router_->RouteRemote(from, to, std::move(body));
    return;
  }

  auto msg = std::make_shared<Message>();
  msg->id = next_message_id_++;
  msg->from = from;
  msg->to = to;
  msg->send_time = now_;
  msg->multicast_member = multicast_member;
  msg->to_epoch = nodes_[to].epoch;
  msg->body = std::move(body);

  SimTime latency = DeliveryLatency(bytes);
  if (injector_ != nullptr) {
    const FaultActions actions = injector_->OnMessage(*msg, now_);
    if (actions.latency_factor != 1.0) {
      latency = static_cast<SimTime>(static_cast<double>(latency) *
                                     actions.latency_factor);
    }
    latency += actions.extra_delay_us;
    if (actions.drop) {
      // The loss is indistinguishable from a crashed destination for the
      // sender: its RPC times out and HandleDeliveryFailure fires.
      stats_.RecordDeliveryFailure();
      if (telemetry_ != nullptr) tm_.delivery_failures->Add();
      if (msg->from != kInvalidNode) {
        Push(Event{now_ + latency + config_.timeout_us, next_seq_++,
                   EventType::kDeliveryFailure, std::move(msg)});
      }
      return;
    }
    for (uint32_t d = 0; d < actions.duplicates; ++d) {
      // Copies share the Message object: same id, same body — exactly what
      // receiver-side duplicate suppression must cope with.
      Push(Event{now_ + latency, next_seq_++, EventType::kDeliver, msg});
    }
  }

  Push(Event{now_ + latency, next_seq_++, EventType::kDeliver,
             std::move(msg)});
}

void Network::Inject(NodeId from, NodeId to,
                     std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(body != nullptr);
  LHRS_CHECK(to >= 0 && static_cast<size_t>(to) < nodes_.size())
      << "inject to unknown node " << to;
  auto msg = std::make_shared<Message>();
  msg->id = next_message_id_++;
  msg->from = from;
  msg->to = to;
  msg->send_time = now_;
  msg->to_epoch = nodes_[to].epoch;
  msg->body = std::move(body);
  // Delivered through the ordinary event path so the crash-epoch check,
  // receive statistics and tracing behave exactly as for local traffic.
  Push(Event{now_, next_seq_++, EventType::kDeliver, std::move(msg)});
}

void Network::NotifyDeliveryFailure(NodeId from, NodeId to,
                                    std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(body != nullptr);
  stats_.RecordDeliveryFailure();
  if (telemetry_ != nullptr) tm_.delivery_failures->Add();
  if (from == kInvalidNode) return;
  LHRS_CHECK(static_cast<size_t>(from) < nodes_.size());
  auto msg = std::make_shared<Message>();
  msg->id = next_message_id_++;
  msg->from = from;
  msg->to = to;
  msg->send_time = now_;
  msg->body = std::move(body);
  Push(Event{now_, next_seq_++, EventType::kDeliveryFailure,
             std::move(msg)});
}

void Network::ScheduleTimer(NodeId node, SimTime delay, uint64_t timer_id,
                            bool wake) {
  LHRS_CHECK(node >= 0 && static_cast<size_t>(node) < nodes_.size());
  Event ev{now_ + delay, next_seq_++, EventType::kTimer, nullptr};
  ev.timer_node = node;
  ev.timer_id = timer_id;
  ev.wake = wake;
  Push(std::move(ev));
}

void Network::SetAvailable(NodeId id, bool available) {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  if (telemetry_ != nullptr && nodes_[id].available != available) {
    telemetry_->tracer().Record({now_,
                                 available
                                     ? telemetry::TraceEventType::kRestore
                                     : telemetry::TraceEventType::kCrash,
                                 id, -1, -1, -1, 0});
    tm_.nodes_unavailable->Add(available ? -1 : 1);
  }
  if (nodes_[id].available && !available) ++nodes_[id].epoch;
  nodes_[id].available = available;
}

bool Network::available(NodeId id) const {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[id].available;
}

void Network::RunUntilIdle() {
  while (Step()) {
  }
}

bool Network::Step() {
  if (wake_events_ == 0) return false;
  LHRS_CHECK(!events_.empty());
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  ProcessEvent(std::move(ev));
  return true;
}

void Network::RunUntil(const std::function<bool()>& done) {
  while (!done() && Step()) {
  }
}

void Network::RunUntil(SimTime t) {
  while (!events_.empty() && events_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    ProcessEvent(std::move(ev));
  }
  now_ = std::max(now_, t);
}

void Network::ProcessEvent(Event ev) {
  LHRS_CHECK_GE(ev.time, now_);
  now_ = ev.time;
  if (ev.wake) --wake_events_;
  ++processed_events_;
  LHRS_CHECK_LT(processed_events_, kEventBudget)
      << "event budget exhausted — protocol loop?";

  if (ev.type == EventType::kTimer) {
    if (nodes_[ev.timer_node].available) {
      nodes_[ev.timer_node].node->HandleTimer(ev.timer_id);
    }
    return;
  }

  Message& msg = *ev.message;
  switch (ev.type) {
    case EventType::kDeliver: {
      if (static_cast<size_t>(msg.to) < pending_deliver_.size() &&
          pending_deliver_[msg.to] > 0) {
        --pending_deliver_[msg.to];
      }
      if (!nodes_[msg.to].available ||
          nodes_[msg.to].epoch != msg.to_epoch) {
        // Destination is down — or crashed while the message was in
        // flight (the crash lost it even if the node is back): the sender
        // times out. An unavailable sender gets nothing (it crashed too).
        stats_.RecordDeliveryFailure();
        if (telemetry_ != nullptr) tm_.delivery_failures->Add();
        if (msg.from != kInvalidNode && nodes_[msg.from].available) {
          Push(Event{now_ + config_.timeout_us, next_seq_++,
                     EventType::kDeliveryFailure, ev.message});
        }
        break;
      }
      const size_t bytes = msg.body->ByteSize();
      stats_.RecordReceive(msg.to, bytes);
      if (telemetry_ != nullptr) {
        tm_.deliveries->Add();
        tm_.delivery_latency_us->Record(now_ - msg.send_time);
        if (telemetry_->trace_messages()) {
          telemetry_->tracer().Record(
              {now_, telemetry::TraceEventType::kDeliver, msg.to, msg.from,
               msg.body->kind(), -1, static_cast<int64_t>(bytes)});
        }
      }
      nodes_[msg.to].node->HandleMessage(msg);
      break;
    }
    case EventType::kDeliveryFailure: {
      if (msg.from != kInvalidNode && nodes_[msg.from].available) {
        if (telemetry_ != nullptr && telemetry_->trace_messages()) {
          telemetry_->tracer().Record(
              {now_, telemetry::TraceEventType::kDeliveryFailure, msg.from,
               msg.to, msg.body->kind(), -1,
               static_cast<int64_t>(msg.body->ByteSize())});
        }
        nodes_[msg.from].node->HandleDeliveryFailure(msg);
      }
      break;
    }
    case EventType::kTimer:
      break;  // Handled above.
  }
}

}  // namespace lhrs
