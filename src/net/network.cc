#include "net/network.h"

#include <utility>

namespace lhrs {

namespace {

/// Hard cap on processed events per RunUntilIdle, so a protocol bug
/// (forwarding loop, retry storm) fails a test loudly instead of hanging.
constexpr uint64_t kEventBudget = 200'000'000;

}  // namespace

Network::Network(NetworkConfig config) : config_(config) {}

telemetry::Telemetry* Network::EnableTelemetry(
    telemetry::TelemetryConfig config) {
  if (telemetry_ != nullptr) return telemetry_.get();
  telemetry_ = std::make_unique<telemetry::Telemetry>(config);
  telemetry_->set_clock([this] { return now_; });
  telemetry::MetricsRegistry& m = telemetry_->metrics();
  tm_.sent_messages = &m.GetCounter("net.sent_messages");
  tm_.sent_bytes = &m.GetCounter("net.sent_bytes");
  tm_.deliveries = &m.GetCounter("net.deliveries");
  tm_.delivery_failures = &m.GetCounter("net.delivery_failures");
  tm_.nodes_unavailable = &m.GetGauge("net.nodes_unavailable");
  tm_.delivery_latency_us = &m.GetHistogram("net.delivery_latency_us");
  return telemetry_.get();
}

NodeId Network::AddNode(std::unique_ptr<Node> node) {
  LHRS_CHECK(node != nullptr);
  LHRS_CHECK(node->network_ == nullptr) << "node already registered";
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->network_ = this;
  node->id_ = id;
  nodes_.push_back(NodeSlot{std::move(node), /*available=*/true});
  return id;
}

void Network::Send(NodeId from, NodeId to,
                   std::unique_ptr<MessageBody> body) {
  Enqueue(std::move(body), from, to, /*multicast_member=*/false);
}

void Network::Multicast(
    NodeId from,
    std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch) {
  bool first = true;
  for (auto& [to, body] : batch) {
    const bool member = config_.multicast_available && !first;
    Enqueue(std::move(body), from, to, member);
    first = false;
  }
}

void Network::Enqueue(std::unique_ptr<MessageBody> body, NodeId from,
                      NodeId to, bool multicast_member) {
  LHRS_CHECK(body != nullptr);
  LHRS_CHECK(to >= 0 && static_cast<size_t>(to) < nodes_.size())
      << "send to unknown node " << to;
  const size_t bytes = body->ByteSize();
  stats_.RecordSend(body->kind(), bytes, !multicast_member, from);
  if (telemetry_ != nullptr) {
    tm_.sent_messages->Add();
    tm_.sent_bytes->Add(bytes);
    if (telemetry_->trace_messages()) {
      telemetry_->tracer().Record(
          {now_, telemetry::TraceEventType::kSend, from, to, body->kind(),
           -1, static_cast<int64_t>(bytes)});
    }
  }

  auto msg = std::make_shared<Message>();
  msg->id = next_message_id_++;
  msg->from = from;
  msg->to = to;
  msg->send_time = now_;
  msg->multicast_member = multicast_member;
  msg->body = std::move(body);

  events_.push(Event{now_ + DeliveryLatency(bytes), next_seq_++,
                     EventType::kDeliver, std::move(msg)});
}

void Network::SetAvailable(NodeId id, bool available) {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  if (telemetry_ != nullptr && nodes_[id].available != available) {
    telemetry_->tracer().Record({now_,
                                 available
                                     ? telemetry::TraceEventType::kRestore
                                     : telemetry::TraceEventType::kCrash,
                                 id, -1, -1, -1, 0});
    tm_.nodes_unavailable->Add(available ? -1 : 1);
  }
  nodes_[id].available = available;
}

bool Network::available(NodeId id) const {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[id].available;
}

void Network::RunUntilIdle() {
  while (!events_.empty()) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    LHRS_CHECK_GE(ev.time, now_);
    now_ = ev.time;
    ++processed_events_;
    LHRS_CHECK_LT(processed_events_, kEventBudget)
        << "event budget exhausted — protocol loop?";

    Message& msg = *ev.message;
    switch (ev.type) {
      case EventType::kDeliver: {
        if (!nodes_[msg.to].available) {
          // Destination is down: the sender times out. An unavailable
          // sender gets nothing (it crashed too).
          stats_.RecordDeliveryFailure();
          if (telemetry_ != nullptr) tm_.delivery_failures->Add();
          if (msg.from != kInvalidNode && nodes_[msg.from].available) {
            events_.push(Event{now_ + config_.timeout_us, next_seq_++,
                               EventType::kDeliveryFailure, ev.message});
          }
          break;
        }
        const size_t bytes = msg.body->ByteSize();
        stats_.RecordReceive(msg.to, bytes);
        if (telemetry_ != nullptr) {
          tm_.deliveries->Add();
          tm_.delivery_latency_us->Record(now_ - msg.send_time);
          if (telemetry_->trace_messages()) {
            telemetry_->tracer().Record(
                {now_, telemetry::TraceEventType::kDeliver, msg.to, msg.from,
                 msg.body->kind(), -1, static_cast<int64_t>(bytes)});
          }
        }
        nodes_[msg.to].node->HandleMessage(msg);
        break;
      }
      case EventType::kDeliveryFailure: {
        if (msg.from != kInvalidNode && nodes_[msg.from].available) {
          if (telemetry_ != nullptr && telemetry_->trace_messages()) {
            telemetry_->tracer().Record(
                {now_, telemetry::TraceEventType::kDeliveryFailure, msg.from,
                 msg.to, msg.body->kind(), -1,
                 static_cast<int64_t>(msg.body->ByteSize())});
          }
          nodes_[msg.from].node->HandleDeliveryFailure(msg);
        }
        break;
      }
    }
  }
}

}  // namespace lhrs
