#ifndef LHRS_LH_LH_MATH_H_
#define LHRS_LH_LH_MATH_H_

#include <cstdint>

#include "common/logging.h"

namespace lhrs {

/// Record key (the paper's `c`). Applications with non-integer keys hash
/// them to 64 bits first; the LH address computation is then `c mod 2^l N`.
using Key = uint64_t;

/// Logical bucket number within a file (the paper's `m` / `a`).
using BucketNo = uint32_t;

/// Bucket level (the paper's `j`) and file level (`i`).
using Level = uint32_t;

/// The linear-hashing function family h_l(c) = c mod (2^l * N).
inline BucketNo HashL(Key c, Level l, uint32_t initial_buckets) {
  return static_cast<BucketNo>(c %
                               (static_cast<uint64_t>(initial_buckets) << l));
}

/// The LH* file state (i, n) maintained by the split coordinator: `i` is
/// the file level, `n` the split pointer (next bucket to split), `N` the
/// initial bucket count. Clients hold possibly-stale copies (images).
struct FileState {
  Level i = 0;
  BucketNo n = 0;
  uint32_t initial_buckets = 1;  // The paper's N.

  /// Current number of buckets: M = n + 2^i * N  (equation E1).
  BucketNo bucket_count() const {
    return n + (static_cast<BucketNo>(initial_buckets) << i);
  }

  /// Algorithm (A1): the correct address of key c under this state.
  BucketNo Address(Key c) const {
    BucketNo a = HashL(c, i, initial_buckets);
    if (a < n) a = HashL(c, i + 1, initial_buckets);
    return a;
  }

  /// Level of bucket `m` implied by this state: buckets before the split
  /// pointer (and the newest buckets they spawned) are at level i+1.
  Level BucketLevel(BucketNo m) const {
    LHRS_CHECK_LT(m, bucket_count());
    const BucketNo boundary =
        static_cast<BucketNo>(initial_buckets) << i;  // 2^i * N
    if (m < n || m >= boundary) return i + 1;
    return i;
  }

  /// Advances the split pointer after bucket n split (creating bucket
  /// n + 2^i N). Returns the number of the newly created bucket.
  BucketNo AdvanceSplit() {
    const BucketNo new_bucket =
        n + (static_cast<BucketNo>(initial_buckets) << i);
    ++n;
    if (n >= static_cast<BucketNo>(initial_buckets) << i) {
      n = 0;
      ++i;
    }
    return new_bucket;
  }

  bool operator==(const FileState&) const = default;
};

/// A client's image (i', n') of a file state, with the image-adjustment
/// algorithm (A3). Initially (0, 0): a new client assumes the file never
/// grew.
struct ClientImage {
  Level i = 0;
  BucketNo n = 0;
  uint32_t initial_buckets = 1;

  /// Address this client computes for key c (A1 on the image).
  BucketNo Address(Key c) const {
    BucketNo a = HashL(c, i, initial_buckets);
    if (a < n) a = HashL(c, i + 1, initial_buckets);
    return a;
  }

  /// Number of buckets the client believes exist.
  BucketNo presumed_bucket_count() const {
    return n + (static_cast<BucketNo>(initial_buckets) << i);
  }

  /// Algorithm (A3): adjust the image from an IAM carrying the level `j`
  /// of the correct bucket `a`. Guarantees the same addressing error never
  /// repeats and converges in O(log M) IAMs.
  ///
  /// The adjusted image is the most advanced file state *provably implied*
  /// by "bucket a has level j": if a is an original bucket that split to
  /// level j, the split pointer passed a (n' = a + 1 at i' = j - 1); if a
  /// is a bucket *created* at level j (a >= 2^(j-1) N), the pointer passed
  /// its parent a - 2^(j-1) N. Using a + 1 in the second case would
  /// overshoot the real file and address non-existent buckets.
  void Adjust(BucketNo a, Level j) {
    if (j > i) {
      i = j - 1;
      const BucketNo boundary = static_cast<BucketNo>(initial_buckets) << i;
      n = (a >= boundary ? a - boundary : a) + 1;
      if (n >= boundary) {
        n = 0;
        ++i;
      }
    }
  }
};

/// Algorithm (A2): server-side address verification and forwarding. Bucket
/// `a` at level `j` received key `c`; returns `a` itself when this bucket is
/// correct, else the bucket to forward to. The guarantee proven for LH* is
/// at most two forwarding hops for any image.
inline BucketNo ForwardAddress(BucketNo a, Level j, Key c,
                               uint32_t initial_buckets) {
  BucketNo a1 = HashL(c, j, initial_buckets);
  if (a1 == a) return a;
  if (j > 0) {
    const BucketNo a2 = HashL(c, j - 1, initial_buckets);
    if (a2 > a && a2 < a1) a1 = a2;
  }
  return a1;
}

}  // namespace lhrs

#endif  // LHRS_LH_LH_MATH_H_
