#ifndef LHRS_PARITY_LINEAR_DECODE_H_
#define LHRS_PARITY_LINEAR_DECODE_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/result.h"
#include "parity/parity_code.h"
#include "rs/matrix.h"

namespace lhrs::parity {

/// Incremental Gauss-Jordan elimination over the m data unknowns of a
/// linear parity code, shared by the progressive decoder and the
/// feasibility/plan checks.
///
/// Every codeword column contributes one equation over the data unknowns
/// x_0..x_{m-1}: a data column i is the unit equation x_i = payload(i)
/// (known-zero slots are unit equations with an empty payload), and parity
/// column m+j is sum_i P[i][j] * x_i = payload(m+j). Equations are kept in
/// reduced row-echelon form; each row also carries the combination of
/// absorbed payloads that produced it, so solving for a column is a single
/// pass of MulAdd kernels at Decode() time.
template <GaloisField F>
class IncrementalSolver {
 public:
  using Symbol = typename F::Symbol;

  /// `pmat` is the m x k parity-coefficient matrix; it must outlive the
  /// solver.
  IncrementalSolver(const Matrix<F>* pmat, uint32_t m, uint32_t k)
      : pmat_(pmat), m_(m), k_(k), pivot_row_(m, kNoRow) {}

  uint32_t m() const { return m_; }

  /// Absorbs one codeword column. Returns true when it raised the rank
  /// (the payload view is retained for Decode), false when redundant.
  bool AddColumn(uint32_t column, BufferView payload) {
    LHRS_CHECK_LT(column, m_ + k_);
    std::vector<Symbol> row(m_, 0);
    if (column < m_) {
      row[column] = 1;
    } else {
      for (uint32_t i = 0; i < m_; ++i) {
        row[i] = pmat_->At(i, column - m_);
      }
    }
    // New equation's payload combination: the unit vector on the payload
    // slot it would occupy.
    std::vector<Symbol> comb(payloads_.size() + 1, 0);
    comb.back() = 1;

    // Reduce against the existing pivot rows.
    for (uint32_t c = 0; c < m_; ++c) {
      if (row[c] == 0 || pivot_row_[c] == kNoRow) continue;
      const size_t r = pivot_row_[c];
      const Symbol f = row[c];
      AddScaled(&row, rows_[r], f);
      AddScaled(&comb, combs_[r], f);
    }
    uint32_t pivot = m_;
    for (uint32_t c = 0; c < m_; ++c) {
      if (row[c] != 0) {
        pivot = c;
        break;
      }
    }
    if (pivot == m_) return false;  // Dependent on absorbed columns.

    // Normalize and back-eliminate the new pivot from every older row so
    // the system stays fully reduced.
    const Symbol inv = F::Inv(row[pivot]);
    Scale(&row, inv);
    Scale(&comb, inv);
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Symbol f = rows_[r][pivot];
      if (f == 0) continue;
      AddScaled(&rows_[r], row, f);
      AddScaled(&combs_[r], comb, f);
    }
    pivot_row_[pivot] = rows_.size();
    rows_.push_back(std::move(row));
    combs_.push_back(std::move(comb));
    payloads_.push_back(std::move(payload));
    return true;
  }

  size_t rank() const { return rows_.size(); }

  /// True when data column `col` is fully determined: its pivot row exists
  /// and involves no other unknown.
  bool Solved(uint32_t col) const {
    LHRS_CHECK_LT(col, m_);
    if (pivot_row_[col] == kNoRow) return false;
    const auto& row = rows_[pivot_row_[col]];
    for (uint32_t c = 0; c < m_; ++c) {
      if (c != col && row[c] != 0) return false;
    }
    return true;
  }

  /// Solves data column `col` from the absorbed payloads, padded to a
  /// whole number of field symbols. Requires Solved(col).
  Bytes Solve(uint32_t col) const {
    LHRS_CHECK(Solved(col));
    const auto& comb = combs_[pivot_row_[col]];
    size_t len = 0;
    for (size_t i = 0; i < comb.size(); ++i) {
      if (comb[i] != 0) len = std::max(len, payloads_[i].size());
    }
    len = (len + F::kSymbolBytes - 1) / F::kSymbolBytes * F::kSymbolBytes;
    Bytes out(len, 0);
    if (len == 0) return out;
    // Gather the contributing payloads (padding short ones once; full-length
    // ones are shared views fed to the kernel in place), then fold them all
    // into `out` with one fused row pass instead of one MulAdd per payload.
    std::vector<Bytes> padded_storage;
    std::vector<const uint8_t*> srcs;
    std::vector<Symbol> coeffs;
    for (size_t i = 0; i < comb.size(); ++i) {
      if (comb[i] == 0 || payloads_[i].empty()) continue;
      const BufferView& p = payloads_[i];
      if (p.size() == len) {
        srcs.push_back(p.data());
      } else {
        Bytes padded(len, 0);
        std::copy(p.data(), p.data() + p.size(), padded.begin());
        padded_storage.push_back(std::move(padded));
        srcs.push_back(padded_storage.back().data());
      }
      coeffs.push_back(comb[i]);
    }
    F::MulAddRow(out.data(), srcs.data(), coeffs.data(), srcs.size(), len);
    return out;
  }

 private:
  static constexpr size_t kNoRow = ~size_t{0};

  static void Scale(std::vector<Symbol>* v, Symbol f) {
    for (Symbol& x : *v) x = F::Mul(x, f);
  }
  /// v += f * w (GF(2^x): subtraction is addition), padding v with zeros
  /// when w is longer (older rows have shorter combination vectors).
  static void AddScaled(std::vector<Symbol>* v, const std::vector<Symbol>& w,
                        Symbol f) {
    if (v->size() < w.size()) v->resize(w.size(), 0);
    for (size_t i = 0; i < w.size(); ++i) {
      (*v)[i] = F::Add((*v)[i], F::Mul(f, w[i]));
    }
  }

  const Matrix<F>* pmat_;
  uint32_t m_;
  uint32_t k_;
  std::vector<size_t> pivot_row_;           // data column -> row, or kNoRow.
  std::vector<std::vector<Symbol>> rows_;   // RREF coefficient rows.
  std::vector<std::vector<Symbol>> combs_;  // payload combination per row.
  std::vector<BufferView> payloads_;        // shared survivor payloads.
};

/// ProgressiveDecoder over a concrete field and parity matrix.
template <GaloisField F>
class ProgressiveDecoderT final : public ProgressiveDecoder {
 public:
  ProgressiveDecoderT(const Matrix<F>* pmat, uint32_t m, uint32_t k,
                      std::vector<uint32_t> wanted_data,
                      std::vector<uint32_t> known_zero_data)
      : solver_(pmat, m, k), wanted_(std::move(wanted_data)) {
    for (uint32_t col : wanted_) LHRS_CHECK_LT(col, m);
    for (uint32_t col : known_zero_data) {
      solver_.AddColumn(col, BufferView());
    }
  }

  bool AddColumn(uint32_t column, BufferView payload) override {
    if (!solver_.AddColumn(column, std::move(payload))) return false;
    ++columns_used_;
    return true;
  }

  bool Ready() const override {
    return std::all_of(wanted_.begin(), wanted_.end(),
                       [&](uint32_t col) { return solver_.Solved(col); });
  }

  size_t columns_used() const override { return columns_used_; }

  Result<std::vector<Bytes>> Decode() const override {
    if (!Ready()) {
      return Status::DataLoss(
          "progressive decode: absorbed columns do not determine every "
          "wanted column");
    }
    std::vector<Bytes> out;
    out.reserve(wanted_.size());
    for (uint32_t col : wanted_) out.push_back(solver_.Solve(col));
    return out;
  }

 private:
  IncrementalSolver<F> solver_;
  std::vector<uint32_t> wanted_;
  size_t columns_used_ = 0;
};

/// One-shot generalized decode for non-MDS linear codes: feeds the
/// available columns (data first, so survivor payloads are preferred over
/// parity recombination) into a solver and solves the wanted columns.
template <GaloisField F>
Result<std::vector<Bytes>> DecodeLinear(
    const Matrix<F>& pmat, uint32_t m, uint32_t k,
    const std::vector<std::pair<size_t, BufferView>>& available,
    const std::vector<size_t>& missing_data) {
  for (size_t col : missing_data) {
    LHRS_CHECK_LT(col, m) << "only data columns can be requested";
  }
  IncrementalSolver<F> solver(&pmat, m, k);
  for (const auto& [col, payload] : available) {
    if (col < m) solver.AddColumn(static_cast<uint32_t>(col), payload);
  }
  for (const auto& [col, payload] : available) {
    if (col >= m) solver.AddColumn(static_cast<uint32_t>(col), payload);
  }
  std::vector<Bytes> out;
  out.reserve(missing_data.size());
  for (size_t col : missing_data) {
    if (!solver.Solved(static_cast<uint32_t>(col))) {
      return Status::DataLoss(
          "unrecoverable record group: available columns do not determine "
          "data column " + std::to_string(col));
    }
    out.push_back(solver.Solve(static_cast<uint32_t>(col)));
  }
  return out;
}

}  // namespace lhrs::parity

#endif  // LHRS_PARITY_LINEAR_DECODE_H_
