#include "parity/parity_code.h"

#include <string>

#include "gf/gf256.h"
#include "gf/gf65536.h"
#include "parity/lrc_code.h"
#include "parity/rs_code.h"

namespace lhrs::parity {

std::string CodeSpec::Name() const {
  std::string name = kind == CodeKind::kRs
                         ? "rs"
                         : "lrc" + std::to_string(locality);
  if (progressive) name += "+prog";
  return name;
}

Result<CodeSpec> CodeSpec::Parse(std::string_view name) {
  CodeSpec spec;
  std::string_view rest = name;
  if (rest.size() >= 5 && rest.substr(rest.size() - 5) == "+prog") {
    spec.progressive = true;
    rest = rest.substr(0, rest.size() - 5);
  }
  if (rest == "rs") {
    spec.kind = CodeKind::kRs;
    return spec;
  }
  if (rest.substr(0, 3) == "lrc") {
    spec.kind = CodeKind::kLrc;
    rest = rest.substr(3);
    uint32_t r = 0;
    for (char c : rest) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad LRC locality in code name: " +
                                       std::string(name));
      }
      r = r * 10 + static_cast<uint32_t>(c - '0');
    }
    if (r == 0) {
      return Status::InvalidArgument(
          "LRC code name needs a locality, e.g. lrc2");
    }
    spec.locality = r;
    return spec;
  }
  return Status::InvalidArgument("unknown parity code name: " +
                                 std::string(name));
}

namespace {

template <GaloisField F>
Result<std::unique_ptr<ParityCode>> MakeTyped(const CodeSpec& spec,
                                              uint32_t m, uint32_t k) {
  if (m == 0 || k == 0) {
    return Status::InvalidArgument("parity code needs m >= 1 and k >= 1");
  }
  switch (spec.kind) {
    case CodeKind::kRs: {
      if (m + k > F::kOrder) {
        return Status::InvalidArgument(
            "group size m + availability k exceeds field order");
      }
      return std::unique_ptr<ParityCode>(
          std::make_unique<RsCodeT<F>>(m, k, spec));
    }
    case CodeKind::kLrc:
      return LrcCodeT<F>::Make(m, k, spec);
  }
  return Status::InvalidArgument("unknown parity code kind");
}

}  // namespace

Result<std::unique_ptr<ParityCode>> MakeParityCode(const CodeSpec& spec,
                                                   uint32_t m, uint32_t k,
                                                   FieldChoice field) {
  return field == FieldChoice::kGf256 ? MakeTyped<GF256>(spec, m, k)
                                      : MakeTyped<GF65536>(spec, m, k);
}

}  // namespace lhrs::parity
