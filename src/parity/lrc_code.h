#ifndef LHRS_PARITY_LRC_CODE_H_
#define LHRS_PARITY_LRC_CODE_H_

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "parity/linear_decode.h"
#include "parity/parity_code.h"
#include "rs/coder.h"
#include "rs/generator.h"

namespace lhrs::parity {

/// Locally repairable code with (r,t)-availability flavour: the m data
/// slots split into L = ceil(m/r) disjoint local groups of size r; parity
/// column l < L is the plain XOR of local group l, and the remaining
/// k - L columns are global parities taken from the Cauchy-derived RS
/// parity matrix (skipping its all-ones column, which is linearly
/// dependent on the sum of the local columns).
///
/// A single lost data bucket repairs from its r-1 local siblings plus the
/// local parity — r columns moved instead of the RS code's m — while the
/// global columns keep multi-failure patterns recoverable. The code is NOT
/// MDS, so every decode path goes through a rank-aware solver.
template <GaloisField F>
Result<Matrix<F>> BuildLrcParityMatrix(uint32_t m, uint32_t k, uint32_t r) {
  if (r == 0 || r > m) {
    return Status::InvalidArgument("LRC locality must be in [1, m]");
  }
  const uint32_t locals = (m + r - 1) / r;
  if (k < locals) {
    return Status::InvalidArgument(
        "LRC needs at least one parity column per local group: k=" +
        std::to_string(k) + " < " + std::to_string(locals) + " groups");
  }
  const uint32_t globals = k - locals;
  Matrix<F> p(m, k);
  for (uint32_t i = 0; i < m; ++i) {
    for (uint32_t l = 0; l < locals; ++l) {
      p.Set(i, l, i / r == l ? 1 : 0);
    }
  }
  if (globals > 0) {
    // Columns 1..globals of the RS matrix: every square submatrix of the
    // normalized Cauchy matrix is nonsingular, and skipping the all-ones
    // column 0 keeps the globals independent of the local-column sum.
    auto rs = BuildParityMatrix<F>(m, globals + 1);
    if (!rs.ok()) return rs.status();
    for (uint32_t i = 0; i < m; ++i) {
      for (uint32_t t = 0; t < globals; ++t) {
        p.Set(i, locals + t, rs->At(i, t + 1));
      }
    }
  }
  return p;
}

template <GaloisField F>
class LrcCodeT final : public ParityCode {
 public:
  /// Builds from a spec with kind == kLrc; fails on invalid geometry.
  static Result<std::unique_ptr<ParityCode>> Make(uint32_t m, uint32_t k,
                                                  CodeSpec spec) {
    auto p = BuildLrcParityMatrix<F>(m, k, spec.locality);
    if (!p.ok()) return p.status();
    return std::unique_ptr<ParityCode>(
        new LrcCodeT<F>(std::move(p).value(), spec));
  }

  uint32_t m() const override { return static_cast<uint32_t>(impl_.m()); }
  uint32_t k() const override { return static_cast<uint32_t>(impl_.k()); }
  const CodeSpec& spec() const override { return spec_; }

  uint32_t locality() const { return spec_.locality; }
  uint32_t local_groups() const { return locals_; }

  void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                  size_t parity_index, Bytes* parity) const override {
    impl_.ApplyDelta(slot, delta, parity_index, parity);
  }

  void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                  size_t parity_index, BufferView* parity) const override {
    impl_.ApplyDelta(slot, delta, parity_index, parity);
  }

  std::vector<Bytes> Encode(
      std::span<const Bytes* const> data) const override {
    return impl_.Encode(data);
  }

  Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, BufferView>>& available,
      const std::vector<size_t>& missing_data) const override {
    return DecodeLinear<F>(impl_.parity_matrix(), m(), k(), available,
                           missing_data);
  }

  bool CanDecodeFrom(
      const std::vector<uint32_t>& columns,
      const std::vector<uint32_t>& wanted_data) const override {
    IncrementalSolver<F> solver(&impl_.parity_matrix(), m(), k());
    for (uint32_t col : columns) solver.AddColumn(col, BufferView());
    return std::all_of(wanted_data.begin(), wanted_data.end(),
                       [&](uint32_t w) { return solver.Solved(w); });
  }

  std::vector<uint32_t> ParityPreference(uint32_t data_slot) const override {
    std::vector<uint32_t> order;
    order.reserve(k());
    const uint32_t local = data_slot / spec_.locality;
    order.push_back(local);  // The slot's own local parity first,
    for (uint32_t j = locals_; j < k(); ++j) order.push_back(j);  // globals,
    for (uint32_t j = 0; j < locals_; ++j) {  // then the other locals.
      if (j != local) order.push_back(j);
    }
    return order;
  }

  Result<RepairPlan> PlanRepair(const RepairContext& ctx) const override {
    const uint32_t m = this->m();
    RepairPlan plan;

    std::vector<uint32_t> missing_data;
    bool missing_has_parity = false;
    for (uint32_t col : ctx.missing) {
      if (col < m) {
        missing_data.push_back(col);
      } else {
        missing_has_parity = true;
      }
    }

    // Local fast path: a single lost data column, its whole local group
    // (sibling slots + local parity) alive — read just those r columns.
    if (!missing_has_parity && missing_data.size() == 1) {
      const uint32_t slot = missing_data[0];
      const uint32_t local = slot / spec_.locality;
      std::vector<uint32_t> reads;
      bool local_ok =
          std::find(ctx.alive_parity.begin(), ctx.alive_parity.end(),
                    local) != ctx.alive_parity.end();
      for (uint32_t s = local * spec_.locality;
           local_ok && s < std::min(m, (local + 1) * spec_.locality); ++s) {
        if (s == slot) continue;
        if (s >= ctx.existing_slots) continue;  // Known-zero sibling.
        local_ok = std::find(ctx.alive_data.begin(), ctx.alive_data.end(),
                             s) != ctx.alive_data.end();
        if (local_ok) reads.push_back(s);
      }
      if (local_ok) {
        plan.read_columns = std::move(reads);
        plan.read_columns.push_back(m + local);
        plan.progressive = spec_.progressive;
        return plan;
      }
    }

    // General path: every alive data column (missing parity re-encodes
    // from the full data row), plus parity columns — in the preference
    // order of the first missing data slot — until the missing data
    // columns are determined.
    std::vector<uint32_t> have;
    for (uint32_t slot : ctx.alive_data) {
      plan.read_columns.push_back(slot);
      have.push_back(slot);
    }
    for (uint32_t s = ctx.existing_slots; s < m; ++s) have.push_back(s);

    std::vector<uint32_t> parity_order =
        missing_data.empty() ? ParityPreference(0)
                             : ParityPreference(missing_data[0]);
    std::set<uint32_t> alive_parity(ctx.alive_parity.begin(),
                                    ctx.alive_parity.end());
    // Data rebuilds need a parity survivor regardless of rank: it holds
    // the group's key/length directory.
    size_t parity_needed = missing_data.empty() ? 0 : 1;
    for (uint32_t j : parity_order) {
      if (!alive_parity.contains(j)) continue;
      const bool rank_done = CanDecodeFrom(have, missing_data);
      if (rank_done && parity_needed == 0) break;
      plan.read_columns.push_back(m + j);
      have.push_back(m + j);
      if (parity_needed > 0) --parity_needed;
    }
    if (parity_needed > 0 || !CanDecodeFrom(have, missing_data)) {
      return Status::DataLoss(
          "group unrecoverable under LRC: surviving columns do not "
          "determine the lost ones");
    }
    plan.progressive = spec_.progressive && !missing_data.empty();
    return plan;
  }

  std::unique_ptr<ProgressiveDecoder> NewProgressiveDecoder(
      std::vector<uint32_t> wanted_data,
      std::vector<uint32_t> known_zero_data) const override {
    return std::make_unique<ProgressiveDecoderT<F>>(
        &impl_.parity_matrix(), m(), k(), std::move(wanted_data),
        std::move(known_zero_data));
  }

  size_t PaddedLength(size_t n) const override {
    return impl_.PaddedLength(n);
  }

 private:
  LrcCodeT(Matrix<F> parity_matrix, CodeSpec spec)
      : impl_(std::move(parity_matrix)),
        spec_(spec),
        locals_((impl_.m() + spec.locality - 1) / spec.locality) {}

  GroupCoder<F> impl_;
  CodeSpec spec_;
  uint32_t locals_;
};

}  // namespace lhrs::parity

#endif  // LHRS_PARITY_LRC_CODE_H_
