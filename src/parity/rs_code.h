#ifndef LHRS_PARITY_RS_CODE_H_
#define LHRS_PARITY_RS_CODE_H_

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "parity/linear_decode.h"
#include "parity/parity_code.h"
#include "rs/coder.h"

namespace lhrs::parity {

/// The paper's generalized Reed-Solomon code behind the ParityCode
/// interface. Every byte-level operation delegates to rs::GroupCoder, so
/// behavior is identical to the pre-interface code path (the refactor
/// oracle); only the planning surface is new.
template <GaloisField F>
class RsCodeT final : public ParityCode {
 public:
  RsCodeT(uint32_t m, uint32_t k, CodeSpec spec)
      : impl_(m, k), spec_(spec) {}

  uint32_t m() const override { return static_cast<uint32_t>(impl_.m()); }
  uint32_t k() const override { return static_cast<uint32_t>(impl_.k()); }
  const CodeSpec& spec() const override { return spec_; }

  void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                  size_t parity_index, Bytes* parity) const override {
    impl_.ApplyDelta(slot, delta, parity_index, parity);
  }

  void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                  size_t parity_index, BufferView* parity) const override {
    impl_.ApplyDelta(slot, delta, parity_index, parity);
  }

  std::vector<Bytes> Encode(
      std::span<const Bytes* const> data) const override {
    return impl_.Encode(data);
  }

  Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, BufferView>>& available,
      const std::vector<size_t>& missing_data) const override {
    return impl_.DecodeData(available, missing_data);
  }

  bool CanDecodeFrom(
      const std::vector<uint32_t>& columns,
      const std::vector<uint32_t>& wanted_data) const override {
    // MDS: any m distinct columns determine the whole group. A wanted
    // column already in hand is trivially determined.
    if (columns.size() >= impl_.m()) return true;
    return std::all_of(
        wanted_data.begin(), wanted_data.end(), [&](uint32_t w) {
          return std::find(columns.begin(), columns.end(), w) !=
                 columns.end();
        });
  }

  std::vector<uint32_t> ParityPreference(uint32_t data_slot) const override {
    (void)data_slot;  // Any parity column serves any slot equally.
    std::vector<uint32_t> order(impl_.k());
    std::iota(order.begin(), order.end(), 0);
    return order;
  }

  Result<RepairPlan> PlanRepair(const RepairContext& ctx) const override {
    const uint32_t m = this->m();
    const uint32_t zero_slots = m - ctx.existing_slots;
    bool missing_has_data = false;
    for (uint32_t col : ctx.missing) missing_has_data |= (col < m);

    // Feasibility (MDS bound + key metadata: rebuilding data needs at
    // least one parity survivor, which holds the group's key directory).
    if (ctx.alive_data.size() + zero_slots + ctx.alive_parity.size() < m ||
        (missing_has_data && ctx.alive_parity.empty())) {
      return Status::DataLoss(
          "group unrecoverable: fewer than m columns survive");
    }

    RepairPlan plan;
    plan.progressive = spec_.progressive && missing_has_data;
    // Read set: every alive data column (missing parity re-encodes from
    // the full data row), plus enough parity columns for the decode — at
    // least one when data is missing, for the key metadata. Progressive
    // mode reads every alive parity column instead, trading messages for
    // the chance to decode on the earliest sufficient subset.
    for (uint32_t slot : ctx.alive_data) plan.read_columns.push_back(slot);
    size_t parity_reads =
        m > zero_slots + ctx.alive_data.size()
            ? m - zero_slots - ctx.alive_data.size()
            : 0;
    if (missing_has_data && parity_reads == 0) parity_reads = 1;
    if (plan.progressive) parity_reads = ctx.alive_parity.size();
    LHRS_CHECK_LE(parity_reads, ctx.alive_parity.size());
    for (size_t i = 0; i < parity_reads; ++i) {
      plan.read_columns.push_back(m + ctx.alive_parity[i]);
    }
    return plan;
  }

  std::unique_ptr<ProgressiveDecoder> NewProgressiveDecoder(
      std::vector<uint32_t> wanted_data,
      std::vector<uint32_t> known_zero_data) const override {
    return std::make_unique<ProgressiveDecoderT<F>>(
        &impl_.parity_matrix(), m(), k(), std::move(wanted_data),
        std::move(known_zero_data));
  }

  size_t PaddedLength(size_t n) const override {
    return impl_.PaddedLength(n);
  }

 private:
  GroupCoder<F> impl_;
  CodeSpec spec_;
};

}  // namespace lhrs::parity

#endif  // LHRS_PARITY_RS_CODE_H_
