#ifndef LHRS_PARITY_PARITY_CODE_H_
#define LHRS_PARITY_PARITY_CODE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/result.h"

namespace lhrs {

/// Galois field used by a file's parity subsystem. GF(2^8) treats every
/// payload byte as a symbol (the SIGMOD-era choice); GF(2^16) halves the
/// table lookups per byte at the cost of 256 KiB tables (the choice the
/// LH*RS line of work later moved to). Selected per file at creation.
enum class FieldChoice { kGf256, kGf65536 };

inline const char* FieldChoiceName(FieldChoice f) {
  return f == FieldChoice::kGf256 ? "GF(2^8)" : "GF(2^16)";
}

namespace parity {

/// Parity scheme family. kRs is the paper's generalized Reed-Solomon code
/// (MDS: any m of the m+k columns reconstruct the group); kLrc trades MDS
/// optimality for repair locality: the first parity columns are XOR
/// parities of disjoint slot groups of size `locality`, backed by
/// Cauchy-derived global columns (Rawat et al., (r,t)-availability).
enum class CodeKind : uint8_t { kRs = 0, kLrc = 1 };

/// Parity-code selection, carried per file (and over the cluster wire).
struct CodeSpec {
  CodeKind kind = CodeKind::kRs;
  /// Local-group size r for kLrc (slots [l*r, (l+1)*r) share one local XOR
  /// parity). Ignored for kRs.
  uint32_t locality = 0;
  /// Decode as survivor replies arrive instead of waiting for the full
  /// planned read set (Han et al., progressive decoding).
  bool progressive = false;

  /// Canonical name, e.g. "rs", "rs+prog", "lrc2", "lrc2+prog".
  std::string Name() const;
  /// Parses a canonical name back into a spec.
  static Result<CodeSpec> Parse(std::string_view name);

  friend bool operator==(const CodeSpec&, const CodeSpec&) = default;
};

/// What the coordinator knows about a bucket group when planning a repair.
/// Data slots >= existing_slots do not exist yet and are known-zero
/// columns; `alive_parity` holds parity *indexes* (not codeword columns).
struct RepairContext {
  uint32_t existing_slots = 0;
  std::vector<uint32_t> alive_data;
  std::vector<uint32_t> alive_parity;
  std::vector<uint32_t> missing;  ///< Codeword columns to rebuild.
};

/// A planned repair: which codeword columns to read (data < m, parity
/// >= m), and whether decode may begin before every read returns.
struct RepairPlan {
  std::vector<uint32_t> read_columns;
  bool progressive = false;
};

/// Incremental decoder: accepts survivor columns one at a time and reports
/// when the accumulated coefficient rank suffices to solve the wanted data
/// columns. Payload views are shared (zero-copy); all byte work is
/// deferred to Decode(). Columns may arrive in any order; redundant
/// columns (linearly dependent on ones already absorbed) are rejected so
/// `columns_used()` counts only useful survivors.
class ProgressiveDecoder {
 public:
  virtual ~ProgressiveDecoder() = default;

  /// Feeds one survivor column (data in [0, m), parity in [m, m+k)).
  /// Returns true when the column raised the solvable rank, false when it
  /// was redundant (its payload is then not retained).
  virtual bool AddColumn(uint32_t column, BufferView payload) = 0;

  /// True once every wanted data column is solvable from the columns
  /// absorbed so far.
  virtual bool Ready() const = 0;

  /// Number of columns absorbed as useful (pre-seeded known-zero columns
  /// do not count).
  virtual size_t columns_used() const = 0;

  /// Solves for the wanted data columns (order of construction). Fails
  /// with DataLoss while !Ready().
  virtual Result<std::vector<Bytes>> Decode() const = 0;
};

/// Scheme-agnostic parity code for one bucket group: m data columns,
/// k parity columns, all linear over a binary Galois field. Implementations
/// are immutable once built and safe to share across threads.
class ParityCode {
 public:
  virtual ~ParityCode() = default;

  virtual uint32_t m() const = 0;
  virtual uint32_t k() const = 0;
  virtual const CodeSpec& spec() const = 0;

  /// Folds coeff(slot, parity_index) * delta into parity (grows it). A
  /// zero coefficient (possible for non-MDS codes) is a no-op.
  virtual void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                          size_t parity_index, Bytes* parity) const = 0;

  /// Copy-on-write form: in place when the view is sole owner, detaching
  /// when a snapshot shares the buffer.
  virtual void ApplyDelta(size_t slot, std::span<const uint8_t> delta,
                          size_t parity_index, BufferView* parity) const = 0;

  /// Full-group encode. `data[i]` may be nullptr (absent member == zero
  /// buffer). Returns k parity buffers of the padded common length.
  virtual std::vector<Bytes> Encode(
      std::span<const Bytes* const> data) const = 0;

  /// Reconstructs the requested data columns from the available columns
  /// (shared views of the survivors' dumps; no payload copies). Absent-
  /// but-known-zero data slots should be passed as available columns with
  /// an empty payload. Fails with DataLoss when the available columns do
  /// not determine the wanted ones.
  virtual Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, BufferView>>& available,
      const std::vector<size_t>& missing_data) const = 0;

  /// True when the codeword columns in `columns` (values in hand,
  /// including known-zero data columns) determine every column in
  /// `wanted_data`.
  virtual bool CanDecodeFrom(
      const std::vector<uint32_t>& columns,
      const std::vector<uint32_t>& wanted_data) const = 0;

  /// Parity indexes in preference order for reconstructing `data_slot`
  /// (an LRC lists the slot's local parity first; RS has no preference).
  virtual std::vector<uint32_t> ParityPreference(uint32_t data_slot)
      const = 0;

  /// Plans which columns to read to rebuild `ctx.missing`. Fails with
  /// DataLoss when the surviving columns cannot determine the missing
  /// ones (the group is lost).
  virtual Result<RepairPlan> PlanRepair(const RepairContext& ctx) const = 0;

  /// Creates an incremental decoder for `wanted_data`, pre-seeded with
  /// the known-zero data columns.
  virtual std::unique_ptr<ProgressiveDecoder> NewProgressiveDecoder(
      std::vector<uint32_t> wanted_data,
      std::vector<uint32_t> known_zero_data) const = 0;

  /// Rounds a payload length up to a whole number of field symbols.
  virtual size_t PaddedLength(size_t n) const = 0;

  /// Convenience overload for owned buffers (tests, benches).
  Result<std::vector<Bytes>> DecodeData(
      const std::vector<std::pair<size_t, Bytes>>& available,
      const std::vector<size_t>& missing_data) const {
    std::vector<std::pair<size_t, BufferView>> views;
    views.reserve(available.size());
    for (const auto& [col, payload] : available) {
      views.emplace_back(col, BufferView(payload));
    }
    return DecodeData(views, missing_data);
  }
};

/// Builds a parity code over the requested field. Fails with
/// InvalidArgument on unsupported geometry (e.g. LRC with fewer parity
/// columns than local groups, or m + k beyond the field order).
Result<std::unique_ptr<ParityCode>> MakeParityCode(const CodeSpec& spec,
                                                   uint32_t m, uint32_t k,
                                                   FieldChoice field);

}  // namespace parity
}  // namespace lhrs

#endif  // LHRS_PARITY_PARITY_CODE_H_
