#ifndef LHRS_EXEC_TIMER_WHEEL_H_
#define LHRS_EXEC_TIMER_WHEEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/message.h"

namespace lhrs::exec {

/// One armed timer: fire `node`'s HandleTimer(timer_id) at simulated time
/// `time`. `seq` breaks ties so same-instant timers fire in arming order,
/// mirroring the (time, seq) discipline of the deterministic event loop.
struct TimerEntry {
  SimTime time = 0;
  uint64_t seq = 0;
  NodeId node = kInvalidNode;
  uint64_t timer_id = 0;
  bool wake = true;
};

/// Single-level timer wheel with an overflow map, one per locality of the
/// parallel execution engine.
///
/// The wheel proper is a ring of `slots` buckets of `slot_us` simulated
/// microseconds each, so arming and firing a timer within the horizon
/// (slots * slot_us) is O(1) amortized — the common case: RPC timeouts and
/// retry timers land a few hundred to a few thousand us out. Entries beyond
/// the horizon wait in a sorted overflow map and cascade into the wheel as
/// the cursor advances past their lap (the chaos engine arms fault
/// schedules seconds ahead this way).
///
/// Not internally synchronized: each locality guards its wheel with the
/// locality's own lock (timers are armed by the owning thread in the common
/// case, cross-locality only by the driver's RunUntil catch-up).
class TimerWheel {
 public:
  explicit TimerWheel(SimTime slot_us = 128, size_t slots = 1024);

  /// Arms a timer. Entries in the past (time < the last PopDue bound) fire
  /// on the next PopDue call.
  void Schedule(SimTime time, NodeId node, uint64_t timer_id, bool wake);

  /// Moves every entry with time <= t into `out` in (time, seq) order and
  /// advances the cursor to t + 1. Entries already popped never reappear.
  void PopDue(SimTime t, std::vector<TimerEntry>* out);

  /// Earliest pending wake-flagged fire time, or nullopt when none. Used by
  /// an idle locality to fast-forward its virtual clock, the parallel
  /// analogue of the deterministic loop's time jump to the next wake event.
  std::optional<SimTime> NextWakeTime() const;

  size_t size() const { return size_; }
  size_t wake_count() const { return wake_count_; }
  bool empty() const { return size_ == 0; }

 private:
  SimTime Horizon() const {
    return cursor_time_ + slot_us_ * static_cast<SimTime>(slots_.size());
  }
  size_t SlotIndex(SimTime time) const {
    return static_cast<size_t>((time / slot_us_) %
                               static_cast<SimTime>(slots_.size()));
  }
  void Insert(TimerEntry entry);
  /// Cascades overflow entries that fell inside the horizon into the wheel.
  void Refill();

  SimTime slot_us_;
  std::vector<std::vector<TimerEntry>> slots_;
  std::multimap<SimTime, TimerEntry> overflow_;
  SimTime cursor_time_ = 0;  ///< Every entry with time < cursor has fired.
  uint64_t next_seq_ = 1;
  size_t size_ = 0;        ///< Wheel + overflow entries.
  size_t wheel_count_ = 0; ///< Entries resident in the wheel slots.
  size_t wake_count_ = 0;
};

}  // namespace lhrs::exec

#endif  // LHRS_EXEC_TIMER_WHEEL_H_
