#ifndef LHRS_EXEC_MPSC_MAILBOX_H_
#define LHRS_EXEC_MPSC_MAILBOX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

namespace lhrs::exec {

/// Multi-producer single-consumer mailbox: the cross-locality message
/// channel of the parallel execution engine. Any locality pushes; only the
/// owning locality's thread pops.
///
/// A mutex-guarded vector with whole-batch swap-out on the consumer side:
/// producers contend only for the time of one push_back, the consumer takes
/// the lock once per batch however large the backlog, and batches preserve
/// global arrival order — which implies the FIFO-per-sender ordering the
/// node protocols rely on. (A lock-free Vyukov-style stack would shave the
/// producer lock but reverses or complicates ordering; with handler
/// execution dominating each task, the mutex is not the bottleneck.)
template <typename T>
class MpscMailbox {
 public:
  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Appends every queued item to `out` (oldest first) and returns how many
  /// were taken. When the mailbox is empty, blocks up to `wait` for a Push
  /// or NotifyAll, then drains whatever is there (possibly nothing).
  size_t PopAll(std::vector<T>* out, std::chrono::microseconds wait) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && wait.count() > 0) {
      cv_.wait_for(lock, wait, [this] { return !items_.empty(); });
    }
    return DrainLocked(out);
  }

  /// Non-blocking drain.
  size_t PopAllNow(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    return DrainLocked(out);
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

  /// Wakes a consumer blocked in PopAll even though no item arrived — used
  /// for stop requests and "global state changed, re-check" nudges.
  void NotifyAll() { cv_.notify_all(); }

 private:
  size_t DrainLocked(std::vector<T>* out) {
    const size_t n = items_.size();
    if (n == 0) return 0;
    if (out->empty()) {
      out->swap(items_);
    } else {
      for (T& item : items_) out->push_back(std::move(item));
      items_.clear();
    }
    return n;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
};

}  // namespace lhrs::exec

#endif  // LHRS_EXEC_MPSC_MAILBOX_H_
