#include "exec/parallel_network.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace lhrs::exec {

namespace {

using std::chrono::microseconds;

/// How long a parked thread sleeps before re-checking global conditions
/// that have no dedicated wakeup (fast-forward eligibility, idle
/// detection). Pure backstop: the common wakeups are mailbox pushes.
constexpr microseconds kParkPoll{200};

/// Same safety valve as the deterministic loop: a protocol bug must fail a
/// test loudly, not spin a worker forever.
constexpr uint64_t kWorkerEventBudget = 200'000'000;

size_t HashNode(NodeId id) {
  return static_cast<size_t>(static_cast<uint64_t>(id) * 2654435761u);
}

}  // namespace

ParallelNetwork::ParallelNetwork(NetworkConfig config) : Network(config) {
  LHRS_CHECK_GE(config_.localities, size_t{1});
  LHRS_CHECK_GE(config_.max_nodes, size_t{1});
  driver_thread_ = std::this_thread::get_id();
  SetCurrentLocality(kHomeLocality);

  const size_t cap = config_.max_nodes;
  node_ptr_ = std::make_unique<std::atomic<Node*>[]>(cap);
  node_locality_ = std::make_unique<std::atomic<uint32_t>[]>(cap);
  node_available_ = std::make_unique<std::atomic<uint8_t>[]>(cap);
  node_epoch_ = std::make_unique<std::atomic<uint64_t>[]>(cap);

  workers_.reserve(config_.localities);
  for (size_t i = 1; i <= config_.localities; ++i) {
    auto w = std::make_unique<Worker>();
    w->locality = i;
    workers_.push_back(std::move(w));
  }
  // Threads start only after every Worker slot exists: a worker may look up
  // a sibling's mailbox while routing.
  for (std::unique_ptr<Worker>& w : workers_) {
    w->thread = std::thread(&ParallelNetwork::WorkerMain, this, w.get());
  }
}

ParallelNetwork::~ParallelNetwork() { Stop(); }

void ParallelNetwork::Stop() {
  if (!running_.exchange(false)) return;
  for (std::unique_ptr<Worker>& w : workers_) w->mailbox.NotifyAll();
  for (std::unique_ptr<Worker>& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

// --- Node management (driver thread) ---------------------------------------

size_t ParallelNetwork::DefaultLocality(NodeId id, const Node& node) const {
  if (workers_.empty()) return kHomeLocality;
  // Servers (anything carrying a bucket) shard across the workers; clients,
  // coordinators, the chaos controller and stubs stay home so the session
  // and control planes remain single-threaded on the driver.
  if (std::strstr(node.role(), "bucket") == nullptr) return kHomeLocality;
  return 1 + HashNode(id) % workers_.size();
}

NodeId ParallelNetwork::AddNode(std::unique_ptr<Node> node) {
  LHRS_CHECK(OnDriverThread()) << "AddNode is driver-thread-only";
  LHRS_CHECK_LT(nodes_.size(), config_.max_nodes)
      << "NetworkConfig::max_nodes capacity exhausted";
  const NodeId id = Network::AddNode(std::move(node));
  Node* ptr = nodes_[id].node.get();
  node_locality_[id].store(
      static_cast<uint32_t>(DefaultLocality(id, *ptr)),
      std::memory_order_relaxed);
  node_available_[id].store(1, std::memory_order_relaxed);
  node_epoch_[id].store(0, std::memory_order_relaxed);
  node_ptr_[id].store(ptr, std::memory_order_release);
  // The count publish is the release fence workers acquire through before
  // touching any of the per-node mirrors above.
  published_nodes_.store(static_cast<size_t>(id) + 1,
                         std::memory_order_release);
  return id;
}

void ParallelNetwork::ReplaceNode(NodeId id, std::unique_ptr<Node> node) {
  LHRS_CHECK(OnDriverThread()) << "ReplaceNode is driver-thread-only";
  Network::ReplaceNode(id, std::move(node));
  node_ptr_[id].store(nodes_[id].node.get(), std::memory_order_release);
}

size_t ParallelNetwork::LocalityOf(NodeId id) const {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) <
                            published_nodes_.load(std::memory_order_acquire));
  return node_locality_[id].load(std::memory_order_relaxed);
}

void ParallelNetwork::SetAffinity(NodeId id, size_t locality) {
  LHRS_CHECK(OnDriverThread()) << "SetAffinity is driver-thread-only";
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  LHRS_CHECK_LE(locality, workers_.size());
  node_locality_[id].store(static_cast<uint32_t>(locality),
                           std::memory_order_relaxed);
}

void ParallelNetwork::SetAvailable(NodeId id, bool available) {
  LHRS_CHECK(OnDriverThread()) << "SetAvailable is driver-thread-only";
  Network::SetAvailable(id, available);
  node_epoch_[id].store(nodes_[id].epoch, std::memory_order_relaxed);
  node_available_[id].store(available ? 1 : 0, std::memory_order_release);
}

bool ParallelNetwork::available(NodeId id) const {
  LHRS_CHECK(id >= 0 && static_cast<size_t>(id) <
                            published_nodes_.load(std::memory_order_acquire));
  return node_available_[id].load(std::memory_order_acquire) != 0;
}

// --- Clocks and telemetry --------------------------------------------------

SimTime ParallelNetwork::LocalNow(size_t locality) const {
  if (locality == kHomeLocality) return now_;
  return workers_[locality - 1]->clock.load(std::memory_order_relaxed);
}

SimTime ParallelNetwork::now() const { return LocalNow(CurrentLocality()); }

MessageStats& ParallelNetwork::ShardStats(size_t locality) {
  if (locality == kHomeLocality) return stats_;
  return workers_[locality - 1]->stats;
}

MessageStats& ParallelNetwork::stats() {
  LHRS_CHECK(OnDriverThread()) << "stats() is driver-thread-only";
  // Quiescence contract: callers read stats between Steps or after the
  // workload drained, so the shards' last writes happen-before this merge
  // via the task counter's release/acquire pair.
  for (std::unique_ptr<Worker>& w : workers_) {
    stats_.MergeFrom(w->stats);
    w->stats.Reset();
  }
  if (telemetry_ != nullptr) telemetry_->MergeShards();
  return stats_;
}

telemetry::Telemetry* ParallelNetwork::EnableTelemetry(
    telemetry::TelemetryConfig config) {
  if (telemetry_ != nullptr) return telemetry_.get();
  Network::EnableTelemetry(config);
  // The virtual now() resolves per locality, so every emitter stamps its
  // own simulated clock.
  telemetry_->set_clock([this] { return now(); });
  telemetry_->EnsureShards(workers_.size());
  for (std::unique_ptr<Worker>& w : workers_) {
    w->delivery_latency_us =
        &telemetry_->shard(w->locality).GetHistogram("net.delivery_latency_us");
  }
  return telemetry_.get();
}

// --- Send path (any locality) ----------------------------------------------

void ParallelNetwork::Send(NodeId from, NodeId to,
                           std::unique_ptr<MessageBody> body) {
  EnqueueParallel(std::move(body), from, to, /*multicast_member=*/false);
}

void ParallelNetwork::Multicast(
    NodeId from,
    std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>> batch) {
  bool first = true;
  for (auto& [to, body] : batch) {
    const bool member = config_.multicast_available && !first;
    EnqueueParallel(std::move(body), from, to, member);
    first = false;
  }
}

void ParallelNetwork::Dispatch(Task task, size_t locality) {
  // The increment strictly precedes the push and the matching decrement
  // strictly follows execution, so "counter == 0" proves both queues and
  // executors are empty — the engine's idle predicate.
  tasks_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (locality == kHomeLocality) {
    home_inbox_.Push(std::move(task));
  } else {
    workers_[locality - 1]->mailbox.Push(std::move(task));
  }
}

void ParallelNetwork::EnqueueParallel(std::unique_ptr<MessageBody> body,
                                      NodeId from, NodeId to,
                                      bool multicast_member) {
  LHRS_CHECK(body != nullptr);
  const size_t published = published_nodes_.load(std::memory_order_acquire);
  LHRS_CHECK(to >= 0 && static_cast<size_t>(to) < published)
      << "send to unknown node " << to;
  const size_t sender_locality = CurrentLocality();
  const size_t bytes = body->ByteSize();
  const SimTime send_time = LocalNow(sender_locality);

  ShardStats(sender_locality)
      .RecordSend(body->kind(), bytes, !multicast_member, from);
  if (telemetry_ != nullptr) {
    tm_.sent_messages->Add();
    tm_.sent_bytes->Add(bytes);
    if (telemetry_->trace_messages()) {
      telemetry_->tracer().Record(
          {send_time, telemetry::TraceEventType::kSend, from, to,
           body->kind(), -1, static_cast<int64_t>(bytes)});
    }
  }

  if (router_ != nullptr && router_->IsRemote(to)) {
    // Cluster egress keeps its simulator semantics; combining a remote
    // router with the parallel engine is not supported (cluster mode runs
    // localities = 0), but the branch stays for interface parity.
    router_->RouteRemote(from, to, std::move(body));
    return;
  }

  auto msg = std::make_shared<Message>();
  msg->id = next_parallel_message_id_.fetch_add(1, std::memory_order_relaxed);
  msg->from = from;
  msg->to = to;
  msg->send_time = send_time;
  msg->multicast_member = multicast_member;
  msg->to_epoch = node_epoch_[to].load(std::memory_order_acquire);
  msg->body = std::move(body);

  SimTime latency = DeliveryLatency(bytes);
  if (injector_ != nullptr) {
    const FaultActions actions = injector_->OnMessage(*msg, send_time);
    if (actions.latency_factor != 1.0) {
      latency = static_cast<SimTime>(static_cast<double>(latency) *
                                     actions.latency_factor);
    }
    latency += actions.extra_delay_us;
    if (actions.drop) {
      ShardStats(sender_locality).RecordDeliveryFailure();
      if (telemetry_ != nullptr) tm_.delivery_failures->Add();
      if (msg->from != kInvalidNode) {
        const size_t fail_locality = LocalityOf(msg->from);
        Task task;
        task.kind = Task::Kind::kFailure;
        task.time = send_time + latency + config_.timeout_us;
        task.message = std::move(msg);
        Dispatch(std::move(task), fail_locality);
      }
      return;
    }
    for (uint32_t d = 0; d < actions.duplicates; ++d) {
      Task dup;
      dup.kind = Task::Kind::kDeliver;
      dup.time = send_time + latency;
      dup.message = msg;
      Dispatch(std::move(dup), LocalityOf(to));
    }
  }

  Task task;
  task.kind = Task::Kind::kDeliver;
  task.time = send_time + latency;
  const size_t dest_locality = LocalityOf(to);
  task.message = std::move(msg);
  Dispatch(std::move(task), dest_locality);
}

void ParallelNetwork::Inject(NodeId from, NodeId to,
                             std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(body != nullptr);
  const size_t published = published_nodes_.load(std::memory_order_acquire);
  LHRS_CHECK(to >= 0 && static_cast<size_t>(to) < published)
      << "inject to unknown node " << to;
  auto msg = std::make_shared<Message>();
  msg->id = next_parallel_message_id_.fetch_add(1, std::memory_order_relaxed);
  msg->from = from;
  msg->to = to;
  msg->send_time = LocalNow(CurrentLocality());
  msg->to_epoch = node_epoch_[to].load(std::memory_order_acquire);
  msg->body = std::move(body);
  Task task;
  task.kind = Task::Kind::kDeliver;
  task.time = msg->send_time;
  const size_t dest_locality = LocalityOf(to);
  task.message = std::move(msg);
  Dispatch(std::move(task), dest_locality);
}

void ParallelNetwork::NotifyDeliveryFailure(NodeId from, NodeId to,
                                            std::unique_ptr<MessageBody> body) {
  LHRS_CHECK(body != nullptr);
  const size_t sender_locality = CurrentLocality();
  ShardStats(sender_locality).RecordDeliveryFailure();
  if (telemetry_ != nullptr) tm_.delivery_failures->Add();
  if (from == kInvalidNode) return;
  auto msg = std::make_shared<Message>();
  msg->id = next_parallel_message_id_.fetch_add(1, std::memory_order_relaxed);
  msg->from = from;
  msg->to = to;
  msg->send_time = LocalNow(sender_locality);
  msg->body = std::move(body);
  Task task;
  task.kind = Task::Kind::kFailure;
  task.time = msg->send_time;
  task.message = std::move(msg);
  Dispatch(std::move(task), LocalityOf(from));
}

void ParallelNetwork::ScheduleTimer(NodeId node, SimTime delay,
                                    uint64_t timer_id, bool wake) {
  const size_t published = published_nodes_.load(std::memory_order_acquire);
  LHRS_CHECK(node >= 0 && static_cast<size_t>(node) < published);
  const size_t target = node_locality_[node].load(std::memory_order_relaxed);
  if (target == kHomeLocality) {
    if (OnDriverThread()) {
      Network::ScheduleTimer(node, delay, timer_id, wake);
    } else {
      Task task;
      task.kind = Task::Kind::kTimer;
      task.time = LocalNow(CurrentLocality()) + delay;
      task.timer_node = node;
      task.timer_id = timer_id;
      task.timer_wake = wake;
      Dispatch(std::move(task), kHomeLocality);
    }
    return;
  }
  Worker* w = workers_[target - 1].get();
  if (wake) pending_wake_timers_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(w->wheel_mu);
    w->wheel.Schedule(LocalNow(CurrentLocality()) + delay, node, timer_id,
                      wake);
  }
  // A parked worker must notice the new wake timer for fast-forward.
  w->mailbox.NotifyAll();
}

// --- Driver side: home locality pump ---------------------------------------

size_t ParallelNetwork::DrainHomeInbox() {
  home_scratch_.clear();
  const size_t n = home_inbox_.PopAllNow(&home_scratch_);
  for (Task& task : home_scratch_) {
    Event ev{};
    // Stamp no earlier than the home clock: the deterministic event loop
    // requires monotone time, and a worker's clock may trail the home one.
    ev.time = std::max(task.time, now_);
    ev.seq = next_seq_++;
    switch (task.kind) {
      case Task::Kind::kDeliver:
        ev.type = EventType::kDeliver;
        ev.message = std::move(task.message);
        break;
      case Task::Kind::kFailure:
        ev.type = EventType::kDeliveryFailure;
        ev.message = std::move(task.message);
        break;
      case Task::Kind::kTimer:
        ev.type = EventType::kTimer;
        ev.timer_node = task.timer_node;
        ev.timer_id = task.timer_id;
        ev.wake = task.timer_wake;
        break;
    }
    Push(std::move(ev));
  }
  if (n > 0) {
    tasks_in_flight_.fetch_sub(static_cast<int64_t>(n),
                               std::memory_order_acq_rel);
  }
  return n;
}

bool ParallelNetwork::IdleLocked() const {
  // Sound because Dispatch increments before pushing and executors
  // decrement after finishing: reading 0 here (after a drain) proves no
  // queued or running task exists anywhere; wake timers are tracked
  // separately and wake_events_ covers the home queue.
  return wake_events_ == 0 &&
         tasks_in_flight_.load(std::memory_order_acquire) == 0 &&
         pending_wake_timers_.load(std::memory_order_acquire) == 0;
}

bool ParallelNetwork::HoldHomeEvent() const {
  // A home *timer* event must wait for worker quiescence: a reply still in
  // flight on a worker carries an earlier virtual time, and firing the
  // timer first would jump now_ past deadlines the reply was about to meet
  // (spurious client retries). The deterministic loop gets this for free
  // from global (time, seq) order; here quiescence is the substitute.
  // Deliver/failure events carry final timestamps and flow immediately.
  return !events_.empty() && events_.top().type == EventType::kTimer &&
         tasks_in_flight_.load(std::memory_order_acquire) != 0;
}

bool ParallelNetwork::Step() {
  LHRS_CHECK(OnDriverThread()) << "Step is driver-thread-only";
  for (;;) {
    DrainHomeInbox();
    if (wake_events_ > 0 && !HoldHomeEvent()) {
      LHRS_CHECK(!events_.empty());
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      ProcessEvent(std::move(ev));
      return true;
    }
    if (wake_events_ == 0 && IdleLocked()) return false;
    // Work is in flight on the workers (or wake timers are pending there):
    // block until something lands in the home inbox, with a poll backstop
    // for worker-only progress.
    home_scratch_.clear();
    if (home_inbox_.PopAll(&home_scratch_, kParkPoll) > 0) {
      // Re-inject what the blocking pop took; the next loop iteration
      // turns it into events.
      for (Task& task : home_scratch_) home_inbox_.Push(std::move(task));
    }
  }
}

void ParallelNetwork::RunUntil(SimTime t) {
  LHRS_CHECK(OnDriverThread()) << "RunUntil is driver-thread-only";
  for (;;) {
    bool progressed = false;
    for (;;) {
      DrainHomeInbox();
      if (events_.empty() || events_.top().time > t) break;
      if (HoldHomeEvent()) break;  // Let in-flight worker work land first.
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      ProcessEvent(std::move(ev));
      progressed = true;
    }
    if (tasks_in_flight_.load(std::memory_order_acquire) != 0) {
      home_scratch_.clear();
      if (home_inbox_.PopAll(&home_scratch_, kParkPoll) > 0) {
        for (Task& task : home_scratch_) home_inbox_.Push(std::move(task));
      }
      continue;
    }
    if (AdvanceWorkersTo(t)) continue;
    if (progressed) continue;
    break;
  }
  now_ = std::max(now_, t);
  for (std::unique_ptr<Worker>& w : workers_) {
    SimTime clock = w->clock.load(std::memory_order_relaxed);
    while (clock < t &&
           !w->clock.compare_exchange_weak(clock, t,
                                           std::memory_order_relaxed)) {
    }
  }
}

bool ParallelNetwork::AdvanceWorkersTo(SimTime t) {
  bool fired = false;
  std::vector<TimerEntry> due;
  for (std::unique_ptr<Worker>& w : workers_) {
    due.clear();
    {
      std::lock_guard<std::mutex> lock(w->wheel_mu);
      if (w->wheel.empty()) continue;
      w->wheel.PopDue(t, &due);
    }
    for (TimerEntry& entry : due) {
      fired = true;
      Task task;
      task.kind = Task::Kind::kTimer;
      task.time = entry.time;
      task.timer_node = entry.node;
      task.timer_id = entry.timer_id;
      task.timer_wake = entry.wake;
      Dispatch(std::move(task), w->locality);
      if (entry.wake) {
        pending_wake_timers_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }
  return fired;
}

// --- Worker side -----------------------------------------------------------

void ParallelNetwork::WorkerMain(Worker* w) {
  SetCurrentLocality(w->locality);
  std::vector<Task> batch;
  while (running_.load(std::memory_order_acquire)) {
    batch.clear();
    if (w->mailbox.PopAll(&batch, kParkPoll) == 0) {
      MaybeFastForward(w);
      continue;
    }
    for (const Task& task : batch) {
      ExecuteTask(w, task);
      if (tasks_in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        home_inbox_.NotifyAll();
      }
    }
  }
  // Graceful drain: execute what was already queued before the stop.
  batch.clear();
  w->mailbox.PopAllNow(&batch);
  for (const Task& task : batch) {
    ExecuteTask(w, task);
    tasks_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

SimTime ParallelNetwork::ServiceUs(size_t bytes) const {
  return config_.service_us_per_task +
         config_.service_us_per_kb * ((bytes + 1023) / 1024);
}

void ParallelNetwork::FireTimersUpTo(Worker* w, SimTime t) {
  std::vector<TimerEntry> due;
  {
    std::lock_guard<std::mutex> lock(w->wheel_mu);
    if (w->wheel.empty()) return;
    w->wheel.PopDue(t, &due);
  }
  if (due.empty()) return;
  // Count the popped timers as in-flight tasks *before* releasing their
  // wake accounting, so the driver never observes a transient idle while a
  // handler is about to run.
  tasks_in_flight_.fetch_add(static_cast<int64_t>(due.size()),
                             std::memory_order_acq_rel);
  for (const TimerEntry& entry : due) {
    if (entry.wake) {
      pending_wake_timers_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  for (const TimerEntry& entry : due) {
    RunTimer(w, entry);
    if (tasks_in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      home_inbox_.NotifyAll();
    }
  }
}

void ParallelNetwork::RunTimer(Worker* w, const TimerEntry& entry) {
  if (node_available_[entry.node].load(std::memory_order_acquire) == 0) {
    return;  // Timers to an unavailable node are silently dropped.
  }
  const SimTime start =
      std::max(w->clock.load(std::memory_order_relaxed), entry.time);
  w->clock.store(start + config_.service_us_per_task,
                 std::memory_order_relaxed);
  ++w->processed;
  LHRS_CHECK_LT(w->processed, kWorkerEventBudget)
      << "worker event budget exhausted — protocol loop?";
  node_ptr_[entry.node].load(std::memory_order_acquire)
      ->HandleTimer(entry.timer_id);
}

void ParallelNetwork::MaybeFastForward(Worker* w) {
  // The parallel analogue of the deterministic loop's idle time jump: only
  // when nothing is running or queued anywhere may this locality's clock
  // leap to its next wake timer. (A benign race remains — a task may be
  // dispatched right after the check — but it only skews the virtual
  // clock, never correctness, and in fault-free runs no wake timers are
  // armed on workers at all.)
  if (tasks_in_flight_.load(std::memory_order_acquire) != 0) return;
  if (pending_wake_timers_.load(std::memory_order_acquire) == 0) return;
  SimTime target;
  {
    std::lock_guard<std::mutex> lock(w->wheel_mu);
    std::optional<SimTime> next = w->wheel.NextWakeTime();
    if (!next.has_value()) return;
    target = *next;
  }
  FireTimersUpTo(w, target);
}

void ParallelNetwork::ExecuteTask(Worker* w, const Task& task) {
  switch (task.kind) {
    case Task::Kind::kTimer: {
      FireTimersUpTo(w, task.time);
      TimerEntry entry;
      entry.time = task.time;
      entry.node = task.timer_node;
      entry.timer_id = task.timer_id;
      entry.wake = task.timer_wake;
      RunTimer(w, entry);
      return;
    }
    case Task::Kind::kDeliver: {
      const Message& msg = *task.message;
      FireTimersUpTo(
          w, std::max(w->clock.load(std::memory_order_relaxed), task.time));
      if (node_available_[msg.to].load(std::memory_order_acquire) == 0 ||
          node_epoch_[msg.to].load(std::memory_order_acquire) !=
              msg.to_epoch) {
        // Destination down, or it crashed while the message was in flight:
        // bounce to the sender after the detection timeout.
        ShardStats(w->locality).RecordDeliveryFailure();
        if (telemetry_ != nullptr) tm_.delivery_failures->Add();
        if (msg.from != kInvalidNode &&
            node_available_[msg.from].load(std::memory_order_acquire) != 0) {
          Task bounce;
          bounce.kind = Task::Kind::kFailure;
          bounce.time = task.time + config_.timeout_us;
          bounce.message = task.message;
          Dispatch(std::move(bounce), LocalityOf(msg.from));
        }
        return;
      }
      const size_t bytes = msg.body->ByteSize();
      const SimTime start =
          std::max(w->clock.load(std::memory_order_relaxed), task.time);
      w->clock.store(start + ServiceUs(bytes), std::memory_order_relaxed);
      ShardStats(w->locality).RecordReceive(msg.to, bytes);
      if (telemetry_ != nullptr) {
        tm_.deliveries->Add();
        if (w->delivery_latency_us != nullptr) {
          w->delivery_latency_us->Record(start - msg.send_time);
        }
        if (telemetry_->trace_messages()) {
          telemetry_->tracer().Record(
              {start, telemetry::TraceEventType::kDeliver, msg.to, msg.from,
               msg.body->kind(), -1, static_cast<int64_t>(bytes)});
        }
      }
      ++w->processed;
      LHRS_CHECK_LT(w->processed, kWorkerEventBudget)
          << "worker event budget exhausted — protocol loop?";
      node_ptr_[msg.to].load(std::memory_order_acquire)->HandleMessage(msg);
      return;
    }
    case Task::Kind::kFailure: {
      const Message& msg = *task.message;
      FireTimersUpTo(
          w, std::max(w->clock.load(std::memory_order_relaxed), task.time));
      if (msg.from == kInvalidNode ||
          node_available_[msg.from].load(std::memory_order_acquire) == 0) {
        return;
      }
      const SimTime start =
          std::max(w->clock.load(std::memory_order_relaxed), task.time);
      w->clock.store(start + config_.service_us_per_task,
                     std::memory_order_relaxed);
      if (telemetry_ != nullptr && telemetry_->trace_messages()) {
        telemetry_->tracer().Record(
            {start, telemetry::TraceEventType::kDeliveryFailure, msg.from,
             msg.to, msg.body->kind(), -1,
             static_cast<int64_t>(msg.body->ByteSize())});
      }
      ++w->processed;
      node_ptr_[msg.from].load(std::memory_order_acquire)
          ->HandleDeliveryFailure(msg);
      return;
    }
  }
}

std::unique_ptr<Network> MakeNetwork(const NetworkConfig& config) {
  if (config.localities == 0) return std::make_unique<Network>(config);
  return std::make_unique<ParallelNetwork>(config);
}

}  // namespace lhrs::exec
