#ifndef LHRS_EXEC_PARALLEL_NETWORK_H_
#define LHRS_EXEC_PARALLEL_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/mpsc_mailbox.h"
#include "exec/timer_wheel.h"
#include "net/locality.h"
#include "net/network.h"

namespace lhrs::exec {

/// Locality-sharded parallel execution engine behind the Network surface.
///
/// The simulated multicomputer's node handlers are scheduled as
/// non-blocking run-to-completion tasks across `config.localities` worker
/// threads plus the *home* locality (id 0), which is pumped exclusively by
/// the driver thread through Step / RunUntil / RunUntilIdle. Every node has
/// a stable locality affinity: server nodes (role containing "bucket") hash
/// across the workers, everything else — clients, coordinators, the chaos
/// controller, stubs — lives home. Because all of a node's handlers run on
/// its own locality's single thread, node state needs no locking; because
/// the home locality is the driver thread, the facade/session layer above
/// (token maps, completion callbacks, SessionPool) runs unchanged and
/// unsynchronized.
///
/// Time: each locality carries a virtual clock modelling one simulated
/// core. A delivery charges `service_us_per_task + service_us_per_kb·KiB`
/// occupancy to the destination locality's clock (start = max(clock,
/// arrival); clock = start + service), so with servers sharded over L
/// localities an overloaded workload completes in ~1/L the simulated time —
/// the quantity bench_f11_scaling measures. With the service knobs at 0 the
/// clocks degenerate to pure latency propagation, matching the
/// deterministic simulator's cost model.
///
/// Determinism contract: parallel runs are *convergence-equivalent* to the
/// single-threaded Network, not trace-identical. The same seeded workload
/// reaches the same logical file contents, parity invariants and
/// client-visible results, but event interleavings, split timings and
/// message counts may differ. Chaos replays that must be byte-identical use
/// the deterministic engine (localities = 0); the cross-mode equivalence
/// tests assert the convergence half.
///
/// Threading rules (checked where cheap): AddNode / ReplaceNode /
/// SetAvailable / Step / RunUntil / stats() are driver-thread-only;
/// Send / Multicast / ScheduleTimer / now() may be called from any
/// locality. stats() and telemetry merges assume the engine is quiescent
/// (between Steps or after the workload drained).
class ParallelNetwork : public Network {
 public:
  explicit ParallelNetwork(NetworkConfig config);
  ~ParallelNetwork() override;

  NodeId AddNode(std::unique_ptr<Node> node) override;
  void ReplaceNode(NodeId id, std::unique_ptr<Node> node) override;
  void Send(NodeId from, NodeId to,
            std::unique_ptr<MessageBody> body) override;
  void Multicast(NodeId from,
                 std::vector<std::pair<NodeId, std::unique_ptr<MessageBody>>>
                     batch) override;
  void SetAvailable(NodeId id, bool available) override;
  bool available(NodeId id) const override;
  void ScheduleTimer(NodeId node, SimTime delay, uint64_t timer_id,
                     bool wake = true) override;
  bool Step() override;
  void RunUntil(SimTime t) override;
  using Network::RunUntil;  // RunUntil(pred) and RunUntilIdle build on Step.
  SimTime now() const override;
  MessageStats& stats() override;
  telemetry::Telemetry* EnableTelemetry(
      telemetry::TelemetryConfig config = {}) override;
  void Inject(NodeId from, NodeId to,
              std::unique_ptr<MessageBody> body) override;
  void NotifyDeliveryFailure(NodeId from, NodeId to,
                             std::unique_ptr<MessageBody> body) override;

  /// Worker-locality count (home excluded).
  size_t worker_count() const { return workers_.size(); }

  /// Locality a node's handlers run on (kHomeLocality or 1..worker_count).
  size_t LocalityOf(NodeId id) const;

  /// Overrides the role-hash placement. Call before any traffic reaches
  /// the node; driver thread only.
  void SetAffinity(NodeId id, size_t locality);

  /// Graceful shutdown: workers drain their mailboxes, execute what they
  /// drained, and join. Idempotent; invoked by the destructor. Call from
  /// the driver thread when the workload is quiescent — pending wake
  /// timers are abandoned, queued tasks are not.
  void Stop();

 private:
  struct Task {
    enum class Kind : uint8_t { kDeliver, kFailure, kTimer };
    Kind kind = Kind::kDeliver;
    SimTime time = 0;  ///< Arrival / fire time on the destination locality.
    std::shared_ptr<Message> message;  // null for kTimer.
    NodeId timer_node = kInvalidNode;
    uint64_t timer_id = 0;
    bool timer_wake = true;
  };

  struct Worker {
    size_t locality = 0;  ///< 1-based locality id.
    std::thread thread;
    MpscMailbox<Task> mailbox;
    std::mutex wheel_mu;
    TimerWheel wheel;
    std::atomic<SimTime> clock{0};
    MessageStats stats;  ///< Written only by this worker (merged on read).
    telemetry::Histogram* delivery_latency_us = nullptr;  ///< Shard handle.
    uint64_t processed = 0;
  };

  bool OnDriverThread() const {
    return std::this_thread::get_id() == driver_thread_;
  }
  SimTime LocalNow(size_t locality) const;
  /// Handler occupancy charged to a locality clock per delivered message.
  SimTime ServiceUs(size_t bytes) const;
  MessageStats& ShardStats(size_t locality);
  size_t DefaultLocality(NodeId id, const Node& node) const;

  /// The parallel twin of Network::Enqueue: stamps the message with the
  /// sender locality's clock, runs the fault injector, and dispatches
  /// deliver/failure tasks to the destination's locality.
  void EnqueueParallel(std::unique_ptr<MessageBody> body, NodeId from,
                       NodeId to, bool multicast_member);
  void Dispatch(Task task, size_t locality);

  /// Moves everything in the home inbox into the deterministic event queue
  /// (stamped no earlier than now_). Returns how many tasks moved.
  size_t DrainHomeInbox();
  bool IdleLocked() const;
  /// True when the top home event is a timer that must wait for worker
  /// quiescence before firing (time-order substitute; see the .cc).
  bool HoldHomeEvent() const;

  void WorkerMain(Worker* w);
  void ExecuteTask(Worker* w, const Task& task);
  /// Fires every timer of `w` due at or before `t` (ahead of the task that
  /// carried time forward). Assumes the caller is w's thread.
  void FireTimersUpTo(Worker* w, SimTime t);
  void RunTimer(Worker* w, const TimerEntry& entry);
  /// Idle-locality time jump: with no task in flight anywhere, advance this
  /// worker's clock to its next wake timer and fire it.
  void MaybeFastForward(Worker* w);
  /// Driver-side catch-up for RunUntil(t): pops every worker timer due at
  /// or before `t` and re-dispatches it as a mailbox task. Returns true
  /// when anything fired. Requires tasks_in_flight_ == 0.
  bool AdvanceWorkersTo(SimTime t);

  std::thread::id driver_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  MpscMailbox<Task> home_inbox_;
  std::vector<Task> home_scratch_;  ///< Driver-only drain buffer.
  std::atomic<bool> running_{true};

  /// Deliver/failure/timer tasks queued or executing outside the home
  /// event queue (home-inbox entries count until drained). Together with
  /// the base wake_events_ and pending wake timers this defines idle.
  std::atomic<int64_t> tasks_in_flight_{0};
  /// Wake timers resident in worker wheels.
  std::atomic<int64_t> pending_wake_timers_{0};

  std::atomic<uint64_t> next_parallel_message_id_{1};

  // Node attribute mirrors sized config.max_nodes so worker threads index
  // without touching the (driver-mutated) base vectors.
  std::unique_ptr<std::atomic<Node*>[]> node_ptr_;
  std::unique_ptr<std::atomic<uint32_t>[]> node_locality_;
  std::unique_ptr<std::atomic<uint8_t>[]> node_available_;
  std::unique_ptr<std::atomic<uint64_t>[]> node_epoch_;
  std::atomic<size_t> published_nodes_{0};
};

/// Builds the engine the config asks for: the classic single-threaded
/// deterministic Network when `config.localities == 0` (the chaos-replay /
/// test oracle), a ParallelNetwork otherwise.
std::unique_ptr<Network> MakeNetwork(const NetworkConfig& config);

}  // namespace lhrs::exec

#endif  // LHRS_EXEC_PARALLEL_NETWORK_H_
