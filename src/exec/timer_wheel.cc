#include "exec/timer_wheel.h"

#include <algorithm>

#include "common/logging.h"

namespace lhrs::exec {

TimerWheel::TimerWheel(SimTime slot_us, size_t slots)
    : slot_us_(std::max<SimTime>(slot_us, 1)),
      slots_(std::max<size_t>(slots, 2)) {}

void TimerWheel::Schedule(SimTime time, NodeId node, uint64_t timer_id,
                          bool wake) {
  TimerEntry entry{std::max(time, cursor_time_), next_seq_++, node, timer_id,
                   wake};
  if (wake) ++wake_count_;
  ++size_;
  Insert(std::move(entry));
}

void TimerWheel::Insert(TimerEntry entry) {
  if (entry.time >= Horizon()) {
    overflow_.emplace(entry.time, std::move(entry));
    return;
  }
  slots_[SlotIndex(entry.time)].push_back(std::move(entry));
  ++wheel_count_;
}

void TimerWheel::Refill() {
  const SimTime horizon = Horizon();
  while (!overflow_.empty() && overflow_.begin()->first < horizon) {
    TimerEntry entry = std::move(overflow_.begin()->second);
    overflow_.erase(overflow_.begin());
    slots_[SlotIndex(entry.time)].push_back(std::move(entry));
    ++wheel_count_;
  }
}

void TimerWheel::PopDue(SimTime t, std::vector<TimerEntry>* out) {
  const size_t first_out = out->size();
  while (cursor_time_ <= t) {
    if (size_ == 0) {
      // Nothing anywhere: jump the cursor in one step.
      cursor_time_ = t + 1;
      break;
    }
    if (wheel_count_ == 0) {
      // Only overflow entries remain; skip ahead lap by lap until the
      // earliest one cascades in (or t is reached).
      const SimTime next = overflow_.begin()->first;
      if (next > t) {
        cursor_time_ = t + 1;
        break;
      }
      // Land the cursor at the start of next's lap so Refill picks it up.
      const SimTime lap = slot_us_ * static_cast<SimTime>(slots_.size());
      while (next >= Horizon()) cursor_time_ += lap;
      Refill();
      continue;
    }
    const SimTime slot_base = (cursor_time_ / slot_us_) * slot_us_;
    std::vector<TimerEntry>& bucket = slots_[SlotIndex(cursor_time_)];
    for (size_t i = 0; i < bucket.size();) {
      if (bucket[i].time <= t) {
        out->push_back(std::move(bucket[i]));
        bucket[i] = std::move(bucket.back());
        bucket.pop_back();
        --wheel_count_;
        --size_;
      } else {
        ++i;
      }
    }
    const SimTime slot_end = slot_base + slot_us_;  // Exclusive.
    if (slot_end > t) {
      cursor_time_ = t + 1;
      break;
    }
    LHRS_CHECK(bucket.empty()) << "timer left behind a passed slot";
    cursor_time_ = slot_end;
    Refill();
  }
  std::sort(out->begin() + first_out, out->end(),
            [](const TimerEntry& a, const TimerEntry& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  for (size_t i = first_out; i < out->size(); ++i) {
    if ((*out)[i].wake) --wake_count_;
  }
}

std::optional<SimTime> TimerWheel::NextWakeTime() const {
  if (wake_count_ == 0) return std::nullopt;
  std::optional<SimTime> best;
  for (const std::vector<TimerEntry>& bucket : slots_) {
    for (const TimerEntry& entry : bucket) {
      if (entry.wake && (!best || entry.time < *best)) best = entry.time;
    }
  }
  for (const auto& [time, entry] : overflow_) {
    if (!entry.wake) continue;
    // Overflow is time-sorted, so the first wake entry is its minimum.
    if (!best || time < *best) best = time;
    break;
  }
  return best;
}

}  // namespace lhrs::exec
