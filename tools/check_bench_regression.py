#!/usr/bin/env python3
"""Compares a freshly-generated bench report against its committed baseline.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance=0.20]

Walks every table shared by the two reports and compares numeric cells
row-by-row (rows are matched by position; table layouts are part of the
baseline contract). A cell fails
when the fresh value exceeds the baseline by more than the tolerance —
all simulated-cost tables report costs (messages, bytes, milliseconds),
so higher is worse.

Tables whose header contains rate columns ("ops/s", "bytes/s") are
measured wall-clock throughput, where higher is better and run-to-run
noise is expected; those are checked in the opposite direction with a
doubled tolerance, and only warn (throughput on shared CI runners is too
noisy to gate a merge on). Throughput rows are matched by their first
cell (the op label) instead of by position: per-ISA kernel tables
(bench_t3) contain one row per tier available on the machine, so the row
set legitimately differs between the baseline host and the CI runner —
rows present on only one side warn rather than fail.

Exception: a "(sim)" marker in any header cell (e.g. "ops/s (sim)",
"records/s (sim)") means the rates are derived from deterministic
simulated time, not wall clock — zero run-to-run noise, so they gate as
hard failures like cost tables. These tables keep positional row
matching, and direction is decided per column: "/s" columns fail when
the fresh value drops below baseline, every other numeric column fails
when it rises above (messages, latencies, skew ratios are costs).

Exit code: 0 clean, 1 regression, 2 usage/IO error.
"""

import json
import re
import sys

NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?(?:e[+-]?\d+)?$")
RATE_RE = re.compile(r"^(-?\d+(?:\.\d+)?)([KMG]?) (?:ops|B)/s$")
RATE_SCALE = {"": 1.0, "K": 1e3, "M": 1e6, "G": 1e9}


def parse_cell(cell):
    """Returns the numeric value of a table cell, or None for labels."""
    cell = cell.strip().rstrip("%")
    m = RATE_RE.match(cell)
    if m:
        return float(m.group(1)) * RATE_SCALE[m.group(2)]
    if NUMBER_RE.match(cell):
        return float(cell)
    return None


def is_throughput_table(table):
    return any("/s" in h for h in table.get("header", []))


def is_sim_table(table):
    """Deterministic simulated-time tables: gate hard, per-column direction."""
    return any("(sim)" in h for h in table.get("header", []))


def check_tables(baseline, fresh, tolerance):
    failures = []
    warnings = []
    fresh_tables = {t["title"]: t for t in fresh.get("tables", [])}
    for base_table in baseline.get("tables", []):
        title = base_table["title"]
        fresh_table = fresh_tables.get(title)
        if fresh_table is None:
            failures.append(f"table missing from fresh report: {title!r}")
            continue
        sim = is_sim_table(base_table)
        throughput = not sim and is_throughput_table(base_table)
        tol = tolerance * 2 if throughput else tolerance
        header = base_table.get("header", [])
        base_rows = base_table.get("rows", [])
        fresh_rows = fresh_table.get("rows", [])
        if throughput:
            # Match by op label: the machines' ISA tier sets may differ.
            fresh_by_label = {r[0]: r for r in fresh_rows if r}
            pairs = []
            for base_row in base_rows:
                if not base_row:
                    continue
                fresh_row = fresh_by_label.pop(base_row[0], None)
                if fresh_row is None:
                    warnings.append(
                        f"{title!r}: row {base_row[0]!r} missing from fresh "
                        f"report (ISA tier absent on this machine?)")
                    continue
                pairs.append((base_row[0], base_row, fresh_row))
            for label in fresh_by_label:
                warnings.append(
                    f"{title!r}: row {label!r} not in baseline (new ISA "
                    f"tier; refresh the committed baseline)")
        else:
            if len(base_rows) != len(fresh_rows):
                failures.append(
                    f"{title!r}: row count changed "
                    f"({len(base_rows)} -> {len(fresh_rows)}); refresh the "
                    f"committed baseline alongside the layout change")
                continue
            pairs = [(f"{idx} ({row[0]})" if row else str(idx), row, fresh)
                     for idx, (row, fresh) in enumerate(zip(base_rows,
                                                            fresh_rows))]
        for key, base_row, fresh_row in pairs:
            for col, (b_cell, f_cell) in enumerate(zip(base_row, fresh_row)):
                b = parse_cell(b_cell)
                f = parse_cell(f_cell)
                if b is None or f is None or b <= 0:
                    continue
                if sim and col < len(header) and "/s" in header[col]:
                    if f < b * (1 - tol):
                        failures.append(
                            f"{title!r} row {key} col {col}: sim throughput "
                            f"{f:g} < baseline {b:g} (-{(1 - f / b):.0%})")
                elif throughput:
                    if f < b * (1 - tol):
                        warnings.append(
                            f"{title!r} row {key} col {col}: throughput "
                            f"{f:g} < baseline {b:g} (-{(1 - f / b):.0%})")
                elif f > b * (1 + tol):
                    failures.append(
                        f"{title!r} row {key} col {col}: cost {f:g} > "
                        f"baseline {b:g} (+{(f / b - 1):.0%})")
    return failures, warnings


def main(argv):
    tolerance = 0.20
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(paths[0]) as f:
            baseline = json.load(f)
        with open(paths[1]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    failures, warnings = check_tables(baseline, fresh, tolerance)
    for w in warnings:
        print(f"warning: {w}")
    for f_msg in failures:
        print(f"REGRESSION: {f_msg}")
    if failures:
        print(f"{len(failures)} regression(s) beyond {tolerance:.0%} "
              f"tolerance vs {paths[0]}")
        return 1
    print(f"ok: {paths[1]} within {tolerance:.0%} of {paths[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
