// Tests for bucket merging (file shrinking, paper section 4.3): the
// inverse of splitting, with parity maintained through the shrink and
// client images reset when they run ahead of the file.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lhrs/lhrs_file.h"
#include "lhstar/lhstar_file.h"

namespace lhrs {
namespace {

Bytes Val(const std::string& s) { return BytesFromString(s); }

TEST(MergeTest, PlainFileShrinksAfterDeletions) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.file.enable_merge = true;
  LhStarFile file(opts);
  Rng rng(31);
  std::vector<Key> keys;
  for (int i = 0; i < 400; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, Val("v" + std::to_string(k))).ok()) keys.push_back(k);
  }
  const BucketNo peak = file.bucket_count();
  ASSERT_GT(peak, 16u);

  // Delete 90% of the records.
  const size_t keep = keys.size() / 10;
  for (size_t i = keep; i < keys.size(); ++i) {
    ASSERT_TRUE(file.Delete(keys[i]).ok());
  }
  EXPECT_LT(file.bucket_count(), peak / 2) << "file did not shrink";
  EXPECT_GT(file.coordinator().merges_performed(), 0u);

  // Every surviving record remains findable and correctly placed.
  for (size_t i = 0; i < keep; ++i) {
    auto got = file.Search(keys[i]);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, Val("v" + std::to_string(keys[i])));
  }
  const FileState& state = file.coordinator().state();
  for (BucketNo b = 0; b < file.bucket_count(); ++b) {
    for (Key key : file.bucket(b)->records().SortedKeys()) {
      EXPECT_EQ(state.Address(key), b);
    }
  }
}

TEST(MergeTest, StaleClientImageIsResetAfterShrink) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.file.enable_merge = true;
  LhStarFile file(opts);
  Rng rng(37);
  std::vector<Key> keys;
  for (int i = 0; i < 300; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, Val("x")).ok()) keys.push_back(k);
  }
  // Client 0's image is now large. Shrink the file hard.
  for (size_t i = 20; i < keys.size(); ++i) {
    ASSERT_TRUE(file.Delete(keys[i]).ok());
  }
  ASSERT_LT(file.bucket_count(), 12u);
  // The client's image is ahead of the file; ops must still succeed (via
  // the decommissioned server -> coordinator -> image reset path).
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(file.Search(keys[i]).ok());
  }
  EXPECT_LE(file.client(0).image().presumed_bucket_count(),
            file.bucket_count() + 2);
  // Once reset, addressing is direct again.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(file.Search(keys[i]).ok());
  }
}

TEST(MergeTest, ScanCorrectAfterShrink) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.file.enable_merge = true;
  LhStarFile file(opts);
  Rng rng(41);
  std::set<Key> keys;
  while (keys.size() < 250) keys.insert(rng.Next64());
  for (Key k : keys) ASSERT_TRUE(file.Insert(k, Val("x")).ok());
  std::vector<Key> doomed(keys.begin(), keys.end());
  for (size_t i = 30; i < doomed.size(); ++i) {
    ASSERT_TRUE(file.Delete(doomed[i]).ok());
    keys.erase(doomed[i]);
  }
  auto scan = file.Scan();
  ASSERT_TRUE(scan.ok()) << scan.status();
  std::set<Key> seen;
  for (const auto& rec : *scan) seen.insert(rec.key);
  EXPECT_EQ(seen, keys);
}

TEST(MergeTest, LhrsParityMaintainedThroughShrink) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.file.enable_merge = true;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  LhrsFile file(opts);
  Rng rng(43);
  std::vector<Key> keys;
  for (int i = 0; i < 400; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, rng.RandomBytes(24)).ok()) keys.push_back(k);
  }
  const BucketNo peak = file.bucket_count();
  ASSERT_GT(peak, 16u);
  for (size_t i = 40; i < keys.size(); ++i) {
    ASSERT_TRUE(file.Delete(keys[i]).ok());
  }
  EXPECT_LT(file.bucket_count(), peak);
  EXPECT_GT(file.coordinator().merges_performed(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok()) << "after shrink";
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(file.Search(keys[i]).ok());
  }
}

TEST(MergeTest, GrowShrinkGrowCycleStaysConsistent) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.file.enable_merge = true;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  Rng rng(47);
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<Key> keys;
    for (int i = 0; i < 250; ++i) {
      const Key k = rng.Next64();
      if (file.Insert(k, rng.RandomBytes(16)).ok()) keys.push_back(k);
    }
    ASSERT_TRUE(file.VerifyParityInvariants().ok())
        << "cycle " << cycle << " after growth";
    for (size_t i = 10; i < keys.size(); ++i) {
      ASSERT_TRUE(file.Delete(keys[i]).ok());
    }
    ASSERT_TRUE(file.VerifyParityInvariants().ok())
        << "cycle " << cycle << " after shrink";
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(file.Search(keys[i]).ok());
    }
  }
}

TEST(MergeTest, RecoveryStillWorksAfterShrink) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.file.enable_merge = true;
  opts.group_size = 4;
  opts.policy.base_k = 1;
  LhrsFile file(opts);
  Rng rng(53);
  std::vector<Key> keys;
  for (int i = 0; i < 300; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, Val("value-" + std::to_string(k))).ok()) {
      keys.push_back(k);
    }
  }
  for (size_t i = 60; i < keys.size(); ++i) {
    ASSERT_TRUE(file.Delete(keys[i]).ok());
  }
  keys.resize(60);
  ASSERT_GT(file.bucket_count(), 1u);
  const NodeId dead = file.CrashDataBucket(file.bucket_count() - 1);
  file.DetectAndRecover(dead);
  EXPECT_EQ(file.rs_coordinator().groups_lost(), 0u);
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok()) << got.status();
  }
}

TEST(MergeTest, NeverShrinksBelowInitialBuckets) {
  LhStarFile::Options opts;
  opts.file.bucket_capacity = 10;
  opts.file.enable_merge = true;
  opts.file.initial_buckets = 2;
  LhStarFile file(opts);
  Rng rng(59);
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    const Key k = rng.Next64();
    if (file.Insert(k, Val("x")).ok()) keys.push_back(k);
  }
  for (Key k : keys) ASSERT_TRUE(file.Delete(k).ok());
  EXPECT_GE(file.bucket_count(), 2u);
  EXPECT_TRUE(file.Insert(1, Val("fresh")).ok());
  EXPECT_TRUE(file.Search(1).ok());
}

}  // namespace
}  // namespace lhrs
