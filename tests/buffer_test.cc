// Unit tests for the ref-counted aligned Buffer and the copy-on-write
// BufferView: ownership, slicing, detach-on-shared-mutation, and the
// one-pass padded XOR delta builder.

#include <cstdint>

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/bytes.h"

namespace lhrs {
namespace {

TEST(BufferTest, AllocateAlignedAndZeroed) {
  auto buf = Buffer::Allocate(100);
  ASSERT_NE(buf, nullptr);
  EXPECT_GE(buf->capacity(), 100u);
  EXPECT_EQ(buf->capacity() % Buffer::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf->data()) % Buffer::kAlignment,
            0u);
  for (size_t i = 0; i < buf->capacity(); ++i) {
    ASSERT_EQ(buf->data()[i], 0) << "byte " << i;
  }
}

TEST(BufferViewTest, DefaultIsEmpty) {
  BufferView v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.data(), nullptr);
  EXPECT_EQ(v.ToBytes(), Bytes{});
}

TEST(BufferViewTest, IngestsBytesWithOneCopy) {
  const Bytes src = {1, 2, 3, 4};
  BufferView v(src);
  EXPECT_EQ(v.ToBytes(), src);
  // The view owns its own aligned buffer, not the vector's storage.
  EXPECT_NE(v.data(), src.data());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.buffer()->data()) %
                Buffer::kAlignment,
            0u);
}

TEST(BufferViewTest, CopySharesTheBuffer) {
  BufferView a(Bytes{9, 8, 7});
  BufferView b = a;
  EXPECT_EQ(a.data(), b.data());  // Same underlying bytes, no copy.
  EXPECT_EQ(a, b);
}

TEST(BufferViewTest, ContentEqualityAcrossDistinctBuffers) {
  BufferView a(Bytes{1, 2, 3});
  BufferView b(Bytes{1, 2, 3});
  BufferView c(Bytes{1, 2, 4});
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(BufferViewTest, SliceSharesAndOffsets) {
  BufferView v(Bytes{0, 1, 2, 3, 4, 5});
  BufferView mid = v.Slice(2, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.ToBytes(), (Bytes{2, 3, 4}));
  EXPECT_EQ(mid.data(), v.data() + 2);  // Shared storage.
  EXPECT_EQ(mid.buffer(), v.buffer());
}

TEST(BufferViewTest, MutableResizedInPlaceWhenSoleOwner) {
  BufferView v(Bytes{1, 2, 3});
  const uint8_t* before = v.data();
  uint8_t* p = v.MutableResized(3);
  EXPECT_EQ(p, before);  // Unique owner with capacity: no detach.
  p[0] = 42;
  EXPECT_EQ(v[0], 42);
}

TEST(BufferViewTest, MutationDetachesWhenShared) {
  BufferView a(Bytes{1, 2, 3});
  BufferView snapshot = a;
  uint8_t* p = a.MutableData();
  EXPECT_NE(p, snapshot.data());  // Copy-on-write: fresh buffer.
  p[0] = 99;
  // The snapshot still sees the original bytes.
  EXPECT_EQ(snapshot[0], 1);
  EXPECT_EQ(a[0], 99);
}

TEST(BufferViewTest, MutableResizedGrowsWithZeroFill) {
  BufferView v(Bytes{5, 6});
  uint8_t* p = v.MutableResized(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(p[0], 5);
  EXPECT_EQ(p[1], 6);
  EXPECT_EQ(p[2], 0);
  EXPECT_EQ(p[3], 0);
  EXPECT_EQ(p[4], 0);
}

TEST(BufferViewTest, MutableResizedShrinks) {
  BufferView v(Bytes{1, 2, 3, 4});
  v.MutableResized(2);
  EXPECT_EQ(v.ToBytes(), (Bytes{1, 2}));
}

TEST(BufferViewTest, FromString) {
  BufferView v = BufferView::FromString("ab");
  EXPECT_EQ(v.ToBytes(), (Bytes{'a', 'b'}));
}

TEST(MakeXorDeltaTest, EqualLengths) {
  BufferView d = MakeXorDelta(Bytes{0xF0, 0x0F}, Bytes{0xFF, 0xFF});
  EXPECT_EQ(d.ToBytes(), (Bytes{0x0F, 0xF0}));
}

TEST(MakeXorDeltaTest, FirstShorterPadsWithZero) {
  // a zero-extended: delta tail equals b's tail.
  BufferView d = MakeXorDelta(Bytes{0x01}, Bytes{0x03, 0xAA, 0xBB});
  EXPECT_EQ(d.ToBytes(), (Bytes{0x02, 0xAA, 0xBB}));
}

TEST(MakeXorDeltaTest, SecondShorterPadsWithZero) {
  BufferView d = MakeXorDelta(Bytes{0x03, 0xAA, 0xBB}, Bytes{0x01});
  EXPECT_EQ(d.ToBytes(), (Bytes{0x02, 0xAA, 0xBB}));
}

TEST(MakeXorDeltaTest, DeltaIsItsOwnInverse) {
  const Bytes old_value = {1, 2, 3, 4, 5};
  const Bytes new_value = {9, 9};
  BufferView delta = MakeXorDelta(old_value, new_value);
  // old XOR delta == new (padded); new XOR delta == old.
  Bytes check = old_value;
  XorAssignPadded(check, delta);
  Bytes padded_new = new_value;
  padded_new.resize(old_value.size(), 0);
  EXPECT_EQ(check, padded_new);
}

}  // namespace
}  // namespace lhrs
