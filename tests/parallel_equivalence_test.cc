// Cross-mode equivalence harness: the locality-sharded parallel execution
// engine must be *convergence-equivalent* to the single-threaded
// deterministic Network (the chaos-replay / test oracle). The same seeded
// workload, run in both modes, must reach the same logical file contents,
// the same parity invariants and the same client-visible results — while
// event interleavings, split timings and message counts are free to
// differ. The deterministic engine itself must additionally stay
// byte-identical across replays of the same plan.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "common/rng.h"
#include "lhrs/lhrs_file.h"

namespace lhrs {
namespace {

using chaos::FaultPlan;

Bytes Val(const std::string& s) { return BytesFromString(s); }

std::string ToHexStr(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (uint8_t byte : b) {
    out.push_back(digits[byte >> 4]);
    out.push_back(digits[byte & 0xF]);
  }
  return out;
}

std::vector<Key> MakeKeys(int n, uint64_t seed) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < static_cast<size_t>(n)) keys.insert(rng.Next64());
  return {keys.begin(), keys.end()};
}

LhrsFile::Options ModeOptions(size_t localities) {
  LhrsFile::Options opts;
  opts.file.bucket_capacity = 8;
  opts.group_size = 4;
  opts.policy.base_k = 2;
  opts.net.localities = localities;
  return opts;
}

/// Everything the client can observe about a finished run. Deliberately
/// excludes timings, message counts and bucket counts — those are
/// interleaving-dependent and exempt from the equivalence contract.
struct ModeResult {
  std::vector<std::string> op_results;  ///< Per-op client-visible outcome.
  std::string final_state;              ///< key=value for every live key.
  uint64_t record_count = 0;
  bool parity_ok = false;
};

/// Fault-free seeded mixed workload: inserts (driving splits), updates,
/// deletes, searches. Every op outcome is recorded in issue order.
ModeResult RunWorkload(size_t localities, uint64_t seed) {
  LhrsFile file(ModeOptions(localities));
  const std::vector<Key> keys = MakeKeys(140, seed);
  Rng rng(seed ^ 0xABCDEF);

  ModeResult result;
  auto note = [&result](const std::string& tag, const Status& s) {
    result.op_results.push_back(tag + ":" + (s.ok() ? "ok" : s.ToString()));
  };

  for (Key k : keys) {
    note("ins", file.Insert(k, Val("v" + std::to_string(k % 1000))));
  }
  std::set<Key> deleted;
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint64_t dice = rng.Uniform(10);
    if (dice < 2) {
      note("del", file.Delete(keys[i]));
      deleted.insert(keys[i]);
    } else if (dice < 5) {
      note("upd", file.Update(keys[i], Val("u" + std::to_string(i))));
    } else {
      auto got = file.Search(keys[i]);
      note("sea", got.status());
    }
  }

  for (Key k : keys) {
    auto got = file.Search(k);
    if (deleted.contains(k)) {
      result.final_state +=
          std::to_string(k) + "=" + (got.ok() ? "LIVE?" : "gone") + ";";
    } else {
      result.final_state +=
          std::to_string(k) + "=" + (got.ok() ? ToHexStr(*got) : "?") + ";";
    }
  }
  result.record_count = file.GetStorageStats().record_count;
  result.parity_ok = file.VerifyParityInvariants().ok();
  return result;
}

TEST(ParallelEquivalenceTest, FaultFreeWorkloadConvergesAcrossModes) {
  const ModeResult oracle = RunWorkload(/*localities=*/0, /*seed=*/99);
  ASSERT_TRUE(oracle.parity_ok);
  EXPECT_GT(oracle.record_count, 100u);
  for (size_t localities : {1, 2, 4}) {
    const ModeResult parallel = RunWorkload(localities, /*seed=*/99);
    EXPECT_TRUE(parallel.parity_ok) << localities << " localities";
    EXPECT_EQ(parallel.final_state, oracle.final_state)
        << localities << " localities";
    EXPECT_EQ(parallel.record_count, oracle.record_count);
    EXPECT_EQ(parallel.op_results, oracle.op_results);
  }
}

TEST(ParallelEquivalenceTest, VirtualServiceTimeDoesNotChangeResults) {
  // The F11 occupancy knobs shift locality clocks, never outcomes.
  LhrsFile::Options opts = ModeOptions(2);
  opts.net.service_us_per_task = 50;
  opts.net.service_us_per_kb = 20;
  LhrsFile file(opts);
  const std::vector<Key> keys = MakeKeys(60, 7);
  for (Key k : keys) {
    ASSERT_TRUE(file.Insert(k, Val("v" + std::to_string(k % 100))).ok());
  }
  for (Key k : keys) {
    auto got = file.Search(k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, Val("v" + std::to_string(k % 100)));
  }
  EXPECT_TRUE(file.VerifyParityInvariants().ok());
}

ClientRetryPolicy Resilient() {
  ClientRetryPolicy policy;
  policy.enabled = true;
  policy.seed = 7;
  return policy;
}

/// One chaos drill in either mode: crash + group-crash + probabilistic
/// message faults under an insert workload, then recovery and re-issue of
/// any inserts that exhausted their retries mid-outage. Returns the
/// converged logical state (plus the trace in deterministic mode, for the
/// byte-identical replay assert).
struct ChaosDrillResult {
  std::string final_state;
  uint64_t record_count = 0;
  bool parity_ok = false;
  uint64_t faults = 0;
  std::string trace_json;  ///< Deterministic mode only.
};

ChaosDrillResult RunChaosDrill(size_t localities, uint64_t plan_seed) {
  LhrsFile file(ModeOptions(localities));
  const bool deterministic = localities == 0;
  if (deterministic) file.network().EnableTelemetry();
  file.client(0).SetRetryPolicy(Resilient());

  const std::vector<Key> keys = MakeKeys(80, 61);
  size_t i = 0;
  for (; i < keys.size() / 2; ++i) {
    const Status s = file.Insert(keys[i], Val("v" + std::to_string(keys[i])));
    EXPECT_TRUE(s.ok()) << "mode=" << localities << " pre-chaos insert " << i
                        << ": " << s;
  }
  const NodeId victim = file.context().allocation.Lookup(2);

  FaultPlan plan;
  plan.seed = plan_seed;
  plan.CrashAt(2000, victim)
      .RestoreAt(400000, victim)
      .CrashGroupAt(5000, 0, 1)
      .DropMessages(0.03)
      .DuplicateMessages(0.05)
      .ReorderMessages(0.1, 400);
  chaos::ChaosEngine& engine = file.AttachChaos(std::move(plan));
  std::vector<Key> deferred;
  for (; i < keys.size(); ++i) {
    if (!file.Insert(keys[i], Val("v" + std::to_string(keys[i]))).ok()) {
      deferred.push_back(keys[i]);
    }
  }
  file.PlayOutChaos();
  ChaosDrillResult result;
  result.faults = engine.injected_total();
  file.DetachChaos();
  file.RecoverAll();
  for (Key k : deferred) {
    // kAlreadyExists = the "failed" insert did land server-side; the
    // at-least-once ambiguity is part of the client-visible contract.
    const Status s = file.Insert(k, Val("v" + std::to_string(k)));
    EXPECT_TRUE(s.ok() || s.IsAlreadyExists()) << s;
  }

  for (Key k : keys) {
    auto got = file.Search(k);
    EXPECT_TRUE(got.ok()) << got.status();
    result.final_state +=
        std::to_string(k) + "=" + (got.ok() ? ToHexStr(*got) : "?") + ";";
  }
  result.record_count = file.GetStorageStats().record_count;
  result.parity_ok = file.VerifyParityInvariants().ok();
  if (deterministic) {
    result.trace_json = file.network().telemetry()->tracer().ToJson();
  }
  return result;
}

TEST(ParallelEquivalenceTest, ChaosDrillsConvergeAcrossModesOverManySeeds) {
  // >= 10 seeds: under every fault pattern, both engines settle on the
  // same surviving records with intact parity.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    const ChaosDrillResult oracle = RunChaosDrill(/*localities=*/0, seed);
    const ChaosDrillResult parallel = RunChaosDrill(/*localities=*/3, seed);
    ASSERT_TRUE(oracle.parity_ok) << "seed " << seed;
    ASSERT_TRUE(parallel.parity_ok) << "seed " << seed;
    EXPECT_GT(oracle.faults, 0u) << "seed " << seed;
    EXPECT_EQ(parallel.final_state, oracle.final_state) << "seed " << seed;
    EXPECT_EQ(parallel.record_count, oracle.record_count) << "seed " << seed;
  }
}

TEST(ParallelEquivalenceTest, DeterministicModeStillReplaysByteIdentically) {
  // The per-locality RNG streams must not perturb the classic engine:
  // stream 0 is seeded exactly as before, and single-threaded runs draw
  // only from it — the full telemetry trace stays byte-for-byte stable.
  const ChaosDrillResult a = RunChaosDrill(/*localities=*/0, 77);
  const ChaosDrillResult b = RunChaosDrill(/*localities=*/0, 77);
  EXPECT_GT(a.faults, 0u);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.final_state, b.final_state);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

}  // namespace
}  // namespace lhrs
